// Benchmarks that regenerate every table and figure of the paper's
// evaluation section (§5). Each benchmark prints the corresponding table via
// b.Log and reports headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation on the simulated machine. benchScale
// controls workload sizes; raise it (or use cmd/hare-bench) for larger runs.
package hare_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchScale shrinks the paper's iteration counts so the whole suite runs in
// a few minutes of real time; the relative shapes are what matter.
const benchScale = 0.05

// benchCores is the size of the simulated machine (the paper's testbed has
// 40 cores on 4 sockets).
const benchCores = 40

func BenchmarkFigure4SLOC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure4(".", false)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.Render())
		}
	}
}

func BenchmarkFigure5OpBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.Render())
		}
	}
}

func BenchmarkFigure6Scalability(b *testing.B) {
	coreCounts := []int{1, 2, 5, 10, 20, benchCores}
	for i := 0; i < b.N; i++ {
		data, t, err := bench.Figure6(benchScale, coreCounts, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.Render())
			// Report the paper's headline number: the mean speedup over
			// all benchmarks at the full machine size (the paper reports
			// an average of 14x at 40 cores).
			var at40 []float64
			for _, sp := range data.Speedup {
				at40 = append(at40, sp[len(sp)-1])
			}
			b.ReportMetric(stats.Mean(at40), "avg-speedup-40c")
			b.ReportMetric(stats.Max(at40), "max-speedup-40c")
		}
	}
}

func BenchmarkFigure7SplitConfiguration(b *testing.B) {
	// A reduced candidate list keeps the sweep tractable; cmd/hare-bench
	// uses the full list.
	candidates := []int{8, 16, 20, 32}
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure7(benchScale, benchCores, candidates, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.Render())
		}
	}
}

func BenchmarkFigure8Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure8(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.Render())
		}
	}
}

// The five technique ablations (Figures 10-14) and their summary (Figure 9)
// share the same baseline measurements, so they are generated together; the
// per-figure benchmarks below re-run only the affected technique to keep
// each one independently invocable.

func BenchmarkFigure9TechniqueSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, summary, err := bench.AblateTechniques(benchScale, benchCores, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + summary.Render())
		}
	}
}

// benchmarkTechnique regenerates one of Figures 10-14 by ablating a single
// technique over the benchmark suite.
func benchmarkTechnique(b *testing.B, technique string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, ratios, err := bench.AblateTechnique(benchScale, benchCores, nil, technique)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.Render())
			var all []float64
			for _, r := range ratios {
				all = append(all, r)
			}
			b.ReportMetric(stats.Mean(all), "avg-gain")
			b.ReportMetric(stats.Max(all), "max-gain")
		}
	}
}

func BenchmarkFigure10DirectoryDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Directory distribution is the paper's headline technique; use
		// the microbenchmarks that exercise it most directly to keep the
		// figure-specific run focused (Figure 10's biggest movers).
		ws := []workload.Workload{
			workload.Creates{},
			workload.Renames{},
			&workload.PFind{Sparse: false},
			&workload.RM{Sparse: true},
			workload.Mailbench{},
		}
		data, figs, _, err := bench.AblateTechniques(benchScale, benchCores, ws)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + figs[0].Render())
			var ratios []float64
			for _, r := range data.Ratio["Directory distribution"] {
				ratios = append(ratios, r)
			}
			b.ReportMetric(stats.Max(ratios), "max-gain")
		}
	}
}

func BenchmarkFigure11DirectoryBroadcast(b *testing.B) {
	benchmarkTechnique(b, "Directory broadcast")
}

func BenchmarkFigure12DirectAccess(b *testing.B) {
	benchmarkTechnique(b, "Direct cache access")
}

func BenchmarkFigure13DirectoryCache(b *testing.B) {
	benchmarkTechnique(b, "Directory cache")
}

func BenchmarkFigure14CreationAffinity(b *testing.B) {
	benchmarkTechnique(b, "Creation affinity")
}

func BenchmarkFigure15HareVsLinux(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure15(benchScale, benchCores, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.Render())
		}
	}
}

// BenchmarkSingleOperationLatency measures the virtual cost of individual
// metadata operations on one core (the paper's §5.3.3 discussion of the
// messaging overhead of rename and friends).
func BenchmarkSingleOperationLatency(b *testing.B) {
	for _, name := range []string{"creates", "renames", "writes"} {
		b.Run(name, func(b *testing.B) {
			w, _ := workload.ByName(name)
			for i := 0; i < b.N; i++ {
				r, err := bench.RunWorkload(bench.HareFactory(bench.DefaultHare(1)), w, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(r.Elapsed)/float64(r.Ops), "cycles/op")
				}
			}
		})
	}
}
