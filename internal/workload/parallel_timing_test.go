package workload

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestParallelSingleCoreGateCost pins the Gate.Pause fix: with GOMAXPROCS=1
// the parallel engine's gated waits must park on the waiter list (condition
// variable broadcast on safe-time advancement), not spin — so a single-core
// parallel smallfile run costs within 10% of the serialized engine, plus a
// small absolute allowance for scheduler noise on short runs. Under the old
// spin/sleep backoff this ran orders of magnitude slower.
func TestParallelSingleCoreGateCost(t *testing.T) {
	if testing.Short() {
		t.Skip("timing regression test")
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	run := func(parallel bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			sys, env := parallelSystem(t, parallel, trace.Config{})
			w := SmallFile{PerWorker: 60}
			if err := w.Setup(env); err != nil {
				t.Fatalf("setup (parallel=%v): %v", parallel, err)
			}
			start := time.Now()
			if _, err := w.Run(env); err != nil {
				t.Fatalf("run (parallel=%v): %v", parallel, err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			sys.Stop()
		}
		return best
	}

	ser := run(false)
	par := run(true)
	limit := ser + ser/10 + 25*time.Millisecond
	t.Logf("single-core smallfile: serialized=%v parallel=%v limit=%v", ser, par, limit)
	if par > limit {
		t.Fatalf("single-core parallel run took %v, serialized %v: gate wait is burning the core (limit %v)", par, ser, limit)
	}
}
