package workload

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/trace"
)

// The parallel virtual-time engine (DESIGN.md §13) is a pure performance
// layer: with the gate installed or not, every workload must leave a
// byte-identical namespace behind, and structurally-deterministic traced
// runs must produce byte-identical canonical span trees. These tests run
// both modes and compare.

// parallelSystem builds a Hare deployment with the parallel engine toggled.
func parallelSystem(t *testing.T, parallel bool, tc trace.Config) (*core.System, *Env) {
	t.Helper()
	cfg := core.Config{
		Cores:            4,
		Servers:          4,
		Timeshare:        true,
		Techniques:       core.AllTechniques(),
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 32 << 20,
		Trace:            tc,
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	if parallel {
		if err := sys.SetParallel(true); err != nil {
			t.Fatal(err)
		}
	}
	env := &Env{Procs: sys.Procs(), Cores: sys.AppCores(), Counter: NewOpCounter(), Scale: 0.05}
	return sys, env
}

func TestParallelModesProduceIdenticalState(t *testing.T) {
	cases := map[string]func() Workload{
		"scale":   func() Workload { return ScaleSweep{FilesPerWorker: 40, DirsPerWorker: 2} },
		"creates": func() Workload { return Creates{PerWorker: 12} },
		"writes":  func() Workload { return Writes{PerWorker: 40, ChunkSize: 1500} },
		"renames": func() Workload { return Renames{PerWorker: 10} },
	}
	for name, mk := range cases {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			snaps := make(map[bool]map[string]string)
			for _, parallel := range []bool{true, false} {
				sys, env := parallelSystem(t, parallel, trace.Config{})
				w := mk()
				if err := w.Setup(env); err != nil {
					t.Fatalf("setup (parallel=%v): %v", parallel, err)
				}
				if _, err := w.Run(env); err != nil {
					t.Fatalf("run (parallel=%v): %v", parallel, err)
				}
				snap := make(map[string]string)
				snapshotFS(t, sys.NewClient(0), "/", snap)
				snaps[parallel] = snap
			}
			if !reflect.DeepEqual(snaps[true], snaps[false]) {
				t.Fatalf("namespace diverged between engines:\npar: %v\nser: %v", snaps[true], snaps[false])
			}
			if len(snaps[true]) == 0 {
				t.Fatal("snapshot is empty; the workload left nothing to compare")
			}
		})
	}
}

// TestParallelModeChaosFaultEquivalence installs the chaos harness's
// message-fault tuple — seeded delivery-latency jitter plus duplicate
// delivery of idempotent requests — in both engines and compares the final
// namespaces. Fault decisions are pure functions of the message coordinates
// (DESIGN.md §10), so they survive the engine swap; the duplicate's surplus
// reply must not disturb the gate (Envelope.noResume).
func TestParallelModeChaosFaultEquivalence(t *testing.T) {
	idempotent := map[proto.Op]bool{
		proto.OpLookup: true, proto.OpStat: true, proto.OpGetBlocks: true,
		proto.OpReadDirShard: true, proto.OpFdGetInfo: true, proto.OpPing: true,
	}
	dupOK := func(kind uint16, payload []byte) bool {
		if kind != proto.KindRequest {
			return false
		}
		req, err := proto.UnmarshalRequest(payload)
		if err != nil {
			return false
		}
		return idempotent[req.Op]
	}
	snaps := make(map[bool]map[string]string)
	for _, parallel := range []bool{true, false} {
		sys, env := parallelSystem(t, parallel, trace.Config{})
		sys.Network().SetFaultPlan(&msg.FaultPlan{
			Seed:         42,
			MaxDelay:     5000,
			DelayPercent: 30,
			DupPercent:   20,
			DupOK:        dupOK,
		})
		w := ScaleSweep{FilesPerWorker: 30, DirsPerWorker: 2}
		if err := w.Setup(env); err != nil {
			t.Fatalf("setup (parallel=%v): %v", parallel, err)
		}
		if _, err := w.Run(env); err != nil {
			t.Fatalf("run (parallel=%v): %v", parallel, err)
		}
		stats := sys.Network().FaultStats()
		if stats.Delayed == 0 || stats.Duplicated == 0 {
			t.Fatalf("fault plan injected nothing (parallel=%v): %+v", parallel, stats)
		}
		sys.Network().SetFaultPlan(nil)
		snap := make(map[string]string)
		snapshotFS(t, sys.NewClient(0), "/scale", snap)
		snaps[parallel] = snap
	}
	if !reflect.DeepEqual(snaps[true], snaps[false]) {
		t.Fatalf("faulted namespace diverged between engines:\npar: %v\nser: %v", snaps[true], snaps[false])
	}
	if len(snaps[true]) == 0 {
		t.Fatal("faulted run left nothing to compare")
	}
}

// seqTraceOps is a single-process operation stream: with one client and no
// concurrency, span structure is deterministic (DESIGN.md §11), so the
// canonical tree must survive the engine swap byte-for-byte.
func seqTraceOps(fs fsapi.Client) error {
	if err := fs.Mkdir("/seq", fsapi.MkdirOpt{Distributed: true}); err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("/seq/f%02d", i)
		fd, err := fs.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
		if err != nil {
			return err
		}
		if _, err := fs.Write(fd, []byte("payload")); err != nil {
			return err
		}
		if err := fs.Close(fd); err != nil {
			return err
		}
		if _, err := fs.Stat(name); err != nil {
			return err
		}
	}
	if _, err := fs.ReadDir("/seq"); err != nil {
		return err
	}
	if _, err := fs.Stat("/seq/missing"); err == nil {
		return fmt.Errorf("stat of missing file succeeded")
	}
	return fs.Unlink("/seq/f03")
}

func TestParallelModeCanonicalTraceEquivalence(t *testing.T) {
	canon := make(map[bool][]byte)
	for _, parallel := range []bool{true, false} {
		sys, env := parallelSystem(t, parallel, trace.Config{Sample: 1, Ring: 1 << 16})
		err := runRoot(env, "seq-trace", func(p *sched.Proc) int {
			if err := seqTraceOps(p.FS); err != nil {
				t.Errorf("seq ops (parallel=%v): %v", parallel, err)
				return 1
			}
			return 0
		})
		if err != nil {
			t.Fatalf("root (parallel=%v): %v", parallel, err)
		}
		spans := sys.Tracer().Spans()
		if len(spans) == 0 {
			t.Fatalf("no spans recorded (parallel=%v)", parallel)
		}
		canon[parallel] = trace.EncodeCanonical(spans)
	}
	if !bytes.Equal(canon[true], canon[false]) {
		t.Fatalf("canonical trace trees diverged between engines:\npar %d bytes, ser %d bytes",
			len(canon[true]), len(canon[false]))
	}
}
