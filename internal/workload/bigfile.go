package workload

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/fsapi"
	"repro/internal/sched"
)

// BigFile is the large-file data-path microbenchmark: every worker writes a
// multi-block file sequentially, then alternates re-open/read rounds with
// sparse overwrite rounds that dirty a single 64-byte line per touched
// block, and finally verifies the whole file byte for byte. It is the
// workload most sensitive to data moved per operation, which makes it the
// acceptance benchmark for the zero-waste data path (DESIGN.md §8): version
// matching lets the read rounds skip whole-file invalidation, and dirty-line
// writeback lets the overwrite rounds flush lines instead of blocks.
type BigFile struct {
	// FileKiB is the per-worker file size in KiB; 0 means a scaled default.
	FileKiB int
	// Rounds is how many read rounds and overwrite rounds each worker runs.
	Rounds int
}

// Name implements Workload.
func (BigFile) Name() string { return "bigfile" }

// Placement implements Workload.
func (BigFile) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the shared directory.
func (BigFile) Setup(env *Env) error {
	return runRoot(env, "bigfile-setup", func(p *sched.Proc) int {
		if err := env.fs(p).Mkdir("/big", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return 0
	})
}

// Run implements Workload.
func (w BigFile) Run(env *Env) (int, error) {
	const chunk = 4096
	fileKiB := w.FileKiB
	if fileKiB == 0 {
		// Large enough that per-round data movement dominates the open/close
		// RPCs even when a single server serializes them.
		fileKiB = env.iters(1024)
	}
	size := fileKiB << 10
	if size < 2*chunk {
		size = 2 * chunk
	}
	size = (size + chunk - 1) / chunk * chunk
	rounds := w.Rounds
	if rounds == 0 {
		rounds = 3
	}
	n := env.workers()
	var ops int64
	err := runRoot(env, "bigfile", func(p *sched.Proc) int {
		return fanOut(p, n, func(wp *sched.Proc, idx int) int {
			fs := env.fs(wp)
			name := fmt.Sprintf("/big/w%02d", idx)
			// expected mirrors what the file must contain at every point.
			expected := make([]byte, size)
			fillPattern(expected, uint64(idx)+101)
			workerOps := 0

			// Phase 1: sequential write, one syscall per 4 KiB block.
			fd, err := fs.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
			if err != nil {
				return 1
			}
			workerOps++
			for off := 0; off < size; off += chunk {
				if _, err := fs.Write(fd, expected[off:off+chunk]); err != nil {
					return 1
				}
				workerOps++
			}
			if err := fs.Close(fd); err != nil {
				return 1
			}
			workerOps++

			buf := make([]byte, 2*chunk)
			for r := 0; r < rounds; r++ {
				// Read round: re-open and stream the file. The reopening
				// client wrote it (or read it) last, so with the data path
				// on the version matches and no invalidation happens.
				fd, err := fs.Open(name, fsapi.ORdOnly, 0)
				if err != nil {
					return 1
				}
				workerOps++
				for off := 0; off < size; off += len(buf) {
					m, err := fs.Read(fd, buf)
					if err != nil || m == 0 {
						return 1
					}
					if !bytes.Equal(buf[:m], expected[off:off+m]) {
						return 1
					}
					workerOps++
				}
				if err := fs.Close(fd); err != nil {
					return 1
				}
				workerOps++

				// Overwrite round: dirty one 64-byte line every fourth
				// block, then close. Off-mode flushes each touched block in
				// full; on-mode moves exactly one line per touched block.
				fd, err = fs.Open(name, fsapi.ORdWr, 0)
				if err != nil {
					return 1
				}
				workerOps++
				for off := 0; off < size; off += 4 * chunk {
					pos := int64(off + (r%2)*chunk/2)
					line := make([]byte, 64)
					fillPattern(line, uint64(idx)*1000+uint64(r)*100+uint64(off))
					if _, err := fs.Pwrite(fd, line, pos); err != nil {
						return 1
					}
					copy(expected[pos:], line)
					workerOps++
				}
				if err := fs.Close(fd); err != nil {
					return 1
				}
				workerOps++
			}

			// Final verification pass over the whole file.
			fd, err = fs.Open(name, fsapi.ORdOnly, 0)
			if err != nil {
				return 1
			}
			workerOps++
			for off := 0; off < size; off += len(buf) {
				m, err := fs.Read(fd, buf)
				if err != nil || m == 0 {
					return 1
				}
				if !bytes.Equal(buf[:m], expected[off:off+m]) {
					return 1
				}
				workerOps++
			}
			if err := fs.Close(fd); err != nil {
				return 1
			}
			workerOps++
			atomic.AddInt64(&ops, int64(workerOps))
			return 0
		})
	})
	return int(atomic.LoadInt64(&ops)), err
}
