package workload

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/sched"
)

// The async RPC pipeline (DESIGN.md §7) is a pure performance layer: with
// pipelining on or off, every workload must leave a byte-identical namespace
// behind. These tests run representative workloads in both modes and
// compare full file-system snapshots.

// pipelineSystem builds a Hare deployment with the pipeline toggled.
func pipelineSystem(t *testing.T, pipelining bool, d *core.Durability) (*core.System, *Env) {
	t.Helper()
	tq := core.AllTechniques()
	tq.RPCPipelining = pipelining
	cfg := core.Config{
		Cores:            4,
		Servers:          4,
		Timeshare:        true,
		Techniques:       tq,
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 32 << 20,
	}
	if d != nil {
		cfg.Durability = *d
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	env := &Env{Procs: sys.Procs(), Cores: sys.AppCores(), Counter: NewOpCounter(), Scale: 0.05}
	if d != nil {
		env.Faults = coreFaults{sys}
	}
	return sys, env
}

// snapshotFS walks the tree under dir and records every entry: directories
// by name, files by size and contents.
func snapshotFS(t *testing.T, fs fsapi.Client, dir string, out map[string]string) {
	t.Helper()
	ents, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir %s: %v", dir, err)
	}
	for _, ent := range ents {
		path := dir + "/" + ent.Name
		if dir == "/" {
			path = "/" + ent.Name
		}
		if ent.Type == fsapi.TypeDir {
			out[path] = "dir"
			snapshotFS(t, fs, path, out)
			continue
		}
		st, err := fs.Stat(path)
		if err != nil {
			t.Fatalf("stat %s: %v", path, err)
		}
		fd, err := fs.Open(path, fsapi.ORdOnly, 0)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		buf := make([]byte, st.Size)
		total := 0
		for total < len(buf) {
			n, err := fs.Read(fd, buf[total:])
			if err != nil {
				t.Fatalf("read %s: %v", path, err)
			}
			if n == 0 {
				break
			}
			total += n
		}
		fs.Close(fd)
		out[path] = fmt.Sprintf("file[%d]:%x", st.Size, buf[:total])
	}
}

func TestPipeliningModesProduceIdenticalState(t *testing.T) {
	// Fresh workload instances per run: some workloads carry state between
	// Setup and Run.
	cases := map[string]func() Workload{
		"smallfile": func() Workload { return SmallFile{PerWorker: 15, WriteBytes: 700} },
		"creates":   func() Workload { return Creates{PerWorker: 12} },
		"fsstress":  func() Workload { return FSStress{PerWorker: 60} },
		"renames":   func() Workload { return Renames{PerWorker: 10} },
		"writes":    func() Workload { return Writes{PerWorker: 40, ChunkSize: 1500} },
	}
	for name, mk := range cases {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			snaps := make(map[bool]map[string]string)
			for _, pipelining := range []bool{true, false} {
				sys, env := pipelineSystem(t, pipelining, nil)
				w := mk()
				if err := w.Setup(env); err != nil {
					t.Fatalf("setup (pipelining=%v): %v", pipelining, err)
				}
				if _, err := w.Run(env); err != nil {
					t.Fatalf("run (pipelining=%v): %v", pipelining, err)
				}
				snap := make(map[string]string)
				snapshotFS(t, sys.NewClient(0), "/", snap)
				snaps[pipelining] = snap
			}
			if !reflect.DeepEqual(snaps[true], snaps[false]) {
				t.Fatalf("namespace diverged between modes:\n on: %v\noff: %v", snaps[true], snaps[false])
			}
			if len(snaps[true]) == 0 {
				t.Fatal("snapshot is empty; the workload left nothing to compare")
			}
		})
	}
}

func TestCrashRecoveryWorkloadBothPipeliningModes(t *testing.T) {
	// The crash-injection workload self-verifies against a shadow model
	// after every recovery; it must hold with the pipeline on and off, and
	// the recovered namespaces must match across modes.
	snaps := make(map[bool]map[string]string)
	for _, pipelining := range []bool{true, false} {
		d := &core.Durability{Enabled: true, CheckpointEvery: 16, GroupCommitInterval: 20_000}
		sys, env := pipelineSystem(t, pipelining, d)
		env.Scale = 1
		w := CrashRecovery{FilesPerRound: 3}
		runOne(t, env, w)
		snap := make(map[string]string)
		snapshotFS(t, sys.NewClient(0), "/crash", snap)
		snaps[pipelining] = snap
	}
	if !reflect.DeepEqual(snaps[true], snaps[false]) {
		t.Fatalf("recovered namespace diverged between modes:\n on: %v\noff: %v", snaps[true], snaps[false])
	}
	if len(snaps[true]) == 0 {
		t.Fatal("crash workload left nothing to compare")
	}
}
