package workload

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/sched"
	"repro/internal/sim"
)

// cpu cost constants (cycles) for the application benchmarks' compute
// phases, roughly matching the paper's CPU-vs-IO balance.
const (
	decompressPerKiB = 9000   // gunzip-style decompression per KiB
	compilePerFile   = 4.8e6  // ~2 ms of compiler work per source file
	linkPerObject    = 400000 // linker work per object file
	deliverPerMsg    = 120000 // mail server processing per message
)

// Extract models decompressing and unpacking a kernel source archive (the
// paper's `extract` benchmark): a decompressor process streams data through
// a pipe to an unpacker process that creates directories and writes files.
type Extract struct {
	Dirs     int
	PerDir   int
	FileSize int
}

// Name implements Workload.
func (Extract) Name() string { return "extract" }

// Placement implements Workload.
func (Extract) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the destination directory.
func (Extract) Setup(env *Env) error {
	return runRoot(env, "extract-setup", func(p *sched.Proc) int {
		if err := env.fs(p).Mkdir("/src", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return 0
	})
}

// Run implements Workload.
func (w Extract) Run(env *Env) (int, error) {
	dirs := w.Dirs
	if dirs == 0 {
		dirs = env.iters(24)
	}
	perDir := w.PerDir
	if perDir == 0 {
		perDir = env.iters(12)
	}
	fileSize := w.FileSize
	if fileSize == 0 {
		fileSize = 4096
	}
	ops := 0
	err := runRoot(env, "extract", func(p *sched.Proc) int {
		fs := env.fs(p)
		// tar -xzf: a decompressor child streams the archive into a pipe;
		// the parent (the unpacker) reads the stream and creates files.
		r, pw, err := fs.Pipe()
		if err != nil {
			return 1
		}
		totalBytes := dirs * perDir * fileSize
		producer, err := p.Spawn([]string{"gunzip"}, func(cp *sched.Proc) int {
			cfs := env.fs(cp)
			chunk := make([]byte, 32*1024)
			fillPattern(chunk, 42)
			remaining := totalBytes
			for remaining > 0 {
				n := len(chunk)
				if n > remaining {
					n = remaining
				}
				// Decompression is CPU work proportional to the output.
				cp.Compute(sim.Cycles(n / 1024 * decompressPerKiB))
				if _, err := cfs.Write(pw, chunk[:n]); err != nil {
					return 1
				}
				remaining -= n
			}
			cfs.Close(pw)
			cfs.Close(r)
			return 0
		}, false)
		if err != nil {
			return 1
		}
		// The unpacker no longer needs its copy of the write end.
		fs.Close(pw)

		buf := make([]byte, fileSize)
		for d := 0; d < dirs; d++ {
			dir := fmt.Sprintf("/src/dir%03d", d)
			if err := fs.Mkdir(dir, fsapi.MkdirOpt{Distributed: true}); err != nil {
				return 1
			}
			for f := 0; f < perDir; f++ {
				// Drain the archive stream for this file's contents.
				need := fileSize
				for need > 0 {
					n, err := fs.Read(r, buf[:need])
					if err != nil || n == 0 {
						return 1
					}
					need -= n
				}
				name := fmt.Sprintf("%s/file%04d.c", dir, f)
				fd, err := fs.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
				if err != nil {
					return 1
				}
				if _, err := fs.Write(fd, buf); err != nil {
					return 1
				}
				if err := fs.Close(fd); err != nil {
					return 1
				}
			}
		}
		fs.Close(r)
		return producer.Wait()
	})
	ops = dirs * (1 + perDir*3)
	return ops, err
}

// Punzip models unzipping many archives in parallel (the paper's punzip
// benchmark: 20 copies of the manpages unpacked concurrently). Each worker
// decompresses into its own directory.
type Punzip struct {
	Copies  int
	PerCopy int
}

// Name implements Workload.
func (Punzip) Name() string { return "punzip" }

// Placement implements Workload (the paper uses random placement here).
func (Punzip) Placement() sched.Policy { return sched.PolicyRandom }

// Setup creates the top-level destination directory.
func (Punzip) Setup(env *Env) error {
	return runRoot(env, "punzip-setup", func(p *sched.Proc) int {
		if err := env.fs(p).Mkdir("/man", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return 0
	})
}

// Run implements Workload.
func (w Punzip) Run(env *Env) (int, error) {
	copies := w.Copies
	if copies == 0 {
		copies = env.workers()
	}
	perCopy := w.PerCopy
	if perCopy == 0 {
		perCopy = env.iters(120)
	}
	const pageSize = 2048
	err := runRoot(env, "punzip", func(p *sched.Proc) int {
		return fanOut(p, copies, func(wp *sched.Proc, idx int) int {
			fs := env.fs(wp)
			dir := fmt.Sprintf("/man/copy%02d", idx)
			if err := fs.Mkdir(dir, fsapi.MkdirOpt{Distributed: true}); err != nil {
				return 1
			}
			page := make([]byte, pageSize)
			fillPattern(page, uint64(idx)*7+1)
			for i := 0; i < perCopy; i++ {
				wp.Compute(sim.Cycles(pageSize / 1024 * decompressPerKiB))
				name := fmt.Sprintf("%s/man%04d.1", dir, i)
				fd, err := fs.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
				if err != nil {
					return 1
				}
				if _, err := fs.Write(fd, page); err != nil {
					return 1
				}
				if err := fs.Close(fd); err != nil {
					return 1
				}
			}
			return 0
		})
	})
	return copies * perCopy * 3, err
}

// Mailbench models the sv6 mail-server benchmark: each worker delivers
// messages maildir-style (create in tmp/, write, fsync, rename into new/)
// and periodically scans its mailbox.
type Mailbench struct{ PerWorker int }

// Name implements Workload.
func (Mailbench) Name() string { return "mailbench" }

// Placement implements Workload.
func (Mailbench) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the spool directories.
func (Mailbench) Setup(env *Env) error {
	n := env.workers()
	return runRoot(env, "mailbench-setup", func(p *sched.Proc) int {
		fs := env.fs(p)
		if err := fs.Mkdir("/spool", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		for i := 0; i < n; i++ {
			user := fmt.Sprintf("/spool/user%02d", i)
			for _, dir := range []string{user, user + "/tmp", user + "/new"} {
				if err := fs.Mkdir(dir, fsapi.MkdirOpt{Distributed: true}); err != nil {
					return 1
				}
			}
		}
		return 0
	})
}

// Run implements Workload.
func (w Mailbench) Run(env *Env) (int, error) {
	per := w.PerWorker
	if per == 0 {
		per = env.iters(150)
	}
	n := env.workers()
	msg := make([]byte, 1500)
	fillPattern(msg, 99)
	err := runRoot(env, "mailbench", func(p *sched.Proc) int {
		return fanOut(p, n, func(wp *sched.Proc, idx int) int {
			fs := env.fs(wp)
			user := fmt.Sprintf("/spool/user%02d", idx)
			for i := 0; i < per; i++ {
				wp.Compute(deliverPerMsg)
				tmp := fmt.Sprintf("%s/tmp/msg%05d", user, i)
				fd, err := fs.Open(tmp, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
				if err != nil {
					return 1
				}
				if _, err := fs.Write(fd, msg); err != nil {
					return 1
				}
				if err := fs.Fsync(fd); err != nil {
					return 1
				}
				if err := fs.Close(fd); err != nil {
					return 1
				}
				final := fmt.Sprintf("%s/new/msg%05d", user, i)
				if err := fs.Rename(tmp, final); err != nil {
					return 1
				}
				// The reader side scans the mailbox every few deliveries.
				if (i+1)%16 == 0 {
					ents, err := fs.ReadDir(user + "/new")
					if err != nil {
						return 1
					}
					if len(ents) == 0 {
						return 1
					}
				}
			}
			return 0
		})
	})
	return n * per * 5, err
}

// FSStress issues a randomized mix of file system operations from every
// worker, each within its own subtree (borrowed from the Linux Test
// Project's fsstress, as in the paper). Directory distribution is left off:
// the workload repeatedly removes small directories, which is the case where
// distribution hurts (§5.4).
type FSStress struct{ PerWorker int }

// Name implements Workload.
func (FSStress) Name() string { return "fsstress" }

// Placement implements Workload.
func (FSStress) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates one subtree per worker.
func (FSStress) Setup(env *Env) error {
	n := env.workers()
	return runRoot(env, "fsstress-setup", func(p *sched.Proc) int {
		fs := env.fs(p)
		if err := fs.Mkdir("/stress", fsapi.MkdirOpt{}); err != nil {
			return 1
		}
		for i := 0; i < n; i++ {
			if err := fs.Mkdir(fmt.Sprintf("/stress/w%02d", i), fsapi.MkdirOpt{}); err != nil {
				return 1
			}
		}
		return 0
	})
}

// Run implements Workload.
func (w FSStress) Run(env *Env) (int, error) {
	per := w.PerWorker
	if per == 0 {
		per = env.iters(300)
	}
	n := env.workers()
	err := runRoot(env, "fsstress", func(p *sched.Proc) int {
		return fanOut(p, n, func(wp *sched.Proc, idx int) int {
			fs := env.fs(wp)
			base := fmt.Sprintf("/stress/w%02d", idx)
			rng := newRand(uint64(idx)*1234567 + 1)
			var files, dirs []string
			buf := make([]byte, 512)
			fillPattern(buf, uint64(idx))
			for i := 0; i < per; i++ {
				switch rng.intn(10) {
				case 0, 1, 2: // create a file
					name := fmt.Sprintf("%s/f%05d", base, i)
					fd, err := fs.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
					if err != nil {
						return 1
					}
					if _, err := fs.Write(fd, buf); err != nil {
						return 1
					}
					if err := fs.Close(fd); err != nil {
						return 1
					}
					files = append(files, name)
				case 3: // unlink a file
					if len(files) == 0 {
						continue
					}
					victim := rng.intn(len(files))
					if err := fs.Unlink(files[victim]); err != nil {
						return 1
					}
					files = append(files[:victim], files[victim+1:]...)
				case 4: // mkdir
					name := fmt.Sprintf("%s/d%05d", base, i)
					if err := fs.Mkdir(name, fsapi.MkdirOpt{}); err != nil {
						return 1
					}
					dirs = append(dirs, name)
				case 5: // rmdir (often non-empty parents: expect failures too)
					if len(dirs) == 0 {
						continue
					}
					victim := rng.intn(len(dirs))
					if err := fs.Rmdir(dirs[victim]); err == nil {
						dirs = append(dirs[:victim], dirs[victim+1:]...)
					} else if !fsapi.IsErrno(err, fsapi.ENOTEMPTY) {
						return 1
					}
				case 6: // rename
					if len(files) == 0 {
						continue
					}
					victim := rng.intn(len(files))
					newName := fmt.Sprintf("%s/r%05d", base, i)
					if err := fs.Rename(files[victim], newName); err != nil {
						return 1
					}
					files[victim] = newName
				case 7: // read a file back
					if len(files) == 0 {
						continue
					}
					fd, err := fs.Open(files[rng.intn(len(files))], fsapi.ORdOnly, 0)
					if err != nil {
						return 1
					}
					if _, err := fs.Read(fd, buf); err != nil {
						return 1
					}
					if err := fs.Close(fd); err != nil {
						return 1
					}
				case 8: // stat
					if len(files) == 0 {
						continue
					}
					if _, err := fs.Stat(files[rng.intn(len(files))]); err != nil {
						return 1
					}
				case 9: // readdir
					if _, err := fs.ReadDir(base); err != nil {
						return 1
					}
				}
			}
			return 0
		})
	})
	return n * per, err
}
