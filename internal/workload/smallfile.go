package workload

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/sched"
)

// SmallFile is the small-file churn microbenchmark: every worker repeatedly
// creates a file in a shared (distributed) directory, optionally writes a
// small payload, closes it, and immediately unlinks it — the lifecycle of
// lock files, temporary build artifacts, and mail spool entries. It is the
// workload most sensitive to per-operation message count, which makes it
// the acceptance benchmark for the async RPC pipeline (DESIGN.md §7): with
// batching on, the unlink's RM_MAP + UNLINK_INODE share one message.
type SmallFile struct {
	PerWorker int
	// WriteBytes, when non-zero, writes that many bytes into each file
	// before closing it (adds an EXTEND and a size-carrying CLOSE).
	WriteBytes int
}

// Name implements Workload.
func (SmallFile) Name() string { return "smallfile" }

// Placement implements Workload.
func (SmallFile) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the shared distributed directory.
func (SmallFile) Setup(env *Env) error {
	return runRoot(env, "smallfile-setup", func(p *sched.Proc) int {
		if err := env.fs(p).Mkdir("/small", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return 0
	})
}

// Run implements Workload.
func (w SmallFile) Run(env *Env) (int, error) {
	per := w.PerWorker
	if per == 0 {
		per = env.iters(300)
	}
	n := env.workers()
	opsPerFile := 3 // create, close, unlink
	if w.WriteBytes > 0 {
		opsPerFile++
	}
	err := runRoot(env, "smallfile", func(p *sched.Proc) int {
		return fanOut(p, n, func(wp *sched.Proc, idx int) int {
			fs := env.fs(wp)
			var buf []byte
			if w.WriteBytes > 0 {
				buf = make([]byte, w.WriteBytes)
				fillPattern(buf, uint64(idx)+1)
			}
			for i := 0; i < per; i++ {
				name := fmt.Sprintf("/small/w%02d-f%05d", idx, i)
				fd, err := fs.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
				if err != nil {
					return 1
				}
				if len(buf) > 0 {
					if _, err := fs.Write(fd, buf); err != nil {
						return 1
					}
				}
				if err := fs.Close(fd); err != nil {
					return 1
				}
				if err := fs.Unlink(name); err != nil {
					return 1
				}
			}
			return 0
		})
	})
	return per * n * opsPerFile, err
}
