package workload

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/repl"
	"repro/internal/sched"
)

// The parallel engine's scope covers the full control plane (DESIGN.md §13):
// replication shipping and acks, failover promotion, crash/recovery, and
// elastic migration all hold and resume lane frontiers out of band. These
// tests fire each control plane between (and the snapshot pass after) real
// fork-fan-out traffic under both engines and require byte-identical
// namespaces.

// controlSystem builds a durable deployment (optionally replicated) with the
// parallel engine toggled.
func controlSystem(t *testing.T, parallel bool, mode repl.Mode) (*core.System, *Env) {
	t.Helper()
	cfg := core.Config{
		Cores:            4,
		Servers:          2,
		MaxServers:       4,
		Timeshare:        true,
		Techniques:       core.AllTechniques(),
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 32 << 20,
		Durability:       core.Durability{Enabled: true},
	}
	if mode != repl.Off {
		cfg.Replication = repl.Config{Mode: mode}
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	if parallel {
		if err := sys.SetParallel(true); err != nil {
			t.Fatal(err)
		}
	}
	env := &Env{Procs: sys.Procs(), Cores: sys.AppCores(), Counter: NewOpCounter(), Scale: 0.05}
	return sys, env
}

// controlPhase runs one round of conflict-free fork-fan-out traffic under dir.
func controlPhase(env *Env, dir string, workers int) error {
	return runRoot(env, "ctl"+dir, func(p *sched.Proc) int {
		if err := p.FS.Mkdir(dir, fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return fanOut(p, workers, func(wp *sched.Proc, idx int) int {
			for i := 0; i < 6; i++ {
				name := fmt.Sprintf("%s/w%d-f%02d", dir, idx, i)
				fd, err := wp.FS.Open(name, fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
				if err != nil {
					return 1
				}
				if _, err := wp.FS.Write(fd, []byte(name)); err != nil {
					return 1
				}
				if err := wp.FS.Close(fd); err != nil {
					return 1
				}
			}
			return 0
		})
	})
}

// controlSnapshot compares final namespaces across engines.
func controlSnapshot(t *testing.T, snaps map[bool]map[string]string) {
	t.Helper()
	if len(snaps[false]) == 0 {
		t.Fatal("empty namespace snapshot; nothing to compare")
	}
	if !reflect.DeepEqual(snaps[false], snaps[true]) {
		t.Fatalf("namespace diverged between engines:\nser: %v\npar: %v", snaps[false], snaps[true])
	}
}

// TestParallelReplicationFailoverEquivalence runs fan-out traffic, ships a
// full checkpoint to the followers, crashes a primary and promotes its
// replica (seal → freeze → publish → commit), then runs more traffic — all
// under both engines. The promotion's lane holds must keep every gated
// server off the promotion epoch's past.
func TestParallelReplicationFailoverEquivalence(t *testing.T) {
	snaps := make(map[bool]map[string]string)
	for _, parallel := range []bool{false, true} {
		sys, env := controlSystem(t, parallel, repl.Sync)
		if err := controlPhase(env, "/before", 3); err != nil {
			t.Fatalf("phase before (parallel=%v): %v", parallel, err)
		}
		if err := sys.CheckpointAll(); err != nil {
			t.Fatalf("checkpoint (parallel=%v): %v", parallel, err)
		}
		const victim = 1
		if err := sys.Crash(victim); err != nil {
			t.Fatalf("crash (parallel=%v): %v", parallel, err)
		}
		if _, err := sys.Failover(victim); err != nil {
			t.Fatalf("failover (parallel=%v): %v", parallel, err)
		}
		if err := controlPhase(env, "/after", 3); err != nil {
			t.Fatalf("phase after (parallel=%v): %v", parallel, err)
		}
		snap := make(map[string]string)
		snapshotFS(t, sys.NewClient(0), "/", snap)
		snaps[parallel] = snap
	}
	controlSnapshot(t, snaps)
}

// TestParallelCrashRecoverEquivalence checkpoints, crashes, and log-replays
// a server between traffic rounds under both engines: Crash must park the
// dead server's lanes (its closed inbox bypasses the gate so the run loop
// can exit) and recovery's first send re-joins at the recovery frontier.
func TestParallelCrashRecoverEquivalence(t *testing.T) {
	snaps := make(map[bool]map[string]string)
	for _, parallel := range []bool{false, true} {
		sys, env := controlSystem(t, parallel, repl.Off)
		if err := controlPhase(env, "/before", 3); err != nil {
			t.Fatalf("phase before (parallel=%v): %v", parallel, err)
		}
		const victim = 1
		if err := sys.Checkpoint(victim); err != nil {
			t.Fatalf("checkpoint (parallel=%v): %v", parallel, err)
		}
		if err := sys.Crash(victim); err != nil {
			t.Fatalf("crash (parallel=%v): %v", parallel, err)
		}
		if _, err := sys.Recover(victim); err != nil {
			t.Fatalf("recover (parallel=%v): %v", parallel, err)
		}
		if err := controlPhase(env, "/after", 3); err != nil {
			t.Fatalf("phase after (parallel=%v): %v", parallel, err)
		}
		snap := make(map[string]string)
		snapshotFS(t, sys.NewClient(0), "/", snap)
		snaps[parallel] = snap
	}
	controlSnapshot(t, snaps)
}

// TestParallelMigrationEquivalence grows and then drains the deployment
// between traffic rounds under both engines: migration's freeze → pull →
// publish → commit pins frontier advancement via the controller lane's
// bump-then-park protocol.
func TestParallelMigrationEquivalence(t *testing.T) {
	snaps := make(map[bool]map[string]string)
	for _, parallel := range []bool{false, true} {
		sys, env := controlSystem(t, parallel, repl.Off)
		if err := controlPhase(env, "/before", 3); err != nil {
			t.Fatalf("phase before (parallel=%v): %v", parallel, err)
		}
		id, err := sys.AddServer()
		if err != nil {
			t.Fatalf("add server (parallel=%v): %v", parallel, err)
		}
		if err := controlPhase(env, "/grown", 3); err != nil {
			t.Fatalf("phase grown (parallel=%v): %v", parallel, err)
		}
		if err := sys.RemoveServer(id); err != nil {
			t.Fatalf("remove server (parallel=%v): %v", parallel, err)
		}
		if err := controlPhase(env, "/after", 3); err != nil {
			t.Fatalf("phase after (parallel=%v): %v", parallel, err)
		}
		snap := make(map[string]string)
		snapshotFS(t, sys.NewClient(0), "/", snap)
		snaps[parallel] = snap
	}
	controlSnapshot(t, snaps)
}
