package workload

import (
	"testing"

	"repro/internal/baseline/ramfs"
	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/sched"
	"repro/internal/sim"
)

// hareEnv builds a small Hare deployment and returns a workload Env over it.
func hareEnv(t *testing.T, cores int) (*Env, func()) {
	t.Helper()
	sys, err := core.New(core.Config{
		Cores:            cores,
		Servers:          cores,
		Timeshare:        true,
		Techniques:       core.AllTechniques(),
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	env := &Env{
		Procs:   sys.Procs(),
		Cores:   sys.AppCores(),
		Counter: NewOpCounter(),
		Scale:   0.05,
	}
	return env, sys.Stop
}

// ramfsEnv builds the shared-memory baseline and returns an Env over it.
func ramfsEnv(t *testing.T, cores int) *Env {
	t.Helper()
	machine := sim.NewMachine(sim.TopologyForCores(cores), sim.DefaultCostModel())
	fs := ramfs.New(machine)
	appCores := make([]int, cores)
	for i := range appCores {
		appCores[i] = i
	}
	procs := sched.NewSMPSystem(sched.SMPConfig{
		Machine:  machine,
		AppCores: appCores,
		Policy:   sched.PolicyRoundRobin,
		NewClient: func(c int) fsapi.Client {
			return fs.NewClient(c)
		},
	})
	return &Env{Procs: procs, Cores: appCores, Counter: NewOpCounter(), Scale: 0.05}
}

// runOne runs a workload's setup and timed phases and checks basic
// invariants: no error, a positive op count, and virtual time advanced.
func runOne(t *testing.T, env *Env, w Workload) {
	t.Helper()
	// Workloads with a randomized op mix (fsstress, the synthetic data
	// generators) derive all randomness from fixed per-worker seeds
	// (newRand(idx*1234567+1), fillPattern): log the scheme so a failing
	// run names its seeds.
	t.Logf("%s: deterministic xorshift seeds (worker idx*1234567+1)", w.Name())
	if err := w.Setup(env); err != nil {
		t.Fatalf("%s setup: %v", w.Name(), err)
	}
	before := env.Procs.MaxEndTime()
	ops, err := w.Run(env)
	if err != nil {
		t.Fatalf("%s run: %v", w.Name(), err)
	}
	if ops <= 0 {
		t.Fatalf("%s reported %d ops", w.Name(), ops)
	}
	if env.Procs.MaxEndTime() <= before {
		t.Fatalf("%s did not advance virtual time", w.Name())
	}
	if env.Counter.Total() == 0 {
		t.Fatalf("%s issued no POSIX calls", w.Name())
	}
}

func TestAllWorkloadsOnHare(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			env, stop := hareEnv(t, 4)
			defer stop()
			runOne(t, env, w)
		})
	}
}

func TestAllWorkloadsOnRamfs(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			runOne(t, ramfsEnv(t, 4), w)
		})
	}
}

func TestWorkloadsSingleCore(t *testing.T) {
	// Every benchmark must also run on a single core (the scalability
	// baseline configuration).
	for _, w := range []Workload{Creates{}, &PFind{Sparse: true}, Mailbench{}, BuildLinux{}} {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			env, stop := hareEnv(t, 1)
			defer stop()
			runOne(t, env, w)
		})
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	// The paper's 13 benchmarks plus the smallfile churn microbenchmark
	// added with the async RPC pipeline (DESIGN.md §7) and the bigfile
	// data-path microbenchmark (DESIGN.md §8).
	if len(names) != 15 {
		t.Fatalf("expected 15 benchmarks, got %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate benchmark name %q", n)
		}
		seen[n] = true
		if _, ok := ByName(n); !ok {
			t.Fatalf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted an unknown benchmark")
	}
	for _, n := range []string{"build linux", "mailbench", "pfind sparse", "rm dense", "smallfile", "bigfile"} {
		if !seen[n] {
			t.Fatalf("missing benchmark %q", n)
		}
	}
	if len(Microbenchmarks()) == 0 || len(ParallelBenchmarks()) == 0 {
		t.Fatal("benchmark subsets empty")
	}
}

func TestPlacementPolicies(t *testing.T) {
	// The paper uses random placement for build linux and punzip, and
	// round-robin for the rest.
	for _, w := range All() {
		want := sched.PolicyRoundRobin
		if w.Name() == "build linux" || w.Name() == "punzip" {
			want = sched.PolicyRandom
		}
		if w.Placement() != want {
			t.Errorf("%s placement = %v, want %v", w.Name(), w.Placement(), want)
		}
	}
}

func TestOpCounter(t *testing.T) {
	c := NewOpCounter()
	env, stop := hareEnv(t, 2)
	defer stop()
	env.Counter = c
	w := Creates{PerWorker: 10}
	if err := w.Setup(env); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if _, err := w.Run(env); err != nil {
		t.Fatal(err)
	}
	if c.Count(ClassCreate) == 0 || c.Count(ClassClose) == 0 {
		t.Fatalf("creates benchmark should count creates and closes: %v %v",
			c.Count(ClassCreate), c.Count(ClassClose))
	}
	bd := c.Breakdown()
	var sum float64
	for _, share := range bd {
		sum += share
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("breakdown shares sum to %f", sum)
	}
}

func TestOpClassNames(t *testing.T) {
	for _, c := range OpClasses() {
		if c.String() == "" {
			t.Fatal("empty class name")
		}
	}
	if OpClass(200).String() != "other" {
		t.Fatal("out-of-range class should be 'other'")
	}
}

func TestXorshiftDeterministic(t *testing.T) {
	a, b := newRand(7), newRand(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("xorshift not deterministic")
		}
	}
	r := newRand(0)
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		v := r.intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
		counts[v]++
	}
	if len(counts) < 8 {
		t.Fatal("intn poorly distributed")
	}
	if r.intn(0) != 0 {
		t.Fatal("intn(0) should be 0")
	}
}

func TestTreeSpecShapes(t *testing.T) {
	env := &Env{Scale: 1.0}
	dense := denseTree(env)
	sparse := sparseTree(env)
	if len(dense.allFiles()) == 0 {
		t.Fatal("dense tree has no files")
	}
	if len(sparse.allFiles()) != 0 {
		t.Fatal("sparse tree should have no files")
	}
	if len(sparse.allDirs()) <= len(dense.allDirs()) {
		t.Fatal("sparse tree should have more directories than dense")
	}
	// Directory listings at each level have the expected fanout.
	if got := len(dense.dirsAtLevel(0)); got != dense.topDirs {
		t.Fatalf("level 0 has %d dirs", got)
	}
	if got := len(dense.dirsAtLevel(1)); got != dense.topDirs*dense.fanout {
		t.Fatalf("level 1 has %d dirs", got)
	}
}
