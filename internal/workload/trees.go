package workload

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/sched"
)

// treeSpec describes a directory tree used by the rm and pfind benchmarks.
// The paper's dense tree has 2 top-level directories, 3 sub-levels with 10
// directories and 2000 files per sub-level; the sparse tree has 1 top-level
// directory and 14 levels with 2 subdirectories per level. The defaults here
// are scaled-down versions with the same shape (wide-and-shallow with many
// files vs narrow-and-deep with none), which is what the benchmarks stress.
type treeSpec struct {
	root        string
	topDirs     int
	depth       int  // sub-levels below each top-level directory
	fanout      int  // directories per level
	filesPerDir int  // files in every directory
	distributed bool // request distributed directories
}

// denseTree returns the scaled dense tree specification.
func denseTree(env *Env) treeSpec {
	return treeSpec{
		root:        "/dense",
		topDirs:     2,
		depth:       2,
		fanout:      3,
		filesPerDir: env.iters(24),
		distributed: true,
	}
}

// sparseTree returns the scaled sparse tree specification.
func sparseTree(env *Env) treeSpec {
	depth := 7
	if env.Scale > 0 && env.Scale < 0.2 {
		depth = 5
	}
	return treeSpec{
		root:        "/sparse",
		topDirs:     1,
		depth:       depth,
		fanout:      2,
		filesPerDir: 0,
		distributed: false,
	}
}

// dirsAtLevel returns the directory paths at the given level (0 = the
// top-level directories themselves).
func (t treeSpec) dirsAtLevel(level int) []string {
	if level == 0 {
		out := make([]string, 0, t.topDirs)
		for i := 0; i < t.topDirs; i++ {
			out = append(out, fmt.Sprintf("%s/top%d", t.root, i))
		}
		return out
	}
	var out []string
	for _, parent := range t.dirsAtLevel(level - 1) {
		for i := 0; i < t.fanout; i++ {
			out = append(out, fmt.Sprintf("%s/d%d", parent, i))
		}
	}
	return out
}

// allDirs returns every directory in the tree, shallowest first (excluding
// the root itself).
func (t treeSpec) allDirs() []string {
	out := []string{t.root}
	for level := 0; level <= t.depth; level++ {
		out = append(out, t.dirsAtLevel(level)...)
	}
	return out
}

// allFiles returns every file path in the tree.
func (t treeSpec) allFiles() []string {
	if t.filesPerDir == 0 {
		return nil
	}
	var out []string
	for level := 0; level <= t.depth; level++ {
		for _, dir := range t.dirsAtLevel(level) {
			for i := 0; i < t.filesPerDir; i++ {
				out = append(out, fmt.Sprintf("%s/f%04d", dir, i))
			}
		}
	}
	return out
}

// build creates the tree. It runs in a root process (setup phase).
func (t treeSpec) build(env *Env) error {
	return runRoot(env, "tree-setup", func(p *sched.Proc) int {
		fs := env.fs(p)
		opt := fsapi.MkdirOpt{Distributed: t.distributed}
		for _, dir := range t.allDirs() {
			if err := fs.Mkdir(dir, opt); err != nil && !fsapi.IsErrno(err, fsapi.EEXIST) {
				return 1
			}
		}
		for _, file := range t.allFiles() {
			fd, err := fs.Open(file, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
			if err != nil {
				return 1
			}
			if _, err := fs.Write(fd, []byte("x")); err != nil {
				return 1
			}
			if err := fs.Close(fd); err != nil {
				return 1
			}
		}
		return 0
	})
}

// removeParallel removes the tree: files are unlinked by parallel workers
// (partitioned round-robin), then directories are removed bottom-up, one
// parallel worker pass per level.
func (t treeSpec) removeParallel(env *Env) (int, error) {
	files := t.allFiles()
	nworkers := env.workers()
	ops := 0

	if len(files) > 0 {
		err := runRoot(env, "rm-files", func(p *sched.Proc) int {
			return fanOut(p, nworkers, func(wp *sched.Proc, idx int) int {
				fs := env.fs(wp)
				for i := idx; i < len(files); i += nworkers {
					if err := fs.Unlink(files[i]); err != nil {
						return 1
					}
				}
				return 0
			})
		})
		if err != nil {
			return ops, err
		}
		ops += len(files)
	}

	for level := t.depth; level >= 0; level-- {
		dirs := t.dirsAtLevel(level)
		err := runRoot(env, "rm-dirs", func(p *sched.Proc) int {
			return fanOut(p, nworkers, func(wp *sched.Proc, idx int) int {
				fs := env.fs(wp)
				for i := idx; i < len(dirs); i += nworkers {
					if err := fs.Rmdir(dirs[i]); err != nil {
						return 1
					}
				}
				return 0
			})
		})
		if err != nil {
			return ops, err
		}
		ops += len(dirs)
	}

	err := runRoot(env, "rm-root", func(p *sched.Proc) int {
		if err := env.fs(p).Rmdir(t.root); err != nil {
			return 1
		}
		return 0
	})
	if err != nil {
		return ops, err
	}
	return ops + 1, nil
}

// traverse recursively lists dir, stats every entry, and recurses into
// subdirectories (the pfind benchmark's per-worker traversal). It returns
// the number of operations performed.
func traverse(fs fsapi.Client, dir string) (int, error) {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	ops := 1
	for _, ent := range ents {
		path := dir + "/" + ent.Name
		if _, err := fs.Stat(path); err != nil {
			return ops, err
		}
		ops++
		if ent.Type == fsapi.TypeDir {
			sub, err := traverse(fs, path)
			ops += sub
			if err != nil {
				return ops, err
			}
		}
	}
	return ops, nil
}
