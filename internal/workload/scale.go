package workload

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/sched"
)

// ScaleSweep is the harness-scaling workload behind `hare-bench -scale`: every
// worker builds and then walks a large private subtree (mkdir + create +
// stat), with nothing shared between workers except the root directory. The
// disjoint per-worker namespaces keep it valid under the parallel virtual-time
// engine (DESIGN.md §13) and let file counts reach millions without the
// cross-worker contention the paper's microbenchmarks deliberately create —
// this workload measures the harness, not Hare.
type ScaleSweep struct {
	// FilesPerWorker is how many files each worker creates (spread over
	// DirsPerWorker subdirectories). Zero means env.iters(2000).
	FilesPerWorker int
	// DirsPerWorker is how many subdirectories each worker spreads its files
	// over. Zero means one directory per 512 files (at least 1).
	DirsPerWorker int
	// StatEvery makes each worker re-stat every StatEvery'th file after the
	// create phase. Zero means 8.
	StatEvery int
}

// Name implements Workload.
func (ScaleSweep) Name() string { return "scale" }

// Placement implements Workload.
func (ScaleSweep) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the shared root directory.
func (ScaleSweep) Setup(env *Env) error {
	return runRoot(env, "scale-setup", func(p *sched.Proc) int {
		if err := env.fs(p).Mkdir("/scale", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return 0
	})
}

// params resolves the workload's tunables against the environment.
func (w ScaleSweep) params(env *Env) (files, dirs, statEvery int) {
	files = w.FilesPerWorker
	if files == 0 {
		files = env.iters(2000)
	}
	dirs = w.DirsPerWorker
	if dirs == 0 {
		dirs = (files + 511) / 512
	}
	if dirs < 1 {
		dirs = 1
	}
	statEvery = w.StatEvery
	if statEvery == 0 {
		statEvery = 8
	}
	return files, dirs, statEvery
}

// Ops returns the operation count Run will report, without running anything
// (the bench sweep uses it to size throughput columns up front).
func (w ScaleSweep) Ops(env *Env) int {
	files, dirs, statEvery := w.params(env)
	n := env.workers()
	perWorker := 1 + dirs + files*2 + (files+statEvery-1)/statEvery
	return perWorker * n
}

// Run implements Workload. Each worker performs, in its own subtree:
// one mkdir for the subtree root, DirsPerWorker mkdirs, FilesPerWorker
// create+close pairs, and FilesPerWorker/StatEvery stats.
func (w ScaleSweep) Run(env *Env) (int, error) {
	files, dirs, statEvery := w.params(env)
	n := env.workers()
	err := runRoot(env, "scale", func(p *sched.Proc) int {
		return fanOut(p, n, func(wp *sched.Proc, idx int) int {
			fs := env.fs(wp)
			root := fmt.Sprintf("/scale/w%04d", idx)
			if err := fs.Mkdir(root, fsapi.MkdirOpt{}); err != nil {
				return 1
			}
			for d := 0; d < dirs; d++ {
				if err := fs.Mkdir(fmt.Sprintf("%s/d%04d", root, d), fsapi.MkdirOpt{}); err != nil {
					return 1
				}
			}
			for i := 0; i < files; i++ {
				name := fmt.Sprintf("%s/d%04d/f%07d", root, i%dirs, i)
				fd, err := fs.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
				if err != nil {
					return 1
				}
				if err := fs.Close(fd); err != nil {
					return 1
				}
			}
			for i := 0; i < files; i += statEvery {
				name := fmt.Sprintf("%s/d%04d/f%07d", root, i%dirs, i)
				if _, err := fs.Stat(name); err != nil {
					return 1
				}
			}
			return 0
		})
	})
	if err != nil {
		return 0, err
	}
	return w.Ops(env), nil
}
