package workload

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/sched"
)

// Creates is the creates microbenchmark: every worker creates many files in
// one shared (distributed) directory (§5.2). It stresses concurrent
// directory-entry insertion.
type Creates struct{ PerWorker int }

// Name implements Workload.
func (Creates) Name() string { return "creates" }

// Placement implements Workload.
func (Creates) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the shared directory.
func (Creates) Setup(env *Env) error {
	return runRoot(env, "creates-setup", func(p *sched.Proc) int {
		if err := env.fs(p).Mkdir("/creates", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return 0
	})
}

// Run implements Workload.
func (w Creates) Run(env *Env) (int, error) {
	per := w.PerWorker
	if per == 0 {
		per = env.iters(400)
	}
	n := env.workers()
	err := runRoot(env, "creates", func(p *sched.Proc) int {
		return fanOut(p, n, func(wp *sched.Proc, idx int) int {
			fs := env.fs(wp)
			for i := 0; i < per; i++ {
				name := fmt.Sprintf("/creates/w%02d-f%05d", idx, i)
				fd, err := fs.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
				if err != nil {
					return 1
				}
				if err := fs.Close(fd); err != nil {
					return 1
				}
			}
			return 0
		})
	})
	return per * n * 2, err
}

// Writes is the writes microbenchmark: every worker repeatedly writes to its
// own file (stressing data-path throughput and direct buffer-cache access).
type Writes struct {
	PerWorker int
	ChunkSize int
}

// Name implements Workload.
func (Writes) Name() string { return "writes" }

// Placement implements Workload.
func (Writes) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the shared directory holding the per-worker files.
func (Writes) Setup(env *Env) error {
	return runRoot(env, "writes-setup", func(p *sched.Proc) int {
		if err := env.fs(p).Mkdir("/writes", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return 0
	})
}

// Run implements Workload.
func (w Writes) Run(env *Env) (int, error) {
	per := w.PerWorker
	if per == 0 {
		per = env.iters(600)
	}
	chunk := w.ChunkSize
	if chunk == 0 {
		chunk = 1024
	}
	n := env.workers()
	err := runRoot(env, "writes", func(p *sched.Proc) int {
		return fanOut(p, n, func(wp *sched.Proc, idx int) int {
			fs := env.fs(wp)
			name := fmt.Sprintf("/writes/w%02d.dat", idx)
			fd, err := fs.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
			if err != nil {
				return 1
			}
			buf := make([]byte, chunk)
			fillPattern(buf, uint64(idx)+1)
			for i := 0; i < per; i++ {
				if _, err := fs.Write(fd, buf); err != nil {
					return 1
				}
				// Periodically rewind so the file does not grow without
				// bound; the benchmark measures write throughput, not
				// file size.
				if (i+1)%64 == 0 {
					if _, err := fs.Seek(fd, 0, fsapi.SeekSet); err != nil {
						return 1
					}
				}
			}
			if err := fs.Close(fd); err != nil {
				return 1
			}
			return 0
		})
	})
	return per * n, err
}

// Renames is the renames microbenchmark: every worker repeatedly renames its
// file within a shared distributed directory, exercising the two-server
// ADD_MAP / RM_MAP protocol.
type Renames struct{ PerWorker int }

// Name implements Workload.
func (Renames) Name() string { return "renames" }

// Placement implements Workload.
func (Renames) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the shared directory and one file per worker.
func (Renames) Setup(env *Env) error {
	n := env.workers()
	return runRoot(env, "renames-setup", func(p *sched.Proc) int {
		fs := env.fs(p)
		if err := fs.Mkdir("/renames", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		for i := 0; i < n; i++ {
			fd, err := fs.Open(fmt.Sprintf("/renames/w%02d-a", i), fsapi.OCreate, fsapi.Mode644)
			if err != nil {
				return 1
			}
			if err := fs.Close(fd); err != nil {
				return 1
			}
		}
		return 0
	})
}

// Run implements Workload.
func (w Renames) Run(env *Env) (int, error) {
	per := w.PerWorker
	if per == 0 {
		per = env.iters(400)
	}
	n := env.workers()
	err := runRoot(env, "renames", func(p *sched.Proc) int {
		return fanOut(p, n, func(wp *sched.Proc, idx int) int {
			fs := env.fs(wp)
			a := fmt.Sprintf("/renames/w%02d-a", idx)
			b := fmt.Sprintf("/renames/w%02d-b", idx)
			for i := 0; i < per; i++ {
				from, to := a, b
				if i%2 == 1 {
					from, to = b, a
				}
				if err := fs.Rename(from, to); err != nil {
					return 1
				}
			}
			return 0
		})
	})
	return per * n, err
}

// Directories is the directories microbenchmark: every worker repeatedly
// creates and removes its own subdirectories under a shared parent.
type Directories struct{ PerWorker int }

// Name implements Workload.
func (Directories) Name() string { return "directories" }

// Placement implements Workload.
func (Directories) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the shared parent directory.
func (Directories) Setup(env *Env) error {
	return runRoot(env, "directories-setup", func(p *sched.Proc) int {
		if err := env.fs(p).Mkdir("/dirs", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return 0
	})
}

// Run implements Workload.
func (w Directories) Run(env *Env) (int, error) {
	per := w.PerWorker
	if per == 0 {
		per = env.iters(200)
	}
	n := env.workers()
	err := runRoot(env, "directories", func(p *sched.Proc) int {
		return fanOut(p, n, func(wp *sched.Proc, idx int) int {
			fs := env.fs(wp)
			for i := 0; i < per; i++ {
				dir := fmt.Sprintf("/dirs/w%02d-d%04d", idx, i)
				if err := fs.Mkdir(dir, fsapi.MkdirOpt{}); err != nil {
					return 1
				}
				if err := fs.Rmdir(dir); err != nil {
					return 1
				}
			}
			return 0
		})
	})
	return per * n * 2, err
}

// RM removes a previously built directory tree in parallel (the rm dense and
// rm sparse benchmarks). The sparse variant disables directory distribution,
// matching the paper's per-benchmark choice (rmdir on near-empty distributed
// directories pays a broadcast for nothing).
type RM struct {
	Sparse bool
	tree   treeSpec
}

// Name implements Workload.
func (w RM) Name() string {
	if w.Sparse {
		return "rm sparse"
	}
	return "rm dense"
}

// Placement implements Workload.
func (RM) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup builds the tree that Run removes.
func (w *RM) Setup(env *Env) error {
	if w.Sparse {
		w.tree = sparseTree(env)
	} else {
		w.tree = denseTree(env)
	}
	return w.tree.build(env)
}

// Run implements Workload.
func (w *RM) Run(env *Env) (int, error) {
	return w.tree.removeParallel(env)
}

// PFind recursively lists a directory tree from every worker in parallel
// (the pfind dense / pfind sparse benchmarks). Every worker walks the whole
// tree; with few directories (sparse) all workers hit the same servers in
// the same order, which is the scalability bottleneck discussed in §5.3.1.
type PFind struct {
	Sparse bool
	tree   treeSpec
}

// Name implements Workload.
func (w PFind) Name() string {
	if w.Sparse {
		return "pfind sparse"
	}
	return "pfind dense"
}

// Placement implements Workload.
func (PFind) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup builds the tree that Run traverses.
func (w *PFind) Setup(env *Env) error {
	if w.Sparse {
		w.tree = sparseTree(env)
	} else {
		w.tree = denseTree(env)
	}
	return w.tree.build(env)
}

// Run implements Workload.
func (w *PFind) Run(env *Env) (int, error) {
	n := env.workers()
	var total int
	root := w.tree.root
	err := runRoot(env, w.Name(), func(p *sched.Proc) int {
		return fanOut(p, n, func(wp *sched.Proc, idx int) int {
			if _, err := traverse(env.fs(wp), root); err != nil {
				return 1
			}
			return 0
		})
	})
	if err != nil {
		return 0, err
	}
	// Every worker performs the same traversal; count it once and multiply.
	perWorker := len(w.tree.allDirs()) + len(w.tree.allFiles())
	total = perWorker * n
	return total, nil
}
