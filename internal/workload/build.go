package workload

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/sched"
	"repro/internal/sim"
)

// BuildLinux models a parallel kernel build driven by make (§5.2's largest
// benchmark). It exercises the POSIX features the paper calls out:
//
//   - make's jobserver is a pipe shared by every compile job (a shared file
//     descriptor inherited across fork/exec),
//   - compile jobs are exec'd onto other cores through the scheduling
//     servers (random placement, as the paper configures),
//   - each job stats headers, reads its source file, performs CPU-bound
//     compilation, and writes an object file into a shared directory,
//   - a final link step reads every object file and writes the kernel image.
type BuildLinux struct {
	Sources  int
	Dirs     int
	SrcSize  int
	Parallel int // max concurrent jobs (jobserver tokens); 0 = one per core
}

// Name implements Workload.
func (BuildLinux) Name() string { return "build linux" }

// Placement implements Workload (the paper uses random placement here).
func (BuildLinux) Placement() sched.Policy { return sched.PolicyRandom }

// Setup creates the source tree and the shared object directory.
func (w BuildLinux) Setup(env *Env) error {
	sources, dirs, srcSize := w.params(env)
	return runRoot(env, "build-setup", func(p *sched.Proc) int {
		fs := env.fs(p)
		for _, dir := range []string{"/kernel", "/kernel/obj", "/kernel/include"} {
			if err := fs.Mkdir(dir, fsapi.MkdirOpt{Distributed: true}); err != nil {
				return 1
			}
		}
		for d := 0; d < dirs; d++ {
			if err := fs.Mkdir(fmt.Sprintf("/kernel/src%02d", d), fsapi.MkdirOpt{Distributed: true}); err != nil {
				return 1
			}
		}
		// A handful of shared headers that every compile job stats.
		header := make([]byte, 2048)
		fillPattern(header, 7)
		for h := 0; h < 8; h++ {
			fd, err := fs.Open(fmt.Sprintf("/kernel/include/h%02d.h", h), fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
			if err != nil {
				return 1
			}
			if _, err := fs.Write(fd, header); err != nil {
				return 1
			}
			if err := fs.Close(fd); err != nil {
				return 1
			}
		}
		src := make([]byte, srcSize)
		fillPattern(src, 13)
		for i := 0; i < sources; i++ {
			name := fmt.Sprintf("/kernel/src%02d/unit%04d.c", i%dirs, i)
			fd, err := fs.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
			if err != nil {
				return 1
			}
			if _, err := fs.Write(fd, src); err != nil {
				return 1
			}
			if err := fs.Close(fd); err != nil {
				return 1
			}
		}
		return 0
	})
}

func (w BuildLinux) params(env *Env) (sources, dirs, srcSize int) {
	sources = w.Sources
	if sources == 0 {
		sources = env.iters(120)
	}
	dirs = w.Dirs
	if dirs == 0 {
		dirs = 8
	}
	if dirs > sources {
		dirs = sources
	}
	srcSize = w.SrcSize
	if srcSize == 0 {
		srcSize = 8192
	}
	return sources, dirs, srcSize
}

// Run implements Workload.
func (w BuildLinux) Run(env *Env) (int, error) {
	sources, dirs, srcSize := w.params(env)
	parallel := w.Parallel
	if parallel == 0 {
		parallel = env.workers()
	}
	err := runRoot(env, "make", func(p *sched.Proc) int {
		fs := env.fs(p)

		// make's jobserver: a pipe pre-loaded with one token per allowed
		// concurrent job. Every compile job inherits both ends.
		jsR, jsW, err := fs.Pipe()
		if err != nil {
			return 1
		}
		tokens := make([]byte, parallel)
		if _, err := fs.Write(jsW, tokens); err != nil {
			return 1
		}

		// make stats the whole tree to compute the dependency graph.
		if _, err := traverse(fs, "/kernel"); err != nil {
			return 1
		}

		handles := make([]*sched.Handle, 0, sources)
		for i := 0; i < sources; i++ {
			unit := i
			src := fmt.Sprintf("/kernel/src%02d/unit%04d.c", unit%dirs, unit)
			obj := fmt.Sprintf("/kernel/obj/unit%04d.o", unit)
			h, err := p.Spawn([]string{"cc", src}, func(job *sched.Proc) int {
				jfs := env.fs(job)
				// Acquire a jobserver token (blocks while the build is
				// at its concurrency limit).
				tok := make([]byte, 1)
				if n, err := jfs.Read(jsR, tok); err != nil || n != 1 {
					return 1
				}
				defer func() { _, _ = jfs.Write(jsW, tok) }()

				// The compiler stats the shared headers...
				for hdr := 0; hdr < 8; hdr++ {
					if _, err := jfs.Stat(fmt.Sprintf("/kernel/include/h%02d.h", hdr)); err != nil {
						return 1
					}
				}
				// ... reads the translation unit ...
				fd, err := jfs.Open(src, fsapi.ORdOnly, 0)
				if err != nil {
					return 1
				}
				buf := make([]byte, srcSize)
				if _, err := jfs.Read(fd, buf); err != nil {
					return 1
				}
				if err := jfs.Close(fd); err != nil {
					return 1
				}
				// ... compiles (CPU-bound) ...
				job.Compute(sim.Cycles(compilePerFile))
				// ... and writes the object file into the shared obj/
				// directory.
				ofd, err := jfs.Open(obj, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
				if err != nil {
					return 1
				}
				if _, err := jfs.Write(ofd, buf[:srcSize/2]); err != nil {
					return 1
				}
				if err := jfs.Close(ofd); err != nil {
					return 1
				}
				return 0
			}, true)
			if err != nil {
				return 1
			}
			handles = append(handles, h)
		}
		status := 0
		for _, h := range handles {
			if s := h.Wait(); s != 0 {
				status = s
			}
		}
		if status != 0 {
			return status
		}

		// Link: read every object file, write the kernel image.
		img, err := fs.Open("/kernel/vmlinux", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode755)
		if err != nil {
			return 1
		}
		objBuf := make([]byte, srcSize/2)
		for i := 0; i < sources; i++ {
			fd, err := fs.Open(fmt.Sprintf("/kernel/obj/unit%04d.o", i), fsapi.ORdOnly, 0)
			if err != nil {
				return 1
			}
			if _, err := fs.Read(fd, objBuf); err != nil {
				return 1
			}
			if err := fs.Close(fd); err != nil {
				return 1
			}
			p.Compute(sim.Cycles(linkPerObject))
			if _, err := fs.Write(img, objBuf); err != nil {
				return 1
			}
		}
		if err := fs.Close(img); err != nil {
			return 1
		}
		fs.Close(jsR)
		fs.Close(jsW)
		return 0
	})
	// Rough operation count: per compile job ~16 calls plus the link pass.
	return sources*16 + sources*3, err
}
