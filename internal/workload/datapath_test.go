package workload

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/sched"
)

// The zero-waste data path (DESIGN.md §8) is a pure performance layer:
// dirty-line writeback, version-skipped invalidation, and extent-coded block
// maps must leave a byte-identical namespace behind with the technique on or
// off — including when another client wrote the file between close and
// reopen (the case version matching must never mistake for "unchanged"),
// and including crash recovery with durability enabled.

// datapathSystem builds a Hare deployment with the data path toggled.
func datapathSystem(t *testing.T, datapath bool, d *core.Durability) (*core.System, *Env) {
	t.Helper()
	tq := core.AllTechniques()
	tq.DataPath = datapath
	cfg := core.Config{
		Cores:            4,
		Servers:          4,
		Timeshare:        true,
		Techniques:       tq,
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 32 << 20,
	}
	if d != nil {
		cfg.Durability = *d
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	env := &Env{Procs: sys.Procs(), Cores: sys.AppCores(), Counter: NewOpCounter(), Scale: 0.05}
	if d != nil {
		env.Faults = coreFaults{sys}
	}
	return sys, env
}

func TestDataPathModesProduceIdenticalState(t *testing.T) {
	cases := map[string]func() Workload{
		"bigfile":   func() Workload { return BigFile{FileKiB: 64, Rounds: 2} },
		"writes":    func() Workload { return Writes{PerWorker: 40, ChunkSize: 1500} },
		"smallfile": func() Workload { return SmallFile{PerWorker: 15, WriteBytes: 700} },
		"fsstress":  func() Workload { return FSStress{PerWorker: 60} },
	}
	for name, mk := range cases {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			snaps := make(map[bool]map[string]string)
			for _, datapath := range []bool{true, false} {
				sys, env := datapathSystem(t, datapath, nil)
				w := mk()
				if err := w.Setup(env); err != nil {
					t.Fatalf("setup (datapath=%v): %v", datapath, err)
				}
				if _, err := w.Run(env); err != nil {
					t.Fatalf("run (datapath=%v): %v", datapath, err)
				}
				snap := make(map[string]string)
				snapshotFS(t, sys.NewClient(0), "/", snap)
				snaps[datapath] = snap
			}
			if !reflect.DeepEqual(snaps[true], snaps[false]) {
				t.Fatalf("namespace diverged between modes:\n on: %v\noff: %v", snaps[true], snaps[false])
			}
			if len(snaps[true]) == 0 {
				t.Fatal("snapshot is empty; the workload left nothing to compare")
			}
		})
	}
}

// TestDataPathReopenAfterRemoteWrite pins the consistency contract version
// matching must preserve: a reopen after another client wrote and closed the
// file must see the new data (the remote close moved the version, so the
// stale cached copy is invalidated), while a reopen after only local
// activity skips invalidation and still reads correctly.
func TestDataPathReopenAfterRemoteWrite(t *testing.T) {
	sys, _ := datapathSystem(t, true, nil)
	a := sys.NewClient(0)
	b := sys.NewClient(2)

	p1 := bytes.Repeat([]byte{0x11}, 9000) // spans 3 blocks
	p2 := bytes.Repeat([]byte{0x22}, 9000)

	writeAll := func(c fsapi.Client, data []byte) {
		t.Helper()
		fd, err := c.Open("/shared-data", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(fd, data); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	readAll := func(c fsapi.Client, n int) []byte {
		t.Helper()
		fd, err := c.Open("/shared-data", fsapi.ORdOnly, 0)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, n)
		total := 0
		for total < n {
			m, err := c.Read(fd, buf[total:])
			if err != nil || m == 0 {
				break
			}
			total += m
		}
		if err := c.Close(fd); err != nil {
			t.Fatal(err)
		}
		return buf[:total]
	}

	writeAll(a, p1)
	// b reads p1, caching the blocks on its core.
	if got := readAll(b, len(p1)); !bytes.Equal(got, p1) {
		t.Fatal("b's first read did not see a's data")
	}
	// b reopens with nothing changed: the version matches, invalidation is
	// skipped, and the data is still correct.
	if got := readAll(b, len(p1)); !bytes.Equal(got, p1) {
		t.Fatal("b's version-matched reread returned wrong data")
	}
	if skips := b.Stats().VersionSkips; skips == 0 {
		t.Fatal("b's matched reopen did not take the version-skip path")
	}
	// a overwrites and closes; b's cached copy is now stale and its next
	// open must invalidate (version moved) and read p2 — never p1.
	writeAll(a, p2)
	if got := readAll(b, len(p2)); !bytes.Equal(got, p2) {
		t.Fatal("b read stale data after a remote write: version skip served a dead version")
	}
	// a's own reopen skips (it wrote last) and sees its own data.
	before := a.Stats().VersionSkips
	if got := readAll(a, len(p2)); !bytes.Equal(got, p2) {
		t.Fatal("a's reread after its own close is wrong")
	}
	if a.Stats().VersionSkips == before {
		t.Fatal("a's reopen after its own dirty close did not skip invalidation")
	}
}

// TestDataPathCrashRecoveryBothModes runs the self-verifying crash-injection
// workload with the data path on and off under durability, and compares the
// recovered namespaces across modes. Recovery restarts versions in a fresh
// incarnation range, so post-recovery opens must never skip on a pre-crash
// version.
func TestDataPathCrashRecoveryBothModes(t *testing.T) {
	snaps := make(map[bool]map[string]string)
	for _, datapath := range []bool{true, false} {
		d := &core.Durability{Enabled: true, CheckpointEvery: 16, GroupCommitInterval: 20_000}
		sys, env := datapathSystem(t, datapath, d)
		env.Scale = 1
		w := CrashRecovery{FilesPerRound: 3}
		runOne(t, env, w)
		snap := make(map[string]string)
		snapshotFS(t, sys.NewClient(0), "/crash", snap)
		snaps[datapath] = snap
	}
	if !reflect.DeepEqual(snaps[true], snaps[false]) {
		t.Fatalf("recovered namespace diverged between modes:\n on: %v\noff: %v", snaps[true], snaps[false])
	}
	if len(snaps[true]) == 0 {
		t.Fatal("crash workload left nothing to compare")
	}
}
