package workload

// All returns a fresh instance of every benchmark in the paper's suite, in
// the order the figures list them.
func All() []Workload {
	return []Workload{
		Creates{},
		Writes{},
		Renames{},
		Directories{},
		SmallFile{},
		BigFile{},
		&RM{Sparse: false},
		&RM{Sparse: true},
		&PFind{Sparse: false},
		&PFind{Sparse: true},
		Extract{},
		Punzip{},
		Mailbench{},
		FSStress{},
		BuildLinux{},
	}
}

// Names returns the benchmark names in figure order.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name()
	}
	return out
}

// FaultBenchmarks returns the fault-injection workloads. They are kept out
// of All() because they require a backend that exposes crash/recover (a
// Hare deployment with durability enabled), which the baselines do not.
func FaultBenchmarks() []Workload {
	return []Workload{
		CrashRecovery{},
	}
}

// ElasticBenchmarks returns the online-membership workloads. They are kept
// out of All() because their interesting half needs a backend exposing an
// ElasticController (a Hare deployment with MaxServers headroom); without
// one they degrade to a static create/read storm.
func ElasticBenchmarks() []Workload {
	return []Workload{
		&Elastic{},
	}
}

// ScaleBenchmarks returns the harness-scaling workloads. They are kept out
// of All() because they size the namespace to stress the harness engine
// (hundreds of servers, millions of files), not to reproduce a paper figure.
func ScaleBenchmarks() []Workload {
	return []Workload{
		ScaleSweep{},
	}
}

// ByName returns a fresh instance of the named benchmark.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name() == name {
			return w, true
		}
	}
	for _, w := range FaultBenchmarks() {
		if w.Name() == name {
			return w, true
		}
	}
	for _, w := range ElasticBenchmarks() {
		if w.Name() == name {
			return w, true
		}
	}
	for _, w := range ScaleBenchmarks() {
		if w.Name() == name {
			return w, true
		}
	}
	return nil, false
}

// Microbenchmarks returns only the microbenchmarks (used by a few ablation
// figures that focus on them).
func Microbenchmarks() []Workload {
	return []Workload{
		Creates{},
		Writes{},
		Renames{},
		Directories{},
		SmallFile{},
		&RM{Sparse: false},
		&RM{Sparse: true},
		&PFind{Sparse: false},
		&PFind{Sparse: true},
	}
}

// ParallelBenchmarks returns the benchmarks used in the 40-core Hare vs
// Linux comparison (Figure 15), which omits the rm variants.
func ParallelBenchmarks() []Workload {
	return []Workload{
		Creates{},
		Writes{},
		Renames{},
		Directories{},
		&PFind{Sparse: false},
		&PFind{Sparse: true},
		Punzip{},
		Mailbench{},
		FSStress{},
		BuildLinux{},
	}
}
