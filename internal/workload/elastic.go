package workload

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Elastic is the scale-out-under-load workload (DESIGN.md §9): worker
// processes hammer a distributed directory with create/write/read-back
// traffic in two phases, and between the phases the deployment grows by one
// file server — shard migration runs while phase B's traffic arrives, so
// frozen-shard parking, EEPOCH refresh, and post-rebalance routing are all
// on the measured path. With Drain set, the grown server is drained again
// afterwards and the whole tree re-verified, exercising the reverse
// membership change.
//
// On a backend without an ElasticController the membership changes are
// skipped and the same operation stream runs statically; the elastic
// namespace-equivalence tests rely on the two runs producing byte-identical
// trees.
type Elastic struct {
	// PerWorker is how many files each worker creates per phase
	// (default 24, scaled by Env.Scale).
	PerWorker int
	// Drain also drains the added server again after phase B.
	Drain bool

	// Measured by Run (virtual time of each phase, and the id the backend
	// assigned to the added server).
	PreCycles   sim.Cycles
	PostCycles  sim.Cycles
	AddedServer int
}

// Name implements Workload.
func (e *Elastic) Name() string { return "elastic" }

// Placement implements Workload.
func (e *Elastic) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the shared distributed directory.
func (e *Elastic) Setup(env *Env) error {
	return runRoot(env, "elastic-setup", func(p *sched.Proc) int {
		if err := env.fs(p).Mkdir("/elastic", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return 0
	})
}

// phase runs one create/write/read-back wave and returns the latest child
// completion time.
func (e *Elastic) phase(env *Env, p *sched.Proc, prefix string, per int) (sim.Cycles, int) {
	workers := env.workers()
	handles := make([]*sched.Handle, 0, workers)
	for wi := 0; wi < workers; wi++ {
		idx := wi
		h, err := p.Spawn([]string{fmt.Sprintf("elastic-%s-%d", prefix, idx)}, func(wp *sched.Proc) int {
			fs := env.fs(wp)
			for i := 0; i < per; i++ {
				path := fmt.Sprintf("/elastic/%s-w%02d-%04d", prefix, idx, i)
				fd, err := fs.Open(path, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
				if err != nil {
					return 1
				}
				if _, err := fs.Write(fd, []byte(path)); err != nil {
					return 1
				}
				if err := fs.Close(fd); err != nil {
					return 1
				}
				fd, err = fs.Open(path, fsapi.ORdOnly, 0)
				if err != nil {
					return 1
				}
				buf := make([]byte, len(path))
				n, err := fs.Read(fd, buf)
				if err != nil || string(buf[:n]) != path {
					return 1
				}
				if err := fs.Close(fd); err != nil {
					return 1
				}
			}
			return 0
		}, true)
		if err != nil {
			return 0, 1
		}
		handles = append(handles, h)
	}
	var latest sim.Cycles
	status := 0
	for _, h := range handles {
		if s := h.Wait(); s != 0 {
			status = s
		}
		if h.EndTime() > latest {
			latest = h.EndTime()
		}
	}
	// Pull the root's clock up to the phase boundary so consecutive phases
	// do not overlap in virtual time (Wait alone does not advance it).
	if c, ok := p.FS.(sched.Clocked); ok {
		c.AdvanceClock(latest)
	}
	return latest, status
}

// Run executes the two traffic phases around the membership change and
// returns the number of files processed.
func (e *Elastic) Run(env *Env) (int, error) {
	per := env.iters(e.PerWorker)
	if e.PerWorker == 0 {
		per = env.iters(24)
	}
	workers := env.workers()
	var runErr error
	err := runRoot(env, "elastic", func(p *sched.Proc) int {
		var start sim.Cycles
		if c, ok := p.FS.(sched.Clocked); ok {
			start = c.Clock()
		}
		endA, status := e.phase(env, p, "a", per)
		if status != 0 {
			runErr = fmt.Errorf("elastic: phase A failed")
			return 1
		}
		e.PreCycles = endA - start

		if env.Elastic != nil {
			id, err := env.Elastic.AddServer()
			if err != nil {
				runErr = fmt.Errorf("elastic: add server: %w", err)
				return 1
			}
			e.AddedServer = id
		}

		endB, status := e.phase(env, p, "b", per)
		if status != 0 {
			runErr = fmt.Errorf("elastic: phase B failed")
			return 1
		}
		e.PostCycles = endB - endA

		if e.Drain && env.Elastic != nil {
			if err := env.Elastic.RemoveServer(e.AddedServer); err != nil {
				runErr = fmt.Errorf("elastic: drain server %d: %w", e.AddedServer, err)
				return 1
			}
		}

		// Final verification sweep: every file from both phases must
		// still resolve and read back after all the shard movement.
		fs := env.fs(p)
		for _, prefix := range []string{"a", "b"} {
			for wi := 0; wi < workers; wi++ {
				for i := 0; i < per; i++ {
					path := fmt.Sprintf("/elastic/%s-w%02d-%04d", prefix, wi, i)
					st, err := fs.Stat(path)
					if err != nil || st.Size != int64(len(path)) {
						runErr = fmt.Errorf("elastic: verify %s: size %d err %v", path, st.Size, err)
						return 1
					}
				}
			}
		}
		return 0
	})
	if runErr != nil {
		return 0, runErr
	}
	if err != nil {
		return 0, err
	}
	return 2 * per * workers, nil
}
