package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// coreFaults adapts core.System to FaultInjector for tests (the bench
// package carries the same adapter for the harness).
type coreFaults struct{ sys *core.System }

func (f coreFaults) NumServers() int             { return f.sys.NumServers() }
func (f coreFaults) Checkpoint(server int) error { return f.sys.Checkpoint(server) }
func (f coreFaults) Crash(server int) error      { return f.sys.Crash(server) }
func (f coreFaults) Recover(server int) error {
	_, err := f.sys.Recover(server)
	return err
}

// durableEnv builds a Hare deployment with durability on and an Env whose
// Faults field targets it.
func durableEnv(t *testing.T, cores int, d core.Durability) (*Env, func()) {
	t.Helper()
	d.Enabled = true
	sys, err := core.New(core.Config{
		Cores:            cores,
		Servers:          cores,
		Timeshare:        true,
		Techniques:       core.AllTechniques(),
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 32 << 20,
		Durability:       d,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	env := &Env{
		Procs:   sys.Procs(),
		Cores:   sys.AppCores(),
		Counter: NewOpCounter(),
		Scale:   1,
		Faults:  coreFaults{sys},
	}
	return env, sys.Stop
}

func TestCrashRecoveryWorkload(t *testing.T) {
	env, stop := durableEnv(t, 4, core.Durability{})
	defer stop()
	w := CrashRecovery{}
	runOne(t, env, w)
}

func TestCrashRecoveryWorkloadWithAutoCheckpoints(t *testing.T) {
	env, stop := durableEnv(t, 2, core.Durability{CheckpointEvery: 8, GroupCommitInterval: 50_000})
	defer stop()
	w := CrashRecovery{FilesPerRound: 4}
	runOne(t, env, w)
}

func TestCrashRecoveryRequiresFaultInjector(t *testing.T) {
	env, stop := hareEnv(t, 2) // durability off: no Faults
	defer stop()
	w := CrashRecovery{}
	if err := w.Setup(env); err == nil {
		t.Fatal("setup accepted a backend without fault injection")
	}
}

func TestCrashRecoveryRegistered(t *testing.T) {
	if _, ok := ByName("crash recovery"); !ok {
		t.Fatal("crash recovery workload not reachable via ByName")
	}
	for _, w := range All() {
		if w.Name() == "crash recovery" {
			t.Fatal("crash recovery must not be in All(): baselines cannot run it")
		}
	}
}
