package workload

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/sched"
	"repro/internal/shadow"
)

// CrashRecovery is the fault-injection workload: it interleaves namespace
// and data mutations with server crashes, recovering each file server at
// least once mid-run, and verifies after every recovery that the namespace
// and every file's contents are byte-identical to a crash-free execution
// (tracked in an in-memory shadow model). Alternate rounds checkpoint the
// victim first, so both pure log replay and checkpoint+tail recovery are
// exercised; one round crashes and recovers twice back-to-back to verify
// replay idempotence.
//
// The workload requires a backend exposing Env.Faults (a Hare deployment
// with durability enabled) and drives all operations from a single process
// so the system is quiescent at each crash point.
type CrashRecovery struct {
	// FilesPerRound is how many files each mutation round creates
	// (default 6, scaled by Env.Scale).
	FilesPerRound int
}

// Name implements Workload.
func (CrashRecovery) Name() string { return "crash recovery" }

// Placement implements Workload.
func (CrashRecovery) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the shared distributed directory the mutations live in.
func (CrashRecovery) Setup(env *Env) error {
	if env.Faults == nil {
		return fmt.Errorf("crash recovery: backend exposes no fault injector (enable durability on a Hare backend)")
	}
	return runRoot(env, "crash-setup", func(p *sched.Proc) int {
		if err := env.fs(p).Mkdir("/crash", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return 0
	})
}

// writeShadowFile creates (or rewrites) a file in both worlds (the shared
// shadow.Model is the crash-free reference state; DESIGN.md §10).
func writeShadowFile(fs fsapi.Client, s *shadow.Model, path string, data []byte) error {
	fd, err := fs.Open(path, fsapi.OCreate|fsapi.OWrOnly|fsapi.OTrunc, fsapi.Mode644)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if _, err := fs.Write(fd, data); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := fs.Close(fd); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	s.SetFile(path, data, -1)
	return nil
}

// Run implements Workload.
func (w CrashRecovery) Run(env *Env) (int, error) {
	per := w.FilesPerRound
	if per == 0 {
		per = env.iters(6)
	}
	faults := env.Faults
	if faults == nil {
		return 0, fmt.Errorf("crash recovery: backend exposes no fault injector")
	}
	nsrv := faults.NumServers()
	sh := shadow.NewModel("/crash")
	ops := 0
	var runErr error

	// mutate performs one round of mixed namespace and data operations.
	mutate := func(fs fsapi.Client, round int) error {
		dir := fmt.Sprintf("/crash/r%02d", round)
		if err := fs.Mkdir(dir, fsapi.MkdirOpt{}); err != nil {
			return fmt.Errorf("mkdir %s: %w", dir, err)
		}
		sh.Mkdir(dir)
		ops++
		for i := 0; i < per; i++ {
			data := make([]byte, 512*(1+(round+i)%9)) // up to ~4.5 KiB: some files span blocks
			fillPattern(data, uint64(round*100+i+1))
			if err := writeShadowFile(fs, sh, fmt.Sprintf("%s/f%02d", dir, i), data); err != nil {
				return err
			}
			ops++
		}
		// Rename one file into the shared parent (two-server protocol).
		from := fmt.Sprintf("%s/f00", dir)
		to := fmt.Sprintf("/crash/moved-r%02d", round)
		if err := fs.Rename(from, to); err != nil {
			return fmt.Errorf("rename %s: %w", from, err)
		}
		sh.Rename(from, to)
		ops++
		// Unlink another.
		victim := fmt.Sprintf("%s/f01", dir)
		if per > 1 {
			if err := fs.Unlink(victim); err != nil {
				return fmt.Errorf("unlink %s: %w", victim, err)
			}
			sh.Unlink(victim)
			ops++
		}
		// A directory that is created and removed within the round: its
		// tombstone must survive recovery (a recreated name must work, a
		// stale lookup must not).
		tmp := fmt.Sprintf("%s/tmpdir", dir)
		if err := fs.Mkdir(tmp, fsapi.MkdirOpt{}); err != nil {
			return fmt.Errorf("mkdir %s: %w", tmp, err)
		}
		if err := fs.Rmdir(tmp); err != nil {
			return fmt.Errorf("rmdir %s: %w", tmp, err)
		}
		ops += 2
		return nil
	}

	err := runRoot(env, "crash-recovery", func(p *sched.Proc) int {
		fs := env.fs(p)
		for srv := 0; srv < nsrv; srv++ {
			if runErr = mutate(fs, 2*srv); runErr != nil {
				return 1
			}
			if srv%2 == 0 {
				// Even rounds: fold state into a checkpoint, then mutate
				// more so recovery must also replay a log tail.
				if runErr = faults.Checkpoint(srv); runErr != nil {
					return 1
				}
			}
			if runErr = mutate(fs, 2*srv+1); runErr != nil {
				return 1
			}

			// The system is quiescent: kill the victim and bring it back.
			if runErr = faults.Crash(srv); runErr != nil {
				return 1
			}
			if runErr = faults.Recover(srv); runErr != nil {
				return 1
			}
			if srv == 0 {
				// Idempotence: a second crash/recover with no mutations in
				// between must reproduce the same state (verified below).
				if runErr = faults.Crash(srv); runErr != nil {
					return 1
				}
				if runErr = faults.Recover(srv); runErr != nil {
					return 1
				}
			}
			if runErr = sh.Verify(fs); runErr != nil {
				runErr = fmt.Errorf("after recovering server %d: %w", srv, runErr)
				return 1
			}
		}
		return 0
	})
	if runErr != nil {
		return ops, runErr
	}
	return ops, err
}
