package workload

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fsapi"
	"repro/internal/sched"
)

// CrashRecovery is the fault-injection workload: it interleaves namespace
// and data mutations with server crashes, recovering each file server at
// least once mid-run, and verifies after every recovery that the namespace
// and every file's contents are byte-identical to a crash-free execution
// (tracked in an in-memory shadow model). Alternate rounds checkpoint the
// victim first, so both pure log replay and checkpoint+tail recovery are
// exercised; one round crashes and recovers twice back-to-back to verify
// replay idempotence.
//
// The workload requires a backend exposing Env.Faults (a Hare deployment
// with durability enabled) and drives all operations from a single process
// so the system is quiescent at each crash point.
type CrashRecovery struct {
	// FilesPerRound is how many files each mutation round creates
	// (default 6, scaled by Env.Scale).
	FilesPerRound int
}

// Name implements Workload.
func (CrashRecovery) Name() string { return "crash recovery" }

// Placement implements Workload.
func (CrashRecovery) Placement() sched.Policy { return sched.PolicyRoundRobin }

// Setup creates the shared distributed directory the mutations live in.
func (CrashRecovery) Setup(env *Env) error {
	if env.Faults == nil {
		return fmt.Errorf("crash recovery: backend exposes no fault injector (enable durability on a Hare backend)")
	}
	return runRoot(env, "crash-setup", func(p *sched.Proc) int {
		if err := env.fs(p).Mkdir("/crash", fsapi.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		return 0
	})
}

// shadow is the crash-free reference state: every path the workload has
// created, with file contents.
type shadow struct {
	dirs  map[string]bool
	files map[string][]byte
}

func newShadow() *shadow {
	return &shadow{dirs: map[string]bool{"/crash": true}, files: map[string][]byte{}}
}

// children returns the expected entry names directly under dir.
func (s *shadow) children(dir string) map[string]bool {
	out := make(map[string]bool)
	collect := func(path string) {
		if !strings.HasPrefix(path, dir+"/") {
			return
		}
		rest := strings.TrimPrefix(path, dir+"/")
		if !strings.Contains(rest, "/") {
			out[rest] = true
		}
	}
	for d := range s.dirs {
		collect(d)
	}
	for f := range s.files {
		collect(f)
	}
	return out
}

// verify walks every shadow directory and file and compares the live file
// system against the reference.
func (s *shadow) verify(fs fsapi.Client) error {
	dirs := make([]string, 0, len(s.dirs))
	for d := range s.dirs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		ents, err := fs.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("readdir %s: %w", dir, err)
		}
		want := s.children(dir)
		if len(ents) != len(want) {
			return fmt.Errorf("%s has %d entries, want %d", dir, len(ents), len(want))
		}
		for _, ent := range ents {
			if !want[ent.Name] {
				return fmt.Errorf("%s holds unexpected entry %q", dir, ent.Name)
			}
		}
	}
	files := make([]string, 0, len(s.files))
	for f := range s.files {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, path := range files {
		want := s.files[path]
		st, err := fs.Stat(path)
		if err != nil {
			return fmt.Errorf("stat %s: %w", path, err)
		}
		if st.Size != int64(len(want)) {
			return fmt.Errorf("%s is %d bytes, want %d", path, st.Size, len(want))
		}
		fd, err := fs.Open(path, fsapi.ORdOnly, 0)
		if err != nil {
			return fmt.Errorf("open %s: %w", path, err)
		}
		got := make([]byte, len(want))
		n, err := fs.Read(fd, got)
		fs.Close(fd)
		if err != nil {
			return fmt.Errorf("read %s: %w", path, err)
		}
		if !bytes.Equal(got[:n], want) {
			return fmt.Errorf("%s content diverged after recovery", path)
		}
	}
	return nil
}

// writeShadowFile creates (or rewrites) a file in both worlds.
func writeShadowFile(fs fsapi.Client, s *shadow, path string, data []byte) error {
	fd, err := fs.Open(path, fsapi.OCreate|fsapi.OWrOnly|fsapi.OTrunc, fsapi.Mode644)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if _, err := fs.Write(fd, data); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := fs.Close(fd); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	s.files[path] = data
	return nil
}

// Run implements Workload.
func (w CrashRecovery) Run(env *Env) (int, error) {
	per := w.FilesPerRound
	if per == 0 {
		per = env.iters(6)
	}
	faults := env.Faults
	if faults == nil {
		return 0, fmt.Errorf("crash recovery: backend exposes no fault injector")
	}
	nsrv := faults.NumServers()
	sh := newShadow()
	ops := 0
	var runErr error

	// mutate performs one round of mixed namespace and data operations.
	mutate := func(fs fsapi.Client, round int) error {
		dir := fmt.Sprintf("/crash/r%02d", round)
		if err := fs.Mkdir(dir, fsapi.MkdirOpt{}); err != nil {
			return fmt.Errorf("mkdir %s: %w", dir, err)
		}
		sh.dirs[dir] = true
		ops++
		for i := 0; i < per; i++ {
			data := make([]byte, 512*(1+(round+i)%9)) // up to ~4.5 KiB: some files span blocks
			fillPattern(data, uint64(round*100+i+1))
			if err := writeShadowFile(fs, sh, fmt.Sprintf("%s/f%02d", dir, i), data); err != nil {
				return err
			}
			ops++
		}
		// Rename one file into the shared parent (two-server protocol).
		from := fmt.Sprintf("%s/f00", dir)
		to := fmt.Sprintf("/crash/moved-r%02d", round)
		if err := fs.Rename(from, to); err != nil {
			return fmt.Errorf("rename %s: %w", from, err)
		}
		sh.files[to] = sh.files[from]
		delete(sh.files, from)
		ops++
		// Unlink another.
		victim := fmt.Sprintf("%s/f01", dir)
		if per > 1 {
			if err := fs.Unlink(victim); err != nil {
				return fmt.Errorf("unlink %s: %w", victim, err)
			}
			delete(sh.files, victim)
			ops++
		}
		// A directory that is created and removed within the round: its
		// tombstone must survive recovery (a recreated name must work, a
		// stale lookup must not).
		tmp := fmt.Sprintf("%s/tmpdir", dir)
		if err := fs.Mkdir(tmp, fsapi.MkdirOpt{}); err != nil {
			return fmt.Errorf("mkdir %s: %w", tmp, err)
		}
		if err := fs.Rmdir(tmp); err != nil {
			return fmt.Errorf("rmdir %s: %w", tmp, err)
		}
		ops += 2
		return nil
	}

	err := runRoot(env, "crash-recovery", func(p *sched.Proc) int {
		fs := env.fs(p)
		for srv := 0; srv < nsrv; srv++ {
			if runErr = mutate(fs, 2*srv); runErr != nil {
				return 1
			}
			if srv%2 == 0 {
				// Even rounds: fold state into a checkpoint, then mutate
				// more so recovery must also replay a log tail.
				if runErr = faults.Checkpoint(srv); runErr != nil {
					return 1
				}
			}
			if runErr = mutate(fs, 2*srv+1); runErr != nil {
				return 1
			}

			// The system is quiescent: kill the victim and bring it back.
			if runErr = faults.Crash(srv); runErr != nil {
				return 1
			}
			if runErr = faults.Recover(srv); runErr != nil {
				return 1
			}
			if srv == 0 {
				// Idempotence: a second crash/recover with no mutations in
				// between must reproduce the same state (verified below).
				if runErr = faults.Crash(srv); runErr != nil {
					return 1
				}
				if runErr = faults.Recover(srv); runErr != nil {
					return 1
				}
			}
			if runErr = sh.verify(fs); runErr != nil {
				runErr = fmt.Errorf("after recovering server %d: %w", srv, runErr)
				return 1
			}
		}
		return 0
	})
	if runErr != nil {
		return ops, runErr
	}
	return ops, err
}
