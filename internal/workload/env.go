// Package workload implements the paper's benchmark suite (§5.2): the
// microbenchmarks (creates, writes, renames, directories, rm, pfind), the
// application benchmarks (extract, punzip, mailbench, fsstress), and a
// simulated parallel Linux-kernel build. Workloads are written against the
// backend-agnostic fsapi.Client interface and the sched process layer, so
// the same operation stream can be replayed on Hare, on the shared-memory
// ramfs baseline, and on the user-space NFS baseline.
package workload

import (
	"fmt"
	"sync/atomic"

	"repro/internal/fsapi"
	"repro/internal/sched"
	"repro/internal/sim"
)

// FaultInjector is the crash/recovery surface a backend may expose to
// workloads (the Hare backend does when durability is enabled; the
// baselines do not). Workloads that inject faults must quiesce their own
// operations against a server before crashing it.
type FaultInjector interface {
	// NumServers reports how many file servers can be crashed.
	NumServers() int
	// Checkpoint snapshots one server's state and truncates its log.
	Checkpoint(server int) error
	// Crash kills one server; its clients stall until recovery.
	Crash(server int) error
	// Recover rebuilds a crashed server from checkpoint + log replay.
	Recover(server int) error
}

// ElasticController is the online-membership surface a backend may expose
// to workloads (a Hare deployment with MaxServers headroom does; the
// baselines and static deployments do not). Adding or draining a server
// migrates directory-entry shards while the system keeps serving
// (DESIGN.md §9).
type ElasticController interface {
	// AddServer spins up one new file server and rebalances shards onto
	// it, returning the new server's id.
	AddServer() (int, error)
	// RemoveServer drains server id's shards away and removes it from the
	// placement map (its inodes stay put and keep being served).
	RemoveServer(id int) error
	// Epoch returns the current placement epoch.
	Epoch() uint64
	// Members returns the server ids currently owning shards.
	Members() []int
}

// Env is the environment a workload runs in.
type Env struct {
	// Procs creates and places processes on the backend.
	Procs sched.System
	// Cores lists the cores available to application processes.
	Cores []int
	// Counter, when non-nil, records the mix of POSIX operations issued
	// (used to regenerate Figure 5).
	Counter *OpCounter
	// Scale multiplies iteration counts; 1.0 reproduces the default sizes,
	// smaller values keep unit tests fast.
	Scale float64
	// Faults, when non-nil, lets fault-injection workloads crash and
	// recover the backend's file servers.
	Faults FaultInjector
	// Elastic, when non-nil, lets workloads add and drain file servers
	// mid-run. Workloads must tolerate a nil controller by running their
	// operation stream statically (which is what makes the elastic
	// namespace-equivalence tests possible).
	Elastic ElasticController
}

// iters scales an iteration count, returning at least 1.
func (e *Env) iters(n int) int {
	s := e.Scale
	if s <= 0 {
		s = 1.0
	}
	v := int(float64(n) * s)
	if v < 1 {
		v = 1
	}
	return v
}

// workers returns how many worker processes to use (one per core).
func (e *Env) workers() int {
	if len(e.Cores) == 0 {
		return 1
	}
	return len(e.Cores)
}

// fs returns the process's file system client, wrapped with the operation
// counter when one is configured.
func (e *Env) fs(p *sched.Proc) fsapi.Client {
	if e.Counter == nil {
		return p.FS
	}
	return e.Counter.Wrap(p.FS)
}

// Workload is one benchmark.
type Workload interface {
	// Name is the benchmark's name as used in the paper's figures.
	Name() string
	// Placement is the exec placement policy the paper uses for this
	// benchmark (random for build linux and punzip, round-robin else).
	Placement() sched.Policy
	// Setup builds any initial file system state (directory trees, source
	// files); it is excluded from the timed region.
	Setup(env *Env) error
	// Run executes the timed portion and returns the number of operations
	// performed (the unit for throughput).
	Run(env *Env) (int, error)
}

// runRoot starts a root process on the first application core, runs fn in
// it, and waits for it to finish. A non-zero exit status becomes an error.
func runRoot(env *Env, name string, fn sched.ProcFunc) error {
	if len(env.Cores) == 0 {
		return fmt.Errorf("workload %s: no application cores", name)
	}
	h := env.Procs.StartRoot(env.Cores[0], []string{name}, fn)
	if status := h.Wait(); status != 0 {
		return fmt.Errorf("workload %s: root process exited with status %d", name, status)
	}
	return nil
}

// fanOut spawns one worker per entry of n, waits for all of them, and
// reports the first failure. Workers are placed by the process system's
// policy (remote spawn), mirroring how the paper's benchmarks spread worker
// processes across cores via exec.
func fanOut(p *sched.Proc, n int, worker func(wp *sched.Proc, idx int) int) int {
	handles := make([]*sched.Handle, 0, n)
	for i := 0; i < n; i++ {
		idx := i
		h, err := p.Spawn([]string{fmt.Sprintf("worker-%d", idx)}, func(wp *sched.Proc) int {
			return worker(wp, idx)
		}, true)
		if err != nil {
			return 1
		}
		handles = append(handles, h)
	}
	// Under the parallel engine the waiting parent must park its lane (a
	// stale frontier would stall every gated server behind it) and, once the
	// children are done, advance past the latest child exit before resuming.
	// Serialized mode takes none of these branches and stays bit-identical.
	gp, _ := p.FS.(sched.GateParker)
	parked := gp != nil && gp.GateActive()
	if parked {
		gp.GatePark()
	}
	status := 0
	var latest sim.Cycles
	for _, h := range handles {
		if s := h.Wait(); s != 0 {
			status = s
		}
		if e := h.EndTime(); e > latest {
			latest = e
		}
	}
	if parked {
		if ck, ok := p.FS.(sched.Clocked); ok && latest > ck.Clock() {
			ck.AdvanceClock(latest)
		}
		gp.GateResume()
	}
	return status
}

// OpClass buckets POSIX calls for the Figure 5 operation breakdown.
type OpClass int

// Operation classes, in display order.
const (
	ClassOpen OpClass = iota
	ClassClose
	ClassCreate
	ClassRead
	ClassWrite
	ClassStat
	ClassDirList
	ClassMkdir
	ClassRmdir
	ClassUnlink
	ClassRename
	ClassSeek
	ClassPipe
	ClassOther
	numOpClasses
)

var opClassNames = [numOpClasses]string{
	"open", "close", "create", "read", "write", "stat", "readdir",
	"mkdir", "rmdir", "unlink", "rename", "seek", "pipe", "other",
}

// String names the class.
func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return "other"
}

// OpClasses lists every class in display order.
func OpClasses() []OpClass {
	out := make([]OpClass, numOpClasses)
	for i := range out {
		out[i] = OpClass(i)
	}
	return out
}

// OpCounter counts POSIX operations by class. It is safe for concurrent use
// by all of a workload's processes.
type OpCounter struct {
	counts [numOpClasses]atomic.Uint64
}

// NewOpCounter returns an empty counter.
func NewOpCounter() *OpCounter { return &OpCounter{} }

// add records one operation.
func (c *OpCounter) add(class OpClass) {
	if c == nil {
		return
	}
	c.counts[class].Add(1)
}

// Reset zeroes every counter.
func (c *OpCounter) Reset() {
	for i := range c.counts {
		c.counts[i].Store(0)
	}
}

// Total returns the total number of operations recorded.
func (c *OpCounter) Total() uint64 {
	var t uint64
	for i := range c.counts {
		t += c.counts[i].Load()
	}
	return t
}

// Count returns the number of operations recorded for one class.
func (c *OpCounter) Count(class OpClass) uint64 { return c.counts[class].Load() }

// Breakdown returns each class's share of the total (0..1).
func (c *OpCounter) Breakdown() map[OpClass]float64 {
	total := c.Total()
	out := make(map[OpClass]float64, numOpClasses)
	if total == 0 {
		return out
	}
	for i := range c.counts {
		if n := c.counts[i].Load(); n > 0 {
			out[OpClass(i)] = float64(n) / float64(total)
		}
	}
	return out
}

// Wrap returns a client that forwards to inner while counting operations.
func (c *OpCounter) Wrap(inner fsapi.Client) fsapi.Client {
	return &countingClient{inner: inner, counter: c}
}

// countingClient decorates an fsapi.Client with operation counting. It also
// forwards the Clocked interface so the process layer still sees virtual
// time, and Forker so fork keeps working (the forked client is wrapped too).
type countingClient struct {
	inner   fsapi.Client
	counter *OpCounter
}

func (c *countingClient) Open(path string, flags int, mode fsapi.Mode) (fsapi.FD, error) {
	if flags&fsapi.OCreate != 0 {
		c.counter.add(ClassCreate)
	} else {
		c.counter.add(ClassOpen)
	}
	return c.inner.Open(path, flags, mode)
}

func (c *countingClient) Close(fd fsapi.FD) error {
	c.counter.add(ClassClose)
	return c.inner.Close(fd)
}

func (c *countingClient) Read(fd fsapi.FD, p []byte) (int, error) {
	c.counter.add(ClassRead)
	return c.inner.Read(fd, p)
}

func (c *countingClient) Write(fd fsapi.FD, p []byte) (int, error) {
	c.counter.add(ClassWrite)
	return c.inner.Write(fd, p)
}

func (c *countingClient) Pread(fd fsapi.FD, p []byte, off int64) (int, error) {
	c.counter.add(ClassRead)
	return c.inner.Pread(fd, p, off)
}

func (c *countingClient) Pwrite(fd fsapi.FD, p []byte, off int64) (int, error) {
	c.counter.add(ClassWrite)
	return c.inner.Pwrite(fd, p, off)
}

func (c *countingClient) Seek(fd fsapi.FD, off int64, whence int) (int64, error) {
	c.counter.add(ClassSeek)
	return c.inner.Seek(fd, off, whence)
}

func (c *countingClient) Fsync(fd fsapi.FD) error {
	c.counter.add(ClassWrite)
	return c.inner.Fsync(fd)
}

func (c *countingClient) Ftruncate(fd fsapi.FD, size int64) error {
	c.counter.add(ClassOther)
	return c.inner.Ftruncate(fd, size)
}

func (c *countingClient) Unlink(path string) error {
	c.counter.add(ClassUnlink)
	return c.inner.Unlink(path)
}

func (c *countingClient) Mkdir(path string, opt fsapi.MkdirOpt) error {
	c.counter.add(ClassMkdir)
	return c.inner.Mkdir(path, opt)
}

func (c *countingClient) Rmdir(path string) error {
	c.counter.add(ClassRmdir)
	return c.inner.Rmdir(path)
}

func (c *countingClient) Rename(oldPath, newPath string) error {
	c.counter.add(ClassRename)
	return c.inner.Rename(oldPath, newPath)
}

func (c *countingClient) ReadDir(path string) ([]fsapi.Dirent, error) {
	c.counter.add(ClassDirList)
	return c.inner.ReadDir(path)
}

func (c *countingClient) Stat(path string) (fsapi.Stat, error) {
	c.counter.add(ClassStat)
	return c.inner.Stat(path)
}

func (c *countingClient) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	c.counter.add(ClassStat)
	return c.inner.Fstat(fd)
}

func (c *countingClient) Pipe() (fsapi.FD, fsapi.FD, error) {
	c.counter.add(ClassPipe)
	return c.inner.Pipe()
}

func (c *countingClient) Dup(fd fsapi.FD) (fsapi.FD, error) {
	c.counter.add(ClassOther)
	return c.inner.Dup(fd)
}

func (c *countingClient) Chdir(path string) error {
	c.counter.add(ClassOther)
	return c.inner.Chdir(path)
}

func (c *countingClient) Getcwd() string { return c.inner.Getcwd() }

// Clock, AdvanceClock and Compute forward virtual time to the inner client.
func (c *countingClient) Clock() sim.Cycles {
	if ck, ok := c.inner.(sched.Clocked); ok {
		return ck.Clock()
	}
	return 0
}

// AdvanceClock forwards to the inner client.
func (c *countingClient) AdvanceClock(t sim.Cycles) {
	if ck, ok := c.inner.(sched.Clocked); ok {
		ck.AdvanceClock(t)
	}
}

// Compute forwards to the inner client.
func (c *countingClient) Compute(d sim.Cycles) {
	if ck, ok := c.inner.(sched.Clocked); ok {
		ck.Compute(d)
	}
}

// GateActive, GatePark and GateResume forward the parallel-engine surface so
// a counted client still parks its lane correctly.
func (c *countingClient) GateActive() bool {
	gp, ok := c.inner.(sched.GateParker)
	return ok && gp.GateActive()
}

// GatePark forwards to the inner client.
func (c *countingClient) GatePark() {
	if gp, ok := c.inner.(sched.GateParker); ok {
		gp.GatePark()
	}
}

// GateResume forwards to the inner client.
func (c *countingClient) GateResume() {
	if gp, ok := c.inner.(sched.GateParker); ok {
		gp.GateResume()
	}
}

// xorshift is a small deterministic PRNG used by fsstress and the synthetic
// data generators (results must be reproducible across runs).
type xorshift struct{ state uint64 }

func newRand(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x2545F4914F6CDD1D
	}
	return &xorshift{state: seed}
}

func (x *xorshift) next() uint64 {
	x.state ^= x.state << 13
	x.state ^= x.state >> 7
	x.state ^= x.state << 17
	return x.state
}

// intn returns a value in [0, n).
func (x *xorshift) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(x.next() % uint64(n))
}

// fillPattern fills buf with a deterministic pattern derived from seed.
func fillPattern(buf []byte, seed uint64) {
	r := newRand(seed)
	for i := range buf {
		buf[i] = byte(r.next())
	}
}
