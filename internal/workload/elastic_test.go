package workload

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/sched"
)

// The elastic placement layer (DESIGN.md §9) must be invisible to the
// namespace: a run that adds and drains servers mid-workload leaves exactly
// the tree a static run leaves, for both placement policies, and including
// a server crash in the middle of the migration (under durability).

// elasticSystem builds a Hare deployment with optional growth headroom.
func elasticSystem(t *testing.T, policy place.Policy, servers, maxServers int, d *core.Durability) (*core.System, *Env) {
	t.Helper()
	cfg := core.Config{
		Cores:            4,
		Servers:          servers,
		MaxServers:       maxServers,
		Timeshare:        true,
		Techniques:       core.AllTechniques(),
		Placement:        sched.PolicyRoundRobin,
		PlacePolicy:      policy,
		BufferCacheBytes: 32 << 20,
	}
	if d != nil {
		cfg.Durability = *d
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	env := &Env{Procs: sys.Procs(), Cores: sys.AppCores(), Counter: NewOpCounter(), Scale: 1}
	return sys, env
}

// TestElasticNamespaceEquivalence runs the elastic workload with live
// membership changes (grow by one, then drain it again) and compares the
// resulting tree with a static run of the same operation stream, under both
// placement policies.
func TestElasticNamespaceEquivalence(t *testing.T) {
	for _, policy := range []place.Policy{place.PolicyRing, place.PolicyModulo} {
		t.Run(policy.String(), func(t *testing.T) {
			snaps := make(map[bool]map[string]string)
			for _, elastic := range []bool{true, false} {
				sys, env := elasticSystem(t, policy, 2, 4, nil)
				if elastic {
					env.Elastic = sys
				}
				w := &Elastic{PerWorker: 8, Drain: true}
				runOne(t, env, w)
				if elastic {
					if got := sys.Epoch(); got != 3 {
						t.Fatalf("epoch after grow+drain = %d, want 3", got)
					}
					if got := len(sys.Members()); got != 2 {
						t.Fatalf("members after grow+drain = %d, want 2", got)
					}
				}
				snap := make(map[string]string)
				snapshotFS(t, sys.NewClient(0), "/elastic", snap)
				snaps[elastic] = snap
			}
			if !reflect.DeepEqual(snaps[true], snaps[false]) {
				t.Fatalf("namespace diverged between elastic and static runs:\n elastic: %v\n static: %v",
					snaps[true], snaps[false])
			}
			if len(snaps[true]) == 0 {
				t.Fatal("snapshot is empty; the workload left nothing to compare")
			}
		})
	}
}

// crashyController wraps a system's elastic controller so that the first
// AddServer — sabotaged by a migration observer that crashes a server at
// its commit step — is recovered and resumed transparently, the way an
// operator would: recover the victim, and recovery auto-resumes the pending
// migration.
type crashyController struct {
	sys    *core.System
	victim int
	t      *testing.T
}

func (c *crashyController) AddServer() (int, error) {
	id, err := c.sys.AddServer()
	if err == nil {
		return id, nil
	}
	c.t.Logf("AddServer interrupted as planned (%v); recovering server %d", err, c.victim)
	if _, rerr := c.sys.Recover(c.victim); rerr != nil {
		return id, rerr
	}
	if c.sys.MigrationPending() {
		return id, c.sys.ResumeMigration()
	}
	return id, nil
}

func (c *crashyController) RemoveServer(id int) error { return c.sys.RemoveServer(id) }
func (c *crashyController) Epoch() uint64             { return c.sys.Epoch() }
func (c *crashyController) Members() []int            { return c.sys.Members() }

// TestElasticCrashDuringMigrationEquivalence injects a server crash into
// the commit step of the mid-workload migration (durability on), recovers,
// and checks the final tree still matches a static run byte for byte —
// crash recovery lands the fleet on exactly one epoch with no entry lost or
// duplicated.
func TestElasticCrashDuringMigrationEquivalence(t *testing.T) {
	d := &core.Durability{Enabled: true, CheckpointEvery: 32, GroupCommitInterval: 10_000}
	snaps := make(map[bool]map[string]string)
	for _, elastic := range []bool{true, false} {
		sys, env := elasticSystem(t, place.PolicyRing, 2, 3, d)
		if elastic {
			const victim = 1
			crashed := false
			sys.SetMigrationObserver(func(stage string, srv int) {
				if stage == "commit" && srv == victim && !crashed {
					crashed = true
					if err := sys.Crash(victim); err != nil {
						t.Errorf("crash victim: %v", err)
					}
				}
			})
			env.Elastic = &crashyController{sys: sys, victim: victim, t: t}
		}
		w := &Elastic{PerWorker: 8}
		runOne(t, env, w)
		if elastic {
			if got := sys.Epoch(); got != 2 {
				t.Fatalf("epoch after recovered migration = %d, want 2", got)
			}
			for i, st := range sys.ServerStats() {
				if st.Epoch != 2 {
					t.Fatalf("server %d at epoch %d after resume, want 2", i, st.Epoch)
				}
			}
		}
		snap := make(map[string]string)
		snapshotFS(t, sys.NewClient(0), "/elastic", snap)
		snaps[elastic] = snap
	}
	if !reflect.DeepEqual(snaps[true], snaps[false]) {
		t.Fatalf("namespace diverged after crash-interrupted migration:\n elastic: %v\n static: %v",
			snaps[true], snaps[false])
	}
	if len(snaps[true]) == 0 {
		t.Fatal("crash-equivalence snapshot is empty")
	}
}
