package shadow

import "sort"

// Run is a contiguous range of block ids [Start, Start+Count). It mirrors
// ncc.Extent without importing ncc, so that package's own tests can use this
// shadow without an import cycle.
type Run struct {
	Start uint64
	Count uint64
}

// NormalizeRuns sorts a copy of runs and merges overlapping or adjacent
// ranges, the reference behaviour for extent normalization.
func NormalizeRuns(runs []Run) []Run {
	if len(runs) == 0 {
		return nil
	}
	sorted := append([]Run(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := sorted[:1]
	for _, r := range sorted[1:] {
		last := &out[len(out)-1]
		if r.Start <= last.Start+last.Count {
			if end := r.Start + r.Count; end > last.Start+last.Count {
				last.Count = end - last.Start
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// RunsContain reports whether block b falls inside any of the runs.
func RunsContain(runs []Run, b uint64) bool {
	for _, r := range runs {
		if b >= r.Start && b < r.Start+r.Count {
			return true
		}
	}
	return false
}

// Blocks models a private cache over shared DRAM as flat per-block buffers
// with per-line dirty bits: the reference model for the zero-waste data path
// (dirty-line writeback, ranged invalidation). All blocks are blockSize
// bytes, split into lines of lineSize bytes.
type Blocks struct {
	blockSize int
	lineSize  int
	dram      map[uint64][]byte
	priv      map[uint64][]byte
	dirty     map[uint64][]bool
}

// NewBlocks returns an empty shadow with the given geometry.
func NewBlocks(blockSize, lineSize int) *Blocks {
	return &Blocks{
		blockSize: blockSize,
		lineSize:  lineSize,
		dram:      make(map[uint64][]byte),
		priv:      make(map[uint64][]byte),
		dirty:     make(map[uint64][]bool),
	}
}

// DRAM returns block b's shared-memory contents, materializing zeroes on
// first touch. The returned slice is the shadow's own buffer.
func (s *Blocks) DRAM(b uint64) []byte {
	if buf, ok := s.dram[b]; ok {
		return buf
	}
	buf := make([]byte, s.blockSize)
	s.dram[b] = buf
	return buf
}

// Resident fetches block b into the shadow private cache if needed and
// returns the cached copy.
func (s *Blocks) Resident(b uint64) []byte {
	if buf, ok := s.priv[b]; ok {
		return buf
	}
	buf := make([]byte, s.blockSize)
	copy(buf, s.DRAM(b))
	s.priv[b] = buf
	s.dirty[b] = make([]bool, (s.blockSize+s.lineSize-1)/s.lineSize)
	return buf
}

// Write stores src at off within block b through the private cache, marking
// the covered lines dirty.
func (s *Blocks) Write(b uint64, off int, src []byte) {
	buf := s.Resident(b)
	n := copy(buf[off:], src)
	if n == 0 {
		return
	}
	for l := off / s.lineSize; l <= (off+n-1)/s.lineSize; l++ {
		s.dirty[b][l] = true
	}
}

// WriteDRAM stores src directly into shared memory (another core's
// writeback), bypassing the private cache.
func (s *Blocks) WriteDRAM(b uint64, off int, src []byte) {
	copy(s.DRAM(b)[off:], src)
}

// Writeback flushes the dirty lines of resident blocks covered by runs (any
// order, may overlap) and returns the number of lines moved.
func (s *Blocks) Writeback(runs []Run) int {
	norm := NormalizeRuns(runs)
	moved := 0
	for b, buf := range s.priv {
		if !RunsContain(norm, b) {
			continue
		}
		dram := s.DRAM(b)
		for l, d := range s.dirty[b] {
			if !d {
				continue
			}
			off := l * s.lineSize
			end := off + s.lineSize
			if end > s.blockSize {
				end = s.blockSize
			}
			copy(dram[off:end], buf[off:end])
			s.dirty[b][l] = false
			moved++
		}
	}
	return moved
}

// Invalidate drops resident blocks covered by runs from the private cache,
// discarding their dirty lines.
func (s *Blocks) Invalidate(runs []Run) {
	norm := NormalizeRuns(runs)
	for b := range s.priv {
		if RunsContain(norm, b) {
			delete(s.priv, b)
			delete(s.dirty, b)
		}
	}
}
