package shadow

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/fsapi"
)

// Model is the namespace-and-contents shadow: every directory and regular
// file a test has created, with flat byte contents, plus the per-file
// bookkeeping needed to apply the durability contract after memory-losing
// crashes (DESIGN.md §10).
//
// Model is safe for concurrent use; the chaos harness mutates disjoint
// per-process subtrees from several worker goroutines at once.
type Model struct {
	mu    sync.Mutex
	dirs  map[string]bool
	files map[string]*fileState

	// DirectAccess mirrors the deployment's Techniques.DirectAccess. When
	// set, file contents travel from clients straight into the shared
	// buffer cache and are durable against a memory-losing crash only up to
	// the owning server's last checkpoint; when clear, every write is a
	// WAL-logged server-path write and survives any crash.
	DirectAccess bool
}

// fileState is one shadow file plus its durability bookkeeping.
type fileState struct {
	content *File
	// server is the id of the file server storing the inode (and therefore
	// the buffer-cache partition holding the file's blocks); -1 if unknown.
	server int
	// dirtySinceCkpt is set when direct-access content was written since the
	// owning server's last checkpoint: exactly the bytes a memory-losing
	// crash of that server may legally lose.
	dirtySinceCkpt bool
	// suspect marks a file whose contents may have been legally lost; Verify
	// checks only its size until Reconcile adopts the live contents.
	suspect bool
}

// NewModel returns a shadow holding only the given pre-existing directories
// (the workload's root, e.g. "/crash"). Paths must be absolute and clean.
func NewModel(roots ...string) *Model {
	m := &Model{dirs: make(map[string]bool), files: make(map[string]*fileState)}
	for _, r := range roots {
		m.dirs[r] = true
	}
	return m
}

// Mkdir records a directory.
func (m *Model) Mkdir(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[path] = true
}

// Rmdir removes a directory.
func (m *Model) Rmdir(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.dirs, path)
}

// HasDir reports whether the shadow holds the directory.
func (m *Model) HasDir(path string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dirs[path]
}

// SetFile creates (or rewrites) a whole file, recording the server storing
// its inode (pass -1 when unknown; only memory-losing crash tolerance needs
// it).
func (m *Model) SetFile(path string, data []byte, server int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.files[path]
	if st == nil {
		st = &fileState{server: server}
		m.files[path] = st
	} else if server >= 0 {
		st.server = server
	}
	st.content = NewFile(data)
	st.suspect = false
	if m.DirectAccess {
		st.dirtySinceCkpt = true
	}
}

// WriteAt writes into an existing shadow file.
func (m *Model) WriteAt(path string, off int64, p []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.files[path]
	if st == nil {
		st = &fileState{server: -1, content: NewFile(nil)}
		m.files[path] = st
	}
	st.content.WriteAt(off, p)
	if m.DirectAccess {
		st.dirtySinceCkpt = true
	}
}

// Truncate resizes a shadow file.
func (m *Model) Truncate(path string, size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st := m.files[path]; st != nil {
		st.content.Truncate(size)
		if m.DirectAccess {
			st.dirtySinceCkpt = true
		}
	}
}

// Rename moves a file (contents and bookkeeping follow the new name).
func (m *Model) Rename(oldPath, newPath string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.files[oldPath]; ok {
		delete(m.files, oldPath)
		m.files[newPath] = st
	}
}

// Unlink removes a file.
func (m *Model) Unlink(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, path)
}

// HasFile reports whether the shadow holds the file.
func (m *Model) HasFile(path string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.files[path]
	return ok
}

// Content returns a copy of the shadow file's contents and whether the file
// exists.
func (m *Model) Content(path string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), st.content.Bytes()...), true
}

// Size returns the shadow file's size and whether the file exists.
func (m *Model) Size(path string) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.files[path]
	if !ok {
		return 0, false
	}
	return st.content.Size(), true
}

// Suspect reports whether the file's contents are currently unverifiable
// (legally lost by a memory-losing crash, awaiting Reconcile).
func (m *Model) Suspect(path string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.files[path]
	return ok && st.suspect
}

// Files returns the shadow's file paths, sorted.
func (m *Model) Files() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for f := range m.files {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Dirs returns the shadow's directory paths, sorted.
func (m *Model) Dirs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.dirs))
	for d := range m.dirs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Children returns the expected entry names directly under dir, sorted.
func (m *Model) Children(dir string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedKeys(m.children(dir))
}

// NoteCheckpoint records that server's state (including its buffer-cache
// partition's block snapshots) was checkpointed: content written before this
// moment is durable even against memory loss. server -1 means every server.
func (m *Model) NoteCheckpoint(server int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.files {
		if server < 0 || st.server == server {
			st.dirtySinceCkpt = false
		}
	}
}

// CrashLostMemory applies the durability contract for a memory-losing crash
// of the given server: files homed there whose direct-access contents were
// written since the server's last checkpoint become suspect (their bytes may
// be legally lost; their namespace entries and sizes are WAL-logged and must
// survive exactly). It returns the newly suspect paths. Files whose home
// server is unknown (-1) are treated as at risk, conservatively.
func (m *Model) CrashLostMemory(server int) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for path, st := range m.files {
		if !st.dirtySinceCkpt {
			continue
		}
		if st.server == server || st.server < 0 {
			st.suspect = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// children returns the expected entry names directly under dir.
func (m *Model) children(dir string) map[string]bool {
	out := make(map[string]bool)
	collect := func(path string) {
		if !strings.HasPrefix(path, dir+"/") {
			return
		}
		rest := strings.TrimPrefix(path, dir+"/")
		if !strings.Contains(rest, "/") {
			out[rest] = true
		}
	}
	for d := range m.dirs {
		collect(d)
	}
	for f := range m.files {
		collect(f)
	}
	return out
}

// Verify walks every shadow directory and file and compares the live file
// system against the reference: directory entry sets must match exactly,
// file sizes must match exactly, and file contents must be byte-identical —
// except for suspect files, whose contents are skipped until Reconcile.
func (m *Model) Verify(fs fsapi.Client) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dirs := make([]string, 0, len(m.dirs))
	for d := range m.dirs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		ents, err := fs.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("readdir %s: %w", dir, err)
		}
		want := m.children(dir)
		if len(ents) != len(want) {
			got := make([]string, 0, len(ents))
			for _, ent := range ents {
				got = append(got, ent.Name)
			}
			sort.Strings(got)
			return fmt.Errorf("%s has %d entries %v, want %d %v", dir, len(ents), got, len(want), sortedKeys(want))
		}
		for _, ent := range ents {
			if !want[ent.Name] {
				return fmt.Errorf("%s holds unexpected entry %q", dir, ent.Name)
			}
		}
	}
	files := make([]string, 0, len(m.files))
	for f := range m.files {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, path := range files {
		st := m.files[path]
		if err := m.verifyFile(fs, path, st); err != nil {
			return err
		}
	}
	return nil
}

// verifyFile checks one file's size and (unless suspect) contents. Caller
// holds m.mu.
func (m *Model) verifyFile(fs fsapi.Client, path string, st *fileState) error {
	want := st.content.Bytes()
	info, err := fs.Stat(path)
	if err != nil {
		return fmt.Errorf("stat %s: %w", path, err)
	}
	if info.Size != int64(len(want)) {
		return fmt.Errorf("%s is %d bytes, want %d", path, info.Size, len(want))
	}
	if st.suspect {
		return nil
	}
	got, err := ReadAll(fs, path, info.Size)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("%s content diverged: %s", path, diffDetail(got, want))
	}
	return nil
}

// diffDetail pinpoints the first diverging byte for conformance reports.
func diffDetail(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	at := n
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			at = i
			break
		}
	}
	if at == n && len(got) == len(want) {
		return "lengths equal, no byte diff (impossible)"
	}
	if at == n {
		return fmt.Sprintf("lengths differ: got %d bytes, want %d", len(got), len(want))
	}
	return fmt.Sprintf("first diff at byte %d of %d: got %#02x, want %#02x", at, len(want), got[at], want[at])
}

// Reconcile re-reads every suspect file from the live file system and adopts
// its contents into the shadow (the bytes were legally lost; whatever
// recovery produced is now the reference), clearing the suspect marks. Sizes
// are still required to match: namespace metadata is WAL-logged and a size
// divergence is a real conformance failure, not a legal loss.
func (m *Model) Reconcile(fs fsapi.Client) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	paths := make([]string, 0, len(m.files))
	for path, st := range m.files {
		if st.suspect {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	for _, path := range paths {
		st := m.files[path]
		info, err := fs.Stat(path)
		if err != nil {
			return fmt.Errorf("reconcile stat %s: %w", path, err)
		}
		if info.Size != st.content.Size() {
			return fmt.Errorf("reconcile %s: size %d survived crash as %d (sizes are WAL-logged and must not change)", path, st.content.Size(), info.Size)
		}
		got, err := ReadAll(fs, path, info.Size)
		if err != nil {
			return fmt.Errorf("reconcile %s: %w", path, err)
		}
		st.content = NewFile(got)
		st.suspect = false
		st.dirtySinceCkpt = false
	}
	return nil
}

// ReadAll reads a file through the POSIX surface, looping on partial reads
// (a read may legally return fewer bytes than asked, e.g. one block at a
// time). It asks for one byte more than size so a file that grew past the
// expected length shows up as extra bytes rather than a silent match; the
// chaos harness shares it for its in-trace read checks.
func ReadAll(fs fsapi.Client, path string, size int64) ([]byte, error) {
	fd, err := fs.Open(path, fsapi.ORdOnly, 0)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	defer fs.Close(fd)
	buf := make([]byte, size+1)
	total := 0
	for total < len(buf) {
		n, err := fs.Read(fd, buf[total:])
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", path, err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	return buf[:total], nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
