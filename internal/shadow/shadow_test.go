package shadow_test

import (
	"bytes"
	"testing"

	"repro/internal/baseline/ramfs"
	"repro/internal/fsapi"
	"repro/internal/shadow"
	"repro/internal/sim"
)

func TestFileFlatSemantics(t *testing.T) {
	f := shadow.NewFile(nil)
	f.WriteAt(0, []byte("hello"))
	f.WriteAt(8, []byte("world")) // sparse gap zero-fills
	if f.Size() != 13 {
		t.Fatalf("size = %d, want 13", f.Size())
	}
	want := append([]byte("hello\x00\x00\x00"), []byte("world")...)
	if !bytes.Equal(f.Bytes(), want) {
		t.Fatalf("bytes = %q, want %q", f.Bytes(), want)
	}
	f.Truncate(4)
	if string(f.Bytes()) != "hell" {
		t.Fatalf("after shrink: %q", f.Bytes())
	}
	f.Truncate(6)
	if !bytes.Equal(f.Bytes(), []byte("hell\x00\x00")) {
		t.Fatalf("after grow: %q", f.Bytes())
	}
	buf := make([]byte, 10)
	if n := f.ReadAt(2, buf); n != 4 || string(buf[:n]) != "ll\x00\x00" {
		t.Fatalf("ReadAt = %d %q", n, buf[:n])
	}
	c := f.Clone()
	c.WriteAt(0, []byte("X"))
	if f.Bytes()[0] == 'X' {
		t.Fatal("clone aliases the original")
	}
}

func TestNormalizeRunsAndContain(t *testing.T) {
	runs := []shadow.Run{{Start: 10, Count: 3}, {Start: 2, Count: 2}, {Start: 11, Count: 4}, {Start: 4, Count: 1}}
	norm := shadow.NormalizeRuns(runs)
	want := []shadow.Run{{Start: 2, Count: 3}, {Start: 10, Count: 5}}
	if len(norm) != len(want) {
		t.Fatalf("normalize = %+v, want %+v", norm, want)
	}
	for i := range want {
		if norm[i] != want[i] {
			t.Fatalf("normalize[%d] = %+v, want %+v", i, norm[i], want[i])
		}
	}
	for _, b := range []uint64{2, 4, 10, 14} {
		if !shadow.RunsContain(norm, b) {
			t.Fatalf("RunsContain(%d) = false", b)
		}
	}
	for _, b := range []uint64{1, 5, 15} {
		if shadow.RunsContain(norm, b) {
			t.Fatalf("RunsContain(%d) = true", b)
		}
	}
}

func TestBlocksDirtyLineWriteback(t *testing.T) {
	const line = 64
	s := shadow.NewBlocks(4*line, line)
	// Cache block 0, dirty only line 3.
	s.Resident(0)
	ours := bytes.Repeat([]byte{0x55}, line)
	s.Write(0, 3*line, ours)
	// Meanwhile DRAM line 1 changes under us (another core's writeback).
	newer := bytes.Repeat([]byte{0xBB}, line)
	s.WriteDRAM(0, line, newer)

	if moved := s.Writeback([]shadow.Run{{Start: 0, Count: 4}}); moved != 1 {
		t.Fatalf("writeback moved %d lines, want 1", moved)
	}
	dram := s.DRAM(0)
	if !bytes.Equal(dram[line:2*line], newer) {
		t.Fatal("clean line was clobbered with stale cached data")
	}
	if !bytes.Equal(dram[3*line:4*line], ours) {
		t.Fatal("dirty line did not reach DRAM")
	}
	s.Invalidate([]shadow.Run{{Start: 0, Count: 1}})
	if moved := s.Writeback([]shadow.Run{{Start: 0, Count: 4}}); moved != 0 {
		t.Fatal("invalidated block still had dirty lines")
	}
}

// liveFS returns a ramfs client: a real fsapi.Client for exercising the
// model's verification against a live tree.
func liveFS(t *testing.T) fsapi.Client {
	t.Helper()
	machine := sim.NewMachine(sim.TopologyForCores(2), sim.DefaultCostModel())
	return ramfs.New(machine).NewClient(0)
}

func mkFile(t *testing.T, fs fsapi.Client, path string, data []byte) {
	t.Helper()
	fd, err := fs.Open(path, fsapi.OCreate|fsapi.OWrOnly|fsapi.OTrunc, fsapi.Mode644)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := fs.Write(fd, data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func TestModelVerifyMatchesAndDiverges(t *testing.T) {
	fs := liveFS(t)
	m := shadow.NewModel("/d")
	if err := fs.Mkdir("/d", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}
	mkFile(t, fs, "/d/a", []byte("alpha"))
	m.SetFile("/d/a", []byte("alpha"), -1)
	if err := fs.Mkdir("/d/sub", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}
	m.Mkdir("/d/sub")
	if err := m.Verify(fs); err != nil {
		t.Fatalf("verify of matching tree: %v", err)
	}

	// An entry the shadow does not know about must be flagged.
	mkFile(t, fs, "/d/stray", []byte("x"))
	if err := m.Verify(fs); err == nil {
		t.Fatal("verify missed a stray entry")
	}
	if err := fs.Unlink("/d/stray"); err != nil {
		t.Fatal(err)
	}

	// Content divergence at equal size must be flagged.
	mkFile(t, fs, "/d/a", []byte("alphA"))
	if err := m.Verify(fs); err == nil {
		t.Fatal("verify missed a content divergence")
	}
	// Size divergence must be flagged.
	mkFile(t, fs, "/d/a", []byte("alphaalpha"))
	if err := m.Verify(fs); err == nil {
		t.Fatal("verify missed a size divergence")
	}
	mkFile(t, fs, "/d/a", []byte("alpha"))

	// Namespace ops keep the two worlds in sync.
	if err := fs.Rename("/d/a", "/d/b"); err != nil {
		t.Fatal(err)
	}
	m.Rename("/d/a", "/d/b")
	if err := fs.Rmdir("/d/sub"); err != nil {
		t.Fatal(err)
	}
	m.Rmdir("/d/sub")
	if err := m.Verify(fs); err != nil {
		t.Fatalf("verify after rename+rmdir: %v", err)
	}
}

func TestModelMemoryLossToleranceAndReconcile(t *testing.T) {
	fs := liveFS(t)
	m := shadow.NewModel("/d")
	m.DirectAccess = true
	if err := fs.Mkdir("/d", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}
	mkFile(t, fs, "/d/f", []byte("durable!"))
	m.SetFile("/d/f", []byte("durable!"), 0)

	// Checkpoint makes the current contents durable; later writes are at
	// risk again.
	m.NoteCheckpoint(0)
	if lost := m.CrashLostMemory(0); len(lost) != 0 {
		t.Fatalf("checkpointed file reported at risk: %v", lost)
	}
	m.WriteAt("/d/f", 0, []byte("VOLATILE"))
	mkFile(t, fs, "/d/f", []byte("VOLATILE"))

	lost := m.CrashLostMemory(0)
	if len(lost) != 1 || lost[0] != "/d/f" {
		t.Fatalf("at-risk set = %v, want [/d/f]", lost)
	}
	if !m.Suspect("/d/f") {
		t.Fatal("file not marked suspect")
	}

	// The "recovered" live file lost the post-checkpoint bytes (same size,
	// different contents): a suspect file's contents are tolerated...
	mkFile(t, fs, "/d/f", []byte("durable!"))
	if err := m.Verify(fs); err != nil {
		t.Fatalf("verify should tolerate lost contents on a suspect file: %v", err)
	}
	// ...but a size change is a real divergence, even while suspect.
	mkFile(t, fs, "/d/f", []byte("tiny"))
	if err := m.Verify(fs); err == nil {
		t.Fatal("verify missed a size divergence on a suspect file")
	}
	if err := m.Reconcile(fs); err == nil {
		t.Fatal("reconcile accepted a size divergence")
	}
	mkFile(t, fs, "/d/f", []byte("durable!"))

	// Reconcile adopts the recovered contents as the new reference.
	if err := m.Reconcile(fs); err != nil {
		t.Fatal(err)
	}
	if m.Suspect("/d/f") {
		t.Fatal("file still suspect after reconcile")
	}
	got, _ := m.Content("/d/f")
	if string(got) != "durable!" {
		t.Fatalf("reconcile adopted %q", got)
	}
	if err := m.Verify(fs); err != nil {
		t.Fatalf("verify after reconcile: %v", err)
	}

	// A crash of a different server leaves the file alone.
	m.WriteAt("/d/f", 0, []byte("X"))
	if lost := m.CrashLostMemory(3); len(lost) != 0 {
		t.Fatalf("crash of another server marked %v", lost)
	}
}
