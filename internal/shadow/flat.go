// Package shadow provides the flat reference models the repository's
// randomized and fault-injection tests check the real system against.
//
// Two shadows live here, each a deliberately naive, obviously-correct
// re-implementation of state the real system keeps in sophisticated form:
//
//   - Model is a namespace-and-contents shadow (paths, directory entries,
//     flat per-file byte buffers) used by the crash-recovery workload and
//     the chaos harness to diff a live file system against the expected
//     state at quiescent points, including the tolerance rules for writes
//     legally lost by memory-losing crashes (DESIGN.md §10).
//
//   - Blocks is a block/line-level shadow of the private-cache + shared-DRAM
//     pair used by the ncc data-path property test: flat buffers with
//     per-line dirty bits, independent of the extent-coded implementation.
//
// Both were originally private to their tests (workload/crash.go and
// internal/ncc's property test); the chaos harness generalizes them into
// this one shared package. The package intentionally imports nothing but
// fsapi and the standard library so every layer's tests can use it without
// import cycles.
package shadow

// File is a flat shadow of one regular file's contents: a plain byte buffer
// that grows on write and shrinks on truncate, with none of the block, cache
// or extent machinery of the real data path.
type File struct {
	data []byte
}

// NewFile returns a shadow file holding a copy of data.
func NewFile(data []byte) *File {
	f := &File{}
	if len(data) > 0 {
		f.data = append([]byte(nil), data...)
	}
	return f
}

// Size returns the file's current size.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Bytes returns the file's contents. The returned slice aliases the shadow's
// buffer; callers must not mutate it.
func (f *File) Bytes() []byte { return f.data }

// WriteAt writes p at off, zero-filling any gap (POSIX sparse-write
// semantics flattened to explicit zero bytes).
func (f *File) WriteAt(off int64, p []byte) {
	end := off + int64(len(p))
	if end > int64(len(f.data)) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:], p)
}

// Append writes p at the current end of the file.
func (f *File) Append(p []byte) { f.WriteAt(f.Size(), p) }

// Truncate sets the file's size, zero-filling when growing.
func (f *File) Truncate(size int64) {
	if size < 0 {
		size = 0
	}
	if size <= int64(len(f.data)) {
		f.data = f.data[:size]
		return
	}
	grown := make([]byte, size)
	copy(grown, f.data)
	f.data = grown
}

// ReadAt fills p from off and returns how many bytes were available.
func (f *File) ReadAt(off int64, p []byte) int {
	if off >= int64(len(f.data)) {
		return 0
	}
	return copy(p, f.data[off:])
}

// Clone returns an independent copy of the file.
func (f *File) Clone() *File { return NewFile(f.data) }
