package server

import (
	"testing"

	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/ncc"
	"repro/internal/proto"
	"repro/internal/sim"
)

// TestServerSteadyStateAllocs pins the tentpole's end-to-end zero-alloc
// property: a full request round trip through a real file server — pooled
// request marshal, wire decode into the server's recycled request struct,
// dispatch, pooled response marshal, pooled client-side decode — performs
// zero heap allocations once the caches are warm. Durability and tracing are
// off (the harness default), matching the steady-state configuration the
// scale sweeps run in.
func TestServerSteadyStateAllocs(t *testing.T) {
	h := newHarness(t)

	// One file to stat by inode, exercising the common metadata hot path.
	created := h.callOK(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "hot",
		Mode: fsapi.Mode644, Ftype: fsapi.TypeRegular,
	})

	req := &proto.Request{Op: proto.OpStat, Target: created.Ino, ClientID: 7}
	resp := &proto.Response{}
	roundTrip := func() {
		payload := req.AppendTo(h.ep.GetBuf(req.SizeHint()))
		env, err := h.net.RPC(h.ep, h.srv.EndpointID(), proto.KindRequest, payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := proto.UnmarshalResponseInto(resp, env.Payload); err != nil {
			t.Fatal(err)
		}
		h.ep.PutBuf(env.Payload)
		if resp.Err != fsapi.OK {
			t.Fatalf("stat failed: %v", resp.Err)
		}
	}
	// Warm every free list on both sides (buffers, futures, request structs).
	for i := 0; i < 32; i++ {
		roundTrip()
	}
	if allocs := testing.AllocsPerRun(200, roundTrip); allocs != 0 {
		t.Fatalf("steady-state stat round trip allocated %.2f/op, want 0", allocs)
	}

	// Ping is the minimal request; it must be flat too.
	ping := &proto.Request{Op: proto.OpPing, ClientID: 7}
	pingTrip := func() {
		payload := ping.AppendTo(h.ep.GetBuf(ping.SizeHint()))
		env, err := h.net.RPC(h.ep, h.srv.EndpointID(), proto.KindRequest, payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := proto.UnmarshalResponseInto(resp, env.Payload); err != nil {
			t.Fatal(err)
		}
		h.ep.PutBuf(env.Payload)
	}
	for i := 0; i < 32; i++ {
		pingTrip()
	}
	if allocs := testing.AllocsPerRun(200, pingTrip); allocs != 0 {
		t.Fatalf("steady-state ping round trip allocated %.2f/op, want 0", allocs)
	}
}

// BenchmarkServerStat measures the end-to-end request path through a real
// server; -benchmem should report 0 allocs/op.
func BenchmarkServerStat(b *testing.B) {
	machine := sim.NewMachine(sim.TopologyForCores(2), sim.DefaultCostModel())
	network := msg.NewNetwork(msg.WrapMachine(machine))
	dram := ncc.NewDRAM(64, 512)
	parts := ncc.PartitionDRAM(dram, 1)
	registry := NewClientRegistry()
	srv := New(Config{
		ID: 0, Core: 0, NumServers: 1, Machine: machine, Network: network,
		DRAM: dram, Partition: parts[0], Registry: registry, CoLocated: true,
	})
	srv.Start()
	defer srv.Stop()
	ep := network.NewEndpoint(1)
	registry.Register(7, ep.ID)

	call := func(req *proto.Request, resp *proto.Response) {
		payload := req.AppendTo(ep.GetBuf(req.SizeHint()))
		env, err := network.RPC(ep, srv.EndpointID(), proto.KindRequest, payload, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := proto.UnmarshalResponseInto(resp, env.Payload); err != nil {
			b.Fatal(err)
		}
		ep.PutBuf(env.Payload)
	}
	var created proto.Response
	call(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "hot",
		Mode: fsapi.Mode644, Ftype: fsapi.TypeRegular, ClientID: 7,
	}, &created)
	if created.Err != fsapi.OK {
		b.Fatalf("create failed: %v", created.Err)
	}
	req := &proto.Request{Op: proto.OpStat, Target: created.Ino, ClientID: 7}
	resp := &proto.Response{}
	for i := 0; i < 32; i++ {
		call(req, resp)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call(req, resp)
	}
}
