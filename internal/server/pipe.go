package server

import (
	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/proto"
)

// pipeBufferMax is the pipe capacity in bytes (matches Linux's default of
// 64 KiB; the exact value only affects when writers block).
const pipeBufferMax = 64 * 1024

// pipeState is the server-side state of one pipe. The pipe lives on the
// server that created it; both ends perform RPCs to that server. Blocking
// reads and writes are implemented by parking the request and replying when
// the state changes — the server's request loop never blocks.
type pipeState struct {
	buf     []byte
	readers int
	writers int

	waitReaders []parkedReq
	waitWriters []parkedReq
}

func (s *Server) getPipe(target proto.InodeID) (*inode, *pipeState, fsapi.Errno) {
	ino, errno := s.getInode(target)
	if errno != fsapi.OK {
		return nil, nil, errno
	}
	if ino.ftype != fsapi.TypePipe || ino.pipe == nil {
		return nil, nil, fsapi.EBADF
	}
	return ino, ino.pipe, fsapi.OK
}

func (s *Server) handlePipeCreate(req *proto.Request) *proto.Response {
	ino := s.allocInode(fsapi.TypePipe, fsapi.Mode(0o600), false)
	ino.pipe = &pipeState{readers: 1, writers: 1}
	// The pipe itself is volatile, but its inode *number* must never be
	// reissued after recovery while clients may still hold it; replay
	// uses the record only to advance the allocator.
	s.stageInode(ino)
	return s.resp(proto.Response{Ino: s.id(ino)})
}

func (s *Server) handlePipeRead(req *proto.Request, env msg.Envelope) (*proto.Response, bool) {
	ino, p, errno := s.getPipe(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno), false
	}
	if len(p.buf) == 0 {
		if p.writers == 0 {
			// End of file: all write ends closed.
			return s.resp(proto.Response{N: 0}), false
		}
		p.waitReaders = append(p.waitReaders, parkedReq{req: req, env: env})
		s.cfg.Network.GateIdle(env.Src)
		return nil, true
	}
	n := int(req.Count)
	if n <= 0 || n > len(p.buf) {
		n = len(p.buf)
	}
	data := make([]byte, n)
	copy(data, p.buf[:n])
	p.buf = p.buf[n:]
	s.wakePipeWriters(ino, p)
	return s.resp(proto.Response{Data: data, N: int64(n)}), false
}

func (s *Server) handlePipeWrite(req *proto.Request, env msg.Envelope) (*proto.Response, bool) {
	ino, p, errno := s.getPipe(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno), false
	}
	if p.readers == 0 {
		return s.errResp(fsapi.EPIPE), false
	}
	space := pipeBufferMax - len(p.buf)
	if space <= 0 {
		p.waitWriters = append(p.waitWriters, parkedReq{req: req, env: env})
		s.cfg.Network.GateIdle(env.Src)
		return nil, true
	}
	n := len(req.Data)
	if n > space {
		n = space
	}
	p.buf = append(p.buf, req.Data[:n]...)
	s.wakePipeReaders(ino, p)
	return s.resp(proto.Response{N: int64(n)}), false
}

func (s *Server) handlePipeIncRef(req *proto.Request, writeEnd bool) *proto.Response {
	_, p, errno := s.getPipe(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	if writeEnd {
		p.writers++
	} else {
		p.readers++
	}
	return s.resp(proto.Response{})
}

func (s *Server) handlePipeClose(req *proto.Request, writeEnd bool) *proto.Response {
	ino, p, errno := s.getPipe(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	if writeEnd {
		if p.writers > 0 {
			p.writers--
		}
		if p.writers == 0 {
			// Wake blocked readers: they observe EOF (or drain what
			// remains in the buffer).
			s.wakePipeReaders(ino, p)
		}
	} else {
		if p.readers > 0 {
			p.readers--
		}
		if p.readers == 0 {
			// Wake blocked writers: they observe EPIPE.
			s.wakePipeWriters(ino, p)
		}
	}
	if p.readers == 0 && p.writers == 0 {
		ino.nlink = 0
		ino.pipe = nil
		s.maybeReap(ino)
	}
	return s.resp(proto.Response{})
}

// wakePipeReaders re-dispatches parked read requests after data arrived or
// the last writer closed.
func (s *Server) wakePipeReaders(_ *inode, p *pipeState) {
	waiting := p.waitReaders
	p.waitReaders = nil
	for _, w := range waiting {
		resp, parked := s.handlePipeRead(w.req, w.env)
		if parked {
			continue
		}
		s.reply(w.env, resp)
		s.putReq(w.req)
	}
}

// wakePipeWriters re-dispatches parked write requests after space appeared
// or the last reader closed.
func (s *Server) wakePipeWriters(_ *inode, p *pipeState) {
	waiting := p.waitWriters
	p.waitWriters = nil
	for _, w := range waiting {
		resp, parked := s.handlePipeWrite(w.req, w.env)
		if parked {
			continue
		}
		s.reply(w.env, resp)
		s.putReq(w.req)
	}
}
