package server

import (
	"repro/internal/fsapi"
	"repro/internal/proto"
	"repro/internal/table"
)

// Hot-path data structures (DESIGN.md §13).
//
// The per-server tables — inodes, directory shards, dead-directory
// tombstones, shared descriptors, invalidation tracking — use the open-
// addressing tables from internal/table instead of built-in maps. Beyond the
// flat layout, this makes every server-side iteration (checkpoint encoding,
// migration scans, invalidation fan-outs) deterministic: slot order is a
// pure function of the operation history, where Go map order is randomized
// per run. The inode table is sharded so a million-file namespace rehashes
// in bounded slices.

// hashIno mixes an InodeID into a well-distributed 64-bit hash.
func hashIno(id proto.InodeID) uint64 {
	return table.HashU64(id.Local ^ uint64(uint32(id.Server))<<40)
}

// hashDirent mixes a tracking key (directory inode + entry name).
func hashDirent(k direntKey) uint64 {
	return table.HashU64(hashIno(k.dir) ^ table.HashString(k.name))
}

// hashFd hashes a shared-descriptor id.
func hashFd(f proto.FdID) uint64 { return table.HashU64(uint64(f)) }

func newInodeTable() *table.Sharded[uint64, *inode] {
	return table.NewSharded[uint64, *inode](table.HashU64, 1024)
}

func newDirTable() *table.Map[proto.InodeID, *dirShard] {
	return table.New[proto.InodeID, *dirShard](hashIno, 64)
}

func newDeadDirTable() *table.Map[proto.InodeID, struct{}] {
	return table.New[proto.InodeID, struct{}](hashIno, 0)
}

func newFdTable() *table.Map[proto.FdID, *sharedFd] {
	return table.New[proto.FdID, *sharedFd](hashFd, 16)
}

func newTrackTable() *table.Map[direntKey, []int32] {
	return table.New[direntKey, []int32](hashDirent, 256)
}

// deadDir reports whether dir carries a dead-directory tombstone.
func (s *Server) deadDir(dir proto.InodeID) bool {
	_, ok := s.deadDirs.Get(dir)
	return ok
}

// reqFreeCap bounds the request free list (one entry per concurrently parked
// request plus the in-service one is the steady-state need).
const reqFreeCap = 64

// getReq returns a request struct from the server's free list. The decode
// into it resets every field.
func (s *Server) getReq() *proto.Request {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree[n-1] = nil
		s.reqFree = s.reqFree[:n-1]
		return r
	}
	return new(proto.Request)
}

// putReq releases a request the loop has fully answered. Requests retained
// by park sites are released at their unpark-reply site instead. Slices are
// dropped so a recycled request does not pin a large write payload.
func (s *Server) putReq(r *proto.Request) {
	if r == nil || len(s.reqFree) >= reqFreeCap {
		return
	}
	r.Data, r.Fds, r.Args, r.Env = nil, nil, nil, nil
	s.reqFree = append(s.reqFree, r)
}

// resp copies v into the server's scratch response and returns it. The
// request loop serves one request at a time and replyAt marshals the
// response before the next dispatch runs, so a single scratch struct backs
// every hot-path response without allocating. The one place several
// responses are alive at once — batch sub-responses — clones the scratch
// (dispatchBatch).
func (s *Server) resp(v proto.Response) *proto.Response {
	s.scratch = v
	return &s.scratch
}

// errResp is resp for error-only responses.
func (s *Server) errResp(errno fsapi.Errno) *proto.Response {
	s.scratch = proto.Response{Err: errno}
	return &s.scratch
}
