package server

import (
	"sort"

	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/place"
	"repro/internal/proto"
	"repro/internal/wal"
)

// Shard ownership and migration (elastic placement, DESIGN.md §9).
//
// Every server holds the current placement map and its epoch. Requests that
// were routed through the map (distributed-directory entry operations) carry
// the epoch they were routed under; a mismatch is answered with EEPOCH so
// the client refreshes its cached routing table and retries. Inode, shared
// descriptor, and pipe operations are not placement-routed — inodes never
// migrate — and bypass the gate entirely (their requests carry epoch 0).
//
// A migration is driven by the deployment's control plane, one server at a
// time (servers never talk to each other):
//
//	FREEZE  announce the pending epoch. Entry reads at the current epoch
//	        are still served (the entries have not moved yet); entry
//	        mutations — and any operation already stamped with the pending
//	        epoch — park until COMMIT.
//	PULL    copy out the entries that leave this server under the new map.
//	        Read-only and idempotent: re-pulling after a failed attempt
//	        returns the same set.
//	COMMIT  install the entries arriving here, drop the ones that left,
//	        adopt the new map and epoch, and resume parked requests. All of
//	        it is staged into the write-ahead log as one batch (entry
//	        installs, removals, then the epoch record), so a crashed server
//	        recovers on exactly one side of the epoch boundary — either
//	        wholly the old epoch or wholly the new, never a mix.

// entryOp reports whether the op addresses a directory-entry shard and is
// therefore subject to the placement epoch gate when stamped.
func entryOp(op proto.Op) bool {
	switch op {
	case proto.OpLookup, proto.OpAddMap, proto.OpRmMap, proto.OpReadDirShard,
		proto.OpCreateCoalesced,
		proto.OpRmdirPrepare, proto.OpRmdirCommit, proto.OpRmdirAbort:
		return true
	default:
		return false
	}
}

// entryReadOnly reports whether the entry op leaves shard state unchanged
// (and may therefore be served while the server is frozen: the entries have
// not moved until COMMIT).
func entryReadOnly(op proto.Op) bool {
	return op == proto.OpLookup || op == proto.OpReadDirShard
}

// epochGate intercepts placement-routed requests whose epoch does not match
// the server's. The third result reports whether the gate handled the
// request (reply or park); otherwise dispatch proceeds normally.
func (s *Server) epochGate(req *proto.Request, env msg.Envelope) (*proto.Response, bool, bool) {
	if req.Epoch == 0 || s.pmap == nil || !entryOp(req.Op) {
		return nil, false, false
	}
	cur := s.epoch.Load()
	if s.frozen {
		if req.Epoch == cur && entryReadOnly(req.Op) {
			return nil, false, false // serve-while-frozen
		}
		if req.Epoch == cur || req.Epoch == s.pendingEpoch {
			s.migParked = append(s.migParked, parkedReq{req: req, env: env})
			s.cfg.Network.GateIdle(env.Src)
			return nil, true, true
		}
		return s.resp(proto.Response{Err: fsapi.EEPOCH, Epoch: cur}), false, true
	}
	if req.Epoch != cur {
		// Behind (the client routed under a retired map) or ahead (this
		// server crashed mid-migration and has not been re-committed yet).
		// Either way the client refreshes and retries.
		return s.resp(proto.Response{Err: fsapi.EEPOCH, Epoch: cur}), false, true
	}
	return nil, false, false
}

// dirDistributed reports whether dir's entries are placement-routed. A shard
// of a remote directory can only exist here through distribution; for local
// directories the inode records the flag.
func (s *Server) dirDistributed(dir proto.InodeID) bool {
	if dir.Server != int32(s.cfg.ID) {
		return true
	}
	if ino, ok := s.inodes.Get(dir.Local); ok {
		return ino.distributed
	}
	return true
}

// outgoingEntries lists every distributed-directory entry this server holds
// that the given map routes elsewhere, in deterministic (dir, name) order.
func (s *Server) outgoingEntries(m *place.Map) []proto.MigEntry {
	self := int32(s.cfg.ID)
	var out []proto.MigEntry
	s.dirs.Range(func(dir proto.InodeID, sh *dirShard) bool {
		if !s.dirDistributed(dir) {
			return true
		}
		sh.ents.Range(func(name string, ent dirEnt) bool {
			if m.Route(proto.Hash(dir, name)) != self {
				out = append(out, proto.MigEntry{
					Dir:    dir,
					Name:   name,
					Target: ent.target,
					Ftype:  ent.ftype,
					Dist:   ent.dist,
				})
			}
			return true
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dir != out[j].Dir {
			if out[i].Dir.Server != out[j].Dir.Server {
				return out[i].Dir.Server < out[j].Dir.Server
			}
			return out[i].Dir.Local < out[j].Dir.Local
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// handleShardFreeze announces a pending epoch: from here until COMMIT, entry
// mutations park. Idempotent, and a no-op on a server that already reached
// the target epoch (a resumed migration re-freezing survivors).
func (s *Server) handleShardFreeze(req *proto.Request) *proto.Response {
	if s.pmap == nil {
		return s.errResp(fsapi.EINVAL)
	}
	cur := s.epoch.Load()
	if req.Epoch <= cur {
		return s.resp(proto.Response{Epoch: cur})
	}
	s.frozen = true
	s.pendingEpoch = req.Epoch
	return s.resp(proto.Response{Epoch: cur})
}

// handleShardPull copies out the entries that leave this server under the
// map carried in the request, together with the rmdir state every member
// must agree on: marks of in-flight rmdirs (so a create racing the rmdir
// parks on the new owner too, instead of landing on an unmarked shard that
// the rmdir's commit would destroy) and dead-directory tombstones (so a
// later-added member refuses entries into directories that no longer
// exist). Pure read: nothing is deleted until COMMIT.
func (s *Server) handleShardPull(req *proto.Request) *proto.Response {
	if s.pmap == nil {
		return s.errResp(fsapi.EINVAL)
	}
	m, err := proto.UnmarshalShardMsg(req.Data)
	if err != nil {
		return s.errResp(fsapi.EINVAL)
	}
	newMap, err := place.Decode(m.MapBlob)
	if err != nil {
		return s.errResp(fsapi.EINVAL)
	}
	out := s.outgoingEntries(newMap)
	reply := &proto.ShardMsg{Entries: out}
	s.dirs.Range(func(dir proto.InodeID, sh *dirShard) bool {
		if sh.marked && s.dirDistributed(dir) {
			reply.Marked = append(reply.Marked, dir)
		}
		return true
	})
	s.deadDirs.Range(func(dir proto.InodeID, _ struct{}) bool {
		reply.DeadDirs = append(reply.DeadDirs, dir)
		return true
	})
	sortInodeIDs(reply.Marked)
	sortInodeIDs(reply.DeadDirs)
	return s.resp(proto.Response{Data: reply.Marshal(), N: int64(len(out)), Epoch: s.epoch.Load()})
}

// sortInodeIDs orders ids deterministically (stable wire bytes and logs).
func sortInodeIDs(ids []proto.InodeID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Server != ids[j].Server {
			return ids[i].Server < ids[j].Server
		}
		return ids[i].Local < ids[j].Local
	})
}

// handleShardCommit finishes the migration on this server: install the
// incoming entries, drop the outgoing ones, adopt the new map and epoch
// (write-ahead logged as one batch), and resume parked requests.
// Re-committing an already-committed server is idempotent.
func (s *Server) handleShardCommit(req *proto.Request) *proto.Response {
	if s.pmap == nil {
		return s.errResp(fsapi.EINVAL)
	}
	m, err := proto.UnmarshalShardMsg(req.Data)
	if err != nil {
		return s.errResp(fsapi.EINVAL)
	}
	newMap, err := place.Decode(m.MapBlob)
	if err != nil {
		return s.errResp(fsapi.EINVAL)
	}
	cur := s.epoch.Load()
	if newMap.Epoch() < cur {
		return s.resp(proto.Response{Err: fsapi.EEPOCH, Epoch: cur})
	}

	// Install the entries arriving here, skipping entries already present
	// with the same value so a re-sent COMMIT (a resumed migration
	// re-driving servers that committed before the crash) neither inflates
	// the migration counters nor re-stages redundant log records. A parked
	// mutation that will re-run after the unpark below is logged after
	// these records, preserving replay order.
	var installed uint64
	for i := range m.Entries {
		ent := &m.Entries[i]
		sh := s.shard(ent.Dir)
		val := dirEnt{target: ent.Target, ftype: ent.Ftype, dist: ent.Dist}
		old, exists := sh.ents.Get(ent.Name)
		if exists && old == val {
			continue
		}
		if !exists {
			s.entCount.Add(1)
		}
		sh.ents.Put(ent.Name, val)
		s.stageAddMap(ent.Dir, ent.Name, val)
		installed++
	}

	// Adopt the rmdir state the old members agreed on: re-mark shards of
	// in-flight rmdirs and install dead-directory tombstones.
	for _, dir := range m.Marked {
		if !s.deadDir(dir) {
			s.shard(dir).marked = true
		}
	}
	for _, dir := range m.DeadDirs {
		if !s.deadDir(dir) {
			s.deadDirs.Put(dir, struct{}{})
			s.stageDirKill(dir)
		}
	}

	// Drop everything the new map routes elsewhere (computed after the
	// installs, so a misdirected install heals itself), telling clients
	// that cached these lookups through us to forget them — the new owner
	// will track them on their next lookup.
	out := s.outgoingEntries(newMap)
	for _, ent := range out {
		if sh, ok := s.dirs.Get(ent.Dir); ok {
			sh.ents.Delete(ent.Name)
			s.entCount.Add(-1)
		}
		s.stageRmMap(ent.Dir, ent.Name)
		s.invalidate(ent.Dir, ent.Name, -1)
	}

	s.pmap = newMap
	if newMap.Epoch() > cur {
		s.epoch.Store(newMap.Epoch())
		s.stage(wal.Record{Type: wal.RecEpoch, Epoch: newMap.Epoch(), Data: newMap.Encode()})
	}
	s.frozen = false
	s.pendingEpoch = 0

	s.statsMu.Lock()
	s.stats.MigInEntries += installed
	s.stats.MigOutEntries += uint64(len(out))
	s.statsMu.Unlock()

	// Resume parked work: requests parked by the freeze, and requests
	// parked on rmdir marks of shards whose entries just moved (their
	// re-dispatch answers EEPOCH, sending the client to the new owner).
	s.unparkMigration()
	s.dirs.Range(func(_ proto.InodeID, sh *dirShard) bool {
		if len(sh.parked) > 0 {
			s.unparkShard(sh)
		}
		return true
	})
	return s.resp(proto.Response{Epoch: newMap.Epoch(), N: int64(len(out))})
}

// unparkMigration re-dispatches every request parked by the freeze.
func (s *Server) unparkMigration() {
	parked := s.migParked
	s.migParked = nil
	for _, p := range parked {
		resp, again := s.dispatch(p.req, p.env)
		if again {
			continue
		}
		s.reply(p.env, resp)
		s.putReq(p.req)
	}
}
