package server

import (
	"repro/internal/fsapi"
	"repro/internal/proto"
)

// sharedFd is the server-side state of a file descriptor shared between
// processes (§3.4). While shared, the offset lives here and every read,
// write, and seek goes through the server so that all sharers observe a
// consistent offset.
type sharedFd struct {
	ino    uint64 // local inode number on this server
	offset int64
	refs   int
	flags  int32
}

func (s *Server) getSharedFd(id proto.FdID) (*sharedFd, fsapi.Errno) {
	fd, ok := s.sharedFds.Get(id)
	if !ok {
		return nil, fsapi.EBADF
	}
	return fd, fsapi.OK
}

// handleFdShare migrates an offset from a client library to this server.
// The new shared descriptor starts with a single reference — the caller's
// own — and the caller separately increments it (OpFdIncRef) on behalf of
// each process that will share it. The inode's open-descriptor count is not
// changed here: the caller already holds a reference from its open().
func (s *Server) handleFdShare(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	// Sharing a descriptor the client had written through flushes its dirty
	// data to DRAM first; the share request coalesces the resulting size
	// update (sizes only grow here, like CLOSE) and the version bump other
	// clients' caches must observe, saving a separate SET_SIZE message.
	if req.Dirty {
		if req.Size > ino.size {
			ino.size = req.Size
			s.stageSize(ino)
		}
		s.bumpVersion(ino)
	}
	id := s.nextFd
	s.nextFd++
	s.sharedFds.Put(id, &sharedFd{ino: ino.local, offset: req.Offset, refs: 1, flags: req.Flags})
	return s.resp(proto.Response{Fd: id, Refs: 1, Version: ino.version})
}

func (s *Server) handleFdIncRef(req *proto.Request) *proto.Response {
	fd, errno := s.getSharedFd(req.Fd)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	fd.refs++
	if ino, ok := s.inodes.Get(fd.ino); ok {
		ino.fdRefs++
	}
	return s.resp(proto.Response{Fd: req.Fd, Refs: int32(fd.refs)})
}

func (s *Server) handleFdDecRef(req *proto.Request) *proto.Response {
	fd, errno := s.getSharedFd(req.Fd)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	fd.refs--
	if ino, ok := s.inodes.Get(fd.ino); ok {
		if ino.fdRefs > 0 {
			ino.fdRefs--
		}
		s.maybeReap(ino)
	}
	if fd.refs <= 0 {
		s.sharedFds.Delete(req.Fd)
	}
	return s.resp(proto.Response{Refs: int32(fd.refs), Offset: fd.offset})
}

// handleFdUnshare lets the last remaining holder of a shared descriptor pull
// the offset back into its client library (the descriptor reverts to local
// state, §3.4). The inode's open-descriptor count is unchanged: the holder
// keeps its reference.
func (s *Server) handleFdUnshare(req *proto.Request) *proto.Response {
	fd, errno := s.getSharedFd(req.Fd)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	if fd.refs != 1 {
		return s.errResp(fsapi.EBUSY)
	}
	s.sharedFds.Delete(req.Fd)
	return s.resp(proto.Response{Offset: fd.offset})
}

func (s *Server) handleFdRead(req *proto.Request) *proto.Response {
	fd, errno := s.getSharedFd(req.Fd)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	ino, ok := s.inodes.Get(fd.ino)
	if !ok {
		return s.errResp(fsapi.ESTALE)
	}
	n := int64(req.Count)
	if fd.offset >= ino.size {
		return s.resp(proto.Response{N: 0, Offset: fd.offset, Refs: int32(fd.refs)})
	}
	if fd.offset+n > ino.size {
		n = ino.size - fd.offset
	}
	data := make([]byte, n)
	s.readData(ino, fd.offset, data)
	fd.offset += n
	return s.resp(proto.Response{Data: data, N: n, Offset: fd.offset, Refs: int32(fd.refs)})
}

func (s *Server) handleFdWrite(req *proto.Request) *proto.Response {
	fd, errno := s.getSharedFd(req.Fd)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	ino, ok := s.inodes.Get(fd.ino)
	if !ok {
		return s.errResp(fsapi.ESTALE)
	}
	off := fd.offset
	if fd.flags&fsapi.OAppend != 0 {
		off = ino.size
	}
	end := off + int64(len(req.Data))
	before := len(ino.blocks)
	if errno := s.ensureCapacity(ino, end); errno != fsapi.OK {
		return s.errResp(errno)
	}
	s.writeData(ino, off, req.Data)
	if end > ino.size {
		ino.size = end
	}
	if len(ino.blocks) != before {
		s.stageBlocks(ino)
	}
	// The offset is resolved before logging so append-mode replay writes
	// the same bytes to the same place.
	s.stageWrite(ino, off, req.Data)
	s.bumpVersion(ino)
	fd.offset = end
	return s.resp(proto.Response{N: int64(len(req.Data)), Offset: fd.offset, Size: ino.size, Refs: int32(fd.refs)})
}

func (s *Server) handleFdSeek(req *proto.Request) *proto.Response {
	fd, errno := s.getSharedFd(req.Fd)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	ino, ok := s.inodes.Get(fd.ino)
	if !ok {
		return s.errResp(fsapi.ESTALE)
	}
	var base int64
	switch req.Whence {
	case fsapi.SeekSet:
		base = 0
	case fsapi.SeekCur:
		base = fd.offset
	case fsapi.SeekEnd:
		base = ino.size
	default:
		return s.errResp(fsapi.EINVAL)
	}
	pos := base + req.Offset
	if pos < 0 {
		return s.errResp(fsapi.EINVAL)
	}
	fd.offset = pos
	return s.resp(proto.Response{Offset: fd.offset, Refs: int32(fd.refs)})
}

func (s *Server) handleFdGetInfo(req *proto.Request) *proto.Response {
	fd, errno := s.getSharedFd(req.Fd)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	return s.resp(proto.Response{Offset: fd.offset, Refs: int32(fd.refs)})
}
