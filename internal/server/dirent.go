package server

import (
	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/table"
)

// dirEnt is one directory entry stored on this server. Each entry records
// both the inode and the server storing it (inodes do not identify their
// server on their own, §3.6.1), plus the entry type and — for directories —
// whether the directory's own entries are distributed.
type dirEnt struct {
	target proto.InodeID
	ftype  fsapi.FileType
	dist   bool
}

// dirShard is this server's slice of one directory's entries. For a
// distributed directory every server holds a shard; for a centralized
// directory only the home server does.
type dirShard struct {
	ents *table.Map[string, dirEnt]
	// marked is set between the PREPARE and COMMIT/ABORT phases of the
	// rmdir protocol; while set, operations on this directory are parked.
	marked bool
	parked []parkedReq
}

// parkedReq is a request whose reply has been deferred (rmdir mark, blocked
// pipe read/write, rmdir lock queue).
type parkedReq struct {
	req *proto.Request
	env msg.Envelope
}

// direntKey identifies one directory entry for invalidation tracking.
type direntKey struct {
	dir  proto.InodeID
	name string
}

// shard returns this server's shard for dir, creating it if needed.
func (s *Server) shard(dir proto.InodeID) *dirShard {
	sh, ok := s.dirs.Get(dir)
	if !ok {
		sh = &dirShard{ents: table.New[string, dirEnt](table.HashString, 0)}
		s.dirs.Put(dir, sh)
	}
	return sh
}

// track records that client has the entry cached.
func (s *Server) track(dir proto.InodeID, name string, client int32) {
	if client < 0 {
		return
	}
	key := direntKey{dir, name}
	set, _ := s.tracking.Get(key)
	for _, c := range set {
		if c == client {
			return
		}
	}
	s.tracking.Put(key, append(set, client))
}

// invalidate sends directory-cache invalidation callbacks to every client
// tracked for (dir, name) except the requester, then clears the tracking
// set. Thanks to atomic message delivery the server does not wait for
// acknowledgements (§3.6.1). The set is insertion-ordered, so the fan-out
// order is deterministic across runs.
func (s *Server) invalidate(dir proto.InodeID, name string, except int32) {
	key := direntKey{dir, name}
	set, ok := s.tracking.Get(key)
	if !ok {
		return
	}
	s.tracking.Delete(key)
	payload := (&proto.Invalidation{Dir: dir, Name: name}).Marshal()
	cost := s.cfg.Machine.Cost
	for _, client := range set {
		if client == except {
			continue
		}
		ep, ok := s.cfg.Registry.Lookup(client)
		if !ok {
			continue
		}
		end := s.cfg.Machine.Execute(s.cfg.Core, s.clock.Now(), cost.MsgSend)
		s.clock.AdvanceTo(end)
		if _, err := s.cfg.Network.SendCallback(s.ep, ep, proto.KindCallback, payload, s.clock.Now()); err == nil {
			s.statsMu.Lock()
			s.stats.Invalidations++
			s.statsMu.Unlock()
		}
	}
	// The requester keeps (or re-establishes) its own cached copy.
	if except >= 0 {
		s.track(dir, name, except)
	}
}

// park defers a request on a shard until its rmdir mark is resolved, and
// idles the requester's lane: its reply time is controlled by whichever
// client resolves the mark, and the unpark reply resumes the lane
// (DESIGN.md §13).
func (s *Server) park(sh *dirShard, req *proto.Request, env msg.Envelope) {
	sh.parked = append(sh.parked, parkedReq{req: req, env: env})
	s.cfg.Network.GateIdle(env.Src)
}

// unparkShard re-dispatches every request parked on the shard.
func (s *Server) unparkShard(sh *dirShard) {
	parked := sh.parked
	sh.parked = nil
	for _, p := range parked {
		resp, again := s.dispatch(p.req, p.env)
		if again {
			continue
		}
		s.reply(p.env, resp)
		s.putReq(p.req)
	}
}

// --- directory entry handlers ---

func (s *Server) handleLookup(req *proto.Request, env msg.Envelope) (*proto.Response, bool) {
	if s.deadDir(req.Dir) {
		return s.errResp(fsapi.ENOENT), false
	}
	sh, ok := s.dirs.Get(req.Dir)
	if !ok {
		return s.errResp(fsapi.ENOENT), false
	}
	if sh.marked {
		s.park(sh, req, env)
		return nil, true
	}
	ent, ok := sh.ents.Get(req.Name)
	if !ok {
		return s.errResp(fsapi.ENOENT), false
	}
	s.track(req.Dir, req.Name, req.ClientID)
	return s.resp(proto.Response{
		Ino:    ent.target,
		Server: ent.target.Server,
		Ftype:  ent.ftype,
		Dist:   ent.dist,
	}), false
}

func (s *Server) handleAddMap(req *proto.Request, env msg.Envelope) (*proto.Response, bool) {
	if !fsapi.ValidName(req.Name) {
		return s.errResp(fsapi.EINVAL), false
	}
	if s.deadDir(req.Dir) {
		return s.errResp(fsapi.ENOENT), false
	}
	sh := s.shard(req.Dir)
	if sh.marked {
		s.park(sh, req, env)
		return nil, true
	}
	old, exists := sh.ents.Get(req.Name)
	if exists && !req.Replace {
		return s.resp(proto.Response{
			Err:    fsapi.EEXIST,
			Ino:    old.target,
			Server: old.target.Server,
			Ftype:  old.ftype,
			Dist:   old.dist,
		}), false
	}
	ent := dirEnt{target: req.Target, ftype: req.Ftype, dist: req.Distributed}
	sh.ents.Put(req.Name, ent)
	if !exists {
		s.entCount.Add(1)
	}
	s.stageAddMap(req.Dir, req.Name, ent)
	if exists {
		s.invalidate(req.Dir, req.Name, req.ClientID)
	} else {
		s.track(req.Dir, req.Name, req.ClientID)
	}
	resp := s.resp(proto.Response{})
	if exists {
		resp.Ino = old.target
		resp.Server = old.target.Server
		resp.Ftype = old.ftype
		resp.N = 1
	} else {
		resp.Ino = proto.NilInode
	}
	return resp, false
}

func (s *Server) handleRmMap(req *proto.Request, env msg.Envelope) (*proto.Response, bool) {
	if s.deadDir(req.Dir) {
		return s.errResp(fsapi.ENOENT), false
	}
	sh, ok := s.dirs.Get(req.Dir)
	if !ok {
		return s.errResp(fsapi.ENOENT), false
	}
	if sh.marked {
		s.park(sh, req, env)
		return nil, true
	}
	ent, ok := sh.ents.Get(req.Name)
	if !ok {
		return s.errResp(fsapi.ENOENT), false
	}
	// Unlink must not remove directories and rmdir must not remove files;
	// the client states which type it expects (zero means "any", used by
	// rename).
	if req.Ftype == fsapi.TypeRegular && ent.ftype == fsapi.TypeDir {
		return s.errResp(fsapi.EISDIR), false
	}
	if req.Ftype == fsapi.TypeDir && ent.ftype != fsapi.TypeDir {
		return s.errResp(fsapi.ENOTDIR), false
	}
	// Compare-and-remove guard: a client that batches RM_MAP with dependent
	// sub-operations (pipelined unlink) passes the inode it expects the
	// entry to hold. A mismatch means the client's cache was stale; failing
	// here cancels the dependent sub-ops instead of letting them hit the
	// wrong inode. Local inode numbers start at 1, so Local==0 means the
	// guard is unset.
	if req.Target.Local != 0 && ent.target != req.Target {
		return s.errResp(fsapi.ESTALE), false
	}
	sh.ents.Delete(req.Name)
	s.entCount.Add(-1)
	s.stageRmMap(req.Dir, req.Name)
	s.invalidate(req.Dir, req.Name, -1)
	return s.resp(proto.Response{
		Ino:    ent.target,
		Server: ent.target.Server,
		Ftype:  ent.ftype,
		Dist:   ent.dist,
	}), false
}

func (s *Server) handleReadDirShard(req *proto.Request, env msg.Envelope) (*proto.Response, bool) {
	if s.deadDir(req.Dir) {
		return s.errResp(fsapi.ENOENT), false
	}
	sh, ok := s.dirs.Get(req.Dir)
	if !ok {
		// No entries ever created on this server for the directory;
		// an empty listing, not an error.
		return s.resp(proto.Response{}), false
	}
	if sh.marked {
		s.park(sh, req, env)
		return nil, true
	}
	ents := make([]proto.DirEntWire, 0, sh.ents.Len())
	sh.ents.Range(func(name string, ent dirEnt) bool {
		ents = append(ents, proto.DirEntWire{Name: name, Ino: ent.target, Ftype: ent.ftype})
		return true
	})
	return s.resp(proto.Response{Ents: ents, N: int64(len(ents))}), false
}

// handleCreateCoalesced creates the inode, adds the directory entry, and
// (optionally) opens a descriptor in a single message. It is used when
// creation affinity places the new inode on the same server that stores the
// directory entry (§3.6.3, §3.6.4).
func (s *Server) handleCreateCoalesced(req *proto.Request, env msg.Envelope) (*proto.Response, bool) {
	if !fsapi.ValidName(req.Name) {
		return s.errResp(fsapi.EINVAL), false
	}
	if s.deadDir(req.Dir) {
		return s.errResp(fsapi.ENOENT), false
	}
	sh := s.shard(req.Dir)
	if sh.marked {
		s.park(sh, req, env)
		return nil, true
	}
	if old, exists := sh.ents.Get(req.Name); exists {
		// The client falls back to the plain open path (or reports
		// EEXIST for O_EXCL); return the existing entry's location.
		return s.resp(proto.Response{
			Err:    fsapi.EEXIST,
			Ino:    old.target,
			Server: old.target.Server,
			Ftype:  old.ftype,
			Dist:   old.dist,
		}), false
	}
	ftype := req.Ftype
	if ftype == 0 {
		ftype = fsapi.TypeRegular
	}
	ino := s.allocInode(ftype, req.Mode, req.Distributed)
	ent := dirEnt{target: s.id(ino), ftype: ftype, dist: req.Distributed}
	sh.ents.Put(req.Name, ent)
	s.entCount.Add(1)
	s.stageInode(ino)
	s.stageAddMap(req.Dir, req.Name, ent)
	if req.WantOpen {
		ino.fdRefs++
	}
	s.track(req.Dir, req.Name, req.ClientID)
	return s.resp(proto.Response{
		Ino:     s.id(ino),
		Server:  int32(s.cfg.ID),
		Ftype:   ftype,
		Size:    0,
		Version: ino.version,
		Dist:    req.Distributed,
		Stat:    s.statOf(ino),
	}), false
}
