package server

import (
	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/proto"
)

// The three-phase rmdir protocol (§3.3).
//
// Directory entries of a distributed directory live on every server, so a
// client removing the directory must atomically verify that *all* shards are
// empty while racing file creations are held off. The client library drives
// the protocol; servers only keep local state:
//
//	phase 0 (LOCK):    serialize concurrent rmdir()s of the same directory
//	                   at the directory's home server (avoids deadlock
//	                   between two clients preparing in different orders).
//	phase 1 (PREPARE): each server marks its shard for deletion iff the
//	                   shard holds no entries; while marked, operations on
//	                   the directory are parked.
//	phase 2 (COMMIT):  delete the shard (the directory is gone); or
//	        (ABORT):   clear the mark and resume parked operations.
//	finish  (FINISH):  at the home server, remove the directory inode and
//	                   release the serialization lock.

func (s *Server) handleRmdirLock(req *proto.Request, env msg.Envelope) (*proto.Response, bool) {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno), false
	}
	if ino.ftype != fsapi.TypeDir {
		return s.errResp(fsapi.ENOTDIR), false
	}
	if ino.rmdirLocked {
		// Another client is already running the protocol on this
		// directory; park until it finishes. The waiter's lane idles: its
		// reply time is controlled by the lock holder.
		ino.rmdirQueue = append(ino.rmdirQueue, parkedReq{req: req, env: env})
		s.cfg.Network.GateIdle(env.Src)
		return nil, true
	}
	ino.rmdirLocked = true
	return s.resp(proto.Response{Dist: ino.distributed}), false
}

func (s *Server) handleRmdirPrepare(req *proto.Request) *proto.Response {
	if s.deadDir(req.Dir) {
		return s.errResp(fsapi.ENOENT)
	}
	sh := s.shard(req.Dir)
	if sh.ents.Len() > 0 {
		return s.errResp(fsapi.ENOTEMPTY)
	}
	sh.marked = true
	return s.resp(proto.Response{})
}

func (s *Server) handleRmdirCommit(req *proto.Request) *proto.Response {
	sh, ok := s.dirs.Get(req.Dir)
	if !ok {
		s.deadDirs.Put(req.Dir, struct{}{})
		s.stageDirKill(req.Dir)
		return s.resp(proto.Response{})
	}
	sh.marked = false
	s.entCount.Add(-int64(sh.ents.Len())) // empty in practice (PREPARE verified)
	s.dirs.Delete(req.Dir)
	s.deadDirs.Put(req.Dir, struct{}{})
	// Parked operations now observe the dead directory and fail with
	// ENOENT, which is the correct outcome for a create that raced with a
	// committed rmdir. Their replies go out before this commit's record is
	// staged, so a parked reply cannot drain the record and absorb the
	// rmdir's own group-commit latency.
	s.unparkShard(sh)
	s.stageDirKill(req.Dir)
	return s.resp(proto.Response{})
}

func (s *Server) handleRmdirAbort(req *proto.Request) *proto.Response {
	sh, ok := s.dirs.Get(req.Dir)
	if !ok {
		return s.resp(proto.Response{})
	}
	sh.marked = false
	s.unparkShard(sh)
	return s.resp(proto.Response{})
}

// handleRmdirUnlock releases the home-server serialization without removing
// the directory (the protocol aborted). The next queued rmdir, if any, is
// granted the lock.
func (s *Server) handleRmdirUnlock(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	s.releaseRmdirLock(ino, false)
	return s.resp(proto.Response{})
}

// handleRmdirFinish removes the directory inode at its home server and
// releases the serialization lock. Queued rmdir requests for the same
// directory are answered with ENOENT (the directory no longer exists).
func (s *Server) handleRmdirFinish(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	s.releaseRmdirLock(ino, true)
	ino.nlink = 0
	s.stageNlink(ino)
	s.stageDirKill(s.id(ino))
	s.maybeReap(ino)
	s.inodes.Delete(ino.local)
	s.deadDirs.Put(s.id(ino), struct{}{})
	return s.resp(proto.Response{})
}

// releaseRmdirLock hands the serialization lock to the next queued rmdir, or
// fails all waiters with ENOENT when the directory has been removed. Consumed
// requests return to the free list; replies resume the waiters' lanes.
func (s *Server) releaseRmdirLock(ino *inode, removed bool) {
	ino.rmdirLocked = false
	queue := ino.rmdirQueue
	ino.rmdirQueue = nil
	if removed {
		for _, p := range queue {
			s.reply(p.env, s.errResp(fsapi.ENOENT))
			s.putReq(p.req)
		}
		return
	}
	if len(queue) == 0 {
		return
	}
	// Grant the lock to the first waiter; re-queue the rest.
	first := queue[0]
	ino.rmdirLocked = true
	ino.rmdirQueue = queue[1:]
	s.reply(first.env, s.resp(proto.Response{Dist: ino.distributed}))
	s.putReq(first.req)
}
