package server

import (
	"repro/internal/fsapi"
	"repro/internal/ncc"
	"repro/internal/proto"
)

// inode is the server-side representation of a file, directory or pipe.
// Inodes live on the server that created them and never migrate.
type inode struct {
	local uint64
	ftype fsapi.FileType
	mode  fsapi.Mode
	size  int64
	nlink int

	// blocks is the ordered buffer-cache block list holding file data.
	blocks []ncc.BlockID
	// version counts data mutations (writes acknowledged at close/fsync,
	// server-side writes, extends, truncates). OPEN and CLOSE return it so a
	// client re-opening a file whose version matches its cached copy can
	// skip invalidating the file's blocks (DESIGN.md §8). After a crash,
	// versions restart in a fresh incarnation's range (verBase), so a stale
	// pre-crash version can never match.
	version uint64
	// fdRefs counts open file descriptors (across all client libraries)
	// referring to this inode. Data blocks are reclaimed only when the
	// count drops to zero (supports reading unlinked files, and defers
	// block reuse after truncate, §3.2/§3.4).
	fdRefs int
	// deferred holds blocks removed by truncate that cannot be reused
	// until all file descriptors are closed.
	deferred []ncc.BlockID

	// Directory state.
	distributed bool
	rmdirLocked bool
	rmdirQueue  []parkedReq

	// Pipe state.
	pipe *pipeState
}

// id returns the global InodeID of this inode on server s.
func (s *Server) id(ino *inode) proto.InodeID {
	return proto.InodeID{Server: int32(s.cfg.ID), Local: ino.local}
}

// getInode looks up a local inode addressed by a request Target.
func (s *Server) getInode(target proto.InodeID) (*inode, fsapi.Errno) {
	if target.Server != int32(s.cfg.ID) {
		return nil, fsapi.ESTALE
	}
	ino, ok := s.inodes.Get(target.Local)
	if !ok {
		return nil, fsapi.ENOENT
	}
	return ino, fsapi.OK
}

// allocInode creates a new inode of the given type on this server.
func (s *Server) allocInode(ftype fsapi.FileType, mode fsapi.Mode, distributed bool) *inode {
	ino := &inode{
		local:       s.nextIno,
		ftype:       ftype,
		mode:        mode,
		nlink:       1,
		distributed: distributed,
		version:     s.verBase,
	}
	s.nextIno++
	s.inodes.Put(ino.local, ino)
	return ino
}

// bumpVersion records a data mutation on the inode. Every path that changes
// file contents, the block list, or the size calls it, so a version match at
// open proves the client's cached copy is still byte-identical to DRAM.
func (s *Server) bumpVersion(ino *inode) { ino.version++ }

// blockList converts the inode's block list to the flat form used by the
// write-ahead log (whose record format predates extent coding and stays
// stable across PRs).
func blockList(ino *inode) []uint64 {
	out := make([]uint64, len(ino.blocks))
	for i, b := range ino.blocks {
		out[i] = uint64(b)
	}
	return out
}

// extentList converts the inode's block list to the extent-coded wire form:
// message bytes scale with the file's fragmentation, not its size.
func extentList(ino *inode) []proto.Extent {
	var out []proto.Extent
	for _, b := range ino.blocks {
		if n := len(out); n > 0 && out[n-1].Start+out[n-1].Count == uint64(b) {
			out[n-1].Count++
			continue
		}
		out = append(out, proto.Extent{Start: uint64(b), Count: 1})
	}
	return out
}

// ensureCapacity allocates blocks so the file can hold size bytes.
func (s *Server) ensureCapacity(ino *inode, size int64) fsapi.Errno {
	bs := int64(s.cfg.DRAM.BlockSize())
	need := int((size + bs - 1) / bs)
	for len(ino.blocks) < need {
		b, err := s.cfg.Partition.Alloc()
		if err != nil {
			return fsapi.ENOSPC
		}
		ino.blocks = append(ino.blocks, b)
	}
	return fsapi.OK
}

// releaseData frees the inode's data blocks (and any deferred blocks) back
// to this server's buffer-cache partition.
func (s *Server) releaseData(ino *inode) {
	if len(ino.blocks) > 0 {
		s.cfg.Partition.Free(ino.blocks)
		ino.blocks = nil
	}
	if len(ino.deferred) > 0 {
		s.cfg.Partition.Free(ino.deferred)
		ino.deferred = nil
	}
}

// maybeReap frees the inode's storage if it is no longer referenced: no
// links and no open file descriptors.
func (s *Server) maybeReap(ino *inode) {
	if ino.fdRefs > 0 {
		return
	}
	// No open descriptors: deferred (truncated) blocks can be reused now.
	if len(ino.deferred) > 0 {
		s.cfg.Partition.Free(ino.deferred)
		ino.deferred = nil
	}
	if ino.nlink <= 0 {
		s.releaseData(ino)
		s.inodes.Delete(ino.local)
	}
}

// statOf builds the wire Stat for an inode.
func (s *Server) statOf(ino *inode) proto.StatWire {
	return proto.StatWire{
		Ino:   s.id(ino),
		Ftype: ino.ftype,
		Size:  ino.size,
		Nlink: int32(ino.nlink),
		Mode:  ino.mode,
	}
}

// checkPerm verifies the open flags against the inode's owner permission
// bits (the prototype runs everything as one user, like the paper's).
func checkPerm(ino *inode, flags int32) fsapi.Errno {
	owner := ino.mode.OwnerBits()
	acc := flags & fsapi.OAccMode
	if (acc == fsapi.ORdOnly || acc == fsapi.ORdWr) && owner&fsapi.ModeRead == 0 {
		return fsapi.EACCES
	}
	if (acc == fsapi.OWrOnly || acc == fsapi.ORdWr) && owner&fsapi.ModeWrite == 0 {
		return fsapi.EACCES
	}
	return fsapi.OK
}

// --- inode operation handlers ---

func (s *Server) handleMknod(req *proto.Request) *proto.Response {
	ftype := req.Ftype
	if ftype == 0 {
		ftype = fsapi.TypeRegular
	}
	ino := s.allocInode(ftype, req.Mode, req.Distributed)
	s.stageInode(ino)
	return s.resp(proto.Response{Ino: s.id(ino), Ftype: ino.ftype, Dist: ino.distributed})
}

func (s *Server) handleLinkInode(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	ino.nlink++
	s.stageNlink(ino)
	return s.resp(proto.Response{N: int64(ino.nlink)})
}

func (s *Server) handleUnlinkInode(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	if ino.nlink > 0 {
		ino.nlink--
	}
	s.stageNlink(ino)
	s.maybeReap(ino)
	return s.resp(proto.Response{N: int64(ino.nlink)})
}

func (s *Server) handleOpenInode(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	if ino.ftype == fsapi.TypeDir && (req.Flags&fsapi.OAccMode) != fsapi.ORdOnly {
		return s.errResp(fsapi.EISDIR)
	}
	if errno := checkPerm(ino, req.Flags); errno != fsapi.OK {
		return s.errResp(errno)
	}
	if req.Flags&fsapi.OTrunc != 0 && ino.ftype == fsapi.TypeRegular {
		if s.truncateTo(ino, 0) {
			s.bumpVersion(ino)
		}
		s.stageBlocks(ino)
	}
	ino.fdRefs++
	return s.resp(proto.Response{
		Ino:     s.id(ino),
		Ftype:   ino.ftype,
		Size:    ino.size,
		Extents: extentList(ino),
		Version: ino.version,
		Stat:    s.statOf(ino),
		Dist:    ino.distributed,
	})
}

func (s *Server) handleCloseInode(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	// A close may carry the client's final view of the size (coalesced
	// SET_SIZE + CLOSE, §3.6.3). Sizes only grow here; truncation uses
	// OpTruncate explicitly.
	if req.Size > ino.size {
		ino.size = req.Size
		s.stageSize(ino)
	}
	// The Dirty flag says the client wrote the file's data directly in the
	// buffer cache (and has just written it back): other clients' cached
	// copies are now stale, so the data version moves on. The new version is
	// returned so the closing client — whose cache IS the new contents —
	// can skip invalidation on its own reopen.
	if req.Dirty {
		s.bumpVersion(ino)
	}
	if ino.fdRefs > 0 {
		ino.fdRefs--
	}
	s.maybeReap(ino)
	return s.resp(proto.Response{Size: ino.size, Version: ino.version})
}

func (s *Server) handleGetBlocks(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	return s.resp(proto.Response{Size: ino.size, Extents: extentList(ino), Version: ino.version})
}

func (s *Server) handleExtend(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	before := len(ino.blocks)
	if errno := s.ensureCapacity(ino, req.Size); errno != fsapi.OK {
		return s.errResp(errno)
	}
	if len(ino.blocks) != before {
		s.bumpVersion(ino)
		s.stageBlocks(ino)
	}
	return s.resp(proto.Response{Size: ino.size, Extents: extentList(ino), Version: ino.version})
}

func (s *Server) handleSetSize(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	if req.Size > ino.size {
		ino.size = req.Size
		s.stageSize(ino)
	}
	// SET_SIZE is only sent after direct writes (fsync/sync), so the file's
	// data changed even when the size did not.
	s.bumpVersion(ino)
	return s.resp(proto.Response{Size: ino.size, Version: ino.version})
}

// truncateTo shrinks the file to size, deferring block reuse while file
// descriptors remain open (another core's client library may still be
// writing those blocks directly, §3.2). It reports whether the size or the
// block list actually changed (so callers bump the data version only for
// real mutations).
func (s *Server) truncateTo(ino *inode, size int64) bool {
	if size < 0 {
		size = 0
	}
	bs := int64(s.cfg.DRAM.BlockSize())
	keep := int((size + bs - 1) / bs)
	changed := false
	if keep < len(ino.blocks) {
		removed := ino.blocks[keep:]
		ino.blocks = ino.blocks[:keep:keep]
		if ino.fdRefs > 0 {
			ino.deferred = append(ino.deferred, removed...)
		} else {
			s.cfg.Partition.Free(removed)
		}
		changed = true
	}
	if ino.size != size {
		ino.size = size
		changed = true
	}
	return changed
}

func (s *Server) handleTruncate(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	if ino.ftype != fsapi.TypeRegular {
		return s.errResp(fsapi.EINVAL)
	}
	// truncateTo both trims capacity beyond the new size (deferring reuse
	// while descriptors remain open) and sets the logical size, growing or
	// shrinking as needed. A growing truncate must also allocate the blocks
	// covering the new size — Alloc hands them over zeroed, which is exactly
	// POSIX's zero-filled gap — or the tail would be unreadable. The bump is
	// unconditional — clients count an explicit TRUNCATE as exactly one
	// version step when tracking their consistency window, even when the
	// size happens to be unchanged.
	// Capacity first: if the partition cannot back the new size, the
	// inode must be left untouched (size included), or a failed grow
	// would report ENOSPC yet stat at the grown size with an unreadable,
	// unlogged tail. For a shrink this is a no-op.
	if errno := s.ensureCapacity(ino, req.Size); errno != fsapi.OK {
		return s.errResp(errno)
	}
	old := ino.size
	s.truncateTo(ino, req.Size)
	if req.Size < old {
		// Zero the tail of the surviving partial block. Freed whole blocks
		// come back zeroed from Alloc, but without this a later growing
		// truncate would expose the shrunk-away bytes instead of POSIX's
		// zeros. Staged as a write record so replayed recoveries (including
		// memory-loss recoveries from an older checkpoint) preserve the
		// bytes-beyond-EOF-are-zero invariant.
		bs := int64(s.cfg.DRAM.BlockSize())
		if tail := req.Size % bs; tail != 0 {
			zeros := make([]byte, bs-tail)
			s.writeData(ino, req.Size, zeros)
			s.stageWrite(ino, req.Size, zeros)
		}
	}
	s.bumpVersion(ino)
	s.stageBlocks(ino)
	return s.resp(proto.Response{Size: ino.size, Extents: extentList(ino), Version: ino.version})
}

func (s *Server) handleStat(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	return s.resp(proto.Response{Stat: s.statOf(ino), Ftype: ino.ftype, Size: ino.size, Dist: ino.distributed})
}

// handleReadAt serves file reads through the server. It is used when direct
// buffer-cache access is disabled (the Figure 12 ablation); the server reads
// the shared DRAM on the client's behalf.
func (s *Server) handleReadAt(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	n := int64(req.Count)
	if req.Offset >= ino.size {
		return s.resp(proto.Response{N: 0})
	}
	if req.Offset+n > ino.size {
		n = ino.size - req.Offset
	}
	data := make([]byte, n)
	s.readData(ino, req.Offset, data)
	return s.resp(proto.Response{Data: data, N: n})
}

// handleWriteAt serves file writes through the server (direct access
// disabled). It extends the file as needed and updates the size eagerly.
func (s *Server) handleWriteAt(req *proto.Request) *proto.Response {
	ino, errno := s.getInode(req.Target)
	if errno != fsapi.OK {
		return s.errResp(errno)
	}
	end := req.Offset + int64(len(req.Data))
	before := len(ino.blocks)
	if errno := s.ensureCapacity(ino, end); errno != fsapi.OK {
		return s.errResp(errno)
	}
	s.writeData(ino, req.Offset, req.Data)
	if end > ino.size {
		ino.size = end
	}
	if len(ino.blocks) != before {
		s.stageBlocks(ino)
	}
	s.stageWrite(ino, req.Offset, req.Data)
	s.bumpVersion(ino)
	return s.resp(proto.Response{N: int64(len(req.Data)), Size: ino.size, Version: ino.version})
}

// readData copies file contents [off, off+len(dst)) from the shared DRAM.
// Servers access DRAM directly (they own the authoritative copy and their
// private-cache coherence is managed trivially by never caching file data).
func (s *Server) readData(ino *inode, off int64, dst []byte) {
	bs := int64(s.cfg.DRAM.BlockSize())
	read := 0
	for read < len(dst) {
		pos := off + int64(read)
		bi := int(pos / bs)
		bo := int(pos % bs)
		if bi >= len(ino.blocks) {
			break
		}
		n := s.cfg.DRAM.ReadDirect(ino.blocks[bi], bo, dst[read:])
		if n == 0 {
			break
		}
		read += n
	}
}

// writeData copies src into the file at off; capacity must already exist.
func (s *Server) writeData(ino *inode, off int64, src []byte) {
	bs := int64(s.cfg.DRAM.BlockSize())
	written := 0
	for written < len(src) {
		pos := off + int64(written)
		bi := int(pos / bs)
		bo := int(pos % bs)
		if bi >= len(ino.blocks) {
			break
		}
		n := s.cfg.DRAM.WriteDirect(ino.blocks[bi], bo, src[written:])
		if n == 0 {
			break
		}
		written += n
	}
}
