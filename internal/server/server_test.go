package server

import (
	"testing"

	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/ncc"
	"repro/internal/proto"
	"repro/internal/sim"
)

// harness drives one file server directly at the protocol level, playing the
// role of a client library.
type harness struct {
	t       *testing.T
	srv     *Server
	net     *msg.Network
	ep      *msg.Endpoint
	machine *sim.Machine
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	machine := sim.NewMachine(sim.TopologyForCores(2), sim.DefaultCostModel())
	network := msg.NewNetwork(msg.WrapMachine(machine))
	dram := ncc.NewDRAM(64, 512)
	parts := ncc.PartitionDRAM(dram, 1)
	registry := NewClientRegistry()
	srv := New(Config{
		ID:         0,
		Core:       0,
		NumServers: 1,
		Machine:    machine,
		Network:    network,
		DRAM:       dram,
		Partition:  parts[0],
		Registry:   registry,
		CoLocated:  true,
	})
	srv.Start()
	t.Cleanup(srv.Stop)
	ep := network.NewEndpoint(1)
	registry.Register(7, ep.ID)
	return &harness{t: t, srv: srv, net: network, ep: ep, machine: machine}
}

// call sends a request and waits for the response.
func (h *harness) call(req *proto.Request) *proto.Response {
	h.t.Helper()
	req.ClientID = 7
	env, err := h.net.RPC(h.ep, h.srv.EndpointID(), proto.KindRequest, req.Marshal(), 0)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := proto.UnmarshalResponse(env.Payload)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp
}

// callOK sends a request and fails the test on a protocol error.
func (h *harness) callOK(req *proto.Request) *proto.Response {
	h.t.Helper()
	resp := h.call(req)
	if resp.Err != fsapi.OK {
		h.t.Fatalf("%s failed: %v", req.Op, resp.Err)
	}
	return resp
}

func TestServerRootInodeExists(t *testing.T) {
	h := newHarness(t)
	resp := h.callOK(&proto.Request{Op: proto.OpStat, Target: proto.RootInode})
	if resp.Stat.Ftype != fsapi.TypeDir {
		t.Fatalf("root is %v, want directory", resp.Stat.Ftype)
	}
	// Only server 0 stores the root; a stale reference elsewhere fails.
	bad := h.call(&proto.Request{Op: proto.OpStat, Target: proto.InodeID{Server: 3, Local: 1}})
	if bad.Err != fsapi.ESTALE {
		t.Fatalf("foreign inode: %v", bad.Err)
	}
}

func TestServerCreateLookupUnlink(t *testing.T) {
	h := newHarness(t)
	created := h.callOK(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "f", Mode: fsapi.Mode644,
		Ftype: fsapi.TypeRegular, WantOpen: true,
	})
	if created.Ino.IsNil() {
		t.Fatal("create returned nil inode")
	}
	look := h.callOK(&proto.Request{Op: proto.OpLookup, Dir: proto.RootInode, Name: "f"})
	if look.Ino != created.Ino {
		t.Fatal("lookup returned a different inode")
	}
	// A second exclusive create reports EEXIST with the existing location.
	dup := h.call(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "f", Exclusive: true, Ftype: fsapi.TypeRegular,
	})
	if dup.Err != fsapi.EEXIST || dup.Ino != created.Ino {
		t.Fatalf("duplicate create: err=%v ino=%v", dup.Err, dup.Ino)
	}
	// Remove the entry, then the inode.
	rm := h.callOK(&proto.Request{Op: proto.OpRmMap, Dir: proto.RootInode, Name: "f", Ftype: fsapi.TypeRegular})
	if rm.Ino != created.Ino {
		t.Fatal("rm_map returned wrong inode")
	}
	h.callOK(&proto.Request{Op: proto.OpUnlinkInode, Target: created.Ino})
	if resp := h.call(&proto.Request{Op: proto.OpLookup, Dir: proto.RootInode, Name: "f"}); resp.Err != fsapi.ENOENT {
		t.Fatalf("lookup after unlink: %v", resp.Err)
	}
}

func TestServerUnlinkedInodeSurvivesOpenDescriptors(t *testing.T) {
	h := newHarness(t)
	created := h.callOK(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "victim",
		Mode: fsapi.Mode644, Ftype: fsapi.TypeRegular, WantOpen: true,
	})
	// Write some data through the server path so blocks get allocated.
	h.callOK(&proto.Request{Op: proto.OpWriteAt, Target: created.Ino, Offset: 0, Data: []byte("keep me")})
	// Unlink while the descriptor (WantOpen) is still registered.
	h.callOK(&proto.Request{Op: proto.OpRmMap, Dir: proto.RootInode, Name: "victim", Ftype: fsapi.TypeRegular})
	h.callOK(&proto.Request{Op: proto.OpUnlinkInode, Target: created.Ino})
	read := h.callOK(&proto.Request{Op: proto.OpReadAt, Target: created.Ino, Count: 16})
	if string(read.Data) != "keep me" {
		t.Fatalf("unlinked file data lost: %q", read.Data)
	}
	// After the last close the inode is reaped.
	h.callOK(&proto.Request{Op: proto.OpCloseInode, Target: created.Ino})
	if resp := h.call(&proto.Request{Op: proto.OpStat, Target: created.Ino}); resp.Err != fsapi.ENOENT {
		t.Fatalf("inode should be gone after last close, got %v", resp.Err)
	}
}

func TestServerTruncateDefersBlockReuse(t *testing.T) {
	h := newHarness(t)
	free := h.srv.cfg.Partition.FreeCount()
	created := h.callOK(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "big",
		Mode: fsapi.Mode644, Ftype: fsapi.TypeRegular, WantOpen: true,
	})
	h.callOK(&proto.Request{Op: proto.OpExtend, Target: created.Ino, Size: 2048})
	if got := h.srv.cfg.Partition.FreeCount(); got != free-4 {
		t.Fatalf("expected 4 blocks allocated, free went %d -> %d", free, got)
	}
	// Truncate while a descriptor is open: blocks must NOT return to the
	// free list yet (§3.2).
	h.callOK(&proto.Request{Op: proto.OpTruncate, Target: created.Ino, Size: 0})
	if got := h.srv.cfg.Partition.FreeCount(); got != free-4 {
		t.Fatalf("blocks reused while file still open: free=%d", got)
	}
	// After the last descriptor closes they are reclaimed.
	h.callOK(&proto.Request{Op: proto.OpCloseInode, Target: created.Ino})
	if got := h.srv.cfg.Partition.FreeCount(); got != free {
		t.Fatalf("blocks not reclaimed after close: free=%d want %d", got, free)
	}
}

func TestServerRmdirPrepareCommitAbort(t *testing.T) {
	h := newHarness(t)
	dir := h.callOK(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "d",
		Mode: fsapi.Mode755, Ftype: fsapi.TypeDir,
	})
	// Put an entry in the directory: prepare must refuse.
	h.callOK(&proto.Request{Op: proto.OpAddMap, Dir: dir.Ino, Name: "child", Target: proto.InodeID{Server: 0, Local: 99}, Ftype: fsapi.TypeRegular})
	h.callOK(&proto.Request{Op: proto.OpRmdirLock, Target: dir.Ino})
	if resp := h.call(&proto.Request{Op: proto.OpRmdirPrepare, Dir: dir.Ino, Target: dir.Ino}); resp.Err != fsapi.ENOTEMPTY {
		t.Fatalf("prepare on non-empty shard: %v", resp.Err)
	}
	h.callOK(&proto.Request{Op: proto.OpRmdirAbort, Dir: dir.Ino, Target: dir.Ino})
	h.callOK(&proto.Request{Op: proto.OpRmdirUnlock, Target: dir.Ino})

	// Empty the directory and run the full protocol.
	h.callOK(&proto.Request{Op: proto.OpRmMap, Dir: dir.Ino, Name: "child"})
	h.callOK(&proto.Request{Op: proto.OpRmdirLock, Target: dir.Ino})
	h.callOK(&proto.Request{Op: proto.OpRmdirPrepare, Dir: dir.Ino, Target: dir.Ino})
	h.callOK(&proto.Request{Op: proto.OpRmdirCommit, Dir: dir.Ino, Target: dir.Ino})
	h.callOK(&proto.Request{Op: proto.OpRmMap, Dir: proto.RootInode, Name: "d", Ftype: fsapi.TypeDir})
	h.callOK(&proto.Request{Op: proto.OpRmdirFinish, Target: dir.Ino})

	// The directory is gone: new entries cannot be created in it.
	if resp := h.call(&proto.Request{Op: proto.OpAddMap, Dir: dir.Ino, Name: "late", Target: proto.NilInode, Ftype: fsapi.TypeRegular}); resp.Err != fsapi.ENOENT {
		t.Fatalf("create in removed dir: %v", resp.Err)
	}
}

func TestServerRmdirMarkParksCreates(t *testing.T) {
	h := newHarness(t)
	dir := h.callOK(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "racing",
		Mode: fsapi.Mode755, Ftype: fsapi.TypeDir,
	})
	h.callOK(&proto.Request{Op: proto.OpRmdirLock, Target: dir.Ino})
	h.callOK(&proto.Request{Op: proto.OpRmdirPrepare, Dir: dir.Ino, Target: dir.Ino})

	// A create that races with the marked directory is parked: issue it
	// asynchronously, then abort the rmdir and observe the create succeed.
	req := &proto.Request{Op: proto.OpCreateCoalesced, Dir: dir.Ino, Name: "racer", Ftype: fsapi.TypeRegular, ClientID: 7}
	reply := msg.NewQueue()
	if _, err := h.net.Send(h.ep, h.srv.EndpointID(), proto.KindRequest, req.Marshal(), 0, reply); err != nil {
		t.Fatal(err)
	}
	if _, ok := reply.TryPop(); ok {
		t.Fatal("create should have been parked while the directory is marked")
	}
	h.callOK(&proto.Request{Op: proto.OpRmdirAbort, Dir: dir.Ino, Target: dir.Ino})
	h.callOK(&proto.Request{Op: proto.OpRmdirUnlock, Target: dir.Ino})
	env, ok := reply.PopWait()
	if !ok {
		t.Fatal("parked create never answered")
	}
	resp, err := proto.UnmarshalResponse(env.Payload)
	if err != nil || resp.Err != fsapi.OK {
		t.Fatalf("parked create failed: %v %v", err, resp.Err)
	}
}

func TestServerSharedFdOffsetAndRefcounts(t *testing.T) {
	h := newHarness(t)
	created := h.callOK(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "shared",
		Mode: fsapi.Mode644, Ftype: fsapi.TypeRegular, WantOpen: true,
	})
	h.callOK(&proto.Request{Op: proto.OpWriteAt, Target: created.Ino, Data: []byte("0123456789")})

	share := h.callOK(&proto.Request{Op: proto.OpFdShare, Target: created.Ino, Offset: 0})
	if share.Refs != 1 {
		t.Fatalf("share refs = %d, want 1", share.Refs)
	}
	h.callOK(&proto.Request{Op: proto.OpFdIncRef, Fd: share.Fd, Target: created.Ino})

	r1 := h.callOK(&proto.Request{Op: proto.OpFdRead, Fd: share.Fd, Target: created.Ino, Count: 4})
	r2 := h.callOK(&proto.Request{Op: proto.OpFdRead, Fd: share.Fd, Target: created.Ino, Count: 4})
	if string(r1.Data) != "0123" || string(r2.Data) != "4567" {
		t.Fatalf("shared reads %q %q", r1.Data, r2.Data)
	}
	// One holder closes; the remaining holder sees refs drop to 1 and can
	// pull the offset back.
	dec := h.callOK(&proto.Request{Op: proto.OpFdDecRef, Fd: share.Fd, Target: created.Ino})
	if dec.Refs != 1 {
		t.Fatalf("refs after decref = %d", dec.Refs)
	}
	un := h.callOK(&proto.Request{Op: proto.OpFdUnshare, Fd: share.Fd, Target: created.Ino})
	if un.Offset != 8 {
		t.Fatalf("unshare offset = %d, want 8", un.Offset)
	}
	if resp := h.call(&proto.Request{Op: proto.OpFdRead, Fd: share.Fd, Target: created.Ino, Count: 1}); resp.Err != fsapi.EBADF {
		t.Fatalf("read after unshare: %v", resp.Err)
	}
}

func TestServerPipeBlockingAndEOF(t *testing.T) {
	h := newHarness(t)
	pipe := h.callOK(&proto.Request{Op: proto.OpPipeCreate})

	// A read on an empty pipe parks until data arrives.
	readReq := &proto.Request{Op: proto.OpPipeRead, Target: pipe.Ino, Count: 16, ClientID: 7}
	reply := msg.NewQueue()
	if _, err := h.net.Send(h.ep, h.srv.EndpointID(), proto.KindRequest, readReq.Marshal(), 0, reply); err != nil {
		t.Fatal(err)
	}
	h.callOK(&proto.Request{Op: proto.OpPipeWrite, Target: pipe.Ino, Data: []byte("wake")})
	env, ok := reply.PopWait()
	if !ok {
		t.Fatal("parked pipe read never answered")
	}
	resp, _ := proto.UnmarshalResponse(env.Payload)
	if string(resp.Data) != "wake" {
		t.Fatalf("pipe read %q", resp.Data)
	}

	// Closing the last writer delivers EOF to readers.
	h.callOK(&proto.Request{Op: proto.OpPipeCloseWrite, Target: pipe.Ino})
	eof := h.callOK(&proto.Request{Op: proto.OpPipeRead, Target: pipe.Ino, Count: 4})
	if eof.N != 0 {
		t.Fatalf("expected EOF, got %d bytes", eof.N)
	}
	// Writing with no readers yields EPIPE.
	h.callOK(&proto.Request{Op: proto.OpPipeCloseRead, Target: pipe.Ino})
	pipe2 := h.callOK(&proto.Request{Op: proto.OpPipeCreate})
	h.callOK(&proto.Request{Op: proto.OpPipeCloseRead, Target: pipe2.Ino})
	if resp := h.call(&proto.Request{Op: proto.OpPipeWrite, Target: pipe2.Ino, Data: []byte("x")}); resp.Err != fsapi.EPIPE {
		t.Fatalf("write to readerless pipe: %v", resp.Err)
	}
}

func TestServerInvalidationCallbacks(t *testing.T) {
	h := newHarness(t)
	// Client 7 looks up an entry (gets tracked), then another client (id 8,
	// registered on a second endpoint) removes it; client 7 must receive an
	// invalidation callback.
	other := h.net.NewEndpoint(1)
	h.srv.cfg.Registry.Register(8, other.ID)

	h.callOK(&proto.Request{Op: proto.OpAddMap, Dir: proto.RootInode, Name: "watched", Target: proto.InodeID{Server: 0, Local: 50}, Ftype: fsapi.TypeRegular})
	h.callOK(&proto.Request{Op: proto.OpLookup, Dir: proto.RootInode, Name: "watched"})

	// The removal is issued by client 8.
	req := &proto.Request{Op: proto.OpRmMap, Dir: proto.RootInode, Name: "watched", ClientID: 8}
	if _, err := h.net.RPC(other, h.srv.EndpointID(), proto.KindRequest, req.Marshal(), 0); err != nil {
		t.Fatal(err)
	}
	env, ok := h.ep.Callbacks.TryPop()
	if !ok {
		t.Fatal("no invalidation callback delivered to the caching client")
	}
	iv, err := proto.UnmarshalInvalidation(env.Payload)
	if err != nil || iv.Name != "watched" {
		t.Fatalf("bad invalidation: %v %v", iv, err)
	}
	if h.srv.Stats().Invalidations == 0 {
		t.Fatal("server did not count the invalidation")
	}
}

func TestServerRejectsMalformedAndUnknown(t *testing.T) {
	h := newHarness(t)
	// Unknown op.
	if resp := h.call(&proto.Request{Op: proto.Op(999)}); resp.Err != fsapi.ENOSYS {
		t.Fatalf("unknown op: %v", resp.Err)
	}
	// Malformed payload.
	env, err := h.net.RPC(h.ep, h.srv.EndpointID(), proto.KindRequest, []byte{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := proto.UnmarshalResponse(env.Payload)
	if resp.Err != fsapi.EINVAL {
		t.Fatalf("malformed request: %v", resp.Err)
	}
	// Invalid names.
	if resp := h.call(&proto.Request{Op: proto.OpAddMap, Dir: proto.RootInode, Name: "a/b", Target: proto.NilInode}); resp.Err != fsapi.EINVAL {
		t.Fatalf("slash in name: %v", resp.Err)
	}
}

func TestServerStatsTracksOps(t *testing.T) {
	h := newHarness(t)
	h.callOK(&proto.Request{Op: proto.OpStat, Target: proto.RootInode})
	h.callOK(&proto.Request{Op: proto.OpStat, Target: proto.RootInode})
	st := h.srv.Stats()
	if st.Ops[proto.OpStat] != 2 {
		t.Fatalf("stat count = %d", st.Ops[proto.OpStat])
	}
	if h.srv.Clock() == 0 {
		t.Fatal("server clock did not advance")
	}
	if h.srv.ID() != 0 || h.srv.Core() != 0 {
		t.Fatal("identity accessors wrong")
	}
}

// callBatch sends sub-requests as one OpBatch envelope and returns the
// decoded per-sub-op responses.
func (h *harness) callBatch(stopOnErr bool, reqs ...*proto.Request) []*proto.Response {
	h.t.Helper()
	for _, r := range reqs {
		r.ClientID = 7
	}
	env := h.callOK(proto.BatchRequest(reqs, stopOnErr))
	resps, err := proto.UnmarshalBatchResponses(env.Data)
	if err != nil {
		h.t.Fatal(err)
	}
	if len(resps) != len(reqs) {
		h.t.Fatalf("batch returned %d responses for %d sub-ops", len(resps), len(reqs))
	}
	return resps
}

func TestServerBatchCreateStatUnlink(t *testing.T) {
	h := newHarness(t)
	created := h.callOK(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "b", Mode: fsapi.Mode644,
		Ftype: fsapi.TypeRegular,
	})

	// Independent batch: stat + extend + set-size in one message.
	resps := h.callBatch(false,
		&proto.Request{Op: proto.OpStat, Target: created.Ino},
		&proto.Request{Op: proto.OpExtend, Target: created.Ino, Size: 1024},
		&proto.Request{Op: proto.OpSetSize, Target: created.Ino, Size: 600},
	)
	for i, r := range resps {
		if r.Err != fsapi.OK {
			t.Fatalf("sub-op %d failed: %v", i, r.Err)
		}
	}
	if proto.BlockCount(resps[1].Extents) == 0 {
		t.Fatal("extend inside a batch allocated no blocks")
	}
	after := h.callOK(&proto.Request{Op: proto.OpStat, Target: created.Ino})
	if after.Stat.Size != 600 {
		t.Fatalf("batched set-size not applied: size=%d", after.Stat.Size)
	}

	// Dependent batch: RM_MAP then UNLINK_INODE with stop-on-error.
	un := h.callBatch(true,
		&proto.Request{Op: proto.OpRmMap, Dir: proto.RootInode, Name: "b", Ftype: fsapi.TypeRegular},
		&proto.Request{Op: proto.OpUnlinkInode, Target: created.Ino},
	)
	if un[0].Err != fsapi.OK || un[1].Err != fsapi.OK {
		t.Fatalf("unlink batch failed: %v %v", un[0].Err, un[1].Err)
	}
	if gone := h.call(&proto.Request{Op: proto.OpStat, Target: created.Ino}); gone.Err != fsapi.ENOENT {
		t.Fatalf("inode survived batched unlink: %v", gone.Err)
	}

	st := h.srv.Stats()
	if st.BatchedOps != 5 {
		t.Fatalf("BatchedOps = %d, want 5", st.BatchedOps)
	}
	if st.Ops[proto.OpBatch] != 2 {
		t.Fatalf("OpBatch count = %d, want 2", st.Ops[proto.OpBatch])
	}
}

func TestServerBatchStopOnError(t *testing.T) {
	h := newHarness(t)
	// RM_MAP of a missing entry fails; the dependent unlink must be skipped
	// with ECANCELED, not executed.
	created := h.callOK(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "keep", Mode: fsapi.Mode644,
		Ftype: fsapi.TypeRegular,
	})
	resps := h.callBatch(true,
		&proto.Request{Op: proto.OpRmMap, Dir: proto.RootInode, Name: "missing", Ftype: fsapi.TypeRegular},
		&proto.Request{Op: proto.OpUnlinkInode, Target: created.Ino},
	)
	if resps[0].Err != fsapi.ENOENT {
		t.Fatalf("head sub-op: %v, want ENOENT", resps[0].Err)
	}
	if resps[1].Err != fsapi.ECANCELED {
		t.Fatalf("tail sub-op: %v, want ECANCELED", resps[1].Err)
	}
	if st := h.callOK(&proto.Request{Op: proto.OpStat, Target: created.Ino}); st.Stat.Nlink != 1 {
		t.Fatalf("skipped unlink still ran: nlink=%d", st.Stat.Nlink)
	}

	// Without stop-on-error the independent sub-ops all run.
	resps = h.callBatch(false,
		&proto.Request{Op: proto.OpRmMap, Dir: proto.RootInode, Name: "missing", Ftype: fsapi.TypeRegular},
		&proto.Request{Op: proto.OpStat, Target: created.Ino},
	)
	if resps[1].Err != fsapi.OK {
		t.Fatalf("independent sub-op after failure: %v", resps[1].Err)
	}
}

func TestServerBatchRejectsUnbatchableOps(t *testing.T) {
	h := newHarness(t)
	resps := h.callBatch(false,
		&proto.Request{Op: proto.OpPing},
		&proto.Request{Op: proto.OpRmdirLock, Target: proto.RootInode},
		&proto.Request{Op: proto.OpPipeRead, Target: proto.RootInode},
	)
	if resps[0].Err != fsapi.OK {
		t.Fatalf("ping in batch: %v", resps[0].Err)
	}
	if resps[1].Err != fsapi.ENOSYS || resps[2].Err != fsapi.ENOSYS {
		t.Fatalf("parking ops must be rejected: %v %v", resps[1].Err, resps[2].Err)
	}
	// A malformed batch payload is a protocol error on the envelope.
	bad := h.call(&proto.Request{Op: proto.OpBatch, Data: []byte{1, 2, 3}})
	if bad.Err != fsapi.EINVAL {
		t.Fatalf("malformed batch: %v", bad.Err)
	}
}

func TestServerBatchPaysSingleArrivalOverhead(t *testing.T) {
	// The same three ops cost less as one batch than as three messages:
	// the batch pays MsgRecv (and co-location overhead) once.
	one := newHarness(t)
	ino := one.callOK(&proto.Request{Op: proto.OpMknod, Ftype: fsapi.TypeRegular, Mode: fsapi.Mode644})
	for i := 0; i < 3; i++ {
		one.callOK(&proto.Request{Op: proto.OpStat, Target: ino.Ino})
	}
	separate := one.srv.Clock()

	two := newHarness(t)
	ino2 := two.callOK(&proto.Request{Op: proto.OpMknod, Ftype: fsapi.TypeRegular, Mode: fsapi.Mode644})
	two.callBatch(false,
		&proto.Request{Op: proto.OpStat, Target: ino2.Ino},
		&proto.Request{Op: proto.OpStat, Target: ino2.Ino},
		&proto.Request{Op: proto.OpStat, Target: ino2.Ino},
	)
	batched := two.srv.Clock()
	if batched >= separate {
		t.Fatalf("batched clock %d should be below separate-message clock %d", batched, separate)
	}
}

func TestServerBatchParksOnMarkedShardAndResumes(t *testing.T) {
	h := newHarness(t)
	dir := h.callOK(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "d", Mode: fsapi.Mode755,
		Ftype: fsapi.TypeDir,
	})
	// Phase 1 of rmdir marks the (empty) shard; a batch touching the marked
	// directory must park whole — before any sub-op ran — and resume after
	// the abort.
	h.callOK(&proto.Request{Op: proto.OpRmdirPrepare, Dir: dir.Ino, Target: dir.Ino})

	env := proto.BatchRequest([]*proto.Request{
		{Op: proto.OpLookup, Dir: dir.Ino, Name: "nope", ClientID: 7},
		{Op: proto.OpStat, Target: dir.Ino, ClientID: 7},
	}, false)
	env.ClientID = 7
	fut, err := h.net.SendAsync(h.ep, h.srv.EndpointID(), proto.KindRequest, env.Marshal(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fut.TryAwait(); ok {
		t.Fatal("batch answered while the shard was marked")
	}
	h.callOK(&proto.Request{Op: proto.OpRmdirAbort, Dir: dir.Ino, Target: dir.Ino})
	renv, err := fut.Await()
	if err != nil {
		t.Fatal(err)
	}
	outer, err := proto.UnmarshalResponse(renv.Payload)
	if err != nil {
		t.Fatal(err)
	}
	resps, err := proto.UnmarshalBatchResponses(outer.Data)
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Err != fsapi.ENOENT {
		t.Fatalf("lookup after unpark: %v, want ENOENT", resps[0].Err)
	}
	if resps[1].Err != fsapi.OK {
		t.Fatalf("stat after unpark: %v", resps[1].Err)
	}
}

func TestRmMapCompareAndRemoveGuard(t *testing.T) {
	h := newHarness(t)
	created := h.callOK(&proto.Request{
		Op: proto.OpCreateCoalesced, Dir: proto.RootInode, Name: "g", Mode: fsapi.Mode644,
		Ftype: fsapi.TypeRegular,
	})
	wrong := proto.InodeID{Server: 0, Local: created.Ino.Local + 100}
	// Guard mismatch fails with ESTALE and cancels the dependent unlink.
	resps := h.callBatch(true,
		&proto.Request{Op: proto.OpRmMap, Dir: proto.RootInode, Name: "g", Target: wrong, Ftype: fsapi.TypeRegular},
		&proto.Request{Op: proto.OpUnlinkInode, Target: created.Ino},
	)
	if resps[0].Err != fsapi.ESTALE || resps[1].Err != fsapi.ECANCELED {
		t.Fatalf("guard mismatch: %v / %v, want ESTALE / ECANCELED", resps[0].Err, resps[1].Err)
	}
	if look := h.callOK(&proto.Request{Op: proto.OpLookup, Dir: proto.RootInode, Name: "g"}); look.Ino != created.Ino {
		t.Fatal("guarded RM_MAP must leave the entry in place")
	}
	// Matching guard removes the entry.
	ok := h.callOK(&proto.Request{Op: proto.OpRmMap, Dir: proto.RootInode, Name: "g", Target: created.Ino, Ftype: fsapi.TypeRegular})
	if ok.Ino != created.Ino {
		t.Fatal("guarded RM_MAP returned wrong inode")
	}
}
