package server

import (
	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/proto"
)

// Batch dispatch (DESIGN.md §7).
//
// A batch is served as one unit of the server's single-threaded request
// loop: its sub-operations run back-to-back with no other request
// interleaved, so any invariant that holds between two requests also holds
// between two sub-operations. Each sub-operation stages its own write-ahead
// log records exactly as it would stand-alone; they all commit with the
// batch's single reply, so durability replay is indistinguishable from the
// unbatched execution order.
//
// Sub-operations must be ones that cannot park mid-batch: rmdir-protocol and
// pipe operations are rejected, and directory operations — which park only
// when their shard carries an rmdir mark — are pre-screened so that a batch
// touching a marked shard parks as a whole before any sub-operation has run.

// batchable reports whether an operation may appear inside a batch. The ops
// excluded either park on state other than rmdir marks (pipes), drive the
// rmdir protocol itself (which creates marks mid-request), or are
// control-plane operations with no business being coalesced.
func batchable(op proto.Op) bool {
	switch op {
	case proto.OpLookup, proto.OpAddMap, proto.OpRmMap, proto.OpReadDirShard,
		proto.OpCreateCoalesced,
		proto.OpMknod, proto.OpLinkInode, proto.OpUnlinkInode,
		proto.OpOpenInode, proto.OpCloseInode,
		proto.OpGetBlocks, proto.OpExtend, proto.OpSetSize, proto.OpTruncate,
		proto.OpStat, proto.OpReadAt, proto.OpWriteAt,
		proto.OpFdShare, proto.OpFdIncRef, proto.OpFdDecRef, proto.OpFdUnshare,
		proto.OpFdRead, proto.OpFdWrite, proto.OpFdSeek, proto.OpFdGetInfo,
		proto.OpPing:
		return true
	default:
		return false
	}
}

// dirOp reports whether the op addresses a directory shard (and can
// therefore park on an rmdir mark).
func dirOp(op proto.Op) bool {
	switch op {
	case proto.OpLookup, proto.OpAddMap, proto.OpRmMap, proto.OpReadDirShard,
		proto.OpCreateCoalesced:
		return true
	default:
		return false
	}
}

// dispatchBatch serves the decoded sub-requests of one batch envelope. The
// bool result is true when the whole batch was parked (a sub-request targets
// a shard marked by an in-flight rmdir); the batch is then re-dispatched
// from scratch once the mark resolves — safe because parking happens before
// any sub-operation has executed.
func (s *Server) dispatchBatch(subs []*proto.Request, stopOnErr bool, batchReq *proto.Request, raw msg.Envelope) (*proto.Response, bool) {
	// Pre-screen for parking *before* executing anything: a re-dispatch
	// must be able to start over without replaying side effects.
	for _, sub := range subs {
		if !batchable(sub.Op) {
			continue // answered per-sub below, never dispatched
		}
		if dirOp(sub.Op) {
			if sh, ok := s.dirs.Get(sub.Dir); ok && sh.marked {
				s.park(sh, batchReq, raw)
				return nil, true
			}
		}
		// A frozen server parks whole batches that carry a sub-operation
		// the epoch gate would park (a mutation at the current epoch, or
		// anything already stamped with the pending epoch): parking
		// mid-batch is impossible, and the batch must re-dispatch from
		// scratch after the migration commits.
		if s.frozen && sub.Epoch != 0 && entryOp(sub.Op) {
			cur := s.epoch.Load()
			if !(sub.Epoch == cur && entryReadOnly(sub.Op)) &&
				(sub.Epoch == cur || sub.Epoch == s.pendingEpoch) {
				s.migParked = append(s.migParked, parkedReq{req: batchReq, env: raw})
				s.cfg.Network.GateIdle(raw.Src)
				return nil, true
			}
		}
	}

	resps := make([]*proto.Response, len(subs))
	failed := false
	for i, sub := range subs {
		switch {
		case !batchable(sub.Op):
			resps[i] = proto.ErrResponse(fsapi.ENOSYS)
		case failed && stopOnErr:
			resps[i] = proto.ErrResponse(fsapi.ECANCELED)
		default:
			resp, parked := s.dispatch(sub, raw)
			if parked {
				// Unreachable given the pre-screen; fail the sub-op rather
				// than leave the client waiting on a reply that cannot be
				// routed through the batch envelope.
				resp = proto.ErrResponse(fsapi.EIO)
			}
			if resp == nil {
				resp = proto.ErrResponse(fsapi.EIO)
			}
			if resp == &s.scratch {
				// Hot-path handlers return the shared scratch response;
				// batches retain several responses at once, so snapshot it.
				c := *resp
				resp = &c
			}
			resps[i] = resp
		}
		if resps[i].Err != fsapi.OK {
			failed = true
		}
	}

	s.statsMu.Lock()
	s.stats.BatchedOps += uint64(len(subs))
	for _, sub := range subs {
		s.stats.Ops[sub.Op]++
	}
	s.statsMu.Unlock()

	return s.resp(proto.Response{Data: proto.MarshalBatchResponses(resps)}), false
}
