package server

import (
	"fmt"

	"repro/internal/msg"
	"repro/internal/ncc"
	"repro/internal/proto"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Replication plane (DESIGN.md §12).
//
// A server with replication enabled runs a second endpoint and goroutine —
// the replication plane — alongside its request loop. The plane ingests
// REPL_APPEND batches into the Follower replicas this server keeps for its
// primaries, answers REPL_SEAL from the control plane at failover, serves
// heartbeat pings, and (on the primary side) receives async REPL_ACKs. It
// never blocks on another server, which is what makes sync mode's blocking
// ship from the request loop deadlock-free: the request loop of server A
// waits only on the replication plane of server B, and replication planes
// wait on nobody.

// ReplOptions configures a server's role in replication (both the shipping
// primary and the ingesting follower side). The zero value disables it.
type ReplOptions struct {
	// Mode selects off / sync / async shipping.
	Mode repl.Mode
	// Window bounds async mode's unacked records before a ship escalates
	// to a blocking flush.
	Window int
}

// ReplTarget names the follower a primary ships to. Down lets the shipper
// skip (and mark for resync) a follower that is currently crashed instead
// of blocking a sync ship against a closed inbox.
type ReplTarget struct {
	ID   int
	EP   msg.EndpointID
	Down func() bool
}

// SetReplTarget installs (or changes) the server's shipping target. A
// changed follower starts from nothing, so the next ship carries a rebase
// snapshot.
func (s *Server) SetReplTarget(t *ReplTarget) {
	old := s.replTarget.Swap(t)
	if t != nil && (old == nil || old.ID != t.ID) {
		s.replNeedSync.Store(true)
	}
}

// ReplEndpointID returns the replication-plane endpoint id, if the server
// has one.
func (s *Server) ReplEndpointID() (msg.EndpointID, bool) {
	if s.replEP == nil {
		return 0, false
	}
	return s.replEP.ID, true
}

// MarkReplResync forces the next ship to carry a rebase snapshot (used
// after a promotion invalidated the old replica relationship).
func (s *Server) MarkReplResync() {
	s.replNeedSync.Store(true)
	s.replDurable.Store(0)
}

// runRepl is the replication plane's loop. Like run, it exits on crash and
// pushes the undelivered envelope back so it is served after recovery.
func (s *Server) runRepl() {
	defer close(s.replDone)
	for {
		env, ok := s.replEP.Inbox.PopWaitEarliest()
		if !ok {
			return
		}
		if s.crashed.Load() {
			s.replEP.Inbox.Push(env)
			return
		}
		s.handleRepl(env)
	}
}

// handleRepl serves one replication-plane message. All replica state is
// confined to this goroutine.
func (s *Server) handleRepl(env msg.Envelope) {
	req, err := proto.UnmarshalRequest(env.Payload)
	if err != nil {
		return
	}
	cost := s.cfg.Machine.Cost
	now := env.ArriveAt
	if c := s.replClock.Now(); c > now {
		now = c
	}
	switch req.Op {
	case proto.OpPing:
		// Heartbeat: prove liveness and report this server's shipping
		// horizons so the same beat carries follower-lag data.
		end := s.cfg.Machine.Execute(s.cfg.Core, now, cost.MsgRecv+cost.MsgSend)
		s.replClock.AdvanceTo(end)
		if env.Reply != nil {
			ack := &repl.Ack{Server: int32(s.cfg.ID), Durable: s.replDurable.Load()}
			resp := &proto.Response{Data: ack.Marshal()}
			s.cfg.Network.Reply(s.replEP, env, proto.KindResponse, resp.Marshal(), end)
		}

	case proto.OpReplAck:
		// Primary side: a follower's one-way async ack.
		end := s.cfg.Machine.Execute(s.cfg.Core, now, cost.MsgRecv)
		s.replClock.AdvanceTo(end)
		a, err := repl.UnmarshalAck(req.Data)
		if err != nil {
			return
		}
		s.noteAck(a)

	case proto.OpReplAppend:
		s.handleReplAppend(req, env, now)

	case proto.OpReplSeal:
		m, err := repl.UnmarshalMsg(req.Data)
		if err != nil {
			return
		}
		var rep repl.SealReply
		f := s.replicas[int(m.Primary)]
		if f != nil {
			// Sealing is idempotent and retains the replica, so a retried
			// failover (the first attempt died mid-promotion) seals again
			// and receives the same horizon and snapshot.
			f.Seal()
			rep.Durable = f.Durable()
			rep.Snap = f.Snapshot().Marshal()
		}
		work := cost.MsgRecv + cost.MsgSend + sim.LineCost(cost.WalPerLine, len(rep.Snap))
		end := s.cfg.Machine.Execute(s.cfg.Core, now, work)
		s.replClock.AdvanceTo(end)
		if env.Reply != nil {
			resp := &proto.Response{Data: rep.Marshal()}
			s.cfg.Network.Reply(s.replEP, env, proto.KindResponse, resp.Marshal(), end)
		}
	}
}

// noteAck folds a follower ack into the primary-side horizon tracking.
func (s *Server) noteAck(a *repl.Ack) {
	for {
		cur := s.replDurable.Load()
		if a.Durable <= cur || s.replDurable.CompareAndSwap(cur, a.Durable) {
			break
		}
	}
	if a.NeedSync {
		s.replNeedSync.Store(true)
	}
}

// handleReplAppend ingests one shipped batch into the replica of its
// primary and acks the resulting horizon — as the RPC reply in sync mode,
// as a one-way REPL_ACK to the primary's replication plane in async mode.
func (s *Server) handleReplAppend(req *proto.Request, env msg.Envelope, now sim.Cycles) {
	cost := s.cfg.Machine.Cost
	m, err := repl.UnmarshalMsg(req.Data)
	if err != nil {
		return
	}
	work := cost.MsgRecv
	ack := repl.Ack{Server: int32(s.cfg.ID), Primary: m.Primary}
	f := s.replicas[int(m.Primary)]
	switch {
	case m.Snap != nil:
		// Rebase: replace (or create) the replica from the snapshot. A
		// sealed replica was consumed by a promotion; the rebase is the
		// promoted primary re-establishing the relationship.
		c, err := wal.UnmarshalCheckpoint(m.Snap)
		if err != nil {
			ack.NeedSync = true
			break
		}
		if f == nil || f.Sealed() {
			f = repl.NewFollower(int(m.Primary), s.cfg.DRAM.BlockSize())
			s.replicas[int(m.Primary)] = f
		}
		f.Rebase(c, m.SnapLSN)
		ack.Durable = f.Durable()
		work += sim.LineCost(cost.WalPerLine, len(m.Snap))
	case f == nil || f.Sealed():
		// No live replica to append to: a fresh follower assignment or a
		// post-promotion stale replica. Drop the sealed corpse and ask for
		// a rebase.
		delete(s.replicas, int(m.Primary))
		ack.NeedSync = true
	default:
		recs, err := wal.DecodeRecords(m.Recs)
		if err != nil {
			// A shipped batch is all-or-nothing; a framing error means the
			// replica can no longer trust its horizon. Rebase.
			ack.NeedSync = true
			break
		}
		ack.NeedSync = f.Ingest(m.Base, recs)
		ack.Durable = f.Durable()
		work += sim.Cycles(len(recs))*cost.WalReplayPerRec + sim.LineCost(cost.WalPerLine, len(m.Recs))
	}
	work += cost.MsgSend // the ack
	end := s.cfg.Machine.Execute(s.cfg.Core, now, work)
	s.replClock.AdvanceTo(end)

	s.replAcks.Add(1)
	if env.Reply != nil {
		resp := &proto.Response{Data: ack.Marshal()}
		s.cfg.Network.Reply(s.replEP, env, proto.KindResponse, resp.Marshal(), end)
		return
	}
	payload := (&proto.Request{Op: proto.OpReplAck, Data: ack.Marshal()}).Marshal()
	s.replAckBytes.Add(uint64(len(payload)))
	_, _ = s.cfg.Network.Send(s.replEP, msg.EndpointID(m.AckTo), proto.KindRequest, payload, end, nil)
	// Park the replication plane's lane again: the Send joined it at the
	// ack's send time, and nothing else advances it between batches, so a
	// pinned frontier here would wedge the parallel engine. The ack's
	// destination is the primary's (ungated) replication inbox, so the lane
	// need not hold a frontier for it.
	s.cfg.Network.GateIdle(s.replEP.ID)
}

// ship sends the just-committed record batch to the follower and returns
// the time the client reply may be released: in sync mode that is no
// earlier than the follower's ack arrival (ack-before-reply), in async
// mode the ship is fire-and-forget unless the unacked window overflowed,
// in which case the ship degrades to a blocking flush (bounded lag).
// Called from the request loop right after the WAL append assigned LSNs.
func (s *Server) ship(recs []wal.Record, at sim.Cycles) sim.Cycles {
	t := s.replTarget.Load()
	if t == nil || len(recs) == 0 {
		return at
	}
	last := recs[len(recs)-1].LSN
	s.replLastLSN.Store(last)
	if t.Down != nil && t.Down() {
		// The follower is down: skip the ship rather than blocking a
		// client reply against a closed inbox. The replica is now behind
		// by records it will never see from batches alone, so the next
		// ship to the recovered follower carries a rebase snapshot —
		// and until then a promotion falls back to WAL replay, keeping
		// the no-acked-write-lost invariant intact.
		s.replNeedSync.Store(true)
		return at
	}
	cost := s.cfg.Machine.Cost
	m := repl.Msg{Primary: int32(s.cfg.ID)}
	if s.replEP != nil {
		m.AckTo = int32(s.replEP.ID)
	}
	if s.replNeedSync.Load() {
		// Rebase: the snapshot reflects every record just appended (it is
		// built from live state after the append), so it covers the log
		// through the batch's last LSN.
		m.Snap = s.buildCheckpoint().Marshal()
		m.SnapLSN = last
		s.replResyncs.Add(1)
	} else {
		m.Base = recs[0].LSN
		m.Recs = wal.EncodeRecords(recs)
	}
	payload := (&proto.Request{Op: proto.OpReplAppend, Data: m.Marshal()}).Marshal()
	sendEnd := s.cfg.Machine.Execute(s.cfg.Core, at, cost.MsgSend)
	s.clock.AdvanceTo(sendEnd)
	s.replShips.Add(1)
	s.replBytes.Add(uint64(len(payload)))
	// Re-park the server's own lane once the ship is done: sending from
	// s.ep joins its lane (and a blocking ship pins it at the ack arrival),
	// but a server's lane must not constrain the gate between ships — the
	// in-flight client request whose commit triggered the ship already
	// holds the floor with its own Await pin, and the follower's
	// replication inbox is ungated.
	defer s.cfg.Network.GateIdle(s.ep.ID)

	blocking := s.cfg.Repl.Mode == repl.Sync
	if !blocking {
		// Async: bound the unacked window. When the follower has fallen
		// more than a window behind, this ship waits for its ack — the
		// back-pressure that makes "bounded loss" a guarantee instead of
		// a hope.
		if lag := last - s.replDurable.Load(); lag > uint64(s.cfg.Repl.Window) {
			blocking = true
		}
	}
	if !blocking {
		if _, err := s.cfg.Network.Send(s.ep, t.EP, proto.KindRequest, payload, sendEnd, nil); err != nil {
			s.replNeedSync.Store(true)
			return sendEnd
		}
		if m.Snap != nil {
			// The rebase is in flight; stop re-shipping snapshots. If it
			// is lost, the follower's next ack says NeedSync again.
			s.replNeedSync.Store(false)
		}
		s.traceShip(at, sendEnd, false)
		return sendEnd
	}
	env, err := s.cfg.Network.RPC(s.ep, t.EP, proto.KindRequest, payload, sendEnd)
	if err != nil {
		s.replNeedSync.Store(true)
		return sendEnd
	}
	recvAt := env.ArriveAt
	if recvAt < sendEnd {
		recvAt = sendEnd
	}
	end := s.cfg.Machine.Execute(s.cfg.Core, recvAt, cost.MsgRecv)
	s.clock.AdvanceTo(end)
	resp, rerr := proto.UnmarshalResponse(env.Payload)
	if rerr != nil {
		s.replNeedSync.Store(true)
		return end
	}
	a, aerr := repl.UnmarshalAck(resp.Data)
	if aerr != nil {
		s.replNeedSync.Store(true)
		return end
	}
	s.noteAck(a)
	if !a.NeedSync {
		s.replNeedSync.Store(false)
	}
	s.traceShip(at, end, true)
	return end
}

// shipCheckpoint rebases the follower onto a just-written checkpoint. A
// checkpoint captures state the log does not carry — buffer-cache contents
// written by direct-access clients — and §6's contract declares that data
// durable from the checkpoint on. The replica must cover it too, or a
// promotion after a memory-domain loss would roll those bytes back to
// zero where the fallback replay (checkpoint + tail) would not. The ship
// always waits for the follower's ack, in async mode too: when a
// checkpoint returns, the replica covers it.
func (s *Server) shipCheckpoint(c *wal.Checkpoint, at sim.Cycles) sim.Cycles {
	t := s.replTarget.Load()
	if t == nil {
		return at
	}
	last := s.wal.Stats().LastLSN
	s.replLastLSN.Store(last)
	if t.Down != nil && t.Down() {
		// Same rule as ship: never block against a closed inbox. The
		// replica misses the checkpoint, so it must be rebased before it
		// is trusted again.
		s.replNeedSync.Store(true)
		return at
	}
	cost := s.cfg.Machine.Cost
	m := repl.Msg{Primary: int32(s.cfg.ID), Snap: c.Marshal(), SnapLSN: last}
	if s.replEP != nil {
		m.AckTo = int32(s.replEP.ID)
	}
	payload := (&proto.Request{Op: proto.OpReplAppend, Data: m.Marshal()}).Marshal()
	sendEnd := s.cfg.Machine.Execute(s.cfg.Core, at, cost.MsgSend)
	s.clock.AdvanceTo(sendEnd)
	s.replShips.Add(1)
	s.replResyncs.Add(1)
	s.replBytes.Add(uint64(len(payload)))
	// As in ship: re-park s.ep's lane once the blocking rebase completes.
	defer s.cfg.Network.GateIdle(s.ep.ID)
	env, err := s.cfg.Network.RPC(s.ep, t.EP, proto.KindRequest, payload, sendEnd)
	if err != nil {
		s.replNeedSync.Store(true)
		return sendEnd
	}
	recvAt := env.ArriveAt
	if recvAt < sendEnd {
		recvAt = sendEnd
	}
	end := s.cfg.Machine.Execute(s.cfg.Core, recvAt, cost.MsgRecv)
	s.clock.AdvanceTo(end)
	resp, rerr := proto.UnmarshalResponse(env.Payload)
	if rerr != nil {
		s.replNeedSync.Store(true)
		return end
	}
	a, aerr := repl.UnmarshalAck(resp.Data)
	if aerr != nil {
		s.replNeedSync.Store(true)
		return end
	}
	s.noteAck(a)
	if !a.NeedSync {
		s.replNeedSync.Store(false)
	}
	return end
}

// traceShip records the replication leg of a traced request: the window
// from ship start to release (ack arrival when the ship waited for one).
func (s *Server) traceShip(start, end sim.Cycles, acked bool) {
	if s.curTrace == 0 || s.tr == nil {
		return
	}
	name := "ship"
	if acked {
		name = "ship+ack"
	}
	s.tr.Record(trace.Span{
		Trace: s.curTrace, ID: s.tem.Next(), Parent: s.curParent,
		Kind: trace.KindRepl, Name: name, Where: ^int32(s.cfg.ID),
		Start: start, End: end,
	})
}

// Promote installs a sealed follower snapshot as this server's state and
// restarts it under a fresh incarnation — recovery without the log replay.
// The caller has already stamped the snapshot with the bumped placement
// map, so the promoted server answers EEPOCH to every pre-failover epoch
// and clients reroute through their normal refresh-and-retry.
//
// The snapshot is also written down as the server's first checkpoint,
// truncating the log: records beyond the follower's horizon must never
// resurrect in a later replay, or the promoted state and the durable state
// would diverge on the next crash.
func (s *Server) Promote(c *wal.Checkpoint, snapBytes int) (sim.Cycles, error) {
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	if s.wal == nil {
		return 0, fmt.Errorf("server %d: durability disabled", s.cfg.ID)
	}
	if !s.crashed.Load() {
		return 0, fmt.Errorf("server %d: not crashed", s.cfg.ID)
	}
	s.incarnation++
	s.tem = trace.ServerEmitter(s.cfg.ID, s.incarnation)
	s.resetState()
	s.loadCheckpoint(c)

	var ents int64
	s.dirs.Range(func(_ proto.InodeID, sh *dirShard) bool {
		ents += int64(sh.ents.Len())
		return true
	})
	s.entCount.Store(ents)
	s.reclaimBlocks()

	if err := s.wal.WriteCheckpoint(c); err != nil {
		return 0, fmt.Errorf("server %d: promote checkpoint: %w", s.cfg.ID, err)
	}

	// The promotion's critical path: install the snapshot (the same
	// per-byte cost replay charges for a checkpoint load) and write it
	// back out as the new checkpoint. Crucially there is no per-record
	// replay term — the follower already did that work off the critical
	// path, as each batch arrived.
	cost := s.cfg.Machine.Cost
	work := s.wal.ReplayCost(0, 0, snapBytes)
	work += sim.LineCost(cost.WalPerLine, int(s.wal.Stats().CheckpointBytes)) + cost.WalFlush
	end := s.cfg.Machine.Execute(s.cfg.Core, s.clock.Now(), work)
	s.clock.AdvanceTo(end)
	s.statsMu.Lock()
	s.stats.Checkpoints++
	s.statsMu.Unlock()

	s.broadcastCacheFlush()

	// The old replica relationship died with the old incarnation: the
	// follower's copy is sealed and consumed. Re-establish from scratch.
	s.MarkReplResync()
	s.replLastLSN.Store(s.wal.Stats().LastLSN)

	s.lostMemory = false
	s.done = make(chan struct{})
	s.ep.Inbox.Reopen()
	if s.replEP != nil {
		s.replDone = make(chan struct{})
		s.replEP.Inbox.Reopen()
	}
	s.crashed.Store(false)
	go s.run()
	if s.replEP != nil {
		go s.runRepl()
	}
	return work, nil
}

// reclaimBlocks rebuilds the partition free list around the blocks the
// current inode table owns (shared by Recover and Promote).
func (s *Server) reclaimBlocks() {
	inUse := make(map[ncc.BlockID]bool)
	s.inodes.Range(func(_ uint64, ino *inode) bool {
		for _, b := range ino.blocks {
			inUse[b] = true
		}
		return true
	})
	s.cfg.Partition.Reclaim(inUse)
}
