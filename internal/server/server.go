// Package server implements a Hare file server.
//
// A Hare deployment runs NSERVERS file servers, each pinned to a core. The
// file system state is split among them: every server owns the inodes it
// created (named by server id + per-server inode number), a shard of every
// distributed directory's entries (selected by hashing the parent directory
// inode and entry name), a partition of the shared buffer cache, the
// server-side half of shared file descriptors, and the pipes it created.
//
// Servers never talk to each other; the client library coordinates any
// operation that spans servers (the three-phase rmdir protocol, rename,
// readdir broadcasts). Servers push directory-cache invalidation callbacks
// to client libraries, relying on the messaging layer's atomic delivery.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/ncc"
	"repro/internal/place"
	"repro/internal/proto"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/trace"
	"repro/internal/wal"
)

// ClientRegistry maps client-library ids to their callback endpoints so file
// servers can send directory-cache invalidations.
type ClientRegistry struct {
	mu  sync.RWMutex
	eps map[int32]msg.EndpointID
}

// NewClientRegistry returns an empty registry.
func NewClientRegistry() *ClientRegistry {
	return &ClientRegistry{eps: make(map[int32]msg.EndpointID)}
}

// Register records the callback endpoint for a client id.
func (r *ClientRegistry) Register(id int32, ep msg.EndpointID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.eps[id] = ep
}

// Lookup returns the callback endpoint for a client id.
func (r *ClientRegistry) Lookup(id int32) (msg.EndpointID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ep, ok := r.eps[id]
	return ep, ok
}

// Endpoints returns every registered callback endpoint (used by recovery to
// broadcast a directory-cache flush).
func (r *ClientRegistry) Endpoints() []msg.EndpointID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]msg.EndpointID, 0, len(r.eps))
	for _, ep := range r.eps {
		out = append(out, ep)
	}
	return out
}

// Config describes one file server instance.
type Config struct {
	ID         int // server index in [0, NumServers)
	Core       int // core the server is pinned to
	NumServers int

	Machine   *sim.Machine
	Network   *msg.Network
	DRAM      *ncc.DRAM
	Partition *ncc.Partition
	Registry  *ClientRegistry

	// CoLocated is true in the timeshare configuration, where the server
	// shares its core with application processes; every RPC then pays
	// context-switch and cache-pollution overhead (§5.3.3).
	CoLocated bool

	// RootDistributed configures whether the root directory's entries are
	// sharded across servers. Only meaningful for server 0, which stores
	// the root inode.
	RootDistributed bool

	// Log, when non-nil, enables durability: mutations are written ahead
	// to this log, acknowledged at their group-commit point, periodically
	// folded into checkpoints, and replayed by Recover after a Crash.
	Log *wal.Log

	// Placement is the deployment's boot-time placement map (DESIGN.md
	// §9). Nil disables the epoch gate and shard migration (bare servers
	// built directly by unit tests).
	Placement *place.Map

	// Repl enables shard replication (DESIGN.md §12): the server runs a
	// replication-plane endpoint, ships its WAL batches to the follower
	// installed via SetReplTarget, and ingests batches for the primaries
	// it follows. The zero value disables all of it.
	Repl ReplOptions

	// Tracer, when non-nil, records server-side child spans (network
	// delivery, queueing, service, batch sub-ops, WAL commit) for
	// requests that arrive carrying a trace context.
	Tracer *trace.Tracer
}

// Stats counts the work a server has performed.
type Stats struct {
	Ops           map[proto.Op]uint64
	Invalidations uint64
	Parked        uint64
	Checkpoints   uint64
	BusyCycles    sim.Cycles
	// BatchedOps counts sub-operations served inside OpBatch envelopes.
	BatchedOps uint64
	// QueueDelay accumulates, across all requests, the virtual time between
	// a request's arrival and the moment the server started serving it.
	QueueDelay sim.Cycles
	// Epoch is the placement-map epoch the server has adopted (0 when the
	// server runs without a placement layer).
	Epoch uint64
	// Entries is the number of directory entries currently stored here
	// (the server's share of the namespace's shard state).
	Entries int64
	// MigInEntries and MigOutEntries count directory entries this server
	// received and handed off through shard migrations (DESIGN.md §9).
	MigInEntries  uint64
	MigOutEntries uint64
	// Replication counters (DESIGN.md §12). ReplShips/ReplBytes count
	// primary-side shipped batches; ReplAcks counts follower-side acks;
	// ReplResyncs counts rebase snapshots shipped. ReplLastLSN and
	// ReplDurable are the primary's shipping horizon and the follower-
	// acked horizon — their difference is the replication lag.
	ReplShips   uint64
	ReplBytes   uint64
	ReplAcks    uint64
	ReplResyncs uint64
	ReplLastLSN uint64
	ReplDurable uint64
}

// Server is one Hare file server. Its Run loop processes one request at a
// time from its inbox; all mutable state is confined to that goroutine.
type Server struct {
	cfg   Config
	ep    *msg.Endpoint
	clock sim.Clock

	inodes  *table.Sharded[uint64, *inode]
	nextIno uint64

	dirs     *table.Map[proto.InodeID, *dirShard]
	deadDirs *table.Map[proto.InodeID, struct{}]

	sharedFds *table.Map[proto.FdID, *sharedFd]
	nextFd    proto.FdID

	// tracking records, per directory entry stored here, which client
	// libraries have the lookup cached (for invalidation callbacks). The
	// value is a small insertion-ordered set, so invalidation fan-outs walk
	// clients in a deterministic order.
	tracking *table.Map[direntKey, []int32]

	// Hot-path recycling (DESIGN.md §13): a free list of request structs and
	// a scratch response, both confined to the request loop.
	reqFree []*proto.Request
	scratch proto.Response

	statsMu sync.Mutex
	stats   Stats

	// Durability state (nil / zero when the deployment runs without it).
	wal        *wal.Log
	pending    []wal.Record // records staged by the current request
	crashed    atomic.Bool
	crashMu    sync.Mutex // serializes Crash/Recover with each other
	lostMemory bool
	// incarnation counts recoveries; shared-descriptor ids embed it so
	// descriptors from before a crash cannot alias ones issued after.
	incarnation uint32
	// verBase is the floor of this incarnation's inode data versions
	// (incarnation << 32). Versions replayed or assigned after a recovery
	// start above every version handed out before the crash, so a client's
	// stale pre-crash version can never match and mask lost writes.
	verBase uint64

	// Elastic-placement state (DESIGN.md §9). pmap/frozen/pendingEpoch/
	// migParked are confined to the request loop (and to Recover, which
	// runs with the loop stopped); epoch and entCount are atomics so the
	// stats/shell surfaces can read them from other goroutines.
	pmap         *place.Map
	epoch        atomic.Uint64
	frozen       bool
	pendingEpoch uint64
	migParked    []parkedReq
	entCount     atomic.Int64

	// Tracing state, confined to the request loop. tem is re-created with
	// the new incarnation on Recover so post-crash spans never reuse a
	// pre-crash span ID. curTrace/curParent hold the in-flight request's
	// trace context so replyAt can attach the WAL group-commit span.
	tr        *trace.Tracer
	tem       *trace.Emitter
	curTrace  uint64
	curParent uint64
	curOp     string

	// Replication state (DESIGN.md §12; nil/zero when disabled). replicas
	// and replClock are confined to the replication-plane goroutine; the
	// horizon and counter fields are atomics because the request loop
	// (shipping), the replication plane (acks), and the stats surface all
	// touch them.
	replEP       *msg.Endpoint
	replDone     chan struct{}
	replClock    sim.Clock
	replicas     map[int]*repl.Follower
	replTarget   atomic.Pointer[ReplTarget]
	replDurable  atomic.Uint64
	replLastLSN  atomic.Uint64
	replNeedSync atomic.Bool
	replShips    atomic.Uint64
	replBytes    atomic.Uint64
	replAcks     atomic.Uint64
	replAckBytes atomic.Uint64
	replResyncs  atomic.Uint64

	done chan struct{}
}

// New creates a file server and registers its endpoint on the network. If
// this is server 0 it creates the root directory inode.
func New(cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		ep:        cfg.Network.NewEndpoint(cfg.Core),
		inodes:    newInodeTable(),
		nextIno:   2, // local inode 1 is reserved for the root directory
		dirs:      newDirTable(),
		deadDirs:  newDeadDirTable(),
		sharedFds: newFdTable(),
		nextFd:    1,
		tracking:  newTrackTable(),
		wal:       cfg.Log,
		tr:        cfg.Tracer,
		tem:       trace.ServerEmitter(cfg.ID, 0),
		done:      make(chan struct{}),
	}
	s.stats.Ops = make(map[proto.Op]uint64)
	s.pmap = cfg.Placement
	if s.pmap != nil {
		s.epoch.Store(s.pmap.Epoch())
	}
	if cfg.Repl.Mode != repl.Off {
		if s.cfg.Repl.Window <= 0 {
			s.cfg.Repl.Window = repl.DefaultWindow
		}
		s.replEP = cfg.Network.NewEndpoint(cfg.Core)
		s.replDone = make(chan struct{})
		s.replicas = make(map[int]*repl.Follower)
	}
	if int32(cfg.ID) == proto.RootInode.Server {
		root := &inode{
			local:       proto.RootInode.Local,
			ftype:       fsapi.TypeDir,
			mode:        fsapi.Mode755,
			nlink:       1,
			distributed: cfg.RootDistributed,
		}
		s.inodes.Put(root.local, root)
	}
	return s
}

// EndpointID returns the server's network endpoint id; clients address their
// RPCs to it.
func (s *Server) EndpointID() msg.EndpointID { return s.ep.ID }

// ID returns the server index.
func (s *Server) ID() int { return s.cfg.ID }

// Core returns the core the server is pinned to.
func (s *Server) Core() int { return s.cfg.Core }

// Clock returns the server's current virtual time.
func (s *Server) Clock() sim.Cycles { return s.clock.Now() }

// WalStats returns the write-ahead log's counters; the zero Stats when
// durability is disabled.
func (s *Server) WalStats() wal.Stats {
	if s.wal == nil {
		return wal.Stats{}
	}
	return s.wal.Stats()
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	out := Stats{
		Ops:           make(map[proto.Op]uint64, len(s.stats.Ops)),
		Invalidations: s.stats.Invalidations,
		Parked:        s.stats.Parked,
		Checkpoints:   s.stats.Checkpoints,
		BusyCycles:    s.clock.Now(),
		BatchedOps:    s.stats.BatchedOps,
		QueueDelay:    s.stats.QueueDelay,
		Epoch:         s.epoch.Load(),
		Entries:       s.entCount.Load(),
		MigInEntries:  s.stats.MigInEntries,
		MigOutEntries: s.stats.MigOutEntries,
		ReplShips:     s.replShips.Load(),
		ReplBytes:     s.replBytes.Load() + s.replAckBytes.Load(),
		ReplAcks:      s.replAcks.Load(),
		ReplResyncs:   s.replResyncs.Load(),
		ReplLastLSN:   s.replLastLSN.Load(),
		ReplDurable:   s.replDurable.Load(),
	}
	for k, v := range s.stats.Ops {
		out.Ops[k] = v
	}
	return out
}

// Start launches the server's request loop (and its replication plane,
// when replication is enabled).
func (s *Server) Start() {
	go s.run()
	if s.replEP != nil {
		go s.runRepl()
	}
}

// Stop shuts the server down. In-flight parked requests (blocked pipe reads,
// rmdir waiters) never receive replies after Stop; callers stop servers only
// after all application processes have finished.
func (s *Server) Stop() {
	s.ep.Inbox.Close()
	<-s.done
	if s.replEP != nil {
		s.replEP.Inbox.Close()
		<-s.replDone
	}
}

func (s *Server) run() {
	defer close(s.done)
	for {
		// Gate() is re-loaded every iteration: parallel mode may be switched
		// on or off between requests (it is only ever toggled while the
		// system is quiescent). A nil gate is the serialized path,
		// bit-identical to PopWaitEarliest.
		env, ok := s.ep.Inbox.PopWaitEarliestGated(s.cfg.Network.Gate())
		if !ok {
			return
		}
		if s.crashed.Load() {
			// A crash is in progress: abandon the loop without serving.
			// The envelope goes back to the inbox so it is served after
			// recovery rather than silently dropped.
			s.ep.Inbox.Push(env)
			return
		}
		s.handle(env)
	}
}

// handle processes one inbound request envelope. The server processes one
// request at a time; in virtual time a request starts at the later of its
// arrival and the completion of the previously served request, which is what
// produces queueing delay at a busy server (the single-server bottlenecks of
// §5.3.1 and §5.4).
//
// A batch envelope (OpBatch) pays the message-arrival overhead once and the
// per-sub-op service costs in sequence, which is the whole point of batching
// (DESIGN.md §7).
func (s *Server) handle(env msg.Envelope) {
	// Decode into a recycled request struct and release the payload buffer
	// into this endpoint's cache right away: the wire decoder copies every
	// variable-length field, so the decoded request never aliases it.
	req := s.getReq()
	err := proto.UnmarshalRequestInto(req, env.Payload)
	s.ep.PutBuf(env.Payload)
	env.Payload = nil
	if err != nil {
		s.replyAt(env, s.errResp(fsapi.EINVAL), env.ArriveAt)
		s.putReq(req)
		return
	}
	service, subs, stop, err := s.requestCost(req)
	if err != nil {
		s.replyAt(env, s.errResp(fsapi.EINVAL), env.ArriveAt)
		s.putReq(req)
		return
	}
	cost := s.cfg.Machine.Cost
	overhead := cost.MsgRecv
	if s.cfg.CoLocated {
		overhead += cost.ContextSwitch + cost.CachePollution
	}
	// A traced request pays modeled tracing overhead for the spans this
	// server will record: net + queue + service, plus one per batch
	// sub-op. Untraced requests (or tracer off) charge nothing, keeping
	// the tracing-off virtual timeline bit-identical.
	traced := s.tr != nil && req.Trace != 0
	if traced {
		nspans := 3 + len(subs)
		overhead += sim.Cycles(nspans) * cost.TraceSpan
	}
	total := overhead + service
	start := env.ArriveAt
	if now := s.clock.Now(); now > start {
		s.statsMu.Lock()
		s.stats.QueueDelay += now - start
		s.statsMu.Unlock()
		start = now
	}
	end := s.cfg.Machine.Execute(s.cfg.Core, start, total)
	s.clock.AdvanceTo(end)

	s.statsMu.Lock()
	s.stats.Ops[req.Op]++
	s.statsMu.Unlock()

	var resp *proto.Response
	var parked bool
	if req.Op == proto.OpBatch {
		resp, parked = s.dispatchBatch(subs, stop, req, env)
	} else {
		resp, parked = s.dispatch(req, env)
	}
	if parked {
		s.statsMu.Lock()
		s.stats.Parked++
		s.statsMu.Unlock()
		return
	}
	if traced {
		s.recordSpans(req, subs, env, start, end, total-service, resp)
		s.curTrace, s.curParent, s.curOp = req.Trace, req.Span, req.Op.String()
	}
	s.replyAt(env, resp, end)
	s.curTrace, s.curParent, s.curOp = 0, 0, ""
	s.putReq(req)

	// Fold accumulated log records into a checkpoint between requests. A
	// failed checkpoint means the log can no longer be truncated (and the
	// store is likely failing); fail loudly rather than silently retrying
	// the full snapshot after every request.
	if s.wal != nil && s.wal.CheckpointDue() {
		if err := s.writeCheckpoint(); err != nil {
			panic(fmt.Sprintf("server %d: checkpoint: %v", s.cfg.ID, err))
		}
	}
}

// recordSpans attaches this server's child spans for one traced request:
// network delivery (send → arrive, including fault-injected delay), queue
// wait (arrive → service start, when the server was busy), service
// (overhead + op work), and one sub-span per batch sub-operation. All spans
// parent to the client-side RPC span carried in req.Span; batch sub-spans
// nest under the service span with their sub index as disambiguator.
func (s *Server) recordSpans(req *proto.Request, subs []*proto.Request, env msg.Envelope, start, end, overhead sim.Cycles, resp *proto.Response) {
	where := ^int32(s.cfg.ID)
	name := req.Op.String()
	s.tr.Record(trace.Span{
		Trace: req.Trace, ID: s.tem.Next(), Parent: req.Span,
		Kind: trace.KindNetReq, Name: name, Where: where,
		Start: env.SentAt, End: env.ArriveAt,
	})
	if start > env.ArriveAt {
		s.tr.Record(trace.Span{
			Trace: req.Trace, ID: s.tem.Next(), Parent: req.Span,
			Kind: trace.KindQueue, Name: name, Where: where,
			Start: env.ArriveAt, End: start,
		})
	}
	svcID := s.tem.Next()
	svc := trace.Span{
		Trace: req.Trace, ID: svcID, Parent: req.Span,
		Kind: trace.KindService, Name: name, Where: where,
		Start: start, End: end,
	}
	if resp != nil {
		svc.Err = int32(resp.Err)
	}
	s.tr.Record(svc)
	if len(subs) == 0 {
		return
	}
	// Batch sub-ops ran back-to-back after the per-message overhead; each
	// sub-span covers its own service window. Per-sub errors come from the
	// batch response payload when available.
	var serrs []*proto.Response
	if resp != nil && resp.Err == fsapi.OK {
		serrs, _ = proto.UnmarshalBatchResponses(resp.Data)
	}
	at := start + overhead
	for i, sub := range subs {
		d := s.serviceCost(sub)
		ss := trace.Span{
			Trace: req.Trace, ID: s.tem.Next(), Parent: svcID,
			Kind: trace.KindSub, Name: sub.Op.String(), Where: where,
			Start: at, End: at + d, Idx: int32(i),
		}
		if i < len(serrs) && serrs[i] != nil {
			ss.Err = int32(serrs[i].Err)
		}
		s.tr.Record(ss)
		at += d
	}
}

// QueueDepth returns the number of requests waiting in the server's inbox
// (a live load signal for the shell's top view).
func (s *Server) QueueDepth() int { return s.ep.Inbox.Len() }

// requestCost computes the total service cost of a request. For a batch it
// decodes the sub-requests (returned so dispatch does not decode them twice)
// and sums their individual service costs.
func (s *Server) requestCost(req *proto.Request) (sim.Cycles, []*proto.Request, bool, error) {
	if req.Op != proto.OpBatch {
		return s.serviceCost(req), nil, false, nil
	}
	subs, stop, err := proto.UnmarshalBatch(req.Data)
	if err != nil {
		return 0, nil, false, err
	}
	var total sim.Cycles
	for _, sub := range subs {
		total += s.serviceCost(sub)
	}
	return total, subs, stop, nil
}

// reply sends a response at the server's current high-water time; it is used
// when answering requests that had been parked (pipe wake-ups, rmdir lock
// hand-offs), whose completion is driven by a later event.
func (s *Server) reply(env msg.Envelope, resp *proto.Response) {
	s.replyAt(env, resp, s.clock.Now())
}

// replyAt sends a response whose service completed at the given time. When
// the request staged durability records, the reply is held back to their
// group-commit point: clients observe mutations as acknowledged only once
// logged (DESIGN.md §6).
func (s *Server) replyAt(env msg.Envelope, resp *proto.Response, at sim.Cycles) {
	if resp == nil {
		resp = s.errResp(fsapi.EIO)
	}
	staged := at
	at = s.commitPending(at)
	if s.curTrace != 0 && at > staged {
		// The reply was held back to the group-commit point: surface the
		// durability wait as a WAL span under the request's RPC span.
		s.tr.Record(trace.Span{
			Trace: s.curTrace, ID: s.tem.Next(), Parent: s.curParent,
			Kind: trace.KindWAL, Name: s.curOp, Where: ^int32(s.cfg.ID),
			Start: staged, End: at,
		})
	}
	cost := s.cfg.Machine.Cost
	end := s.cfg.Machine.Execute(s.cfg.Core, at, cost.MsgSend)
	s.clock.AdvanceTo(end)
	// Marshal into a recycled buffer; the awaiting requester releases it
	// into its own cache after decoding.
	payload := resp.AppendTo(s.ep.GetBuf(resp.SizeHint()))
	s.cfg.Network.Reply(s.ep, env, proto.KindResponse, payload, end)
}

// dispatch routes the request to the appropriate handler. The bool result is
// true if the request was parked (no reply should be sent yet).
func (s *Server) dispatch(req *proto.Request, env msg.Envelope) (*proto.Response, bool) {
	// Placement-routed requests pass the epoch gate first: a stale (or
	// ahead-of-us) epoch is answered with EEPOCH, and entry mutations on a
	// frozen server park until the migration commits (DESIGN.md §9).
	if resp, parked, handled := s.epochGate(req, env); handled {
		return resp, parked
	}
	switch req.Op {
	// Directory entries.
	case proto.OpLookup:
		return s.handleLookup(req, env)
	case proto.OpAddMap:
		return s.handleAddMap(req, env)
	case proto.OpRmMap:
		return s.handleRmMap(req, env)
	case proto.OpReadDirShard:
		return s.handleReadDirShard(req, env)
	case proto.OpCreateCoalesced:
		return s.handleCreateCoalesced(req, env)

	// Inodes.
	case proto.OpMknod:
		return s.handleMknod(req), false
	case proto.OpLinkInode:
		return s.handleLinkInode(req), false
	case proto.OpUnlinkInode:
		return s.handleUnlinkInode(req), false
	case proto.OpOpenInode:
		return s.handleOpenInode(req), false
	case proto.OpCloseInode:
		return s.handleCloseInode(req), false
	case proto.OpGetBlocks:
		return s.handleGetBlocks(req), false
	case proto.OpExtend:
		return s.handleExtend(req), false
	case proto.OpSetSize:
		return s.handleSetSize(req), false
	case proto.OpTruncate:
		return s.handleTruncate(req), false
	case proto.OpStat:
		return s.handleStat(req), false
	case proto.OpReadAt:
		return s.handleReadAt(req), false
	case proto.OpWriteAt:
		return s.handleWriteAt(req), false

	// rmdir three-phase protocol.
	case proto.OpRmdirLock:
		return s.handleRmdirLock(req, env)
	case proto.OpRmdirPrepare:
		return s.handleRmdirPrepare(req), false
	case proto.OpRmdirCommit:
		return s.handleRmdirCommit(req), false
	case proto.OpRmdirAbort:
		return s.handleRmdirAbort(req), false
	case proto.OpRmdirUnlock:
		return s.handleRmdirUnlock(req), false
	case proto.OpRmdirFinish:
		return s.handleRmdirFinish(req), false

	// Shared file descriptors.
	case proto.OpFdShare:
		return s.handleFdShare(req), false
	case proto.OpFdIncRef:
		return s.handleFdIncRef(req), false
	case proto.OpFdDecRef:
		return s.handleFdDecRef(req), false
	case proto.OpFdUnshare:
		return s.handleFdUnshare(req), false
	case proto.OpFdRead:
		return s.handleFdRead(req), false
	case proto.OpFdWrite:
		return s.handleFdWrite(req), false
	case proto.OpFdSeek:
		return s.handleFdSeek(req), false
	case proto.OpFdGetInfo:
		return s.handleFdGetInfo(req), false

	// Pipes.
	case proto.OpPipeCreate:
		return s.handlePipeCreate(req), false
	case proto.OpPipeRead:
		return s.handlePipeRead(req, env)
	case proto.OpPipeWrite:
		return s.handlePipeWrite(req, env)
	case proto.OpPipeIncReader:
		return s.handlePipeIncRef(req, false), false
	case proto.OpPipeIncWriter:
		return s.handlePipeIncRef(req, true), false
	case proto.OpPipeCloseRead:
		return s.handlePipeClose(req, false), false
	case proto.OpPipeCloseWrite:
		return s.handlePipeClose(req, true), false

	case proto.OpCheckpoint:
		return s.handleCheckpoint(req), false

	// Shard migration (elastic placement).
	case proto.OpShardFreeze:
		return s.handleShardFreeze(req), false
	case proto.OpShardPull:
		return s.handleShardPull(req), false
	case proto.OpShardCommit:
		return s.handleShardCommit(req), false

	case proto.OpBatch:
		// Reached on re-dispatch of a batch that had been parked on a
		// marked shard (handle routes fresh batches directly).
		subs, stop, err := proto.UnmarshalBatch(req.Data)
		if err != nil {
			return s.errResp(fsapi.EINVAL), false
		}
		return s.dispatchBatch(subs, stop, req, env)

	case proto.OpPing:
		return s.resp(proto.Response{}), false

	default:
		return s.errResp(fsapi.ENOSYS), false
	}
}

// serviceCost returns the virtual service time for a request.
func (s *Server) serviceCost(req *proto.Request) sim.Cycles {
	c := s.cfg.Machine.Cost
	switch req.Op {
	case proto.OpLookup:
		return c.ServeLookup
	case proto.OpAddMap, proto.OpMknod:
		return c.ServeCreate
	case proto.OpCreateCoalesced:
		return c.ServeCreate + c.ServeOpen/2
	case proto.OpRmMap, proto.OpUnlinkInode, proto.OpLinkInode:
		return c.ServeUnlink
	case proto.OpReadDirShard:
		// Per-entry cost is added after dispatch would be more precise;
		// approximate with the current shard size.
		n := 0
		if shard, ok := s.dirs.Get(req.Dir); ok {
			n = shard.ents.Len()
		}
		return c.ServeReadDir + sim.Cycles(n)*c.ServePerEnt
	case proto.OpOpenInode:
		return c.ServeOpen
	case proto.OpCloseInode:
		return c.ServeClose
	case proto.OpGetBlocks, proto.OpExtend, proto.OpSetSize, proto.OpTruncate:
		return c.ServeBlockOp
	case proto.OpStat:
		return c.ServeStat
	case proto.OpReadAt, proto.OpWriteAt:
		n := int(req.Count)
		if len(req.Data) > n {
			n = len(req.Data)
		}
		return c.ServeFdOp + sim.LineCost(c.DRAMPerLine, n)
	case proto.OpRmdirLock, proto.OpRmdirPrepare, proto.OpRmdirCommit,
		proto.OpRmdirAbort, proto.OpRmdirUnlock, proto.OpRmdirFinish:
		return c.ServeRmdir
	case proto.OpFdShare, proto.OpFdIncRef, proto.OpFdDecRef, proto.OpFdUnshare,
		proto.OpFdSeek, proto.OpFdGetInfo:
		return c.ServeFdOp
	case proto.OpFdRead, proto.OpFdWrite:
		n := int(req.Count)
		if len(req.Data) > n {
			n = len(req.Data)
		}
		return c.ServeFdOp + sim.LineCost(c.DRAMPerLine, n)
	case proto.OpPipeCreate, proto.OpPipeCloseRead, proto.OpPipeCloseWrite,
		proto.OpPipeIncReader, proto.OpPipeIncWriter:
		return c.ServePipeOp
	case proto.OpShardPull, proto.OpShardCommit:
		// Migration cost scales with the entries scanned; approximate with
		// the current shard-table size.
		return c.ServeReadDir + sim.Cycles(s.entCount.Load())*c.ServePerEnt
	case proto.OpPipeRead, proto.OpPipeWrite:
		n := int(req.Count)
		if len(req.Data) > n {
			n = len(req.Data)
		}
		return c.ServePipeOp + sim.LineCost(c.CopyPerLine, n)
	default:
		return c.ServeStat
	}
}
