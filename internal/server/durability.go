package server

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/ncc"
	"repro/internal/place"
	"repro/internal/proto"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Durability hooks (DESIGN.md §6).
//
// When the server is built with a write-ahead log, every handler that
// mutates durable state stages a record describing the mutation's *result*.
// The staged records are appended to the log when the request's reply is
// sent, and the reply time is pushed out to the batch's group-commit point,
// so clients observe durable-write latency in virtual time.
//
// Durable state is the namespace and file contents: inodes (type, mode,
// link count, size, block list), directory shards, dead-directory
// tombstones, and file data. Open-descriptor counts, server-side shared
// descriptors, pipes, rmdir marks, parked requests, and invalidation
// tracking are volatile — they describe sessions with client processes,
// and a server crash severs those sessions just as a machine crash severs
// open file descriptors.

// stage queues a record for the request currently being served. It is a
// no-op when durability is disabled, so handlers call it unconditionally.
func (s *Server) stage(r wal.Record) {
	if s.wal == nil {
		return
	}
	s.pending = append(s.pending, r)
}

func (s *Server) stageInode(ino *inode) {
	s.stage(wal.Record{
		Type:  wal.RecInode,
		Ino:   ino.local,
		Ftype: ino.ftype,
		Mode:  ino.mode,
		Dist:  ino.distributed,
		Nlink: int32(ino.nlink),
	})
}

func (s *Server) stageNlink(ino *inode) {
	s.stage(wal.Record{Type: wal.RecNlink, Ino: ino.local, Nlink: int32(ino.nlink)})
}

func (s *Server) stageSize(ino *inode) {
	s.stage(wal.Record{Type: wal.RecSize, Ino: ino.local, Size: ino.size})
}

func (s *Server) stageBlocks(ino *inode) {
	if s.wal == nil {
		return
	}
	s.stage(wal.Record{
		Type:   wal.RecBlocks,
		Ino:    ino.local,
		Size:   ino.size,
		Blocks: blockList(ino),
	})
}

func (s *Server) stageWrite(ino *inode, off int64, data []byte) {
	if s.wal == nil {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.stage(wal.Record{Type: wal.RecWrite, Ino: ino.local, Off: off, Data: cp})
}

func (s *Server) stageAddMap(dir proto.InodeID, name string, ent dirEnt) {
	s.stage(wal.Record{
		Type:   wal.RecAddMap,
		Dir:    dir,
		Name:   name,
		Target: ent.target,
		Ftype:  ent.ftype,
		Dist:   ent.dist,
	})
}

func (s *Server) stageRmMap(dir proto.InodeID, name string) {
	s.stage(wal.Record{Type: wal.RecRmMap, Dir: dir, Name: name})
}

func (s *Server) stageDirKill(dir proto.InodeID) {
	s.stage(wal.Record{Type: wal.RecDirKill, Dir: dir})
}

// commitPending appends the staged records and returns the virtual time at
// which the reply may be sent: no earlier than the records' group-commit
// point. The append CPU work is charged to the server's core.
func (s *Server) commitPending(at sim.Cycles) sim.Cycles {
	if s.wal == nil || len(s.pending) == 0 {
		return at
	}
	recs := s.pending
	s.pending = nil
	ack, cpu, err := s.wal.Append(recs, at)
	if err != nil {
		// Losing the log voids the durability contract; treat it like the
		// DRAM model treats a wild pointer.
		panic(fmt.Sprintf("server %d: wal append: %v", s.cfg.ID, err))
	}
	end := s.cfg.Machine.Execute(s.cfg.Core, at, cpu)
	s.clock.AdvanceTo(end)
	if ack > end {
		end = ack
	}
	// Replication piggybacks on the group commit: the freshly flushed
	// batch — LSNs just assigned by Append — ships to the follower, and in
	// sync mode the reply release waits for the follower's ack.
	end = s.ship(recs, end)
	return end
}

// handleCheckpoint serves the CHECKPOINT control request (sent by the core
// layer's Checkpoint API, and usable by operators through it).
func (s *Server) handleCheckpoint(req *proto.Request) *proto.Response {
	if s.wal == nil {
		return s.errResp(fsapi.EINVAL)
	}
	if err := s.writeCheckpoint(); err != nil {
		return s.errResp(fsapi.EIO)
	}
	return s.resp(proto.Response{})
}

// writeCheckpoint snapshots the server's durable state, saves it, and
// truncates the log. Runs on the server goroutine (directly from the
// request loop, or from auto-checkpointing between requests).
func (s *Server) writeCheckpoint() error {
	c := s.buildCheckpoint()
	if err := s.wal.WriteCheckpoint(c); err != nil {
		return err
	}
	// Charge the snapshot work: every byte of state written.
	bytes := int(s.wal.Stats().CheckpointBytes)
	cost := sim.LineCost(s.cfg.Machine.Cost.WalPerLine, bytes) + s.cfg.Machine.Cost.WalFlush
	end := s.cfg.Machine.Execute(s.cfg.Core, s.clock.Now(), cost)
	s.clock.AdvanceTo(end)
	s.statsMu.Lock()
	s.stats.Checkpoints++
	s.statsMu.Unlock()
	// The checkpoint holds direct-access block contents the log never saw;
	// the replica must cover them too before promotion can be trusted with
	// a memory-domain loss (DESIGN.md §12).
	s.shipCheckpoint(c, s.clock.Now())
	return nil
}

// buildCheckpoint serializes durable state into a wal.Checkpoint, including
// the contents of every buffer-cache block the server's files own (so the
// checkpoint functions as a full backup of its DRAM partition).
func (s *Server) buildCheckpoint() *wal.Checkpoint {
	c := &wal.Checkpoint{NextIno: s.nextIno}
	if s.pmap != nil {
		c.Epoch = s.epoch.Load()
		c.PlaceMap = s.pmap.Encode()
	}
	bs := s.cfg.DRAM.BlockSize()
	s.inodes.Range(func(_ uint64, ino *inode) bool {
		if ino.ftype == fsapi.TypePipe || ino.nlink <= 0 {
			// Pipes are volatile; unlinked-but-open inodes do not survive
			// the crash that severs the descriptors keeping them alive.
			return true
		}
		snap := wal.InodeSnap{
			Local:  ino.local,
			Ftype:  ino.ftype,
			Mode:   ino.mode,
			Size:   ino.size,
			Nlink:  int32(ino.nlink),
			Dist:   ino.distributed,
			Blocks: blockList(ino),
		}
		for _, b := range ino.blocks {
			buf := make([]byte, bs)
			s.cfg.DRAM.ReadDirect(b, 0, buf)
			snap.Data = append(snap.Data, buf)
		}
		c.Inodes = append(c.Inodes, snap)
		return true
	})
	s.dirs.Range(func(dir proto.InodeID, sh *dirShard) bool {
		ds := wal.DirSnap{Dir: dir}
		sh.ents.Range(func(name string, ent dirEnt) bool {
			ds.Ents = append(ds.Ents, wal.DirEntSnap{
				Name:   name,
				Target: ent.target,
				Ftype:  ent.ftype,
				Dist:   ent.dist,
			})
			return true
		})
		c.Dirs = append(c.Dirs, ds)
		return true
	})
	s.deadDirs.Range(func(dir proto.InodeID, _ struct{}) bool {
		c.DeadDirs = append(c.DeadDirs, dir)
		return true
	})
	return c
}

// Crash terminates the server abruptly, as if its process died: the request
// loop stops (requests already queued, and any sent later, wait in the
// inbox for recovery), all in-memory state is dropped, and — when
// loseMemory is set — the server's DRAM partition is wiped too, modelling
// the loss of its memory domain rather than just the process.
//
// Parked requests (blocked pipe reads, rmdir waiters) die with the server:
// their clients never receive replies, like processes blocked on a dead
// machine.
func (s *Server) Crash(loseMemory bool) {
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	if s.crashed.Load() {
		// Already down. Escalating a process crash to a memory-domain
		// loss still wipes the partition so the next Recover takes the
		// lost-memory path.
		if loseMemory && !s.lostMemory {
			s.wipePartition()
			s.lostMemory = true
		}
		return
	}
	s.crashed.Store(true)
	s.ep.Inbox.Close()
	<-s.done
	if s.replEP != nil {
		// The replication plane dies with the process: the replicas this
		// server held for its primaries are volatile RAM and are gone
		// (resetState drops them), so recovered primaries rebase.
		s.replEP.Inbox.Close()
		<-s.replDone
	}
	// The loops have exited; their state is now safe to touch from here.
	// Park the dead server's lanes: a ship or ack in progress when the
	// crash hit may have left a frontier pinned, and a dead server sends
	// nothing until recovery — its next send re-joins the gate at its send
	// time, which is the recovery frontier (the replayed clock).
	s.cfg.Network.GateIdle(s.ep.ID)
	if s.replEP != nil {
		s.cfg.Network.GateIdle(s.replEP.ID)
	}
	if loseMemory {
		s.wipePartition()
	}
	s.lostMemory = loseMemory
	s.resetState()
}

// wipePartition zeroes every block of the server's DRAM partition.
func (s *Server) wipePartition() {
	lo, hi := s.cfg.Partition.Range()
	for b := lo; b < hi; b++ {
		s.cfg.DRAM.ZeroBlock(b)
	}
}

// Crashed reports whether the server is currently down.
func (s *Server) Crashed() bool { return s.crashed.Load() }

// resetState reinitializes the server to its boot state (as New does).
// Shared-descriptor ids restart in a fresh incarnation's id space, so a
// stale FdID held by a client that outlived a crash can never alias a
// descriptor issued after recovery — it just fails with EBADF.
func (s *Server) resetState() {
	s.inodes = newInodeTable()
	s.nextIno = 2
	s.verBase = uint64(s.incarnation) << 32
	s.dirs = newDirTable()
	s.deadDirs = newDeadDirTable()
	s.sharedFds = newFdTable()
	s.nextFd = proto.FdID(uint64(s.incarnation)<<32) + 1
	s.tracking = newTrackTable()
	s.pending = nil
	// Placement falls back to the boot-time map; a later epoch adopted
	// through migration is restored by the checkpoint or an epoch record.
	// Freeze state and parked requests are volatile and die with the
	// server, like every other parked request.
	s.pmap = s.cfg.Placement
	if s.pmap != nil {
		s.epoch.Store(s.pmap.Epoch())
	} else {
		s.epoch.Store(0)
	}
	s.frozen = false
	s.pendingEpoch = 0
	s.migParked = nil
	s.entCount.Store(0)
	if s.replEP != nil {
		s.replicas = make(map[int]*repl.Follower)
	}
	if int32(s.cfg.ID) == proto.RootInode.Server {
		root := &inode{
			local:       proto.RootInode.Local,
			ftype:       fsapi.TypeDir,
			mode:        fsapi.Mode755,
			nlink:       1,
			distributed: s.cfg.RootDistributed,
		}
		s.inodes.Put(root.local, root)
	}
}

// Recover rebuilds the server's state from its checkpoint and log, restarts
// the request loop, and serves everything queued while it was down. It
// returns statistics about the recovery, including the virtual time the
// replay work was charged.
//
// Recovery is idempotent: records are state assignments, so rebuilding the
// same checkpoint+log prefix always produces the same state, and a second
// crash/recover cycle without intervening mutations is a no-op.
func (s *Server) Recover() (wal.RecoveryStats, error) {
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	st := wal.RecoveryStats{Server: s.cfg.ID}
	if s.wal == nil {
		return st, fmt.Errorf("server %d: durability disabled", s.cfg.ID)
	}
	if !s.crashed.Load() {
		return st, fmt.Errorf("server %d: not crashed", s.cfg.ID)
	}
	ckpt, ckptBytes, recs, err := s.wal.Recover()
	if err != nil {
		return st, err
	}
	s.incarnation++
	// A fresh span-ID namespace: requests re-served after recovery must
	// never collide with span IDs recorded before the crash.
	s.tem = trace.ServerEmitter(s.cfg.ID, s.incarnation)
	s.resetState()
	if ckpt != nil {
		st.UsedCheckpoint = true
		st.CheckpointInodes = len(ckpt.Inodes)
		st.CheckpointBytes = ckptBytes
		s.loadCheckpoint(ckpt)
	}
	for _, r := range recs {
		st.Bytes += int64(len(r.Data) + len(r.Name) + 64)
		s.applyRecord(r)
	}
	st.Records = len(recs)

	// Rebuild the entry counter from the recovered shard table.
	var ents int64
	s.dirs.Range(func(_ proto.InodeID, sh *dirShard) bool {
		ents += int64(sh.ents.Len())
		return true
	})
	s.entCount.Store(ents)

	// Rebuild the partition's free list around the blocks recovered files
	// own; everything else (including blocks of inodes whose unlink
	// replayed) becomes allocatable again.
	s.reclaimBlocks()

	// Charge the recovery work in virtual time.
	st.Cycles = s.wal.ReplayCost(st.Records, st.Bytes, st.CheckpointBytes)
	end := s.cfg.Machine.Execute(s.cfg.Core, s.clock.Now(), st.Cycles)
	s.clock.AdvanceTo(end)

	// The crash lost the invalidation-tracking sets, so this server can no
	// longer invalidate entries that surviving clients cached before the
	// crash. Tell every registered client to flush its directory cache —
	// sent before the inbox reopens, so atomic delivery guarantees the
	// flush is seen before any post-recovery lookup reply.
	s.broadcastCacheFlush()

	s.lostMemory = false
	s.done = make(chan struct{})
	s.ep.Inbox.Reopen()
	if s.replEP != nil {
		s.replDone = make(chan struct{})
		s.replEP.Inbox.Reopen()
	}
	s.crashed.Store(false)
	go s.run()
	if s.replEP != nil {
		go s.runRepl()
	}
	return st, nil
}

// broadcastCacheFlush sends a wildcard invalidation (empty name) to every
// registered client library.
func (s *Server) broadcastCacheFlush() {
	payload := (&proto.Invalidation{Dir: proto.NilInode, Name: ""}).Marshal()
	cost := s.cfg.Machine.Cost
	for _, ep := range s.cfg.Registry.Endpoints() {
		end := s.cfg.Machine.Execute(s.cfg.Core, s.clock.Now(), cost.MsgSend)
		s.clock.AdvanceTo(end)
		if _, err := s.cfg.Network.SendCallback(s.ep, ep, proto.KindCallback, payload, s.clock.Now()); err == nil {
			s.statsMu.Lock()
			s.stats.Invalidations++
			s.statsMu.Unlock()
		}
	}
}

// loadCheckpoint installs a snapshot. Block contents are written back to
// DRAM only when the crash lost the memory domain; after a plain process
// crash the shared DRAM still holds the live data (possibly newer than the
// snapshot, from clients writing the buffer cache directly) and must not be
// rolled back.
func (s *Server) loadCheckpoint(c *wal.Checkpoint) {
	if c.NextIno > s.nextIno {
		s.nextIno = c.NextIno
	}
	if c.Epoch > 0 && len(c.PlaceMap) > 0 {
		m, err := place.Decode(c.PlaceMap)
		if err != nil {
			// The checkpoint passed its CRC, so an undecodable map is a
			// programming error; recovering silently onto the boot map
			// would strand the server behind the fleet's epoch forever.
			panic(fmt.Sprintf("server %d: checkpoint placement map: %v", s.cfg.ID, err))
		}
		s.pmap = m
		s.epoch.Store(c.Epoch)
	}
	for i := range c.Inodes {
		snap := &c.Inodes[i]
		ino := &inode{
			local:       snap.Local,
			ftype:       snap.Ftype,
			mode:        snap.Mode,
			size:        snap.Size,
			nlink:       int(snap.Nlink),
			distributed: snap.Dist,
			version:     s.verBase,
		}
		for _, b := range snap.Blocks {
			ino.blocks = append(ino.blocks, ncc.BlockID(b))
		}
		if s.lostMemory {
			for j, b := range ino.blocks {
				if j < len(snap.Data) && snap.Data[j] != nil {
					s.cfg.DRAM.WriteDirect(b, 0, snap.Data[j])
				}
			}
		}
		s.inodes.Put(ino.local, ino)
		if ino.local >= s.nextIno {
			s.nextIno = ino.local + 1
		}
	}
	for i := range c.Dirs {
		ds := &c.Dirs[i]
		sh := s.shard(ds.Dir)
		for _, ent := range ds.Ents {
			sh.ents.Put(ent.Name, dirEnt{target: ent.Target, ftype: ent.Ftype, dist: ent.Dist})
		}
	}
	for _, dir := range c.DeadDirs {
		s.deadDirs.Put(dir, struct{}{})
	}
}

// applyRecord replays one log record. Records carry resulting state, so
// replay is idempotent; records referring to inodes that a later-replayed
// (or checkpoint-reflected) unlink removed are skipped.
func (s *Server) applyRecord(r wal.Record) {
	switch r.Type {
	case wal.RecInode:
		if r.Ino >= s.nextIno {
			s.nextIno = r.Ino + 1
		}
		if r.Ftype == fsapi.TypePipe {
			// Pipe state is volatile; the record only reserves the inode
			// number so it is not reissued to a new file.
			return
		}
		s.inodes.Put(r.Ino, &inode{
			local:       r.Ino,
			ftype:       r.Ftype,
			mode:        r.Mode,
			nlink:       int(r.Nlink),
			distributed: r.Dist,
			version:     s.verBase,
		})
	case wal.RecNlink:
		ino, ok := s.inodes.Get(r.Ino)
		if !ok {
			return
		}
		ino.nlink = int(r.Nlink)
		if ino.nlink <= 0 {
			// No descriptors survive a crash, so the inode reaps
			// immediately; Reclaim frees its blocks afterwards.
			s.inodes.Delete(r.Ino)
		}
	case wal.RecSize:
		if ino, ok := s.inodes.Get(r.Ino); ok && r.Size > ino.size {
			ino.size = r.Size
		}
	case wal.RecBlocks:
		ino, ok := s.inodes.Get(r.Ino)
		if !ok {
			return
		}
		if s.lostMemory {
			// At runtime every block enters an inode's map zeroed (Alloc
			// zeroes on hand-over), but replay assigns logged block lists
			// directly, bypassing the allocator. After a memory loss the
			// zero-fill must be reproduced here for blocks newly entering
			// this inode's map, or a reused block would expose its previous
			// owner's replayed bytes — e.g. through the gap a growing
			// truncate opened. Subsequent RecWrite records then lay the
			// file's logged contents back on top. After a plain process
			// crash DRAM survived and may hold direct-access writes newer
			// than the log; it must not be touched (same rule as RecWrite).
			had := make(map[ncc.BlockID]bool, len(ino.blocks))
			for _, b := range ino.blocks {
				had[b] = true
			}
			for _, b := range r.Blocks {
				if !had[ncc.BlockID(b)] {
					s.cfg.DRAM.ZeroBlock(ncc.BlockID(b))
				}
			}
		}
		ino.blocks = ino.blocks[:0]
		for _, b := range r.Blocks {
			ino.blocks = append(ino.blocks, ncc.BlockID(b))
		}
		ino.size = r.Size
	case wal.RecWrite:
		ino, ok := s.inodes.Get(r.Ino)
		if !ok {
			return
		}
		// Like loadCheckpoint, only rewrite DRAM when the memory domain
		// was lost: after a plain process crash the surviving buffer
		// cache may hold direct-access writes newer than this record,
		// which must not be rolled back.
		if s.lostMemory {
			s.writeData(ino, r.Off, r.Data)
		}
		if end := r.Off + int64(len(r.Data)); end > ino.size {
			ino.size = end
		}
	case wal.RecAddMap:
		sh := s.shard(r.Dir)
		sh.ents.Put(r.Name, dirEnt{target: r.Target, ftype: r.Ftype, dist: r.Dist})
	case wal.RecRmMap:
		if sh, ok := s.dirs.Get(r.Dir); ok {
			sh.ents.Delete(r.Name)
		}
	case wal.RecDirKill:
		s.dirs.Delete(r.Dir)
		s.deadDirs.Put(r.Dir, struct{}{})
	case wal.RecEpoch:
		m, err := place.Decode(r.Data)
		if err != nil {
			// CRC-framed record with an undecodable map: a bug, and
			// skipping it would leave the server permanently behind the
			// published epoch (clients would spin on EEPOCH).
			panic(fmt.Sprintf("server %d: epoch record placement map: %v", s.cfg.ID, err))
		}
		s.pmap = m
		s.epoch.Store(r.Epoch)
	}
}
