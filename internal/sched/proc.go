// Package sched implements Hare's process layer: a process abstraction for
// the simulated machine, per-core scheduling servers, and the remote
// execution protocol (exec-as-RPC with proxy processes, §3.5).
//
// It also provides a shared-memory process system used by the baseline file
// systems (Linux ramfs and UNFS3 in the paper's evaluation), so that the
// same workloads can run against every backend.
package sched

import (
	"sync"
	"sync/atomic"

	"repro/internal/fsapi"
	"repro/internal/sim"
)

// ProcFunc is the body of a simulated process. It receives the process
// handle and returns an exit status.
type ProcFunc func(p *Proc) int

// Clocked is the part of a file system client that carries virtual time.
// Both the Hare client library and the baseline clients implement it.
type Clocked interface {
	Clock() sim.Cycles
	AdvanceClock(t sim.Cycles)
	Compute(d sim.Cycles)
}

// GateParker is the part of a client that participates in the parallel
// virtual-time engine (DESIGN.md §13). A process that blocks on something
// outside the message layer — waiting on child processes — must park its
// lane so the rest of the system can advance, and resume it (after advancing
// its clock past everything that completed meanwhile) before issuing more
// operations. The Hare client library implements it; the baselines, which
// never run under the gate, do not.
type GateParker interface {
	GateActive() bool
	GatePark()
	GateResume()
}

// Proc is one simulated process: a file system client pinned to a core plus
// process metadata.
type Proc struct {
	PID  int64
	Args []string
	FS   fsapi.Client

	core   int
	sys    System
	killed atomic.Bool
}

// Core returns the core the process runs on.
func (p *Proc) Core() int { return p.core }

// System returns the process system that created this process.
func (p *Proc) System() System { return p.sys }

// Compute charges CPU time to the process (it advances the process's virtual
// clock through its file system client).
func (p *Proc) Compute(d sim.Cycles) {
	if ck, ok := p.FS.(Clocked); ok {
		ck.Compute(d)
	}
}

// Now returns the process's current virtual time.
func (p *Proc) Now() sim.Cycles {
	if ck, ok := p.FS.(Clocked); ok {
		return ck.Clock()
	}
	return 0
}

// Kill delivers a terminal signal to the process. The process observes it by
// polling Killed (cooperative, like the paper's prototype which forwards
// signals through proxy processes).
func (p *Proc) Kill() { p.killed.Store(true) }

// Killed reports whether a terminal signal has been delivered.
func (p *Proc) Killed() bool { return p.killed.Load() }

// Spawn creates a child process running fn. When remote is true the process
// system may place the child on another core according to its placement
// policy (Hare implements this with an exec RPC to a scheduling server);
// when false the child runs on the parent's core (plain fork).
func (p *Proc) Spawn(args []string, fn ProcFunc, remote bool) (*Handle, error) {
	return p.sys.Spawn(p, args, fn, remote)
}

// Handle allows waiting for a process to exit.
type Handle struct {
	pid    int64
	done   chan struct{}
	status int
	endAt  sim.Cycles
}

// newHandle creates an unfinished handle.
func newHandle(pid int64) *Handle {
	return &Handle{pid: pid, done: make(chan struct{})}
}

// finish records the exit status and completion time and releases waiters.
func (h *Handle) finish(status int, endAt sim.Cycles) {
	h.status = status
	h.endAt = endAt
	close(h.done)
}

// PID returns the process id.
func (h *Handle) PID() int64 { return h.pid }

// Wait blocks until the process exits and returns its exit status.
func (h *Handle) Wait() int {
	<-h.done
	return h.status
}

// EndTime returns the virtual time at which the process exited (only valid
// after Wait has returned).
func (h *Handle) EndTime() sim.Cycles { return h.endAt }

// System creates and places processes.
type System interface {
	// StartRoot launches an initial process on the given core.
	StartRoot(core int, args []string, fn ProcFunc) *Handle
	// Spawn creates a child of parent (see Proc.Spawn).
	Spawn(parent *Proc, args []string, fn ProcFunc, remote bool) (*Handle, error)
	// MaxEndTime returns the latest virtual completion time over all
	// processes that have exited so far.
	MaxEndTime() sim.Cycles
}

// endTracker aggregates process completion times.
type endTracker struct {
	mu  sync.Mutex
	max sim.Cycles
}

func (t *endTracker) record(end sim.Cycles) {
	t.mu.Lock()
	if end > t.max {
		t.max = end
	}
	t.mu.Unlock()
}

func (t *endTracker) maxEnd() sim.Cycles {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.max
}

// pidAllocator hands out process ids.
type pidAllocator struct{ next atomic.Int64 }

func (a *pidAllocator) alloc() int64 { return a.next.Add(1) }
