package sched

import (
	"fmt"
	"sync"

	"repro/internal/client"
	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/sim"
)

// HareConfig wires the Hare process system: one scheduling server per
// application core, a placement policy, and a factory for client libraries.
type HareConfig struct {
	Machine  *sim.Machine
	Network  *msg.Network
	AppCores []int
	Policy   Policy
	Seed     uint64

	// NewClient builds a fresh Hare client library pinned to a core; the
	// scheduling server uses it to construct the client for an exec'd
	// process.
	NewClient func(core int) *client.Client
}

// HareSystem implements the System interface using Hare's remote execution
// protocol: Spawn with remote placement forks locally and then sends an exec
// RPC to the chosen core's scheduling server; the forked child becomes a
// proxy that waits for the remote process to exit and relays its status
// (§3.5).
type HareSystem struct {
	cfg     HareConfig
	placer  *placer
	pids    pidAllocator
	ends    endTracker
	servers map[int]*schedServer

	progMu   sync.Mutex
	programs map[string]ProcFunc
	progSeq  uint64

	procMu sync.Mutex
	procs  map[int64]*Proc
}

// schedServer is the per-core scheduling server: it listens for exec RPCs,
// spawns the requested process locally, waits for it to exit, and replies to
// the proxy with the exit status.
type schedServer struct {
	core  int
	ep    *msg.Endpoint
	clock sim.Clock
	sys   *HareSystem
	done  chan struct{}
}

// NewHareSystem creates the process system and its scheduling servers (not
// yet started).
func NewHareSystem(cfg HareConfig) *HareSystem {
	sys := &HareSystem{
		cfg:      cfg,
		placer:   newPlacer(cfg.Policy, cfg.AppCores, cfg.Seed),
		servers:  make(map[int]*schedServer),
		programs: make(map[string]ProcFunc),
		procs:    make(map[int64]*Proc),
	}
	for _, core := range cfg.AppCores {
		sys.servers[core] = &schedServer{
			core: core,
			ep:   cfg.Network.NewEndpoint(core),
			sys:  sys,
			done: make(chan struct{}),
		}
	}
	return sys
}

// Start launches every scheduling server.
func (sys *HareSystem) Start() {
	for _, s := range sys.servers {
		go s.run()
	}
}

// Stop shuts the scheduling servers down. Callers stop the system only after
// every process has exited.
func (sys *HareSystem) Stop() {
	for _, s := range sys.servers {
		s.ep.Inbox.Close()
		<-s.done
	}
}

// MaxEndTime returns the latest process completion time seen so far.
func (sys *HareSystem) MaxEndTime() sim.Cycles { return sys.ends.maxEnd() }

// StartRoot launches an initial process on the given core. The process's
// virtual clock starts at the latest completion time observed so far, so a
// sequence of root processes (setup phase, then the timed run) composes
// sensibly in virtual time.
func (sys *HareSystem) StartRoot(core int, args []string, fn ProcFunc) *Handle {
	cli := sys.cfg.NewClient(core)
	cli.AdvanceClock(sys.ends.maxEnd())
	// Join the root's lane before it runs: under the parallel engine a lane
	// must be tracked before any other lane's frontier can pass its start
	// time (the caller starts roots while the system is quiescent).
	sys.cfg.Network.GateJoin(cli.EndpointID(), cli.Clock())
	proc := &Proc{PID: sys.pids.alloc(), Args: args, FS: cli, core: core, sys: sys}
	handle := newHandle(proc.PID)
	sys.trackProc(proc)
	go func() {
		status := fn(proc)
		cli.CloseAll()
		end := cli.Clock()
		sys.ends.record(end)
		sys.untrackProc(proc)
		sys.cfg.Network.GateIdle(cli.EndpointID())
		handle.finish(status, end)
	}()
	return handle
}

// Spawn implements fork (remote=false) and fork+exec with remote placement
// (remote=true).
func (sys *HareSystem) Spawn(parent *Proc, args []string, fn ProcFunc, remote bool) (*Handle, error) {
	parentCli, ok := parent.FS.(*client.Client)
	if !ok {
		return nil, fmt.Errorf("sched: HareSystem requires Hare clients, got %T", parent.FS)
	}
	forked, err := parentCli.CloneForFork(parent.core)
	if err != nil {
		return nil, err
	}
	childCli := forked.(*client.Client)
	pid := sys.pids.alloc()
	handle := newHandle(pid)
	// Join the child's lane from the parent's context: the parent's own
	// active frontier (<= the fork time) holds the safe-time floor, so the
	// join can never land behind the system.
	sys.cfg.Network.GateJoin(childCli.EndpointID(), childCli.Clock())

	if !remote {
		proc := &Proc{PID: pid, Args: args, FS: childCli, core: parent.core, sys: sys}
		sys.trackProc(proc)
		go func() {
			status := fn(proc)
			childCli.CloseAll()
			end := childCli.Clock()
			sys.ends.record(end)
			sys.untrackProc(proc)
			sys.cfg.Network.GateIdle(childCli.EndpointID())
			handle.finish(status, end)
		}()
		return handle, nil
	}

	target := sys.placer.pick(parent.core)
	srv, ok := sys.servers[target]
	if !ok {
		srv = sys.servers[parent.core]
	}
	if srv == nil {
		return nil, fmt.Errorf("sched: no scheduling server for core %d", target)
	}
	progID := sys.registerProgram(fn)

	// The forked child immediately execs: it exports its descriptor table,
	// sends the exec RPC, and turns into a proxy blocked on the reply,
	// which arrives when the remote process exits.
	go func() {
		specs, err := childCli.ExportFds()
		if err != nil {
			childCli.CloseAll()
			sys.ends.record(childCli.Clock())
			sys.cfg.Network.GateIdle(childCli.EndpointID())
			handle.finish(127, childCli.Clock())
			return
		}
		resp, err := childCli.RPCTo(srv.ep.ID, &proto.Request{
			Op:      proto.OpExec,
			Program: progID,
			Args:    args,
			Dirname: childCli.Getcwd(),
			Fds:     specs,
			PID:     pid,
		})
		status := 127
		if err == nil && resp != nil {
			status = int(resp.ExitStatus)
		}
		// The proxy exits: close its descriptors and report the remote
		// process's status to the parent.
		childCli.CloseAll()
		end := childCli.Clock()
		sys.ends.record(end)
		sys.cfg.Network.GateIdle(childCli.EndpointID())
		handle.finish(status, end)
	}()
	return handle, nil
}

// Signal delivers a signal to a process anywhere in the system; the paper
// routes signals through the proxy and scheduling server, which this
// reproduction simplifies to a direct cooperative flag.
func (sys *HareSystem) Signal(pid int64) bool {
	sys.procMu.Lock()
	defer sys.procMu.Unlock()
	p, ok := sys.procs[pid]
	if ok {
		p.Kill()
	}
	return ok
}

// Live returns the number of client processes currently running (spawned and
// not yet exited). The deployment consults it before swapping the
// virtual-time engine: switching with processes live would hand running
// lanes to a gate that never saw them join.
func (sys *HareSystem) Live() int {
	sys.procMu.Lock()
	defer sys.procMu.Unlock()
	return len(sys.procs)
}

func (sys *HareSystem) trackProc(p *Proc) {
	sys.procMu.Lock()
	sys.procs[p.PID] = p
	sys.procMu.Unlock()
}

func (sys *HareSystem) untrackProc(p *Proc) {
	sys.procMu.Lock()
	delete(sys.procs, p.PID)
	sys.procMu.Unlock()
}

// registerProgram stores a process body under a fresh id so the exec RPC can
// name it; the scheduling server claims it exactly once.
func (sys *HareSystem) registerProgram(fn ProcFunc) string {
	sys.progMu.Lock()
	defer sys.progMu.Unlock()
	sys.progSeq++
	id := fmt.Sprintf("prog-%d", sys.progSeq)
	sys.programs[id] = fn
	return id
}

// claimProgram removes and returns a registered program.
func (sys *HareSystem) claimProgram(id string) (ProcFunc, bool) {
	sys.progMu.Lock()
	defer sys.progMu.Unlock()
	fn, ok := sys.programs[id]
	if ok {
		delete(sys.programs, id)
	}
	return fn, ok
}

// run is the scheduling server loop.
func (s *schedServer) run() {
	defer close(s.done)
	for {
		env, ok := s.ep.Inbox.PopWait()
		if !ok {
			return
		}
		s.handle(env)
	}
}

func (s *schedServer) handle(env msg.Envelope) {
	req, err := proto.UnmarshalRequest(env.Payload)
	if err != nil {
		s.reply(env, proto.ErrResponse(fsapi.EINVAL), env.ArriveAt)
		return
	}
	cost := s.sys.cfg.Machine.Cost
	start := env.ArriveAt
	if now := s.clock.Now(); now > start {
		start = now
	}
	end := s.sys.cfg.Machine.Execute(s.core, start, cost.MsgRecv+cost.ServeExec)
	s.clock.AdvanceTo(end)

	switch req.Op {
	case proto.OpExec:
		s.handleExec(req, env, end)
	case proto.OpSignal:
		ok := s.sys.Signal(req.PID)
		resp := &proto.Response{}
		if !ok {
			resp.Err = fsapi.ENOENT
		}
		s.reply(env, resp, end)
	case proto.OpPing:
		s.reply(env, &proto.Response{}, end)
	default:
		s.reply(env, proto.ErrResponse(fsapi.ENOSYS), end)
	}
}

// handleExec spawns the requested program locally (the scheduling server
// forks itself and execs the target image, §3.5). The reply to the proxy is
// sent when the process exits.
func (s *schedServer) handleExec(req *proto.Request, env msg.Envelope, at sim.Cycles) {
	fn, ok := s.sys.claimProgram(req.Program)
	if !ok {
		s.reply(env, proto.ErrResponse(fsapi.ENOENT), at)
		return
	}
	cli := s.sys.cfg.NewClient(s.core)
	net := s.sys.cfg.Network
	if net.Gate() != nil {
		// Parallel engine: the proxy's frontier (<= its exec send time <= at)
		// still holds the safe-time floor, so join the child's lane at `at`
		// first, then park the proxy until the exit reply resumes it. The
		// clock moves before ImportFds so the child never sends behind its
		// own lane; serialized mode keeps the legacy order (import at the
		// fork-time clock) bit-identical.
		cli.AdvanceClock(at)
		net.GateJoin(cli.EndpointID(), at)
		net.GateIdle(env.Src)
	}
	cli.ImportFds(req.Fds)
	cli.SetCwd(req.Dirname)
	cli.AdvanceClock(at)

	proc := &Proc{PID: req.PID, Args: req.Args, FS: cli, core: s.core, sys: s.sys}
	s.sys.trackProc(proc)
	go func() {
		status := fn(proc)
		cli.CloseAll()
		end := cli.Clock()
		s.sys.ends.record(end)
		s.sys.untrackProc(proc)
		// Reply before idling the child's lane: the reply's Resume hands the
		// safe-time floor to the proxy, and the child's own frontier (<= end)
		// must hold it until then.
		s.reply(env, &proto.Response{ExitStatus: int32(status), PID: proc.PID}, end)
		net.GateIdle(cli.EndpointID())
	}()
}

func (s *schedServer) reply(env msg.Envelope, resp *proto.Response, at sim.Cycles) {
	s.sys.cfg.Network.Reply(s.ep, env, proto.KindResponse, resp.Marshal(), at)
}
