package sched

import (
	"sync"
	"testing"

	"repro/internal/baseline/ramfs"
	"repro/internal/fsapi"
	"repro/internal/sim"
)

// smpSystem builds an SMP process system over a fresh ramfs for tests that
// only need the generic process layer (the Hare-specific exec protocol is
// exercised end-to-end by internal/core and internal/workload tests).
func smpSystem(cores int) (*SMPSystem, *ramfs.FS) {
	machine := sim.NewMachine(sim.TopologyForCores(cores), sim.DefaultCostModel())
	fs := ramfs.New(machine)
	appCores := make([]int, cores)
	for i := range appCores {
		appCores[i] = i
	}
	sys := NewSMPSystem(SMPConfig{
		Machine:  machine,
		AppCores: appCores,
		Policy:   PolicyRoundRobin,
		NewClient: func(c int) fsapi.Client {
			return fs.NewClient(c)
		},
	})
	return sys, fs
}

func TestSMPStartRootAndWait(t *testing.T) {
	sys, _ := smpSystem(2)
	h := sys.StartRoot(0, []string{"root"}, func(p *Proc) int {
		p.Compute(1000)
		if p.Core() != 0 {
			return 1
		}
		if len(p.Args) != 1 || p.Args[0] != "root" {
			return 2
		}
		return 42
	})
	if status := h.Wait(); status != 42 {
		t.Fatalf("exit status %d", status)
	}
	if h.EndTime() == 0 {
		t.Fatal("end time not recorded")
	}
	if sys.MaxEndTime() < h.EndTime() {
		t.Fatal("MaxEndTime not updated")
	}
	if h.PID() == 0 {
		t.Fatal("pid not assigned")
	}
}

func TestSMPSpawnPlacementRoundRobin(t *testing.T) {
	sys, _ := smpSystem(4)
	var mu sync.Mutex
	cores := map[int]int{}
	h := sys.StartRoot(0, nil, func(p *Proc) int {
		var handles []*Handle
		for i := 0; i < 8; i++ {
			ch, err := p.Spawn(nil, func(wp *Proc) int {
				mu.Lock()
				cores[wp.Core()]++
				mu.Unlock()
				return 0
			}, true)
			if err != nil {
				return 1
			}
			handles = append(handles, ch)
		}
		for _, ch := range handles {
			ch.Wait()
		}
		return 0
	})
	if h.Wait() != 0 {
		t.Fatal("root failed")
	}
	if len(cores) != 4 {
		t.Fatalf("round robin used %d cores, want 4: %v", len(cores), cores)
	}
	for c, n := range cores {
		if n != 2 {
			t.Fatalf("core %d ran %d workers, want 2", c, n)
		}
	}
}

func TestSMPSpawnLocalKeepsCore(t *testing.T) {
	sys, _ := smpSystem(4)
	h := sys.StartRoot(2, nil, func(p *Proc) int {
		ch, err := p.Spawn(nil, func(wp *Proc) int {
			if wp.Core() != 2 {
				return 1
			}
			return 0
		}, false)
		if err != nil {
			return 1
		}
		return ch.Wait()
	})
	if h.Wait() != 0 {
		t.Fatal("local spawn moved cores")
	}
}

func TestSMPSpawnInheritsClockAndDescriptors(t *testing.T) {
	sys, _ := smpSystem(2)
	h := sys.StartRoot(0, nil, func(p *Proc) int {
		fd, err := p.FS.Open("/x", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
		if err != nil {
			return 1
		}
		if _, err := p.FS.Write(fd, []byte("parent")); err != nil {
			return 1
		}
		p.Compute(50_000)
		before := p.Now()
		ch, err := p.Spawn(nil, func(wp *Proc) int {
			// The child's clock starts after the parent's fork point.
			if wp.Now() < before {
				return 1
			}
			// The descriptor (and its offset) is shared.
			buf := make([]byte, 6)
			if _, err := wp.FS.Seek(fd, 0, fsapi.SeekSet); err != nil {
				return 2
			}
			if n, err := wp.FS.Read(fd, buf); err != nil || string(buf[:n]) != "parent" {
				return 3
			}
			return 0
		}, true)
		if err != nil {
			return 1
		}
		return ch.Wait()
	})
	if status := h.Wait(); status != 0 {
		t.Fatalf("child status %d", status)
	}
}

func TestProcKill(t *testing.T) {
	sys, _ := smpSystem(1)
	h := sys.StartRoot(0, nil, func(p *Proc) int {
		if p.Killed() {
			return 1
		}
		p.Kill()
		if !p.Killed() {
			return 2
		}
		return 0
	})
	if h.Wait() != 0 {
		t.Fatal("signal flag behaviour wrong")
	}
}

func TestPlacerPolicies(t *testing.T) {
	cores := []int{0, 1, 2, 3}
	rr := newPlacer(PolicyRoundRobin, cores, 0)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[rr.pick(0)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("round robin covered %d cores", len(seen))
	}

	local := newPlacer(PolicyLocal, cores, 0)
	if got := local.pick(2); got != 2 {
		t.Fatalf("local policy picked %d", got)
	}

	const randomSeed = 12345
	t.Logf("random-placer seed: %d", randomSeed)
	random := newPlacer(PolicyRandom, cores, randomSeed)
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		c := random.pick(0)
		if c < 0 || c > 3 {
			t.Fatalf("random picked invalid core %d", c)
		}
		counts[c]++
	}
	if len(counts) < 3 {
		t.Fatalf("random policy poorly spread: %v", counts)
	}

	empty := newPlacer(PolicyRoundRobin, nil, 0)
	if got := empty.pick(5); got != 5 {
		t.Fatalf("empty placer should stay local, got %d", got)
	}
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{
		PolicyRoundRobin: "round-robin",
		PolicyRandom:     "random",
		PolicyLocal:      "local",
		Policy(99):       "unknown",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("Policy(%d).String() = %q", p, p.String())
		}
	}
}

func TestEndTrackerAndPidAllocator(t *testing.T) {
	var tr endTracker
	tr.record(100)
	tr.record(50)
	if tr.maxEnd() != 100 {
		t.Fatalf("maxEnd = %d", tr.maxEnd())
	}
	var pids pidAllocator
	a, b := pids.alloc(), pids.alloc()
	if a == b || a == 0 || b == 0 {
		t.Fatalf("pid allocation broken: %d %d", a, b)
	}
}

func TestHandleWaitIsReusable(t *testing.T) {
	h := newHandle(1)
	go h.finish(7, 1234)
	if h.Wait() != 7 || h.Wait() != 7 {
		t.Fatal("Wait should return the same status every time")
	}
	if h.EndTime() != 1234 {
		t.Fatal("EndTime wrong")
	}
}
