package sched

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/sim"
)

// SMPConfig configures the shared-memory process system used by the baseline
// file systems (Linux ramfs/tmpfs and the user-space NFS server). A
// traditional cache-coherent kernel creates and migrates processes cheaply;
// the only cost modelled is a small fork/exec overhead.
type SMPConfig struct {
	Machine  *sim.Machine
	AppCores []int
	Policy   Policy
	Seed     uint64

	// NewClient builds a process's file system client pinned to a core
	// (used for root processes and for backends without shared
	// descriptors).
	NewClient func(core int) fsapi.Client

	// SpawnCost is the virtual cost of fork+exec on the shared-memory OS.
	SpawnCost sim.Cycles
}

// SMPSystem implements System for cache-coherent shared-memory baselines.
type SMPSystem struct {
	cfg    SMPConfig
	placer *placer
	pids   pidAllocator
	ends   endTracker
}

// NewSMPSystem creates the baseline process system.
func NewSMPSystem(cfg SMPConfig) *SMPSystem {
	if cfg.SpawnCost == 0 {
		cfg.SpawnCost = 20000 // ~8µs for fork+exec+scheduling
	}
	return &SMPSystem{cfg: cfg, placer: newPlacer(cfg.Policy, cfg.AppCores, cfg.Seed)}
}

// MaxEndTime returns the latest process completion time seen so far.
func (sys *SMPSystem) MaxEndTime() sim.Cycles { return sys.ends.maxEnd() }

// StartRoot launches an initial process on the given core. Its virtual clock
// starts at the latest completion time observed so far so that consecutive
// root processes compose in virtual time.
func (sys *SMPSystem) StartRoot(core int, args []string, fn ProcFunc) *Handle {
	cli := sys.cfg.NewClient(core)
	if ck, ok := cli.(Clocked); ok {
		ck.AdvanceClock(sys.ends.maxEnd())
	}
	proc := &Proc{PID: sys.pids.alloc(), Args: args, FS: cli, core: core, sys: sys}
	handle := newHandle(proc.PID)
	go func() {
		status := fn(proc)
		end := sys.finishProc(proc)
		handle.finish(status, end)
	}()
	return handle
}

// Spawn forks a child. With remote placement the child lands on a core
// chosen by the policy; descriptor sharing uses the backend's fork support
// when available (ramfs), and falls back to a fresh client otherwise (the
// NFS baseline, which cannot share descriptors across clients).
func (sys *SMPSystem) Spawn(parent *Proc, args []string, fn ProcFunc, remote bool) (*Handle, error) {
	core := parent.core
	if remote {
		core = sys.placer.pick(parent.core)
	}
	var childFS fsapi.Client
	if forker, ok := parent.FS.(fsapi.Forker); ok {
		child, err := forker.CloneForFork(core)
		if err != nil {
			return nil, fmt.Errorf("sched: fork failed: %w", err)
		}
		childFS = child
	} else {
		childFS = sys.cfg.NewClient(core)
	}
	if ck, ok := childFS.(Clocked); ok {
		start := parent.Now() + sys.cfg.SpawnCost
		ck.AdvanceClock(start)
	}
	proc := &Proc{PID: sys.pids.alloc(), Args: args, FS: childFS, core: core, sys: sys}
	handle := newHandle(proc.PID)
	go func() {
		status := fn(proc)
		end := sys.finishProc(proc)
		handle.finish(status, end)
	}()
	return handle, nil
}

// finishProc closes the process's descriptors and records its end time.
func (sys *SMPSystem) finishProc(p *Proc) sim.Cycles {
	type closer interface{ CloseAll() }
	if c, ok := p.FS.(closer); ok {
		c.CloseAll()
	}
	end := p.Now()
	sys.ends.record(end)
	return end
}
