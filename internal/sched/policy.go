package sched

import "sync/atomic"

// Policy selects the core on which an exec'd process runs (§3.5). The paper
// evaluates a random policy and a round-robin policy; round-robin state is
// propagated so successive execs spread across cores.
type Policy int

// Placement policies.
const (
	// PolicyRoundRobin cycles through the application cores.
	PolicyRoundRobin Policy = iota
	// PolicyRandom picks a core pseudo-randomly.
	PolicyRandom
	// PolicyLocal always stays on the caller's core.
	PolicyLocal
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyRandom:
		return "random"
	case PolicyLocal:
		return "local"
	default:
		return "unknown"
	}
}

// placer implements placement over a fixed set of eligible cores.
type placer struct {
	policy Policy
	cores  []int
	next   atomic.Uint64
	seed   atomic.Uint64
}

func newPlacer(policy Policy, cores []int, seed uint64) *placer {
	p := &placer{policy: policy, cores: cores}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	p.seed.Store(seed)
	return p
}

// pick returns the core for the next exec originating from the given core.
func (p *placer) pick(from int) int {
	if len(p.cores) == 0 {
		return from
	}
	switch p.policy {
	case PolicyLocal:
		return from
	case PolicyRandom:
		// xorshift* pseudo-random sequence; deterministic per run.
		for {
			old := p.seed.Load()
			x := old
			x ^= x >> 12
			x ^= x << 25
			x ^= x >> 27
			if p.seed.CompareAndSwap(old, x) {
				return p.cores[(x*0x2545F4914F6CDD1D)>>33%uint64(len(p.cores))]
			}
		}
	default: // round robin
		n := p.next.Add(1) - 1
		return p.cores[n%uint64(len(p.cores))]
	}
}
