package place

import (
	"testing"
)

// keySeed seeds the deterministic pseudo-random key stream the property
// tests route through the placement maps.
const keySeed = uint64(0x9E3779B97F4A7C15)

// keys generates n deterministic pseudo-random keys (the tests must be
// reproducible across runs). The seed lands in the test log so a failure is
// replayable as-is.
func keys(t *testing.T, n int) []uint64 {
	t.Helper()
	t.Logf("placement key-stream seed: %#x (n=%d)", keySeed, n)
	out := make([]uint64, n)
	state := keySeed
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = state
	}
	return out
}

// TestModuloBitForBit pins PolicyModulo to the paper's routing: over the
// contiguous boot-time member set, Route(k) must equal k % N exactly, so the
// placement layer is a pure refactor in the static case.
func TestModuloBitForBit(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 40} {
		m := Initial(PolicyModulo, n)
		if m.Epoch() != 1 {
			t.Fatalf("initial epoch = %d, want 1", m.Epoch())
		}
		for _, k := range keys(t, 5000) {
			if got, want := m.Route(k), int32(k%uint64(n)); got != want {
				t.Fatalf("n=%d key=%d: Route=%d, want %d", n, k, got, want)
			}
		}
	}
}

// TestRingBalance checks the consistent-hashing ring stays balanced at the
// default 64 vnodes: with many keys, no member's share exceeds 1.6x the mean
// and none falls below 0.5x.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		m := Initial(PolicyRing, n)
		counts := make(map[int32]int)
		ks := keys(t, 40000)
		for _, k := range ks {
			counts[m.Route(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members received keys", n, len(counts))
		}
		mean := float64(len(ks)) / float64(n)
		for id, c := range counts {
			ratio := float64(c) / mean
			if ratio > 1.6 || ratio < 0.5 {
				t.Fatalf("n=%d: server %d holds %.2fx the mean load (want within [0.5, 1.6])", n, id, ratio)
			}
		}
	}
}

// TestRingMembershipMovesBoundedKeys checks the consistent-hashing
// contract: adding one server to an N-member ring moves at most 2/(N+1) of
// the keys, and every moved key lands on the new server; removing a server
// moves exactly the removed server's keys.
func TestRingMembershipMovesBoundedKeys(t *testing.T) {
	const n = 8
	old := Initial(PolicyRing, n)
	grown := old.Add(int32(n))
	if grown.Epoch() != old.Epoch()+1 {
		t.Fatalf("Add epoch = %d, want %d", grown.Epoch(), old.Epoch()+1)
	}
	ks := keys(t, 40000)
	moved := 0
	for _, k := range ks {
		a, b := old.Route(k), grown.Route(k)
		if a != b {
			moved++
			if b != int32(n) {
				t.Fatalf("key %d moved from %d to %d, not to the new server", k, a, b)
			}
		}
	}
	bound := 2 * len(ks) / (n + 1)
	if moved > bound {
		t.Fatalf("add moved %d/%d keys, bound is %d (2/(N+1))", moved, len(ks), bound)
	}
	if moved == 0 {
		t.Fatal("add moved no keys; the new server receives no load")
	}

	// Removing the server we just added must move exactly its keys back,
	// and nothing else.
	shrunk := grown.Remove(int32(n))
	for _, k := range ks {
		if grown.Route(k) != int32(n) && shrunk.Route(k) != grown.Route(k) {
			t.Fatalf("key %d moved although its owner %d was not removed", k, grown.Route(k))
		}
		if grown.Route(k) == int32(n) && shrunk.Route(k) == int32(n) {
			t.Fatalf("key %d still routes to the removed server", k)
		}
	}
}

// TestModuloMovesAlmostEverything documents why modulo cannot scale online:
// a membership change reshuffles the bulk of the key space. (Not a bug; the
// contrast with the ring is the point of the policy split.)
func TestModuloMovesAlmostEverything(t *testing.T) {
	old := Initial(PolicyModulo, 8)
	grown := old.Add(8)
	ks := keys(t, 20000)
	moved := 0
	for _, k := range ks {
		if old.Route(k) != grown.Route(k) {
			moved++
		}
	}
	if frac := float64(moved) / float64(len(ks)); frac < 0.5 {
		t.Fatalf("modulo add moved only %.0f%% of keys; expected the bulk to move", frac*100)
	}
}

// TestEncodeDecodeRoundTrip checks the wire form reproduces the routing
// function exactly (servers decode the map from SHARD_PULL/COMMIT payloads
// and must agree with the orchestrator on every route).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, policy := range []Policy{PolicyModulo, PolicyRing} {
		m := New(policy, []int32{0, 2, 3, 7}, 9)
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("%v: decode: %v", policy, err)
		}
		if got.Epoch() != m.Epoch() || got.Policy() != m.Policy() || got.NumMembers() != m.NumMembers() {
			t.Fatalf("%v: header mismatch after round trip", policy)
		}
		for _, k := range keys(t, 5000) {
			if got.Route(k) != m.Route(k) {
				t.Fatalf("%v: decoded map routes key %d to %d, original to %d", policy, k, got.Route(k), m.Route(k))
			}
		}
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated map decoded without error")
	}
}

// TestContains exercises membership lookup over a sparse member set.
func TestContains(t *testing.T) {
	m := New(PolicyRing, []int32{0, 2, 5}, 3)
	for id, want := range map[int32]bool{0: true, 1: false, 2: true, 3: false, 5: true, 6: false} {
		if m.Contains(id) != want {
			t.Fatalf("Contains(%d) = %v, want %v", id, m.Contains(id), want)
		}
	}
}
