// Package place is the placement layer: it decides which file server stores
// each directory-entry shard of a distributed directory.
//
// The paper pins the server count at boot and routes entries with
// hash(dir, name) % NSERVERS. This package extracts that decision into a
// first-class, epoch-versioned Map so the deployment can grow and shrink
// while running (DESIGN.md §9): every map carries a monotonically increasing
// epoch, requests are stamped with the epoch they were routed under, and a
// server that has moved on answers EEPOCH so the client refreshes its cached
// map and retries. Two policies are provided:
//
//   - PolicyModulo reproduces the paper's routing bit-for-bit when the
//     member set is the contiguous range [0, N): hash % N. Membership
//     changes under modulo reshuffle almost every key (the reason the paper
//     cannot scale online).
//   - PolicyRing is consistent hashing with virtual nodes: adding one server
//     to an N-server ring moves only ~1/(N+1) of the keys, all of them onto
//     the new server, so elastic scaling has bounded data movement.
//
// Inodes are NOT placed by this package and never migrate: an InodeID
// permanently names (server, local). Only directory-entry shards move.
package place

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Policy selects how a Map assigns keys to member servers.
type Policy uint8

// Placement policies.
const (
	// PolicyModulo is the paper's static routing: key % members. Cheap and
	// perfectly balanced, but a membership change moves ~(N-1)/N of all keys.
	PolicyModulo Policy = iota
	// PolicyRing is consistent hashing over virtual nodes: a membership
	// change of one server moves only ~1/N of the keys.
	PolicyRing
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyModulo:
		return "modulo"
	case PolicyRing:
		return "ring"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// DefaultVnodes is the number of virtual nodes each member contributes to a
// ring map. 64 keeps the max/mean load ratio within ~1.5 at realistic member
// counts (see the balance property test) while the ring stays small enough
// to rebuild on every membership change.
const DefaultVnodes = 64

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash   uint64
	server int32
}

// Map is one immutable epoch of the placement function: it routes a key (the
// directory-entry hash) to a member server. Maps are value-like: membership
// changes produce a new Map with the next epoch via Add/Remove.
type Map struct {
	epoch   uint64
	policy  Policy
	vnodes  int
	members []int32 // sorted ascending
	ring    []ringPoint
	// lut buckets the ring by the top bits of the key: lut[b] is the index
	// of the first virtual node whose hash >= b<<lutShift. Route starts at
	// that index and scans forward, turning the per-key binary search into a
	// constant-time lookup plus a walk of ~1 ring point on average.
	lut      []int32
	lutShift uint
}

// New builds a map at the given epoch. Members are copied, sorted, and
// deduplicated; epochs start at 1 by convention (0 on the wire means "not
// routed through a placement map").
func New(policy Policy, members []int32, epoch uint64) *Map {
	m := &Map{epoch: epoch, policy: policy, vnodes: DefaultVnodes}
	seen := make(map[int32]bool, len(members))
	for _, id := range members {
		if !seen[id] {
			seen[id] = true
			m.members = append(m.members, id)
		}
	}
	sort.Slice(m.members, func(i, j int) bool { return m.members[i] < m.members[j] })
	m.buildRing()
	return m
}

// Initial builds the boot-time map (epoch 1) over servers [0, n).
func Initial(policy Policy, n int) *Map {
	members := make([]int32, n)
	for i := range members {
		members[i] = int32(i)
	}
	return New(policy, members, 1)
}

// buildRing materializes the virtual-node ring for PolicyRing.
func (m *Map) buildRing() {
	if m.policy != PolicyRing {
		m.ring, m.lut = nil, nil
		return
	}
	m.ring = make([]ringPoint, 0, len(m.members)*m.vnodes)
	for _, id := range m.members {
		for r := 0; r < m.vnodes; r++ {
			h := mix64(uint64(uint32(id))<<32 | uint64(r))
			m.ring = append(m.ring, ringPoint{hash: h, server: id})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].hash != m.ring[j].hash {
			return m.ring[i].hash < m.ring[j].hash
		}
		return m.ring[i].server < m.ring[j].server
	})
	m.buildLUT()
}

// buildLUT precomputes the bucket table over the sorted ring. With ~2 buckets
// per virtual node (capped at 1<<20 buckets) each bucket covers at most a few
// ring points, so Route's forward scan is O(1) expected.
func (m *Map) buildLUT() {
	if len(m.ring) == 0 {
		m.lut = nil
		return
	}
	n := 1
	for n < 2*len(m.ring) && n < 1<<20 {
		n *= 2
	}
	shift := uint(64)
	for 1<<(64-shift) < n {
		shift--
	}
	m.lutShift = shift
	m.lut = make([]int32, n)
	i := 0
	for b := 0; b < n; b++ {
		lo := uint64(b) << shift
		for i < len(m.ring) && m.ring[i].hash < lo {
			i++
		}
		m.lut[b] = int32(i)
	}
}

// mix64 is SplitMix64's finalizer: a cheap, well-distributed 64-bit mixer
// used to spread virtual nodes around the ring.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Epoch returns the map's version.
func (m *Map) Epoch() uint64 { return m.epoch }

// Policy returns the map's placement policy.
func (m *Map) Policy() Policy { return m.policy }

// Members returns a copy of the member server ids (sorted).
func (m *Map) Members() []int32 {
	out := make([]int32, len(m.members))
	copy(out, m.members)
	return out
}

// MembersRef returns the map's own member slice (sorted ascending) without
// copying. The caller must treat it as read-only; it is shared with every
// other caller and with the map's routing state.
func (m *Map) MembersRef() []int32 { return m.members }

// NumMembers returns the number of member servers.
func (m *Map) NumMembers() int { return len(m.members) }

// Contains reports whether server id is a member.
func (m *Map) Contains(id int32) bool {
	i := sort.Search(len(m.members), func(i int) bool { return m.members[i] >= id })
	return i < len(m.members) && m.members[i] == id
}

// Route returns the member server that owns key. It panics on an empty map
// (a deployment always has at least one server).
func (m *Map) Route(key uint64) int32 {
	if len(m.members) == 0 {
		panic("place: routing on an empty map")
	}
	if m.policy == PolicyRing {
		// Re-mix the key before placing it on the ring: the entry hash
		// (FNV-1a) differs mostly in low bits for similar names, which
		// modulo tolerates but a ring — which uses the value as a
		// *position* — does not; unmixed, sequential names cluster on one
		// arc and defeat both balance and bounded movement.
		key = mix64(key)
		// First virtual node clockwise from the key, wrapping at the top:
		// the bucket table lands within a few points of the answer and the
		// scan finishes the job without a binary search.
		i := int(m.lut[key>>m.lutShift])
		for i < len(m.ring) && m.ring[i].hash < key {
			i++
		}
		if i == len(m.ring) {
			i = 0
		}
		return m.ring[i].server
	}
	// Modulo over the sorted member list; for the contiguous boot-time set
	// [0, N) this is exactly the paper's hash % NSERVERS.
	return m.members[key%uint64(len(m.members))]
}

// Add returns the next epoch's map with server id joined.
func (m *Map) Add(id int32) *Map {
	return New(m.policy, append(m.Members(), id), m.epoch+1)
}

// WithEpoch returns a copy of the map at the given epoch with unchanged
// membership. Failover promotions use it to advance the epoch — forcing
// every client through an EEPOCH refresh onto the promoted server — without
// a membership change (DESIGN.md §12).
func (m *Map) WithEpoch(e uint64) *Map {
	return New(m.policy, m.Members(), e)
}

// Remove returns the next epoch's map with server id drained out.
func (m *Map) Remove(id int32) *Map {
	members := make([]int32, 0, len(m.members))
	for _, s := range m.members {
		if s != id {
			members = append(members, s)
		}
	}
	return New(m.policy, members, m.epoch+1)
}

// Encode serializes the map for the wire (SHARD_PULL/SHARD_COMMIT payloads)
// and for write-ahead-log epoch records.
func (m *Map) Encode() []byte {
	buf := make([]byte, 0, 16+4*len(m.members))
	buf = binary.LittleEndian.AppendUint64(buf, m.epoch)
	buf = append(buf, uint8(m.policy))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.vnodes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.members)))
	for _, id := range m.members {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	return buf
}

// Decode parses an encoded map.
func Decode(b []byte) (*Map, error) {
	if len(b) < 17 {
		return nil, fmt.Errorf("place: truncated map (%d bytes)", len(b))
	}
	epoch := binary.LittleEndian.Uint64(b)
	policy := Policy(b[8])
	vnodes := int(binary.LittleEndian.Uint32(b[9:]))
	n := int(binary.LittleEndian.Uint32(b[13:]))
	if vnodes <= 0 || n < 0 || len(b) < 17+4*n {
		return nil, fmt.Errorf("place: corrupt map encoding")
	}
	members := make([]int32, n)
	for i := 0; i < n; i++ {
		members[i] = int32(binary.LittleEndian.Uint32(b[17+4*i:]))
	}
	m := New(policy, members, epoch)
	m.vnodes = vnodes
	m.buildRing()
	return m, nil
}
