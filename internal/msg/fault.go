package msg

import (
	"sync/atomic"

	"repro/internal/sim"
)

// FaultPlan injects deterministic message-level faults into a Network: seeded
// delivery-latency jitter (which, combined with the servers'
// arrival-time-ordered inbox draining, produces bounded reordering of
// concurrent requests) and duplicate delivery of idempotent requests
// (DESIGN.md §10).
//
// Every fault decision is a pure function of the plan's seed and the
// message's own coordinates (endpoints, kind, payload bytes, send time) —
// never of shared mutable state — so the faults a given message suffers do
// not depend on the real-time order in which concurrent goroutines reach the
// network. The same message in the same virtual state is faulted the same
// way on every run.
type FaultPlan struct {
	// Seed keys the per-message fault hash.
	Seed uint64

	// MaxDelay bounds the extra delivery latency added to a delayed
	// message, in cycles. The added delay is uniform in [1, MaxDelay].
	// Because servers serve their inbox in arrival-time order, a delayed
	// request can be overtaken by at most the requests that arrive inside
	// its delay window: reordering is bounded by MaxDelay.
	MaxDelay sim.Cycles
	// DelayPercent is the percentage (0-100) of request and reply messages
	// that receive extra latency.
	DelayPercent int

	// DupPercent is the percentage (0-100) of eligible request messages
	// delivered twice. The duplicate carries the same payload and reply
	// queue and arrives strictly after the original; the extra reply is
	// abandoned with its queue. Only requests DupOK approves are eligible:
	// the network cannot know which operations are idempotent, so the
	// caller supplies the classifier (the chaos harness approves the
	// read-only protocol ops).
	DupPercent int
	// DupOK reports whether a request message may be delivered twice. A nil
	// DupOK disables duplication.
	DupOK func(kind uint16, payload []byte) bool
}

// FaultStats counts the faults a network has injected.
type FaultStats struct {
	Delayed    uint64
	Duplicated uint64
}

// SetFaultPlan installs (or, with nil, removes) the network's fault plan.
// It may be called at any time; in-flight messages are unaffected.
func (n *Network) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		n.faults.Store((*faultState)(nil))
		return
	}
	n.faults.Store(&faultState{plan: *p})
}

// FaultStats returns how many faults the current plan has injected since it
// was installed. A nil plan reports zeroes.
func (n *Network) FaultStats() FaultStats {
	fs := n.faults.Load()
	if fs == nil {
		return FaultStats{}
	}
	return FaultStats{Delayed: fs.delayed.Load(), Duplicated: fs.duplicated.Load()}
}

// faultState pairs an immutable plan with its injection counters.
type faultState struct {
	plan       FaultPlan
	delayed    atomic.Uint64
	duplicated atomic.Uint64
}

// hash mixes the message coordinates with the plan seed and a salt (one salt
// per decision, so the delay decision and the duplication decision of the
// same message are independent). FNV-1a over the payload, then a SplitMix64
// finalizer for avalanche.
func (fs *faultState) hash(salt uint64, src, dst EndpointID, kind uint16, payload []byte, sentAt sim.Cycles) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	mix(fs.plan.Seed)
	mix(salt)
	mix(uint64(src))
	mix(uint64(dst))
	mix(uint64(kind))
	mix(uint64(sentAt))
	for _, b := range payload {
		h ^= uint64(b)
		h *= fnvPrime
	}
	// SplitMix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// delay returns the extra latency for a message (zero for most).
func (fs *faultState) delay(src, dst EndpointID, kind uint16, payload []byte, sentAt sim.Cycles) sim.Cycles {
	p := &fs.plan
	if p.DelayPercent <= 0 || p.MaxDelay <= 0 {
		return 0
	}
	h := fs.hash(1, src, dst, kind, payload, sentAt)
	if int(h%100) >= p.DelayPercent {
		return 0
	}
	fs.delayed.Add(1)
	return 1 + sim.Cycles((h>>32)%uint64(p.MaxDelay))
}

// dupDelay returns (extra delay for the duplicate, true) when the message
// should be delivered twice.
func (fs *faultState) dupDelay(src, dst EndpointID, kind uint16, payload []byte, sentAt sim.Cycles) (sim.Cycles, bool) {
	p := &fs.plan
	if p.DupPercent <= 0 || p.DupOK == nil || !p.DupOK(kind, payload) {
		return 0, false
	}
	h := fs.hash(2, src, dst, kind, payload, sentAt)
	if int(h%100) >= p.DupPercent {
		return 0, false
	}
	fs.duplicated.Add(1)
	extra := sim.Cycles(1)
	if p.MaxDelay > 0 {
		extra += sim.Cycles((h >> 32) % uint64(p.MaxDelay))
	}
	return extra, true
}
