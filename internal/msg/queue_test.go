package msg

import (
	"testing"

	"repro/internal/sim"
)

// The queue's two drain disciplines share one heap; these tests pin the
// ordering contracts and the memory behavior the heap rewrite exists for.

func TestPopWaitEarliestOrdersByArrival(t *testing.T) {
	q := NewQueue()
	arrivals := []sim.Cycles{900, 100, 500, 100, 700, 300}
	for i, at := range arrivals {
		q.Push(Envelope{Kind: uint16(i), ArriveAt: at})
	}
	// Expect ascending arrival time, ties in push order: 100(#1), 100(#3),
	// 300(#5), 500(#2), 700(#4), 900(#0).
	wantKinds := []uint16{1, 3, 5, 2, 4, 0}
	for i, want := range wantKinds {
		e, ok := q.PopWaitEarliest()
		if !ok || e.Kind != want {
			t.Fatalf("pop %d: got kind %d ok=%v, want %d", i, e.Kind, ok, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

func TestQueueModeSwitchKeepsOrdering(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 8; i++ {
		q.Push(Envelope{Kind: uint16(i), ArriveAt: sim.Cycles(800 - 100*i)})
	}
	// Arrival order first: latest pushes arrived earliest.
	e, _ := q.PopWaitEarliest()
	if e.Kind != 7 {
		t.Fatalf("earliest pop got kind %d, want 7", e.Kind)
	}
	// Switch to FIFO: the oldest push still in the queue comes out.
	e, _ = q.TryPop()
	if e.Kind != 0 {
		t.Fatalf("FIFO pop after mode switch got kind %d, want 0", e.Kind)
	}
	// And back to arrival order.
	e, _ = q.PopWaitEarliest()
	if e.Kind != 6 {
		t.Fatalf("earliest pop after switch back got kind %d, want 6", e.Kind)
	}
}

func TestQueueReleasesPoppedPayloads(t *testing.T) {
	q := NewQueue()
	const n = 64
	for i := 0; i < n; i++ {
		q.Push(Envelope{Payload: make([]byte, 1024)})
	}
	for i := 0; i < n; i++ {
		if _, ok := q.TryPop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
	// The backing array must hold no references to the popped payloads (the
	// old reslice-based queue kept every popped envelope reachable until the
	// array was abandoned).
	for i, it := range q.items[:cap(q.items)] {
		if it.env.Payload != nil {
			t.Fatalf("slot %d still references a popped payload", i)
		}
	}
}

func TestQueueSteadyStateDoesNotGrow(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 16; i++ {
		q.Push(Envelope{ArriveAt: sim.Cycles(i)})
	}
	q.PopWaitEarliest() // enter arrival mode
	grown := 0
	for i := 0; i < 10_000; i++ {
		q.Push(Envelope{ArriveAt: sim.Cycles(i)})
		if _, ok := q.PopWaitEarliest(); !ok {
			t.Fatal("pop failed")
		}
		if cap(q.items) > 64 {
			grown++
		}
	}
	if grown > 0 {
		t.Fatalf("backing array grew during steady-state push/pop (%d iterations over cap)", grown)
	}
}

// benchQueueFill pre-fills a queue with n envelopes at pseudo-random
// arrival times.
func benchQueueFill(n int) *Queue {
	q := NewQueue()
	r := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		q.Push(Envelope{ArriveAt: sim.Cycles(r % 100_000)})
	}
	return q
}

// BenchmarkQueuePopWaitEarliest measures the server-inbox drain discipline
// at a steady queue depth of 1024: one push plus one earliest-pop per
// iteration. The heap makes this O(log n) a pop; the previous linear scan +
// splice was O(n).
func BenchmarkQueuePopWaitEarliest(b *testing.B) {
	q := benchQueueFill(1024)
	r := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		q.Push(Envelope{ArriveAt: sim.Cycles(r % 100_000)})
		if _, ok := q.PopWaitEarliest(); !ok {
			b.Fatal("pop failed")
		}
	}
}

// BenchmarkQueueFIFO measures the reply-queue discipline (push then pop, the
// RPC pattern) — it must stay allocation-free at steady state now that
// popped slots are zeroed in place instead of resliced away.
func BenchmarkQueueFIFO(b *testing.B) {
	q := NewQueue()
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(Envelope{Payload: payload})
		if _, ok := q.TryPop(); !ok {
			b.Fatal("pop failed")
		}
	}
}
