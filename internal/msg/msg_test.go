package msg

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

func testNetwork(cores int) (*Network, *sim.Machine) {
	m := sim.NewMachine(sim.TopologyForCores(cores), sim.DefaultCostModel())
	return NewNetwork(WrapMachine(m)), m
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 10; i++ {
		q.Push(Envelope{Kind: uint16(i)})
	}
	if q.Len() != 10 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 10; i++ {
		e, ok := q.TryPop()
		if !ok || e.Kind != uint16(i) {
			t.Fatalf("pop %d: got %v %v", i, e.Kind, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("empty queue returned an envelope")
	}
}

func TestQueuePopWaitAndClose(t *testing.T) {
	q := NewQueue()
	done := make(chan Envelope, 1)
	go func() {
		e, ok := q.PopWait()
		if !ok {
			t.Error("PopWait returned closed before close")
		}
		done <- e
	}()
	q.Push(Envelope{Kind: 42})
	if e := <-done; e.Kind != 42 {
		t.Fatalf("got kind %d", e.Kind)
	}

	q.Close()
	if _, ok := q.PopWait(); ok {
		t.Fatal("PopWait on closed empty queue should report closed")
	}
	if !q.Closed() {
		t.Fatal("Closed() = false")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := NewQueue()
	const producers, per = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(Envelope{})
			}
		}()
	}
	wg.Wait()
	if q.Len() != producers*per {
		t.Fatalf("len = %d, want %d", q.Len(), producers*per)
	}
}

func TestSendAtomicDelivery(t *testing.T) {
	n, _ := testNetwork(4)
	a := n.NewEndpoint(0)
	b := n.NewEndpoint(1)
	arrive, err := n.Send(a, b.ID, 1, []byte("hi"), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Atomic delivery: the message must already be in b's inbox.
	env, ok := b.Inbox.TryPop()
	if !ok {
		t.Fatal("message not in receiver queue after Send returned")
	}
	if env.ArriveAt != arrive || env.ArriveAt <= env.SentAt {
		t.Fatalf("arrival time %d not after send time %d", env.ArriveAt, env.SentAt)
	}
	if n.MessageCount() != 1 || n.ByteCount() != 2 {
		t.Fatal("stats not recorded")
	}
}

func TestSendUnknownEndpoint(t *testing.T) {
	n, _ := testNetwork(2)
	a := n.NewEndpoint(0)
	if _, err := n.Send(a, EndpointID(99), 1, nil, 0, nil); err == nil {
		t.Fatal("send to unknown endpoint should fail")
	}
	if _, err := n.SendCallback(a, EndpointID(99), 1, nil, 0); err == nil {
		t.Fatal("callback to unknown endpoint should fail")
	}
}

func TestLatencyDependsOnDistance(t *testing.T) {
	n, m := testNetwork(40)
	src := n.NewEndpoint(0)
	sameSock := n.NewEndpoint(1)
	crossSock := n.NewEndpoint(39)
	if m.Topo.Distance(0, 39) != sim.DistCrossSocket {
		t.Skip("topology does not cross sockets")
	}
	a1, _ := n.Send(src, sameSock.ID, 1, nil, 0, nil)
	a2, _ := n.Send(src, crossSock.ID, 1, nil, 0, nil)
	if a2 <= a1 {
		t.Fatalf("cross-socket latency (%d) should exceed same-socket (%d)", a2, a1)
	}
}

func TestCallbackQueueSeparate(t *testing.T) {
	n, _ := testNetwork(2)
	a := n.NewEndpoint(0)
	b := n.NewEndpoint(1)
	if _, err := n.SendCallback(a, b.ID, 3, []byte("inv"), 0); err != nil {
		t.Fatal(err)
	}
	if b.Inbox.Len() != 0 {
		t.Fatal("callback landed in the request inbox")
	}
	if b.Callbacks.Len() != 1 {
		t.Fatal("callback queue empty")
	}
	if n.CallbackCount() != 1 {
		t.Fatal("callback count wrong")
	}
}

func TestRPCAndReply(t *testing.T) {
	n, _ := testNetwork(2)
	cli := n.NewEndpoint(0)
	srv := n.NewEndpoint(1)

	go func() {
		env, ok := srv.Inbox.PopWait()
		if !ok {
			return
		}
		n.Reply(srv, env, 2, []byte("pong"), env.ArriveAt+100)
	}()

	env, err := n.RPC(cli, srv.ID, 1, []byte("ping"), 50)
	if err != nil {
		t.Fatal(err)
	}
	if string(env.Payload) != "pong" {
		t.Fatalf("payload %q", env.Payload)
	}
	if env.ArriveAt <= 150 {
		t.Fatalf("reply arrival %d should include both directions of latency", env.ArriveAt)
	}
}

func TestBroadcastParallelVsSequential(t *testing.T) {
	n, _ := testNetwork(8)
	cli := n.NewEndpoint(0)
	const nsrv = 4
	var servers []EndpointID
	for i := 0; i < nsrv; i++ {
		srv := n.NewEndpoint(i + 1)
		servers = append(servers, srv.ID)
		go func(ep *Endpoint) {
			for {
				env, ok := ep.Inbox.PopWait()
				if !ok {
					return
				}
				// Each server takes 1000 cycles of service time.
				n.Reply(ep, env, 2, nil, env.ArriveAt+1000)
			}
		}(srv)
	}

	maxArrive := func(results []BroadcastResult) sim.Cycles {
		var max sim.Cycles
		for _, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if r.Env.ArriveAt > max {
				max = r.Env.ArriveAt
			}
		}
		return max
	}

	par := maxArrive(n.Broadcast(cli, servers, 1, nil, 0, true))
	seq := maxArrive(n.Broadcast(cli, servers, 1, nil, 0, false))
	if par >= seq {
		t.Fatalf("parallel broadcast (%d) should complete before sequential (%d)", par, seq)
	}
}

func TestReplyWithoutQueueIsNoop(t *testing.T) {
	n, _ := testNetwork(2)
	a := n.NewEndpoint(0)
	// Envelope with no reply queue: Reply must not panic.
	n.Reply(a, Envelope{Src: a.ID}, 1, nil, 0)
}

func TestSendAsyncAwait(t *testing.T) {
	n, _ := testNetwork(2)
	cli := n.NewEndpoint(0)
	srv := n.NewEndpoint(1)

	go func() {
		for i := 0; i < 2; i++ {
			env, ok := srv.Inbox.PopWait()
			if !ok {
				return
			}
			n.Reply(srv, env, 2, env.Payload, env.ArriveAt+500)
		}
	}()

	// Two overlapping requests; harvest out of order.
	f1, err := n.SendAsync(cli, srv.ID, 1, []byte("a"), 100)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := n.SendAsync(cli, srv.ID, 1, []byte("b"), 200)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := f2.Await()
	if err != nil {
		t.Fatal(err)
	}
	e1, err := f1.Await()
	if err != nil {
		t.Fatal(err)
	}
	if string(e1.Payload) != "a" || string(e2.Payload) != "b" {
		t.Fatalf("replies crossed: %q %q", e1.Payload, e2.Payload)
	}
	if f1.SentAt != 100 || f2.SentAt != 200 {
		t.Fatalf("futures lost their issue stamps: %d %d", f1.SentAt, f2.SentAt)
	}
}

func TestSendAsyncUnknownEndpoint(t *testing.T) {
	n, _ := testNetwork(2)
	cli := n.NewEndpoint(0)
	if _, err := n.SendAsync(cli, EndpointID(77), 1, nil, 0); err == nil {
		t.Fatal("async send to unknown endpoint should fail")
	}
}

func TestRPCUnknownEndpointAndClosedReply(t *testing.T) {
	n, _ := testNetwork(2)
	cli := n.NewEndpoint(0)
	if _, err := n.RPC(cli, EndpointID(42), 1, nil, 0); err == nil {
		t.Fatal("rpc to unknown endpoint should fail")
	}

	// A responder that dies without replying closes the reply queue; the
	// blocked RPC must surface an error rather than hang.
	srv := n.NewEndpoint(1)
	go func() {
		env, ok := srv.Inbox.PopWait()
		if !ok {
			return
		}
		env.Reply.Close()
	}()
	if _, err := n.RPC(cli, srv.ID, 1, nil, 0); err == nil {
		t.Fatal("rpc whose reply queue closed should fail")
	}
}

func TestAwaitClosedReplyQueue(t *testing.T) {
	n, _ := testNetwork(2)
	cli := n.NewEndpoint(0)
	srv := n.NewEndpoint(1)
	go func() {
		env, ok := srv.Inbox.PopWait()
		if !ok {
			return
		}
		env.Reply.Close()
	}()
	f, err := n.SendAsync(cli, srv.ID, 1, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Await(); err == nil {
		t.Fatal("Await on a closed reply queue should fail")
	}
}

func TestBroadcastUnknownEndpointIsPerDestination(t *testing.T) {
	n, _ := testNetwork(4)
	cli := n.NewEndpoint(0)
	srv := n.NewEndpoint(1)
	go func() {
		env, ok := srv.Inbox.PopWait()
		if !ok {
			return
		}
		n.Reply(srv, env, 2, nil, env.ArriveAt)
	}()
	results := n.Broadcast(cli, []EndpointID{srv.ID, EndpointID(99)}, 1, nil, 0, true)
	if results[0].Err != nil {
		t.Fatalf("reachable destination failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("unknown destination should fail, not hang")
	}
}

func TestBroadcastSequentialTimingContract(t *testing.T) {
	// Sequential broadcast sends each request only after the previous reply
	// arrived: reply arrivals must be strictly increasing by at least the
	// per-request service time.
	n, _ := testNetwork(8)
	cli := n.NewEndpoint(0)
	const nsrv, service = 3, 1000
	var servers []EndpointID
	for i := 0; i < nsrv; i++ {
		srv := n.NewEndpoint(i + 1)
		servers = append(servers, srv.ID)
		go func(ep *Endpoint) {
			for {
				env, ok := ep.Inbox.PopWait()
				if !ok {
					return
				}
				n.Reply(ep, env, 2, nil, env.ArriveAt+service)
			}
		}(srv)
	}
	results := n.Broadcast(cli, servers, 1, nil, 0, false)
	var prev sim.Cycles
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if i > 0 {
			// The reply envelope's SentAt is the server's reply time:
			// request-arrival + service, and the request was only sent at
			// the previous reply's arrival.
			if r.Env.SentAt < prev+service {
				t.Fatalf("reply %d sent at %d; the request cannot have been issued before %d", i, r.Env.SentAt, prev)
			}
			if r.Env.ArriveAt <= prev+service {
				t.Fatalf("reply %d arrived at %d, not after %d + service", i, r.Env.ArriveAt, prev)
			}
		}
		prev = r.Env.ArriveAt
	}
}
