// Slab allocation for the message hot path (DESIGN.md §13).
//
// Every endpoint owns a small free-list cache of payload buffers and
// future/reply-queue pairs. The hot path never touches the Go allocator in
// steady state: a client marshals a request into a buffer drawn from its
// endpoint cache, the server releases that buffer into *its* cache right
// after decoding (the wire decoder copies every variable-length field, so a
// decoded message never aliases the payload), marshals the response from its
// cache, and the client releases the response buffer after decoding. Buffers
// therefore migrate between caches at the same rate in both directions and
// the population is stable.
//
// Ownership rules:
//   - A payload passed to Send/SendAsync/Broadcast is owned by the receiver
//     of the envelope once the call returns; the receiver releases it after
//     decoding. Envelopes own their payloads uniquely: Broadcast and
//     fault-injected duplicate delivery copy the payload per extra envelope.
//   - Callback payloads (directory invalidations) are shared across the
//     fan-out and are never released into a cache; the GC reclaims them.
//   - Reply queues and futures are recycled by Await after the reply is
//     harvested — except when a fault plan is installed, because a
//     duplicated request makes the server answer twice and the surplus
//     reply may land arbitrarily late; such queues are abandoned to the GC.
package msg

import "sync"

// bufClasses are the payload buffer size classes. Metadata requests and
// responses fit the small classes; data-carrying messages scale with the
// block size (64 KiB blocks plus headers fit 128 Ki).
var bufClasses = [...]int{64, 256, 1024, 4096, 16384, 65536, 131072, 524288}

// cacheCap bounds each per-class free list so a burst cannot pin unbounded
// memory; overflow is dropped to the GC.
const cacheCap = 64

// epCache is an endpoint's free-list cache. The mutex is effectively
// uncontended (an endpoint's sends and receives happen on its owner
// goroutine; the lock only guards rare cross-goroutine uses such as WAL
// group-commit flushes).
type epCache struct {
	mu   sync.Mutex
	bufs [len(bufClasses)][][]byte
	futs []*Future
}

// classFor returns the smallest class index that holds n bytes, or -1.
func classFor(n int) int {
	for i, c := range bufClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// GetBuf returns a zero-length buffer with capacity at least n.
func (c *epCache) GetBuf(n int) []byte {
	i := classFor(n)
	if i < 0 {
		return make([]byte, 0, n)
	}
	c.mu.Lock()
	if s := c.bufs[i]; len(s) > 0 {
		b := s[len(s)-1]
		s[len(s)-1] = nil
		c.bufs[i] = s[:len(s)-1]
		c.mu.Unlock()
		return b[:0]
	}
	c.mu.Unlock()
	return make([]byte, 0, bufClasses[i])
}

// PutBuf releases a buffer the caller owns exclusively. Buffers are filed
// under the largest class that fits their capacity, so buffers grown past
// their original class still land in a usable list.
func (c *epCache) PutBuf(b []byte) {
	cp := cap(b)
	idx := -1
	for i, cl := range bufClasses {
		if cl <= cp {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	c.mu.Lock()
	if len(c.bufs[idx]) < cacheCap {
		c.bufs[idx] = append(c.bufs[idx], b[:0])
	}
	c.mu.Unlock()
}

// getFuture returns a recycled (or fresh) future whose queue is empty and
// open.
func (c *epCache) getFuture() *Future {
	c.mu.Lock()
	if s := c.futs; len(s) > 0 {
		f := s[len(s)-1]
		s[len(s)-1] = nil
		c.futs = s[:len(s)-1]
		c.mu.Unlock()
		return f
	}
	c.mu.Unlock()
	return &Future{q: NewQueue()}
}

// putFuture recycles a harvested future. The caller guarantees no further
// replies can be pushed to its queue.
func (c *epCache) putFuture(f *Future) {
	f.q.recycle()
	f.src = nil
	c.mu.Lock()
	if len(c.futs) < cacheCap {
		c.futs = append(c.futs, f)
	}
	c.mu.Unlock()
}

// GetBuf returns a marshal buffer from the endpoint's cache. See the package
// comment for ownership rules.
func (ep *Endpoint) GetBuf(n int) []byte { return ep.cache.GetBuf(n) }

// PutBuf releases a payload buffer into the endpoint's cache. Call it only
// with buffers this endpoint owns: payloads of envelopes delivered to it
// (after decoding), or buffers obtained from GetBuf and never sent.
func (ep *Endpoint) PutBuf(b []byte) { ep.cache.PutBuf(b) }
