package msg

import (
	"testing"

	"repro/internal/sim"
)

// sendN sends n distinct payloads from a to b and returns the arrival times
// the network reported.
func sendN(t *testing.T, net *Network, a *Endpoint, b *Endpoint, n int) []sim.Cycles {
	t.Helper()
	out := make([]sim.Cycles, n)
	for i := 0; i < n; i++ {
		at, err := net.Send(a, b.ID, 1, []byte{byte(i), byte(i >> 8)}, sim.Cycles(i*10), nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = at
	}
	return out
}

func TestFaultPlanDelayIsDeterministicAndBounded(t *testing.T) {
	const maxDelay = 5000
	run := func() ([]sim.Cycles, []sim.Cycles) {
		netA, _ := testNetwork(4)
		a, b := netA.NewEndpoint(0), netA.NewEndpoint(2)
		clean := sendN(t, netA, a, b, 64)

		netB, _ := testNetwork(4)
		a2, b2 := netB.NewEndpoint(0), netB.NewEndpoint(2)
		netB.SetFaultPlan(&FaultPlan{Seed: 7, MaxDelay: maxDelay, DelayPercent: 50})
		faulty := sendN(t, netB, a2, b2, 64)
		return clean, faulty
	}
	clean, faulty := run()
	_, faulty2 := run()

	delayed := 0
	for i := range clean {
		d := faulty[i] - clean[i]
		if d < 0 || d > maxDelay {
			t.Fatalf("msg %d: delay %d outside [0, %d]", i, d, maxDelay)
		}
		if d > 0 {
			delayed++
		}
		if faulty[i] != faulty2[i] {
			t.Fatalf("msg %d: arrival differs across identical runs (%d vs %d)", i, faulty[i], faulty2[i])
		}
	}
	if delayed == 0 || delayed == len(clean) {
		t.Fatalf("delayed %d of %d messages; plan should fault some but not all", delayed, len(clean))
	}
}

func TestFaultPlanDuplicatesOnlyApprovedRequests(t *testing.T) {
	net, _ := testNetwork(4)
	a, b := net.NewEndpoint(0), net.NewEndpoint(1)
	net.SetFaultPlan(&FaultPlan{
		Seed:       3,
		MaxDelay:   100,
		DupPercent: 100,
		DupOK:      func(kind uint16, payload []byte) bool { return len(payload) > 0 && payload[0] == 'R' },
	})

	// A non-approved request is delivered once.
	if _, err := net.Send(a, b.ID, 1, []byte("W-mutation"), 0, nil); err != nil {
		t.Fatal(err)
	}
	if got := b.Inbox.Len(); got != 1 {
		t.Fatalf("mutating request delivered %d times, want 1", got)
	}

	// An approved request is delivered twice, duplicate strictly later.
	if _, err := net.Send(a, b.ID, 1, []byte("R-read"), 0, nil); err != nil {
		t.Fatal(err)
	}
	if got := b.Inbox.Len(); got != 3 {
		t.Fatalf("idempotent request delivered %d extra copies, want inbox 3", got)
	}
	st := net.FaultStats()
	if st.Duplicated != 1 {
		t.Fatalf("FaultStats.Duplicated = %d, want 1", st.Duplicated)
	}
	var first, second Envelope
	b.Inbox.TryPop() // the mutation
	first, _ = b.Inbox.TryPop()
	second, _ = b.Inbox.TryPop()
	if string(first.Payload) != "R-read" || string(second.Payload) != "R-read" {
		t.Fatalf("inbox holds %q then %q", first.Payload, second.Payload)
	}
	if second.ArriveAt <= first.ArriveAt {
		t.Fatalf("duplicate arrives at %d, not after the original at %d", second.ArriveAt, first.ArriveAt)
	}
}

func TestFaultPlanDuplicateRepliesBothToSameQueue(t *testing.T) {
	// An RPC whose request is duplicated still completes: the first reply
	// wins, the surplus reply is abandoned with the queue.
	net, _ := testNetwork(2)
	cli, srv := net.NewEndpoint(0), net.NewEndpoint(1)
	net.SetFaultPlan(&FaultPlan{
		Seed:       9,
		DupPercent: 100,
		DupOK:      func(uint16, []byte) bool { return true },
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			env, ok := srv.Inbox.PopWait()
			if !ok {
				return
			}
			net.Reply(srv, env, 2, []byte("pong"), env.ArriveAt)
		}
	}()
	env, err := net.RPC(cli, srv.ID, 1, []byte("ping"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(env.Payload) != "pong" {
		t.Fatalf("reply payload %q", env.Payload)
	}
	<-done
}

func TestFaultPlanRemovalStopsInjection(t *testing.T) {
	net, _ := testNetwork(2)
	a, b := net.NewEndpoint(0), net.NewEndpoint(1)
	net.SetFaultPlan(&FaultPlan{Seed: 1, MaxDelay: 1000, DelayPercent: 100})
	sendN(t, net, a, b, 8)
	if st := net.FaultStats(); st.Delayed != 8 {
		t.Fatalf("Delayed = %d, want 8", st.Delayed)
	}
	net.SetFaultPlan(nil)
	if st := net.FaultStats(); st.Delayed != 0 {
		t.Fatalf("stats after removal = %+v, want zeroes", st)
	}
	before := net.MessageCount()
	sendN(t, net, a, b, 8)
	if net.MessageCount() != before+8 {
		t.Fatal("faults still injected after plan removal")
	}
}
