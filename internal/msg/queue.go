// Package msg implements Hare's message-passing layer.
//
// The layer provides the property the paper calls *atomic message delivery*:
// when Send returns, the message is already present in the receiver's queue.
// Hare's directory-cache invalidation protocol depends on this property —
// a server can proceed as soon as it has sent invalidations, and a client
// that drains its invalidation queue before using its cache is guaranteed to
// observe any invalidation that was sent before its lookup began.
//
// Queues are unbounded so that a sender never blocks; this mirrors the
// paper's shared-memory message queues and avoids any possibility of
// distributed deadlock between servers and clients.
package msg

import (
	"sync"

	"repro/internal/sim"
)

// qitem is one queued envelope plus its push sequence number (the FIFO key,
// and the tie-break for equal arrival times).
type qitem struct {
	env Envelope
	seq uint64
}

// Queue drain disciplines. FIFO orders by push sequence; arrival orders by
// (ArriveAt, push sequence); arrivalDet orders by (ArriveAt, Src, Seq),
// which depends only on virtual time and per-sender program order — the
// deterministic tie-break the parallel engine requires (push order is
// real-time order and varies run to run).
const (
	modeFIFO = iota
	modeArrival
	modeArrivalDet
)

// Queue is an unbounded multi-producer queue of Envelopes. TryPop/PopWait
// drain it FIFO; PopWaitEarliest drains it in virtual-arrival-time order.
//
// Storage is a binary min-heap over the backing slice, keyed by push
// sequence (FIFO mode) or by (ArriveAt, seq) (arrival mode). In FIFO mode
// the heap degenerates to an append-only ring: pushes carry increasing
// sequence numbers, so the sift-up terminates immediately and both push and
// pop cost O(log n) at worst. The first PopWaitEarliest re-heaps by arrival
// time once and subsequent pops are O(log n) — replacing the previous
// implementation's O(n) scan plus O(n) splice per pop. Popped slots are
// zeroed before the slice shrinks, so a drained queue retains no payload
// references (the old `items = items[1:]` reslice kept every popped payload
// alive until the backing array was abandoned).
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []qitem
	nextSeq uint64
	mode    uint8
	closed  bool

	// gateSub is the gate this queue's cond is subscribed to (gated consumers
	// only); subscribing is idempotent but the pointer check keeps the common
	// path to a field load.
	gateSub *sim.Gate
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// less orders the heap: by push sequence in FIFO mode, by virtual arrival
// time (ties broken by push order, matching the old scan's stability) in
// arrival mode, and by (ArriveAt, Src, Seq) in deterministic-arrival mode.
func (q *Queue) less(i, j int) bool {
	switch q.mode {
	case modeArrival:
		a, b := &q.items[i], &q.items[j]
		if a.env.ArriveAt != b.env.ArriveAt {
			return a.env.ArriveAt < b.env.ArriveAt
		}
		return a.seq < b.seq
	case modeArrivalDet:
		a, b := &q.items[i], &q.items[j]
		if a.env.ArriveAt != b.env.ArriveAt {
			return a.env.ArriveAt < b.env.ArriveAt
		}
		if a.env.Src != b.env.Src {
			return a.env.Src < b.env.Src
		}
		return a.env.Seq < b.env.Seq
	default:
		return q.items[i].seq < q.items[j].seq
	}
}

func (q *Queue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue) siftDown(i int) {
	n := len(q.items)
	for {
		least := i
		if l := 2*i + 1; l < n && q.less(l, least) {
			least = l
		}
		if r := 2*i + 2; r < n && q.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		q.items[i], q.items[least] = q.items[least], q.items[i]
		i = least
	}
}

// setMode switches the heap ordering, re-heapifying when it changes. A queue
// is in practice drained by one discipline (server inboxes by arrival time,
// reply and callback queues FIFO), so the switch happens at most once.
func (q *Queue) setMode(mode uint8) {
	if q.mode == mode {
		return
	}
	q.mode = mode
	for i := len(q.items)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
}

// shrinkCap is the backing-array capacity above which a drained queue
// releases its array to the GC: one burst (a broadcast fan-in, a recovery
// backlog) must not pin a large array — and through its envelope slots,
// their payload buffers — for the rest of the run.
const shrinkCap = 1024

// popRoot removes and returns the heap minimum. The vacated tail slot is
// zeroed so the backing array drops its reference to the popped payload.
// The caller must hold q.mu and ensure the queue is non-empty.
func (q *Queue) popRoot() Envelope {
	e := q.items[0].env
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	q.items[n] = qitem{}
	q.items = q.items[:n]
	q.siftDown(0)
	if n == 0 && cap(q.items) > shrinkCap {
		q.items = nil
	}
	return e
}

// recycle prepares a queue for reuse from a pool: any leftover envelopes are
// dropped, the closed state is cleared, and an oversized backing array is
// released.
func (q *Queue) recycle() {
	q.mu.Lock()
	for i := range q.items {
		q.items[i] = qitem{}
	}
	q.items = q.items[:0]
	if cap(q.items) > shrinkCap {
		q.items = nil
	}
	q.closed = false
	q.mode = modeFIFO
	q.gateSub = nil
	q.mu.Unlock()
}

// Push appends an envelope to the queue. Push never blocks; by the time it
// returns the envelope is visible to Pop/PopWait (atomic delivery).
func (q *Queue) Push(e Envelope) {
	q.mu.Lock()
	q.items = append(q.items, qitem{env: e, seq: q.nextSeq})
	q.nextSeq++
	q.siftUp(len(q.items) - 1)
	q.mu.Unlock()
	q.cond.Signal()
}

// TryPop removes and returns the oldest envelope, if any.
func (q *Queue) TryPop() (Envelope, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return Envelope{}, false
	}
	q.setMode(modeFIFO)
	return q.popRoot(), true
}

// PopWait blocks until an envelope is available or the queue is closed. The
// second return value is false only when the queue has been closed and
// drained.
func (q *Queue) PopWait() (Envelope, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Envelope{}, false
	}
	q.setMode(modeFIFO)
	return q.popRoot(), true
}

// PopWaitEarliest blocks until an envelope is available and returns the one
// with the smallest virtual arrival time among those currently queued (ties
// in push order). File servers drain their inbox with it so that requests
// queued concurrently are served in virtual-time order, which keeps the
// queueing model accurate even when goroutine scheduling delivers them out
// of order.
func (q *Queue) PopWaitEarliest() (Envelope, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Envelope{}, false
	}
	q.setMode(modeArrival)
	return q.popRoot(), true
}

// PopWaitEarliestGated is PopWaitEarliest under the parallel engine: it
// returns the earliest queued arrival only once the gate confirms no
// earlier arrival can still appear (every lane's frontier has passed it).
// Ties are broken by (Src, Seq) — deterministic across runs — instead of
// push order. A nil gate falls back to PopWaitEarliest.
func (q *Queue) PopWaitEarliestGated(g *sim.Gate) (Envelope, bool) {
	if g == nil {
		return q.PopWaitEarliest()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.gateSub != g {
		g.Subscribe(q.cond)
		q.gateSub = g
	}
	for {
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.items) == 0 {
			return Envelope{}, false
		}
		q.setMode(modeArrivalDet)
		// A closed queue bypasses the gate: the consumer has crashed and its
		// loop must regain control to exit (it parks the popped envelope back
		// for after recovery), exactly as the ungated path unblocks on Close.
		if q.closed || g.SafeAt(q.items[0].env.ArriveAt) {
			return q.popRoot(), true
		}
		// Not yet safe. Count ourselves as a gate waiter *before* the final
		// re-check (see Gate.BeginWait for why this ordering closes the
		// wakeup race), then sleep until a push, a close, or a frontier
		// advance signals the cond.
		g.BeginWait()
		if g.SafeAt(q.items[0].env.ArriveAt) {
			g.EndWait()
			return q.popRoot(), true
		}
		q.cond.Wait()
		g.EndWait()
	}
}

// Len returns the number of queued envelopes.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close wakes all waiters; subsequent PopWait calls return false once the
// queue is drained.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Reopen clears the closed state so PopWait blocks again. A recovered file
// server reopens its inbox: envelopes pushed while it was down (Push never
// blocks or fails) are still queued and get served after recovery, so
// clients of a crashed server stall rather than error.
func (q *Queue) Reopen() {
	q.mu.Lock()
	q.closed = false
	q.mu.Unlock()
}
