// Package msg implements Hare's message-passing layer.
//
// The layer provides the property the paper calls *atomic message delivery*:
// when Send returns, the message is already present in the receiver's queue.
// Hare's directory-cache invalidation protocol depends on this property —
// a server can proceed as soon as it has sent invalidations, and a client
// that drains its invalidation queue before using its cache is guaranteed to
// observe any invalidation that was sent before its lookup began.
//
// Queues are unbounded so that a sender never blocks; this mirrors the
// paper's shared-memory message queues and avoids any possibility of
// distributed deadlock between servers and clients.
package msg

import "sync"

// Queue is an unbounded multi-producer queue of Envelopes. Pop order is FIFO.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Envelope
	closed bool
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends an envelope to the queue. Push never blocks; by the time it
// returns the envelope is visible to Pop/PopWait (atomic delivery).
func (q *Queue) Push(e Envelope) {
	q.mu.Lock()
	q.items = append(q.items, e)
	q.mu.Unlock()
	q.cond.Signal()
}

// TryPop removes and returns the oldest envelope, if any.
func (q *Queue) TryPop() (Envelope, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return Envelope{}, false
	}
	e := q.items[0]
	q.items = q.items[1:]
	return e, true
}

// PopWait blocks until an envelope is available or the queue is closed. The
// second return value is false only when the queue has been closed and
// drained.
func (q *Queue) PopWait() (Envelope, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Envelope{}, false
	}
	e := q.items[0]
	q.items = q.items[1:]
	return e, true
}

// PopWaitEarliest blocks until an envelope is available and returns the one
// with the smallest virtual arrival time among those currently queued. File
// servers drain their inbox with it so that requests queued concurrently are
// served in virtual-time order, which keeps the queueing model accurate even
// when goroutine scheduling delivers them out of order.
func (q *Queue) PopWaitEarliest() (Envelope, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Envelope{}, false
	}
	best := 0
	for i, e := range q.items {
		if e.ArriveAt < q.items[best].ArriveAt {
			best = i
		}
		_ = e
	}
	e := q.items[best]
	q.items = append(q.items[:best], q.items[best+1:]...)
	return e, true
}

// Len returns the number of queued envelopes.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close wakes all waiters; subsequent PopWait calls return false once the
// queue is drained.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Reopen clears the closed state so PopWait blocks again. A recovered file
// server reopens its inbox: envelopes pushed while it was down (Push never
// blocks or fails) are still queued and get served after recovery, so
// clients of a crashed server stall rather than error.
func (q *Queue) Reopen() {
	q.mu.Lock()
	q.closed = false
	q.mu.Unlock()
}
