package msg

import (
	"fmt"

	"repro/internal/sim"
)

// RPC performs a synchronous request/response exchange: it sends a request
// from src to dst, blocks until the reply arrives, and returns the reply
// envelope. The returned arrival time is the virtual time at which the reply
// is available at the caller; the caller is responsible for advancing its
// clock to that time and charging receive-side costs.
func (n *Network) RPC(src *Endpoint, dst EndpointID, kind uint16, payload []byte, sentAt sim.Cycles) (Envelope, error) {
	fut, err := n.SendAsync(src, dst, kind, payload, sentAt)
	if err != nil {
		return Envelope{}, err
	}
	env, err := fut.Await()
	if err != nil {
		return Envelope{}, fmt.Errorf("msg: rpc to endpoint %d: reply queue closed", dst)
	}
	return env, nil
}

// BroadcastResult is one reply from a broadcast RPC.
type BroadcastResult struct {
	Dst EndpointID
	Env Envelope
	Err error
}

// Broadcast sends the same request to every destination and waits for all
// replies. When parallel is true, the requests are sent back-to-back so the
// RPC latencies overlap (the paper's Directory Broadcast optimization); when
// false the exchanges are performed strictly one after another, each new
// request being sent only after the previous reply arrived at sentAt' =
// previous reply arrival. The per-destination results are returned in the
// order of dsts.
//
// Each delivered envelope owns its payload, so every destination after the
// first receives a copy drawn from the sender's buffer cache.
func (n *Network) Broadcast(src *Endpoint, dsts []EndpointID, kind uint16, payload []byte, sentAt sim.Cycles, parallel bool) []BroadcastResult {
	results := make([]BroadcastResult, len(dsts))
	// Cut every copy before the first send: the moment destination 0 holds
	// the original it may decode, release, and reuse the buffer for its own
	// reply, so copying lazily from `payload` at iteration i would read
	// whatever the receiver wrote over it.
	payloads := make([][]byte, len(dsts))
	for i := range dsts {
		if i == 0 {
			payloads[i] = payload
			continue
		}
		payloads[i] = append(src.cache.GetBuf(len(payload)), payload...)
	}
	if parallel {
		futs := make([]*Future, len(dsts))
		for i, d := range dsts {
			fut, err := n.SendAsync(src, d, kind, payloads[i], sentAt)
			if err != nil {
				results[i] = BroadcastResult{Dst: d, Err: err}
				continue
			}
			futs[i] = fut
		}
		for i, fut := range futs {
			if fut == nil {
				continue
			}
			env, err := fut.Await()
			if err != nil {
				results[i] = BroadcastResult{Dst: dsts[i], Err: fmt.Errorf("msg: broadcast reply queue closed")}
				continue
			}
			results[i] = BroadcastResult{Dst: dsts[i], Env: env}
		}
		return results
	}
	now := sentAt
	for i, d := range dsts {
		env, err := n.RPC(src, d, kind, payloads[i], now)
		if err != nil {
			results[i] = BroadcastResult{Dst: d, Err: err}
			continue
		}
		results[i] = BroadcastResult{Dst: d, Env: env}
		if env.ArriveAt > now {
			now = env.ArriveAt
		}
	}
	return results
}
