package msg

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestGatedPopBlocksUntilSafe: a consumer on a gated queue must not surface
// an arrival the gate still forbids, and the pinning lane's frontier advance
// must wake it without polling (the waiter-list protocol, DESIGN.md §13).
func TestGatedPopBlocksUntilSafe(t *testing.T) {
	g := sim.NewGate()
	g.Bump(0, 50) // lane 0 pins the safe time below the item's arrival
	q := NewQueue()
	q.Push(Envelope{ArriveAt: 100, Seq: 1})
	got := make(chan Envelope, 1)
	go func() {
		e, ok := q.PopWaitEarliestGated(g)
		if !ok {
			t.Error("gated pop returned closed")
		}
		got <- e
	}()
	select {
	case e := <-got:
		t.Fatalf("gated pop surfaced arrival %d while the safe time was 50", e.ArriveAt)
	case <-time.After(20 * time.Millisecond):
	}
	g.Bump(0, 100) // frontier reaches the arrival: the waiter must wake
	select {
	case e := <-got:
		if e.ArriveAt != 100 {
			t.Fatalf("popped arrival %d, want 100", e.ArriveAt)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gated pop not woken by the frontier advance")
	}
}

// TestGatedPopCloseBypass: once the queue is closed, gated pops drain the
// remaining items regardless of the safe time — a crashed server's run loop
// must regain control to exit even with a lane pinned in its past.
func TestGatedPopCloseBypass(t *testing.T) {
	g := sim.NewGate()
	g.Bump(0, 50)
	q := NewQueue()
	q.Push(Envelope{ArriveAt: 100, Seq: 1})
	got := make(chan bool, 1)
	go func() {
		_, ok := q.PopWaitEarliestGated(g)
		got <- ok
	}()
	select {
	case <-got:
		t.Fatal("gated pop surfaced an unsafe arrival before close")
	case <-time.After(20 * time.Millisecond):
	}
	q.Close()
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("close must first drain the queued item, not report empty")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gated pop not released by Close")
	}
	if _, ok := q.PopWaitEarliestGated(g); ok {
		t.Fatal("drained closed queue must report closed")
	}
}

// TestGatedPopNilGate: a nil gate (serialized mode) degrades to the plain
// earliest-arrival pop.
func TestGatedPopNilGate(t *testing.T) {
	q := NewQueue()
	q.Push(Envelope{ArriveAt: 200, Seq: 1})
	q.Push(Envelope{ArriveAt: 100, Seq: 2})
	e, ok := q.PopWaitEarliestGated(nil)
	if !ok || e.ArriveAt != 100 {
		t.Fatalf("nil-gate pop got (%d,%v), want the earliest arrival (100)", e.ArriveAt, ok)
	}
}

// TestGatedPopOrdersByArrival: with several safe items queued, the gated pop
// serves them in deterministic (ArriveAt, Src, Seq) order like the ungated
// earliest-arrival pop.
func TestGatedPopOrdersByArrival(t *testing.T) {
	g := sim.NewGate()
	g.Bump(0, 1000)
	q := NewQueue()
	q.Push(Envelope{ArriveAt: 300, Src: 2, Seq: 1})
	q.Push(Envelope{ArriveAt: 100, Src: 1, Seq: 2})
	q.Push(Envelope{ArriveAt: 300, Src: 1, Seq: 3})
	want := []struct {
		at  sim.Cycles
		src EndpointID
	}{{100, 1}, {300, 1}, {300, 2}}
	for i, w := range want {
		e, ok := q.PopWaitEarliestGated(g)
		if !ok || e.ArriveAt != w.at || e.Src != w.src {
			t.Fatalf("pop %d got (at=%d src=%d ok=%v), want (at=%d src=%d)", i, e.ArriveAt, e.Src, ok, w.at, w.src)
		}
	}
}
