package msg

import (
	"fmt"

	"repro/internal/sim"
)

// Future is the pending reply of one asynchronous request. A caller may keep
// any number of futures outstanding (to the same server or to several) and
// harvest them in any order with Await.
//
// Virtual-time contract (DESIGN.md §7): the request is stamped with the
// sender's clock at issue time; the caller is responsible for advancing its
// clock to the maximum reply arrival among the futures it awaits and for
// charging its own send/receive CPU costs — the same rules Broadcast's
// parallel mode has always used.
type Future struct {
	q   *Queue
	dst EndpointID
	// SentAt is the virtual time the request was stamped with.
	SentAt sim.Cycles
}

// SendAsync sends a request and returns a Future for its reply without
// waiting. The request is in the destination's inbox when SendAsync returns
// (atomic delivery, like Send).
func (n *Network) SendAsync(src *Endpoint, dst EndpointID, kind uint16, payload []byte, sentAt sim.Cycles) (*Future, error) {
	reply := NewQueue()
	if _, err := n.Send(src, dst, kind, payload, sentAt, reply); err != nil {
		return nil, err
	}
	return &Future{q: reply, dst: dst, SentAt: sentAt}, nil
}

// Await blocks until the reply arrives and returns its envelope. It fails
// only if the reply queue was closed without a reply (the responder died).
func (f *Future) Await() (Envelope, error) {
	env, ok := f.q.PopWait()
	if !ok {
		return Envelope{}, fmt.Errorf("msg: async rpc to endpoint %d: reply queue closed", f.dst)
	}
	return env, nil
}

// TryAwait returns the reply if it has already been pushed, without blocking.
func (f *Future) TryAwait() (Envelope, bool) {
	return f.q.TryPop()
}
