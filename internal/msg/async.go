package msg

import (
	"fmt"

	"repro/internal/sim"
)

// Future is the pending reply of one asynchronous request. A caller may keep
// any number of futures outstanding (to the same server or to several) and
// harvest them in any order with Await.
//
// Virtual-time contract (DESIGN.md §7): the request is stamped with the
// sender's clock at issue time; the caller is responsible for advancing its
// clock to the maximum reply arrival among the futures it awaits and for
// charging its own send/receive CPU costs — the same rules Broadcast's
// parallel mode has always used.
type Future struct {
	q   *Queue
	dst EndpointID
	src *Endpoint
	// SentAt is the virtual time the request was stamped with.
	SentAt sim.Cycles
	// arrive is the request's arrival time at the destination: a lower bound
	// on the reply's send time, published as the lane frontier while the
	// caller blocks in Await.
	arrive sim.Cycles
}

// SendAsync sends a request and returns a Future for its reply without
// waiting. The request is in the destination's inbox when SendAsync returns
// (atomic delivery, like Send). The future and its reply queue come from the
// sending endpoint's free-list cache; Await recycles them.
func (n *Network) SendAsync(src *Endpoint, dst EndpointID, kind uint16, payload []byte, sentAt sim.Cycles) (*Future, error) {
	f := src.cache.getFuture()
	arrive, err := n.Send(src, dst, kind, payload, sentAt, f.q)
	if err != nil {
		src.cache.putFuture(f)
		return nil, err
	}
	f.dst = dst
	f.src = src
	f.SentAt = sentAt
	f.arrive = arrive
	return f, nil
}

// Await blocks until the reply arrives and returns its envelope. It fails
// only if the reply queue was closed without a reply (the responder died).
// A future must be awaited at most once; after a successful Await it is
// recycled and must not be touched again.
func (f *Future) Await() (Envelope, error) {
	src := f.src
	if src != nil {
		if g := src.net.gate.Load(); g != nil {
			// While blocked here the lane cannot send; the reply cannot be
			// sent before the request arrives, so the request's arrival time
			// is a sound frontier.
			g.Bump(int(src.ID), f.arrive)
		}
	}
	env, ok := f.q.PopWait()
	if !ok {
		return Envelope{}, fmt.Errorf("msg: async rpc to endpoint %d: reply queue closed", f.dst)
	}
	// Recycle the future unless a fault plan is installed: a duplicated
	// request makes the responder reply twice, and the surplus reply may be
	// pushed arbitrarily late — the queue must not be reused then.
	if src != nil && src.net.faults.Load() == nil && f.q.Len() == 0 {
		src.cache.putFuture(f)
	}
	return env, nil
}

// AwaitHandoff blocks like Await but never publishes a frontier for the
// lane: the receiver of the request takes responsibility for it (idling the
// lane once the spawned work's own lanes are tracked, and resuming it with
// the reply). It exists for requests served by *ungated* endpoints — remote
// exec on a scheduling server — where the ordinary Await bump could race
// with the receiver's idle and re-pin the lane at the request's arrival
// forever. The lane's floor stays at the request's send time until the
// receiver idles it.
func (f *Future) AwaitHandoff() (Envelope, error) {
	env, ok := f.q.PopWait()
	if !ok {
		return Envelope{}, fmt.Errorf("msg: async rpc to endpoint %d: reply queue closed", f.dst)
	}
	if src := f.src; src != nil && src.net.faults.Load() == nil && f.q.Len() == 0 {
		src.cache.putFuture(f)
	}
	return env, nil
}

// TryAwait returns the reply if it has already been pushed, without
// blocking. A harvested future is recycled exactly as in Await.
func (f *Future) TryAwait() (Envelope, bool) {
	env, ok := f.q.TryPop()
	if !ok {
		return Envelope{}, false
	}
	if src := f.src; src != nil && src.net.faults.Load() == nil && f.q.Len() == 0 {
		src.cache.putFuture(f)
	}
	return env, true
}
