package msg

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// EndpointID identifies a message endpoint (a file server, a scheduling
// server, or a client library instance).
type EndpointID int

// Envelope is one message in flight.
type Envelope struct {
	Src     EndpointID
	Dst     EndpointID
	Kind    uint16
	Payload []byte
	// SentAt is the sender's virtual time when the message was sent;
	// ArriveAt is when it becomes visible at the receiver (SentAt plus
	// propagation latency).
	SentAt   sim.Cycles
	ArriveAt sim.Cycles
	// Reply, when non-nil, is where the receiver should push its response.
	// It models a reply capability carried in the request.
	Reply *Queue
}

// Endpoint is one attachment point on the network. Each endpoint has a
// request inbox and a callback queue (used by Hare for directory-cache
// invalidations, which must not be interleaved with RPC replies).
type Endpoint struct {
	ID        EndpointID
	Core      int
	Inbox     *Queue
	Callbacks *Queue
	net       *Network
}

// Network routes envelopes between endpoints, applying topology-dependent
// latency and recording statistics.
type Network struct {
	machine Machine

	mu        sync.Mutex
	endpoints map[EndpointID]*Endpoint
	nextID    EndpointID

	stats Stats

	// faults, when non-nil, is the installed fault-injection plan
	// (deterministic delay jitter and duplicate delivery; see FaultPlan).
	faults atomic.Pointer[faultState]
}

// Machine is the subset of sim.Machine the network needs; it is satisfied by
// *sim.Machine and allows tests to substitute simpler fakes.
type Machine interface {
	CostModel() sim.CostModel
	DistanceBetween(a, b int) sim.Distance
}

// simMachine adapts *sim.Machine to the Machine interface.
type simMachine struct{ m *sim.Machine }

func (s simMachine) CostModel() sim.CostModel { return s.m.Cost }
func (s simMachine) DistanceBetween(a, b int) sim.Distance {
	return s.m.Topo.Distance(a, b)
}

// WrapMachine adapts a *sim.Machine for use with NewNetwork.
func WrapMachine(m *sim.Machine) Machine { return simMachine{m} }

// Stats aggregates message counts.
type Stats struct {
	Messages  atomic.Uint64
	Bytes     atomic.Uint64
	Callbacks atomic.Uint64
	Requests  atomic.Uint64
}

// NewNetwork creates an empty network over the given machine model.
func NewNetwork(m Machine) *Network {
	return &Network{
		machine:   m,
		endpoints: make(map[EndpointID]*Endpoint),
	}
}

// NewEndpoint registers a new endpoint pinned to the given core.
func (n *Network) NewEndpoint(core int) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.nextID
	n.nextID++
	ep := &Endpoint{
		ID:        id,
		Core:      core,
		Inbox:     NewQueue(),
		Callbacks: NewQueue(),
		net:       n,
	}
	n.endpoints[id] = ep
	return ep
}

// Endpoint returns a registered endpoint by id.
func (n *Network) Endpoint(id EndpointID) (*Endpoint, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.endpoints[id]
	return ep, ok
}

// MessageCount returns the total number of messages sent so far.
func (n *Network) MessageCount() uint64 { return n.stats.Messages.Load() }

// ByteCount returns the total payload bytes sent so far.
func (n *Network) ByteCount() uint64 { return n.stats.Bytes.Load() }

// CallbackCount returns the number of callback (invalidation) messages sent.
func (n *Network) CallbackCount() uint64 { return n.stats.Callbacks.Load() }

// RequestCount returns the number of request messages sent (messages routed
// through Send — RPCs, async sends, broadcasts — as opposed to replies and
// callbacks).
func (n *Network) RequestCount() uint64 { return n.stats.Requests.Load() }

// route computes the arrival time of an envelope sent at sentAt from srcCore
// to dstCore with the given payload size.
func (n *Network) route(srcCore, dstCore int, sentAt sim.Cycles, payload int) sim.Cycles {
	cost := n.machine.CostModel()
	d := n.machine.DistanceBetween(srcCore, dstCore)
	return sentAt + cost.MsgLatency(d, payload)
}

// Send delivers an envelope to dst's request inbox. When Send returns the
// envelope is already in the destination queue (atomic delivery). It returns
// the arrival time at the destination.
func (n *Network) Send(src *Endpoint, dst EndpointID, kind uint16, payload []byte, sentAt sim.Cycles, reply *Queue) (sim.Cycles, error) {
	n.mu.Lock()
	dep, ok := n.endpoints[dst]
	n.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("msg: send to unknown endpoint %d", dst)
	}
	arrive := n.route(src.Core, dep.Core, sentAt, len(payload))
	fs := n.faults.Load()
	if fs != nil {
		arrive += fs.delay(src.ID, dst, kind, payload, sentAt)
	}
	env := Envelope{
		Src:      src.ID,
		Dst:      dst,
		Kind:     kind,
		Payload:  payload,
		SentAt:   sentAt,
		ArriveAt: arrive,
		Reply:    reply,
	}
	dep.Inbox.Push(env)
	n.stats.Messages.Add(1)
	n.stats.Requests.Add(1)
	n.stats.Bytes.Add(uint64(len(payload)))
	if fs != nil {
		if extra, dup := fs.dupDelay(src.ID, dst, kind, payload, sentAt); dup {
			// Deliver the same request a second time, strictly after the
			// original. The receiver answers both; the surplus reply is
			// abandoned with its queue.
			dupEnv := env
			dupEnv.ArriveAt = arrive + extra
			dep.Inbox.Push(dupEnv)
			n.stats.Messages.Add(1)
			n.stats.Requests.Add(1)
			n.stats.Bytes.Add(uint64(len(payload)))
		}
	}
	return arrive, nil
}

// SendCallback delivers an envelope to dst's callback queue (used for
// directory-cache invalidations). Like Send, delivery is atomic.
func (n *Network) SendCallback(src *Endpoint, dst EndpointID, kind uint16, payload []byte, sentAt sim.Cycles) (sim.Cycles, error) {
	n.mu.Lock()
	dep, ok := n.endpoints[dst]
	n.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("msg: callback to unknown endpoint %d", dst)
	}
	arrive := n.route(src.Core, dep.Core, sentAt, len(payload))
	env := Envelope{
		Src:      src.ID,
		Dst:      dst,
		Kind:     kind,
		Payload:  payload,
		SentAt:   sentAt,
		ArriveAt: arrive,
	}
	dep.Callbacks.Push(env)
	n.stats.Messages.Add(1)
	n.stats.Callbacks.Add(1)
	n.stats.Bytes.Add(uint64(len(payload)))
	return arrive, nil
}

// Reply pushes a response envelope onto the reply queue carried by a request.
// The caller supplies its own endpoint (for core/latency accounting).
func (n *Network) Reply(from *Endpoint, req Envelope, kind uint16, payload []byte, sentAt sim.Cycles) sim.Cycles {
	if req.Reply == nil {
		return sentAt
	}
	// The requester's core is needed for latency; look it up.
	n.mu.Lock()
	sep, ok := n.endpoints[req.Src]
	n.mu.Unlock()
	dstCore := from.Core
	if ok {
		dstCore = sep.Core
	}
	arrive := n.route(from.Core, dstCore, sentAt, len(payload))
	if fs := n.faults.Load(); fs != nil {
		arrive += fs.delay(from.ID, req.Src, kind, payload, sentAt)
	}
	req.Reply.Push(Envelope{
		Src:      from.ID,
		Dst:      req.Src,
		Kind:     kind,
		Payload:  payload,
		SentAt:   sentAt,
		ArriveAt: arrive,
	})
	n.stats.Messages.Add(1)
	n.stats.Bytes.Add(uint64(len(payload)))
	return arrive
}
