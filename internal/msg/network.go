package msg

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// EndpointID identifies a message endpoint (a file server, a scheduling
// server, or a client library instance).
type EndpointID int

// Envelope is one message in flight.
type Envelope struct {
	Src     EndpointID
	Dst     EndpointID
	Kind    uint16
	Payload []byte
	// Seq is the sender's per-endpoint send sequence number. Together with
	// Src it gives the parallel engine a tie-break for equal arrival times
	// that depends only on program order, not on real-time push order.
	Seq uint64
	// SentAt is the sender's virtual time when the message was sent;
	// ArriveAt is when it becomes visible at the receiver (SentAt plus
	// propagation latency).
	SentAt   sim.Cycles
	ArriveAt sim.Cycles
	// Reply, when non-nil, is where the receiver should push its response.
	// It models a reply capability carried in the request.
	Reply *Queue
	// noResume marks a fault-injected duplicate: its surplus reply is
	// abandoned by the requester, so it must never resume the requester's
	// lane under the parallel engine (the original's reply is the wakeup;
	// a late surplus Resume would resurrect an idle lane at a stale
	// frontier and wedge every gated server behind it).
	noResume bool
}

// Endpoint is one attachment point on the network. Each endpoint has a
// request inbox and a callback queue (used by Hare for directory-cache
// invalidations, which must not be interleaved with RPC replies), plus a
// free-list cache for payload buffers and futures (pool.go).
type Endpoint struct {
	ID        EndpointID
	Core      int
	Inbox     *Queue
	Callbacks *Queue
	net       *Network

	sendSeq atomic.Uint64
	cache   epCache
}

// Network routes envelopes between endpoints, applying topology-dependent
// latency and recording statistics.
type Network struct {
	machine Machine

	// endpoints is an append-only array indexed by EndpointID, swapped
	// atomically on growth. Lookups on the send path are lock-free; the
	// mutex only serializes registration.
	mu        sync.Mutex
	endpoints atomic.Pointer[[]*Endpoint]
	nextID    EndpointID

	stats Stats

	// faults, when non-nil, is the installed fault-injection plan
	// (deterministic delay jitter and duplicate delivery; see FaultPlan).
	faults atomic.Pointer[faultState]

	// gate, when non-nil, is the parallel virtual-time engine's
	// synchronization core. Serialized mode leaves it nil.
	gate atomic.Pointer[sim.Gate]
}

// Machine is the subset of sim.Machine the network needs; it is satisfied by
// *sim.Machine and allows tests to substitute simpler fakes.
type Machine interface {
	CostModel() sim.CostModel
	DistanceBetween(a, b int) sim.Distance
}

// simMachine adapts *sim.Machine to the Machine interface.
type simMachine struct{ m *sim.Machine }

func (s simMachine) CostModel() sim.CostModel { return s.m.Cost }
func (s simMachine) DistanceBetween(a, b int) sim.Distance {
	return s.m.Topo.Distance(a, b)
}

// WrapMachine adapts a *sim.Machine for use with NewNetwork.
func WrapMachine(m *sim.Machine) Machine { return simMachine{m} }

// Stats aggregates message counts.
type Stats struct {
	Messages  atomic.Uint64
	Bytes     atomic.Uint64
	Callbacks atomic.Uint64
	Requests  atomic.Uint64
}

// NewNetwork creates an empty network over the given machine model.
func NewNetwork(m Machine) *Network {
	n := &Network{machine: m}
	eps := make([]*Endpoint, 0)
	n.endpoints.Store(&eps)
	return n
}

// NewEndpoint registers a new endpoint pinned to the given core.
func (n *Network) NewEndpoint(core int) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.nextID
	n.nextID++
	ep := &Endpoint{
		ID:        id,
		Core:      core,
		Inbox:     NewQueue(),
		Callbacks: NewQueue(),
		net:       n,
	}
	old := *n.endpoints.Load()
	grown := make([]*Endpoint, len(old)+1)
	copy(grown, old)
	grown[len(old)] = ep
	n.endpoints.Store(&grown)
	return ep
}

// lookup returns the endpoint with the given id without locking.
func (n *Network) lookup(id EndpointID) *Endpoint {
	eps := *n.endpoints.Load()
	if id < 0 || int(id) >= len(eps) {
		return nil
	}
	return eps[id]
}

// Endpoint returns a registered endpoint by id.
func (n *Network) Endpoint(id EndpointID) (*Endpoint, bool) {
	ep := n.lookup(id)
	return ep, ep != nil
}

// SetGate installs (or, with nil, removes) the parallel engine's gate.
// Install it only while the system is quiescent — no requests in flight —
// so every lane's first send after the switch joins cleanly.
func (n *Network) SetGate(g *sim.Gate) {
	if g == nil {
		n.gate.Store(nil)
		return
	}
	n.gate.Store(g)
}

// Gate returns the installed gate, or nil in serialized mode.
func (n *Network) Gate() *sim.Gate { return n.gate.Load() }

// GateIdle marks the endpoint's lane quiescent (it no longer constrains the
// parallel engine's safe time). No-op in serialized mode. Callers mark a
// lane idle when its next send time is controlled by another lane: a proxy
// blocked on a remote exec, a root process waiting on children, an exited
// process.
func (n *Network) GateIdle(id EndpointID) {
	if g := n.gate.Load(); g != nil {
		g.Idle(int(id))
	}
}

// GateJoin raises (or first joins) the endpoint's lane frontier to t: the
// lane promises not to send before t. No-op in serialized mode. Callers must
// hold the safe-time floor below t while joining — either the system is
// quiescent, or the caller's own (active) lane frontier is <= t.
func (n *Network) GateJoin(id EndpointID, t sim.Cycles) {
	if g := n.gate.Load(); g != nil {
		g.Bump(int(id), t)
	}
}

// MessageCount returns the total number of messages sent so far.
func (n *Network) MessageCount() uint64 { return n.stats.Messages.Load() }

// ByteCount returns the total payload bytes sent so far.
func (n *Network) ByteCount() uint64 { return n.stats.Bytes.Load() }

// CallbackCount returns the number of callback (invalidation) messages sent.
func (n *Network) CallbackCount() uint64 { return n.stats.Callbacks.Load() }

// RequestCount returns the number of request messages sent (messages routed
// through Send — RPCs, async sends, broadcasts — as opposed to replies and
// callbacks).
func (n *Network) RequestCount() uint64 { return n.stats.Requests.Load() }

// route computes the arrival time of an envelope sent at sentAt from srcCore
// to dstCore with the given payload size.
func (n *Network) route(srcCore, dstCore int, sentAt sim.Cycles, payload int) sim.Cycles {
	cost := n.machine.CostModel()
	d := n.machine.DistanceBetween(srcCore, dstCore)
	return sentAt + cost.MsgLatency(d, payload)
}

// Send delivers an envelope to dst's request inbox. When Send returns the
// envelope is already in the destination queue (atomic delivery). It returns
// the arrival time at the destination.
//
// The receiver owns the payload once Send returns (see pool.go); the caller
// must not reuse or release it.
func (n *Network) Send(src *Endpoint, dst EndpointID, kind uint16, payload []byte, sentAt sim.Cycles, reply *Queue) (sim.Cycles, error) {
	dep := n.lookup(dst)
	if dep == nil {
		return 0, fmt.Errorf("msg: send to unknown endpoint %d", dst)
	}
	if g := n.gate.Load(); g != nil {
		g.Bump(int(src.ID), sentAt)
	}
	arrive := n.route(src.Core, dep.Core, sentAt, len(payload))
	fs := n.faults.Load()
	if fs != nil {
		arrive += fs.delay(src.ID, dst, kind, payload, sentAt)
	}
	env := Envelope{
		Src:      src.ID,
		Dst:      dst,
		Kind:     kind,
		Payload:  payload,
		Seq:      src.sendSeq.Add(1),
		SentAt:   sentAt,
		ArriveAt: arrive,
		Reply:    reply,
	}
	// The duplication decision (and its payload copy) must be taken before
	// the original is pushed: the receiver owns the payload from the moment
	// it is queued and may decode it, release the buffer, and reuse it for
	// its reply while this goroutine is still running — reading the payload
	// after Push races with that reuse.
	var dupEnv Envelope
	haveDup := false
	if fs != nil {
		if extra, dup := fs.dupDelay(src.ID, dst, kind, payload, sentAt); dup {
			// Deliver the same request a second time, strictly after the
			// original. The receiver answers both; the surplus reply is
			// abandoned with its queue. The duplicate gets its own payload
			// copy because each delivered envelope owns its payload.
			dupEnv = env
			dupEnv.Payload = append(src.cache.GetBuf(len(payload)), payload...)
			dupEnv.Seq = src.sendSeq.Add(1)
			dupEnv.ArriveAt = arrive + extra
			dupEnv.noResume = true
			haveDup = true
		}
	}
	dep.Inbox.Push(env)
	n.stats.Messages.Add(1)
	n.stats.Requests.Add(1)
	n.stats.Bytes.Add(uint64(len(payload)))
	if haveDup {
		dep.Inbox.Push(dupEnv)
		n.stats.Messages.Add(1)
		n.stats.Requests.Add(1)
		n.stats.Bytes.Add(uint64(len(dupEnv.Payload)))
	}
	return arrive, nil
}

// SendCallback delivers an envelope to dst's callback queue (used for
// directory-cache invalidations). Like Send, delivery is atomic. Callback
// payloads are shared across a fan-out and are not cache-managed; receivers
// must not release them.
func (n *Network) SendCallback(src *Endpoint, dst EndpointID, kind uint16, payload []byte, sentAt sim.Cycles) (sim.Cycles, error) {
	dep := n.lookup(dst)
	if dep == nil {
		return 0, fmt.Errorf("msg: callback to unknown endpoint %d", dst)
	}
	arrive := n.route(src.Core, dep.Core, sentAt, len(payload))
	env := Envelope{
		Src:      src.ID,
		Dst:      dst,
		Kind:     kind,
		Payload:  payload,
		Seq:      src.sendSeq.Add(1),
		SentAt:   sentAt,
		ArriveAt: arrive,
	}
	dep.Callbacks.Push(env)
	n.stats.Messages.Add(1)
	n.stats.Callbacks.Add(1)
	n.stats.Bytes.Add(uint64(len(payload)))
	return arrive, nil
}

// Reply pushes a response envelope onto the reply queue carried by a request.
// The caller supplies its own endpoint (for core/latency accounting). The
// awaiting requester owns the payload once Reply returns.
func (n *Network) Reply(from *Endpoint, req Envelope, kind uint16, payload []byte, sentAt sim.Cycles) sim.Cycles {
	if req.Reply == nil {
		return sentAt
	}
	// The requester's core is needed for latency; look it up.
	dstCore := from.Core
	if sep := n.lookup(req.Src); sep != nil {
		dstCore = sep.Core
	}
	arrive := n.route(from.Core, dstCore, sentAt, len(payload))
	if fs := n.faults.Load(); fs != nil {
		arrive += fs.delay(from.ID, req.Src, kind, payload, sentAt)
	}
	if g := n.gate.Load(); g != nil && !req.noResume {
		// If the requester's lane was idled (its request parked, or handed
		// off to a spawned process), this reply is what wakes it: resume the
		// lane at the reply's arrival — the earliest the requester can send
		// again. Our own service of the waking request held the floor below
		// arrive until now. Surplus replies to fault-injected duplicates are
		// excluded (noResume): their requester abandons them.
		g.Resume(int(req.Src), arrive)
	}
	req.Reply.Push(Envelope{
		Src:      from.ID,
		Dst:      req.Src,
		Kind:     kind,
		Payload:  payload,
		Seq:      from.sendSeq.Add(1),
		SentAt:   sentAt,
		ArriveAt: arrive,
	})
	n.stats.Messages.Add(1)
	n.stats.Bytes.Add(uint64(len(payload)))
	return arrive
}
