package msg

import (
	"testing"
)

// startEcho runs a minimal pooled responder on its own endpoint: it drains
// the inbox, releases each request payload into its cache, and replies with
// a same-sized payload drawn from its cache — the message layer's half of
// the steady-state request path (the proto layer's half is gated in
// internal/server).
func startEcho(n *Network, ep *Endpoint) func() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			env, ok := ep.Inbox.PopWait()
			if !ok {
				return
			}
			size := len(env.Payload)
			ep.PutBuf(env.Payload)
			out := ep.GetBuf(size)[:size]
			n.Reply(ep, env, env.Kind, out, env.ArriveAt)
		}
	}()
	return func() {
		ep.Inbox.Close()
		<-done
	}
}

// TestRPCSteadyStateAllocs pins the tentpole's zero-alloc property at the
// message layer: once the per-endpoint caches are warm, a full RPC round
// trip — pooled marshal buffer, send, future, reply, pooled decode release —
// does not touch the Go allocator.
func TestRPCSteadyStateAllocs(t *testing.T) {
	n, _ := testNetwork(2)
	cli := n.NewEndpoint(0)
	srv := n.NewEndpoint(1)
	stop := startEcho(n, srv)
	defer stop()

	roundTrip := func() {
		buf := cli.GetBuf(64)[:64]
		env, err := n.RPC(cli, srv.ID, 1, buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		cli.PutBuf(env.Payload)
	}
	// Warm the buffer and future caches on both endpoints.
	for i := 0; i < 32; i++ {
		roundTrip()
	}
	allocs := testing.AllocsPerRun(200, roundTrip)
	if allocs != 0 {
		t.Fatalf("steady-state RPC round trip allocated %.2f/op, want 0", allocs)
	}
}

// TestSendAsyncSteadyStateAllocs gates the async path the same way: several
// outstanding futures harvested out of order, still allocation-free.
func TestSendAsyncSteadyStateAllocs(t *testing.T) {
	n, _ := testNetwork(2)
	cli := n.NewEndpoint(0)
	srv := n.NewEndpoint(1)
	stop := startEcho(n, srv)
	defer stop()

	burst := func() {
		var futs [4]*Future
		for i := range futs {
			buf := cli.GetBuf(48)[:48]
			f, err := n.SendAsync(cli, srv.ID, 1, buf, 0)
			if err != nil {
				t.Fatal(err)
			}
			futs[i] = f
		}
		for _, f := range futs {
			env, err := f.Await()
			if err != nil {
				t.Fatal(err)
			}
			cli.PutBuf(env.Payload)
		}
	}
	for i := 0; i < 32; i++ {
		burst()
	}
	allocs := testing.AllocsPerRun(100, burst)
	if allocs != 0 {
		t.Fatalf("steady-state async burst allocated %.2f/op, want 0", allocs)
	}
}

// BenchmarkRPCEcho measures the message-layer round trip; -benchmem should
// report 0 B/op, 0 allocs/op in steady state.
func BenchmarkRPCEcho(b *testing.B) {
	n, _ := testNetwork(2)
	cli := n.NewEndpoint(0)
	srv := n.NewEndpoint(1)
	stop := startEcho(n, srv)
	defer stop()

	for i := 0; i < 32; i++ {
		buf := cli.GetBuf(64)[:64]
		env, err := n.RPC(cli, srv.ID, 1, buf, 0)
		if err != nil {
			b.Fatal(err)
		}
		cli.PutBuf(env.Payload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := cli.GetBuf(64)[:64]
		env, err := n.RPC(cli, srv.ID, 1, buf, 0)
		if err != nil {
			b.Fatal(err)
		}
		cli.PutBuf(env.Payload)
	}
}
