// Package proto defines the RPC protocol spoken between Hare client
// libraries, file servers, and scheduling servers.
//
// Messages are fixed-shape request/response structs (in the style of
// message-passing operating systems) serialized with a compact binary wire
// format. A single operation may touch several servers; the client library
// is the coordinator (Hare deliberately avoids server-to-server RPCs).
package proto

import "fmt"

// InodeID names an inode in the distributed file system. Inodes are named by
// the server that stores them plus a per-server inode number, which gives
// system-wide uniqueness and scalable allocation (paper §3.6.4).
type InodeID struct {
	Server int32
	Local  uint64
}

// NilInode is the zero InodeID, used as "no inode".
var NilInode = InodeID{Server: -1, Local: 0}

// IsNil reports whether the id is the sentinel "no inode" value.
func (id InodeID) IsNil() bool { return id.Server < 0 }

// String formats the inode id as server:local.
func (id InodeID) String() string {
	if id.IsNil() {
		return "<nil-inode>"
	}
	return fmt.Sprintf("%d:%d", id.Server, id.Local)
}

// Key packs the inode id into a single comparable uint64-pair-free value
// suitable for map keys in exported statistics. The inode id itself is
// already comparable; Key exists for compact external reporting.
func (id InodeID) Key() uint64 {
	return uint64(uint32(id.Server))<<48 | (id.Local & 0xffffffffffff)
}

// RootInode is the designated root directory inode: stored on server 0 with
// local number 1 (paper: "A designated server stores the root directory
// entry").
var RootInode = InodeID{Server: 0, Local: 1}

// FdID names a server-side shared file descriptor (the offset has migrated
// to the server because several processes share the descriptor).
type FdID uint64

// NilFd is the sentinel "no server-side descriptor" value.
const NilFd FdID = 0
