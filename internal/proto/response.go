package proto

import "repro/internal/fsapi"

// Extent is a run of Count consecutive buffer-cache blocks starting at
// block Start. Block lists travel extent-coded so OPEN/EXTEND/TRUNCATE
// message bytes scale with a file's fragmentation, not its size: a freshly
// allocated file is one run regardless of length (DESIGN.md §8).
type Extent struct {
	Start uint64
	Count uint64
}

// Response is the single response message shape used for every operation.
// Err is fsapi.OK on success. Only the fields relevant to the request's Op
// are meaningful.
type Response struct {
	Err fsapi.Errno

	Ino     InodeID // resulting / looked-up inode
	Server  int32   // server storing the inode named by a directory entry
	Ftype   fsapi.FileType
	Size    int64
	Offset  int64
	N       int64 // generic count (bytes read/written, entries removed, ...)
	Fd      FdID
	Extents []Extent // extent-coded buffer-cache block list for direct access
	Version uint64   // inode data version (bumped on any data mutation)
	Data    []byte
	Stat    StatWire
	Ents    []DirEntWire
	Dist    bool  // looked-up/created directory has distributed entries
	Refs    int32 // remaining reference count (shared fd ops)
	// Epoch is the server's current placement-map epoch. Meaningful on
	// EEPOCH errors (so a behind/ahead client can see how far) and on the
	// shard-migration ops.
	Epoch uint64

	ExitStatus int32 // exec: exit status of the remote process
	PID        int64 // exec: pid assigned to the remote process
}

// SizeHint returns a capacity estimate for the response's wire form.
func (r *Response) SizeHint() int {
	return 64 + len(r.Data) + 24*len(r.Ents) + 16*len(r.Extents)
}

// Marshal encodes the response into a fresh byte slice.
func (r *Response) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.SizeHint()))
}

// AppendTo encodes the response onto buf and returns the extended slice.
// Hot paths pass a recycled buffer so that marshaling allocates nothing.
func (r *Response) AppendTo(buf []byte) []byte {
	e := encoder{buf: buf}
	e.i32(int32(r.Err))
	e.inode(r.Ino)
	e.i32(r.Server)
	e.u8(uint8(r.Ftype))
	e.i64(r.Size)
	e.i64(r.Offset)
	e.i64(r.N)
	e.u64(uint64(r.Fd))
	e.u32(uint32(len(r.Extents)))
	for _, ext := range r.Extents {
		e.u64(ext.Start)
		e.u64(ext.Count)
	}
	e.u64(r.Version)
	e.blob(r.Data)
	e.inode(r.Stat.Ino)
	e.u8(uint8(r.Stat.Ftype))
	e.i64(r.Stat.Size)
	e.i32(r.Stat.Nlink)
	e.u16(uint16(r.Stat.Mode))
	e.u32(uint32(len(r.Ents)))
	for _, ent := range r.Ents {
		e.str(ent.Name)
		e.inode(ent.Ino)
		e.u8(uint8(ent.Ftype))
	}
	e.boolean(r.Dist)
	e.i32(r.Refs)
	e.i32(r.ExitStatus)
	e.i64(r.PID)
	e.u64(r.Epoch)
	return e.bytes()
}

// UnmarshalResponse decodes a response from a wire payload.
func UnmarshalResponse(b []byte) (*Response, error) {
	r := &Response{}
	if err := UnmarshalResponseInto(r, b); err != nil {
		return nil, err
	}
	return r, nil
}

// UnmarshalResponseInto decodes a response from a wire payload into r, which
// is reset first; hot paths pass a recycled struct. The decoder copies every
// variable-length field, so r never aliases b and the caller may release b
// immediately.
func UnmarshalResponseInto(r *Response, b []byte) error {
	d := newDecoder(b)
	*r = Response{}
	r.Err = fsapi.Errno(d.i32())
	r.Ino = d.inode()
	r.Server = d.i32()
	r.Ftype = fsapi.FileType(d.u8())
	r.Size = d.i64()
	r.Offset = d.i64()
	r.N = d.i64()
	r.Fd = FdID(d.u64())
	nexts := int(d.u32())
	if nexts > 0 && d.err == nil {
		r.Extents = make([]Extent, 0, nexts)
		for i := 0; i < nexts; i++ {
			start := d.u64()
			count := d.u64()
			r.Extents = append(r.Extents, Extent{Start: start, Count: count})
		}
	}
	r.Version = d.u64()
	r.Data = d.blob()
	r.Stat.Ino = d.inode()
	r.Stat.Ftype = fsapi.FileType(d.u8())
	r.Stat.Size = d.i64()
	r.Stat.Nlink = d.i32()
	r.Stat.Mode = fsapi.Mode(d.u16())
	nents := int(d.u32())
	if nents > 0 {
		r.Ents = make([]DirEntWire, 0, nents)
		for i := 0; i < nents; i++ {
			var ent DirEntWire
			ent.Name = d.str()
			ent.Ino = d.inode()
			ent.Ftype = fsapi.FileType(d.u8())
			r.Ents = append(r.Ents, ent)
		}
	}
	r.Dist = d.boolean()
	r.Refs = d.i32()
	r.ExitStatus = d.i32()
	r.PID = d.i64()
	r.Epoch = d.u64()
	return d.finish("response")
}

// ErrResponse builds a response carrying only an error.
func ErrResponse(err fsapi.Errno) *Response { return &Response{Err: err} }

// BlockCount returns the total number of blocks the extents cover.
func BlockCount(exts []Extent) int {
	total := 0
	for _, e := range exts {
		total += int(e.Count)
	}
	return total
}

// Invalidation is the payload of a directory-cache invalidation callback
// (server -> client), identifying the cached name to drop.
type Invalidation struct {
	Dir  InodeID
	Name string
}

// Marshal encodes the invalidation.
func (iv *Invalidation) Marshal() []byte {
	e := newEncoder(24 + len(iv.Name))
	e.inode(iv.Dir)
	e.str(iv.Name)
	return e.bytes()
}

// UnmarshalInvalidation decodes an invalidation callback payload.
func UnmarshalInvalidation(b []byte) (*Invalidation, error) {
	d := newDecoder(b)
	iv := &Invalidation{}
	iv.Dir = d.inode()
	iv.Name = d.str()
	if err := d.finish("invalidation"); err != nil {
		return nil, err
	}
	return iv, nil
}

// Hash computes the directory-entry placement hash from the paper:
// hash(dirInode, name) % NSERVERS selects the server that stores the entry
// for `name` in the (distributed) directory `dir`. The dir is identified by
// its inode number so renaming the parent does not re-hash its entries.
func Hash(dir InodeID, name string) uint64 {
	// FNV-1a over the inode id and the name.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(dir.Local >> (8 * i)))
	}
	for i := 0; i < 4; i++ {
		mix(byte(uint32(dir.Server) >> (8 * i)))
	}
	for i := 0; i < len(name); i++ {
		mix(name[i])
	}
	return h
}
