package proto

import (
	"bytes"
	"testing"
)

// TestTraceContextRoundTrip checks the optional trailing trace fields.
func TestTraceContextRoundTrip(t *testing.T) {
	req := &Request{Op: OpLookup, Dir: InodeID{Server: 1, Local: 2}, Name: "x",
		Trace: 0xdeadbeef, Span: 0x1234}
	got, err := UnmarshalRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != req.Trace || got.Span != req.Span {
		t.Fatalf("trace ctx lost: got trace=%#x span=%#x", got.Trace, got.Span)
	}
}

// TestUntracedWireFormatUnchanged: a request with Trace == 0 must marshal
// byte-identically to the same request without trace fields, so tracing-off
// leaves message bytes (and the Bytes economy counter) untouched.
func TestUntracedWireFormatUnchanged(t *testing.T) {
	req := &Request{Op: OpCreateCoalesced, Dir: InodeID{Server: 0, Local: 1}, Name: "f"}
	plain := req.Marshal()
	traced := &Request{Op: OpCreateCoalesced, Dir: InodeID{Server: 0, Local: 1}, Name: "f",
		Trace: 7, Span: 9}
	withCtx := traced.Marshal()
	if len(withCtx) != len(plain)+16 {
		t.Fatalf("trace trailer should add exactly 16 bytes: %d vs %d", len(withCtx), len(plain))
	}
	if !bytes.Equal(withCtx[:len(plain)], plain) {
		t.Fatal("trace trailer changed the leading wire bytes")
	}
	got, err := UnmarshalRequest(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != 0 || got.Span != 0 {
		t.Fatalf("untraced request decoded with trace ctx: %#x/%#x", got.Trace, got.Span)
	}
}

// TestBatchSubOpTraceContext: sub-requests keep their trace context through
// the batch envelope.
func TestBatchSubOpTraceContext(t *testing.T) {
	subs := []*Request{
		{Op: OpLookup, Name: "a", Trace: 11, Span: 21},
		{Op: OpLookup, Name: "b"},
	}
	decoded, stop, err := UnmarshalBatch(MarshalBatch(subs, true))
	if err != nil {
		t.Fatal(err)
	}
	if !stop || len(decoded) != 2 {
		t.Fatalf("batch decode: stop=%v n=%d", stop, len(decoded))
	}
	if decoded[0].Trace != 11 || decoded[0].Span != 21 {
		t.Fatalf("sub-op 0 trace ctx lost: %+v", decoded[0])
	}
	if decoded[1].Trace != 0 || decoded[1].Span != 0 {
		t.Fatalf("sub-op 1 gained trace ctx: %+v", decoded[1])
	}
}
