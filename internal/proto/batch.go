package proto

import "fmt"

// Generic op batching (DESIGN.md §7). A batch packs several sub-requests
// destined for one server into a single OP_BATCH message; the server answers
// with a single message carrying one response per sub-request, in order.
// Batching generalizes the paper's one-off message coalescing
// (OpCreateCoalesced, §3.6.3) into a first-class protocol facility: any
// client-side sequence of same-server operations can share one network
// round trip and one message-arrival overhead.
//
// A batch may be marked stop-on-error: sub-requests are then dependent, and
// once one fails the remaining ones are skipped with ECANCELED responses.
// This lets a client issue a chain like RM_MAP → UNLINK_INODE speculatively
// without risking the tail running against state the head failed to produce.

const (
	// MaxBatchOps caps the number of sub-requests per batch message.
	MaxBatchOps = 16
	// MaxBatchBytes caps the marshaled size of a batch payload; callers
	// split larger sequences across several batch messages.
	MaxBatchBytes = 64 << 10
)

// batchFlagStopOnErr marks a dependent batch.
const batchFlagStopOnErr = 1 << 0

// MarshalBatch encodes sub-requests into an OpBatch payload.
func MarshalBatch(reqs []*Request, stopOnErr bool) []byte {
	e := newEncoder(8 + 96*len(reqs))
	var flags uint8
	if stopOnErr {
		flags |= batchFlagStopOnErr
	}
	e.u8(flags)
	e.u32(uint32(len(reqs)))
	for _, r := range reqs {
		e.blob(r.Marshal())
	}
	return e.bytes()
}

// UnmarshalBatch decodes an OpBatch payload into its sub-requests and the
// stop-on-error flag, enforcing the batch size caps.
func UnmarshalBatch(b []byte) ([]*Request, bool, error) {
	if len(b) > MaxBatchBytes {
		return nil, false, fmt.Errorf("proto: batch payload %d bytes exceeds cap %d", len(b), MaxBatchBytes)
	}
	d := newDecoder(b)
	flags := d.u8()
	n := int(d.u32())
	if d.err != nil {
		return nil, false, fmt.Errorf("proto: decoding batch header: %w", d.err)
	}
	if n <= 0 || n > MaxBatchOps {
		return nil, false, fmt.Errorf("proto: batch of %d sub-ops outside [1, %d]", n, MaxBatchOps)
	}
	reqs := make([]*Request, 0, n)
	for i := 0; i < n; i++ {
		raw := d.blob()
		if d.err != nil {
			return nil, false, fmt.Errorf("proto: decoding batch sub-op %d: %w", i, d.err)
		}
		r, err := UnmarshalRequest(raw)
		if err != nil {
			return nil, false, fmt.Errorf("proto: batch sub-op %d: %w", i, err)
		}
		reqs = append(reqs, r)
	}
	if err := d.finish("batch"); err != nil {
		return nil, false, err
	}
	return reqs, flags&batchFlagStopOnErr != 0, nil
}

// BatchRequest wraps sub-requests in the OpBatch envelope request.
func BatchRequest(reqs []*Request, stopOnErr bool) *Request {
	return &Request{Op: OpBatch, Data: MarshalBatch(reqs, stopOnErr)}
}

// MarshalBatchResponses encodes the per-sub-op responses of a batch.
func MarshalBatchResponses(resps []*Response) []byte {
	e := newEncoder(8 + 96*len(resps))
	e.u32(uint32(len(resps)))
	for _, r := range resps {
		e.blob(r.Marshal())
	}
	return e.bytes()
}

// UnmarshalBatchResponses decodes the payload produced by
// MarshalBatchResponses.
func UnmarshalBatchResponses(b []byte) ([]*Response, error) {
	d := newDecoder(b)
	n := int(d.u32())
	if d.err != nil {
		return nil, fmt.Errorf("proto: decoding batch response header: %w", d.err)
	}
	if n < 0 || n > MaxBatchOps {
		return nil, fmt.Errorf("proto: batch response of %d sub-ops outside [0, %d]", n, MaxBatchOps)
	}
	resps := make([]*Response, 0, n)
	for i := 0; i < n; i++ {
		raw := d.blob()
		if d.err != nil {
			return nil, fmt.Errorf("proto: decoding batch response %d: %w", i, d.err)
		}
		r, err := UnmarshalResponse(raw)
		if err != nil {
			return nil, fmt.Errorf("proto: batch response %d: %w", i, err)
		}
		resps = append(resps, r)
	}
	if err := d.finish("batch responses"); err != nil {
		return nil, err
	}
	return resps, nil
}
