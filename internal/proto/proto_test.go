package proto

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/fsapi"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Op:          OpCreateCoalesced,
		ClientID:    7,
		Dir:         InodeID{Server: 2, Local: 99},
		Name:        "file.txt",
		Target:      InodeID{Server: 1, Local: 5},
		Ftype:       fsapi.TypeRegular,
		Mode:        fsapi.Mode644,
		Flags:       3,
		Size:        4096,
		Offset:      128,
		Whence:      1,
		Count:       512,
		Fd:          FdID(12),
		Data:        []byte("payload bytes"),
		Distributed: true,
		Exclusive:   true,
		Replace:     false,
		WantOpen:    true,
		Dirty:       true,
		Program:     "prog-1",
		Args:        []string{"a", "b c", ""},
		Env:         []string{"K=V"},
		Dirname:     "/work/dir",
		Fds: []FdSpec{
			{Fd: 0, Ino: InodeID{Server: 0, Local: 3}, SrvFd: 4, Flags: 2, Offset: 10, Local: true},
			{Fd: 5, Ino: InodeID{Server: 3, Local: 8}, Pipe: true, Write: true},
		},
		PID:    1234,
		Sig:    9,
		Policy: 1,
	}
	got, err := UnmarshalRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, req)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		Err:     fsapi.EEXIST,
		Ino:     InodeID{Server: 3, Local: 77},
		Server:  3,
		Ftype:   fsapi.TypeDir,
		Size:    8192,
		Offset:  64,
		N:       5,
		Fd:      FdID(9),
		Extents: []Extent{{Start: 1, Count: 3}, {Start: 500, Count: 1}},
		Version: 42,
		Data:    []byte{0, 1, 2, 255},
		Stat: StatWire{
			Ino:   InodeID{Server: 3, Local: 77},
			Ftype: fsapi.TypeDir,
			Size:  8192,
			Nlink: 2,
			Mode:  fsapi.Mode755,
		},
		Ents: []DirEntWire{
			{Name: "a", Ino: InodeID{Server: 0, Local: 2}, Ftype: fsapi.TypeRegular},
			{Name: "sub dir", Ino: InodeID{Server: 1, Local: 3}, Ftype: fsapi.TypeDir},
		},
		Dist:       true,
		Refs:       4,
		ExitStatus: 2,
		PID:        55,
	}
	got, err := UnmarshalResponse(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, resp)
	}
}

func TestEmptyRequestRoundTrip(t *testing.T) {
	req := &Request{Op: OpPing}
	got, err := UnmarshalRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpPing || got.Name != "" || got.Data != nil || got.Fds != nil {
		t.Fatalf("unexpected decode %+v", got)
	}
}

func TestInvalidationRoundTrip(t *testing.T) {
	iv := &Invalidation{Dir: InodeID{Server: 1, Local: 42}, Name: "victim"}
	got, err := UnmarshalInvalidation(iv.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(iv, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, iv)
	}
}

func TestTruncatedPayloadsFail(t *testing.T) {
	req := &Request{Op: OpLookup, Dir: RootInode, Name: "some-name"}
	raw := req.Marshal()
	for _, cut := range []int{0, 1, 5, len(raw) / 2, len(raw) - 1} {
		if _, err := UnmarshalRequest(raw[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	resp := &Response{Data: []byte("abcdef"), Extents: []Extent{{Start: 1, Count: 2}}}
	rraw := resp.Marshal()
	if _, err := UnmarshalResponse(rraw[:len(rraw)/3]); err == nil {
		t.Error("truncated response not detected")
	}
}

// Property: request marshal/unmarshal round-trips for arbitrary string and
// byte payloads.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(name string, data []byte, size int64, dist bool) bool {
		req := &Request{Op: OpWriteAt, Name: name, Data: data, Size: size, Distributed: dist}
		got, err := UnmarshalRequest(req.Marshal())
		if err != nil {
			return false
		}
		if got.Name != name || got.Size != size || got.Distributed != dist {
			return false
		}
		if len(got.Data) != len(data) {
			return false
		}
		for i := range data {
			if got.Data[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExtentCoding(t *testing.T) {
	exts := []Extent{{Start: 4, Count: 3}, {Start: 9, Count: 2}, {Start: 2, Count: 1}}
	if BlockCount(exts) != 6 {
		t.Fatalf("BlockCount = %d, want 6", BlockCount(exts))
	}
	if BlockCount(nil) != 0 {
		t.Fatal("BlockCount(nil) should be 0")
	}
}

func TestHashStableAndSpread(t *testing.T) {
	dir := InodeID{Server: 0, Local: 1}
	if Hash(dir, "name") != Hash(dir, "name") {
		t.Fatal("hash not deterministic")
	}
	if Hash(dir, "name-a") == Hash(dir, "name-b") {
		t.Fatal("suspicious collision between distinct names")
	}
	// Different parent directories place the same name differently
	// (usually): verify the directory inode participates in the hash.
	other := InodeID{Server: 0, Local: 2}
	same := 0
	for i := 0; i < 64; i++ {
		n := string(rune('a' + i%26))
		if Hash(dir, n)%8 == Hash(other, n)%8 {
			same++
		}
	}
	if same == 64 {
		t.Fatal("hash ignores the directory inode")
	}
	// Spread: hashing many names over 8 servers should touch every server.
	buckets := make(map[uint64]int)
	for i := 0; i < 1000; i++ {
		buckets[Hash(dir, "file"+string(rune('0'+i%10))+string(rune('a'+i%26))+string(rune('A'+(i/26)%26)))%8]++
	}
	if len(buckets) < 8 {
		t.Fatalf("hash only hit %d of 8 buckets", len(buckets))
	}
}

func TestInodeIDHelpers(t *testing.T) {
	if !NilInode.IsNil() {
		t.Error("NilInode should be nil")
	}
	if RootInode.IsNil() {
		t.Error("RootInode should not be nil")
	}
	if NilInode.String() != "<nil-inode>" || RootInode.String() != "0:1" {
		t.Error("String formatting wrong")
	}
	if RootInode.Key() == NilInode.Key() {
		t.Error("Key collision between root and nil")
	}
}

func TestOpString(t *testing.T) {
	if OpLookup.String() != "LOOKUP" || OpRmdirPrepare.String() != "RMDIR_PREPARE" {
		t.Error("op names wrong")
	}
	if Op(9999).String() != "OP_UNKNOWN" {
		t.Error("unknown op name wrong")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpRmMap, Dir: RootInode, Name: "victim", Ftype: fsapi.TypeRegular},
		{Op: OpUnlinkInode, Target: InodeID{Server: 2, Local: 17}},
		{Op: OpSetSize, Target: InodeID{Server: 2, Local: 18}, Size: 4096},
	}
	env := BatchRequest(reqs, true)
	if env.Op != OpBatch {
		t.Fatalf("envelope op = %v", env.Op)
	}
	decoded, err := UnmarshalRequest(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	subs, stop, err := UnmarshalBatch(decoded.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !stop {
		t.Fatal("stop-on-error flag lost")
	}
	if !reflect.DeepEqual(reqs, subs) {
		t.Fatalf("sub-request mismatch:\n got %+v\nwant %+v", subs, reqs)
	}

	resps := []*Response{
		{Ino: InodeID{Server: 2, Local: 17}, Ftype: fsapi.TypeRegular},
		{Err: fsapi.ECANCELED},
	}
	back, err := UnmarshalBatchResponses(MarshalBatchResponses(resps))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resps, back) {
		t.Fatalf("sub-response mismatch:\n got %+v\nwant %+v", back, resps)
	}
}

func TestBatchCapsEnforced(t *testing.T) {
	var reqs []*Request
	for i := 0; i < MaxBatchOps+1; i++ {
		reqs = append(reqs, &Request{Op: OpPing})
	}
	if _, _, err := UnmarshalBatch(MarshalBatch(reqs, false)); err == nil {
		t.Fatal("over-count batch should fail to decode")
	}
	big := &Request{Op: OpWriteAt, Data: make([]byte, MaxBatchBytes)}
	if _, _, err := UnmarshalBatch(MarshalBatch([]*Request{big}, false)); err == nil {
		t.Fatal("over-size batch should fail to decode")
	}
	if _, _, err := UnmarshalBatch(nil); err == nil {
		t.Fatal("empty batch payload should fail to decode")
	}
	raw := MarshalBatch([]*Request{{Op: OpPing}}, false)
	if _, _, err := UnmarshalBatch(raw[:len(raw)-2]); err == nil {
		t.Fatal("truncated batch should fail to decode")
	}
}
