package proto

import "repro/internal/fsapi"

// Shard-migration payloads (elastic placement, DESIGN.md §9).
//
// SHARD_PULL and SHARD_COMMIT carry a ShardMsg in Request.Data /
// Response.Data: the encoded target placement map (opaque to this package —
// produced and consumed by internal/place) plus the directory entries in
// flight. Only distributed-directory entries ever travel this way; inodes
// never migrate.

// MigEntry is one directory entry being handed between servers during a
// shard migration.
type MigEntry struct {
	Dir    InodeID
	Name   string
	Target InodeID
	Ftype  fsapi.FileType
	Dist   bool
}

// ShardMsg is the payload of the shard-migration operations.
type ShardMsg struct {
	// MapBlob is the encoded target placement map (place.Map.Encode).
	MapBlob []byte
	// Entries are the directory entries in flight: the outgoing set in a
	// SHARD_PULL response, the incoming set in a SHARD_COMMIT request.
	Entries []MigEntry
	// Marked lists distributed directories whose shards sit between the
	// PREPARE and COMMIT/ABORT phases of an rmdir; the mark must exist on
	// the new owners too, or a create racing the rmdir could land on an
	// unmarked shard and be destroyed by the rmdir's commit.
	Marked []InodeID
	// DeadDirs are rmdir tombstones; without them a later-added member
	// would accept entries into a directory that no longer exists.
	DeadDirs []InodeID
}

// Marshal encodes the shard message.
func (m *ShardMsg) Marshal() []byte {
	size := 16 + len(m.MapBlob)
	for i := range m.Entries {
		size += 32 + len(m.Entries[i].Name)
	}
	e := newEncoder(size)
	e.blob(m.MapBlob)
	e.u32(uint32(len(m.Entries)))
	for i := range m.Entries {
		ent := &m.Entries[i]
		e.inode(ent.Dir)
		e.str(ent.Name)
		e.inode(ent.Target)
		e.u8(uint8(ent.Ftype))
		e.boolean(ent.Dist)
	}
	e.u32(uint32(len(m.Marked)))
	for _, dir := range m.Marked {
		e.inode(dir)
	}
	e.u32(uint32(len(m.DeadDirs)))
	for _, dir := range m.DeadDirs {
		e.inode(dir)
	}
	return e.bytes()
}

// UnmarshalShardMsg decodes a shard message.
func UnmarshalShardMsg(b []byte) (*ShardMsg, error) {
	d := newDecoder(b)
	m := &ShardMsg{}
	m.MapBlob = d.blob()
	n := int(d.u32())
	if n > 0 && d.err == nil {
		m.Entries = make([]MigEntry, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			var ent MigEntry
			ent.Dir = d.inode()
			ent.Name = d.str()
			ent.Target = d.inode()
			ent.Ftype = fsapi.FileType(d.u8())
			ent.Dist = d.boolean()
			m.Entries = append(m.Entries, ent)
		}
	}
	nmarked := int(d.u32())
	for i := 0; i < nmarked && d.err == nil; i++ {
		m.Marked = append(m.Marked, d.inode())
	}
	ndead := int(d.u32())
	for i := 0; i < ndead && d.err == nil; i++ {
		m.DeadDirs = append(m.DeadDirs, d.inode())
	}
	if err := d.finish("shard message"); err != nil {
		return nil, err
	}
	return m, nil
}
