package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a message payload ends before a field could
// be decoded.
var ErrTruncated = errors.New("proto: truncated message")

// encoder appends fields to a byte slice in a compact little-endian format.
type encoder struct {
	buf []byte
}

func newEncoder(sizeHint int) *encoder {
	return &encoder{buf: make([]byte, 0, sizeHint)}
}

func (e *encoder) bytes() []byte { return e.buf }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) i32(v int32)  { e.u32(uint32(v)) }

func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) blob(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) strSlice(ss []string) {
	e.u32(uint32(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

func (e *encoder) u64Slice(vs []uint64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u64(v)
	}
}

func (e *encoder) inode(id InodeID) {
	e.i32(id.Server)
	e.u64(id.Local)
}

// decoder reads fields back in the order they were encoded.
type decoder struct {
	buf []byte
	off int
	err error
}

func newDecoder(b []byte) *decoder { return &decoder{buf: b} }

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.fail()
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }
func (d *decoder) i32() int32 { return int32(d.u32()) }

func (d *decoder) boolean() bool { return d.u8() != 0 }

func (d *decoder) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) blob() []byte {
	n := int(d.u32())
	if n == 0 || !d.need(n) {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

func (d *decoder) strSlice() []string {
	n := int(d.u32())
	if d.err != nil || n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *decoder) u64Slice() []uint64 {
	n := int(d.u32())
	if d.err != nil || n <= 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.u64())
	}
	return out
}

func (d *decoder) inode() InodeID {
	s := d.i32()
	l := d.u64()
	return InodeID{Server: s, Local: l}
}

// remaining reports how many undecoded bytes are left; used for optional
// trailing fields (a zero trace context is simply not encoded, keeping
// untraced messages byte-identical to the pre-tracing format).
func (d *decoder) remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.buf) - d.off
}

func (d *decoder) finish(what string) error {
	if d.err != nil {
		return fmt.Errorf("proto: decoding %s: %w", what, d.err)
	}
	return nil
}
