package proto

import "repro/internal/fsapi"

// DirEntWire is a directory entry as carried on the wire.
type DirEntWire struct {
	Name  string
	Ino   InodeID
	Ftype fsapi.FileType
}

// StatWire is inode metadata as carried on the wire.
type StatWire struct {
	Ino   InodeID
	Ftype fsapi.FileType
	Size  int64
	Nlink int32
	Mode  fsapi.Mode
}

// FdSpec describes one inherited file descriptor in an exec request, so the
// new process on the remote core can reconstruct its descriptor table.
type FdSpec struct {
	Fd     int32   // descriptor number in the new process
	Ino    InodeID // backing inode
	SrvFd  FdID    // server-side shared descriptor (offset lives at server)
	Flags  int32   // open flags
	Offset int64   // offset (only meaningful when SrvFd == NilFd)
	Local  bool    // core-local descriptor (console); accesses proxied back
	Pipe   bool    // descriptor refers to a pipe endpoint
	Write  bool    // pipe write end (vs read end)
}

// Request is the single request message shape used for every operation.
// Only the fields relevant to the given Op are meaningful; the rest are
// zero. Using one fixed shape mirrors message-passing kernels that exchange
// fixed-format message structs, and keeps marshaling simple and uniform.
type Request struct {
	Op       Op
	ClientID int32 // registered client-library id (for invalidation tracking)

	// Epoch is the placement-map epoch the client routed this request
	// under. Zero means the request was not routed through the placement
	// map (inode/fd/pipe/control operations, and entries of centralized
	// directories, which live with the directory's inode and never
	// migrate). Servers answer a mismatched non-zero epoch with EEPOCH
	// (DESIGN.md §9).
	Epoch uint64

	Dir    InodeID // parent directory inode
	Name   string  // directory entry name
	Target InodeID // inode operated on / linked to
	Ftype  fsapi.FileType
	Mode   fsapi.Mode
	Flags  int32
	Size   int64
	Offset int64
	Whence int32
	Count  int32
	Fd     FdID
	Data   []byte

	Distributed bool // for mkdir: shard the new directory's entries
	Exclusive   bool // O_EXCL semantics for create
	Replace     bool // AddMap may replace an existing entry (rename)
	WantOpen    bool // coalesced create should also open a descriptor
	Dirty       bool // close/fd-share: client wrote the file's data directly

	// Scheduling-server fields.
	Program string
	Args    []string
	Env     []string
	Dirname string // working directory for the new process
	Fds     []FdSpec
	PID     int64
	Sig     int32
	Policy  int32 // placement policy state (round-robin counter)

	// Tracing context (internal/trace). Trace is the root-span trace ID
	// and Span the client-side parent span; servers attach child spans
	// under Span. Zero Trace means the request is untraced, and untraced
	// requests marshal byte-identically to the pre-tracing wire format
	// (the fields ride as an optional trailer), so tracing-off changes
	// neither message bytes nor any Economy counter.
	Trace uint64
	Span  uint64
}

// SizeHint returns a capacity estimate for the request's wire form.
func (r *Request) SizeHint() int {
	return 64 + len(r.Name) + len(r.Data) + 16*len(r.Fds)
}

// Marshal encodes the request into a fresh byte slice.
func (r *Request) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.SizeHint()))
}

// AppendTo encodes the request onto buf and returns the extended slice. Hot
// paths pass a recycled buffer so that marshaling allocates nothing.
func (r *Request) AppendTo(buf []byte) []byte {
	e := encoder{buf: buf}
	e.u16(uint16(r.Op))
	e.i32(r.ClientID)
	e.inode(r.Dir)
	e.str(r.Name)
	e.inode(r.Target)
	e.u8(uint8(r.Ftype))
	e.u16(uint16(r.Mode))
	e.i32(r.Flags)
	e.i64(r.Size)
	e.i64(r.Offset)
	e.i32(r.Whence)
	e.i32(r.Count)
	e.u64(uint64(r.Fd))
	e.blob(r.Data)
	e.boolean(r.Distributed)
	e.boolean(r.Exclusive)
	e.boolean(r.Replace)
	e.boolean(r.WantOpen)
	e.boolean(r.Dirty)
	e.str(r.Program)
	e.strSlice(r.Args)
	e.strSlice(r.Env)
	e.str(r.Dirname)
	e.u32(uint32(len(r.Fds)))
	for _, f := range r.Fds {
		e.i32(f.Fd)
		e.inode(f.Ino)
		e.u64(uint64(f.SrvFd))
		e.i32(f.Flags)
		e.i64(f.Offset)
		e.boolean(f.Local)
		e.boolean(f.Pipe)
		e.boolean(f.Write)
	}
	e.i64(r.PID)
	e.i32(r.Sig)
	e.i32(r.Policy)
	e.u64(r.Epoch)
	if r.Trace != 0 {
		e.u64(r.Trace)
		e.u64(r.Span)
	}
	return e.bytes()
}

// UnmarshalRequest decodes a request from a wire payload.
func UnmarshalRequest(b []byte) (*Request, error) {
	r := &Request{}
	if err := UnmarshalRequestInto(r, b); err != nil {
		return nil, err
	}
	return r, nil
}

// UnmarshalRequestInto decodes a request from a wire payload into r, which
// is reset first; hot paths pass a recycled struct. The decoder copies every
// variable-length field, so r never aliases b and the caller may release b
// immediately.
func UnmarshalRequestInto(r *Request, b []byte) error {
	d := newDecoder(b)
	*r = Request{}
	r.Op = Op(d.u16())
	r.ClientID = d.i32()
	r.Dir = d.inode()
	r.Name = d.str()
	r.Target = d.inode()
	r.Ftype = fsapi.FileType(d.u8())
	r.Mode = fsapi.Mode(d.u16())
	r.Flags = d.i32()
	r.Size = d.i64()
	r.Offset = d.i64()
	r.Whence = d.i32()
	r.Count = d.i32()
	r.Fd = FdID(d.u64())
	r.Data = d.blob()
	r.Distributed = d.boolean()
	r.Exclusive = d.boolean()
	r.Replace = d.boolean()
	r.WantOpen = d.boolean()
	r.Dirty = d.boolean()
	r.Program = d.str()
	r.Args = d.strSlice()
	r.Env = d.strSlice()
	r.Dirname = d.str()
	nfds := int(d.u32())
	if nfds > 0 {
		r.Fds = make([]FdSpec, 0, nfds)
		for i := 0; i < nfds; i++ {
			var f FdSpec
			f.Fd = d.i32()
			f.Ino = d.inode()
			f.SrvFd = FdID(d.u64())
			f.Flags = d.i32()
			f.Offset = d.i64()
			f.Local = d.boolean()
			f.Pipe = d.boolean()
			f.Write = d.boolean()
			r.Fds = append(r.Fds, f)
		}
	}
	r.PID = d.i64()
	r.Sig = d.i32()
	r.Policy = d.i32()
	r.Epoch = d.u64()
	if d.remaining() >= 16 {
		r.Trace = d.u64()
		r.Span = d.u64()
	}
	return d.finish("request")
}
