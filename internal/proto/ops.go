package proto

// Op identifies the operation requested by a message.
type Op uint16

// File-server operations.
const (
	OpInvalid Op = iota

	// Pathname / directory-entry operations (addressed by hash server).
	OpLookup // dir+name -> inode,server,type
	OpAddMap // add (or replace) a directory entry
	OpRmMap  // remove a directory entry
	OpReadDirShard

	// Inode operations (addressed to the inode's home server).
	OpMknod       // create an inode (file, dir or pipe)
	OpLinkInode   // nlink++
	OpUnlinkInode // nlink--; free when unreferenced
	OpOpenInode   // permission check, fd refcount++, return block list
	OpCloseInode  // fd refcount--
	OpGetBlocks   // refresh block list and size
	OpExtend      // allocate blocks up to a new size
	OpSetSize     // record new size after direct writes
	OpTruncate    // shrink the file (block reuse deferred)
	OpStat
	OpReadAt  // read file data through the server (direct access disabled)
	OpWriteAt // write file data through the server (direct access disabled)

	// Coalesced operations (single message doing several things on one
	// server, §3.6.3).
	OpCreateCoalesced // AddMap + Mknod + OpenInode in one message

	// rmdir three-phase protocol (§3.3).
	OpRmdirLock    // phase 0: serialize at the directory's home server
	OpRmdirPrepare // phase 1: mark for deletion if shard is empty
	OpRmdirCommit  // phase 2a: really delete
	OpRmdirAbort   // phase 2b: clear the deletion mark
	OpRmdirUnlock  // release the home-server serialization
	OpRmdirFinish  // remove the directory inode itself at its home server

	// Shared file descriptors (§3.4).
	OpFdShare   // migrate an offset to the server; refcount = 2
	OpFdIncRef  // another process inherited the shared fd
	OpFdDecRef  // a process closed its copy; returns offset when count==1
	OpFdUnshare // last holder pulls the offset back to its client library
	OpFdRead    // read through the server at the shared offset
	OpFdWrite   // write through the server at the shared offset
	OpFdSeek    // reposition the shared offset
	OpFdGetInfo // current offset (for fstat/lseek(0,CUR))

	// Pipes.
	OpPipeCreate
	OpPipeRead
	OpPipeWrite
	OpPipeIncReader
	OpPipeIncWriter
	OpPipeCloseRead
	OpPipeCloseWrite

	// Durability (write-ahead log, DESIGN.md §6).
	OpCheckpoint // snapshot server state and truncate the log

	// Generic op batching (DESIGN.md §7): one message carrying several
	// independent sub-requests for the same server, answered by one message
	// carrying the per-sub-op responses. The envelope Request uses only the
	// Data field (the marshaled batch).
	OpBatch

	// Shard migration (elastic placement, DESIGN.md §9). Driven by the
	// deployment's control plane against each server individually — servers
	// still never talk to each other.
	OpShardFreeze // announce a pending epoch: entry mutations park
	OpShardPull   // copy out the entries leaving this server under a new map
	OpShardCommit // install incoming entries, drop outgoing, adopt the epoch

	// Directory-cache invalidation callback (server -> client).
	OpInvalidate

	// Scheduling-server operations (§3.5).
	OpExec   // run a program on the scheduling server's core
	OpSignal // forward a signal to a process
	OpPing   // liveness / latency measurement (used at boot for affinity)

	// Shard replication (primary -> follower WAL shipping, DESIGN.md §12).
	// These travel on each server's replication-plane endpoint, never its
	// request inbox, so a follower can ack while its request loop is busy.
	OpReplAppend // ship a flushed record batch (or a rebase snapshot)
	OpReplAck    // follower's durable horizon (async mode's one-way ack)
	OpReplSeal   // control plane: stop ingesting, return the replica snapshot
)

var opNames = map[Op]string{
	OpLookup:          "LOOKUP",
	OpAddMap:          "ADD_MAP",
	OpRmMap:           "RM_MAP",
	OpReadDirShard:    "READDIR",
	OpMknod:           "MKNOD",
	OpLinkInode:       "LINK",
	OpUnlinkInode:     "UNLINK_INODE",
	OpOpenInode:       "OPEN",
	OpCloseInode:      "CLOSE",
	OpGetBlocks:       "GET_BLOCKS",
	OpExtend:          "EXTEND",
	OpSetSize:         "SET_SIZE",
	OpTruncate:        "TRUNCATE",
	OpStat:            "STAT",
	OpReadAt:          "READ_AT",
	OpWriteAt:         "WRITE_AT",
	OpCreateCoalesced: "CREATE_COALESCED",
	OpRmdirLock:       "RMDIR_LOCK",
	OpRmdirPrepare:    "RMDIR_PREPARE",
	OpRmdirCommit:     "RMDIR_COMMIT",
	OpRmdirAbort:      "RMDIR_ABORT",
	OpRmdirUnlock:     "RMDIR_UNLOCK",
	OpRmdirFinish:     "RMDIR_FINISH",
	OpFdShare:         "FD_SHARE",
	OpFdIncRef:        "FD_INCREF",
	OpFdDecRef:        "FD_DECREF",
	OpFdUnshare:       "FD_UNSHARE",
	OpFdRead:          "FD_READ",
	OpFdWrite:         "FD_WRITE",
	OpFdSeek:          "FD_SEEK",
	OpFdGetInfo:       "FD_GETINFO",
	OpPipeCreate:      "PIPE_CREATE",
	OpPipeRead:        "PIPE_READ",
	OpPipeWrite:       "PIPE_WRITE",
	OpPipeIncReader:   "PIPE_INC_R",
	OpPipeIncWriter:   "PIPE_INC_W",
	OpPipeCloseRead:   "PIPE_CLOSE_R",
	OpPipeCloseWrite:  "PIPE_CLOSE_W",
	OpCheckpoint:      "CHECKPOINT",
	OpShardFreeze:     "SHARD_FREEZE",
	OpShardPull:       "SHARD_PULL",
	OpShardCommit:     "SHARD_COMMIT",
	OpBatch:           "BATCH",
	OpInvalidate:      "INVALIDATE",
	OpExec:            "EXEC",
	OpSignal:          "SIGNAL",
	OpPing:            "PING",
	OpReplAppend:      "REPL_APPEND",
	OpReplAck:         "REPL_ACK",
	OpReplSeal:        "REPL_SEAL",
}

// String returns the wire name of the operation.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "OP_UNKNOWN"
}

// Message kinds used at the msg layer.
const (
	KindRequest  uint16 = 1
	KindResponse uint16 = 2
	KindCallback uint16 = 3
)
