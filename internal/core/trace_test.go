package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/place"
	"repro/internal/sched"
	"repro/internal/trace"
)

// newTracedSystem builds a deployment with tracing on (every op sampled).
func newTracedSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.Trace.Sample == 0 {
		cfg.Trace = trace.Config{Sample: 1}
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

func tracedConfig(cores, servers int) Config {
	return Config{
		Cores:            cores,
		Servers:          servers,
		Timeshare:        true,
		Techniques:       AllTechniques(),
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 8 << 20,
		BlockSize:        4096,
		Trace:            trace.Config{Sample: 1},
	}
}

// spanIndex maps span IDs to spans for parent-edge checks.
func spanIndex(spans []trace.Span) map[uint64]trace.Span {
	idx := make(map[uint64]trace.Span, len(spans))
	for _, s := range spans {
		idx[s.ID] = s
	}
	return idx
}

// TestTraceSpanNesting drives a few ops through a traced deployment and
// checks the propagation edges: every span belongs to a root's trace, RPC
// spans hang off roots, and server-side spans hang off the request's
// client-side span.
func TestTraceSpanNesting(t *testing.T) {
	sys := newTracedSystem(t, tracedConfig(4, 2))
	cli := sys.NewClient(0)

	fd, err := cli.Open("/a.txt", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(fd, bytes.Repeat([]byte("x"), 9000)); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(fd); err != nil {
		t.Fatal(err)
	}
	st, err := cli.Stat("/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	_ = st

	spans := sys.Tracer().Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	idx := spanIndex(spans)
	roots := make(map[uint64]trace.Span)
	for _, s := range spans {
		if s.Kind == trace.KindRoot {
			roots[s.Trace] = s
			if s.Trace != s.ID {
				t.Errorf("root span %x: trace id %x should equal its own id", s.ID, s.Trace)
			}
		}
	}
	if len(roots) < 4 {
		t.Fatalf("expected root spans for open/write/close/stat, got %d", len(roots))
	}
	var rpcs, services, nets int
	for _, s := range spans {
		if _, ok := roots[s.Trace]; !ok {
			t.Errorf("span kind=%s id=%x: trace %x has no root span", s.Kind, s.ID, s.Trace)
			continue
		}
		switch s.Kind {
		case trace.KindRoot:
			if s.Parent != 0 {
				t.Errorf("root span %x has parent %x", s.ID, s.Parent)
			}
		case trace.KindRPC:
			rpcs++
			if s.Parent != roots[s.Trace].ID {
				t.Errorf("rpc span %x: parent %x is not its root %x", s.ID, s.Parent, roots[s.Trace].ID)
			}
			if s.Where < 0 {
				t.Errorf("rpc span %x recorded by a server (where %d)", s.ID, s.Where)
			}
		case trace.KindNetReq, trace.KindQueue, trace.KindService:
			if s.Kind == trace.KindService {
				services++
			} else if s.Kind == trace.KindNetReq {
				nets++
			}
			if s.Where >= 0 {
				t.Errorf("%s span %x recorded by a client (where %d)", s.Kind, s.ID, s.Where)
			}
			parent, ok := idx[s.Parent]
			if !ok {
				// The parent is the request's client-side span; sync RPCs
				// stamp the RPC span, async sends stamp the root.
				t.Errorf("%s span %x: parent %x not in ring", s.Kind, s.ID, s.Parent)
				continue
			}
			if parent.Kind != trace.KindRPC && parent.Kind != trace.KindRoot {
				t.Errorf("%s span %x: parent kind %s, want rpc or root", s.Kind, s.ID, parent.Kind)
			}
		}
		if s.End < s.Start {
			t.Errorf("span %x (%s) ends at %d before start %d", s.ID, s.Kind, s.End, s.Start)
		}
	}
	if rpcs == 0 || services == 0 || nets == 0 {
		t.Fatalf("missing span kinds: %d rpc, %d service, %d net", rpcs, services, nets)
	}
}

// TestTraceBatchSubSpans forces a batched scatter (several dirty files per
// server, flushed by Sync) and checks that every batch sub-op got a child
// span under the batch envelope's service span.
func TestTraceBatchSubSpans(t *testing.T) {
	sys := newTracedSystem(t, tracedConfig(4, 2))
	cli := sys.NewClient(0)

	// Several dirty files per server: Sync packs the per-server size
	// updates into OpBatch envelopes.
	for i := 0; i < 8; i++ {
		fd, err := cli.Open(fmt.Sprintf("/b%02d", i), fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Write(fd, bytes.Repeat([]byte("y"), 600)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Sync(); err != nil {
		t.Fatal(err)
	}

	spans := sys.Tracer().Spans()
	idx := spanIndex(spans)
	subs := 0
	for _, s := range spans {
		if s.Kind != trace.KindSub {
			continue
		}
		subs++
		parent, ok := idx[s.Parent]
		if !ok {
			t.Fatalf("sub span %x: parent %x not recorded", s.ID, s.Parent)
		}
		if parent.Kind != trace.KindService {
			t.Fatalf("sub span %x: parent kind %s, want service", s.ID, parent.Kind)
		}
		if s.Trace != parent.Trace {
			t.Fatalf("sub span %x: trace %x differs from parent's %x", s.ID, s.Trace, parent.Trace)
		}
		if s.Start < parent.Start || s.End > parent.End {
			t.Errorf("sub span %x [%d,%d] outside service span [%d,%d]", s.ID, s.Start, s.End, parent.Start, parent.End)
		}
	}
	if subs == 0 {
		t.Fatal("no batch sub spans recorded; expected the writeback to batch")
	}
}

// TestTraceEpochRetryChainsIntoRoot grows the fleet under a client with a
// cached routing snapshot and checks that the resulting EEPOCH
// refresh-and-retry rounds appear as spans chained into the op's root, not
// as fresh traces.
func TestTraceEpochRetryChainsIntoRoot(t *testing.T) {
	cfg := tracedConfig(4, 2)
	cfg.MaxServers = 4
	cfg.PlacePolicy = place.PolicyRing
	sys := newTracedSystem(t, cfg)
	cli := sys.NewClient(0)

	if err := cli.Mkdir("/dist", fsapi.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	mkfile := func(path string) {
		t.Helper()
		fd, err := cli.Open(path, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		mkfile(fmt.Sprintf("/dist/pre%d", i))
	}
	if _, err := sys.AddServer(); err != nil {
		t.Fatal(err)
	}
	// The client's snapshot is now stale: the next placement-routed ops
	// answer EEPOCH and retry after a refresh.
	for i := 0; i < 8; i++ {
		mkfile(fmt.Sprintf("/dist/post%d", i))
	}

	spans := sys.Tracer().Spans()
	idx := spanIndex(spans)
	refreshes := 0
	for _, s := range spans {
		if s.Kind != trace.KindEpochRefresh {
			continue
		}
		refreshes++
		parent, ok := idx[s.Parent]
		if !ok {
			t.Fatalf("eepoch span %x: parent %x not recorded", s.ID, s.Parent)
		}
		if parent.Kind != trace.KindRoot {
			t.Fatalf("eepoch span %x: parent kind %s, want the op's root", s.ID, parent.Kind)
		}
		if s.Trace != parent.Trace {
			t.Fatalf("eepoch span %x: trace %x differs from root's %x", s.ID, s.Trace, parent.Trace)
		}
		// The retry's RPC must be in the same trace, after the refresh.
		retried := false
		for _, r := range spans {
			if r.Kind == trace.KindRPC && r.Trace == s.Trace && r.End >= s.End {
				retried = true
				break
			}
		}
		if !retried {
			t.Errorf("eepoch span %x: no RPC span in trace %x at or after the refresh", s.ID, s.Trace)
		}
	}
	if refreshes == 0 {
		t.Fatal("no EEPOCH refresh spans; expected the stale snapshot to retry")
	}
}

// TestTraceCrashRecoverNoIDReuse crashes and recovers a server mid-trace
// and checks that its span IDs never repeat: recovery bumps the emitter
// incarnation, giving the reborn server a fresh ID namespace.
func TestTraceCrashRecoverNoIDReuse(t *testing.T) {
	cfg := tracedConfig(2, 1)
	cfg.Durability = Durability{Enabled: true}
	sys := newTracedSystem(t, cfg)
	cli := sys.NewClient(0)

	mkfile := func(path string) {
		t.Helper()
		fd, err := cli.Open(path, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Write(fd, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := cli.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		mkfile(fmt.Sprintf("/pre%d", i))
	}
	before := len(sys.Tracer().Spans())
	if err := sys.Crash(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Recover(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mkfile(fmt.Sprintf("/post%d", i))
	}

	spans := sys.Tracer().Spans()
	if len(spans) <= before {
		t.Fatal("no spans recorded after recovery")
	}
	seen := make(map[uint64]trace.Span)
	serverSpans := 0
	for _, s := range spans {
		if prev, dup := seen[s.ID]; dup {
			t.Fatalf("span id %x reused: first %s@%d, again %s@%d", s.ID, prev.Kind, prev.Start, s.Kind, s.Start)
		}
		seen[s.ID] = s
		if s.Where < 0 {
			serverSpans++
		}
	}
	if serverSpans == 0 {
		t.Fatal("no server-side spans recorded")
	}
}

// TestTraceSampleZeroIsFree pins the zero-overhead-when-off contract: a
// deployment with Trace.Sample=0 builds no tracer, stamps no wire trailers,
// and runs the exact same virtual timeline and message economy as one with
// no Trace config at all.
func TestTraceSampleZeroIsFree(t *testing.T) {
	run := func(tc trace.Config) (*System, func()) {
		cfg := tracedConfig(2, 2)
		cfg.Trace = tc
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.Start()
		cli := sys.NewClient(0)
		fd, err := cli.Open("/f", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Write(fd, bytes.Repeat([]byte("z"), 5000)); err != nil {
			t.Fatal(err)
		}
		if err := cli.Close(fd); err != nil {
			t.Fatal(err)
		}
		if err := cli.Mkdir("/d", fsapi.MkdirOpt{}); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.ReadDir("/"); err != nil {
			t.Fatal(err)
		}
		return sys, sys.Stop
	}
	a, stopA := run(trace.Config{})
	defer stopA()
	b, stopB := run(trace.Config{Sample: 0, Ring: 4096})
	defer stopB()

	if a.Tracer() != nil || b.Tracer() != nil {
		t.Fatal("Sample=0 must not build a tracer")
	}
	ea, eb := a.MessageEconomy(), b.MessageEconomy()
	if ea != eb {
		t.Fatalf("economy diverged with Sample=0:\n  none: %+v\n  zero: %+v", ea, eb)
	}
	if ca, cb := a.MaxServerClock(), b.MaxServerClock(); ca != cb {
		t.Fatalf("virtual timeline diverged with Sample=0: %d vs %d cycles", ca, cb)
	}
}

// goldenTraceRun executes a fixed, single-client smallfile-style sequence —
// virtually deterministic — and returns the Chrome trace_event export.
func goldenTraceRun(t *testing.T) []byte {
	t.Helper()
	sys := newTracedSystem(t, tracedConfig(2, 2))
	cli := sys.NewClient(0)
	if err := cli.Mkdir("/small", fsapi.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		path := fmt.Sprintf("/small/f%02d", i)
		fd, err := cli.Open(path, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Write(fd, bytes.Repeat([]byte{byte('a' + i)}, 100*(i+1))); err != nil {
			t.Fatal(err)
		}
		if err := cli.Close(fd); err != nil {
			t.Fatal(err)
		}
		fd, err = cli.Open(path, fsapi.ORdOnly, 0)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1024)
		if _, err := cli.Read(fd, buf); err != nil {
			t.Fatal(err)
		}
		if err := cli.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cli.ReadDir("/small"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Unlink("/small/f00"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, sys.Tracer().Spans()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGoldenChromeExport is the CI determinism gate: the fixed-seed
// smallfile-style run must export byte-identical Chrome trace JSON on every
// run, matching the committed golden file. Regenerate with
// UPDATE_TRACE_GOLDEN=1 go test ./internal/core -run GoldenChrome.
func TestTraceGoldenChromeExport(t *testing.T) {
	got := goldenTraceRun(t)
	again := goldenTraceRun(t)
	if !bytes.Equal(got, again) {
		t.Fatal("two identical runs exported different Chrome JSON")
	}

	// The export must be valid Chrome trace_event JSON (Perfetto-loadable).
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no trace events")
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if os.Getenv("UPDATE_TRACE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run UPDATE_TRACE_GOLDEN=1 go test ./internal/core -run GoldenChrome): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Chrome export diverged from %s (got %d bytes, want %d); if the cost model or span wiring changed intentionally, regenerate with UPDATE_TRACE_GOLDEN=1", golden, len(got), len(want))
	}
}
