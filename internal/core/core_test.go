package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/sched"
)

// newTestSystem builds and starts a small Hare deployment for tests.
func newTestSystem(t *testing.T, cores, servers int) *System {
	t.Helper()
	cfg := Config{
		Cores:            cores,
		Servers:          servers,
		Timeshare:        true,
		Techniques:       AllTechniques(),
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 8 << 20,
		BlockSize:        4096,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Cores: 0}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := New(Config{Cores: 4, Servers: 4, Timeshare: false}); err == nil {
		t.Error("split config with servers == cores accepted")
	}
	if _, err := New(Config{Cores: 4, Servers: 8, Timeshare: true}); err == nil {
		t.Error("more servers than cores accepted")
	}
	sys, err := New(Config{Cores: 4, Timeshare: true, Techniques: AllTechniques()})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Config().Servers != 4 {
		t.Error("servers should default to cores")
	}
	if sys.Config().BlockSize != 4096 || sys.Config().BufferCacheBytes != 256<<20 {
		t.Error("defaults not applied")
	}
}

func TestSplitConfigurationCores(t *testing.T) {
	sys, err := New(Config{Cores: 8, Servers: 3, Timeshare: false, Techniques: AllTechniques()})
	if err != nil {
		t.Fatal(err)
	}
	app := sys.AppCores()
	if len(app) != 5 {
		t.Fatalf("split 3/8 should leave 5 app cores, got %d", len(app))
	}
	for _, c := range app {
		if c >= 5 {
			t.Errorf("app core %d overlaps server cores", c)
		}
	}
}

func TestCreateWriteReadAcrossCores(t *testing.T) {
	sys := newTestSystem(t, 4, 4)
	writer := sys.NewClient(0)
	reader := sys.NewClient(2)

	fd, err := writer.Open("/data.txt", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("hare!"), 2000) // spans multiple blocks
	if n, err := writer.Write(fd, payload); err != nil || n != len(payload) {
		t.Fatalf("write = %d, %v", n, err)
	}
	if err := writer.Close(fd); err != nil {
		t.Fatal(err)
	}

	// Close-to-open consistency: a fresh open on another core sees the data.
	rfd, err := reader.Open("/data.txt", fsapi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	n, err := reader.Read(rfd, got)
	if err != nil || n != len(payload) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data read back does not match data written")
	}
	if err := reader.Close(rfd); err != nil {
		t.Fatal(err)
	}

	st, err := reader.Stat("/data.txt")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len(payload)) || st.Type != fsapi.TypeRegular {
		t.Fatalf("stat = %+v", st)
	}
}

func TestOpenErrors(t *testing.T) {
	sys := newTestSystem(t, 2, 2)
	cli := sys.NewClient(0)

	if _, err := cli.Open("/missing", fsapi.ORdOnly, 0); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Errorf("open missing: %v", err)
	}
	if _, err := cli.Open("/a", fsapi.OCreate, fsapi.Mode644); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Open("/a", fsapi.OCreate|fsapi.OExcl, fsapi.Mode644); !fsapi.IsErrno(err, fsapi.EEXIST) {
		t.Errorf("O_EXCL on existing: %v", err)
	}
	if _, err := cli.Open("/a/b", fsapi.OCreate, fsapi.Mode644); !fsapi.IsErrno(err, fsapi.ENOTDIR) {
		t.Errorf("create under file: %v", err)
	}
	if _, err := cli.Open("/", fsapi.OWrOnly, 0); !fsapi.IsErrno(err, fsapi.EISDIR) {
		t.Errorf("write-open dir: %v", err)
	}
	if err := cli.Close(fsapi.FD(99)); !fsapi.IsErrno(err, fsapi.EBADF) {
		t.Errorf("close bad fd: %v", err)
	}
}

func TestPermissionChecks(t *testing.T) {
	sys := newTestSystem(t, 2, 2)
	cli := sys.NewClient(0)
	if _, err := cli.Open("/ro", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode(0o400)); err != nil {
		t.Fatal(err)
	}
	// Reopen for write must fail the permission check.
	if _, err := cli.Open("/ro", fsapi.OWrOnly, 0); !fsapi.IsErrno(err, fsapi.EACCES) {
		t.Errorf("expected EACCES, got %v", err)
	}
	if _, err := cli.Open("/ro", fsapi.ORdOnly, 0); err != nil {
		t.Errorf("read open should pass: %v", err)
	}
}

func TestMkdirReadDirUnlinkRmdir(t *testing.T) {
	sys := newTestSystem(t, 4, 4)
	cli := sys.NewClient(1)

	if err := cli.Mkdir("/work", fsapi.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Mkdir("/work", fsapi.MkdirOpt{}); !fsapi.IsErrno(err, fsapi.EEXIST) {
		t.Errorf("duplicate mkdir: %v", err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		fd, err := cli.Open(fmt.Sprintf("/work/f%02d", i), fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := cli.ReadDir("/work")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("readdir returned %d entries, want %d", len(ents), n)
	}
	for i := 1; i < len(ents); i++ {
		if ents[i-1].Name >= ents[i].Name {
			t.Fatal("entries not sorted")
		}
	}

	// rmdir on a non-empty distributed directory must fail atomically.
	if err := cli.Rmdir("/work"); !fsapi.IsErrno(err, fsapi.ENOTEMPTY) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	// ... and the directory must still be usable afterwards (abort path).
	if _, err := cli.Stat("/work/f00"); err != nil {
		t.Fatalf("directory unusable after aborted rmdir: %v", err)
	}

	for i := 0; i < n; i++ {
		if err := cli.Unlink(fmt.Sprintf("/work/f%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ents, err = cli.ReadDir("/work")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("directory should be empty, has %d entries", len(ents))
	}
	if err := cli.Rmdir("/work"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Stat("/work"); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Fatalf("stat after rmdir: %v", err)
	}
	if err := cli.Rmdir("/work"); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Fatalf("double rmdir: %v", err)
	}
}

func TestUnlinkVsRmdirTypeChecks(t *testing.T) {
	sys := newTestSystem(t, 2, 2)
	cli := sys.NewClient(0)
	if err := cli.Mkdir("/d", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}
	fd, err := cli.Open("/f", fsapi.OCreate, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close(fd)
	if err := cli.Unlink("/d"); !fsapi.IsErrno(err, fsapi.EISDIR) {
		t.Errorf("unlink dir: %v", err)
	}
	if err := cli.Rmdir("/f"); !fsapi.IsErrno(err, fsapi.ENOTDIR) {
		t.Errorf("rmdir file: %v", err)
	}
}

func TestRenameWithinAndAcrossDirectories(t *testing.T) {
	sys := newTestSystem(t, 4, 4)
	cli := sys.NewClient(0)
	if err := cli.Mkdir("/a", fsapi.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Mkdir("/b", fsapi.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	fd, err := cli.Open("/a/src", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	cli.Write(fd, []byte("rename me"))
	cli.Close(fd)

	if err := cli.Rename("/a/src", "/b/dst"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Stat("/a/src"); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Fatalf("old name still visible: %v", err)
	}
	st, err := cli.Stat("/b/dst")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len("rename me")) {
		t.Fatalf("renamed file size %d", st.Size)
	}

	// Rename over an existing file replaces it.
	fd, _ = cli.Open("/b/other", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
	cli.Write(fd, []byte("loser"))
	cli.Close(fd)
	if err := cli.Rename("/b/dst", "/b/other"); err != nil {
		t.Fatal(err)
	}
	rfd, err := cli.Open("/b/other", fsapi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, _ := cli.Read(rfd, buf)
	cli.Close(rfd)
	if string(buf[:n]) != "rename me" {
		t.Fatalf("replacement content %q", buf[:n])
	}
}

func TestUnlinkedFileRemainsReadable(t *testing.T) {
	sys := newTestSystem(t, 2, 2)
	writer := sys.NewClient(0)
	remover := sys.NewClient(1)

	fd, err := writer.Open("/victim", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	writer.Write(fd, []byte("still here"))
	writer.Fsync(fd)

	// Another process unlinks the file while it is open (the paper's
	// compilation scenario, §2.2).
	if err := remover.Unlink("/victim"); err != nil {
		t.Fatal(err)
	}
	if _, err := remover.Stat("/victim"); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Fatalf("unlinked file still visible: %v", err)
	}

	// The original descriptor still reads valid data.
	if _, err := writer.Seek(fd, 0, fsapi.SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := writer.Read(fd, buf)
	if err != nil || string(buf[:n]) != "still here" {
		t.Fatalf("read after unlink: %q, %v", buf[:n], err)
	}
	if err := writer.Close(fd); err != nil {
		t.Fatal(err)
	}
}

func TestSeekPreadPwriteFtruncate(t *testing.T) {
	sys := newTestSystem(t, 2, 2)
	cli := sys.NewClient(0)
	fd, err := cli.Open("/f", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	cli.Write(fd, []byte("0123456789"))
	if pos, err := cli.Seek(fd, 2, fsapi.SeekSet); err != nil || pos != 2 {
		t.Fatalf("seek: %d %v", pos, err)
	}
	buf := make([]byte, 3)
	if n, _ := cli.Read(fd, buf); n != 3 || string(buf) != "234" {
		t.Fatalf("read after seek: %q", buf[:n])
	}
	if n, err := cli.Pread(fd, buf, 7); err != nil || n != 3 || string(buf) != "789" {
		t.Fatalf("pread: %q %v", buf[:n], err)
	}
	if _, err := cli.Pwrite(fd, []byte("AB"), 0); err != nil {
		t.Fatal(err)
	}
	if n, _ := cli.Pread(fd, buf, 0); string(buf[:n]) != "AB2" {
		t.Fatalf("pwrite not visible: %q", buf[:n])
	}
	if pos, _ := cli.Seek(fd, -1, fsapi.SeekEnd); pos != 9 {
		t.Fatalf("seek end: %d", pos)
	}
	if err := cli.Ftruncate(fd, 4); err != nil {
		t.Fatal(err)
	}
	st, _ := cli.Fstat(fd)
	if st.Size != 4 {
		t.Fatalf("size after truncate = %d", st.Size)
	}
	if n, _ := cli.Pread(fd, buf, 2); n != 2 {
		t.Fatalf("read past truncation returned %d bytes", n)
	}
	cli.Close(fd)
}

func TestOTruncAndAppend(t *testing.T) {
	sys := newTestSystem(t, 2, 2)
	cli := sys.NewClient(0)
	fd, _ := cli.Open("/log", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
	cli.Write(fd, []byte("aaaa"))
	cli.Close(fd)

	fd, err := cli.Open("/log", fsapi.OWrOnly|fsapi.OTrunc, 0)
	if err != nil {
		t.Fatal(err)
	}
	cli.Write(fd, []byte("bb"))
	cli.Close(fd)
	st, _ := cli.Stat("/log")
	if st.Size != 2 {
		t.Fatalf("size after O_TRUNC rewrite = %d", st.Size)
	}

	fd, err = cli.Open("/log", fsapi.OWrOnly|fsapi.OAppend, 0)
	if err != nil {
		t.Fatal(err)
	}
	cli.Write(fd, []byte("cc"))
	cli.Close(fd)
	rfd, _ := cli.Open("/log", fsapi.ORdOnly, 0)
	buf := make([]byte, 16)
	n, _ := cli.Read(rfd, buf)
	cli.Close(rfd)
	if string(buf[:n]) != "bbcc" {
		t.Fatalf("append result %q", buf[:n])
	}
}

func TestDupSharesOffset(t *testing.T) {
	sys := newTestSystem(t, 2, 2)
	cli := sys.NewClient(0)
	fd, _ := cli.Open("/f", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	cli.Write(fd, []byte("abcdef"))
	cli.Seek(fd, 0, fsapi.SeekSet)
	dup, err := cli.Dup(fd)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	cli.Read(fd, buf)
	// The dup'd descriptor continues where the original left off.
	n, _ := cli.Read(dup, buf)
	if string(buf[:n]) != "def" {
		t.Fatalf("dup offset not shared: %q", buf[:n])
	}
	cli.Close(fd)
	// Description still open through dup.
	if _, err := cli.Read(dup, buf); err != nil {
		t.Fatalf("read after closing one dup: %v", err)
	}
	cli.Close(dup)
}

func TestChdirRelativePaths(t *testing.T) {
	sys := newTestSystem(t, 2, 2)
	cli := sys.NewClient(0)
	cli.Mkdir("/top", fsapi.MkdirOpt{})
	cli.Mkdir("/top/sub", fsapi.MkdirOpt{})
	if err := cli.Chdir("/top/sub"); err != nil {
		t.Fatal(err)
	}
	if cli.Getcwd() != "/top/sub" {
		t.Fatalf("cwd = %q", cli.Getcwd())
	}
	fd, err := cli.Open("rel.txt", fsapi.OCreate, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close(fd)
	if _, err := cli.Stat("/top/sub/rel.txt"); err != nil {
		t.Fatalf("relative create landed elsewhere: %v", err)
	}
	if _, err := cli.Stat("../sub/rel.txt"); err != nil {
		t.Fatalf("dot-dot resolution failed: %v", err)
	}
	if err := cli.Chdir("/missing"); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Errorf("chdir missing: %v", err)
	}
	if err := cli.Chdir("/top/sub/rel.txt"); !fsapi.IsErrno(err, fsapi.ENOTDIR) {
		t.Errorf("chdir to file: %v", err)
	}
}

func TestPipeWithinProcess(t *testing.T) {
	sys := newTestSystem(t, 2, 2)
	cli := sys.NewClient(0)
	r, w, err := cli.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := cli.Write(w, []byte("ping")); err != nil || n != 4 {
		t.Fatalf("pipe write: %d %v", n, err)
	}
	buf := make([]byte, 8)
	if n, err := cli.Read(r, buf); err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("pipe read: %q %v", buf[:n], err)
	}
	// EOF after the write end closes.
	cli.Close(w)
	if n, err := cli.Read(r, buf); err != nil || n != 0 {
		t.Fatalf("pipe EOF: %d %v", n, err)
	}
	cli.Close(r)
}

func TestForkSharedFileDescriptorOffset(t *testing.T) {
	sys := newTestSystem(t, 4, 4)
	parent := sys.NewClient(0)
	fd, err := parent.Open("/shared", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	parent.Write(fd, []byte("0123456789"))
	parent.Seek(fd, 0, fsapi.SeekSet)

	childFS, err := parent.CloneForFork(1)
	if err != nil {
		t.Fatal(err)
	}
	child := childFS.(fsapi.Client)

	buf := make([]byte, 4)
	if n, err := parent.Read(fd, buf); err != nil || string(buf[:n]) != "0123" {
		t.Fatalf("parent read: %q %v", buf[:n], err)
	}
	// The child shares the offset (POSIX fork semantics, §3.4): its read
	// continues where the parent stopped.
	if n, err := child.Read(fd, buf); err != nil || string(buf[:n]) != "4567" {
		t.Fatalf("child read: %q %v", buf[:n], err)
	}
	// And the parent observes the child's progress.
	if n, err := parent.Read(fd, buf); err != nil || string(buf[:n]) != "89" {
		t.Fatalf("parent second read: %q %v", buf[:n], err)
	}
	if err := child.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := parent.Close(fd); err != nil {
		t.Fatal(err)
	}
}

func TestForkPipeBetweenCores(t *testing.T) {
	sys := newTestSystem(t, 4, 4)
	parent := sys.NewClient(0)
	r, w, err := parent.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	childFS, err := parent.CloneForFork(2)
	if err != nil {
		t.Fatal(err)
	}
	child := childFS.(fsapi.Client)

	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 16)
		// Blocking read on the child until the parent writes.
		n, _ := child.Read(r, buf)
		done <- string(buf[:n])
	}()
	if _, err := parent.Write(w, []byte("jobserver")); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != "jobserver" {
		t.Fatalf("child read %q", got)
	}
	child.Close(r)
	child.Close(w)
	parent.Close(r)
	parent.Close(w)
}

func TestStatReportsServerPlacement(t *testing.T) {
	sys := newTestSystem(t, 4, 4)
	cli := sys.NewClient(0)
	cli.Mkdir("/spread", fsapi.MkdirOpt{Distributed: true})
	servers := make(map[int]bool)
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("/spread/f%02d", i)
		fd, err := cli.Open(name, fsapi.OCreate, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		cli.Close(fd)
		st, err := cli.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		servers[st.Server] = true
	}
	if len(servers) < 2 {
		t.Fatalf("distributed directory placed all inodes on %d server(s)", len(servers))
	}
}

func TestServerStatsAndClocks(t *testing.T) {
	sys := newTestSystem(t, 2, 2)
	cli := sys.NewClient(0)
	fd, _ := cli.Open("/x", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
	cli.Write(fd, []byte("y"))
	cli.Close(fd)
	stats := sys.ServerStats()
	var totalOps uint64
	for _, s := range stats {
		for _, n := range s.Ops {
			totalOps += n
		}
	}
	if totalOps == 0 {
		t.Fatal("servers report no operations")
	}
	if sys.MaxServerClock() == 0 {
		t.Fatal("server clocks did not advance")
	}
	if sys.Seconds(2_400_000_000) < 0.9 {
		t.Fatal("Seconds conversion wrong")
	}
	if cli.Clock() == 0 {
		t.Fatal("client clock did not advance")
	}
}
