package core

import (
	"fmt"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/place"
	"repro/internal/proto"
	"repro/internal/sched"
)

// elasticSystem builds a started deployment with headroom for growth.
func elasticSystem(t *testing.T, policy place.Policy, servers, maxServers int, d *Durability) *System {
	t.Helper()
	cfg := Config{
		Cores:            8,
		Servers:          servers,
		MaxServers:       maxServers,
		Timeshare:        true,
		Techniques:       AllTechniques(),
		Placement:        sched.PolicyRoundRobin,
		PlacePolicy:      policy,
		BufferCacheBytes: 32 << 20,
	}
	if d != nil {
		cfg.Durability = *d
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

// seedFiles creates n files inside a distributed directory and returns the
// directory's inode id plus the file names.
func seedFiles(t *testing.T, sys *System, n int) (proto.InodeID, []string) {
	t.Helper()
	cli := sys.NewClient(0)
	if err := cli.Mkdir("/d", fsapi.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("f%03d", i)
		fd, err := cli.Open("/d/"+names[i], fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
		if err != nil {
			t.Fatalf("create %s: %v", names[i], err)
		}
		if _, err := cli.Write(fd, []byte(names[i])); err != nil {
			t.Fatal(err)
		}
		if err := cli.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cli.Stat("/d")
	if err != nil {
		t.Fatal(err)
	}
	return proto.InodeID{Server: int32(st.Server), Local: st.Ino}, names
}

// verifyFiles checks every seeded file resolves and reads back its content
// through a fresh client (no warm caches).
func verifyFiles(t *testing.T, sys *System, names []string) {
	t.Helper()
	cli := sys.NewClient(1)
	ents, err := cli.ReadDir("/d")
	if err != nil {
		t.Fatalf("readdir after migration: %v", err)
	}
	if len(ents) != len(names) {
		t.Fatalf("readdir sees %d entries, want %d", len(ents), len(names))
	}
	for _, name := range names {
		fd, err := cli.Open("/d/"+name, fsapi.ORdOnly, 0)
		if err != nil {
			t.Fatalf("open %s after migration: %v", name, err)
		}
		buf := make([]byte, len(name))
		if n, err := cli.Read(fd, buf); err != nil || string(buf[:n]) != name {
			t.Fatalf("read %s after migration: got %q (%v)", name, buf[:n], err)
		}
		if err := cli.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAddServerMovesOnlyDeltaShards grows a ring deployment by one server
// and asserts (a) the namespace survives intact, (b) the epoch advanced,
// and (c) migration moved exactly the delta shard set — the entries whose
// route differs between the two maps — as counted by the new Economy
// counter.
func TestAddServerMovesOnlyDeltaShards(t *testing.T) {
	sys := elasticSystem(t, place.PolicyRing, 3, 5, nil)
	dir, names := seedFiles(t, sys, 80)

	oldMap := place.Initial(place.PolicyRing, 3)
	newMap := oldMap.Add(3)
	expected := 0
	for _, name := range names {
		if oldMap.Route(proto.Hash(dir, name)) != newMap.Route(proto.Hash(dir, name)) {
			expected++
		}
	}
	if expected == 0 {
		t.Fatal("test is vacuous: no entry moves under this membership change")
	}

	id, err := sys.AddServer()
	if err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	if id != 3 {
		t.Fatalf("new server id = %d, want 3", id)
	}
	if got := sys.Epoch(); got != 2 {
		t.Fatalf("epoch after add = %d, want 2", got)
	}
	if got := len(sys.Members()); got != 4 {
		t.Fatalf("members after add = %d, want 4", got)
	}
	if got := sys.MessageEconomy().MigEntries; got != uint64(expected) {
		t.Fatalf("migration moved %d entries, delta shard set is %d", got, expected)
	}
	// Well under the whole namespace: the ring's bounded-movement promise.
	if expected > 2*len(names)/(3+1) {
		t.Fatalf("ring moved %d of %d entries; exceeds the 2/N bound", expected, len(names))
	}
	verifyFiles(t, sys, names)
}

// TestAddServerModulo exercises the same growth under PolicyModulo: nearly
// everything moves, but the namespace must still be intact.
func TestAddServerModulo(t *testing.T) {
	sys := elasticSystem(t, place.PolicyModulo, 3, 4, nil)
	_, names := seedFiles(t, sys, 40)
	if _, err := sys.AddServer(); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	verifyFiles(t, sys, names)
}

// TestRemoveServerDrains drains a member: its entry shards migrate away, it
// leaves the placement map, and the namespace — including inodes that live
// on the drained server and never migrate — stays fully reachable.
func TestRemoveServerDrains(t *testing.T) {
	sys := elasticSystem(t, place.PolicyRing, 4, 4, nil)
	_, names := seedFiles(t, sys, 60)

	if err := sys.RemoveServer(2); err != nil {
		t.Fatalf("RemoveServer: %v", err)
	}
	if got := sys.Epoch(); got != 2 {
		t.Fatalf("epoch after drain = %d, want 2", got)
	}
	for _, m := range sys.Members() {
		if m == 2 {
			t.Fatal("drained server still a placement member")
		}
	}
	// The drained server holds no entry shards any more...
	if st := sys.ServerStats()[2]; st.Entries != 0 {
		t.Fatalf("drained server still holds %d entries", st.Entries)
	}
	// ...but its inodes stayed put and remain reachable.
	verifyFiles(t, sys, names)

	if err := sys.RemoveServer(2); err == nil {
		t.Fatal("draining a non-member succeeded")
	}
}

// TestAddServerLimits pins the guard rails: no headroom, wrong
// configuration, last-member drain.
func TestAddServerLimits(t *testing.T) {
	sys := elasticSystem(t, place.PolicyRing, 2, 2, nil)
	if _, err := sys.AddServer(); err == nil {
		t.Fatal("AddServer beyond MaxServers succeeded")
	}
	if err := sys.RemoveServer(0); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveServer(1); err == nil {
		t.Fatal("draining the last member succeeded")
	}
}

// TestCrashDuringMigrationRecoversToOneEpoch crashes a server at its commit
// step: the migration is left pending, every server sits on exactly one
// side of the epoch boundary, and recovery (which resumes the migration)
// converges the fleet on the new epoch with the namespace intact.
func TestCrashDuringMigrationRecoversToOneEpoch(t *testing.T) {
	d := &Durability{Enabled: true, CheckpointEvery: 32}
	sys := elasticSystem(t, place.PolicyRing, 3, 4, d)
	_, names := seedFiles(t, sys, 60)

	const victim = 1
	crashed := false
	sys.SetMigrationObserver(func(stage string, srv int) {
		if stage == "commit" && srv == victim && !crashed {
			crashed = true
			if err := sys.Crash(victim); err != nil {
				t.Errorf("crash victim: %v", err)
			}
		}
	})

	if _, err := sys.AddServer(); err == nil {
		t.Fatal("AddServer succeeded although the victim crashed mid-commit")
	}
	if !sys.MigrationPending() {
		t.Fatal("migration not pending after mid-commit crash")
	}
	// Either epoch, never both: every server is wholly at 1 or wholly at 2.
	for i, st := range sys.ServerStats() {
		if i == victim {
			continue // down; its stats are from the dead incarnation
		}
		if st.Epoch != 1 && st.Epoch != 2 {
			t.Fatalf("server %d at epoch %d, want 1 or 2", i, st.Epoch)
		}
	}

	if _, err := sys.Recover(victim); err != nil {
		t.Fatalf("recover victim: %v", err)
	}
	if sys.MigrationPending() {
		t.Fatal("migration still pending after recovery auto-resume")
	}
	for i, st := range sys.ServerStats() {
		if st.Epoch != 2 {
			t.Fatalf("server %d at epoch %d after resume, want 2", i, st.Epoch)
		}
	}
	verifyFiles(t, sys, names)
}
