package core

import (
	"fmt"

	"repro/internal/place"
	"repro/internal/proto"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Failover (DESIGN.md §12): every server ships its committed WAL records to
// the next server in the fleet ring, which keeps a warm Follower replica.
// When a server dies, Failover seals that replica, publishes a bumped
// placement epoch, and installs the replica's snapshot into the crashed
// server's own object — promotion without the log replay. Clients reroute
// through the same EEPOCH refresh-and-retry they already use for shard
// migration; the crashed server's queued requests are served by the
// promoted incarnation.

// FailoverReport describes one completed failover.
type FailoverReport struct {
	// Server is the promoted (previously crashed) server.
	Server int
	// Follower is the server that held the replica.
	Follower int
	// Fallback reports that the replica was unusable (follower down, or
	// never resynced) and the server was rebuilt by WAL replay instead.
	Fallback bool
	// LastLSN is the primary's durable log horizon at the crash;
	// DurableLSN is the replica's horizon at the seal. Their difference is
	// LostRecords — zero under sync replication and under fallback (the
	// log has everything), at most the configured window under async.
	LastLSN     uint64
	DurableLSN  uint64
	LostRecords uint64
	// StallCycles is the promotion's (or fallback replay's) critical-path
	// work: the window in which the server answered nothing.
	StallCycles sim.Cycles
	// Epoch is the placement epoch published by the promotion (unchanged
	// by a fallback, which restores complete state).
	Epoch uint64
}

// followerOf returns the fleet-ring follower of server id.
func (s *System) followerOf(id int) int {
	return (id + 1) % len(s.servers)
}

// FollowerOf returns which server keeps the replica for server id, or -1
// when replication is disabled.
func (s *System) FollowerOf(id int) int {
	if !s.cfg.Replication.Enabled() || id < 0 || id >= len(s.servers) {
		return -1
	}
	return s.followerOf(id)
}

// wireReplication points every server's shipper at its fleet-ring follower
// and registers the fleet with the failure detector. Called at build time
// and again after membership grows (the ring closes through the new tail).
func (s *System) wireReplication() {
	if !s.cfg.Replication.Enabled() {
		return
	}
	now := s.MaxServerClock()
	n := len(s.servers)
	for i, srv := range s.servers {
		f := s.servers[(i+1)%n]
		fep, ok := f.ReplEndpointID()
		if !ok {
			continue
		}
		srv.SetReplTarget(&server.ReplTarget{ID: (i + 1) % n, EP: fep, Down: f.Crashed})
		if ep, ok := srv.ReplEndpointID(); ok && s.mon != nil {
			s.mon.Track(i, ep, now)
		}
	}
}

// replOptions translates the deployment replication knob into the
// per-server options.
func (s *System) replOptions() server.ReplOptions {
	if !s.cfg.Replication.Enabled() {
		return server.ReplOptions{}
	}
	return server.ReplOptions{Mode: s.cfg.Replication.Mode, Window: s.cfg.Replication.Window}
}

// Heartbeat advances the failure detector one beat at the fleet's current
// virtual time and returns the servers currently suspected dead (nil when
// replication is disabled — no detector runs, no pings are sent).
func (s *System) Heartbeat() []int {
	return s.HeartbeatAt(s.MaxServerClock())
}

// HeartbeatAt is Heartbeat at an explicit virtual time, for tests that
// drive the detector's clock directly.
func (s *System) HeartbeatAt(now sim.Cycles) []int {
	if s.mon == nil {
		return nil
	}
	s.mon.Tick(now)
	return s.mon.Suspected(now)
}

// ReplLastHeard returns the virtual time of the last heartbeat pong from
// server id, and whether one was ever heard.
func (s *System) ReplLastHeard(id int) (sim.Cycles, bool) {
	if s.mon == nil {
		return 0, false
	}
	return s.mon.LastHeard(id)
}

// SetFailoverObserver installs a hook called before each failover stage
// ("seal" with the follower id, "publish" with -1, "install" with the
// promoted server id). Used by fault-injection tests.
func (s *System) SetFailoverObserver(fn func(stage string, srv int)) {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	s.failObserver = fn
}

func (s *System) fobserve(stage string, srv int) {
	if s.failObserver != nil {
		s.failObserver(stage, srv)
	}
}

// Failover promotes the replica of crashed server id: seal the follower's
// copy, publish a bumped placement epoch, install the snapshot into the
// crashed server's object under a fresh incarnation. If the replica is
// unusable — the follower is down too, or it never completed a resync —
// the server is rebuilt from its own write-ahead log instead (Fallback in
// the report), which preserves the no-acked-write-lost guarantee because
// the log holds every acknowledged record by construction.
//
// An interrupted shard migration does not block failover: the promotion's
// epoch bump is taken above the pending migration's epoch, the pending map
// is re-stamped past the bump, and the migration is re-driven once the
// promoted server is back.
func (s *System) Failover(id int) (FailoverReport, error) {
	var rep FailoverReport
	if err := s.checkServer(id); err != nil {
		return rep, err
	}
	if !s.cfg.Replication.Enabled() {
		return rep, fmt.Errorf("core: replication is disabled; enable Config.Replication to use Failover")
	}
	s.elMu.Lock()
	defer s.elMu.Unlock()
	srv := s.servers[id]
	if !srv.Crashed() {
		return rep, fmt.Errorf("core: server %d is running; Failover promotes the replica of a crashed server", id)
	}
	fid := s.followerOf(id)
	rep = FailoverReport{Server: id, Follower: fid, LastLSN: srv.WalStats().LastLSN}
	start := s.MaxServerClock()

	// Seal the replica. The observer fires first so fault injection can
	// kill the follower at exactly this boundary; a dead follower is then
	// seen by the Crashed check and routes to the fallback.
	s.fobserve("seal", fid)
	snap, snapBytes, durable := s.sealFollower(id, fid)

	if snap == nil {
		rep.Fallback = true
		st, err := srv.Recover()
		if err != nil {
			return rep, fmt.Errorf("core: failover fallback replay on server %d: %w", id, err)
		}
		rep.StallCycles = st.Cycles
		rep.DurableLSN = rep.LastLSN
		rep.Epoch = s.routing.Load().Map.Epoch()
		s.traceFailover(start, "fallback", id)
		if s.pendingMig != nil {
			if err := s.driveMigration(); err != nil {
				return rep, fmt.Errorf("core: resuming interrupted migration after failover: %w", err)
			}
		}
		return rep, nil
	}

	rep.DurableLSN = durable
	if rep.LastLSN > durable {
		rep.LostRecords = rep.LastLSN - durable
	}

	// Bump the epoch past everything published or in flight: a pending
	// migration already stamped its servers with its own (unpublished)
	// epoch, and the promotion must supersede that too or the re-driven
	// migration would be rejected as stale.
	cur := s.routing.Load().Map
	bump := cur.Epoch()
	if s.pendingMig != nil && s.pendingMig.newMap.Epoch() > bump {
		bump = s.pendingMig.newMap.Epoch()
	}
	newMap := cur.WithEpoch(bump + 1)
	snap.Epoch = newMap.Epoch()
	snap.PlaceMap = newMap.Encode()

	// The survivors must adopt the bumped epoch too, or they would answer
	// EEPOCH to rerouted clients forever. The shard-migration protocol
	// already knows how to move a fleet across an epoch boundary; with an
	// unchanged map it moves zero entries: freeze the survivors, publish,
	// install the promoted server (which boots at the new epoch), then
	// commit the survivors. Requests that arrive mid-failover park at the
	// freeze and resume at the commit.
	survivors := make([]int, 0, len(s.servers)-1)
	for i := range s.servers {
		if i != id && !s.servers[i].Crashed() {
			survivors = append(survivors, i)
		}
	}
	epoch := newMap.Epoch()
	for _, sid := range survivors {
		if _, err := s.shardRPC(sid, &proto.Request{Op: proto.OpShardFreeze, Epoch: epoch}); err != nil {
			s.noteAdoptPending(newMap)
			return rep, fmt.Errorf("core: freeze server %d for failover epoch %d: %w", sid, epoch, err)
		}
	}

	// Publish before installing: clients that refresh now already route at
	// the promoted epoch, so the promoted server (which boots at that
	// epoch) never EEPOCHs them into a livelock.
	s.fobserve("publish", -1)
	s.publishRouting(newMap)

	s.fobserve("install", id)
	work, err := srv.Promote(snap, snapBytes)
	if err != nil {
		s.noteAdoptPending(newMap)
		return rep, fmt.Errorf("core: promote server %d: %w", id, err)
	}
	rep.StallCycles = work
	rep.Epoch = epoch

	if s.pendingMig != nil {
		// The pending migration's epoch is now below the published one;
		// re-stamp it past the bump (same membership change, same routes —
		// WithEpoch preserves both) before driving anything further, so a
		// crash in the commit loop below still leaves a resumable migration
		// at an epoch the fleet will accept.
		s.pendingMig.newMap = s.pendingMig.newMap.WithEpoch(newMap.Epoch() + 1)
	}

	blob := newMap.Encode()
	for _, sid := range survivors {
		sm := &proto.ShardMsg{MapBlob: blob}
		if _, err := s.shardRPC(sid, &proto.Request{Op: proto.OpShardCommit, Epoch: epoch, Data: sm.Marshal()}); err != nil {
			s.noteAdoptPending(newMap)
			return rep, fmt.Errorf("core: commit failover epoch %d on server %d: %w", epoch, sid, err)
		}
	}
	s.traceFailover(start, "promote", id)

	if s.pendingMig != nil {
		// Re-drive the interrupted migration inline. Membership mutators
		// hold elMu, so calling ResumeMigration here would self-deadlock.
		if err := s.driveMigration(); err != nil {
			return rep, fmt.Errorf("core: resuming interrupted migration after failover: %w", err)
		}
	}
	return rep, nil
}

// noteAdoptPending records the promotion's epoch adoption as a pending
// same-membership migration when a survivor crashed mid-failover (it could
// not be frozen or committed). ResumeMigration — run by hand or by the
// crashed server's Recover — then re-drives the adoption once the fleet is
// back: with an unchanged map the protocol moves zero entries, and servers
// that already adopted the epoch no-op every step. If a real migration is
// already pending, nothing is recorded — its re-driven run commits every
// member past the bump anyway, which subsumes the adoption.
func (s *System) noteAdoptPending(newMap *place.Map) {
	if s.pendingMig != nil {
		return
	}
	members := make([]int, 0, len(s.servers))
	for _, m := range newMap.Members() {
		members = append(members, int(m))
	}
	s.pendingMig = &migration{
		newMap:     newMap,
		oldMembers: members,
		servers:    members,
		incoming:   make(map[int][]proto.MigEntry),
		pulled:     true,
	}
}

// sealFollower asks the follower's replication plane to seal and snapshot
// its replica of primary id. A nil snapshot means the replica is unusable
// (follower down, replica missing or never resynced, or a decode failure)
// and the caller must fall back to log replay.
func (s *System) sealFollower(id, fid int) (*wal.Checkpoint, int, uint64) {
	follower := s.servers[fid]
	if follower.Crashed() {
		return nil, 0, 0
	}
	fep, ok := follower.ReplEndpointID()
	if !ok {
		return nil, 0, 0
	}
	m := repl.Msg{Primary: int32(id)}
	req := &proto.Request{Op: proto.OpReplSeal, Data: m.Marshal()}
	env, err := s.network.RPC(s.ctl, fep, proto.KindRequest, req.Marshal(), follower.Clock())
	// Park the control lane after the seal RPC (see shardRPC): holding its
	// pin past this point would wedge the gate for the rest of the
	// promotion, which proceeds by direct installation, not messages.
	s.network.GateIdle(s.ctl.ID)
	if err != nil {
		return nil, 0, 0
	}
	resp, err := proto.UnmarshalResponse(env.Payload)
	if err != nil {
		return nil, 0, 0
	}
	sr, err := repl.UnmarshalSealReply(resp.Data)
	if err != nil || len(sr.Snap) == 0 {
		return nil, 0, 0
	}
	c, err := wal.UnmarshalCheckpoint(sr.Snap)
	if err != nil {
		return nil, 0, 0
	}
	return c, len(sr.Snap), sr.Durable
}

// traceFailover records the failover window as a root span on the control
// plane's timeline.
func (s *System) traceFailover(start sim.Cycles, name string, srv int) {
	if s.tracer == nil {
		return
	}
	id := s.failEm.Next()
	s.tracer.Record(trace.Span{
		Trace: id, ID: id,
		Kind: trace.KindFailover, Name: name, Where: ^int32(srv),
		Start: start, End: s.MaxServerClock(),
	})
}

// ReplStats is the deployment-level replication introspection surface: one
// entry per server, pairing the primary-side shipping horizons with the
// identity of the follower that holds the replica.
type ReplStats struct {
	Server   int
	Follower int
	// LastLSN is the last record the primary committed; Durable is the
	// horizon its follower has acked. Lag is their difference.
	LastLSN uint64
	Durable uint64
	Ships   uint64
	Resyncs uint64
}

// Lag returns how many committed records the follower has not acked.
func (r ReplStats) Lag() uint64 {
	if r.LastLSN > r.Durable {
		return r.LastLSN - r.Durable
	}
	return 0
}

// ReplicaStats reports each server's replication horizons (nil when
// replication is disabled).
func (s *System) ReplicaStats() []ReplStats {
	if !s.cfg.Replication.Enabled() {
		return nil
	}
	out := make([]ReplStats, len(s.servers))
	for i, srv := range s.servers {
		st := srv.Stats()
		out[i] = ReplStats{
			Server:   i,
			Follower: s.followerOf(i),
			LastLSN:  st.ReplLastLSN,
			Durable:  st.ReplDurable,
			Ships:    st.ReplShips,
			Resyncs:  st.ReplResyncs,
		}
	}
	return out
}

// Replication returns the deployment's replication configuration
// (normalized; Mode Off when disabled).
func (s *System) Replication() repl.Config { return s.cfg.Replication }
