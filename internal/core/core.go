// Package core assembles a complete Hare deployment: the simulated machine,
// the shared buffer cache in DRAM, the message-passing network, the file
// servers, the per-core scheduling servers, and factories for client
// libraries.
//
// This is the paper's primary contribution wired together; the public `hare`
// package at the module root re-exports it as the library's API.
package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/msg"
	"repro/internal/ncc"
	"repro/internal/place"
	"repro/internal/proto"
	"repro/internal/repl"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Techniques toggles the design techniques evaluated in §5.4 of the paper,
// plus the async RPC pipeline (DESIGN.md §7) and the zero-waste data path
// (DESIGN.md §8) this reproduction adds.
type Techniques struct {
	DirectoryDistribution bool // shard a directory's entries across servers (§3.3)
	DirectoryBroadcast    bool // contact all servers in parallel (§3.6.2)
	DirectAccess          bool // clients access the buffer cache directly (§3.2)
	DirectoryCache        bool // client-side lookup cache with invalidations (§3.6.1)
	CreationAffinity      bool // NUMA-aware placement of new inodes (§3.6.4)
	RPCPipelining         bool // async/batched RPCs, extend-ahead, readahead (DESIGN.md §7)
	DataPath              bool // dirty-line writeback + version-skip invalidation (DESIGN.md §8)
}

// AllTechniques enables everything (the standard Hare configuration).
func AllTechniques() Techniques {
	return Techniques{
		DirectoryDistribution: true,
		DirectoryBroadcast:    true,
		DirectAccess:          true,
		DirectoryCache:        true,
		CreationAffinity:      true,
		RPCPipelining:         true,
		DataPath:              true,
	}
}

// Config describes a Hare deployment.
type Config struct {
	// Cores is the total number of cores in the machine.
	Cores int
	// Servers is the number of file servers.
	Servers int
	// Timeshare selects the paper's timesharing configuration: every core
	// runs a file server alongside application processes. When false the
	// servers get dedicated cores (the "split" configuration) and
	// applications run on the remaining cores.
	Timeshare bool

	Techniques Techniques
	Placement  sched.Policy
	Seed       uint64

	// PlacePolicy selects how directory-entry shards are placed on servers
	// (DESIGN.md §9). The zero value, place.PolicyModulo, reproduces the
	// paper's hash % NSERVERS routing bit-for-bit; place.PolicyRing uses
	// consistent hashing so online membership changes move only ~1/N of
	// the shards.
	PlacePolicy place.Policy

	// MaxServers caps how many file servers the deployment can ever run
	// (the shared buffer cache is partitioned up front among that many).
	// Zero means Servers — no headroom, the static default. Raise it to
	// use System.AddServer.
	MaxServers int

	// CostModel overrides the default cycle cost model when non-nil.
	CostModel *sim.CostModel

	// BufferCacheBytes and BlockSize size the shared buffer cache; the
	// defaults are 256 MiB of 4 KiB blocks.
	BufferCacheBytes int64
	BlockSize        int

	// RootDistributed shards the root directory's entries across servers.
	RootDistributed bool

	// Durability configures the per-server write-ahead log (DESIGN.md §6).
	Durability Durability

	// Replication configures primary → follower WAL shipping and fast
	// failover (DESIGN.md §12). The zero value disables it. Requires
	// Durability (the shipped batches are the log's committed records)
	// and at least two servers (the follower ring needs somewhere to
	// point).
	Replication repl.Config

	// Trace configures request tracing and latency histograms (DESIGN.md
	// §11). The zero value disables tracing entirely: no tracer is built,
	// requests carry no trace context, and the virtual timeline is
	// bit-identical to an untraced deployment.
	Trace trace.Config
}

// Durability configures the write-ahead-log subsystem. The zero value
// disables it, matching the paper's in-memory-only design.
type Durability struct {
	// Enabled turns on per-server write-ahead logging, checkpoints, and
	// the Crash/Recover API.
	Enabled bool

	// GroupCommitInterval is the log flush cadence in virtual cycles.
	// Zero flushes synchronously on every mutation (slowest, safest);
	// larger intervals batch more mutations per flush.
	GroupCommitInterval sim.Cycles
	// GroupCommitBytes flushes a batch early once it holds this many
	// bytes (default 64 KiB).
	GroupCommitBytes int

	// CheckpointEvery automatically snapshots a server's state and
	// truncates its log after this many records. Zero means checkpoints
	// happen only via the Checkpoint API.
	CheckpointEvery int

	// SegmentBytes is the log segment rotation size (default 1 MiB).
	SegmentBytes int

	// Dir, when non-empty, stores each server's log and checkpoint as
	// real files under Dir/server-NN. Empty keeps them in memory (the
	// store then plays the role of a battery-backed log device: it
	// survives the simulated server crash, not the host process).
	//
	// To remount on-disk state after a host-process restart, use
	// CrashLosingMemory + Recover on every server: the simulated DRAM
	// did not survive the restart, so recovery must restore block
	// contents from the checkpoint, not assume they are still in memory.
	Dir string
}

// DefaultConfig mirrors the paper's standard setup: a 40-core machine in the
// timesharing configuration with every technique enabled.
func DefaultConfig() Config {
	return Config{
		Cores:      40,
		Servers:    40,
		Timeshare:  true,
		Techniques: AllTechniques(),
		Placement:  sched.PolicyRoundRobin,
	}
}

// normalize fills defaults and validates the configuration.
func (c *Config) normalize() error {
	if c.Cores <= 0 {
		return fmt.Errorf("core: config needs at least one core, got %d", c.Cores)
	}
	if c.Servers <= 0 {
		c.Servers = c.Cores
	}
	if c.BufferCacheBytes <= 0 {
		c.BufferCacheBytes = 256 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4096
	}
	if !c.Timeshare {
		if c.Servers >= c.Cores {
			return fmt.Errorf("core: split configuration needs fewer servers (%d) than cores (%d)", c.Servers, c.Cores)
		}
	} else if c.Servers > c.Cores {
		return fmt.Errorf("core: timeshare configuration cannot run more servers (%d) than cores (%d)", c.Servers, c.Cores)
	}
	if c.MaxServers <= 0 {
		c.MaxServers = c.Servers
	}
	if c.MaxServers < c.Servers {
		return fmt.Errorf("core: MaxServers (%d) below the initial server count (%d)", c.MaxServers, c.Servers)
	}
	if c.Timeshare && c.MaxServers > c.Cores {
		return fmt.Errorf("core: timeshare configuration cannot grow to more servers (%d) than cores (%d)", c.MaxServers, c.Cores)
	}
	if c.Replication.Enabled() {
		if !c.Durability.Enabled {
			return fmt.Errorf("core: replication ships write-ahead-log records; enable Config.Durability")
		}
		if c.Servers < 2 {
			return fmt.Errorf("core: replication needs at least two servers, got %d", c.Servers)
		}
		c.Replication = c.Replication.Normalized()
	}
	return nil
}

// System is a running Hare deployment.
type System struct {
	cfg     Config
	machine *sim.Machine
	network *msg.Network
	dram    *ncc.DRAM
	caches  []*ncc.PrivateCache

	registry    *server.ClientRegistry
	servers     []*server.Server
	serverEPs   []msg.EndpointID
	serverCores []int
	parts       []*ncc.Partition

	// ctl is the control-plane endpoint used for checkpoint requests and
	// for driving shard migrations.
	ctl *msg.Endpoint

	// routing is the published routing snapshot clients cache and refresh
	// from on EEPOCH; elMu serializes membership changes, and pendingMig
	// holds an interrupted migration until ResumeMigration completes it
	// (DESIGN.md §9).
	routing     atomic.Pointer[client.Routing]
	elMu        sync.Mutex
	pendingMig  *migration
	migObserver func(stage string, srv int)

	// mon is the heartbeat failure detector (nil when replication is
	// disabled); failObserver hooks the failover stages for fault
	// injection, and failEm allocates failover-span ids.
	mon          *repl.Monitor
	failObserver func(stage string, srv int)
	failEm       *trace.Emitter

	ids      *client.IDAllocator
	procSys  *sched.HareSystem
	appCores []int

	// tracer is nil when Config.Trace is disabled; every layer treats a
	// nil tracer as "tracing off".
	tracer *trace.Tracer

	started bool
}

// New builds (but does not start) a Hare deployment.
func New(cfg Config) (*System, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	cost := sim.DefaultCostModel()
	if cfg.CostModel != nil {
		cost = *cfg.CostModel
	}
	topo := sim.TopologyForCores(cfg.Cores)
	machine := sim.NewMachine(topo, cost)

	numBlocks := int(cfg.BufferCacheBytes / int64(cfg.BlockSize))
	if numBlocks < cfg.MaxServers {
		numBlocks = cfg.MaxServers
	}
	dram := ncc.NewDRAM(numBlocks, cfg.BlockSize)
	// Partition the buffer cache among the maximum fleet size, so a server
	// added later finds its partition pre-carved (with the default
	// MaxServers == Servers this is exactly the static split).
	parts := ncc.PartitionDRAM(dram, cfg.MaxServers)

	network := msg.NewNetwork(msg.WrapMachine(machine))
	registry := server.NewClientRegistry()

	sys := &System{
		cfg:      cfg,
		machine:  machine,
		network:  network,
		dram:     dram,
		caches:   make([]*ncc.PrivateCache, cfg.Cores),
		registry: registry,
		parts:    parts,
		ids:      client.NewIDAllocator(1),
		tracer:   trace.New(cfg.Trace),
	}
	for i := range sys.caches {
		sys.caches[i] = ncc.NewPrivateCache(dram)
	}

	// Place servers and applications on cores.
	serverCores := make([]int, cfg.Servers)
	if cfg.Timeshare {
		for i := range serverCores {
			serverCores[i] = i % cfg.Cores
		}
		sys.appCores = allCores(cfg.Cores)
	} else {
		first := cfg.Cores - cfg.Servers
		for i := range serverCores {
			serverCores[i] = first + i
		}
		sys.appCores = allCores(first)
	}
	sys.serverCores = serverCores

	rootDist := cfg.RootDistributed && cfg.Techniques.DirectoryDistribution
	bootMap := place.Initial(cfg.PlacePolicy, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		log, err := newServerLog(cfg, cost, i)
		if err != nil {
			return nil, err
		}
		srv := server.New(server.Config{
			ID:              i,
			Core:            serverCores[i],
			NumServers:      cfg.Servers,
			Machine:         machine,
			Network:         network,
			DRAM:            dram,
			Partition:       parts[i],
			Registry:        registry,
			CoLocated:       cfg.Timeshare,
			RootDistributed: rootDist,
			Log:             log,
			Placement:       bootMap,
			Tracer:          sys.tracer,
			Repl:            sys.replOptions(),
		})
		sys.servers = append(sys.servers, srv)
		sys.serverEPs = append(sys.serverEPs, srv.EndpointID())
	}
	sys.ctl = network.NewEndpoint(0)
	sys.publishRouting(bootMap)
	if cfg.Replication.Enabled() {
		sys.mon = repl.NewMonitor(network, network.NewEndpoint(0), cfg.Replication)
		sys.failEm = trace.ClientEmitter(-1)
		sys.wireReplication()
	}

	sys.procSys = sched.NewHareSystem(sched.HareConfig{
		Machine:   machine,
		Network:   network,
		AppCores:  sys.appCores,
		Policy:    cfg.Placement,
		Seed:      cfg.Seed,
		NewClient: sys.newProcClient,
	})
	return sys, nil
}

func allCores(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Start launches the file servers and scheduling servers.
func (s *System) Start() {
	if s.started {
		return
	}
	for _, srv := range s.servers {
		srv.Start()
	}
	s.procSys.Start()
	s.started = true
}

// Stop shuts the deployment down. All application processes must have exited.
func (s *System) Stop() {
	if !s.started {
		return
	}
	s.procSys.Stop()
	for _, srv := range s.servers {
		srv.Stop()
	}
	s.started = false
}

// SetParallel installs (on) or removes (off) the parallel virtual-time
// engine (DESIGN.md §13): with the gate installed, file servers serve their
// inboxes in deterministic (arrival, sender, sequence) order as soon as the
// conservative lane frontiers allow, so endpoints on different OS threads
// advance concurrently instead of one global virtual-time ping-pong chain.
//
// The full control plane participates in the lane protocol: replication
// shipping and acks, heartbeats, crash/recovery, failover promotion, and
// elastic shard migration all hold and release lane frontiers (their lanes
// pin the gate only for the duration of each blocking exchange and park in
// between), so parallel runs produce namespaces byte-identical to serialized
// runs with any of those events on the schedule. Serialized mode, the
// default, never installs a gate and stays bit-identical to deployments that
// never call this.
//
// Toggling requires a quiescent deployment: no client processes running and
// no migration (or crash-interrupted adoption) pending. Otherwise running
// lanes would be handed to a gate that never saw them join — SetParallel
// refuses with an error instead of racing.
func (s *System) SetParallel(on bool) error {
	if on == s.Parallel() {
		return nil
	}
	if s.procSys != nil {
		if n := s.procSys.Live(); n > 0 {
			return fmt.Errorf("core: cannot toggle parallel mode with %d client process(es) live; wait for them to exit", n)
		}
	}
	if s.MigrationPending() {
		return fmt.Errorf("core: cannot toggle parallel mode with a shard migration or adoption pending; ResumeMigration first")
	}
	if !on {
		s.network.SetGate(nil)
		return nil
	}
	s.network.SetGate(sim.NewGate())
	return nil
}

// Parallel reports whether the parallel virtual-time engine is installed.
func (s *System) Parallel() bool { return s.network.Gate() != nil }

// Config returns the deployment's configuration (after normalization).
func (s *System) Config() Config { return s.cfg }

// Machine returns the simulated machine.
func (s *System) Machine() *sim.Machine { return s.machine }

// Network returns the message-passing network.
func (s *System) Network() *msg.Network { return s.network }

// Procs returns the Hare process system (scheduling servers).
func (s *System) Procs() *sched.HareSystem { return s.procSys }

// AppCores returns the cores available to application processes.
func (s *System) AppCores() []int {
	out := make([]int, len(s.appCores))
	copy(out, s.appCores)
	return out
}

// clientOptions translates the technique toggles into client options.
func (s *System) clientOptions() client.Options {
	t := s.cfg.Techniques
	return client.Options{
		DirDistribution:  t.DirectoryDistribution,
		DirCache:         t.DirectoryCache,
		DirBroadcast:     t.DirectoryBroadcast,
		DirectAccess:     t.DirectAccess,
		CreationAffinity: t.CreationAffinity,
		Pipelining:       t.RPCPipelining,
		DataPath:         t.DataPath,
	}
}

// NewClient creates a bare client library pinned to the given core, for
// direct library callers: under the parallel engine it parks its lane
// between operations (client.Config.AutoPark) so a quiescent client never
// wedges out-of-band control-plane calls. Scheduler-managed processes get
// their clients from newProcClient instead.
func (s *System) NewClient(core int) *client.Client {
	c := s.newProcClient(core)
	c.SetAutoPark(true)
	return c
}

// newProcClient creates a scheduler-managed client: the process scheduler
// owns its lane lifecycle (park on exit, handoff on exec, fan-out on fork).
func (s *System) newProcClient(core int) *client.Client {
	if core < 0 || core >= s.cfg.Cores {
		core = 0
	}
	return client.New(client.Config{
		ID:           s.ids.Next(),
		Core:         core,
		Machine:      s.machine,
		Network:      s.network,
		DRAM:         s.dram,
		Cache:        s.caches[core],
		Registry:     s.registry,
		Provider:     s,
		Root:         proto.RootInode,
		RootDist:     s.cfg.RootDistributed && s.cfg.Techniques.DirectoryDistribution,
		Options:      s.clientOptions(),
		IDs:          s.ids,
		CacheForCore: s.cacheForCore,
		Tracer:       s.tracer,
	})
}

func (s *System) cacheForCore(core int) *ncc.PrivateCache {
	if core < 0 || core >= len(s.caches) {
		core = 0
	}
	return s.caches[core]
}

// MessageEconomy summarizes the deployment's cumulative message traffic and
// data movement: network message and byte counts, the servers' batched-sub-op
// and queueing-delay totals, and the per-core caches' line counters (written
// back, invalidated, preserved by version-matched opens). Client RPC counts
// are tracked per client library; the network's message count (requests +
// replies + callbacks) stands in for them here, since the harness needs a
// single deployment-wide view.
func (s *System) MessageEconomy() stats.Economy {
	e := stats.Economy{
		Msgs:       s.network.MessageCount(),
		Bytes:      s.network.ByteCount(),
		ClientRPCs: s.network.RequestCount(),
	}
	for _, srv := range s.servers {
		st := srv.Stats()
		e.BatchedOps += st.BatchedOps
		e.QueueCycles += uint64(st.QueueDelay)
		e.MigEntries += st.MigOutEntries
		e.ReplMsgs += st.ReplShips + st.ReplAcks
		e.ReplBytes += st.ReplBytes
	}
	for _, cache := range s.caches {
		st := cache.Stats()
		e.WbLines += st.LinesWB
		e.InvLines += st.LinesInv
		e.SkipLines += st.LinesSkipped
	}
	return e
}

// ServerStats returns per-server counters (op counts, invalidations sent).
func (s *System) ServerStats() []server.Stats {
	out := make([]server.Stats, len(s.servers))
	for i, srv := range s.servers {
		out[i] = srv.Stats()
	}
	return out
}

// ServerLoads returns the total requests each server has served (batch
// sub-operations included); the benchmark harness derives the per-server
// load-imbalance metric (max/mean) from snapshots of it.
func (s *System) ServerLoads() []uint64 {
	out := make([]uint64, len(s.servers))
	for i, srv := range s.servers {
		st := srv.Stats()
		for _, n := range st.Ops {
			out[i] += n
		}
	}
	return out
}

// MaxServerClock returns the latest virtual time reached by any file server.
func (s *System) MaxServerClock() sim.Cycles {
	var max sim.Cycles
	for _, srv := range s.servers {
		if c := srv.Clock(); c > max {
			max = c
		}
	}
	return max
}

// Seconds converts cycles to seconds under the deployment's cost model.
func (s *System) Seconds(c sim.Cycles) float64 { return s.machine.Cost.Seconds(c) }

// Tracer returns the deployment's tracer, or nil when Config.Trace is
// disabled. The harnesses read latency histograms and export span trees
// through it.
func (s *System) Tracer() *trace.Tracer { return s.tracer }

// QueueDepths snapshots each server's inbox depth (requests delivered but
// not yet serviced). It is a live introspection surface for the shell's
// `top` command; depths race with the servers' request loops and are only
// advisory.
func (s *System) QueueDepths() []int {
	out := make([]int, len(s.servers))
	for i, srv := range s.servers {
		out[i] = srv.QueueDepth()
	}
	return out
}

// newServerLog builds one server's write-ahead log, or returns nil when
// durability is disabled.
func newServerLog(cfg Config, cost sim.CostModel, id int) (*wal.Log, error) {
	d := cfg.Durability
	if !d.Enabled {
		return nil, nil
	}
	var store wal.Store = wal.NewMemStore()
	if d.Dir != "" {
		fs, err := wal.NewFileStore(filepath.Join(d.Dir, fmt.Sprintf("server-%02d", id)))
		if err != nil {
			return nil, fmt.Errorf("core: server %d log store: %w", id, err)
		}
		store = fs
	}
	log, err := wal.Open(wal.Config{
		Store:               store,
		SegmentBytes:        d.SegmentBytes,
		GroupCommitInterval: d.GroupCommitInterval,
		GroupCommitBytes:    d.GroupCommitBytes,
		CheckpointEvery:     d.CheckpointEvery,
		FlushCycles:         cost.WalFlush,
		AppendPerLine:       cost.WalPerLine,
		ReplayPerRecord:     cost.WalReplayPerRec,
	})
	if err != nil {
		return nil, fmt.Errorf("core: server %d log: %w", id, err)
	}
	return log, nil
}

// NumServers returns the number of file servers in the deployment.
func (s *System) NumServers() int { return len(s.servers) }

// checkServer validates a fault-injection target.
func (s *System) checkServer(id int) error {
	if !s.cfg.Durability.Enabled {
		return fmt.Errorf("core: durability is disabled; enable Config.Durability to use Crash/Recover/Checkpoint")
	}
	if !s.started {
		// Crashing a never-started server would wait forever for a
		// request loop that does not exist.
		return fmt.Errorf("core: system not started")
	}
	if id < 0 || id >= len(s.servers) {
		return fmt.Errorf("core: no server %d (have %d)", id, len(s.servers))
	}
	return nil
}

// Crash kills file server id as if its process died: its in-memory state is
// dropped and its request loop stops. Requests sent to a crashed server
// (and any already queued) wait in its inbox and are served after Recover;
// requests parked inside the server (blocked pipe reads, rmdir waiters) are
// lost, so callers should quiesce pipe users before injecting faults.
//
// The shared DRAM — including the crashed server's buffer-cache partition —
// survives, the way memory owned by no process survives a process crash.
// Use CrashLosingMemory to take the partition down with the server.
func (s *System) Crash(id int) error {
	if err := s.checkServer(id); err != nil {
		return err
	}
	s.servers[id].Crash(false)
	return nil
}

// CrashLosingMemory crashes server id and wipes its DRAM partition,
// modelling the loss of the server's whole memory domain (a NUMA node
// losing power). Recovery then restores file contents from the checkpoint's
// block snapshots plus replayed write records; data written by clients
// directly to the buffer cache after the last checkpoint is lost, which is
// the documented durability contract for direct-access writes.
func (s *System) CrashLosingMemory(id int) error {
	if err := s.checkServer(id); err != nil {
		return err
	}
	s.servers[id].Crash(true)
	return nil
}

// Recover rebuilds a crashed server from its checkpoint and log and
// restarts it. Recovery is idempotent: a crash/recover cycle with no
// intervening mutations reproduces the same state. If the crash interrupted
// a shard migration, the migration is resumed once the server is back: its
// write-ahead log put it on exactly one side of the epoch boundary, and the
// resumed (idempotent) protocol carries it across.
func (s *System) Recover(id int) (wal.RecoveryStats, error) {
	if err := s.checkServer(id); err != nil {
		return wal.RecoveryStats{}, err
	}
	st, err := s.servers[id].Recover()
	if err != nil {
		return st, err
	}
	if s.MigrationPending() {
		if rerr := s.ResumeMigration(); rerr != nil {
			return st, fmt.Errorf("core: resuming interrupted migration after recovery: %w", rerr)
		}
	}
	return st, nil
}

// Crashed reports whether server id is currently down.
func (s *System) Crashed(id int) bool {
	if id < 0 || id >= len(s.servers) {
		return false
	}
	return s.servers[id].Crashed()
}

// Checkpoint asks a running server to snapshot its state and truncate its
// log. The request travels the normal control path (an RPC into the
// server's request loop), so it serializes with in-flight operations.
func (s *System) Checkpoint(id int) error {
	if err := s.checkServer(id); err != nil {
		return err
	}
	srv := s.servers[id]
	if srv.Crashed() {
		return fmt.Errorf("core: server %d is crashed; recover it before checkpointing", id)
	}
	req := &proto.Request{Op: proto.OpCheckpoint}
	env, err := s.network.RPC(s.ctl, s.serverEPs[id], proto.KindRequest, req.Marshal(), srv.Clock())
	// Park the control lane after the RPC (see shardRPC).
	s.network.GateIdle(s.ctl.ID)
	if err != nil {
		return fmt.Errorf("core: checkpoint rpc to server %d: %w", id, err)
	}
	resp, err := proto.UnmarshalResponse(env.Payload)
	if err != nil {
		return fmt.Errorf("core: checkpoint reply from server %d: %w", id, err)
	}
	if resp.Err != 0 {
		return fmt.Errorf("core: checkpoint on server %d: %v", id, resp.Err)
	}
	return nil
}

// CheckpointAll checkpoints every running server.
func (s *System) CheckpointAll() error {
	for i := range s.servers {
		if s.servers[i].Crashed() {
			continue
		}
		if err := s.Checkpoint(i); err != nil {
			return err
		}
	}
	return nil
}

// WalStats returns each server's write-ahead-log counters (zero-valued when
// durability is disabled).
func (s *System) WalStats() []wal.Stats {
	out := make([]wal.Stats, len(s.servers))
	for i, srv := range s.servers {
		out[i] = srv.WalStats()
	}
	return out
}
