package core

import (
	"strings"
	"testing"

	"repro/internal/place"
	"repro/internal/sched"
)

// TestSetParallelRefusesLiveProcs: toggling the engine mid-flight would let
// lanes join with requests already in the air, so the switch is refused
// while any client process is live and allowed again once they exit.
func TestSetParallelRefusesLiveProcs(t *testing.T) {
	sys := elasticSystem(t, place.PolicyRing, 2, 2, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	h := sys.Procs().StartRoot(sys.AppCores()[0], []string{"blocker"}, func(p *sched.Proc) int {
		close(started)
		<-release
		return 0
	})
	<-started
	err := sys.SetParallel(true)
	if err == nil {
		t.Fatal("SetParallel(true) succeeded with a client process live")
	}
	if !strings.Contains(err.Error(), "live") {
		t.Fatalf("error %q does not name the live-process cause", err)
	}
	if sys.Parallel() {
		t.Fatal("refused toggle still installed the gate")
	}
	close(release)
	if status := h.Wait(); status != 0 {
		t.Fatalf("blocker exited with status %d", status)
	}
	if err := sys.SetParallel(true); err != nil {
		t.Fatalf("SetParallel(true) after the process exited: %v", err)
	}
	if err := sys.SetParallel(true); err != nil {
		t.Fatalf("same-state toggle must be a no-op: %v", err)
	}
	if err := sys.SetParallel(false); err != nil {
		t.Fatalf("SetParallel(false) while quiescent: %v", err)
	}
}

// TestSetParallelRefusesPendingMigration: an interrupted migration parks
// half-moved shards; the engine switch is refused until recovery re-drives
// it to completion.
func TestSetParallelRefusesPendingMigration(t *testing.T) {
	d := &Durability{Enabled: true, CheckpointEvery: 32}
	sys := elasticSystem(t, place.PolicyRing, 3, 4, d)
	seedFiles(t, sys, 20)

	const victim = 1
	crashed := false
	sys.SetMigrationObserver(func(stage string, srv int) {
		if stage == "commit" && srv == victim && !crashed {
			crashed = true
			if err := sys.Crash(victim); err != nil {
				t.Errorf("crash victim: %v", err)
			}
		}
	})
	if _, err := sys.AddServer(); err == nil {
		t.Fatal("AddServer succeeded although the victim crashed mid-commit")
	}
	sys.SetMigrationObserver(nil)
	if !sys.MigrationPending() {
		t.Fatal("migration not pending after mid-commit crash")
	}
	err := sys.SetParallel(true)
	if err == nil {
		t.Fatal("SetParallel(true) succeeded with a migration pending")
	}
	if !strings.Contains(err.Error(), "migration") {
		t.Fatalf("error %q does not name the pending migration", err)
	}
	if _, err := sys.Recover(victim); err != nil {
		t.Fatalf("recover victim: %v", err)
	}
	if sys.MigrationPending() {
		t.Fatal("migration still pending after recovery auto-resume")
	}
	if err := sys.SetParallel(true); err != nil {
		t.Fatalf("SetParallel(true) after resume: %v", err)
	}
}

// TestParallelBareClientControlPlane pins a deadlock found driving the
// public API: a bare client (no scheduler) keeps issuing ops, then the
// caller fires out-of-band control-plane calls. Before bare clients parked
// their lanes between operations (client.Config.AutoPark), the quiescent
// client's frontier stayed pinned at its last request arrival and the
// control RPCs' arrivals never became safe — Checkpoint/AddServer/Failover
// hung forever under SetParallel(true).
func TestParallelBareClientControlPlane(t *testing.T) {
	d := &Durability{Enabled: true}
	sys := elasticSystem(t, place.PolicyRing, 2, 3, d)
	if err := sys.SetParallel(true); err != nil {
		t.Fatal(err)
	}
	_, names := seedFiles(t, sys, 12)

	if err := sys.CheckpointAll(); err != nil {
		t.Fatalf("checkpoint with a quiescent bare client: %v", err)
	}
	if _, err := sys.AddServer(); err != nil {
		t.Fatalf("migration with a quiescent bare client: %v", err)
	}
	const victim = 1
	if err := sys.Crash(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Recover(victim); err != nil {
		t.Fatal(err)
	}
	verifyFiles(t, sys, names)
}
