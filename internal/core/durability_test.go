package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/fsapi"
	"repro/internal/sched"
	"repro/internal/sim"
)

// newDurableSystem builds and starts a deployment with write-ahead logging.
func newDurableSystem(t *testing.T, cores, servers int, d Durability, tech Techniques) *System {
	t.Helper()
	d.Enabled = true
	cfg := Config{
		Cores:            cores,
		Servers:          servers,
		Timeshare:        true,
		Techniques:       tech,
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 8 << 20,
		BlockSize:        4096,
		Durability:       d,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

// namespaceDump walks the tree and returns a deterministic textual fingerprint
// of every path, type, size, and file content.
func namespaceDump(t *testing.T, fs fsapi.Client, root string) string {
	t.Helper()
	var sb strings.Builder
	var walk func(dir string)
	walk = func(dir string) {
		ents, err := fs.ReadDir(dir)
		if err != nil {
			t.Fatalf("readdir %s: %v", dir, err)
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
		for _, ent := range ents {
			path := dir + "/" + ent.Name
			if dir == "/" {
				path = "/" + ent.Name
			}
			st, err := fs.Stat(path)
			if err != nil {
				t.Fatalf("stat %s: %v", path, err)
			}
			fmt.Fprintf(&sb, "%s type=%d size=%d nlink=%d", path, st.Type, st.Size, st.Nlink)
			if st.Type == fsapi.TypeRegular {
				fd, err := fs.Open(path, fsapi.ORdOnly, 0)
				if err != nil {
					t.Fatalf("open %s: %v", path, err)
				}
				buf := make([]byte, st.Size)
				n, err := fs.Read(fd, buf)
				if err != nil {
					t.Fatalf("read %s: %v", path, err)
				}
				fs.Close(fd)
				fmt.Fprintf(&sb, " data=%x", buf[:n])
			}
			sb.WriteString("\n")
			if st.Type == fsapi.TypeDir {
				walk(path)
			}
		}
	}
	walk(root)
	return sb.String()
}

func writeFile(t *testing.T, fs fsapi.Client, path string, data []byte) {
	t.Helper()
	fd, err := fs.Open(path, fsapi.OCreate|fsapi.OWrOnly|fsapi.OTrunc, fsapi.Mode644)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := fs.Write(fd, data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func readFile(t *testing.T, fs fsapi.Client, path string) []byte {
	t.Helper()
	fd, err := fs.Open(path, fsapi.ORdOnly, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	st, err := fs.Fstat(fd)
	if err != nil {
		t.Fatalf("fstat %s: %v", path, err)
	}
	buf := make([]byte, st.Size)
	n, err := fs.Read(fd, buf)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	fs.Close(fd)
	return buf[:n]
}

// populate builds a small mixed namespace: directories, multi-block files,
// a rename, an unlink, and a removed directory.
func populate(t *testing.T, fs fsapi.Client) {
	t.Helper()
	if err := fs.Mkdir("/d", fsapi.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d/sub", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		writeFile(t, fs, fmt.Sprintf("/d/f%02d", i), bytes.Repeat([]byte{byte('a' + i)}, 1000*(i+1)))
	}
	writeFile(t, fs, "/d/sub/deep", []byte("deep value"))
	if err := fs.Rename("/d/f00", "/d/renamed"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/d/f01"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/gone", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/gone"); err != nil {
		t.Fatal(err)
	}
}

func crashRecoverAll(t *testing.T, sys *System, loseMemory bool) {
	t.Helper()
	for i := 0; i < sys.NumServers(); i++ {
		var err error
		if loseMemory {
			err = sys.CrashLosingMemory(i)
		} else {
			err = sys.Crash(i)
		}
		if err != nil {
			t.Fatalf("crash server %d: %v", i, err)
		}
		if !sys.Crashed(i) {
			t.Fatalf("server %d not marked crashed", i)
		}
		if _, err := sys.Recover(i); err != nil {
			t.Fatalf("recover server %d: %v", i, err)
		}
	}
}

func TestCrashRecoverPreservesNamespace(t *testing.T) {
	sys := newDurableSystem(t, 4, 4, Durability{}, AllTechniques())
	cli := sys.NewClient(0)
	populate(t, cli)
	before := namespaceDump(t, cli, "/")

	crashRecoverAll(t, sys, false)

	// Scan through a fresh client (no warm caches) on another core.
	after := namespaceDump(t, sys.NewClient(2), "/")
	if before != after {
		t.Fatalf("namespace diverged after recovery:\nbefore:\n%s\nafter:\n%s", before, after)
	}

	// The file system stays writable after recovery.
	writeFile(t, cli, "/d/post-crash", []byte("written after recovery"))
	if got := readFile(t, cli, "/d/post-crash"); string(got) != "written after recovery" {
		t.Fatalf("post-recovery write read back %q", got)
	}
}

func TestRecoveryIsIdempotent(t *testing.T) {
	sys := newDurableSystem(t, 2, 2, Durability{}, AllTechniques())
	cli := sys.NewClient(0)
	populate(t, cli)

	crashRecoverAll(t, sys, false)
	first := namespaceDump(t, sys.NewClient(1), "/")

	// Recovering again — with no mutations in between — must be a no-op.
	crashRecoverAll(t, sys, false)
	second := namespaceDump(t, sys.NewClient(1), "/")
	if first != second {
		t.Fatalf("second recovery changed state:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

func TestCheckpointPlusLogTailRecovery(t *testing.T) {
	sys := newDurableSystem(t, 2, 2, Durability{}, AllTechniques())
	cli := sys.NewClient(0)
	populate(t, cli)

	if err := sys.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	for _, st := range sys.WalStats() {
		if st.Checkpoints != 1 {
			t.Fatalf("expected one checkpoint per server, got %+v", st)
		}
	}

	// Mutations after the checkpoint live only in the log tail.
	writeFile(t, cli, "/d/tail", []byte("after checkpoint"))
	if err := cli.Rename("/d/renamed", "/d/renamed2"); err != nil {
		t.Fatal(err)
	}
	before := namespaceDump(t, cli, "/")

	crashRecoverAll(t, sys, false)
	after := namespaceDump(t, sys.NewClient(1), "/")
	if before != after {
		t.Fatalf("checkpoint+tail recovery diverged:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func TestAutomaticCheckpointTruncatesLog(t *testing.T) {
	sys := newDurableSystem(t, 2, 2, Durability{CheckpointEvery: 10}, AllTechniques())
	cli := sys.NewClient(0)
	for i := 0; i < 40; i++ {
		writeFile(t, cli, fmt.Sprintf("/f%03d", i), []byte("x"))
	}
	var ckpts uint64
	for _, st := range sys.WalStats() {
		ckpts += st.Checkpoints
	}
	if ckpts == 0 {
		t.Fatal("no automatic checkpoint was taken")
	}
	before := namespaceDump(t, cli, "/")
	crashRecoverAll(t, sys, false)
	if after := namespaceDump(t, sys.NewClient(1), "/"); before != after {
		t.Fatal("recovery after automatic checkpoints diverged")
	}
}

func TestCrashLosingMemoryRestoresDataFromCheckpoint(t *testing.T) {
	// Direct-access clients write the buffer cache without the server
	// seeing the bytes; the checkpoint's block snapshots make that data
	// durable. After losing the whole memory domain, contents come back
	// from the checkpoint.
	sys := newDurableSystem(t, 2, 2, Durability{}, AllTechniques())
	cli := sys.NewClient(0)
	payload := bytes.Repeat([]byte("snapshot"), 2048) // multi-block
	writeFile(t, cli, "/big", payload)
	if err := sys.CheckpointAll(); err != nil {
		t.Fatal(err)
	}

	crashRecoverAll(t, sys, true)
	if got := readFile(t, sys.NewClient(1), "/big"); !bytes.Equal(got, payload) {
		t.Fatalf("content lost after memory-loss recovery: %d bytes, want %d", len(got), len(payload))
	}
}

func TestCrashLosingMemoryReplaysServerPathWrites(t *testing.T) {
	// With direct access off, every write goes through a server and is
	// logged as a RecWrite; even without any checkpoint, replay rebuilds
	// file contents into the wiped partition.
	tech := AllTechniques()
	tech.DirectAccess = false
	sys := newDurableSystem(t, 2, 2, Durability{}, tech)
	cli := sys.NewClient(0)
	payload := bytes.Repeat([]byte("logged!!"), 1500)
	writeFile(t, cli, "/wal-data", payload)

	crashRecoverAll(t, sys, true)
	if got := readFile(t, sys.NewClient(1), "/wal-data"); !bytes.Equal(got, payload) {
		t.Fatalf("server-path write not replayed: %d bytes, want %d", len(got), len(payload))
	}
}

func TestCrashedServerStallsClientsUntilRecovery(t *testing.T) {
	sys := newDurableSystem(t, 2, 2, Durability{}, AllTechniques())
	cli := sys.NewClient(0)
	writeFile(t, cli, "/probe", []byte("v"))

	// Server 0 stores the root inode; stat("/") must reach it.
	if err := sys.Crash(0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sys.NewClient(1).Stat("/")
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stat on crashed server returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
		// Still blocked: the request waits in the crashed server's inbox.
	}
	if _, err := sys.Recover(0); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stat after recovery: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stat still blocked after recovery")
	}
}

func TestFaultAPIValidation(t *testing.T) {
	// Durability off: the fault-injection surface refuses to run.
	plain := newTestSystem(t, 2, 2)
	if err := plain.Crash(0); err == nil {
		t.Error("Crash accepted with durability disabled")
	}
	if err := plain.Checkpoint(0); err == nil {
		t.Error("Checkpoint accepted with durability disabled")
	}

	sys := newDurableSystem(t, 2, 2, Durability{}, AllTechniques())
	if err := sys.Crash(99); err == nil {
		t.Error("crash of unknown server accepted")
	}
	if _, err := sys.Recover(0); err == nil {
		t.Error("recover of a running server accepted")
	}
	if err := sys.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(0); err == nil {
		t.Error("checkpoint of a crashed server accepted")
	}
	// Double crash is a no-op, not a hang.
	if err := sys.Crash(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Recover(0); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryFlushesSurvivingClientCaches(t *testing.T) {
	// A recovered server has lost its invalidation-tracking sets, so it
	// broadcasts a directory-cache flush; a client that cached a lookup
	// before the crash must observe a post-recovery rename rather than
	// reading through its stale cache entry.
	sys := newDurableSystem(t, 2, 2, Durability{}, AllTechniques())
	a := sys.NewClient(0)
	b := sys.NewClient(1)

	writeFile(t, a, "/f", []byte("old"))
	// Client a caches the lookup for /f (opening resolves and caches it).
	if got := readFile(t, a, "/f"); string(got) != "old" {
		t.Fatalf("pre-crash read: %q", got)
	}

	crashRecoverAll(t, sys, false)

	// Another client moves the old file away and creates a new /f.
	if err := b.Rename("/f", "/g"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, b, "/f", []byte("new"))

	// Without the recovery cache flush, a's stale cache would resolve /f
	// to the renamed inode and read "old".
	if got := readFile(t, a, "/f"); string(got) != "new" {
		t.Fatalf("stale directory cache after recovery: read %q, want %q", got, "new")
	}
}

func TestStaleSharedFdRejectedAfterRecovery(t *testing.T) {
	// Shared-descriptor ids embed the server's incarnation: a descriptor
	// that outlived a crash must fail with EBADF, never alias a
	// descriptor issued after recovery.
	sys := newDurableSystem(t, 2, 2, Durability{}, AllTechniques())
	parent := sys.NewClient(0)

	fd, err := parent.Open("/shared", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	childFS, err := parent.CloneForFork(1)
	if err != nil {
		t.Fatal(err)
	}
	child := childFS.(fsapi.Client)
	if _, err := parent.Write(fd, []byte("through the server")); err != nil {
		t.Fatal(err)
	}

	crashRecoverAll(t, sys, false)

	// The server-side descriptor died with the server.
	if _, err := parent.Write(fd, []byte("stale")); !fsapi.IsErrno(err, fsapi.EBADF) {
		t.Fatalf("write on stale shared fd: %v, want EBADF", err)
	}
	if _, err := child.Read(fd, make([]byte, 4)); !fsapi.IsErrno(err, fsapi.EBADF) {
		t.Fatalf("read on stale shared fd: %v, want EBADF", err)
	}
}

func TestFaultAPIRequiresStart(t *testing.T) {
	cfg := Config{
		Cores: 2, Servers: 2, Timeshare: true,
		Techniques: AllTechniques(), Placement: sched.PolicyRoundRobin,
		Durability: Durability{Enabled: true},
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Crashing before Start must error, not deadlock on a loop that was
	// never launched.
	if err := sys.Crash(0); err == nil {
		t.Fatal("Crash accepted on a never-started system")
	}
}

func TestFileBackedDurability(t *testing.T) {
	// Durability.Dir stores each server's log and checkpoint as real files.
	dir := t.TempDir()
	sys := newDurableSystem(t, 2, 2, Durability{Dir: dir}, AllTechniques())
	cli := sys.NewClient(0)
	populate(t, cli)
	if err := sys.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	writeFile(t, cli, "/d/tail", []byte("file-backed"))
	before := namespaceDump(t, cli, "/")
	crashRecoverAll(t, sys, false)
	if after := namespaceDump(t, sys.NewClient(1), "/"); before != after {
		t.Fatal("file-backed recovery diverged")
	}
}

func TestGroupCommitIntervalDelaysAcks(t *testing.T) {
	// A serial client observes the group-commit window as added latency:
	// every mutation waits for its batch's interval to expire. (The win —
	// fewer flushes per record — needs concurrent mutators and shows up in
	// the bench sweep instead.) Synchronous commit only pays the flush.
	elapsed := func(d Durability) sim.Cycles {
		cfg := Config{
			Cores: 2, Servers: 2, Timeshare: true,
			Techniques: AllTechniques(), Placement: sched.PolicyRoundRobin,
			BufferCacheBytes: 8 << 20, BlockSize: 4096, Durability: d,
		}
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.Start()
		defer sys.Stop()
		cli := sys.NewClient(0)
		for i := 0; i < 50; i++ {
			writeFile(t, cli, fmt.Sprintf("/f%02d", i), []byte("payload"))
		}
		return cli.Clock()
	}
	sync := elapsed(Durability{Enabled: true, GroupCommitInterval: 0})
	batched := elapsed(Durability{Enabled: true, GroupCommitInterval: 200000})
	if batched <= sync {
		t.Fatalf("group-commit window added no latency: batched %d cycles vs sync %d", batched, sync)
	}
	// And durability off is cheaper than either.
	off := elapsed(Durability{})
	if off >= sync {
		t.Fatalf("durability off (%d cycles) not cheaper than sync commit (%d)", off, sync)
	}
}
