package core

import (
	"fmt"
	"sort"

	"repro/internal/client"
	"repro/internal/msg"
	"repro/internal/place"
	"repro/internal/proto"
	"repro/internal/server"
)

// Elastic deployments (DESIGN.md §9): servers can be added to and drained
// from a running system. Only directory-entry shards of distributed
// directories move; inodes never migrate — an InodeID permanently names
// (server, local), so a drained server keeps running and serving the inodes
// it owns until their files disappear.
//
// The migration is client-driven in the paper's sense: the deployment's
// control plane speaks to each server individually over the normal request
// path, and servers never talk to each other. The protocol is
//
//	FREEZE every involved server   (entry mutations park)
//	PULL   from every old member   (copy out the entries that move)
//	publish the new routing        (clients adopt the next epoch)
//	COMMIT every involved server   (install/drop entries, adopt the epoch)
//
// A crash of a server mid-protocol leaves the migration pending: the failed
// step returns an error, and after the server recovers, ResumeMigration
// re-drives the protocol. Every step is idempotent — re-freezing is a no-op,
// re-pulling is a read, re-committing re-installs the same entries — so the
// resumed run converges, and each server's write-ahead log puts it on
// exactly one side of the epoch boundary.

// migration is one in-flight membership change.
type migration struct {
	newMap *place.Map
	// oldMembers and servers (old ∪ new members) are captured before the
	// new routing is published, so a resumed run still knows both sides.
	oldMembers []int
	servers    []int
	// incoming holds the pulled entries grouped by destination. Pulling
	// happens once; a resumed run reuses the saved transfers because a
	// donor that already committed no longer holds its outgoing entries.
	incoming map[int][]proto.MigEntry
	// marked and deadDirs are the union of the old members' in-flight
	// rmdir marks and tombstones, replicated to every involved server at
	// commit so rmdir semantics survive the ownership change.
	marked   []proto.InodeID
	deadDirs []proto.InodeID
	pulled   bool
}

// Routing implements client.RoutingProvider: the published snapshot every
// client caches and refreshes from on EEPOCH.
func (s *System) Routing() *client.Routing { return s.routing.Load() }

// publishRouting swaps the published routing snapshot.
func (s *System) publishRouting(m *place.Map) {
	s.routing.Store(&client.Routing{
		Map:     m,
		Servers: append([]msg.EndpointID(nil), s.serverEPs...),
		Cores:   append([]int(nil), s.serverCores...),
	})
}

// Epoch returns the deployment's current placement epoch.
func (s *System) Epoch() uint64 { return s.routing.Load().Map.Epoch() }

// Members returns the server ids currently owning directory-entry shards
// (drained servers are running but absent here).
func (s *System) Members() []int {
	ms := s.routing.Load().Map.Members()
	out := make([]int, len(ms))
	for i, id := range ms {
		out[i] = int(id)
	}
	return out
}

// PlacementPolicy returns the deployment's shard-placement policy.
func (s *System) PlacementPolicy() place.Policy { return s.routing.Load().Map.Policy() }

// MigrationPending reports whether an interrupted migration awaits
// ResumeMigration.
func (s *System) MigrationPending() bool {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	return s.pendingMig != nil
}

// SetMigrationObserver installs a hook called before each migration step
// ("freeze", "pull", "publish", "commit") with the target server id (-1 for
// publish). Used by fault-injection tests and operational tracing.
func (s *System) SetMigrationObserver(fn func(stage string, srv int)) {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	s.migObserver = fn
}

func (s *System) observe(stage string, srv int) {
	if s.migObserver != nil {
		s.migObserver(stage, srv)
	}
}

// AddServer spins up one new file server on the running deployment and
// migrates its share of the directory-entry shards onto it. It returns the
// new server's id. If a server crash interrupts the migration, the new
// server is already part of the fleet, the error names the obstacle, and
// ResumeMigration finishes the job after recovery.
func (s *System) AddServer() (int, error) {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	if s.pendingMig != nil {
		return -1, fmt.Errorf("core: a migration is pending; recover the crashed server and call ResumeMigration")
	}
	if !s.started {
		// The migration protocol RPCs into the servers' request loops;
		// without Start they would never answer.
		return -1, fmt.Errorf("core: system not started")
	}
	if !s.cfg.Timeshare {
		return -1, fmt.Errorf("core: AddServer requires the timeshare configuration (split pins servers to dedicated cores at boot)")
	}
	if len(s.servers) >= s.cfg.MaxServers {
		return -1, fmt.Errorf("core: server limit reached (%d); raise Config.MaxServers", s.cfg.MaxServers)
	}

	id := len(s.servers)
	cur := s.routing.Load().Map
	log, err := newServerLog(s.cfg, s.machine.Cost, id)
	if err != nil {
		return -1, err
	}
	core := id % s.cfg.Cores
	srv := server.New(server.Config{
		ID:              id,
		Core:            core,
		NumServers:      s.cfg.Servers,
		Machine:         s.machine,
		Network:         s.network,
		DRAM:            s.dram,
		Partition:       s.parts[id],
		Registry:        s.registry,
		CoLocated:       s.cfg.Timeshare,
		RootDistributed: false,
		Log:             log,
		Placement:       cur,
		Repl:            s.replOptions(),
	})
	s.servers = append(s.servers, srv)
	s.serverEPs = append(s.serverEPs, srv.EndpointID())
	s.serverCores = append(s.serverCores, core)
	srv.Start()
	// Close the follower ring through the new tail: the old tail now ships
	// to the newcomer and the newcomer ships to server 0.
	s.wireReplication()
	// Re-publish at the current epoch first so every client that refreshes
	// can already reach the new endpoint.
	s.publishRouting(cur)
	return id, s.migrateTo(cur.Add(int32(id)))
}

// RemoveServer drains server id: its directory-entry shards migrate to the
// remaining members and it leaves the placement map, receiving no new
// entries or inodes. The server keeps running to serve the inodes it
// already owns — inode ids are stable and never migrate (DESIGN.md §3, §9).
func (s *System) RemoveServer(id int) error {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	if s.pendingMig != nil {
		return fmt.Errorf("core: a migration is pending; recover the crashed server and call ResumeMigration")
	}
	if !s.started {
		return fmt.Errorf("core: system not started")
	}
	cur := s.routing.Load().Map
	if !cur.Contains(int32(id)) {
		return fmt.Errorf("core: server %d is not a placement member", id)
	}
	if cur.NumMembers() <= 1 {
		return fmt.Errorf("core: cannot drain the last placement member")
	}
	return s.migrateTo(cur.Remove(int32(id)))
}

// ResumeMigration re-drives an interrupted migration (after recovering the
// crashed server). It is a no-op when nothing is pending.
func (s *System) ResumeMigration() error {
	s.elMu.Lock()
	defer s.elMu.Unlock()
	if s.pendingMig == nil {
		return nil
	}
	return s.driveMigration()
}

// migrateTo records the pending migration and drives it. Caller holds elMu.
func (s *System) migrateTo(newMap *place.Map) error {
	old := s.routing.Load().Map
	union := make(map[int]bool)
	var oldMembers []int
	for _, id := range old.Members() {
		oldMembers = append(oldMembers, int(id))
		union[int(id)] = true
	}
	for _, id := range newMap.Members() {
		union[int(id)] = true
	}
	servers := make([]int, 0, len(union))
	for id := range union {
		servers = append(servers, id)
	}
	sort.Ints(servers)
	s.pendingMig = &migration{
		newMap:     newMap,
		oldMembers: oldMembers,
		servers:    servers,
		incoming:   make(map[int][]proto.MigEntry),
	}
	return s.driveMigration()
}

// driveMigration runs (or resumes) the freeze → pull → publish → commit
// protocol for the pending migration. Caller holds elMu.
func (s *System) driveMigration() error {
	mig := s.pendingMig
	epoch := mig.newMap.Epoch()
	blob := mig.newMap.Encode()

	for _, id := range mig.servers {
		s.observe("freeze", id)
		if _, err := s.shardRPC(id, &proto.Request{Op: proto.OpShardFreeze, Epoch: epoch}); err != nil {
			return fmt.Errorf("core: freeze server %d for epoch %d: %w", id, epoch, err)
		}
	}

	if !mig.pulled {
		req := &proto.ShardMsg{MapBlob: blob}
		seenMarked := make(map[proto.InodeID]bool)
		seenDead := make(map[proto.InodeID]bool)
		for _, id := range mig.oldMembers {
			s.observe("pull", id)
			resp, err := s.shardRPC(id, &proto.Request{Op: proto.OpShardPull, Epoch: epoch, Data: req.Marshal()})
			if err != nil {
				return fmt.Errorf("core: pull shards from server %d: %w", id, err)
			}
			m, derr := proto.UnmarshalShardMsg(resp.Data)
			if derr != nil {
				return fmt.Errorf("core: pull reply from server %d: %w", id, derr)
			}
			for _, ent := range m.Entries {
				dst := int(mig.newMap.Route(proto.Hash(ent.Dir, ent.Name)))
				mig.incoming[dst] = append(mig.incoming[dst], ent)
			}
			for _, dir := range m.Marked {
				if !seenMarked[dir] {
					seenMarked[dir] = true
					mig.marked = append(mig.marked, dir)
				}
			}
			for _, dir := range m.DeadDirs {
				if !seenDead[dir] {
					seenDead[dir] = true
					mig.deadDirs = append(mig.deadDirs, dir)
				}
			}
		}
		mig.pulled = true
	}

	// Publish before committing: clients that refresh now route at the new
	// epoch and park at the still-frozen new owners, so no window exists
	// in which an entry is served by nobody.
	s.observe("publish", -1)
	s.publishRouting(mig.newMap)

	for _, id := range mig.servers {
		s.observe("commit", id)
		sm := &proto.ShardMsg{
			MapBlob:  blob,
			Entries:  mig.incoming[id],
			Marked:   mig.marked,
			DeadDirs: mig.deadDirs,
		}
		if _, err := s.shardRPC(id, &proto.Request{Op: proto.OpShardCommit, Epoch: epoch, Data: sm.Marshal()}); err != nil {
			return fmt.Errorf("core: commit epoch %d on server %d: %w", epoch, id, err)
		}
	}
	s.pendingMig = nil
	return nil
}

// shardRPC sends one control-plane request to a server over the normal
// request path (it serializes with in-flight client operations). A crashed
// target is reported as an error instead of blocking forever on a closed
// request loop.
func (s *System) shardRPC(id int, req *proto.Request) (*proto.Response, error) {
	if id < 0 || id >= len(s.servers) {
		return nil, fmt.Errorf("no server %d (have %d)", id, len(s.servers))
	}
	srv := s.servers[id]
	if srv.Crashed() {
		return nil, fmt.Errorf("server %d is crashed", id)
	}
	env, err := s.network.RPC(s.ctl, s.serverEPs[id], proto.KindRequest, req.Marshal(), srv.Clock())
	// Park the control lane between RPCs: the Await pin held the frontier at
	// the request's arrival while the server served it (so no lane could pass
	// a migration step), but a control plane that is not mid-RPC must not
	// constrain the gate — its next send re-joins at the target's clock,
	// which is never behind anything that server already served.
	s.network.GateIdle(s.ctl.ID)
	if err != nil {
		return nil, err
	}
	resp, derr := proto.UnmarshalResponse(env.Payload)
	if derr != nil {
		return nil, derr
	}
	if resp.Err != 0 {
		return resp, resp.Err
	}
	return resp, nil
}
