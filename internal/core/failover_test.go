package core

import (
	"testing"
	"time"

	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/repl"
	"repro/internal/sched"
	"repro/internal/sim"
)

// replSystem builds and starts a deployment with durability + replication.
// Techniques are all-off so every write travels through the servers and
// lands in the log (the strictest setting for loss accounting).
func replSystem(t *testing.T, servers int, r repl.Config) *System {
	t.Helper()
	cfg := Config{
		Cores:            8,
		Servers:          servers,
		MaxServers:       servers + 2,
		Timeshare:        true,
		Techniques:       Techniques{DirectoryDistribution: true},
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 8 << 20,
		BlockSize:        4096,
		Durability:       Durability{Enabled: true},
		Replication:      r,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

// TestFailoverPromotionKeepsNamespace is the headline sync-mode guarantee:
// crash a server with its whole memory domain, promote its replica, and
// nothing acknowledged is lost — the namespace and file contents read back
// bit-identically, with zero lost records reported.
func TestFailoverPromotionKeepsNamespace(t *testing.T) {
	sys := replSystem(t, 3, repl.Config{Mode: repl.Sync})
	_, names := seedFiles(t, sys, 40)
	before := namespaceDump(t, sys.NewClient(2), "/")

	const victim = 1
	if err := sys.CrashLosingMemory(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Failover(victim)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if rep.Fallback {
		t.Fatal("sync failover with a healthy follower fell back to log replay")
	}
	if rep.LostRecords != 0 {
		t.Fatalf("sync failover lost %d records (durable %d, last %d)", rep.LostRecords, rep.DurableLSN, rep.LastLSN)
	}
	if rep.Follower != 2 {
		t.Fatalf("follower = %d, want 2", rep.Follower)
	}
	if rep.Epoch <= 1 {
		t.Fatalf("promotion did not advance the epoch: %d", rep.Epoch)
	}
	if got := sys.Epoch(); got != rep.Epoch {
		t.Fatalf("published epoch %d != promoted epoch %d", got, rep.Epoch)
	}
	if rep.StallCycles <= 0 {
		t.Fatal("promotion reported no stall work")
	}

	after := namespaceDump(t, sys.NewClient(3), "/")
	if before != after {
		t.Fatalf("namespace diverged across failover:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	verifyFiles(t, sys, names)
}

// TestFailoverDoubleFailureFallsBack kills both the primary and its
// follower: promotion is impossible, so Failover must rebuild the primary
// from its own log — slower, but still zero-loss.
func TestFailoverDoubleFailureFallsBack(t *testing.T) {
	sys := replSystem(t, 3, repl.Config{Mode: repl.Sync})
	_, names := seedFiles(t, sys, 24)
	before := namespaceDump(t, sys.NewClient(2), "/")

	const victim, follower = 0, 1
	if err := sys.Crash(victim); err != nil {
		t.Fatal(err)
	}
	if err := sys.Crash(follower); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Failover(victim)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if !rep.Fallback {
		t.Fatal("failover with a dead follower did not fall back to log replay")
	}
	if rep.LostRecords != 0 {
		t.Fatalf("fallback replay lost %d records", rep.LostRecords)
	}
	if _, err := sys.Recover(follower); err != nil {
		t.Fatal(err)
	}
	after := namespaceDump(t, sys.NewClient(3), "/")
	if before != after {
		t.Fatalf("namespace diverged across fallback failover:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	verifyFiles(t, sys, names)
}

// TestFailoverAsyncBoundedLoss pins async mode's contract: promotion may
// lose acknowledged records, but never more than the configured window,
// and the promoted deployment keeps serving.
func TestFailoverAsyncBoundedLoss(t *testing.T) {
	const window = 4
	sys := replSystem(t, 3, repl.Config{Mode: repl.Async, Window: window})
	seedFiles(t, sys, 32)

	const victim = 2
	if err := sys.Crash(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Failover(victim)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if rep.Fallback {
		t.Skip("follower had no usable replica; bounded-loss bound not exercised")
	}
	if rep.LostRecords > window {
		t.Fatalf("async failover lost %d records, window bound is %d", rep.LostRecords, window)
	}

	// The promoted fleet must still serve: create and read back a file.
	cli := sys.NewClient(4)
	fd, err := cli.Open("/post-failover", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	if err != nil {
		t.Fatalf("create after async failover: %v", err)
	}
	if _, err := cli.Write(fd, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(fd); err != nil {
		t.Fatal(err)
	}
	st, err := cli.Stat("/post-failover")
	if err != nil || st.Size != 5 {
		t.Fatalf("stat after async failover: %+v, %v", st, err)
	}
}

// TestFailoverDuringFrozenMigration crashes a server while it sits frozen
// inside a shard migration, then fails it over: the promotion must bump the
// epoch past the pending migration's, re-stamp the migration, and re-drive
// it to convergence — the namespace ends up fully migrated with no manual
// ResumeMigration call.
func TestFailoverDuringFrozenMigration(t *testing.T) {
	sys := replSystem(t, 3, repl.Config{Mode: repl.Sync})
	_, names := seedFiles(t, sys, 60)

	const victim = 1
	sys.SetMigrationObserver(func(stage string, srv int) {
		// Every server is frozen by the time the first pull begins; kill
		// the victim at that boundary.
		if stage == "pull" && srv == victim && !sys.Crashed(victim) {
			if err := sys.Crash(victim); err != nil {
				t.Errorf("crash at %s/%d: %v", stage, srv, err)
			}
		}
	})
	if _, err := sys.AddServer(); err == nil {
		t.Fatal("AddServer succeeded despite the mid-migration crash")
	}
	sys.SetMigrationObserver(nil)
	if !sys.MigrationPending() {
		t.Fatal("no pending migration after the crash")
	}

	rep, err := sys.Failover(victim)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if rep.Fallback {
		t.Fatal("expected promotion, got fallback")
	}
	if sys.MigrationPending() {
		t.Fatal("failover did not re-drive the pending migration")
	}
	if got := sys.Epoch(); got <= rep.Epoch {
		t.Fatalf("re-driven migration should publish past the promotion epoch: mig %d, promo %d", got, rep.Epoch)
	}
	verifyFiles(t, sys, names)
}

// TestFailoverPromotionCoversCheckpointContents pins the interaction of
// direct access (§8), checkpoints (§6), and promotion (§12): direct-access
// writes land only in DRAM — no WAL record carries their bytes — and the
// durability contract makes them safe at the next checkpoint. The replica
// must honor that boundary too: the primary ships each checkpoint to its
// follower, so a promotion after a memory-domain loss restores the
// checkpointed contents instead of rolling them back to zero (a regression
// here was found by the chaos harness on tuple 42,1111111,mod,sync).
func TestFailoverPromotionCoversCheckpointContents(t *testing.T) {
	cfg := Config{
		Cores:       8,
		Servers:     3,
		Timeshare:   true,
		Techniques:  Techniques{DirectoryDistribution: true, DirectAccess: true},
		Placement:   sched.PolicyRoundRobin,
		Durability:  Durability{Enabled: true},
		Replication: repl.Config{Mode: repl.Sync},
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)

	_, names := seedFiles(t, sys, 24)
	if err := sys.CheckpointAll(); err != nil {
		t.Fatal(err)
	}

	const victim = 1
	if err := sys.CrashLosingMemory(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Failover(victim)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if rep.Fallback {
		t.Fatal("sync failover with a healthy follower fell back to log replay")
	}
	verifyFiles(t, sys, names)
}

// waitLastHeard blocks (wall clock) until the monitor has heard a pong from
// server id stamped at or after min, failing the test on timeout.
func waitLastHeard(t *testing.T, sys *System, id int, min sim.Cycles) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if at, ok := sys.ReplLastHeard(id); ok && at >= min {
			return
		}
		if time.Now().After(deadline) {
			at, ok := sys.ReplLastHeard(id)
			t.Fatalf("no pong from server %d at/after %d (last %d, heard %v)", id, min, at, ok)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHeartbeatSuspectsOnlyCrashedServer drives the failure detector across
// a crash: the dead server crosses the silence threshold, the live ones
// keep answering and are never suspected.
func TestHeartbeatSuspectsOnlyCrashedServer(t *testing.T) {
	r := repl.Config{Mode: repl.Sync}.Normalized()
	sys := replSystem(t, 3, r)

	if sus := sys.HeartbeatAt(0); len(sus) != 0 {
		t.Fatalf("suspects on first beat: %v", sus)
	}
	for id := 0; id < 3; id++ {
		waitLastHeard(t, sys, id, 0)
	}

	const victim = 0
	if err := sys.Crash(victim); err != nil {
		t.Fatal(err)
	}
	beats := int(r.SuspectAfter/r.HeartbeatEvery) + 3
	var now sim.Cycles
	for k := 1; k <= beats; k++ {
		now = sim.Cycles(k) * r.HeartbeatEvery
		sys.HeartbeatAt(now)
		for id := 1; id < 3; id++ {
			waitLastHeard(t, sys, id, now-r.HeartbeatEvery)
		}
	}
	sus := sys.HeartbeatAt(now)
	if len(sus) != 1 || sus[0] != victim {
		t.Fatalf("suspected %v, want [%d]", sus, victim)
	}
}

// TestHeartbeatNoFalsePositivesUnderJitter delays every message by the
// fault plan's maximum and asserts no live server is ever suspected across
// many beats: the structural bound SuspectAfter > HeartbeatEvery +
// 2×MaxDelay + service holds with room to spare.
func TestHeartbeatNoFalsePositivesUnderJitter(t *testing.T) {
	r := repl.Config{Mode: repl.Sync}.Normalized()
	sys := replSystem(t, 3, r)

	const maxDelay = 100_000
	if r.HeartbeatEvery+2*maxDelay >= r.SuspectAfter {
		t.Fatalf("bound violated by construction: interval %d + 2×%d >= threshold %d", r.HeartbeatEvery, maxDelay, r.SuspectAfter)
	}
	sys.Network().SetFaultPlan(&msg.FaultPlan{Seed: 7, MaxDelay: maxDelay, DelayPercent: 100})
	defer sys.Network().SetFaultPlan(nil)

	for k := 0; k <= 12; k++ {
		now := sim.Cycles(k) * r.HeartbeatEvery
		if sus := sys.HeartbeatAt(now); len(sus) != 0 {
			t.Fatalf("false positive at beat %d (now %d): %v", k, now, sus)
		}
		var min sim.Cycles
		if now > r.HeartbeatEvery {
			min = now - r.HeartbeatEvery
		}
		for id := 0; id < 3; id++ {
			waitLastHeard(t, sys, id, min)
		}
	}
}

// TestReplicationDisabledIsFree pins the off switch: no monitor, no
// follower ring, no replication messages — the subsystem vanishes.
func TestReplicationDisabledIsFree(t *testing.T) {
	sys := newDurableSystem(t, 4, 2, Durability{}, AllTechniques())
	seedFiles(t, sys, 16)

	if sus := sys.Heartbeat(); sus != nil {
		t.Fatalf("disabled heartbeat returned %v", sus)
	}
	if f := sys.FollowerOf(0); f != -1 {
		t.Fatalf("FollowerOf = %d with replication off", f)
	}
	if st := sys.ReplicaStats(); st != nil {
		t.Fatalf("ReplicaStats = %v with replication off", st)
	}
	e := sys.MessageEconomy()
	if e.ReplMsgs != 0 || e.ReplBytes != 0 {
		t.Fatalf("replication traffic with replication off: %d msgs, %d bytes", e.ReplMsgs, e.ReplBytes)
	}
	for i, st := range sys.ServerStats() {
		if st.ReplShips != 0 || st.ReplAcks != 0 {
			t.Fatalf("server %d shipped/acked with replication off: %+v", i, st)
		}
	}
}

// TestReplicaStatsSurface checks the lag introspection the shell's
// `replicas` command renders: after a quiesced sync workload every
// follower's durable horizon has caught the primary's last LSN.
func TestReplicaStatsSurface(t *testing.T) {
	sys := replSystem(t, 3, repl.Config{Mode: repl.Sync})
	seedFiles(t, sys, 20)

	stats := sys.ReplicaStats()
	if len(stats) != 3 {
		t.Fatalf("ReplicaStats: %d entries, want 3", len(stats))
	}
	shipped := false
	for _, st := range stats {
		if st.Follower != (st.Server+1)%3 {
			t.Fatalf("server %d follower = %d, want %d", st.Server, st.Follower, (st.Server+1)%3)
		}
		if st.Ships > 0 {
			shipped = true
		}
		if st.Lag() != 0 {
			t.Fatalf("sync replication left server %d lagging: %+v (lag %d)", st.Server, st, st.Lag())
		}
	}
	if !shipped {
		t.Fatal("no server shipped anything")
	}
}

// TestFailoverRequiresCrashAndReplication pins the guard rails.
func TestFailoverRequiresCrashAndReplication(t *testing.T) {
	sys := replSystem(t, 3, repl.Config{Mode: repl.Sync})
	if _, err := sys.Failover(0); err == nil {
		t.Fatal("Failover of a running server succeeded")
	}
	if _, err := sys.Failover(9); err == nil {
		t.Fatal("Failover of a nonexistent server succeeded")
	}

	plain := newDurableSystem(t, 4, 2, Durability{}, AllTechniques())
	if err := plain.Crash(0); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Failover(0); err == nil {
		t.Fatal("Failover succeeded with replication disabled")
	}
	if _, err := plain.Recover(0); err != nil {
		t.Fatal(err)
	}
}
