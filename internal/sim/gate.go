package sim

import (
	"math"
	"sync"
	"sync/atomic"
)

// Gate is the synchronization core of the parallel virtual-time engine
// (DESIGN.md §13). Every request-originating endpoint ("lane") publishes a
// conservative *frontier*: a lower bound on the virtual send time of any
// message it will send in the future. A server may serve the earliest queued
// request with arrival time a once the minimum frontier over all lanes is at
// least a — because message delivery is atomic (a sent message is already
// queued), every not-yet-sent message has SentAt >= its sender's frontier >=
// a, hence ArriveAt > a, so no earlier arrival can still appear.
//
// Frontier values per lane:
//   - absent (never joined): the lane does not constrain the system yet. A
//     lane joins at its first send; its first send time is always >= the
//     current minimum frontier (it was caused by an already-tracked lane),
//     so joining never lowers the effective minimum retroactively.
//   - finite t: the lane promises not to send before t. Updated monotonically
//     by sends (to SentAt) and by blocking RPCs (to the outstanding request's
//     arrival time — the reply cannot be sent before the request arrives, so
//     the lane cannot wake, let alone send, before then).
//   - infinity (idle): the lane is quiescent — exited, parked on a reply
//     whose timing another lane controls (exec proxies, parked pipe ops), or
//     waiting on child processes. Idle lanes do not constrain the system;
//     their next send re-joins at its send time.
//
// Serialized mode simply never installs a Gate; every call sites gates on a
// nil *Gate and compiles to the legacy path, which stays bit-identical.
type Gate struct {
	mu    sync.Mutex
	lanes atomic.Pointer[[]*laneFrontier]

	// cachedSafe is a monotone cache of the last computed minimum frontier.
	// SafeAt answers from it without scanning when possible; it is lowered
	// only when a lane joins or resumes below it.
	cachedSafe atomic.Uint64

	// subs are the condition variables of gated consumers (one per gated
	// queue, registered once via Subscribe). waiters counts consumers
	// currently blocked in WaitProgress; wake broadcasts to every subscriber
	// only when it is nonzero, so the common no-waiter case costs a single
	// atomic load on the bump path.
	subs    atomic.Pointer[[]*sync.Cond]
	waiters atomic.Int32
}

// laneFrontier is one lane's published frontier, padded to a cache line so
// concurrent senders do not false-share.
type laneFrontier struct {
	v atomic.Uint64
	_ [56]byte
}

const (
	laneAbsent = 0              // never joined
	laneIdle   = math.MaxUint64 // quiescent, does not constrain
)

// enc biases a cycle count so that 0 remains the "absent" sentinel.
func enc(t Cycles) uint64 {
	v := uint64(t) + 1
	if v == 0 { // t == MaxUint64: clamp into idle
		return laneIdle
	}
	return v
}

// NewGate returns an empty gate; lanes join lazily at their first Bump.
func NewGate() *Gate {
	g := &Gate{}
	empty := make([]*laneFrontier, 0)
	g.lanes.Store(&empty)
	noSubs := make([]*sync.Cond, 0)
	g.subs.Store(&noSubs)
	return g
}

func (g *Gate) lane(id int) *laneFrontier {
	ls := *g.lanes.Load()
	if id < len(ls) {
		return ls[id]
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	ls = *g.lanes.Load()
	if id < len(ls) {
		return ls[id]
	}
	n := len(ls)*2 + 8
	if n <= id {
		n = id + 8
	}
	grown := make([]*laneFrontier, n)
	copy(grown, ls)
	for i := len(ls); i < n; i++ {
		grown[i] = &laneFrontier{}
	}
	g.lanes.Store(&grown)
	return grown[id]
}

// casFloor lowers cachedSafe to at most v.
func (g *Gate) casFloor(v uint64) {
	for {
		cur := g.cachedSafe.Load()
		if cur <= v || g.cachedSafe.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Bump raises lane id's frontier to at least t: the lane promises not to
// send any message with SentAt < t. A first Bump joins the lane; a Bump on
// an idle lane resumes it at t.
func (g *Gate) Bump(id int, t Cycles) {
	l := g.lane(id)
	nv := enc(t)
	for {
		cur := l.v.Load()
		if cur != laneAbsent && cur != laneIdle && cur >= nv {
			return
		}
		if l.v.CompareAndSwap(cur, nv) {
			if cur == laneAbsent || cur == laneIdle {
				// Joining or resuming may lower the minimum below the cache.
				g.casFloor(nv)
			} else {
				// Raising a finite frontier can raise the minimum and unblock
				// a gated consumer.
				g.wake()
			}
			return
		}
	}
}

// Idle marks lane id quiescent: it no longer constrains the minimum
// frontier. The lane re-joins automatically at its next Bump.
func (g *Gate) Idle(id int) {
	g.lane(id).v.Store(laneIdle)
	// Dropping a constraint can raise the minimum and unblock a consumer.
	g.wake()
}

// Resume lowers an idle lane's frontier to t. It is called by a sender
// delivering the message that will wake the lane (a reply to a parked
// request): the woken lane cannot send before the wakeup arrives at t, and
// the waker's own frontier (<= t) holds the floor until this call, so the
// handoff never lets the safe time pass t unprotected. Active and absent
// lanes are unaffected — an active lane manages its own frontier.
func (g *Gate) Resume(id int, t Cycles) {
	l := g.lane(id)
	nv := enc(t)
	for {
		cur := l.v.Load()
		if cur != laneIdle {
			return
		}
		if l.v.CompareAndSwap(cur, nv) {
			g.casFloor(nv)
			return
		}
	}
}

// SafeAt reports whether every lane's frontier is at least t, i.e. whether a
// request arriving at t can be served knowing no earlier arrival will appear.
func (g *Gate) SafeAt(t Cycles) bool {
	want := enc(t)
	if g.cachedSafe.Load() >= want {
		return true
	}
	min := uint64(laneIdle)
	for _, l := range *g.lanes.Load() {
		v := l.v.Load()
		if v == laneAbsent || v == laneIdle {
			continue
		}
		if v < min {
			min = v
		}
	}
	if min == laneIdle {
		// No lane constrains the system right now. Do not advance the cache:
		// a lane joining later must still observe a fresh minimum.
		return true
	}
	// Monotone raise; a concurrent join may have lowered the cache below
	// min, in which case the join's floor wins.
	for {
		cur := g.cachedSafe.Load()
		if cur >= min || g.cachedSafe.CompareAndSwap(cur, min) {
			break
		}
	}
	return min >= want
}

// Subscribe registers a gated consumer's condition variable: wake broadcasts
// to it whenever the safe time may have advanced. A consumer subscribes once
// (re-subscribing the same cond is a no-op) and then blocks in WaitProgress
// with c.L held. Registration is append-only; a gate lives exactly as long as
// one parallel run, so subscriptions are never removed.
func (g *Gate) Subscribe(c *sync.Cond) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := *g.subs.Load()
	for _, s := range cur {
		if s == c {
			return
		}
	}
	grown := make([]*sync.Cond, len(cur)+1)
	copy(grown, cur)
	grown[len(cur)] = c
	g.subs.Store(&grown)
}

// BeginWait counts the caller as a blocked gated consumer. The protocol (see
// msg.Queue.PopWaitEarliestGated) is: BeginWait, re-check SafeAt, then — only
// if still unsafe — wait on the subscribed cond, then EndWait. Counting
// *before* the final re-check closes the race with a concurrent frontier
// advance: if the advancer loads the waiter count before this increment, its
// frontier store is already visible to the re-check (sync/atomic operations
// are sequentially consistent); if it loads the count after, it sees a waiter
// and broadcasts, and the broadcast cannot be lost because wake acquires the
// cond's lock, which the caller holds from the re-check until Wait parks it.
func (g *Gate) BeginWait() { g.waiters.Add(1) }

// EndWait undoes BeginWait once the consumer stops waiting (whether it
// popped, re-checked successfully, or woke from the cond).
func (g *Gate) EndWait() { g.waiters.Add(-1) }

// wake broadcasts to every subscribed consumer if any is blocked. Acquiring
// each subscriber's lock orders the broadcast after the waiter's park (the
// waiter holds the lock from its safety check until Wait releases it).
func (g *Gate) wake() {
	if g.waiters.Load() == 0 {
		return
	}
	for _, c := range *g.subs.Load() {
		c.L.Lock()
		c.Broadcast()
		c.L.Unlock()
	}
}
