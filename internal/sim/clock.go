package sim

import (
	"sync"
	"sync/atomic"
)

// Clock is the virtual clock of one simulated entity (process or server).
// A Clock is owned by a single goroutine; reads from other goroutines (for
// reporting) use Now which is safe.
type Clock struct {
	now atomic.Uint64
}

// Now returns the current virtual time.
func (c *Clock) Now() Cycles { return Cycles(c.now.Load()) }

// Advance moves the clock forward by d cycles and returns the new time.
func (c *Clock) Advance(d Cycles) Cycles {
	return Cycles(c.now.Add(uint64(d)))
}

// AdvanceTo moves the clock to at least t (it never moves backwards) and
// returns the resulting time.
func (c *Clock) AdvanceTo(t Cycles) Cycles {
	for {
		cur := c.now.Load()
		if uint64(t) <= cur {
			return Cycles(cur)
		}
		if c.now.CompareAndSwap(cur, uint64(t)) {
			return t
		}
	}
}

// Reset sets the clock back to zero.
func (c *Clock) Reset() { c.now.Store(0) }

// capacityWindow is the granularity of per-core capacity accounting. Smaller
// windows track contention more precisely at the cost of more bookkeeping;
// 16 Ki cycles (~7 µs at 2.4 GHz) is far below the duration of any benchmark
// phase while being much larger than a single operation.
const capacityWindow Cycles = 16384

// CoreTime models the execution capacity of one core. When several entities
// are pinned to the same core (the paper's "timeshare" configuration runs a
// file server alongside the application on every core), their combined
// demand cannot exceed one cycle of work per cycle of wall-clock time.
//
// Capacity is accounted in fixed windows of virtual time: work of length d
// that becomes ready at time r claims free capacity starting in r's window
// and spills into later windows when the core is oversubscribed. Accounting
// per window (rather than as a single running total) keeps the model
// independent of the real-time order in which concurrent goroutines happen
// to call Execute — work that logically happens later never delays work that
// logically happened earlier.
type CoreTime struct {
	mu     sync.Mutex
	used   map[Cycles]Cycles // window index -> consumed cycles
	total  Cycles
	maxEnd Cycles
}

// Execute consumes d cycles of core capacity for work ready at `ready` and
// returns the virtual completion time.
func (c *CoreTime) Execute(ready, d Cycles) Cycles {
	if d == 0 {
		return ready
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.used == nil {
		c.used = make(map[Cycles]Cycles)
	}
	c.total += d
	remaining := d
	w := ready / capacityWindow
	end := ready
	for {
		base := w * capacityWindow
		floor := c.used[w]
		if base < ready && ready-base > floor {
			// Capacity earlier than `ready` within this window cannot be
			// used by this request.
			floor = ready - base
		}
		if avail := capacityWindow - floor; avail > 0 {
			take := remaining
			if take > avail {
				take = avail
			}
			c.used[w] = floor + take
			remaining -= take
			end = base + floor + take
			if remaining == 0 {
				break
			}
		}
		w++
	}
	if end > c.maxEnd {
		c.maxEnd = end
	}
	return end
}

// Account records d cycles of work on the core without computing a
// completion time (used for utilization bookkeeping).
func (c *CoreTime) Account(d Cycles) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total += d
}

// Busy returns the total number of cycles executed on this core so far.
func (c *CoreTime) Busy() Cycles {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Free returns the latest completion time observed on this core.
func (c *CoreTime) Free() Cycles {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxEnd
}

// Reset clears the core's accounting.
func (c *CoreTime) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.used = nil
	c.total = 0
	c.maxEnd = 0
}

// Machine bundles a topology, cost model, and per-core bookkeeping.
//
// Performance accounting follows a queueing approximation (DESIGN.md §4):
// every entity (application process, file server, scheduling server) owns a
// virtual clock, servers serialize the requests they process, and messages
// pay topology-dependent latency. Execute charges work to an entity without
// modelling preemption between co-located entities; the cost of sharing a
// core with a file server (the timeshare configuration) is charged
// explicitly per RPC as context-switch and cache-pollution cycles, following
// the paper's own measurement of that overhead (§5.3.3). The per-core Busy
// counters record how much work each core performed, which the harness can
// use to report utilization.
type Machine struct {
	Topo  Topology
	Cost  CostModel
	cores []*CoreTime
}

// NewMachine builds a Machine with the given topology and cost model.
func NewMachine(topo Topology, cost CostModel) *Machine {
	m := &Machine{Topo: topo, Cost: cost}
	m.cores = make([]*CoreTime, topo.NumCores)
	for i := range m.cores {
		m.cores[i] = &CoreTime{}
	}
	return m
}

// Core returns the execution bookkeeping for the given core id.
func (m *Machine) Core(id int) *CoreTime {
	return m.cores[id]
}

// Execute charges d cycles of work that became ready at `ready` on the given
// core and returns the completion time. Work on the same core by different
// entities does not delay each other here (see the type comment); the
// per-core busy counter is still updated for utilization reporting.
func (m *Machine) Execute(core int, ready, d Cycles) Cycles {
	if core >= 0 && core < len(m.cores) {
		m.cores[core].Account(d)
	}
	return ready + d
}

// MaxCoreFree returns the latest "free" time across all cores; used by the
// benchmark harness as a lower bound on total machine time.
func (m *Machine) MaxCoreFree() Cycles {
	var max Cycles
	for _, c := range m.cores {
		if f := c.Free(); f > max {
			max = f
		}
	}
	return max
}

// Reset clears all core accounting, preparing the machine for another run.
func (m *Machine) Reset() {
	for _, c := range m.cores {
		c.Reset()
	}
}
