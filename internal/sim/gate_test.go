package sim

import (
	"sync"
	"testing"
	"time"
)

// TestGateEmptySafe: with no lanes joined, nothing constrains the system.
func TestGateEmptySafe(t *testing.T) {
	g := NewGate()
	if !g.SafeAt(0) || !g.SafeAt(1<<40) {
		t.Fatal("empty gate must be safe at any time")
	}
}

// TestGateBumpConstrains: a joined lane holds the safe time at its frontier.
func TestGateBumpConstrains(t *testing.T) {
	g := NewGate()
	g.Bump(0, 100)
	if !g.SafeAt(100) {
		t.Fatal("safe time must reach the lone lane's frontier")
	}
	if g.SafeAt(101) {
		t.Fatal("safe time must not pass the lone lane's frontier")
	}
	g.Bump(0, 250)
	if !g.SafeAt(250) || g.SafeAt(251) {
		t.Fatal("raising the frontier must move the safe time with it")
	}
}

// TestGateBumpMonotone: Bump never lowers an active lane's frontier.
func TestGateBumpMonotone(t *testing.T) {
	g := NewGate()
	g.Bump(0, 200)
	g.Bump(0, 50) // ignored: active lanes only move forward
	if g.SafeAt(51) == false {
		t.Fatal("stale Bump lowered an active lane's frontier")
	}
	if !g.SafeAt(200) {
		t.Fatal("frontier should still be 200")
	}
}

// TestGateMinOverLanes: the safe time is the minimum frontier over all
// active lanes.
func TestGateMinOverLanes(t *testing.T) {
	g := NewGate()
	g.Bump(0, 100)
	g.Bump(1, 70)
	g.Bump(2, 130)
	if !g.SafeAt(70) || g.SafeAt(71) {
		t.Fatal("safe time must be the minimum frontier (70)")
	}
	g.Bump(1, 400)
	if !g.SafeAt(100) || g.SafeAt(101) {
		t.Fatal("after the laggard advances, the next minimum (100) governs")
	}
}

// TestGateIdleReleases: idling a lane removes its constraint; resuming
// restores one at the wakeup time.
func TestGateIdleReleases(t *testing.T) {
	g := NewGate()
	g.Bump(0, 50)
	g.Bump(1, 500)
	if g.SafeAt(51) {
		t.Fatal("lane 0 should constrain at 50")
	}
	g.Idle(0)
	if !g.SafeAt(500) || g.SafeAt(501) {
		t.Fatal("after idling lane 0, lane 1's frontier (500) governs")
	}
	// Resume only affects idle lanes.
	g.Resume(1, 10) // lane 1 is active: ignored
	if !g.SafeAt(500) {
		t.Fatal("Resume must not lower an active lane's frontier")
	}
	g.Resume(0, 600)
	if g.SafeAt(501) {
		t.Fatal("resumed lane 0 at 600 cannot raise the safe time past lane 1")
	}
	g.Idle(1)
	if !g.SafeAt(600) || g.SafeAt(601) {
		t.Fatal("lane 0's resumed frontier (600) must now govern")
	}
}

// TestGateResumeLowersCache: the monotone safe-time cache must drop when a
// lane resumes below it (the waker's handoff), or a server could serve an
// arrival that the resumed lane can still undercut.
func TestGateResumeLowersCache(t *testing.T) {
	g := NewGate()
	g.Bump(0, 1000)
	g.Idle(1) // lane 1 parks
	if !g.SafeAt(1000) {
		t.Fatal("lane 0's frontier should allow 1000 (and prime the cache)")
	}
	g.Resume(1, 300)
	if g.SafeAt(301) {
		t.Fatal("cache must observe the resumed lane's lower frontier")
	}
	if !g.SafeAt(300) {
		t.Fatal("safe time should still reach the resumed frontier")
	}
}

// TestGateJoinLowersCache: a first Bump below the cached safe time must be
// observed (join-time floor).
func TestGateJoinLowersCache(t *testing.T) {
	g := NewGate()
	g.Bump(0, 1000)
	if !g.SafeAt(900) {
		t.Fatal("prime the cache")
	}
	g.Bump(7, 400) // new lane joins behind the cache
	if g.SafeAt(401) {
		t.Fatal("join below the cached safe time must constrain again")
	}
}

// TestGateConcurrent hammers the gate from many goroutines and checks the
// invariant that SafeAt never returns true for a time beyond a frontier
// that some active lane is still holding far below it.
func TestGateConcurrent(t *testing.T) {
	g := NewGate()
	const lanes = 8
	// Lane 0 stays pinned low the whole time.
	g.Bump(0, 10)
	var wg sync.WaitGroup
	for id := 1; id < lanes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for t := Cycles(0); t < 5000; t += 7 {
				g.Bump(id, t)
				if t%35 == 0 {
					g.Idle(id)
					g.Resume(id, t+1)
				}
			}
		}(id)
	}
	stop := make(chan struct{})
	var violated bool
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if g.SafeAt(11) {
				violated = true
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	if violated {
		t.Fatal("SafeAt passed a pinned active lane's frontier")
	}
}

// TestGateSafeAtAllocs: the polling path must not allocate.
func TestGateSafeAtAllocs(t *testing.T) {
	g := NewGate()
	g.Bump(0, 100)
	g.Bump(1, 200)
	allocs := testing.AllocsPerRun(100, func() {
		g.SafeAt(50)
		g.SafeAt(150)
		g.Bump(0, 100)
	})
	if allocs != 0 {
		t.Fatalf("gate polling allocated %.1f/op, want 0", allocs)
	}
}

// TestGateWaiterWakesOnBump: a consumer blocked on the waiter list is woken
// when the pinning lane's frontier advances past its arrival. This is the
// condition-variable replacement for the old spin/sleep Pause poll.
func TestGateWaiterWakesOnBump(t *testing.T) {
	g := NewGate()
	g.Bump(0, 10) // pins the safe time at 10
	var mu sync.Mutex
	c := sync.NewCond(&mu)
	g.Subscribe(c)
	woke := make(chan struct{})
	go func() {
		mu.Lock()
		for {
			g.BeginWait()
			if g.SafeAt(100) {
				g.EndWait()
				break
			}
			c.Wait()
			g.EndWait()
		}
		mu.Unlock()
		close(woke)
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter park (works unparked too)
	g.Bump(0, 100)
	select {
	case <-woke:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken by a frontier advance")
	}
}

// TestGateWaiterWakesOnIdle: parking the pinning lane releases the
// constraint and must wake blocked consumers too.
func TestGateWaiterWakesOnIdle(t *testing.T) {
	g := NewGate()
	g.Bump(0, 10)
	var mu sync.Mutex
	c := sync.NewCond(&mu)
	g.Subscribe(c)
	woke := make(chan struct{})
	go func() {
		mu.Lock()
		for {
			g.BeginWait()
			if g.SafeAt(100) {
				g.EndWait()
				break
			}
			c.Wait()
			g.EndWait()
		}
		mu.Unlock()
		close(woke)
	}()
	time.Sleep(5 * time.Millisecond)
	g.Idle(0)
	select {
	case <-woke:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken by the pinning lane idling")
	}
}

// TestGateSubscribeIdempotent: re-subscribing the same cond must not grow the
// broadcast list (a consumer subscribes once per gate, defensively retried).
func TestGateSubscribeIdempotent(t *testing.T) {
	g := NewGate()
	var mu sync.Mutex
	c := sync.NewCond(&mu)
	g.Subscribe(c)
	g.Subscribe(c)
	if n := len(*g.subs.Load()); n != 1 {
		t.Fatalf("subscriber list has %d entries, want 1", n)
	}
}

// TestGateWakePathAllocs: the wake path — frontier raises and lane parks
// broadcast to a live waiter — must not allocate. Together with
// TestGateSafeAtAllocs this keeps the whole gate wait path at 0 allocs/op.
func TestGateWakePathAllocs(t *testing.T) {
	g := NewGate()
	g.Bump(0, 10)
	var mu sync.Mutex
	c := sync.NewCond(&mu)
	g.Subscribe(c)
	stop := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		mu.Lock()
		for !stop {
			g.BeginWait()
			c.Wait()
			g.EndWait()
		}
		mu.Unlock()
	}()
	time.Sleep(5 * time.Millisecond) // park the waiter so wake() broadcasts
	var tt Cycles = 100
	allocs := testing.AllocsPerRun(200, func() {
		tt++
		g.Bump(0, tt)   // finite raise: wakes
		g.Idle(1)       // park: wakes
		g.Resume(1, tt) // resume: cache floor
	})
	mu.Lock()
	stop = true
	c.Broadcast()
	mu.Unlock()
	<-done
	if allocs != 0 {
		t.Fatalf("gate wake path allocated %.1f/op, want 0", allocs)
	}
}

// TestGateLifecycleFailoverSealPublish models the control lane's hold/resume
// across a failover promotion (seal -> freeze -> publish -> commit): the
// seal RPC's pin holds the safe time at the seal boundary, parking between
// stages releases it, and a requester resumed by the commit reply re-joins
// at the commit arrival — so no lane can be served "into the past" of the
// promotion epoch.
func TestGateLifecycleFailoverSealPublish(t *testing.T) {
	g := NewGate()
	const ctl, parked, survivor = 0, 1, 2
	g.Bump(survivor, 2000) // a quiesced-but-tracked lane far ahead
	g.Idle(parked)         // requester parked on the frozen shard

	// Seal: the ctl RPC joins at the seal request's arrival and holds.
	g.Bump(ctl, 1000)
	if !g.SafeAt(1000) || g.SafeAt(1001) {
		t.Fatal("seal pin must hold the safe time exactly at the seal arrival")
	}
	// Seal done: the ctl lane parks between stages (publish is direct
	// installation, not messages) — the constraint must lift.
	g.Idle(ctl)
	if !g.SafeAt(2000) || g.SafeAt(2001) {
		t.Fatal("with ctl parked, only the survivor's frontier constrains")
	}
	// Commit: the ctl pin returns at the commit arrival and the parked
	// requester is resumed at its reply's arrival under that pin.
	g.Bump(ctl, 1500)
	g.Resume(parked, 1500)
	g.Resume(survivor, 1) // active lanes are never lowered by Resume
	g.Idle(ctl)           // commit RPC completes; ctl parks again
	if g.SafeAt(1501) {
		t.Fatal("resumed requester must constrain at the commit arrival")
	}
	if !g.SafeAt(1500) {
		t.Fatal("safe time must reach the commit arrival")
	}
}

// TestGateLifecycleCrashWhileParked models a server crash while a requester
// lane is parked on its frozen shard: the crash parks the server's lane, the
// gate is unconstrained (both lanes idle), and recovery re-joins below the
// primed cache — which must constrain again (the recovery frontier).
func TestGateLifecycleCrashWhileParked(t *testing.T) {
	g := NewGate()
	const srv, requester = 0, 1
	g.Bump(srv, 5000) // server's replication lane pinned by an in-flight ship
	g.Idle(requester) // requester parked on the frozen shard
	if g.SafeAt(5001) {
		t.Fatal("ship pin must constrain")
	}
	g.Idle(srv) // crash: the dead server's lanes park
	if !g.SafeAt(1 << 40) {
		t.Fatal("a fully parked gate must not constrain")
	}
	// Recovery: the server's first post-replay send re-joins below the
	// cache primed by the check above.
	g.Bump(srv, 6000)
	if g.SafeAt(6001) {
		t.Fatal("recovery re-join must lower the cached safe time")
	}
	if !g.SafeAt(6000) {
		t.Fatal("safe time must reach the recovery frontier")
	}
}

// TestGateLifecycleForkFanoutDuringCommit models workload fork fan-out
// racing a migration commit: the parent parks while children run, children
// join at spawn time under the parent's (then-active) floor, the commit pin
// holds, and the parent resumes at the latest child end.
func TestGateLifecycleForkFanoutDuringCommit(t *testing.T) {
	g := NewGate()
	const parent, child1, child2, ctl = 0, 1, 2, 3
	g.Bump(parent, 100)
	// Children join at their spawn times (>= the parent's frontier).
	g.Bump(child1, 100)
	g.Bump(child2, 110)
	g.Idle(parent) // parent parks to wait for the children
	// Migration commit RPC pins the ctl lane while children still run.
	g.Bump(ctl, 150)
	if !g.SafeAt(100) || g.SafeAt(101) {
		t.Fatal("slowest child governs while the parent is parked")
	}
	g.Bump(child1, 400)
	g.Bump(child2, 300)
	g.Idle(ctl) // commit served and replied; ctl parks
	if !g.SafeAt(300) || g.SafeAt(301) {
		t.Fatal("commit pin released: children govern again")
	}
	// Children exit; parent resumes at the latest child end.
	g.Idle(child1)
	g.Idle(child2)
	g.Bump(parent, 400)
	if !g.SafeAt(400) || g.SafeAt(401) {
		t.Fatal("parent must re-join at the fan-out's latest end time")
	}
}
