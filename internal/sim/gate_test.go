package sim

import (
	"sync"
	"testing"
)

// TestGateEmptySafe: with no lanes joined, nothing constrains the system.
func TestGateEmptySafe(t *testing.T) {
	g := NewGate()
	if !g.SafeAt(0) || !g.SafeAt(1<<40) {
		t.Fatal("empty gate must be safe at any time")
	}
}

// TestGateBumpConstrains: a joined lane holds the safe time at its frontier.
func TestGateBumpConstrains(t *testing.T) {
	g := NewGate()
	g.Bump(0, 100)
	if !g.SafeAt(100) {
		t.Fatal("safe time must reach the lone lane's frontier")
	}
	if g.SafeAt(101) {
		t.Fatal("safe time must not pass the lone lane's frontier")
	}
	g.Bump(0, 250)
	if !g.SafeAt(250) || g.SafeAt(251) {
		t.Fatal("raising the frontier must move the safe time with it")
	}
}

// TestGateBumpMonotone: Bump never lowers an active lane's frontier.
func TestGateBumpMonotone(t *testing.T) {
	g := NewGate()
	g.Bump(0, 200)
	g.Bump(0, 50) // ignored: active lanes only move forward
	if g.SafeAt(51) == false {
		t.Fatal("stale Bump lowered an active lane's frontier")
	}
	if !g.SafeAt(200) {
		t.Fatal("frontier should still be 200")
	}
}

// TestGateMinOverLanes: the safe time is the minimum frontier over all
// active lanes.
func TestGateMinOverLanes(t *testing.T) {
	g := NewGate()
	g.Bump(0, 100)
	g.Bump(1, 70)
	g.Bump(2, 130)
	if !g.SafeAt(70) || g.SafeAt(71) {
		t.Fatal("safe time must be the minimum frontier (70)")
	}
	g.Bump(1, 400)
	if !g.SafeAt(100) || g.SafeAt(101) {
		t.Fatal("after the laggard advances, the next minimum (100) governs")
	}
}

// TestGateIdleReleases: idling a lane removes its constraint; resuming
// restores one at the wakeup time.
func TestGateIdleReleases(t *testing.T) {
	g := NewGate()
	g.Bump(0, 50)
	g.Bump(1, 500)
	if g.SafeAt(51) {
		t.Fatal("lane 0 should constrain at 50")
	}
	g.Idle(0)
	if !g.SafeAt(500) || g.SafeAt(501) {
		t.Fatal("after idling lane 0, lane 1's frontier (500) governs")
	}
	// Resume only affects idle lanes.
	g.Resume(1, 10) // lane 1 is active: ignored
	if !g.SafeAt(500) {
		t.Fatal("Resume must not lower an active lane's frontier")
	}
	g.Resume(0, 600)
	if g.SafeAt(501) {
		t.Fatal("resumed lane 0 at 600 cannot raise the safe time past lane 1")
	}
	g.Idle(1)
	if !g.SafeAt(600) || g.SafeAt(601) {
		t.Fatal("lane 0's resumed frontier (600) must now govern")
	}
}

// TestGateResumeLowersCache: the monotone safe-time cache must drop when a
// lane resumes below it (the waker's handoff), or a server could serve an
// arrival that the resumed lane can still undercut.
func TestGateResumeLowersCache(t *testing.T) {
	g := NewGate()
	g.Bump(0, 1000)
	g.Idle(1) // lane 1 parks
	if !g.SafeAt(1000) {
		t.Fatal("lane 0's frontier should allow 1000 (and prime the cache)")
	}
	g.Resume(1, 300)
	if g.SafeAt(301) {
		t.Fatal("cache must observe the resumed lane's lower frontier")
	}
	if !g.SafeAt(300) {
		t.Fatal("safe time should still reach the resumed frontier")
	}
}

// TestGateJoinLowersCache: a first Bump below the cached safe time must be
// observed (join-time floor).
func TestGateJoinLowersCache(t *testing.T) {
	g := NewGate()
	g.Bump(0, 1000)
	if !g.SafeAt(900) {
		t.Fatal("prime the cache")
	}
	g.Bump(7, 400) // new lane joins behind the cache
	if g.SafeAt(401) {
		t.Fatal("join below the cached safe time must constrain again")
	}
}

// TestGateConcurrent hammers the gate from many goroutines and checks the
// invariant that SafeAt never returns true for a time beyond a frontier
// that some active lane is still holding far below it.
func TestGateConcurrent(t *testing.T) {
	g := NewGate()
	const lanes = 8
	// Lane 0 stays pinned low the whole time.
	g.Bump(0, 10)
	var wg sync.WaitGroup
	for id := 1; id < lanes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for t := Cycles(0); t < 5000; t += 7 {
				g.Bump(id, t)
				if t%35 == 0 {
					g.Idle(id)
					g.Resume(id, t+1)
				}
			}
		}(id)
	}
	stop := make(chan struct{})
	var violated bool
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if g.SafeAt(11) {
				violated = true
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	if violated {
		t.Fatal("SafeAt passed a pinned active lane's frontier")
	}
}

// TestGateSafeAtAllocs: the polling path must not allocate.
func TestGateSafeAtAllocs(t *testing.T) {
	g := NewGate()
	g.Bump(0, 100)
	g.Bump(1, 200)
	allocs := testing.AllocsPerRun(100, func() {
		g.SafeAt(50)
		g.SafeAt(150)
		g.Bump(0, 100)
	})
	if allocs != 0 {
		t.Fatalf("gate polling allocated %.1f/op, want 0", allocs)
	}
}
