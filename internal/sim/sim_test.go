package sim

import (
	"testing"
	"testing/quick"
)

func TestTopologySockets(t *testing.T) {
	topo := Topology{NumCores: 40, NumSockets: 4}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := topo.CoresPerSocket(); got != 10 {
		t.Fatalf("CoresPerSocket = %d, want 10", got)
	}
	if topo.Socket(0) != 0 || topo.Socket(9) != 0 || topo.Socket(10) != 1 || topo.Socket(39) != 3 {
		t.Error("Socket mapping wrong")
	}
	if topo.Socket(40) != -1 || topo.Socket(-1) != -1 {
		t.Error("out-of-range cores should map to -1")
	}
}

func TestTopologyDistance(t *testing.T) {
	topo := Topology{NumCores: 40, NumSockets: 4}
	if topo.Distance(3, 3) != DistSameCore {
		t.Error("same core distance wrong")
	}
	if topo.Distance(0, 9) != DistSameSocket {
		t.Error("same socket distance wrong")
	}
	if topo.Distance(0, 10) != DistCrossSocket {
		t.Error("cross socket distance wrong")
	}
}

func TestTopologyForCores(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10, 11, 20, 40} {
		topo := TopologyForCores(n)
		if err := topo.Validate(); err != nil {
			t.Errorf("TopologyForCores(%d) invalid: %v", n, err)
		}
		if topo.NumCores != n {
			t.Errorf("TopologyForCores(%d).NumCores = %d", n, topo.NumCores)
		}
	}
	if TopologyForCores(0).NumCores != 1 {
		t.Error("TopologyForCores(0) should clamp to 1 core")
	}
}

func TestTopologyValidate(t *testing.T) {
	bad := []Topology{{0, 1}, {1, 0}, {2, 3}}
	for _, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", topo)
		}
	}
}

func TestCoresOnSocket(t *testing.T) {
	topo := Topology{NumCores: 12, NumSockets: 3}
	cores := topo.CoresOnSocket(1)
	if len(cores) != 4 {
		t.Fatalf("socket 1 has %d cores, want 4", len(cores))
	}
	for _, c := range cores {
		if topo.Socket(c) != 1 {
			t.Errorf("core %d not on socket 1", c)
		}
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("new clock should read 0")
	}
	c.Advance(100)
	c.AdvanceTo(50) // must not go backwards
	if c.Now() != 100 {
		t.Fatalf("clock = %d, want 100", c.Now())
	}
	c.AdvanceTo(200)
	if c.Now() != 200 {
		t.Fatalf("clock = %d, want 200", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCoreTimeSerializes(t *testing.T) {
	var ct CoreTime
	end1 := ct.Execute(0, 100)
	end2 := ct.Execute(0, 100)
	if end1 != 100 || end2 != 200 {
		t.Fatalf("Execute results %d, %d; want 100, 200", end1, end2)
	}
	// A later-ready request starts no earlier than its ready time.
	end3 := ct.Execute(1000, 50)
	if end3 != 1050 {
		t.Fatalf("Execute(1000,50) = %d, want 1050", end3)
	}
	if ct.Busy() != 250 {
		t.Fatalf("Busy = %d, want 250", ct.Busy())
	}
}

func TestMachineExecute(t *testing.T) {
	m := NewMachine(TopologyForCores(2), DefaultCostModel())
	if end := m.Execute(0, 0, 100); end != 100 {
		t.Fatalf("execute end = %d, want 100", end)
	}
	if end := m.Execute(0, 500, 100); end != 600 {
		t.Fatalf("execute end = %d, want 600", end)
	}
	// Out-of-range cores are tolerated (work is not accounted anywhere).
	if end := m.Execute(99, 10, 10); end != 20 {
		t.Fatalf("out-of-range execute end = %d, want 20", end)
	}
	// The per-core busy counters record utilization.
	if m.Core(0).Busy() != 200 {
		t.Fatalf("core 0 busy = %d, want 200", m.Core(0).Busy())
	}
	if m.Core(1).Busy() != 0 {
		t.Fatalf("core 1 busy = %d, want 0", m.Core(1).Busy())
	}
	m.Reset()
	if m.MaxCoreFree() != 0 || m.Core(0).Busy() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCostModelLatency(t *testing.T) {
	c := DefaultCostModel()
	same := c.MsgLatency(DistSameCore, 0)
	near := c.MsgLatency(DistSameSocket, 0)
	far := c.MsgLatency(DistCrossSocket, 0)
	if !(same < near && near < far) {
		t.Fatalf("latencies not ordered: %d %d %d", same, near, far)
	}
	if c.MsgLatency(DistSameCore, 1024) <= same {
		t.Error("payload size should add latency")
	}
	if c.Seconds(Cycles(c.ClockHz)) != 1.0 {
		t.Error("Seconds conversion wrong")
	}
}

func TestLineCost(t *testing.T) {
	if LineCost(10, 0) != 0 {
		t.Error("zero bytes should cost nothing")
	}
	if LineCost(10, 1) != 10 || LineCost(10, 64) != 10 || LineCost(10, 65) != 20 {
		t.Error("LineCost rounding wrong")
	}
}

// Property: Execute never returns a completion earlier than ready+duration,
// and the core clock is monotonic.
func TestCoreTimeProperty(t *testing.T) {
	f := func(ready uint16, dur uint16) bool {
		var ct CoreTime
		prev := Cycles(0)
		for i := 0; i < 5; i++ {
			end := ct.Execute(Cycles(ready), Cycles(dur))
			if end < Cycles(ready)+Cycles(dur) {
				return false
			}
			if end < prev {
				return false
			}
			prev = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceString(t *testing.T) {
	names := map[Distance]string{DistSameCore: "same-core", DistSameSocket: "same-socket", DistCrossSocket: "cross-socket", Distance(9): "unknown"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("Distance(%d).String() = %q", d, d.String())
		}
	}
}
