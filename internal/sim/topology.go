// Package sim models the target machine: cores grouped into NUMA sockets,
// a cycle-based cost model, and virtual clocks used for performance
// accounting.
//
// The functional behaviour of the Hare reproduction uses ordinary goroutines
// and channels; sim only accounts for *time*. Every simulated entity (an
// application process, a file server, a scheduling server) owns a Clock and
// is pinned to a Core. Message latencies depend on the Distance between the
// sender's and receiver's cores.
package sim

import "fmt"

// Distance classifies how far apart two cores are in the machine topology.
type Distance int

// Distance values, from closest to farthest.
const (
	DistSameCore Distance = iota
	DistSameSocket
	DistCrossSocket
)

// String returns a human-readable name for the distance class.
func (d Distance) String() string {
	switch d {
	case DistSameCore:
		return "same-core"
	case DistSameSocket:
		return "same-socket"
	case DistCrossSocket:
		return "cross-socket"
	default:
		return "unknown"
	}
}

// Topology describes the simulated machine: NumCores cores spread evenly
// across NumSockets sockets. The paper's evaluation machine has 40 cores on
// 4 sockets (10 cores per socket).
type Topology struct {
	NumCores   int
	NumSockets int
}

// DefaultTopology mirrors the paper's 40-core, 4-socket Xeon E7-4850 machine.
func DefaultTopology() Topology {
	return Topology{NumCores: 40, NumSockets: 4}
}

// TopologyForCores builds a topology with n cores, keeping the paper's 10
// cores per socket where possible.
func TopologyForCores(n int) Topology {
	if n <= 0 {
		n = 1
	}
	sockets := (n + 9) / 10
	if sockets < 1 {
		sockets = 1
	}
	return Topology{NumCores: n, NumSockets: sockets}
}

// Validate checks that the topology is usable.
func (t Topology) Validate() error {
	if t.NumCores <= 0 {
		return fmt.Errorf("sim: topology must have at least one core, got %d", t.NumCores)
	}
	if t.NumSockets <= 0 {
		return fmt.Errorf("sim: topology must have at least one socket, got %d", t.NumSockets)
	}
	if t.NumSockets > t.NumCores {
		return fmt.Errorf("sim: more sockets (%d) than cores (%d)", t.NumSockets, t.NumCores)
	}
	return nil
}

// CoresPerSocket returns the number of cores on each socket (the last socket
// may hold fewer when NumCores is not divisible by NumSockets).
func (t Topology) CoresPerSocket() int {
	return (t.NumCores + t.NumSockets - 1) / t.NumSockets
}

// Socket returns the socket id of the given core.
func (t Topology) Socket(core int) int {
	if core < 0 || core >= t.NumCores {
		return -1
	}
	return core / t.CoresPerSocket()
}

// Distance classifies the distance between two cores.
func (t Topology) Distance(a, b int) Distance {
	if a == b {
		return DistSameCore
	}
	if t.Socket(a) == t.Socket(b) {
		return DistSameSocket
	}
	return DistCrossSocket
}

// CoresOnSocket returns the core ids that belong to the given socket.
func (t Topology) CoresOnSocket(socket int) []int {
	var out []int
	for c := 0; c < t.NumCores; c++ {
		if t.Socket(c) == socket {
			out = append(out, c)
		}
	}
	return out
}
