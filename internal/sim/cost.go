package sim

// Cycles is a duration or point in virtual time, measured in CPU cycles of
// the simulated machine.
type Cycles uint64

// CostModel holds the cycle costs used for virtual-time accounting. The
// defaults are calibrated loosely against the measurements reported in the
// paper (§5.3.3): an RPC round trip costs a few thousand cycles, sharing a
// core between a server and an application adds context-switch and
// cache-pollution overhead of a few thousand cycles per RPC, and the
// user-space NFS baseline pays an order of magnitude more per operation for
// its loopback transport.
type CostModel struct {
	// ClockHz is the nominal clock rate used to convert cycles to seconds.
	ClockHz float64

	// Message passing.
	MsgSend        Cycles // client-side cost to marshal and enqueue a message
	MsgRecv        Cycles // receiver-side cost to dequeue and unmarshal
	MsgLatencySame Cycles // propagation, same core
	MsgLatencyNear Cycles // propagation, same socket
	MsgLatencyFar  Cycles // propagation, cross socket
	MsgPerByte     Cycles // additional cost per 64 bytes of payload

	// Core sharing (timeshare configuration).
	ContextSwitch  Cycles // entering/leaving the server when co-located
	CachePollution Cycles // extra misses caused by sharing the L1/L2

	// Server-side service times per operation class.
	ServeLookup  Cycles
	ServeCreate  Cycles
	ServeUnlink  Cycles
	ServeOpen    Cycles
	ServeClose   Cycles
	ServeReadDir Cycles // base cost; per-entry cost added separately
	ServePerEnt  Cycles // per directory entry returned
	ServeMkdir   Cycles
	ServeRmdir   Cycles
	ServeRename  Cycles // per ADD_MAP / RM_MAP message
	ServeStat    Cycles
	ServeFdOp    Cycles // shared-fd read/write/offset ops
	ServeBlockOp Cycles // block allocation / truncate bookkeeping
	ServePipeOp  Cycles
	ServeExec    Cycles // scheduling server spawn cost

	// Client-side library work per operation (path parsing, fd table, ...).
	ClientSyscall Cycles

	// Tracing overhead per recorded span (internal/trace). Charged only
	// for sampled operations, so tracing-off runs are cycle-identical to
	// builds without the tracer at all — and the sampled-tracing overhead
	// reported by hare-bench is a modeled cost, not a free lunch.
	TraceSpan Cycles

	// Data movement, in cycles per 64-byte line.
	DRAMPerLine  Cycles // shared DRAM access (buffer cache miss in private cache)
	CachePerLine Cycles // private cache hit
	CopyPerLine  Cycles // memcpy within a core

	// Durability (write-ahead logging, when enabled).
	WalFlush        Cycles // base cost of flushing a log batch
	WalPerLine      Cycles // cost per 64 bytes appended to / replayed from the log
	WalReplayPerRec Cycles // per-record bookkeeping cost during recovery

	// Baseline: coherent shared-memory file system (Linux ramfs/tmpfs).
	RamfsOp      Cycles // typical metadata operation (no messaging)
	RamfsLockOp  Cycles // critical-section length for a directory operation
	RamfsPerLine Cycles // data copy per 64-byte line

	// Baseline: user-space NFS (UNFS3) over loopback.
	LoopbackRPC Cycles // per-RPC overhead through kernel + loopback
	UnfsServeOp Cycles // server-side service time per op
	UnfsPerLine Cycles // data transfer per 64-byte line (goes over RPC)
}

// DefaultCostModel returns the calibrated default cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		ClockHz: 2.4e9,

		MsgSend:        300,
		MsgRecv:        250,
		MsgLatencySame: 400,
		MsgLatencyNear: 700,
		MsgLatencyFar:  1400,
		MsgPerByte:     2,

		ContextSwitch:  1500,
		CachePollution: 2100,

		ServeLookup:  700,
		ServeCreate:  1200,
		ServeUnlink:  900,
		ServeOpen:    1000,
		ServeClose:   500,
		ServeReadDir: 800,
		ServePerEnt:  40,
		ServeMkdir:   1100,
		ServeRmdir:   900,
		ServeRename:  980, // average of ADD_MAP (1211) and RM_MAP (756)
		ServeStat:    600,
		ServeFdOp:    650,
		ServeBlockOp: 550,
		ServePipeOp:  600,
		ServeExec:    6000,

		ClientSyscall: 450,

		TraceSpan: 40,

		DRAMPerLine:  28,
		CachePerLine: 4,
		CopyPerLine:  8,

		WalFlush:        9000, // a battery-backed DRAM log region: cheaper than an SSD fsync, far dearer than a store
		WalPerLine:      10,
		WalReplayPerRec: 400,

		RamfsOp:      1900,
		RamfsLockOp:  950,
		RamfsPerLine: 14,

		LoopbackRPC: 36000,
		UnfsServeOp: 2200,
		UnfsPerLine: 46,
	}
}

// Seconds converts a cycle count to seconds under this cost model.
func (c CostModel) Seconds(cy Cycles) float64 {
	return float64(cy) / c.ClockHz
}

// MsgLatency returns the one-way propagation latency for the given distance
// and payload size in bytes.
func (c CostModel) MsgLatency(d Distance, payloadBytes int) Cycles {
	var base Cycles
	switch d {
	case DistSameCore:
		base = c.MsgLatencySame
	case DistSameSocket:
		base = c.MsgLatencyNear
	default:
		base = c.MsgLatencyFar
	}
	lines := Cycles((payloadBytes + 63) / 64)
	return base + lines*c.MsgPerByte
}

// LineCost returns cost*ceil(bytes/64): the number of cycles to move the
// given number of bytes at a per-64-byte-line cost.
func LineCost(perLine Cycles, bytes int) Cycles {
	if bytes <= 0 {
		return 0
	}
	return perLine * Cycles((bytes+63)/64)
}
