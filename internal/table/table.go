// Package table provides open-addressing hash tables used on the harness's
// hot paths in place of built-in Go maps (DESIGN.md §13).
//
// Three properties matter to the harness:
//
//   - Deterministic iteration. Range visits slots in backing-array order,
//     which is a pure function of the operation history — unlike Go map
//     iteration, which is deliberately randomized per run. Server-side
//     fan-outs that iterate a table (invalidation broadcasts, checkpoint
//     encoding) therefore happen in a reproducible order.
//   - Flat allocation. A table is one slot array; growth is the only
//     allocation, and a Put into an existing or free slot allocates
//     nothing. Values are stored inline.
//   - Bounded rehash pauses at scale via Sharded, which splits the key
//     space across fixed sub-tables so each rehash touches 1/shards of the
//     entries.
//
// Deletion uses backward-shift compaction (no tombstones), so probe
// sequences stay short regardless of churn.
package table

// Map is an open-addressing hash table with linear probing over a
// power-of-two slot array. The zero value is not ready for use; call New.
type Map[K comparable, V any] struct {
	hash  func(K) uint64
	slots []slot[K, V]
	used  int
	mask  uint64
}

type slot[K comparable, V any] struct {
	key  K
	val  V
	full bool
}

// minCap is the smallest slot-array size; small tables (per-directory entry
// shards, per-client caches) dominate, so start compact.
const minCap = 8

// New returns an empty map using the given hash function. sizeHint, when
// positive, pre-sizes the table to hold that many entries without growing.
func New[K comparable, V any](hash func(K) uint64, sizeHint int) *Map[K, V] {
	n := minCap
	for n*4 < sizeHint*5 { // initial load factor <= 0.8 of the hint
		n *= 2
	}
	return &Map[K, V]{
		hash:  hash,
		slots: make([]slot[K, V], n),
		mask:  uint64(n - 1),
	}
}

// Len returns the number of entries.
func (m *Map[K, V]) Len() int { return m.used }

// Get returns the value stored under key.
func (m *Map[K, V]) Get(key K) (V, bool) {
	i := m.hash(key) & m.mask
	for {
		s := &m.slots[i]
		if !s.full {
			var zero V
			return zero, false
		}
		if s.key == key {
			return s.val, true
		}
		i = (i + 1) & m.mask
	}
}

// Put stores val under key, replacing any existing entry.
func (m *Map[K, V]) Put(key K, val V) {
	if (m.used+1)*4 > len(m.slots)*3 { // grow at 75% load
		m.grow()
	}
	i := m.hash(key) & m.mask
	for {
		s := &m.slots[i]
		if !s.full {
			s.key = key
			s.val = val
			s.full = true
			m.used++
			return
		}
		if s.key == key {
			s.val = val
			return
		}
		i = (i + 1) & m.mask
	}
}

// Delete removes the entry under key, reporting whether it was present.
// The cluster after the removed slot is compacted by backward shifting, so
// the table never accumulates tombstones.
func (m *Map[K, V]) Delete(key K) bool {
	i := m.hash(key) & m.mask
	for {
		s := &m.slots[i]
		if !s.full {
			return false
		}
		if s.key == key {
			break
		}
		i = (i + 1) & m.mask
	}
	m.used--
	// Backward-shift: walk the cluster after i; any entry whose home slot
	// does not lie in (i, j] can be moved into the hole.
	j := i
	for {
		m.slots[j] = slot[K, V]{}
		next := j
		for {
			next = (next + 1) & m.mask
			s := &m.slots[next]
			if !s.full {
				return true
			}
			home := m.hash(s.key) & m.mask
			// s can fill the hole at j unless its home lies strictly inside
			// the wrapped interval (j, next].
			if !between(home, j, next) {
				m.slots[j] = *s
				j = next
				break
			}
		}
	}
}

// between reports whether home lies in the wrapped half-open interval
// (hole, cur].
func between(home, hole, cur uint64) bool {
	if hole < cur {
		return home > hole && home <= cur
	}
	return home > hole || home <= cur
}

// Range calls fn on every entry in slot order (deterministic for a given
// operation history) until fn returns false. The table must not be mutated
// during the walk.
func (m *Map[K, V]) Range(fn func(K, V) bool) {
	for i := range m.slots {
		if m.slots[i].full {
			if !fn(m.slots[i].key, m.slots[i].val) {
				return
			}
		}
	}
}

// Clear removes every entry, keeping the backing array.
func (m *Map[K, V]) Clear() {
	clear(m.slots)
	m.used = 0
}

func (m *Map[K, V]) grow() {
	old := m.slots
	m.slots = make([]slot[K, V], len(old)*2)
	m.mask = uint64(len(m.slots) - 1)
	m.used = 0
	for i := range old {
		if old[i].full {
			m.Put(old[i].key, old[i].val)
		}
	}
}

// Sharded splits the key space across a fixed number of sub-tables by hash,
// bounding the cost of any single rehash to one shard. It is the container
// for the large per-server tables (the inode table of a million-file
// namespace).
type Sharded[K comparable, V any] struct {
	hash   func(K) uint64
	shards []*Map[K, V]
	shift  uint
}

// shardCount must be a power of two.
const shardCount = 16

// NewSharded returns an empty sharded map.
func NewSharded[K comparable, V any](hash func(K) uint64, sizeHint int) *Sharded[K, V] {
	s := &Sharded[K, V]{
		hash:   hash,
		shards: make([]*Map[K, V], shardCount),
		shift:  64 - 4, // top log2(shardCount) bits pick the shard
	}
	for i := range s.shards {
		s.shards[i] = New[K, V](hash, sizeHint/shardCount)
	}
	return s
}

func (s *Sharded[K, V]) shard(key K) *Map[K, V] {
	return s.shards[s.hash(key)>>s.shift]
}

// Get returns the value stored under key.
func (s *Sharded[K, V]) Get(key K) (V, bool) { return s.shard(key).Get(key) }

// Put stores val under key.
func (s *Sharded[K, V]) Put(key K, val V) { s.shard(key).Put(key, val) }

// Delete removes the entry under key, reporting whether it was present.
func (s *Sharded[K, V]) Delete(key K) bool { return s.shard(key).Delete(key) }

// Len returns the number of entries across all shards.
func (s *Sharded[K, V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.used
	}
	return n
}

// Range calls fn on every entry, walking shards in index order and each
// shard in slot order (deterministic for a given operation history).
func (s *Sharded[K, V]) Range(fn func(K, V) bool) {
	for _, sh := range s.shards {
		stop := false
		sh.Range(func(k K, v V) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// HashU64 is a SplitMix64-style finalizer: a cheap, well-mixing hash for
// integer keys.
func HashU64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashString is FNV-1a over the string bytes, finalized with HashU64 so the
// top bits (shard selectors) are well mixed.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return HashU64(h)
}
