package table

import (
	"fmt"
	"testing"
)

// identity hashing makes probe clusters easy to construct on purpose.
func idHash(x uint64) uint64 { return x }

// TestMapBasic exercises put/get/delete/replace against a reference map
// through a deterministic churn history.
func TestMapBasic(t *testing.T) {
	m := New[uint64, int](HashU64, 0)
	ref := make(map[uint64]int)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 20000; i++ {
		k := next() % 4096
		switch next() % 3 {
		case 0, 1:
			m.Put(k, i)
			ref[k] = i
		case 2:
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
	for k, want := range ref {
		got, ok := m.Get(k)
		if !ok || got != want {
			t.Fatalf("Get(%d) = %d,%v, want %d,true", k, got, ok, want)
		}
	}
	for k := uint64(0); k < 4096; k++ {
		if _, inRef := ref[k]; !inRef {
			if _, ok := m.Get(k); ok {
				t.Fatalf("Get(%d) found a deleted key", k)
			}
		}
	}
}

// TestMapBackwardShift builds colliding clusters (identity hash, keys with
// the same low bits) and deletes from the middle: backward-shift compaction
// must keep every survivor reachable, including wrapped clusters.
func TestMapBackwardShift(t *testing.T) {
	m := New[uint64, int](idHash, 0)
	// All keys land on slot (k & mask); multiples of a large power of two
	// collide into one cluster.
	keys := []uint64{8, 8 + 1024, 8 + 2048, 8 + 4096, 8 + 8192, 9, 10}
	for i, k := range keys {
		m.Put(k, i)
	}
	// Delete the cluster head, then a middle entry.
	for _, del := range []uint64{8, 8 + 2048} {
		if !m.Delete(del) {
			t.Fatalf("Delete(%d) missed", del)
		}
		for i, k := range keys {
			if k == 8 || (del == 8+2048 && k == del) {
				continue
			}
			if v, ok := m.Get(k); !ok || v != i {
				t.Fatalf("after Delete(%d): Get(%d) = %d,%v, want %d,true", del, k, v, ok, i)
			}
		}
	}

	// Wrapped cluster: keys hashing to the last slots spill past the end.
	w := New[uint64, int](idHash, 0) // cap 8, mask 7
	for i, k := range []uint64{7, 15, 23, 31} {
		w.Put(k, i) // all home at slot 7; cluster wraps to 0,1,2
	}
	if !w.Delete(7) {
		t.Fatal("Delete(7) missed")
	}
	for i, k := range []uint64{15, 23, 31} {
		if v, ok := w.Get(k); !ok || v != i+1 {
			t.Fatalf("wrapped cluster: Get(%d) = %d,%v, want %d,true", k, v, ok, i+1)
		}
	}
}

// TestMapRangeDeterministic pins slot-order iteration: two tables built by
// the same operation history visit entries in the same order.
func TestMapRangeDeterministic(t *testing.T) {
	build := func() *Map[uint64, int] {
		m := New[uint64, int](HashU64, 0)
		for i := 0; i < 1000; i++ {
			m.Put(uint64(i*7), i)
		}
		for i := 0; i < 1000; i += 3 {
			m.Delete(uint64(i * 7))
		}
		return m
	}
	var a, b []uint64
	build().Range(func(k uint64, _ int) bool { a = append(a, k); return true })
	build().Range(func(k uint64, _ int) bool { b = append(b, k); return true })
	if len(a) != len(b) {
		t.Fatalf("walk lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestMapClear keeps the backing array but drops every entry.
func TestMapClear(t *testing.T) {
	m := New[uint64, int](HashU64, 0)
	for i := 0; i < 100; i++ {
		m.Put(uint64(i), i)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d", m.Len())
	}
	if _, ok := m.Get(5); ok {
		t.Fatal("Get found an entry after Clear")
	}
	m.Put(5, 50)
	if v, _ := m.Get(5); v != 50 {
		t.Fatal("Put after Clear lost the entry")
	}
}

// TestSharded exercises the sharded wrapper across enough keys to hit every
// shard.
func TestSharded(t *testing.T) {
	s := NewSharded[uint64, int](HashU64, 0)
	const n = 50000
	for i := uint64(0); i < n; i++ {
		s.Put(i, int(i)*2)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := uint64(0); i < n; i += 17 {
		if v, ok := s.Get(i); !ok || v != int(i)*2 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	for i := uint64(0); i < n; i += 2 {
		if !s.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if s.Len() != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", s.Len(), n/2)
	}
	seen := 0
	s.Range(func(k uint64, v int) bool {
		if k%2 == 0 || v != int(k)*2 {
			t.Fatalf("Range visited wrong entry %d=%d", k, v)
		}
		seen++
		return true
	})
	if seen != n/2 {
		t.Fatalf("Range visited %d entries, want %d", seen, n/2)
	}
}

// TestHashStringDistinct is a sanity check that the string hash separates
// realistic dirent names.
func TestHashStringDistinct(t *testing.T) {
	seen := make(map[uint64]string)
	for i := 0; i < 10000; i++ {
		s := fmt.Sprintf("f%07d", i)
		h := HashString(s)
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %q and %q", prev, s)
		}
		seen[h] = s
	}
}

// TestMapSteadyStateAllocs pins the flat-allocation property: operations on
// a pre-grown table allocate nothing.
func TestMapSteadyStateAllocs(t *testing.T) {
	m := New[uint64, int](HashU64, 0)
	for i := uint64(0); i < 1000; i++ {
		m.Put(i, int(i))
	}
	var k uint64
	allocs := testing.AllocsPerRun(100, func() {
		m.Put(k%1000, 1)    // existing key
		m.Get(k % 1000)     // hit
		m.Get(k%1000 + 1e9) // miss
		m.Delete(k%1000 + 1e9)
		k++
	})
	if allocs != 0 {
		t.Fatalf("steady-state table ops allocated %.1f/op, want 0", allocs)
	}
}

func BenchmarkMapGet(b *testing.B) {
	m := New[uint64, int](HashU64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		m.Put(i, int(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint64(i) & (1<<16 - 1))
	}
}

func BenchmarkGoMapGet(b *testing.B) {
	m := make(map[uint64]int, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		m[i] = int(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[uint64(i)&(1<<16-1)]
	}
}
