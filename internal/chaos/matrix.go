package chaos

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/trace"
)

// MatrixTechniques returns the full 2^5 sweep of the paper's five technique
// toggles (§5.4). The async-RPC pipeline and the zero-waste data path stay
// enabled throughout the sweep — they are this reproduction's defaults —
// and SampleConfigs mixes in their disabled states.
func MatrixTechniques() []core.Techniques {
	out := make([]core.Techniques, 0, 32)
	for bits := 0; bits < 32; bits++ {
		out = append(out, core.Techniques{
			DirectoryDistribution: bits&1 != 0,
			DirectoryBroadcast:    bits&2 != 0,
			DirectAccess:          bits&4 != 0,
			DirectoryCache:        bits&8 != 0,
			CreationAffinity:      bits&16 != 0,
			RPCPipelining:         true,
			DataPath:              true,
		})
	}
	return out
}

// MatrixConfigs expands a base config into the full technique × placement
// matrix (64 configurations).
func MatrixConfigs(base Config) []Config {
	var out []Config
	for _, pol := range []place.Policy{place.PolicyModulo, place.PolicyRing} {
		for _, tech := range MatrixTechniques() {
			c := base
			c.Techniques = tech
			c.Policy = pol
			out = append(out, c)
		}
	}
	return out
}

// SampleConfigs deterministically picks n configurations spread across the
// matrix: technique combinations stride through the 32-point sweep,
// placement policies alternate, and every third sample additionally turns
// the pipeline and data-path techniques off so the pre-optimization code
// paths stay under chaos too.
func SampleConfigs(base Config, n int) []Config {
	techs := MatrixTechniques()
	out := make([]Config, 0, n)
	for i := 0; i < n; i++ {
		c := base
		c.Techniques = techs[(i*7)%len(techs)]
		if i%2 == 1 {
			c.Policy = place.PolicyRing
		} else {
			c.Policy = place.PolicyModulo
		}
		if i%3 == 2 {
			c.Techniques.RPCPipelining = false
			c.Techniques.DataPath = false
		}
		out = append(out, c)
	}
	return out
}

// RunMatrix sweeps seeds × configs, writing one line per run to w (pass
// nil to discard), and returns the repro tuples of the failing runs. Every
// failure line carries the one-line (seed, config) tuple that reproduces it
// via `hare-chaos -repro`.
func RunMatrix(w io.Writer, configs []Config, seeds []uint64) []string {
	return RunMatrixTraced(w, configs, seeds, "")
}

// RunMatrixTraced is RunMatrix with trace capture: when traceDir is
// non-empty every run records a full span trace, and a failing run dumps
// its ring there (Chrome JSON + canonical encoding, see DumpTrace) with the
// path printed in the FAIL line. Passing runs leave no files behind.
func RunMatrixTraced(w io.Writer, configs []Config, seeds []uint64, traceDir string) []string {
	if w == nil {
		w = io.Discard
	}
	var failures []string
	for _, cfg := range configs {
		for _, seed := range seeds {
			run := cfg
			run.Seed = seed
			if traceDir != "" && !run.Trace.Enabled() {
				run.Trace = trace.Config{Sample: 1, Ring: 1 << 18}
			}
			rep, err := Run(run)
			if reportRun(w, run, rep, err, traceDir) {
				failures = append(failures, run.Tuple())
			}
		}
	}
	return failures
}

// reportRun writes one matrix result line and, for a failing traced run,
// dumps its span ring. Returns true when the run failed. The FAIL line
// carries the repro tuple and — when a dump was written — the trace path.
func reportRun(w io.Writer, run Config, rep *Report, err error, traceDir string) bool {
	tuple := run.Tuple()
	if err != nil {
		dump := ""
		if traceDir != "" && rep != nil {
			if p, derr := DumpTrace(traceDir, tuple, rep.Spans); derr == nil {
				dump = " trace=" + p
			} else {
				dump = fmt.Sprintf(" trace-dump-failed=%v", derr)
			}
		}
		fmt.Fprintf(w, "FAIL tuple=%s err=%v%s\n      repro: hare-chaos -repro %s\n", tuple, err, dump, tuple)
		return true
	}
	fmt.Fprintf(w, "PASS tuple=%s ops=%d events=%d delayed=%d dups=%d epoch=%d servers=%d\n",
		tuple, rep.Ops, rep.Events, rep.Faults.Delayed, rep.Faults.Duplicated, rep.Epoch, rep.Servers)
	return false
}
