package chaos

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/place"
)

// MatrixTechniques returns the full 2^5 sweep of the paper's five technique
// toggles (§5.4). The async-RPC pipeline and the zero-waste data path stay
// enabled throughout the sweep — they are this reproduction's defaults —
// and SampleConfigs mixes in their disabled states.
func MatrixTechniques() []core.Techniques {
	out := make([]core.Techniques, 0, 32)
	for bits := 0; bits < 32; bits++ {
		out = append(out, core.Techniques{
			DirectoryDistribution: bits&1 != 0,
			DirectoryBroadcast:    bits&2 != 0,
			DirectAccess:          bits&4 != 0,
			DirectoryCache:        bits&8 != 0,
			CreationAffinity:      bits&16 != 0,
			RPCPipelining:         true,
			DataPath:              true,
		})
	}
	return out
}

// MatrixConfigs expands a base config into the full technique × placement
// matrix (64 configurations).
func MatrixConfigs(base Config) []Config {
	var out []Config
	for _, pol := range []place.Policy{place.PolicyModulo, place.PolicyRing} {
		for _, tech := range MatrixTechniques() {
			c := base
			c.Techniques = tech
			c.Policy = pol
			out = append(out, c)
		}
	}
	return out
}

// SampleConfigs deterministically picks n configurations spread across the
// matrix: technique combinations stride through the 32-point sweep,
// placement policies alternate, and every third sample additionally turns
// the pipeline and data-path techniques off so the pre-optimization code
// paths stay under chaos too.
func SampleConfigs(base Config, n int) []Config {
	techs := MatrixTechniques()
	out := make([]Config, 0, n)
	for i := 0; i < n; i++ {
		c := base
		c.Techniques = techs[(i*7)%len(techs)]
		if i%2 == 1 {
			c.Policy = place.PolicyRing
		} else {
			c.Policy = place.PolicyModulo
		}
		if i%3 == 2 {
			c.Techniques.RPCPipelining = false
			c.Techniques.DataPath = false
		}
		out = append(out, c)
	}
	return out
}

// RunMatrix sweeps seeds × configs, writing one line per run to w (pass
// nil to discard), and returns the repro tuples of the failing runs. Every
// failure line carries the one-line (seed, config) tuple that reproduces it
// via `hare-chaos -repro`.
func RunMatrix(w io.Writer, configs []Config, seeds []uint64) []string {
	if w == nil {
		w = io.Discard
	}
	var failures []string
	for _, cfg := range configs {
		for _, seed := range seeds {
			run := cfg
			run.Seed = seed
			rep, err := Run(run)
			tuple := run.Tuple()
			if err != nil {
				failures = append(failures, tuple)
				fmt.Fprintf(w, "FAIL tuple=%s err=%v\n      repro: hare-chaos -repro %s\n", tuple, err, tuple)
				continue
			}
			fmt.Fprintf(w, "PASS tuple=%s ops=%d events=%d delayed=%d dups=%d epoch=%d servers=%d\n",
				tuple, rep.Ops, rep.Events, rep.Faults.Delayed, rep.Faults.Duplicated, rep.Epoch, rep.Servers)
		}
	}
	return failures
}
