package chaos

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/place"
	"repro/internal/repl"
)

// countFailovers tallies the plan's failover events by variant.
func countFailovers(p *Plan) (total, double, staged, lose int) {
	for _, ev := range p.Events {
		if ev.Kind != EvFailover {
			continue
		}
		total++
		if ev.Double {
			double++
		}
		if ev.Stage != "" {
			staged++
		}
		if ev.Lose {
			lose++
		}
	}
	return
}

// TestChaosFailoverSmoke is the failover chaos gate: sampled technique ×
// placement configurations under sync replication, with crash-and-promote
// failover events on the schedule — including double failures and
// follower-dies-mid-promotion — every quiescent point conformance-checked
// against the shadow model and every promotion checked for zero acked-write
// loss.
func TestChaosFailoverSmoke(t *testing.T) {
	base := DefaultConfig(0)
	base.Replication = repl.Sync
	configs := SampleConfigs(base, 6)
	fired := 0
	for ci, cfg := range configs {
		cfg := cfg
		seeds := []uint64{uint64(3000 + ci*10), uint64(3001 + ci*10), uint64(3002 + ci*10)}
		for _, seed := range seeds {
			run := cfg
			run.Seed = seed
			total, _, _, _ := countFailovers(NewPlan(run))
			fired += total
		}
		t.Run(TechBits(cfg.Techniques)+"-"+policyName(cfg.Policy), func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				run := cfg
				run.Seed = seed
				rep, err := Run(run)
				if err != nil {
					t.Fatalf("%v\n  repro: hare-chaos -repro %s", err, run.Tuple())
				}
				if rep.Ops == 0 || rep.Events == 0 {
					t.Fatalf("tuple=%s: degenerate run (%d ops, %d events)", run.Tuple(), rep.Ops, rep.Events)
				}
			}
		})
	}
	if fired == 0 {
		t.Error("no failover events across the whole smoke sweep; the schedule is not exercising promotion")
	}
}

// TestChaosFailoverAsyncSmoke runs a handful of async-replication tuples:
// promotion may lose up to one window of acked records, and the harness's
// loss bound plus the shadow model must both hold.
func TestChaosFailoverAsyncSmoke(t *testing.T) {
	base := DefaultConfig(0)
	base.Replication = repl.Async
	for _, seed := range []uint64{4001, 4002, 4003, 4004} {
		run := base
		run.Seed = seed
		if rep, err := Run(run); err != nil {
			t.Fatalf("%v\n  repro: hare-chaos -repro %s", err, run.Tuple())
		} else if rep.Ops == 0 {
			t.Fatalf("tuple=%s: degenerate run", run.Tuple())
		}
	}
}

// TestFailoverPlanDeterminism pins three properties of the replicated
// schedule: the same four-token tuple derives a byte-identical plan; the
// tuple round-trips through ParseTuple; and turning replication on only
// appends failover events — the op trace and every other event stay exactly
// what the three-token tuple produced, so old repro tuples never shift.
func TestFailoverPlanDeterminism(t *testing.T) {
	for _, seed := range []uint64{2, 77, 0xBEEF} {
		cfg := DefaultConfig(seed)
		cfg.Policy = place.PolicyRing
		cfg.Replication = repl.Sync

		a := NewPlan(cfg).Encode()
		if b := NewPlan(cfg).Encode(); !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two consecutive replicated plan derivations differ", seed)
		}
		s, tech, pol, rmode, err := ParseTuple(cfg.Tuple())
		if err != nil {
			t.Fatal(err)
		}
		if rmode != repl.Sync {
			t.Fatalf("tuple %q lost its replication token: %v", cfg.Tuple(), rmode)
		}
		if c := NewPlan(WithTuple(DefaultConfig(0), s, tech, pol, rmode)).Encode(); !bytes.Equal(a, c) {
			t.Fatalf("seed %d: plan rebuilt from tuple %q differs from the original", seed, cfg.Tuple())
		}

		off := cfg
		off.Replication = repl.Off
		offPlan, onPlan := NewPlan(off), NewPlan(cfg)
		if !reflect.DeepEqual(offPlan.Ops, onPlan.Ops) {
			t.Fatalf("seed %d: enabling replication changed the op trace", seed)
		}
		var rest []Event
		for _, ev := range onPlan.Events {
			if ev.Kind != EvFailover {
				rest = append(rest, ev)
			}
		}
		if !reflect.DeepEqual(offPlan.Events, rest) {
			t.Fatalf("seed %d: enabling replication perturbed the pre-existing event schedule", seed)
		}
	}

	// Across seeds the generator must cover every failover variant.
	var total, double, staged, lose int
	for seed := uint64(0); seed < 40; seed++ {
		cfg := DefaultConfig(seed)
		cfg.Replication = repl.Sync
		a, b, c, d := countFailovers(NewPlan(cfg))
		total += a
		double += b
		staged += c
		lose += d
	}
	if total == 0 || double == 0 || staged == 0 || lose == 0 {
		t.Fatalf("failover variants uncovered across 40 seeds: total=%d double=%d staged=%d lose=%d",
			total, double, staged, lose)
	}
}
