// Package chaos is the deterministic fault-schedule injection and
// model-based POSIX conformance harness (DESIGN.md §10).
//
// A chaos run is fully determined by a (seed, config) tuple. From the seed
// the harness derives, up front and purely:
//
//   - an op trace: a randomized POSIX program (create/write/read/rename/
//     unlink/mkdir/readdir/fsync/truncate/pipe+fork) for each of several
//     client processes, each confined to its own subtree of a shared
//     distributed directory so concurrent execution stays conflict-free;
//
//   - an event schedule: Crash / CrashLosingMemory+Recover, Checkpoint,
//     AddServer / RemoveServer and crash-mid-migration events fired at
//     quiescent round boundaries (membership changes may also fire mid-round,
//     concurrently with traffic);
//
//   - a message fault plan: seeded delivery jitter (bounded reordering) and
//     duplicate delivery of idempotent requests, installed on the simulated
//     network (msg.FaultPlan).
//
// While the trace runs, every read and stat is checked against a flat shadow
// model (internal/shadow), and at every quiescent boundary the full
// namespace and all file contents are diffed against it — tolerating only
// the writes the durability contract says a memory-losing crash may lose.
// Any failure is reported with the one-line (seed, config) tuple that
// reproduces it.
package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config shapes one chaos run. The zero value is not runnable; use
// DefaultConfig or fill in at least the deployment shape.
type Config struct {
	// Seed drives every random choice: the op trace, the event schedule,
	// and the message fault plan.
	Seed uint64

	// Deployment shape (always timeshare, durability always enabled: the
	// event schedule needs Crash/Recover and Checkpoint).
	Cores      int
	Servers    int
	MaxServers int // > Servers gives AddServer headroom

	Techniques core.Techniques
	Policy     place.Policy

	// Trace shape.
	Procs       int // concurrent client processes per round
	Rounds      int // rounds of traffic, with a quiescent boundary after each
	OpsPerRound int // POSIX ops per process per round

	// Message fault plan (see msg.FaultPlan). MaxDelay is the jitter bound
	// in cycles; DelayPercent and DupPercent are 0-100.
	MaxDelay     sim.Cycles
	DelayPercent int
	DupPercent   int

	// GroupCommit, when non-zero, batches WAL flushes (DESIGN.md §6),
	// putting the reply-holdback path on the chaos schedule too.
	GroupCommit sim.Cycles

	// Replication, when not Off, runs the deployment with WAL-shipped
	// followers (DESIGN.md §12) and adds failover events to the schedule:
	// crash + promote-the-replica, with double-failure and
	// crash-during-promotion variants. The tuple grows a fourth token
	// ("sync"/"async") so repro lines stay one-liners; three-token tuples
	// parse as replication off.
	Replication repl.Mode

	// Trace, when enabled, records every sampled request's span tree
	// (DESIGN.md §11); the run's Report then carries the ring so the
	// matrix runner can dump it next to the repro tuple. The tuple does
	// not encode it — rerun a tuple with the same Trace setting to get
	// the identical canonical span tree.
	Trace trace.Config

	// Parallel runs the deployment under the parallel virtual-time engine
	// (SetParallel(true), DESIGN.md §13). Like Trace it is not part of the
	// tuple: rerun the same tuple with Parallel on and off to compare
	// engines — passing runs must produce byte-identical namespaces.
	Parallel bool

	// Snapshot, when set, records the final namespace (path -> entry
	// fingerprint) in the Report after the last round, for cross-engine
	// equivalence checks.
	Snapshot bool
}

// DefaultConfig returns the smoke-test-sized configuration used by CI: a
// small machine, a few processes, every technique enabled, modulo placement.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:         seed,
		Cores:        4,
		Servers:      2,
		MaxServers:   4,
		Techniques:   core.AllTechniques(),
		Policy:       place.PolicyModulo,
		Procs:        2,
		Rounds:       3,
		OpsPerRound:  12,
		MaxDelay:     20000,
		DelayPercent: 25,
		DupPercent:   20,
	}
}

// normalized fills defaults for unset fields.
func (c Config) normalized() Config {
	d := DefaultConfig(c.Seed)
	if c.Cores <= 0 {
		c.Cores = d.Cores
	}
	if c.Servers <= 0 {
		c.Servers = d.Servers
	}
	if c.MaxServers <= 0 {
		c.MaxServers = c.Servers
		if c.MaxServers < c.Cores {
			c.MaxServers = c.Cores
		}
	}
	if c.MaxServers > c.Cores {
		c.MaxServers = c.Cores
	}
	if c.Procs <= 0 {
		c.Procs = d.Procs
	}
	if c.Rounds <= 0 {
		c.Rounds = d.Rounds
	}
	if c.OpsPerRound <= 0 {
		c.OpsPerRound = d.OpsPerRound
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	return c
}

// techOrder is the bit order of the technique string: one letter per field
// of core.Techniques, '1' = enabled.
var techOrder = []struct {
	name string
	get  func(*core.Techniques) *bool
}{
	{"DirectoryDistribution", func(t *core.Techniques) *bool { return &t.DirectoryDistribution }},
	{"DirectoryBroadcast", func(t *core.Techniques) *bool { return &t.DirectoryBroadcast }},
	{"DirectAccess", func(t *core.Techniques) *bool { return &t.DirectAccess }},
	{"DirectoryCache", func(t *core.Techniques) *bool { return &t.DirectoryCache }},
	{"CreationAffinity", func(t *core.Techniques) *bool { return &t.CreationAffinity }},
	{"RPCPipelining", func(t *core.Techniques) *bool { return &t.RPCPipelining }},
	{"DataPath", func(t *core.Techniques) *bool { return &t.DataPath }},
}

// TechBits encodes a technique set as a 7-character bit string (the order is
// the field order of core.Techniques).
func TechBits(t core.Techniques) string {
	var sb strings.Builder
	for _, f := range techOrder {
		if *f.get(&t) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParseTechBits decodes a TechBits string.
func ParseTechBits(s string) (core.Techniques, error) {
	var t core.Techniques
	if len(s) != len(techOrder) {
		return t, fmt.Errorf("chaos: technique bits %q must be %d characters", s, len(techOrder))
	}
	for i, f := range techOrder {
		switch s[i] {
		case '1':
			*f.get(&t) = true
		case '0':
		default:
			return t, fmt.Errorf("chaos: technique bits %q: bad character %q", s, s[i])
		}
	}
	return t, nil
}

// policyName maps a placement policy to its tuple token.
func policyName(p place.Policy) string {
	if p == place.PolicyRing {
		return "ring"
	}
	return "mod"
}

// Tuple renders the run's one-line repro tuple: "seed,techbits,policy" with
// a fourth "sync"/"async" token when replication is on. A failing matrix run
// prints it, and ParseTuple (or `hare-chaos -repro`) turns it back into the
// identical run.
func (c Config) Tuple() string {
	t := fmt.Sprintf("%d,%s,%s", c.Seed, TechBits(c.Techniques), policyName(c.Policy))
	if c.Replication != repl.Off {
		t += "," + c.Replication.String()
	}
	return t
}

// ParseTuple decodes a Tuple back into the seed, technique set, policy and
// replication mode it names. A three-token tuple (every tuple printed before
// replication existed) parses as replication off. The remaining Config
// fields come from the caller (the matrix runner and the repro flag both
// apply them to the same base config).
func ParseTuple(s string) (seed uint64, tech core.Techniques, pol place.Policy, rmode repl.Mode, err error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 3 && len(parts) != 4 {
		return 0, tech, pol, rmode, fmt.Errorf("chaos: tuple %q must be seed,techbits,policy[,replmode]", s)
	}
	seed, err = strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return 0, tech, pol, rmode, fmt.Errorf("chaos: tuple seed %q: %w", parts[0], err)
	}
	tech, err = ParseTechBits(parts[1])
	if err != nil {
		return 0, tech, pol, rmode, err
	}
	switch parts[2] {
	case "mod":
		pol = place.PolicyModulo
	case "ring":
		pol = place.PolicyRing
	default:
		return 0, tech, pol, rmode, fmt.Errorf("chaos: tuple policy %q must be mod or ring", parts[2])
	}
	if len(parts) == 4 {
		m, ok := repl.ParseMode(parts[3])
		if !ok || m == repl.Off {
			return 0, tech, pol, rmode, fmt.Errorf("chaos: tuple replication %q must be sync or async", parts[3])
		}
		rmode = m
	}
	return seed, tech, pol, rmode, nil
}

// WithTuple returns a copy of base with the tuple's seed, techniques, policy
// and replication mode applied.
func WithTuple(base Config, seed uint64, tech core.Techniques, pol place.Policy, rmode repl.Mode) Config {
	base.Seed = seed
	base.Techniques = tech
	base.Policy = pol
	base.Replication = rmode
	return base
}
