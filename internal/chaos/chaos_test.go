package chaos

import (
	"bytes"
	"testing"

	"repro/internal/place"
	"repro/internal/repl"
)

// TestChaosConformanceSmoke is the CI chaos gate: 8 sampled technique/policy
// configurations × 4 distinct seeds each (32 seeds total), every run
// conformance-checked against the shadow model at every quiescent point,
// with message faults, crashes, memory-losing crashes, checkpoints, and
// live membership changes on the schedule. Zero divergences allowed; any
// failure prints its one-line repro tuple.
func TestChaosConformanceSmoke(t *testing.T) {
	base := DefaultConfig(0)
	configs := SampleConfigs(base, 8)
	for ci, cfg := range configs {
		cfg := cfg
		seeds := make([]uint64, 4)
		for si := range seeds {
			seeds[si] = uint64(1000 + ci*10 + si)
		}
		t.Run(TechBits(cfg.Techniques)+"-"+policyName(cfg.Policy), func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				run := cfg
				run.Seed = seed
				rep, err := Run(run)
				if err != nil {
					t.Fatalf("%v\n  repro: hare-chaos -repro %s", err, run.Tuple())
				}
				if rep.Ops == 0 || rep.Events == 0 {
					t.Fatalf("tuple=%s: degenerate run (%d ops, %d events)", run.Tuple(), rep.Ops, rep.Events)
				}
			}
		})
	}
}

// TestPlanDeterminism is the determinism acceptance check: the same
// (seed, config) tuple must produce a byte-identical op trace and fault
// schedule on consecutive derivations, and the tuple printed for a failure
// must reproduce exactly the same plan through the -repro path.
func TestPlanDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xDEAD} {
		cfg := DefaultConfig(seed)
		cfg.Policy = place.PolicyRing
		a := NewPlan(cfg).Encode()
		b := NewPlan(cfg).Encode()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two consecutive plan derivations differ", seed)
		}

		// Round-trip through the printed tuple, the way -repro rebuilds it.
		s, tech, pol, rmode, err := ParseTuple(cfg.Tuple())
		if err != nil {
			t.Fatal(err)
		}
		c := NewPlan(WithTuple(DefaultConfig(0), s, tech, pol, rmode)).Encode()
		if !bytes.Equal(a, c) {
			t.Fatalf("seed %d: plan rebuilt from tuple %q differs from the original", seed, cfg.Tuple())
		}
	}
}

// TestRunReproducibility runs the same tuple twice end to end: both runs
// must pass conformance and execute the identical trace and schedule.
func TestRunReproducibility(t *testing.T) {
	cfg := DefaultConfig(7)
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Ops != second.Ops || first.Events != second.Events {
		t.Fatalf("same tuple executed different work: %+v vs %+v", first, second)
	}
}

func TestTupleParsing(t *testing.T) {
	cfg := DefaultConfig(99)
	cfg.Techniques.DirectAccess = false
	cfg.Techniques.DataPath = false
	cfg.Policy = place.PolicyRing
	seed, tech, pol, rmode, err := ParseTuple(cfg.Tuple())
	if err != nil {
		t.Fatal(err)
	}
	if seed != 99 || tech != cfg.Techniques || pol != place.PolicyRing || rmode != repl.Off {
		t.Fatalf("tuple %q parsed to seed=%d tech=%+v pol=%v repl=%v", cfg.Tuple(), seed, tech, pol, rmode)
	}

	// The replicated tuple round-trips its fourth token.
	cfg.Replication = repl.Sync
	if _, _, _, rmode, err = ParseTuple(cfg.Tuple()); err != nil || rmode != repl.Sync {
		t.Fatalf("tuple %q parsed to repl=%v err=%v", cfg.Tuple(), rmode, err)
	}

	for _, bad := range []string{"", "1,2", "x,1111111,mod", "1,11111,mod", "1,1111112,mod", "1,1111111,hash",
		"1,1111111,mod,off", "1,1111111,mod,quorum", "1,1111111,mod,sync,extra"} {
		if _, _, _, _, err := ParseTuple(bad); err == nil {
			t.Errorf("ParseTuple(%q) accepted garbage", bad)
		}
	}
}

// TestMatrixShapes checks the sweep constructors cover what they claim.
func TestMatrixShapes(t *testing.T) {
	techs := MatrixTechniques()
	if len(techs) != 32 {
		t.Fatalf("MatrixTechniques: %d combos, want 32 (2^5)", len(techs))
	}
	seen := make(map[string]bool)
	for _, tc := range techs {
		seen[TechBits(tc)] = true
		if !tc.RPCPipelining || !tc.DataPath {
			t.Fatalf("matrix sweep %s disabled a default-on technique", TechBits(tc))
		}
	}
	if len(seen) != 32 {
		t.Fatalf("matrix sweep repeats combinations: %d unique", len(seen))
	}
	full := MatrixConfigs(DefaultConfig(0))
	if len(full) != 64 {
		t.Fatalf("MatrixConfigs: %d, want 64 (32 techniques x 2 policies)", len(full))
	}

	samples := SampleConfigs(DefaultConfig(0), 8)
	policies := map[string]bool{}
	offPath := false
	uniq := map[string]bool{}
	for _, c := range samples {
		policies[policyName(c.Policy)] = true
		uniq[c.Tuple()] = true
		if !c.Techniques.RPCPipelining {
			offPath = true
		}
	}
	if len(policies) != 2 {
		t.Fatal("samples do not cover both placement policies")
	}
	if !offPath {
		t.Fatal("samples never disable the pipeline/data-path techniques")
	}
	if len(uniq) != len(samples) {
		t.Fatalf("samples repeat configurations: %d unique of %d", len(uniq), len(samples))
	}
}

// TestMatrixRunnerReportsFailures checks the failure path prints a usable
// repro tuple: an impossible config (a run that must error) has to surface
// as a FAIL line carrying its tuple.
func TestMatrixRunnerReportsFailures(t *testing.T) {
	bad := DefaultConfig(5)
	bad.Cores = 1
	bad.Servers = 2 // timeshare cannot run 2 servers on 1 core: core.New fails
	var out bytes.Buffer
	fails := RunMatrix(&out, []Config{bad}, []uint64{5})
	if len(fails) != 1 {
		t.Fatalf("failures = %v, want exactly one", fails)
	}
	if fails[0] != bad.Tuple() {
		t.Fatalf("failure tuple %q, want %q", fails[0], bad.Tuple())
	}
	if !bytes.Contains(out.Bytes(), []byte("repro: hare-chaos -repro "+bad.Tuple())) {
		t.Fatalf("matrix output lacks the repro line:\n%s", out.String())
	}
}
