package chaos

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/repl"
	"repro/internal/sched"
	"repro/internal/shadow"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Report summarizes one chaos run.
type Report struct {
	Ops     int            // POSIX operations executed by the trace
	Events  int            // fault-schedule events fired
	Faults  msg.FaultStats // message faults the network injected
	Epoch   uint64         // final placement epoch
	Servers int            // final server count
	Cycles  sim.Cycles     // virtual time at the end of the run
	// Spans is the traced span ring (oldest first); nil unless the run's
	// Config.Trace was enabled.
	Spans []trace.Span
	// Namespace is the final tree under /chaos (path -> entry fingerprint);
	// nil unless Config.Snapshot was set. Two passing runs of the same tuple
	// must produce identical maps whichever engine they ran on.
	Namespace map[string]string
}

// idempotentOps are the protocol requests the network may deliver twice: the
// read-only operations whose second execution cannot change server state.
var idempotentOps = map[proto.Op]bool{
	proto.OpLookup:       true,
	proto.OpStat:         true,
	proto.OpGetBlocks:    true,
	proto.OpReadDirShard: true,
	proto.OpFdGetInfo:    true,
	proto.OpPing:         true,
}

// dupOK is the fault plan's idempotence classifier.
func dupOK(kind uint16, payload []byte) bool {
	if kind != proto.KindRequest {
		return false
	}
	req, err := proto.UnmarshalRequest(payload)
	if err != nil {
		return false
	}
	return idempotentOps[req.Op]
}

// coreConfig maps a chaos config onto a Hare deployment: timeshare (so
// AddServer works), durability enabled (so the crash events work), headroom
// up to MaxServers, replication when the tuple asks for it.
func coreConfig(cfg Config) core.Config {
	return core.Config{
		Cores:            cfg.Cores,
		Servers:          cfg.Servers,
		Timeshare:        true,
		Techniques:       cfg.Techniques,
		Placement:        sched.PolicyRoundRobin,
		Seed:             cfg.Seed,
		PlacePolicy:      cfg.Policy,
		MaxServers:       cfg.MaxServers,
		BufferCacheBytes: 8 << 20,
		BlockSize:        4096,
		Durability:       core.Durability{Enabled: true, GroupCommitInterval: cfg.GroupCommit},
		Replication:      repl.Config{Mode: cfg.Replication},
		Trace:            cfg.Trace,
	}
}

// Run executes one chaos run: derive the plan from the (seed, config) tuple,
// drive it against a fresh deployment, and conformance-check every quiescent
// point against the shadow model. The returned error, if any, carries the
// run's repro tuple.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	return RunPlan(NewPlan(cfg))
}

// RunPlan executes an already-derived plan.
func RunPlan(plan *Plan) (*Report, error) {
	cfg := plan.Cfg
	sys, err := core.New(coreConfig(cfg))
	if err != nil {
		return nil, fmt.Errorf("chaos tuple=%s: %w", cfg.Tuple(), err)
	}
	sys.Start()
	defer sys.Stop()
	if cfg.Parallel {
		if perr := sys.SetParallel(true); perr != nil {
			return nil, fmt.Errorf("chaos tuple=%s: %w", cfg.Tuple(), perr)
		}
	}
	sys.Network().SetFaultPlan(&msg.FaultPlan{
		Seed:         cfg.Seed,
		MaxDelay:     cfg.MaxDelay,
		DelayPercent: cfg.DelayPercent,
		DupPercent:   cfg.DupPercent,
		DupOK:        dupOK,
	})

	model := shadow.NewModel("/chaos")
	model.DirectAccess = cfg.Techniques.DirectAccess

	rep := &Report{}
	var runErr error
	cores := sys.AppCores()
	h := sys.Procs().StartRoot(cores[0], []string{"chaos-root"}, func(p *sched.Proc) int {
		if err := p.FS.Mkdir("/chaos", fsapi.MkdirOpt{Distributed: true}); err != nil {
			runErr = fmt.Errorf("mkdir /chaos: %w", err)
			return 1
		}
		for proc := 0; proc < cfg.Procs; proc++ {
			dir := fmt.Sprintf("/chaos/p%02d", proc)
			if err := p.FS.Mkdir(dir, fsapi.MkdirOpt{Distributed: true}); err != nil {
				runErr = fmt.Errorf("mkdir %s: %w", dir, err)
				return 1
			}
			model.Mkdir(dir)
		}
		for round := 0; round < cfg.Rounds; round++ {
			if err := runRound(sys, plan, model, p, round, rep); err != nil {
				runErr = err
				return 1
			}
		}
		return 0
	})
	status := h.Wait()
	rep.Faults = sys.Network().FaultStats()
	rep.Epoch = sys.Epoch()
	rep.Servers = sys.NumServers()
	rep.Cycles = h.EndTime()
	if tr := sys.Tracer(); tr != nil {
		rep.Spans = tr.Spans()
	}
	if runErr != nil {
		return rep, fmt.Errorf("chaos tuple=%s: %w", cfg.Tuple(), runErr)
	}
	if status != 0 {
		return rep, fmt.Errorf("chaos tuple=%s: root process exited %d", cfg.Tuple(), status)
	}
	if cfg.Snapshot {
		// Final-state fingerprint for cross-engine equivalence. The walk uses
		// a fresh client against the quiescent deployment; faults off so the
		// read-back itself is deterministic.
		sys.Network().SetFaultPlan(nil)
		ns := make(map[string]string)
		if err := snapshotNamespace(sys.NewClient(0), "/chaos", ns); err != nil {
			return rep, fmt.Errorf("chaos tuple=%s: snapshot: %w", cfg.Tuple(), err)
		}
		rep.Namespace = ns
	}
	return rep, nil
}

// snapshotNamespace walks the tree under dir and records every entry:
// directories by name, files by size and content.
func snapshotNamespace(fs fsapi.Client, dir string, out map[string]string) error {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("readdir %s: %w", dir, err)
	}
	for _, ent := range ents {
		path := dir + "/" + ent.Name
		if dir == "/" {
			path = "/" + ent.Name
		}
		if ent.Type == fsapi.TypeDir {
			out[path] = "dir"
			if err := snapshotNamespace(fs, path, out); err != nil {
				return err
			}
			continue
		}
		st, err := fs.Stat(path)
		if err != nil {
			return fmt.Errorf("stat %s: %w", path, err)
		}
		fd, err := fs.Open(path, fsapi.ORdOnly, 0)
		if err != nil {
			return fmt.Errorf("open %s: %w", path, err)
		}
		buf := make([]byte, st.Size)
		total := 0
		for total < len(buf) {
			n, err := fs.Read(fd, buf[total:])
			if err != nil {
				fs.Close(fd)
				return fmt.Errorf("read %s: %w", path, err)
			}
			if n == 0 {
				break
			}
			total += n
		}
		fs.Close(fd)
		out[path] = fmt.Sprintf("file[%d]:%x", st.Size, buf[:total])
	}
	return nil
}

// runRound spawns one worker process per planned op list, fires the round's
// mid-traffic events while they run, then — at the quiescent boundary —
// fires the round's scheduled faults and diffs the whole namespace against
// the shadow model.
func runRound(sys *core.System, plan *Plan, model *shadow.Model, p *sched.Proc, round int, rep *Report) error {
	cfg := plan.Cfg
	errs := make([]error, cfg.Procs)
	done := make([]int, cfg.Procs)
	handles := make([]*sched.Handle, 0, cfg.Procs)
	for proc := range plan.Ops[round] {
		idx := proc
		ops := plan.Ops[round][proc]
		h, err := p.Spawn([]string{fmt.Sprintf("chaos-w%02d", idx)}, func(wp *sched.Proc) int {
			for _, op := range ops {
				if err := applyOp(wp, model, op); err != nil {
					errs[idx] = fmt.Errorf("round %d proc %d op %s %s: %w", round, idx, op.Kind, op.Path, err)
					return 1
				}
				done[idx]++
			}
			return 0
		}, true)
		if err != nil {
			return fmt.Errorf("round %d: spawn worker %d: %w", round, proc, err)
		}
		handles = append(handles, h)
	}

	// Under the parallel engine the root's lane must park while the workers
	// run and the round's events fire: the root sends nothing until the
	// verify pass, and a frontier pinned at the round's start would block
	// every later arrival (workers' traffic, control-plane RPCs advancing
	// server clocks past it) from being served — the same protocol as
	// workload fan-out. The lane resumes at the round boundary, after the
	// clock pull, so the verify pass joins at its own first send time.
	gp, isParker := p.FS.(sched.GateParker)
	parked := isParker && gp.GateActive()
	if parked {
		gp.GatePark()
	}

	// Membership changes against live traffic: shard freezing, EEPOCH
	// refresh-retry, and serve-while-frozen parking are on the hot path.
	for _, ev := range plan.Events {
		if ev.Round == round && ev.Mid {
			if err := fireEvent(sys, model, ev, rep); err != nil {
				return fmt.Errorf("round %d mid event %s: %w", round, ev.Kind, err)
			}
		}
	}

	var latest sim.Cycles
	for _, h := range handles {
		h.Wait()
		if h.EndTime() > latest {
			latest = h.EndTime()
		}
	}
	for i := range errs {
		if errs[i] != nil {
			return errs[i]
		}
		rep.Ops += done[i]
	}
	// Pull the root's clock to the round boundary so rounds and events stay
	// ordered in virtual time (Wait alone does not advance it).
	if c, ok := p.FS.(sched.Clocked); ok {
		c.AdvanceClock(latest)
	}

	// Quiescent-boundary faults.
	lossy := false
	for _, ev := range plan.Events {
		if ev.Round != round || ev.Mid {
			continue
		}
		if ev.Kind == EvCrashLoseMem || (ev.Kind == EvFailover && ev.Lose) {
			lossy = true
		}
		if err := fireEvent(sys, model, ev, rep); err != nil {
			return fmt.Errorf("round %d event %s srv %d: %w", round, ev.Kind, ev.Server, err)
		}
	}

	if parked {
		gp.GateResume()
	}

	// The oracle: full namespace + content diff against the shadow model.
	if err := model.Verify(p.FS); err != nil {
		return fmt.Errorf("conformance after round %d: %w", round, err)
	}
	if lossy {
		// Adopt whatever recovery produced for the legally-lost contents so
		// the next round's reads have an exact reference again.
		if err := model.Reconcile(p.FS); err != nil {
			return fmt.Errorf("reconcile after round %d: %w", round, err)
		}
	}
	return nil
}

// fireEvent executes one scheduled fault, keeping the shadow model's
// durability bookkeeping in step.
func fireEvent(sys *core.System, model *shadow.Model, ev Event, rep *Report) error {
	rep.Events++
	switch ev.Kind {
	case EvCheckpoint:
		if err := sys.Checkpoint(ev.Server); err != nil {
			return err
		}
		model.NoteCheckpoint(ev.Server)
	case EvCheckpointAll:
		if err := sys.CheckpointAll(); err != nil {
			return err
		}
		model.NoteCheckpoint(-1)
	case EvCrash:
		if err := sys.Crash(ev.Server); err != nil {
			return err
		}
		if _, err := sys.Recover(ev.Server); err != nil {
			return err
		}
	case EvCrashLoseMem:
		if err := sys.CrashLosingMemory(ev.Server); err != nil {
			return err
		}
		model.CrashLostMemory(ev.Server)
		if _, err := sys.Recover(ev.Server); err != nil {
			return err
		}
	case EvAddServer:
		if _, err := sys.AddServer(); err != nil {
			return err
		}
	case EvRemoveServer:
		if err := sys.RemoveServer(ev.Server); err != nil {
			return err
		}
	case EvMigrateCrash:
		return fireMigrateCrash(sys, ev)
	case EvFailover:
		return fireFailover(sys, model, ev)
	default:
		return fmt.Errorf("unknown event kind %d", ev.Kind)
	}
	return nil
}

// fireFailover crashes a victim server and promotes its replica instead of
// replaying its log, with the event's chosen complications: the crash may
// wipe the victim's DRAM (Lose), the follower may already be down (Double —
// promotion must fall back to log replay), or the follower may die at a
// chosen stage of the promotion itself (Stage "seal" → fallback again;
// Stage "publish" → the epoch adoption parks as a pending migration that
// the follower's recovery must converge). In every variant the acked-write
// loss bound is checked against the replication mode: zero under sync and
// under every fallback, at most one window under async.
func fireFailover(sys *core.System, model *shadow.Model, ev Event) error {
	victim := ev.Server
	fid := sys.FollowerOf(victim)
	if fid < 0 {
		return fmt.Errorf("failover: replication is not running")
	}
	if ev.Lose {
		if err := sys.CrashLosingMemory(victim); err != nil {
			return err
		}
		model.CrashLostMemory(victim)
	} else if err := sys.Crash(victim); err != nil {
		return err
	}

	expectFallback := false
	followerDown := false
	if ev.Double {
		if err := sys.Crash(fid); err != nil {
			return fmt.Errorf("failover: crash follower %d: %w", fid, err)
		}
		followerDown = true
		expectFallback = true
	}
	staged := false
	if ev.Stage != "" && !ev.Double {
		sys.SetFailoverObserver(func(stage string, srv int) {
			if !staged && stage == ev.Stage {
				staged = true
				_ = sys.Crash(fid)
			}
		})
	}

	rep, err := sys.Failover(victim)
	sys.SetFailoverObserver(nil)
	if staged {
		followerDown = true
		if ev.Stage == "seal" {
			expectFallback = true
		}
	}
	if err != nil {
		// The only survivable failure is the follower dying mid-promotion
		// after the seal: the epoch adoption must be parked as a pending
		// migration, and recovering the follower re-drives it.
		if !staged || !sys.MigrationPending() {
			return fmt.Errorf("failover server %d: %w", victim, err)
		}
		if _, rerr := sys.Recover(fid); rerr != nil {
			return fmt.Errorf("failover: recover follower %d: %w", fid, rerr)
		}
		if sys.MigrationPending() {
			return fmt.Errorf("failover: epoch adoption still pending after follower %d recovered", fid)
		}
		return nil
	}
	if expectFallback && !rep.Fallback {
		return fmt.Errorf("failover server %d: expected a fallback replay (follower down), got a promotion", victim)
	}
	allowed := uint64(0)
	if !rep.Fallback && sys.Replication().Mode == repl.Async {
		allowed = uint64(sys.Replication().Window)
	}
	if rep.LostRecords > allowed {
		return fmt.Errorf("failover server %d lost %d acked records (allowed %d)", victim, rep.LostRecords, allowed)
	}
	if followerDown {
		if _, err := sys.Recover(fid); err != nil {
			return fmt.Errorf("failover: recover follower %d: %w", fid, err)
		}
	}
	return nil
}

// fireMigrateCrash kills a victim server at a chosen stage of a live
// migration, then recovers it; Recover auto-resumes the interrupted protocol
// and the run proceeds only once the migration has converged.
func fireMigrateCrash(sys *core.System, ev Event) error {
	fired := false
	sys.SetMigrationObserver(func(stage string, srv int) {
		if !fired && stage == ev.Stage && srv == ev.Victim {
			fired = true
			_ = sys.Crash(ev.Victim)
		}
	})
	var migErr error
	if ev.Add {
		_, migErr = sys.AddServer()
	} else {
		migErr = sys.RemoveServer(ev.Server)
	}
	sys.SetMigrationObserver(nil)
	if !fired {
		// The (stage, victim) pair never came up; the migration ran clean.
		return migErr
	}
	if migErr == nil {
		return fmt.Errorf("migrate-crash: killing server %d at %s did not interrupt the migration", ev.Victim, ev.Stage)
	}
	if !sys.MigrationPending() {
		return fmt.Errorf("migrate-crash: no pending migration after interrupting at %s", ev.Stage)
	}
	if _, err := sys.Recover(ev.Victim); err != nil {
		return fmt.Errorf("migrate-crash: recover server %d: %w", ev.Victim, err)
	}
	if sys.MigrationPending() {
		return fmt.Errorf("migrate-crash: migration still pending after recovery resumed it")
	}
	return nil
}

// applyOp executes one generated operation against the live file system and
// the shadow model, checking read results on the spot.
func applyOp(p *sched.Proc, model *shadow.Model, op Op) error {
	fs := p.FS
	switch op.Kind {
	case OpMkdir:
		if err := fs.Mkdir(op.Path, fsapi.MkdirOpt{}); err != nil {
			return err
		}
		model.Mkdir(op.Path)

	case OpCreate:
		data := pattern(op.Size, op.Seed)
		fd, err := fs.Open(op.Path, fsapi.OCreate|fsapi.OWrOnly|fsapi.OTrunc, fsapi.Mode644)
		if err != nil {
			return err
		}
		if _, err := fs.Write(fd, data); err != nil {
			fs.Close(fd)
			return err
		}
		if op.Sync {
			if err := fs.Fsync(fd); err != nil {
				fs.Close(fd)
				return err
			}
		}
		if err := fs.Close(fd); err != nil {
			return err
		}
		st, err := fs.Stat(op.Path)
		if err != nil {
			return fmt.Errorf("stat after create: %w", err)
		}
		model.SetFile(op.Path, data, st.Server)

	case OpAppend:
		data := pattern(op.Size, op.Seed)
		fd, err := fs.Open(op.Path, fsapi.OWrOnly|fsapi.OAppend, 0)
		if err != nil {
			return err
		}
		prev, _ := model.Size(op.Path)
		if _, err := fs.Write(fd, data); err != nil {
			fs.Close(fd)
			return err
		}
		if op.Sync {
			if err := fs.Fsync(fd); err != nil {
				fs.Close(fd)
				return err
			}
		}
		if err := fs.Close(fd); err != nil {
			return err
		}
		model.WriteAt(op.Path, prev, data)

	case OpOverwrite:
		data := pattern(op.Size, op.Seed)
		fd, err := fs.Open(op.Path, fsapi.OWrOnly, 0)
		if err != nil {
			return err
		}
		if _, err := fs.Pwrite(fd, data, op.Off); err != nil {
			fs.Close(fd)
			return err
		}
		if op.Sync {
			if err := fs.Fsync(fd); err != nil {
				fs.Close(fd)
				return err
			}
		}
		if err := fs.Close(fd); err != nil {
			return err
		}
		model.WriteAt(op.Path, op.Off, data)

	case OpTruncate:
		fd, err := fs.Open(op.Path, fsapi.OWrOnly, 0)
		if err != nil {
			return err
		}
		if err := fs.Ftruncate(fd, int64(op.Size)); err != nil {
			fs.Close(fd)
			return err
		}
		if err := fs.Close(fd); err != nil {
			return err
		}
		model.Truncate(op.Path, int64(op.Size))

	case OpRead:
		want, ok := model.Content(op.Path)
		if !ok {
			return fmt.Errorf("shadow lost track of %s", op.Path)
		}
		got, err := shadow.ReadAll(fs, op.Path, int64(len(want)))
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("read returned %d bytes diverging from shadow (%d expected)", len(got), len(want))
		}

	case OpStatCheck:
		want, ok := model.Size(op.Path)
		if !ok {
			return fmt.Errorf("shadow lost track of %s", op.Path)
		}
		st, err := fs.Stat(op.Path)
		if err != nil {
			return err
		}
		if st.Size != want {
			return fmt.Errorf("stat size %d, shadow says %d", st.Size, want)
		}

	case OpReadDir:
		ents, err := fs.ReadDir(op.Path)
		if err != nil {
			return err
		}
		want := model.Children(op.Path)
		if len(ents) != len(want) {
			return fmt.Errorf("readdir found %d entries, shadow says %d", len(ents), len(want))
		}
		seen := make(map[string]bool, len(ents))
		for _, e := range ents {
			seen[e.Name] = true
		}
		for _, name := range want {
			if !seen[name] {
				return fmt.Errorf("readdir is missing %q", name)
			}
		}

	case OpRename:
		if err := fs.Rename(op.Path, op.Path2); err != nil {
			return err
		}
		model.Rename(op.Path, op.Path2)

	case OpUnlink:
		if err := fs.Unlink(op.Path); err != nil {
			return err
		}
		model.Unlink(op.Path)

	case OpRmdirCycle:
		if err := fs.Mkdir(op.Path, fsapi.MkdirOpt{}); err != nil {
			return err
		}
		if err := fs.Rmdir(op.Path); err != nil {
			return err
		}
		// The name must be reusable (the tombstone must not shadow it).
		if err := fs.Mkdir(op.Path, fsapi.MkdirOpt{}); err != nil {
			return fmt.Errorf("recreate after rmdir: %w", err)
		}
		if err := fs.Rmdir(op.Path); err != nil {
			return fmt.Errorf("re-rmdir: %w", err)
		}

	case OpPipeFork:
		return pipeForkExchange(p, op)

	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
	return nil
}

// pipeForkExchange creates a pipe, forks a child that inherits both ends and
// writes a pattern into it, and reads the pattern back in the parent: pipe
// semantics and descriptor inheritance across fork, under message faults.
func pipeForkExchange(p *sched.Proc, op Op) error {
	fs := p.FS
	rd, wr, err := fs.Pipe()
	if err != nil {
		return fmt.Errorf("pipe: %w", err)
	}
	data := pattern(op.Size, op.Seed)
	child, err := p.Spawn([]string{"chaos-pipe-child"}, func(cp *sched.Proc) int {
		// The child sees the same descriptor numbers (fork semantics).
		if err := cp.FS.Close(rd); err != nil {
			return 2
		}
		if _, err := cp.FS.Write(wr, data); err != nil {
			return 3
		}
		if err := cp.FS.Close(wr); err != nil {
			return 4
		}
		return 0
	}, false)
	if err != nil {
		fs.Close(rd)
		fs.Close(wr)
		return fmt.Errorf("fork: %w", err)
	}
	// Parent drops its write end so EOF arrives once the child closes.
	if err := fs.Close(wr); err != nil {
		return fmt.Errorf("close parent write end: %w", err)
	}
	var got []byte
	buf := make([]byte, 256)
	for {
		n, err := fs.Read(rd, buf)
		if err != nil {
			fs.Close(rd)
			return fmt.Errorf("pipe read: %w", err)
		}
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if err := fs.Close(rd); err != nil {
		return fmt.Errorf("close read end: %w", err)
	}
	if status := child.Wait(); status != 0 {
		return fmt.Errorf("pipe child exited %d", status)
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("pipe carried %d bytes, want %d (content diverged)", len(got), len(data))
	}
	return nil
}
