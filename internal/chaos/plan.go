package chaos

import (
	"fmt"
	"strings"

	"repro/internal/repl"
)

// OpKind enumerates the POSIX operations the generator emits.
type OpKind uint8

// Generated operation kinds.
const (
	OpMkdir OpKind = iota
	OpCreate
	OpAppend
	OpOverwrite
	OpTruncate
	OpRead
	OpStatCheck
	OpReadDir
	OpRename
	OpUnlink
	OpRmdirCycle
	OpPipeFork
)

var opKindNames = [...]string{
	"mkdir", "create", "append", "overwrite", "truncate", "read",
	"stat", "readdir", "rename", "unlink", "rmdircycle", "pipefork",
}

// String names the op kind.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return "unknown"
}

// Op is one generated POSIX operation. Paths are absolute; every proc's ops
// stay inside its own subtree (plus uniquely-named rename targets in the
// shared directory), which keeps concurrent execution conflict-free and the
// shadow model exact.
type Op struct {
	Kind  OpKind
	Path  string
	Path2 string // rename target
	Size  int    // bytes written (create/append/overwrite/pipefork) or new size (truncate)
	Off   int64  // overwrite offset
	Seed  uint64 // content pattern seed
	Sync  bool   // fsync before close (write ops)
}

// EventKind enumerates the fault-schedule events.
type EventKind uint8

// Scheduled event kinds.
const (
	EvCheckpoint EventKind = iota
	EvCheckpointAll
	EvCrash        // crash + recover, memory intact: recovery must be exact
	EvCrashLoseMem // crash + recover, DRAM partition wiped: tolerance rules apply
	EvAddServer
	EvRemoveServer
	EvMigrateCrash // crash a victim mid-migration, then recover + auto-resume
	EvFailover     // crash a server, then promote its replica (replication runs only)
)

var eventKindNames = [...]string{
	"checkpoint", "checkpoint-all", "crash", "crash-lose-mem",
	"add-server", "remove-server", "migrate-crash", "failover",
}

// String names the event kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one scheduled fault. Round r events fire at the quiescent
// boundary after round r's traffic completes, except Mid events
// (AddServer/RemoveServer only), which fire while round r's traffic is still
// running — migration under live load.
type Event struct {
	Round  int
	Kind   EventKind
	Server int    // victim (crash kinds, checkpoint, failover) or drain target (remove-server); -1 n/a
	Mid    bool   // fire concurrently with the round's traffic
	Stage  string // migrate-crash: protocol stage to kill at (freeze|pull|commit); failover: promotion stage at which the follower dies too (seal|publish)
	Victim int    // migrate-crash: the server killed mid-protocol
	Add    bool   // migrate-crash: interrupted migration is an add (else a drain)
	Lose   bool   // failover: the victim's crash wipes its DRAM partition
	Double bool   // failover: the follower is down too — promotion must fall back to log replay
}

// Plan is the fully-derived schedule of one chaos run: the op trace for
// every process and round, and the event schedule. Generating a Plan is a
// pure function of the Config — no wall clock, no map iteration, no shared
// state — so the same (seed, config) tuple yields a byte-identical plan on
// every run (see Encode).
type Plan struct {
	Cfg Config
	// Ops[round][proc] is the op list process `proc` executes in `round`.
	Ops [][][]Op
	// Events holds the fault schedule, ordered by round (generation order).
	Events []Event
}

// procState is the generator's prediction of one process's namespace.
type procState struct {
	dir     string
	files   []string
	sizes   map[string]int64
	subdirs []string
	nextID  int
}

// NewPlan derives the run's complete op trace and fault schedule from the
// configuration.
func NewPlan(cfg Config) *Plan {
	cfg = cfg.normalized()
	p := &Plan{Cfg: cfg}
	p.genOps()
	p.genEvents()
	return p
}

// genOps generates every process's per-round op list.
func (p *Plan) genOps() {
	cfg := p.Cfg
	p.Ops = make([][][]Op, cfg.Rounds)
	for r := range p.Ops {
		p.Ops[r] = make([][]Op, cfg.Procs)
	}
	for proc := 0; proc < cfg.Procs; proc++ {
		st := &procState{
			dir:   fmt.Sprintf("/chaos/p%02d", proc),
			sizes: make(map[string]int64),
		}
		r := newRng(cfg.Seed, 0x0B5+uint64(proc))
		for round := 0; round < cfg.Rounds; round++ {
			ops := make([]Op, 0, cfg.OpsPerRound)
			for len(ops) < cfg.OpsPerRound {
				ops = append(ops, p.genOp(r, st, proc, round))
			}
			p.Ops[round][proc] = ops
		}
	}
}

// genOp draws one valid operation given the process's predicted state.
func (p *Plan) genOp(r *rng, st *procState, proc, round int) Op {
	newPath := func(prefix string) string {
		st.nextID++
		return fmt.Sprintf("%s/%s%03d", st.dir, prefix, st.nextID)
	}
	pickFile := func() string { return st.files[r.intn(len(st.files))] }
	removeFile := func(path string) {
		for i, f := range st.files {
			if f == path {
				st.files = append(st.files[:i], st.files[i+1:]...)
				break
			}
		}
		delete(st.sizes, path)
	}

	// Nothing to mutate yet: create first.
	roll := r.intn(100)
	if len(st.files) == 0 && roll >= 25 {
		roll = 0
	}
	switch {
	case roll < 25: // create (occasionally inside a subdir)
		dir := st.dir
		if len(st.subdirs) > 0 && r.pct(30) {
			dir = st.subdirs[r.intn(len(st.subdirs))]
		}
		st.nextID++
		path := fmt.Sprintf("%s/f%03d", dir, st.nextID)
		size := 1 + r.intn(6000) // up to ~1.5 blocks
		st.files = append(st.files, path)
		st.sizes[path] = int64(size)
		return Op{Kind: OpCreate, Path: path, Size: size, Seed: r.next(), Sync: r.pct(20)}
	case roll < 37: // append
		path := pickFile()
		size := 1 + r.intn(3000)
		st.sizes[path] += int64(size)
		return Op{Kind: OpAppend, Path: path, Size: size, Seed: r.next(), Sync: r.pct(20)}
	case roll < 47: // overwrite at an offset (may extend)
		path := pickFile()
		cur := st.sizes[path]
		off := int64(r.intn(int(cur) + 1))
		size := 1 + r.intn(2000)
		if end := off + int64(size); end > cur {
			st.sizes[path] = end
		}
		return Op{Kind: OpOverwrite, Path: path, Off: off, Size: size, Seed: r.next(), Sync: r.pct(20)}
	case roll < 52: // truncate (shrink or grow)
		path := pickFile()
		size := r.intn(int(st.sizes[path]) + 1024)
		st.sizes[path] = int64(size)
		return Op{Kind: OpTruncate, Path: path, Size: size}
	case roll < 68: // read back and compare to the shadow
		return Op{Kind: OpRead, Path: pickFile()}
	case roll < 74: // stat and compare size
		return Op{Kind: OpStatCheck, Path: pickFile()}
	case roll < 79: // list own directory and compare entry set
		return Op{Kind: OpReadDir, Path: st.dir}
	case roll < 85: // rename, sometimes into the shared directory
		from := pickFile()
		if r.pct(30) {
			// Retire the file into the shared tree under a unique name: the
			// two-server rename protocol plus cross-shard traffic.
			st.nextID++
			to := fmt.Sprintf("/chaos/mv-p%02d-%03d", proc, st.nextID)
			removeFile(from)
			return Op{Kind: OpRename, Path: from, Path2: to}
		}
		to := newPath("r")
		st.sizes[to] = st.sizes[from]
		removeFile(from)
		st.files = append(st.files, to)
		return Op{Kind: OpRename, Path: from, Path2: to}
	case roll < 91: // unlink
		path := pickFile()
		removeFile(path)
		return Op{Kind: OpUnlink, Path: path}
	case roll < 94: // mkdir a subdir (a later create may land in it)
		st.nextID++
		dir := fmt.Sprintf("%s/d%03d", st.dir, st.nextID)
		st.subdirs = append(st.subdirs, dir)
		return Op{Kind: OpMkdir, Path: dir}
	case roll < 97: // mkdir+rmdir cycle: the tombstone must not resurrect
		return Op{Kind: OpRmdirCycle, Path: newPath("tmp")}
	default: // pipe + fork: fd inheritance and pipe semantics under chaos
		return Op{Kind: OpPipeFork, Size: 64 + r.intn(1500), Seed: r.next()}
	}
}

// genEvents generates the fault schedule, tracking predicted membership so
// every event is valid when it fires.
func (p *Plan) genEvents() {
	cfg := p.Cfg
	r := newRng(cfg.Seed, 0xE7E)
	numServers := cfg.Servers
	members := make([]int, cfg.Servers)
	for i := range members {
		members[i] = i
	}
	removeMember := func(id int) {
		for i, m := range members {
			if m == id {
				members = append(members[:i], members[i+1:]...)
				return
			}
		}
	}

	serversAt := make([]int, cfg.Rounds)
	for round := 0; round < cfg.Rounds; round++ {
		// Mid-round membership change: migration runs against live traffic.
		if r.pct(35) {
			if numServers < cfg.MaxServers && (len(members) < 2 || r.pct(60)) {
				members = append(members, numServers)
				numServers++
				p.Events = append(p.Events, Event{Round: round, Kind: EvAddServer, Server: -1, Mid: true})
			} else if len(members) > 1 {
				id := members[r.intn(len(members))]
				removeMember(id)
				p.Events = append(p.Events, Event{Round: round, Kind: EvRemoveServer, Server: id, Mid: true})
			}
		}

		// One or two quiescent-boundary events per round.
		n := 1 + r.intn(2)
		for i := 0; i < n; i++ {
			switch roll := r.intn(100); {
			case roll < 18:
				p.Events = append(p.Events, Event{Round: round, Kind: EvCheckpoint, Server: r.intn(numServers)})
			case roll < 28:
				p.Events = append(p.Events, Event{Round: round, Kind: EvCheckpointAll, Server: -1})
			case roll < 55:
				p.Events = append(p.Events, Event{Round: round, Kind: EvCrash, Server: r.intn(numServers)})
			case roll < 70:
				p.Events = append(p.Events, Event{Round: round, Kind: EvCrashLoseMem, Server: r.intn(numServers)})
			case roll < 80 && numServers < cfg.MaxServers:
				members = append(members, numServers)
				numServers++
				p.Events = append(p.Events, Event{Round: round, Kind: EvAddServer, Server: -1})
			case roll < 88 && len(members) > 1:
				id := members[r.intn(len(members))]
				removeMember(id)
				p.Events = append(p.Events, Event{Round: round, Kind: EvRemoveServer, Server: id})
			case roll < 100 && len(members) > 0:
				// Crash a victim mid-migration; the recovery path must
				// resume and converge the interrupted protocol.
				stage := []string{"freeze", "pull", "commit"}[r.intn(3)]
				victim := members[r.intn(len(members))]
				if numServers < cfg.MaxServers && (len(members) < 3 || r.pct(70)) {
					members = append(members, numServers)
					numServers++
					p.Events = append(p.Events, Event{Round: round, Kind: EvMigrateCrash, Server: -1, Stage: stage, Victim: victim, Add: true})
				} else if len(members) > 2 {
					target := members[r.intn(len(members))]
					if target == victim {
						// The drain target must outlive the protocol victim.
						for _, m := range members {
							if m != victim {
								target = m
								break
							}
						}
					}
					removeMember(target)
					p.Events = append(p.Events, Event{Round: round, Kind: EvMigrateCrash, Server: target, Stage: stage, Victim: victim, Add: false})
				} else {
					p.Events = append(p.Events, Event{Round: round, Kind: EvCheckpointAll, Server: -1})
				}
			default:
				p.Events = append(p.Events, Event{Round: round, Kind: EvCheckpoint, Server: r.intn(numServers)})
			}
		}
		serversAt[round] = numServers
	}

	// Failover events ride on their own rng stream, drawn only when
	// replication is on: a replication-off plan consumes exactly the draws
	// it always did, so every pre-replication three-token tuple still
	// derives a byte-identical schedule.
	if cfg.Replication == repl.Off {
		return
	}
	rf := newRng(cfg.Seed, 0xFA11)
	for round := 0; round < cfg.Rounds; round++ {
		if !rf.pct(55) {
			continue
		}
		ev := Event{Round: round, Kind: EvFailover, Server: rf.intn(serversAt[round])}
		ev.Lose = rf.pct(35)
		switch rf.intn(6) {
		case 0:
			// The follower is already down: promotion must fall back.
			ev.Double = true
		case 1:
			// The follower dies exactly at the seal: fallback again.
			ev.Stage = "seal"
		case 2:
			// The follower dies after the seal, mid-promotion: the epoch
			// adoption parks as a pending migration and must converge once
			// the follower recovers.
			ev.Stage = "publish"
		}
		p.Events = append(p.Events, ev)
	}
}

// Encode renders the plan as a canonical byte stream: the determinism
// acceptance check is that two plans for the same (seed, config) tuple are
// byte-identical, and a failing run's plan can be diffed against its repro.
func (p *Plan) Encode() []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chaos-plan tuple=%s cores=%d servers=%d max=%d procs=%d rounds=%d ops=%d delay=%d/%d%% dup=%d%% gc=%d\n",
		p.Cfg.Tuple(), p.Cfg.Cores, p.Cfg.Servers, p.Cfg.MaxServers, p.Cfg.Procs,
		p.Cfg.Rounds, p.Cfg.OpsPerRound, p.Cfg.MaxDelay, p.Cfg.DelayPercent,
		p.Cfg.DupPercent, p.Cfg.GroupCommit)
	for round := range p.Ops {
		for proc := range p.Ops[round] {
			for _, op := range p.Ops[round][proc] {
				fmt.Fprintf(&sb, "r%d p%d %s path=%s", round, proc, op.Kind, op.Path)
				if op.Path2 != "" {
					fmt.Fprintf(&sb, " to=%s", op.Path2)
				}
				if op.Size != 0 {
					fmt.Fprintf(&sb, " size=%d", op.Size)
				}
				if op.Off != 0 {
					fmt.Fprintf(&sb, " off=%d", op.Off)
				}
				if op.Seed != 0 {
					fmt.Fprintf(&sb, " seed=%d", op.Seed)
				}
				if op.Sync {
					sb.WriteString(" sync")
				}
				sb.WriteByte('\n')
			}
		}
	}
	for _, ev := range p.Events {
		fmt.Fprintf(&sb, "event r%d %s srv=%d", ev.Round, ev.Kind, ev.Server)
		if ev.Mid {
			sb.WriteString(" mid")
		}
		if ev.Kind == EvMigrateCrash {
			fmt.Fprintf(&sb, " stage=%s victim=%d add=%v", ev.Stage, ev.Victim, ev.Add)
		}
		if ev.Kind == EvFailover {
			fmt.Fprintf(&sb, " lose=%v double=%v", ev.Lose, ev.Double)
			if ev.Stage != "" {
				fmt.Fprintf(&sb, " stage=%s", ev.Stage)
			}
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}
