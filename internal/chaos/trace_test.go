package chaos

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/trace"
)

// serialTraceConfig is a chaos shape whose traced runs are structurally
// deterministic — the DESIGN.md §11 guarantee requires at most one message
// in flight at a time, so that the server's earliest-arrival inbox pop
// never races a concurrent push in real time:
//
//   - one worker process (no concurrent clients),
//   - pipelining off (no async scatter bursts at CloseAll/Sync),
//   - no duplicate deliveries (a dup is a second in-flight message),
//   - no growth headroom (no migrations, so no timing-dependent EEPOCH).
//
// Delay faults stay on (with one message in flight a delay shifts virtual
// time deterministically), as do the quiescent-boundary checkpoint and
// crash/recover events.
func serialTraceConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Cores = 2
	cfg.Servers = 1
	cfg.MaxServers = 1
	cfg.Procs = 1
	cfg.Rounds = 2
	cfg.OpsPerRound = 10
	cfg.Techniques.RPCPipelining = false
	cfg.DupPercent = 0
	cfg.Trace = trace.Config{Sample: 1, Ring: 1 << 16}
	return cfg
}

// pickSerialSeed returns the first seed whose plan avoids pipe+fork ops:
// a forked pipe child is a second concurrent client, which would make span
// structure (queue spans) scheduling-dependent.
func pickSerialSeed(t *testing.T) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 100; seed++ {
		plan := NewPlan(serialTraceConfig(seed))
		ok := true
		for _, round := range plan.Ops {
			for _, ops := range round {
				for _, op := range ops {
					if op.Kind == OpPipeFork {
						ok = false
					}
				}
			}
		}
		if ok {
			return seed
		}
	}
	t.Fatal("no pipefork-free seed under 100")
	return 0
}

// TestChaosTraceDeterministic is the tracing determinism gate: rerunning a
// fixed tuple exports a byte-identical canonical span tree.
func TestChaosTraceDeterministic(t *testing.T) {
	cfg := serialTraceConfig(pickSerialSeed(t))
	rep1, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	rep2, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if len(rep1.Spans) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	c1 := trace.EncodeCanonical(rep1.Spans)
	c2 := trace.EncodeCanonical(rep2.Spans)
	if !bytes.Equal(c1, c2) {
		t.Fatalf("canonical span trees diverged across reruns of tuple %s (%d vs %d bytes)",
			cfg.Tuple(), len(c1), len(c2))
	}
	if _, err := trace.DecodeCanonical(c1); err != nil {
		t.Fatalf("canonical encoding does not decode: %v", err)
	}
}

// TestTraceOffByDefault pins that an untraced chaos run records nothing.
func TestTraceOffByDefault(t *testing.T) {
	rep, err := Run(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spans != nil {
		t.Fatalf("untraced run carried %d spans", len(rep.Spans))
	}
}

// TestFailingRunDumpsLoadableTrace forces a failure (a planned read of a
// file that was never created) and checks the matrix reporter writes a
// loadable trace dump next to the repro tuple.
func TestFailingRunDumpsLoadableTrace(t *testing.T) {
	cfg := serialTraceConfig(pickSerialSeed(t)).normalized()
	plan := NewPlan(cfg)
	plan.Ops[cfg.Rounds-1][0] = []Op{{Kind: OpRead, Path: "/chaos/p00/never-created"}}
	rep, err := RunPlan(plan)
	if err == nil {
		t.Fatal("poisoned plan should fail")
	}
	if rep == nil || len(rep.Spans) == 0 {
		t.Fatal("failing run should still carry its span ring")
	}

	dir := t.TempDir()
	var out strings.Builder
	if failed := reportRun(&out, cfg, rep, err, dir); !failed {
		t.Fatal("reportRun did not flag the failure")
	}
	line := out.String()
	if !strings.Contains(line, "FAIL tuple="+cfg.Tuple()) {
		t.Fatalf("FAIL line missing repro tuple: %q", line)
	}
	if !strings.Contains(line, " trace=") {
		t.Fatalf("FAIL line missing trace dump path: %q", line)
	}
	jsonPath := strings.Fields(strings.SplitAfter(line, "trace=")[1])[0]

	// The dump must be valid Chrome trace_event JSON...
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace dump is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace dump has no events")
	}
	// ...and the canonical sibling must decode.
	canon, err := os.ReadFile(strings.TrimSuffix(jsonPath, ".json") + ".canon")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.DecodeCanonical(canon); err != nil {
		t.Fatalf("canonical dump does not decode: %v", err)
	}
}
