package chaos

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/place"
	"repro/internal/repl"
)

// parallelCases are the tuples the cross-engine equivalence gate runs: the
// default schedule (crashes, lossy crashes, migrate-crashes, checkpoints,
// membership churn), a sync-replication schedule (failover events: double
// failures, staged follower deaths, promotions over interrupted migrations),
// and a ring-policy variant so consistent-hash migration paths ride along.
// Async replication is excluded on purpose: its unacked-window horizon is
// real-time racy by design, so even two serialized runs of the same tuple may
// legally diverge in what a lossy promotion rolls back.
func parallelCases() []Config {
	sync := DefaultConfig(7)
	sync.Replication = repl.Sync
	ring := DefaultConfig(1111111)
	ring.Policy = place.PolicyRing
	ringSync := DefaultConfig(99)
	ringSync.Policy = place.PolicyRing
	ringSync.Replication = repl.Sync
	return []Config{DefaultConfig(42), sync, ring, ringSync}
}

// TestChaosParallelEquivalence runs each case once per engine and requires
// byte-identical final namespaces: the parallel engine must not reorder
// anything observable even with the full control plane — replication
// shipping, failover promotion, crash/recovery, and shard migration — on the
// schedule (DESIGN.md §13).
func TestChaosParallelEquivalence(t *testing.T) {
	for _, base := range parallelCases() {
		base.Snapshot = true
		t.Run(base.Tuple(), func(t *testing.T) {
			snaps := make(map[bool]map[string]string)
			for _, parallel := range []bool{false, true} {
				cfg := base
				cfg.Parallel = parallel
				rep, err := Run(cfg)
				if err != nil {
					t.Fatalf("parallel=%v: %v", parallel, err)
				}
				if len(rep.Namespace) == 0 {
					t.Fatalf("parallel=%v: empty namespace snapshot", parallel)
				}
				snaps[parallel] = rep.Namespace
			}
			if !reflect.DeepEqual(snaps[false], snaps[true]) {
				t.Fatal(diffNamespaces(snaps[false], snaps[true]))
			}
		})
	}
}

// diffNamespaces renders the first few divergent entries between the
// serialized and parallel snapshots.
func diffNamespaces(serial, parallel map[string]string) string {
	paths := make(map[string]struct{}, len(serial))
	for p := range serial {
		paths[p] = struct{}{}
	}
	for p := range parallel {
		paths[p] = struct{}{}
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	out := "serialized and parallel namespaces diverge:"
	shown := 0
	for _, p := range sorted {
		s, sok := serial[p]
		q, qok := parallel[p]
		if sok && qok && s == q {
			continue
		}
		out += fmt.Sprintf("\n  %s:\n    serialized: %.80q (present=%v)\n    parallel:   %.80q (present=%v)", p, s, sok, q, qok)
		if shown++; shown >= 8 {
			out += "\n  ..."
			break
		}
	}
	return out
}
