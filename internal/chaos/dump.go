package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/trace"
)

// DumpTrace writes a run's span ring to dir in both export formats: Chrome
// trace_event JSON (open in Perfetto) and the canonical structural encoding
// (byte-identical across reruns of the same tuple, so two dumps diff with
// cmp). The file stem is derived from the repro tuple. Returns the JSON
// path.
func DumpTrace(dir, tuple string, spans []trace.Span) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	stem := "trace-" + strings.NewReplacer(",", "_", "/", "_").Replace(tuple)
	jsonPath := filepath.Join(dir, stem+".json")
	f, err := os.Create(jsonPath)
	if err != nil {
		return "", err
	}
	if err := trace.WriteChrome(f, spans); err != nil {
		f.Close()
		return "", fmt.Errorf("chaos: trace dump %s: %w", jsonPath, err)
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	canonPath := filepath.Join(dir, stem+".canon")
	if err := os.WriteFile(canonPath, trace.EncodeCanonical(spans), 0o644); err != nil {
		return "", err
	}
	return jsonPath, nil
}
