package chaos

// rng is a SplitMix64 generator: tiny, fast, and — unlike math/rand — fully
// under this package's control, so a plan generated from a seed is
// byte-identical across Go versions and runs.
type rng struct{ state uint64 }

// newRng derives an independent stream from a seed and a salt, so the op
// generator and the event scheduler consume separate sequences (adding an
// op never shifts the event schedule).
func newRng(seed, salt uint64) *rng {
	r := &rng{state: seed ^ (salt * 0x9e3779b97f4a7c15)}
	r.next() // decorrelate nearby seeds
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// pct reports true p percent of the time.
func (r *rng) pct(p int) bool { return r.intn(100) < p }

// pattern fills a deterministic byte pattern of the given length.
func pattern(n int, seed uint64) []byte {
	r := newRng(seed, 0xDA7A)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.next())
	}
	return out
}
