package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/stats"
	"repro/internal/workload"
)

// The pipelining sweep (DESIGN.md §7): every workload runs with the async
// RPC pipeline enabled and disabled at several server counts, and the table
// reports runtime alongside message economy, so the optimization's win is
// quantified in both dimensions — virtual time and messages on the wire.

// DefaultPipelineServerCounts are the server counts swept by PipelineFigure.
var DefaultPipelineServerCounts = []int{1, 2, 4, 8}

// PipelinePoint is one (benchmark, server count) measurement pair.
type PipelinePoint struct {
	Benchmark string
	Servers   int
	Ops       int

	OnSeconds  float64
	OffSeconds float64

	// Request messages sent by client libraries during the timed region.
	OnMsgs  uint64
	OffMsgs uint64

	OnBytes  uint64
	OffBytes uint64

	// Sub-operations that traveled inside batch envelopes (pipelining on).
	BatchedOps uint64

	OnQueueCycles  uint64
	OffQueueCycles uint64
}

// Speedup is the runtime ratio off/on (>1 means pipelining helps).
func (p PipelinePoint) Speedup() float64 {
	if p.OnSeconds == 0 {
		return 0
	}
	return p.OffSeconds / p.OnSeconds
}

// MsgReduction is the fraction of client request messages eliminated by
// pipelining (0.25 = 25% fewer messages).
func (p PipelinePoint) MsgReduction() float64 {
	if p.OffMsgs == 0 {
		return 0
	}
	return 1 - float64(p.OnMsgs)/float64(p.OffMsgs)
}

// PipelineData holds the full sweep.
type PipelineData struct {
	Cores  int
	Scale  float64
	Points []PipelinePoint
}

// PipelineFigure runs the sweep. The default workload set is the
// message-bound trio — small-file churn, creates, and sequential writes —
// at the default server counts.
func PipelineFigure(scale float64, cores int, serverCounts []int, ws []workload.Workload) (*PipelineData, *Table, error) {
	if cores == 0 {
		cores = 8
	}
	if len(serverCounts) == 0 {
		serverCounts = DefaultPipelineServerCounts
	}
	if ws == nil {
		ws = []workload.Workload{workload.SmallFile{}, workload.Creates{}, workload.Writes{}}
	}
	data := &PipelineData{Cores: cores, Scale: scale}
	t := &Table{
		Title: fmt.Sprintf("Pipelining sweep: async/batched RPC layer on vs off (%d cores)", cores),
		Columns: []string{"benchmark", "servers", "time on (ms)", "time off (ms)", "speedup",
			"msgs/op on", "msgs/op off", "msg cut", "batched ops", "queue cut"},
		Note: "speedup = off/on runtime; msg cut = client request messages eliminated by batching; queue cut = server queueing delay eliminated.",
	}
	for _, w := range ws {
		for _, nsrv := range serverCounts {
			if nsrv > cores {
				continue
			}
			p, err := pipelinePoint(scale, cores, nsrv, w)
			if err != nil {
				return nil, nil, err
			}
			data.Points = append(data.Points, p)
			queueCut := 0.0
			if p.OffQueueCycles > 0 {
				queueCut = 1 - float64(p.OnQueueCycles)/float64(p.OffQueueCycles)
			}
			t.AddRow(p.Benchmark, fmt.Sprintf("%d", p.Servers),
				f2(p.OnSeconds*1000), f2(p.OffSeconds*1000), f2(p.Speedup()),
				f2(stats.PerOp(p.OnMsgs, p.Ops)), f2(stats.PerOp(p.OffMsgs, p.Ops)),
				pct(p.MsgReduction()), fmt.Sprintf("%d", p.BatchedOps), pct(queueCut))
		}
	}
	return data, t, nil
}

// pipelinePoint measures one benchmark at one server count in both modes.
func pipelinePoint(scale float64, cores, nsrv int, w workload.Workload) (PipelinePoint, error) {
	onOpts := DefaultHare(cores)
	onOpts.Servers = nsrv
	offOpts := onOpts
	offOpts.Techniques.RPCPipelining = false

	on, err := RunWorkload(HareFactory(onOpts), w, scale)
	if err != nil {
		return PipelinePoint{}, err
	}
	off, err := RunWorkload(HareFactory(offOpts), w, scale)
	if err != nil {
		return PipelinePoint{}, err
	}
	p := PipelinePoint{
		Benchmark:  w.Name(),
		Servers:    nsrv,
		Ops:        on.Ops,
		OnSeconds:  on.Seconds,
		OffSeconds: off.Seconds,
	}
	if on.Econ != nil {
		p.OnMsgs = on.Econ.ClientRPCs
		p.OnBytes = on.Econ.Bytes
		p.BatchedOps = on.Econ.BatchedOps
		p.OnQueueCycles = on.Econ.QueueCycles
	}
	if off.Econ != nil {
		p.OffMsgs = off.Econ.ClientRPCs
		p.OffBytes = off.Econ.Bytes
		p.OffQueueCycles = off.Econ.QueueCycles
	}
	return p, nil
}

// Baseline is the JSON snapshot committed as BENCH_seed.json so future
// changes have a perf trajectory to compare against. Virtual runtimes are
// deterministic up to goroutine-scheduling tie-breaks in queue draining, so
// treat small drifts as noise and ratios as the signal.
type Baseline struct {
	Note   string          `json:"note"`
	Scale  float64         `json:"scale"`
	Cores  int             `json:"cores"`
	Points []PipelinePoint `json:"points"`
}

// WriteBaseline serializes the sweep to path as indented JSON.
func (d *PipelineData) WriteBaseline(path string) error {
	b := Baseline{
		Note:   "hare-bench -pipeline baseline; regenerate with: hare-bench -pipeline -scale <scale> -cores <cores> -baseline <path>",
		Scale:  d.Scale,
		Cores:  d.Cores,
		Points: d.Points,
	}
	buf, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
