// Package bench is the experiment harness: it builds file system backends
// (Hare in its various configurations, the Linux ramfs baseline, and the
// user-space NFS baseline), runs the paper's benchmark suite against them in
// virtual time, and regenerates every table and figure of the evaluation
// section (§5).
package bench

import (
	"fmt"

	"repro/internal/baseline/ramfs"
	"repro/internal/baseline/unfs"
	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/place"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Backend is one running file system deployment that workloads can run on.
type Backend struct {
	Name  string
	Procs sched.System
	Cores []int
	// Now returns the deployment's completion-time watermark (the latest
	// virtual time at which any process has exited).
	Now func() sim.Cycles
	// Seconds converts cycles to seconds under the deployment's cost model.
	Seconds func(sim.Cycles) float64
	// Close shuts the deployment down.
	Close func()
	// Faults exposes crash/recover/checkpoint on backends that support
	// fault injection (Hare with durability enabled); nil otherwise.
	Faults workload.FaultInjector
	// WalStats reports per-server write-ahead-log counters; nil when the
	// backend has no durability subsystem.
	WalStats func() []wal.Stats
	// Econ reports the deployment's cumulative message-economy counters;
	// nil on backends without a message layer (the baselines).
	Econ func() stats.Economy
	// Loads reports cumulative requests served per file server (for the
	// load-imbalance metric); nil on the baselines.
	Loads func() []uint64
	// Elastic exposes online server add/drain on backends configured with
	// growth headroom (Hare with MaxServers > Servers); nil otherwise.
	Elastic workload.ElasticController
	// Tracer is the deployment's request tracer (DESIGN.md §11); nil when
	// tracing is disabled or the backend has no trace support.
	Tracer *trace.Tracer
}

// sysFaults adapts core.System to the workload fault-injection interface.
type sysFaults struct{ sys *core.System }

func (f sysFaults) NumServers() int             { return f.sys.NumServers() }
func (f sysFaults) Checkpoint(server int) error { return f.sys.Checkpoint(server) }
func (f sysFaults) Crash(server int) error      { return f.sys.Crash(server) }
func (f sysFaults) Recover(server int) error {
	_, err := f.sys.Recover(server)
	return err
}

// Factory builds a fresh backend for a single measurement, using the given
// exec placement policy (the paper selects the policy per benchmark).
type Factory func(placement sched.Policy) (*Backend, error)

// HareOptions selects a Hare deployment shape.
type HareOptions struct {
	Cores      int
	Servers    int  // 0 means one server per core
	Timeshare  bool // servers share cores with applications
	Techniques core.Techniques
	Seed       uint64
	Durability core.Durability

	// MaxServers > Servers gives the deployment growth headroom and
	// exposes the elastic controller to workloads; PlacePolicy selects
	// how directory-entry shards are placed (DESIGN.md §9).
	MaxServers  int
	PlacePolicy place.Policy

	// Trace configures request tracing; the zero value keeps it off and
	// the deployment's virtual timeline untouched (DESIGN.md §11).
	Trace trace.Config

	// Parallel installs the parallel virtual-time engine (DESIGN.md §13)
	// before any workload runs: servers advance concurrently, gated by the
	// conservative lane frontiers, instead of serializing on one global
	// virtual-time chain. Incompatible with Replication.
	Parallel bool
}

// DefaultHare returns the standard Hare deployment used throughout the
// evaluation: n cores, timesharing, every technique enabled.
func DefaultHare(cores int) HareOptions {
	return HareOptions{Cores: cores, Servers: cores, Timeshare: true, Techniques: core.AllTechniques()}
}

// HareFactory returns a Factory that builds Hare deployments with the given
// options.
func HareFactory(opts HareOptions) Factory {
	return func(placement sched.Policy) (*Backend, error) {
		cfg := core.Config{
			Cores:           opts.Cores,
			Servers:         opts.Servers,
			Timeshare:       opts.Timeshare,
			Techniques:      opts.Techniques,
			Placement:       placement,
			Seed:            opts.Seed,
			RootDistributed: false,
			Durability:      opts.Durability,
			MaxServers:      opts.MaxServers,
			PlacePolicy:     opts.PlacePolicy,
			Trace:           opts.Trace,
		}
		if cfg.Servers == 0 {
			cfg.Servers = cfg.Cores
		}
		sys, err := core.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: building hare backend: %w", err)
		}
		sys.Start()
		name := fmt.Sprintf("hare(%dc/%ds", cfg.Cores, cfg.Servers)
		if cfg.Timeshare {
			name += ",timeshare)"
		} else {
			name += ",split)"
		}
		if opts.Parallel {
			if err := sys.SetParallel(true); err != nil {
				sys.Stop()
				return nil, fmt.Errorf("bench: enabling parallel engine: %w", err)
			}
			name += "+par"
		}
		b := &Backend{
			Name:    name,
			Procs:   sys.Procs(),
			Cores:   sys.AppCores(),
			Now:     sys.Procs().MaxEndTime,
			Seconds: sys.Seconds,
			Close:   sys.Stop,
			Econ:    sys.MessageEconomy,
			Loads:   sys.ServerLoads,
			Tracer:  sys.Tracer(),
		}
		if cfg.MaxServers > cfg.Servers {
			b.Name += "+elastic"
			b.Elastic = sys
		}
		if cfg.Durability.Enabled {
			b.Name += "+wal"
			b.Faults = sysFaults{sys}
			b.WalStats = sys.WalStats
		}
		return b, nil
	}
}

// RamfsFactory returns a Factory for the cache-coherent shared-memory
// baseline ("linux ramfs" in Figure 8, "linux" in Figure 15).
func RamfsFactory(cores int) Factory {
	return func(placement sched.Policy) (*Backend, error) {
		machine := sim.NewMachine(sim.TopologyForCores(cores), sim.DefaultCostModel())
		fs := ramfs.New(machine)
		appCores := make([]int, cores)
		for i := range appCores {
			appCores[i] = i
		}
		procs := sched.NewSMPSystem(sched.SMPConfig{
			Machine:  machine,
			AppCores: appCores,
			Policy:   placement,
			NewClient: func(c int) fsapi.Client {
				return fs.NewClient(c)
			},
		})
		return &Backend{
			Name:    fmt.Sprintf("linux-ramfs(%dc)", cores),
			Procs:   procs,
			Cores:   appCores,
			Now:     procs.MaxEndTime,
			Seconds: machine.Cost.Seconds,
			Close:   func() {},
		}, nil
	}
}

// UnfsFactory returns a Factory for the user-space NFS baseline (UNFS3 in
// Figure 8). The server is a single user-space process; clients reach it
// through the loopback interface and cannot share file descriptors.
func UnfsFactory(cores int) Factory {
	return func(placement sched.Policy) (*Backend, error) {
		machine := sim.NewMachine(sim.TopologyForCores(cores), sim.DefaultCostModel())
		sys := unfs.New(machine)
		appCores := make([]int, cores)
		for i := range appCores {
			appCores[i] = i
		}
		procs := sched.NewSMPSystem(sched.SMPConfig{
			Machine:  machine,
			AppCores: appCores,
			Policy:   placement,
			NewClient: func(c int) fsapi.Client {
				return sys.NewClient(c)
			},
		})
		return &Backend{
			Name:    fmt.Sprintf("linux-unfs(%dc)", cores),
			Procs:   procs,
			Cores:   appCores,
			Now:     procs.MaxEndTime,
			Seconds: machine.Cost.Seconds,
			Close:   func() {},
		}, nil
	}
}
