// Package bench is the experiment harness: it builds file system backends
// (Hare in its various configurations, the Linux ramfs baseline, and the
// user-space NFS baseline), runs the paper's benchmark suite against them in
// virtual time, and regenerates every table and figure of the evaluation
// section (§5).
package bench

import (
	"fmt"

	"repro/internal/baseline/ramfs"
	"repro/internal/baseline/unfs"
	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Backend is one running file system deployment that workloads can run on.
type Backend struct {
	Name  string
	Procs sched.System
	Cores []int
	// Now returns the deployment's completion-time watermark (the latest
	// virtual time at which any process has exited).
	Now func() sim.Cycles
	// Seconds converts cycles to seconds under the deployment's cost model.
	Seconds func(sim.Cycles) float64
	// Close shuts the deployment down.
	Close func()
}

// Factory builds a fresh backend for a single measurement, using the given
// exec placement policy (the paper selects the policy per benchmark).
type Factory func(placement sched.Policy) (*Backend, error)

// HareOptions selects a Hare deployment shape.
type HareOptions struct {
	Cores      int
	Servers    int  // 0 means one server per core
	Timeshare  bool // servers share cores with applications
	Techniques core.Techniques
	Seed       uint64
}

// DefaultHare returns the standard Hare deployment used throughout the
// evaluation: n cores, timesharing, every technique enabled.
func DefaultHare(cores int) HareOptions {
	return HareOptions{Cores: cores, Servers: cores, Timeshare: true, Techniques: core.AllTechniques()}
}

// HareFactory returns a Factory that builds Hare deployments with the given
// options.
func HareFactory(opts HareOptions) Factory {
	return func(placement sched.Policy) (*Backend, error) {
		cfg := core.Config{
			Cores:           opts.Cores,
			Servers:         opts.Servers,
			Timeshare:       opts.Timeshare,
			Techniques:      opts.Techniques,
			Placement:       placement,
			Seed:            opts.Seed,
			RootDistributed: false,
		}
		if cfg.Servers == 0 {
			cfg.Servers = cfg.Cores
		}
		sys, err := core.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: building hare backend: %w", err)
		}
		sys.Start()
		name := fmt.Sprintf("hare(%dc/%ds", cfg.Cores, cfg.Servers)
		if cfg.Timeshare {
			name += ",timeshare)"
		} else {
			name += ",split)"
		}
		return &Backend{
			Name:    name,
			Procs:   sys.Procs(),
			Cores:   sys.AppCores(),
			Now:     sys.Procs().MaxEndTime,
			Seconds: sys.Seconds,
			Close:   sys.Stop,
		}, nil
	}
}

// RamfsFactory returns a Factory for the cache-coherent shared-memory
// baseline ("linux ramfs" in Figure 8, "linux" in Figure 15).
func RamfsFactory(cores int) Factory {
	return func(placement sched.Policy) (*Backend, error) {
		machine := sim.NewMachine(sim.TopologyForCores(cores), sim.DefaultCostModel())
		fs := ramfs.New(machine)
		appCores := make([]int, cores)
		for i := range appCores {
			appCores[i] = i
		}
		procs := sched.NewSMPSystem(sched.SMPConfig{
			Machine:  machine,
			AppCores: appCores,
			Policy:   placement,
			NewClient: func(c int) fsapi.Client {
				return fs.NewClient(c)
			},
		})
		return &Backend{
			Name:    fmt.Sprintf("linux-ramfs(%dc)", cores),
			Procs:   procs,
			Cores:   appCores,
			Now:     procs.MaxEndTime,
			Seconds: machine.Cost.Seconds,
			Close:   func() {},
		}, nil
	}
}

// UnfsFactory returns a Factory for the user-space NFS baseline (UNFS3 in
// Figure 8). The server is a single user-space process; clients reach it
// through the loopback interface and cannot share file descriptors.
func UnfsFactory(cores int) Factory {
	return func(placement sched.Policy) (*Backend, error) {
		machine := sim.NewMachine(sim.TopologyForCores(cores), sim.DefaultCostModel())
		sys := unfs.New(machine)
		appCores := make([]int, cores)
		for i := range appCores {
			appCores[i] = i
		}
		procs := sched.NewSMPSystem(sched.SMPConfig{
			Machine:  machine,
			AppCores: appCores,
			Policy:   placement,
			NewClient: func(c int) fsapi.Client {
				return sys.NewClient(c)
			},
		})
		return &Backend{
			Name:    fmt.Sprintf("linux-unfs(%dc)", cores),
			Procs:   procs,
			Cores:   appCores,
			Now:     procs.MaxEndTime,
			Seconds: machine.Cost.Seconds,
			Close:   func() {},
		}, nil
	}
}
