package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/workload"
)

// The data-path sweep (DESIGN.md §8): the data-movement-bound workloads run
// with the zero-waste data path enabled and disabled at several server
// counts, and the table reports runtime alongside the line counters, so the
// optimization's win is quantified in both dimensions — virtual time and
// 64-byte lines moved through the memory system.

// DefaultDatapathServerCounts are the server counts swept by DatapathFigure.
var DefaultDatapathServerCounts = []int{1, 2, 4, 8}

// DatapathPoint is one (benchmark, server count) measurement pair.
type DatapathPoint struct {
	Benchmark string
	Servers   int
	Ops       int

	OnSeconds  float64
	OffSeconds float64

	// 64-byte lines written back to DRAM during the timed region.
	OnWbLines  uint64
	OffWbLines uint64

	// Resident lines dropped by open-time invalidation.
	OnInvLines  uint64
	OffInvLines uint64

	// Resident lines preserved by version-matched opens (data path on).
	SkipLines uint64

	OnBytes  uint64
	OffBytes uint64
}

// Speedup is the runtime ratio off/on (>1 means the data path helps).
func (p DatapathPoint) Speedup() float64 {
	if p.OnSeconds == 0 {
		return 0
	}
	return p.OffSeconds / p.OnSeconds
}

// OnDataLines is the total lines the data path moved with the technique on.
func (p DatapathPoint) OnDataLines() uint64 { return p.OnWbLines + p.OnInvLines }

// OffDataLines is the total lines moved with the technique off.
func (p DatapathPoint) OffDataLines() uint64 { return p.OffWbLines + p.OffInvLines }

// LineReduction is the fraction of data lines eliminated by the data path
// (0.25 = 25% fewer lines moved).
func (p DatapathPoint) LineReduction() float64 {
	if p.OffDataLines() == 0 {
		return 0
	}
	return 1 - float64(p.OnDataLines())/float64(p.OffDataLines())
}

// DatapathData holds the full sweep.
type DatapathData struct {
	Cores  int
	Scale  float64
	Points []DatapathPoint
}

// DatapathFigure runs the sweep. The default workload set is the
// data-movement-bound pair — the bigfile read/overwrite benchmark and
// sequential writes — at the default server counts.
func DatapathFigure(scale float64, cores int, serverCounts []int, ws []workload.Workload) (*DatapathData, *Table, error) {
	if cores == 0 {
		cores = 8
	}
	if len(serverCounts) == 0 {
		serverCounts = DefaultDatapathServerCounts
	}
	if ws == nil {
		ws = []workload.Workload{workload.BigFile{}, workload.Writes{}}
	}
	data := &DatapathData{Cores: cores, Scale: scale}
	t := &Table{
		Title: fmt.Sprintf("Data-path sweep: dirty-line writeback + version-skip invalidation on vs off (%d cores)", cores),
		Columns: []string{"benchmark", "servers", "time on (ms)", "time off (ms)", "speedup",
			"lines on", "lines off", "line cut", "skipped", "bytes cut"},
		Note: "speedup = off/on runtime; lines = 64B lines written back + invalidated; skipped = resident lines version-matched opens preserved; bytes cut = wire bytes saved by extent coding and fewer flushes.",
	}
	for _, w := range ws {
		for _, nsrv := range serverCounts {
			if nsrv > cores {
				continue
			}
			p, err := datapathPoint(scale, cores, nsrv, w)
			if err != nil {
				return nil, nil, err
			}
			data.Points = append(data.Points, p)
			bytesCut := 0.0
			if p.OffBytes > 0 {
				bytesCut = 1 - float64(p.OnBytes)/float64(p.OffBytes)
			}
			t.AddRow(p.Benchmark, fmt.Sprintf("%d", p.Servers),
				f2(p.OnSeconds*1000), f2(p.OffSeconds*1000), f2(p.Speedup()),
				fmt.Sprintf("%d", p.OnDataLines()), fmt.Sprintf("%d", p.OffDataLines()),
				pct(p.LineReduction()), fmt.Sprintf("%d", p.SkipLines), pct(bytesCut))
		}
	}
	return data, t, nil
}

// datapathPoint measures one benchmark at one server count in both modes.
func datapathPoint(scale float64, cores, nsrv int, w workload.Workload) (DatapathPoint, error) {
	onOpts := DefaultHare(cores)
	onOpts.Servers = nsrv
	offOpts := onOpts
	offOpts.Techniques.DataPath = false

	on, err := RunWorkload(HareFactory(onOpts), w, scale)
	if err != nil {
		return DatapathPoint{}, err
	}
	off, err := RunWorkload(HareFactory(offOpts), w, scale)
	if err != nil {
		return DatapathPoint{}, err
	}
	p := DatapathPoint{
		Benchmark:  w.Name(),
		Servers:    nsrv,
		Ops:        on.Ops,
		OnSeconds:  on.Seconds,
		OffSeconds: off.Seconds,
	}
	if on.Econ != nil {
		p.OnWbLines = on.Econ.WbLines
		p.OnInvLines = on.Econ.InvLines
		p.SkipLines = on.Econ.SkipLines
		p.OnBytes = on.Econ.Bytes
	}
	if off.Econ != nil {
		p.OffWbLines = off.Econ.WbLines
		p.OffInvLines = off.Econ.InvLines
		p.OffBytes = off.Econ.Bytes
	}
	return p, nil
}

// WriteBaseline serializes the sweep to path as indented JSON (committed as
// BENCH_datapath.json so future changes have a data-movement trajectory to
// compare against).
func (d *DatapathData) WriteBaseline(path string) error {
	b := struct {
		Note   string          `json:"note"`
		Scale  float64         `json:"scale"`
		Cores  int             `json:"cores"`
		Points []DatapathPoint `json:"points"`
	}{
		Note:   "hare-bench -datapath baseline; regenerate with: hare-bench -datapath -scale <scale> -cores <cores> -baseline <path>",
		Scale:  d.Scale,
		Cores:  d.Cores,
		Points: d.Points,
	}
	buf, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
