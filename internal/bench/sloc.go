package bench

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SLOCComponent maps a repository area to a display name, mirroring the
// component breakdown of the paper's Figure 4 (messaging, syscall
// interception, client library, file system server, scheduling).
type SLOCComponent struct {
	Name  string
	Paths []string
}

// SLOCComponents returns the component map for this repository.
func SLOCComponents() []SLOCComponent {
	return []SLOCComponent{
		{"Messaging", []string{"internal/msg", "internal/proto"}},
		{"Memory system (ncc)", []string{"internal/ncc", "internal/sim"}},
		{"Client library", []string{"internal/client", "internal/fsapi"}},
		{"File system server", []string{"internal/server"}},
		{"Scheduling", []string{"internal/sched"}},
		{"System assembly", []string{"internal/core", "hare.go", "doc.go"}},
		{"Baselines", []string{"internal/baseline"}},
		{"Workloads & harness", []string{"internal/workload", "internal/bench", "internal/stats"}},
		{"Tools & examples", []string{"cmd", "examples"}},
	}
}

// CountSLOC counts non-blank, non-comment-only lines of Go source under the
// given paths (relative to root), excluding tests when includeTests is
// false.
func CountSLOC(root string, paths []string, includeTests bool) (int, error) {
	total := 0
	for _, p := range paths {
		full := filepath.Join(root, p)
		info, err := os.Stat(full)
		if err != nil {
			continue // optional components may not exist yet
		}
		if !info.IsDir() {
			n, err := countFile(full)
			if err != nil {
				return 0, err
			}
			total += n
			continue
		}
		err = filepath.Walk(full, func(path string, fi os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if fi.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			if !includeTests && strings.HasSuffix(path, "_test.go") {
				return nil
			}
			n, err := countFile(path)
			if err != nil {
				return err
			}
			total += n
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// countFile counts source lines in one file: blank lines and lines that are
// only a // comment are excluded.
func countFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		n++
	}
	return n, sc.Err()
}

// Figure4 regenerates the SLOC breakdown table (paper Figure 4) for this
// repository, rooted at root.
func Figure4(root string, includeTests bool) (*Table, error) {
	t := &Table{
		Title:   "Figure 4: SLOC breakdown by component",
		Columns: []string{"component", "approx. SLOC"},
		Note:    "Counts non-blank, non-comment Go lines; the paper's prototype was 13,575 lines of C/C++.",
	}
	comps := SLOCComponents()
	total := 0
	type row struct {
		name string
		n    int
	}
	var rows []row
	for _, c := range comps {
		n, err := CountSLOC(root, c.Paths, includeTests)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{c.Name, n})
		total += n
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	for _, r := range rows {
		t.AddRow(r.name, commas(r.n))
	}
	t.AddRow("Total", commas(total))
	return t, nil
}

// commas formats an integer with thousands separators.
func commas(n int) string {
	s := []byte{}
	str := []byte{}
	for i, v := 0, n; ; i++ {
		d := byte('0' + v%10)
		str = append([]byte{d}, str...)
		v /= 10
		if v == 0 {
			break
		}
		if (i+1)%3 == 0 {
			str = append([]byte{','}, str...)
		}
	}
	s = append(s, str...)
	return string(s)
}
