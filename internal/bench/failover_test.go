package bench

import (
	"testing"

	"repro/internal/repl"
)

// TestFailoverFigureSmoke runs one tiny failover sweep and pins the
// acceptance properties: replication ships a non-zero message stream, the
// sync follower shows zero lag after a quiescent run, promotion loses no
// acked records under sync (and at most one window under async), and — the
// point of the whole subsystem — the promotion stall beats the WAL-replay
// recovery it replaces (the committed BENCH_failover.json holds the real
// numbers at the standard scale).
//
// Virtual-time audit: replay and promotion are measured on identical twin
// deployments that ran the identical workload, so the comparison is exact,
// not schedule-noisy; LostRecords and lag are schedule-independent counters.
func TestFailoverFigureSmoke(t *testing.T) {
	data, table, err := FailoverFigure(0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	if table.Render() == "" {
		t.Fatal("empty table")
	}
	if len(data.Points) != 3 {
		t.Fatalf("got %d points, want 3 (off/sync/async)", len(data.Points))
	}
	byMode := map[string]FailoverPoint{}
	for _, p := range data.Points {
		byMode[p.Mode] = p
	}

	off := byMode[repl.Off.String()]
	if off.ReplMsgs != 0 || off.ReplBytes != 0 {
		t.Fatalf("replication off still shipped: %d msgs, %d bytes", off.ReplMsgs, off.ReplBytes)
	}
	if off.ReplayMs <= 0 {
		t.Fatal("replay control measured zero recovery time")
	}

	for _, mode := range []repl.Mode{repl.Sync, repl.Async} {
		p := byMode[mode.String()]
		if p.ReplMsgs == 0 || p.ReplBytes == 0 {
			t.Fatalf("%s: no replication traffic; the shipper never ran", p.Mode)
		}
		if p.PromoteMs <= 0 {
			t.Fatalf("%s: promotion measured zero stall", p.Mode)
		}
		if p.PromoteMs >= p.ReplayMs {
			t.Fatalf("%s: promotion stalled %.4f ms vs %.4f ms replay; the replica buys nothing",
				p.Mode, p.PromoteMs, p.ReplayMs)
		}
		if p.Throughput <= 0 || p.VsOff <= 0 {
			t.Fatalf("%s: missing throughput: %.1f ops/s (%.2f vs off)", p.Mode, p.Throughput, p.VsOff)
		}
	}

	sync := byMode[repl.Sync.String()]
	if sync.MaxLag != 0 {
		t.Fatalf("sync follower lagged %d records after a quiescent run", sync.MaxLag)
	}
	if sync.LostRecords != 0 {
		t.Fatalf("sync promotion lost %d acked records", sync.LostRecords)
	}
	async := byMode[repl.Async.String()]
	if w := uint64(repl.DefaultWindow); async.LostRecords > w {
		t.Fatalf("async promotion lost %d acked records, window is %d", async.LostRecords, w)
	}
}
