package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

// TestDatapathSweepAcceptance pins the PR's acceptance criterion: on the
// bigfile workload, the zero-waste data path must move strictly fewer data
// lines AND finish faster than off-mode at every server count, with
// version-matched opens actually firing.
func TestDatapathSweepAcceptance(t *testing.T) {
	data, table, err := DatapathFigure(0.05, 4, []int{1, 2, 4},
		[]workload.Workload{workload.BigFile{FileKiB: 64, Rounds: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if table.Render() == "" {
		t.Fatal("empty table")
	}
	if len(data.Points) != 3 {
		t.Fatalf("expected 3 sweep points, got %d", len(data.Points))
	}
	for _, p := range data.Points {
		if p.OnDataLines() >= p.OffDataLines() {
			t.Errorf("servers=%d: on-mode moved %d lines, off-mode %d — not strictly fewer",
				p.Servers, p.OnDataLines(), p.OffDataLines())
		}
		if p.OnSeconds >= p.OffSeconds {
			t.Errorf("servers=%d: on-mode %.4fs not faster than off-mode %.4fs",
				p.Servers, p.OnSeconds, p.OffSeconds)
		}
		if p.SkipLines == 0 {
			t.Errorf("servers=%d: no lines preserved by version-matched opens", p.Servers)
		}
		if p.OnBytes >= p.OffBytes {
			// Extent coding is active in both modes; the on-mode byte win
			// comes from dirty-line flushes not inflating sizes. Not a hard
			// criterion, but a zero-byte delta with skip lines present would
			// indicate the counters are wired wrong.
			t.Logf("servers=%d: on-mode bytes %d >= off-mode %d", p.Servers, p.OnBytes, p.OffBytes)
		}
	}
}

// TestDatapathBaselineWriter round-trips the JSON baseline file.
func TestDatapathBaselineWriter(t *testing.T) {
	data := &DatapathData{
		Cores: 4, Scale: 0.05,
		Points: []DatapathPoint{{Benchmark: "bigfile", Servers: 2, Ops: 10,
			OnSeconds: 0.1, OffSeconds: 0.2, OnWbLines: 5, OffWbLines: 50}},
	}
	path := filepath.Join(t.TempDir(), "datapath.json")
	if err := data.WriteBaseline(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Points []DatapathPoint `json:"points"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 1 || back.Points[0].OffWbLines != 50 {
		t.Fatalf("baseline round trip mismatch: %+v", back.Points)
	}
	if s := back.Points[0].Speedup(); s != 2 {
		t.Fatalf("speedup = %v, want 2", s)
	}
}
