package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Default experiment parameters. The paper's machine has 40 cores; its
// scalability figure samples a handful of core counts.
var (
	// DefaultCoreCounts are the core counts used for the scalability
	// experiment (Figure 6).
	DefaultCoreCounts = []int{1, 2, 5, 10, 20, 40}
	// DefaultSplitCandidates are the server counts swept to find the best
	// split configuration at 40 cores (Figure 7).
	DefaultSplitCandidates = []int{4, 8, 12, 16, 20, 28, 32}
	// MaxCores is the size of the evaluation machine.
	MaxCores = 40
)

// Figure5 regenerates the operation-breakdown table (paper Figure 5): the
// share of each POSIX operation class issued by every benchmark — plus the
// message economy of each benchmark (request messages and wire bytes per
// POSIX call, and total server queueing delay), so the table pairs what the
// workloads ask for with what it costs on the message layer.
func Figure5(scale float64) (*Table, error) {
	f := HareFactory(DefaultHare(8))
	classes := workload.OpClasses()
	t := &Table{
		Title:   "Figure 5: Operation breakdown per benchmark (share of POSIX calls)",
		Columns: append(append([]string{"benchmark", "total ops"}, classNames(classes)...), "msgs/op", "bytes/op", "queue (ms)", "imbalance"),
		Note:    "Counted with the operation counter wrapped around every process's client; compare against the paper's Figure 5 stacked bars. msgs/op counts client request messages; queue is total virtual time requests waited at busy servers; imbalance is max/mean requests per server (1.0 = perfectly balanced).",
	}
	for _, w := range workload.All() {
		r, err := RunWorkload(f, w, scale)
		if err != nil {
			return nil, err
		}
		row := []string{r.Benchmark, fmt.Sprintf("%d", r.OpTotal)}
		for _, c := range classes {
			row = append(row, pct(r.OpMix[c]))
		}
		row = append(row, econCells(r)...)
		t.AddRow(row...)
	}
	return t, nil
}

// econCells formats a result's message-economy counters for table rows;
// backends without a message layer get dashes.
func econCells(r Result) []string {
	if r.Econ == nil {
		return []string{"-", "-", "-", "-"}
	}
	ops := int(r.OpTotal)
	if ops == 0 {
		ops = r.Ops
	}
	// Convert queue cycles with the measurement's own cycle→seconds ratio
	// (the backend's cost model already produced Seconds from Elapsed), so
	// the column stays consistent with the runtimes next to it even under a
	// non-default machine model.
	queueMs := 0.0
	if r.Elapsed > 0 {
		queueMs = float64(r.Econ.QueueCycles) * (r.Seconds / float64(r.Elapsed)) * 1000
	}
	return []string{
		f2(stats.PerOp(r.Econ.ClientRPCs, ops)),
		f1(stats.PerOp(r.Econ.Bytes, ops)),
		f2(queueMs),
		f2(r.Imbalance),
	}
}

func classNames(classes []workload.OpClass) []string {
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = c.String()
	}
	return out
}

// ScalabilityData holds the Figure 6 measurements: per-benchmark speedups
// relative to a single core, at each core count.
type ScalabilityData struct {
	CoreCounts []int
	// Speedup[benchmark][i] is the speedup at CoreCounts[i] over one core.
	Speedup map[string][]float64
	// Seconds[benchmark][i] is the absolute virtual runtime.
	Seconds map[string][]float64
}

// Figure6 regenerates the Hare scalability figure (paper Figure 6): speedup
// of every benchmark as cores (and servers) are added, relative to one core,
// in the timesharing configuration.
func Figure6(scale float64, coreCounts []int, ws []workload.Workload) (*ScalabilityData, *Table, error) {
	if len(coreCounts) == 0 {
		coreCounts = DefaultCoreCounts
	}
	if ws == nil {
		ws = workload.All()
	}
	data := &ScalabilityData{
		CoreCounts: coreCounts,
		Speedup:    make(map[string][]float64),
		Seconds:    make(map[string][]float64),
	}
	for _, w := range ws {
		var base Result
		for i, cores := range coreCounts {
			r, err := RunWorkload(HareFactory(DefaultHare(cores)), w, scale)
			if err != nil {
				return nil, nil, err
			}
			if i == 0 {
				base = r
			}
			data.Speedup[w.Name()] = append(data.Speedup[w.Name()], Speedup(base, r))
			data.Seconds[w.Name()] = append(data.Seconds[w.Name()], r.Seconds)
		}
	}
	t := &Table{
		Title:   "Figure 6: Speedup on Hare (timeshare) relative to one core",
		Columns: append([]string{"benchmark"}, coreLabels(coreCounts)...),
		Note:    "Each column is throughput at that core count divided by single-core throughput.",
	}
	for _, w := range ws {
		row := []string{w.Name()}
		for _, s := range data.Speedup[w.Name()] {
			row = append(row, f2(s))
		}
		t.AddRow(row...)
	}
	return data, t, nil
}

func coreLabels(coreCounts []int) []string {
	out := make([]string, len(coreCounts))
	for i, c := range coreCounts {
		out[i] = fmt.Sprintf("%d cores", c)
	}
	return out
}

// Figure7 regenerates the split-vs-timeshare comparison (paper Figure 7):
// throughput of the 20/20 split and of the best split, normalized to the
// timesharing configuration on the full machine.
func Figure7(scale float64, cores int, candidates []int, ws []workload.Workload) (*Table, error) {
	if cores == 0 {
		cores = MaxCores
	}
	if len(candidates) == 0 {
		candidates = DefaultSplitCandidates
	}
	if ws == nil {
		ws = workload.All()
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 7: Split vs timeshare configurations at %d cores (normalized to timeshare)", cores),
		Columns: []string{"benchmark", "timeshare", fmt.Sprintf("%d/%d split", cores/2, cores/2), "best split", "best #servers"},
		Note:    "The best split sweeps the number of dedicated file-server cores; the optimum is workload dependent (paper §5.3.2).",
	}
	for _, w := range ws {
		ts, err := RunWorkload(HareFactory(DefaultHare(cores)), w, scale)
		if err != nil {
			return nil, err
		}
		half, err := RunWorkload(HareFactory(HareOptions{
			Cores: cores, Servers: cores / 2, Timeshare: false, Techniques: core.AllTechniques(),
		}), w, scale)
		if err != nil {
			return nil, err
		}
		bestRatio, bestServers := 0.0, 0
		for _, nsrv := range candidates {
			if nsrv >= cores {
				continue
			}
			r, err := RunWorkload(HareFactory(HareOptions{
				Cores: cores, Servers: nsrv, Timeshare: false, Techniques: core.AllTechniques(),
			}), w, scale)
			if err != nil {
				return nil, err
			}
			ratio := Speedup(ts, r)
			if ratio > bestRatio {
				bestRatio, bestServers = ratio, nsrv
			}
		}
		// Timesharing itself is also a candidate for "best".
		if bestRatio < 1.0 {
			bestRatio, bestServers = 1.0, cores
		}
		t.AddRow(w.Name(), f2(1.0), f2(Speedup(ts, half)), f2(bestRatio), fmt.Sprintf("%d", bestServers))
	}
	return t, nil
}

// Figure8 regenerates the single-core comparison (paper Figure 8):
// throughput of Hare in a 2-core split configuration, Linux ramfs, and the
// user-space NFS server, normalized to Hare's single-core timesharing
// configuration.
func Figure8(scale float64, ws []workload.Workload) (*Table, error) {
	if ws == nil {
		ws = workload.All()
	}
	t := &Table{
		Title:   "Figure 8: Single-core throughput normalized to Hare (timeshare)",
		Columns: []string{"benchmark", "hare timeshare", "hare 2-core", "linux ramfs", "linux unfs", "hare runtime (ms)", "hare msgs/op"},
		Note:    "hare 2-core dedicates one core to the file server; ramfs requires cache coherence and is shown for reference (paper §5.3.3). msgs/op counts hare's client request messages per POSIX call.",
	}
	backends := []struct {
		name string
		f    Factory
	}{
		{"hare timeshare", HareFactory(DefaultHare(1))},
		{"hare 2-core", HareFactory(HareOptions{Cores: 2, Servers: 1, Timeshare: false, Techniques: core.AllTechniques()})},
		{"linux ramfs", RamfsFactory(1)},
		{"linux unfs", UnfsFactory(1)},
	}
	for _, w := range ws {
		var base Result
		row := []string{w.Name()}
		var runtimes []float64
		for i, be := range backends {
			r, err := RunWorkload(be.f, w, scale)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = r
			}
			row = append(row, f2(Speedup(base, r)))
			runtimes = append(runtimes, r.Seconds)
		}
		row = append(row, f2(runtimes[0]*1000))
		row = append(row, econCells(base)[0])
		t.AddRow(row...)
	}
	return t, nil
}

// Technique identifies one of the five ablated techniques (Figures 9-14).
type Technique struct {
	Name    string
	Figure  int
	Disable func(*core.Techniques)
}

// Techniques lists the five ablations in paper order.
func Techniques() []Technique {
	return []Technique{
		{"Directory distribution", 10, func(t *core.Techniques) { t.DirectoryDistribution = false }},
		{"Directory broadcast", 11, func(t *core.Techniques) { t.DirectoryBroadcast = false }},
		{"Direct cache access", 12, func(t *core.Techniques) { t.DirectAccess = false }},
		{"Directory cache", 13, func(t *core.Techniques) { t.DirectoryCache = false }},
		{"Creation affinity", 14, func(t *core.Techniques) { t.CreationAffinity = false }},
	}
}

// TechniqueData holds the per-benchmark speedups attributable to each
// technique: throughput with everything enabled divided by throughput with
// that single technique disabled.
type TechniqueData struct {
	Cores int
	// Ratio[technique][benchmark]
	Ratio map[string]map[string]float64
}

// AblateTechniques measures every technique's contribution at the given core
// count (the paper uses the full 40-core timesharing configuration). It
// returns the raw data plus one table per technique (Figures 10-14) and the
// summary table (Figure 9).
func AblateTechniques(scale float64, cores int, ws []workload.Workload) (*TechniqueData, []*Table, *Table, error) {
	if cores == 0 {
		cores = MaxCores
	}
	if ws == nil {
		ws = workload.All()
	}
	data := &TechniqueData{Cores: cores, Ratio: make(map[string]map[string]float64)}

	// Baseline: every technique enabled.
	baseline := make(map[string]Result)
	for _, w := range ws {
		r, err := RunWorkload(HareFactory(DefaultHare(cores)), w, scale)
		if err != nil {
			return nil, nil, nil, err
		}
		baseline[w.Name()] = r
	}

	var figures []*Table
	summary := &Table{
		Title:   fmt.Sprintf("Figure 9: Relative performance improvement from each technique (%d cores)", cores),
		Columns: []string{"technique", "min", "avg", "median", "max"},
		Note:    "Each cell is throughput with all techniques enabled divided by throughput with that technique disabled, over all benchmarks.",
	}
	for _, tech := range Techniques() {
		data.Ratio[tech.Name] = make(map[string]float64)
		opts := DefaultHare(cores)
		tech.Disable(&opts.Techniques)
		ft := &Table{
			Title:   fmt.Sprintf("Figure %d: Throughput with %s (normalized to without)", tech.Figure, tech.Name),
			Columns: []string{"benchmark", "speedup from technique"},
		}
		var ratios []float64
		for _, w := range ws {
			disabled, err := RunWorkload(HareFactory(opts), w, scale)
			if err != nil {
				return nil, nil, nil, err
			}
			ratio := Speedup(disabled, baseline[w.Name()])
			data.Ratio[tech.Name][w.Name()] = ratio
			ratios = append(ratios, ratio)
			ft.AddRow(w.Name(), f2(ratio))
		}
		figures = append(figures, ft)
		s := stats.Summarize(ratios)
		summary.AddRow(tech.Name, f2(s.Min), f2(s.Avg), f2(s.Median), f2(s.Max))
	}
	return data, figures, summary, nil
}

// AblateTechnique measures a single technique's contribution (one of the
// Figures 10-14) without re-running the other four ablations: it needs only
// one baseline pass plus one pass with the named technique disabled.
func AblateTechnique(scale float64, cores int, ws []workload.Workload, name string) (*Table, map[string]float64, error) {
	if cores == 0 {
		cores = MaxCores
	}
	if ws == nil {
		ws = workload.All()
	}
	var tech *Technique
	for _, t := range Techniques() {
		if t.Name == name {
			tt := t
			tech = &tt
			break
		}
	}
	if tech == nil {
		return nil, nil, fmt.Errorf("bench: unknown technique %q", name)
	}
	opts := DefaultHare(cores)
	tech.Disable(&opts.Techniques)
	table := &Table{
		Title:   fmt.Sprintf("Figure %d: Throughput with %s (normalized to without)", tech.Figure, tech.Name),
		Columns: []string{"benchmark", "speedup from technique"},
	}
	ratios := make(map[string]float64, len(ws))
	for _, w := range ws {
		baseline, err := RunWorkload(HareFactory(DefaultHare(cores)), w, scale)
		if err != nil {
			return nil, nil, err
		}
		disabled, err := RunWorkload(HareFactory(opts), w, scale)
		if err != nil {
			return nil, nil, err
		}
		ratio := Speedup(disabled, baseline)
		ratios[w.Name()] = ratio
		table.AddRow(w.Name(), f2(ratio))
	}
	return table, ratios, nil
}

// Figure15 regenerates the Hare-vs-Linux 40-core comparison (paper Figure
// 15): for each parallel benchmark, the speedup of 40 cores over 1 core on
// Hare (timesharing) and on the shared-memory Linux baseline, plus the
// absolute 40-core runtime.
func Figure15(scale float64, cores int, ws []workload.Workload) (*Table, error) {
	if cores == 0 {
		cores = MaxCores
	}
	if ws == nil {
		ws = workload.ParallelBenchmarks()
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 15: Speedup at %d cores (relative to 1 core on the same system)", cores),
		Columns: []string{"benchmark", "hare speedup", "linux speedup", "hare time (s)", "linux time (s)"},
		Note:    "Linux is the coherent shared-memory ramfs baseline, which cannot run on a non-cache-coherent machine.",
	}
	for _, w := range ws {
		h1, err := RunWorkload(HareFactory(DefaultHare(1)), w, scale)
		if err != nil {
			return nil, err
		}
		hN, err := RunWorkload(HareFactory(DefaultHare(cores)), w, scale)
		if err != nil {
			return nil, err
		}
		l1, err := RunWorkload(RamfsFactory(1), w, scale)
		if err != nil {
			return nil, err
		}
		lN, err := RunWorkload(RamfsFactory(cores), w, scale)
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name(), f1(Speedup(h1, hN)), f1(Speedup(l1, lN)), f2(hN.Seconds), f2(lN.Seconds))
	}
	return t, nil
}
