package bench

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestObsFigureModes smoke-tests the tracing-overhead sweep at a tiny scale:
// every benchmark reports the three modes, the traced modes carry latency
// quantiles and spans, and the untraced mode carries neither.
func TestObsFigureModes(t *testing.T) {
	ws := []workload.Workload{workload.Creates{PerWorker: 4}}
	data, table, err := ObsFigure(0.05, 2, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Points) != 1 {
		t.Fatalf("expected 1 point, got %d", len(data.Points))
	}
	p := data.Points[0]
	if p.Ops == 0 {
		t.Fatal("untraced mode did not record op count")
	}
	want := []string{"off", "1/64", "full"}
	if len(p.Modes) != len(want) {
		t.Fatalf("expected %d modes, got %d", len(want), len(p.Modes))
	}
	for i, m := range p.Modes {
		if m.Mode != want[i] {
			t.Fatalf("mode %d: got %q, want %q", i, m.Mode, want[i])
		}
		if m.Seconds <= 0 {
			t.Fatalf("mode %q: no virtual time recorded", m.Mode)
		}
		if m.Sample == 0 {
			if m.Spans != 0 || len(m.Lat) != 0 {
				t.Fatalf("off mode carried spans=%d lat=%d", m.Spans, len(m.Lat))
			}
			continue
		}
		if m.Spans == 0 {
			t.Fatalf("mode %q retained no spans", m.Mode)
		}
		if len(m.Lat) == 0 {
			t.Fatalf("mode %q has no latency quantiles", m.Mode)
		}
		for op, q := range m.Lat {
			if q.N == 0 {
				t.Fatalf("mode %q op %q: empty quantiles", m.Mode, op)
			}
		}
	}
	rendered := table.Render()
	for _, col := range []string{"benchmark", "overhead", "p99 (cyc)"} {
		if !strings.Contains(rendered, col) {
			t.Fatalf("rendered table missing column %q:\n%s", col, rendered)
		}
	}
}

// TestTracerHooksZeroAlloc pins the zero-overhead-when-off contract at the
// allocation level: the hot-path hooks on a nil (disabled) Tracer must not
// allocate, and neither must steady-state Record on an enabled one (the ring
// and histograms are reused, not grown).
func TestTracerHooksZeroAlloc(t *testing.T) {
	var nilTracer *trace.Tracer
	span := trace.Span{Kind: trace.KindRoot, Name: "open", Start: 10, End: 90}

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if nilTracer.Sample() != 0 {
				b.Fatal("nil tracer reported sampling")
			}
			nilTracer.Record(span)
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("disabled tracer hooks allocate %d per op", a)
	}

	tr := trace.New(trace.Config{Sample: 1, Ring: 64})
	tr.Record(span) // warm the op histogram and ring
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Record(span)
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("steady-state Record allocates %d per op", a)
	}
}
