package bench

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Result is one benchmark measurement on one backend.
type Result struct {
	Benchmark string
	Backend   string
	Ops       int
	Elapsed   sim.Cycles
	Seconds   float64
	// Throughput is operations per (virtual) second.
	Throughput float64
	// OpMix is the share of each operation class issued during the timed
	// region (used for Figure 5).
	OpMix map[workload.OpClass]float64
	// OpTotal is the total number of POSIX calls observed by the counter.
	OpTotal uint64
	// Econ holds the message-economy counters accumulated during the timed
	// region (messages, bytes, client RPCs, batched sub-ops, queueing
	// delay); nil on backends without a message layer.
	Econ *stats.Economy
	// Imbalance is the max/mean ratio of per-server requests served during
	// the timed region (1.0 = perfectly balanced; 0 on backends without
	// per-server load counters).
	Imbalance float64
	// Lat holds per-op-kind latency quantiles (virtual cycles) for the
	// timed region, keyed by the root span name ("open", "read", ...);
	// nil unless the backend was built with tracing on.
	Lat map[string]stats.Quantiles
	// Spans are the traced spans recorded during the timed region (ring
	// contents, oldest first); nil unless tracing was on. The CLI's
	// -trace flag exports them as Chrome trace_event JSON.
	Spans []trace.Span
}

// RunWorkload builds a fresh backend from the factory, runs the workload's
// setup phase, then measures the timed region in virtual time.
func RunWorkload(f Factory, w workload.Workload, scale float64) (Result, error) {
	b, err := f(w.Placement())
	if err != nil {
		return Result{}, err
	}
	defer b.Close()

	counter := workload.NewOpCounter()
	env := &workload.Env{Procs: b.Procs, Cores: b.Cores, Counter: counter, Scale: scale, Faults: b.Faults, Elastic: b.Elastic}
	if err := w.Setup(env); err != nil {
		return Result{}, fmt.Errorf("bench: %s setup on %s: %w", w.Name(), b.Name, err)
	}
	start := b.Now()
	counter.Reset()
	// Restrict the latency histograms and span ring to the timed region.
	b.Tracer.Reset()
	var econBase stats.Economy
	if b.Econ != nil {
		econBase = b.Econ()
	}
	var loadsBase []uint64
	if b.Loads != nil {
		loadsBase = b.Loads()
	}
	ops, err := w.Run(env)
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s run on %s: %w", w.Name(), b.Name, err)
	}
	end := b.Now()
	elapsed := end - start
	if elapsed == 0 {
		elapsed = 1
	}
	secs := b.Seconds(elapsed)
	if ops <= 0 {
		ops = int(counter.Total())
	}
	r := Result{
		Benchmark:  w.Name(),
		Backend:    b.Name,
		Ops:        ops,
		Elapsed:    elapsed,
		Seconds:    secs,
		Throughput: float64(ops) / secs,
		OpMix:      counter.Breakdown(),
		OpTotal:    counter.Total(),
	}
	if b.Econ != nil {
		e := b.Econ().Sub(econBase)
		r.Econ = &e
	}
	if b.Loads != nil {
		// The fleet may have grown mid-run; servers beyond the base
		// snapshot started from zero.
		loads := b.Loads()
		delta := make([]uint64, len(loads))
		for i, l := range loads {
			if i < len(loadsBase) {
				l -= loadsBase[i]
			}
			delta[i] = l
		}
		r.Imbalance = stats.Imbalance(delta)
	}
	if b.Tracer != nil {
		r.Lat = b.Tracer.OpQuantiles()
		r.Spans = b.Tracer.Spans()
	}
	return r, nil
}

// RunSuite runs every provided workload on backends built by the factory and
// returns the results keyed by benchmark name.
func RunSuite(f Factory, ws []workload.Workload, scale float64) (map[string]Result, error) {
	out := make(map[string]Result, len(ws))
	for _, w := range ws {
		r, err := RunWorkload(f, w, scale)
		if err != nil {
			return nil, err
		}
		out[w.Name()] = r
	}
	return out, nil
}

// Speedup is a convenience: the ratio of two throughputs (or equivalently
// inverse runtimes for the same amount of work).
func Speedup(base, other Result) float64 {
	if base.Throughput == 0 {
		return 0
	}
	return other.Throughput / base.Throughput
}
