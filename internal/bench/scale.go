package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/workload"
)

// The harness-scaling sweep (`hare-bench -scalesweep`): the `scale` workload
// — disjoint per-worker subtrees of creates and stats — runs at server counts
// far beyond the paper's machine (64–1024) with namespaces into the millions
// of files. Unlike every other figure, the quantity under test here is the
// simulator itself: real wall-clock time, allocations per simulated
// operation, and peak memory, not virtual-time throughput.

// ScaleRung is one (server count, namespace size) sweep point.
type ScaleRung struct {
	// Servers is the fleet size; the deployment timeshares, so it is also
	// the core count and the worker count.
	Servers int
	// Files is the total number of files created across all workers.
	Files int
}

// DefaultScaleRungs is the committed sweep: the paper-scale 8-server rung as
// the wall-time yardstick, the acceptance rung (64 servers, one million
// files), and wider fleets at namespace sizes that keep the sweep minutes,
// not hours.
var DefaultScaleRungs = []ScaleRung{
	{Servers: 8, Files: 125_000},
	{Servers: 64, Files: 1_000_000},
	{Servers: 256, Files: 512_000},
	{Servers: 1024, Files: 262_144},
}

// ScalePoint is one measured rung.
type ScalePoint struct {
	Servers int  `json:"servers"`
	Workers int  `json:"workers"`
	Files   int  `json:"files"`
	Ops     int  `json:"ops"`
	Par     bool `json:"parallel"`

	// WallSeconds is real time for the timed region (setup excluded);
	// VirtSeconds is the same region in simulated time.
	WallSeconds float64 `json:"wall_seconds"`
	VirtSeconds float64 `json:"virt_seconds"`

	// AllocsPerOp is heap allocations per simulated operation during the
	// timed region (runtime.MemStats.Mallocs delta / Ops).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// HeapBytes is the live heap after the run (post-GC).
	HeapBytes uint64 `json:"heap_bytes"`
	// PeakRSSBytes is the process's high-water resident set (VmHWM); it is
	// monotone across rungs of one process, so only the largest rung's value
	// is a true per-rung peak.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`
}

// KOpsPerWallSec is the simulator's real-time throughput: simulated
// operations per wall-clock second, in thousands.
func (p ScalePoint) KOpsPerWallSec() float64 {
	if p.WallSeconds == 0 {
		return 0
	}
	return float64(p.Ops) / p.WallSeconds / 1000
}

// ScaleData holds the full sweep.
type ScaleData struct {
	Parallel bool         `json:"parallel"`
	Points   []ScalePoint `json:"points"`
}

// ScaleSweepFigure runs the sweep. Each rung builds a fresh timesharing
// deployment with one worker per server, splits the file total evenly among
// the workers, and measures the run phase under wall-clock, allocation, and
// RSS instrumentation.
func ScaleSweepFigure(rungs []ScaleRung, parallel bool) (*ScaleData, *Table, error) {
	if len(rungs) == 0 {
		rungs = DefaultScaleRungs
	}
	data := &ScaleData{Parallel: parallel}
	mode := "serialized"
	if parallel {
		mode = "parallel"
	}
	t := &Table{
		Title: fmt.Sprintf("Harness scaling sweep (%s engine): wall-clock cost of big fleets and namespaces", mode),
		Columns: []string{"servers", "workers", "files", "ops", "wall (s)", "virt (s)",
			"kops/wall-s", "allocs/op", "heap (MiB)", "peak rss (MiB)"},
		Note: "measures the simulator, not Hare: wall = real time for the timed region; allocs/op = heap allocations per simulated op; peak rss is process-lifetime high water.",
	}
	for _, r := range rungs {
		p, err := scalePoint(r, parallel)
		if err != nil {
			return nil, nil, err
		}
		data.Points = append(data.Points, p)
		t.AddRow(fmt.Sprintf("%d", p.Servers), fmt.Sprintf("%d", p.Workers),
			fmt.Sprintf("%d", p.Files), fmt.Sprintf("%d", p.Ops),
			f2(p.WallSeconds), f2(p.VirtSeconds), f2(p.KOpsPerWallSec()),
			f2(p.AllocsPerOp), f2(float64(p.HeapBytes)/(1<<20)),
			f2(float64(p.PeakRSSBytes)/(1<<20)))
	}
	return data, t, nil
}

// scalePoint measures one rung.
func scalePoint(r ScaleRung, parallel bool) (ScalePoint, error) {
	opts := DefaultHare(r.Servers)
	opts.Parallel = parallel
	w := workload.ScaleSweep{}

	b, err := HareFactory(opts)(w.Placement())
	if err != nil {
		return ScalePoint{}, err
	}
	defer b.Close()

	workers := len(b.Cores)
	w.FilesPerWorker = r.Files / workers
	if w.FilesPerWorker < 1 {
		w.FilesPerWorker = 1
	}
	env := &workload.Env{Procs: b.Procs, Cores: b.Cores, Scale: 1.0}
	if err := w.Setup(env); err != nil {
		return ScalePoint{}, fmt.Errorf("bench: scale setup at %d servers: %w", r.Servers, err)
	}

	virtStart := b.Now()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	wallStart := time.Now()

	ops, err := w.Run(env)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("bench: scale run at %d servers: %w", r.Servers, err)
	}

	wall := time.Since(wallStart)
	runtime.ReadMemStats(&after)
	virt := b.Now() - virtStart

	p := ScalePoint{
		Servers:      r.Servers,
		Workers:      workers,
		Files:        w.FilesPerWorker * workers,
		Ops:          ops,
		Par:          parallel,
		WallSeconds:  wall.Seconds(),
		VirtSeconds:  b.Seconds(virt),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(ops),
		HeapBytes:    after.HeapInuse,
		PeakRSSBytes: peakRSSBytes(),
	}
	return p, nil
}

// peakRSSBytes reads the process's resident-set high water from
// /proc/self/status (VmHWM); zero on platforms without it.
func peakRSSBytes() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// ParseScaleRungs parses a sweep spec like "8:125000,64:1000000" (or bare
// server counts "8,64", which take the default rung's file total scaled to
// the fleet) into rungs.
func ParseScaleRungs(spec string) ([]ScaleRung, error) {
	if spec == "" {
		return nil, nil
	}
	var out []ScaleRung
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		srv, files := part, ""
		if i := strings.IndexByte(part, ':'); i >= 0 {
			srv, files = part[:i], part[i+1:]
		}
		r := ScaleRung{}
		n, err := strconv.Atoi(srv)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bench: bad server count %q in -scalesweep spec", srv)
		}
		r.Servers = n
		if files != "" {
			fn, err := strconv.Atoi(files)
			if err != nil || fn <= 0 {
				return nil, fmt.Errorf("bench: bad file count %q in -scalesweep spec", files)
			}
			r.Files = fn
		} else {
			// One thousand files per worker keeps unspecified rungs quick.
			r.Files = 1000 * n
		}
		out = append(out, r)
	}
	return out, nil
}

// ScaleBaseline is the JSON snapshot committed as BENCH_scale.json.
type ScaleBaseline struct {
	Note     string       `json:"note"`
	Parallel bool         `json:"parallel"`
	Points   []ScalePoint `json:"points"`
}

// WriteBaseline serializes the sweep to path as indented JSON.
func (d *ScaleData) WriteBaseline(path string) error {
	b := ScaleBaseline{
		Note:     "hare-bench -scalesweep baseline; wall-clock figures are machine-dependent — compare shapes and allocs/op, not absolute seconds. Regenerate with: hare-bench -scalesweep '8:125000,64:1000000,256:512000,1024:262144' -baseline BENCH_scale.json",
		Parallel: d.Parallel,
		Points:   d.Points,
	}
	buf, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
