package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid of strings plus an
// optional note. Every figure/table generator returns one (in addition to
// its raw data), and cmd/hare-bench simply prints them.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Note    string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	b.WriteString(strings.Repeat("=", len(t.Title)))
	b.WriteString("\n")

	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				b.WriteString(pad(cell, widths[i], i != 0))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		b.WriteString("\n")
		b.WriteString(t.Note)
		b.WriteString("\n")
	}
	return b.String()
}

// pad left- or right-aligns a cell to the given width.
func pad(s string, width int, rightAlign bool) string {
	if len(s) >= width {
		return s
	}
	fill := strings.Repeat(" ", width-len(s))
	if rightAlign {
		return fill + s
	}
	return s + fill
}

// f2 formats a float with two decimals; f1 with one.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
