package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

const testScale = 0.05

func TestRunWorkloadOnAllBackends(t *testing.T) {
	w := workload.Creates{PerWorker: 20}
	factories := map[string]Factory{
		"hare":  HareFactory(DefaultHare(4)),
		"ramfs": RamfsFactory(4),
		"unfs":  UnfsFactory(1),
	}
	for name, f := range factories {
		r, err := RunWorkload(f, w, testScale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Throughput <= 0 || r.Seconds <= 0 || r.Ops <= 0 {
			t.Fatalf("%s: degenerate result %+v", name, r)
		}
		if r.OpTotal == 0 {
			t.Fatalf("%s: no ops counted", name)
		}
	}
}

func TestHareScalesOnCreates(t *testing.T) {
	// The headline claim: creates on Hare should get meaningfully faster
	// with more cores and servers (directory distribution spreads the
	// entries across servers).
	w := workload.Creates{PerWorker: 60}
	r1, err := RunWorkload(HareFactory(DefaultHare(1)), w, testScale)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunWorkload(HareFactory(DefaultHare(8)), w, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if sp := Speedup(r1, r8); sp < 2.0 {
		t.Fatalf("creates speedup at 8 cores = %.2f, want >= 2", sp)
	}
}

func TestUnfsSlowerThanHareSequential(t *testing.T) {
	// Figure 8's key relationship: Hare beats the user-space NFS baseline
	// on metadata-heavy microbenchmarks, while Linux ramfs beats Hare.
	w := workload.Renames{PerWorker: 60}
	hare, err := RunWorkload(HareFactory(DefaultHare(1)), w, testScale)
	if err != nil {
		t.Fatal(err)
	}
	nfs, err := RunWorkload(UnfsFactory(1), w, testScale)
	if err != nil {
		t.Fatal(err)
	}
	ram, err := RunWorkload(RamfsFactory(1), w, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if nfs.Throughput >= hare.Throughput {
		t.Fatalf("unfs (%.0f ops/s) should be slower than hare (%.0f ops/s)", nfs.Throughput, hare.Throughput)
	}
	if ram.Throughput <= hare.Throughput {
		t.Fatalf("ramfs (%.0f ops/s) should be faster than hare (%.0f ops/s)", ram.Throughput, hare.Throughput)
	}
}

func TestDirectoryDistributionHelpsCreates(t *testing.T) {
	w := workload.Creates{PerWorker: 40}
	on, err := RunWorkload(HareFactory(DefaultHare(8)), w, testScale)
	if err != nil {
		t.Fatal(err)
	}
	noDist := DefaultHare(8)
	noDist.Techniques.DirectoryDistribution = false
	off, err := RunWorkload(HareFactory(noDist), w, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if Speedup(off, on) < 1.2 {
		t.Fatalf("directory distribution speedup on creates = %.2f, want > 1.2", Speedup(off, on))
	}
}

func TestFigure5SmallSuite(t *testing.T) {
	tbl, err := Figure5(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(workload.All()) {
		t.Fatalf("figure 5 has %d rows", len(tbl.Rows))
	}
	out := tbl.Render()
	if !strings.Contains(out, "creates") || !strings.Contains(out, "build linux") {
		t.Fatal("rendered table missing benchmarks")
	}
}

func TestFigure6SmallSuite(t *testing.T) {
	ws := []workload.Workload{workload.Creates{PerWorker: 30}, &workload.PFind{Sparse: true}}
	data, tbl, err := Figure6(testScale, []int{1, 4}, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("figure 6 rows = %d", len(tbl.Rows))
	}
	sp := data.Speedup["creates"]
	if len(sp) != 2 || sp[0] < 0.99 || sp[0] > 1.01 {
		t.Fatalf("1-core speedup should be 1.0, got %v", sp)
	}
}

func TestFigure7And8Small(t *testing.T) {
	ws := []workload.Workload{workload.Renames{PerWorker: 30}}
	if _, err := Figure7(testScale, 8, []int{2, 4}, ws); err != nil {
		t.Fatal(err)
	}
	tbl, err := Figure8(testScale, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatal("figure 8 should have one row per benchmark")
	}
}

func TestAblateTechniquesSmall(t *testing.T) {
	ws := []workload.Workload{workload.Creates{PerWorker: 30}}
	data, figs, summary, err := AblateTechniques(testScale, 8, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 5 {
		t.Fatalf("expected 5 technique figures, got %d", len(figs))
	}
	if len(summary.Rows) != 5 {
		t.Fatalf("summary should have 5 rows, got %d", len(summary.Rows))
	}
	if len(data.Ratio) != 5 {
		t.Fatal("missing technique ratios")
	}
}

func TestFigure15Small(t *testing.T) {
	ws := []workload.Workload{workload.Mailbench{PerWorker: 20}}
	tbl, err := Figure15(testScale, 4, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatal("figure 15 should have one row")
	}
}

func TestFigure4SLOC(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Figure4(root, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Fatalf("SLOC table has %d rows", len(tbl.Rows))
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "Total" {
		t.Fatal("last row should be the total")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "bbbb"}, Note: "note"}
	tbl.AddRow("x", "1")
	tbl.AddRow("longer", "2")
	out := tbl.Render()
	for _, want := range []string{"T", "a", "bbbb", "longer", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestHareFactoryConfigError(t *testing.T) {
	bad := HareFactory(HareOptions{Cores: 2, Servers: 2, Timeshare: false, Techniques: core.AllTechniques()})
	if _, err := bad(sched.PolicyRoundRobin); err == nil {
		t.Fatal("invalid split configuration should fail")
	}
}

func TestCommas(t *testing.T) {
	cases := map[int]string{0: "0", 5: "5", 999: "999", 1000: "1,000", 1234567: "1,234,567"}
	for in, want := range cases {
		if got := commas(in); got != want {
			t.Errorf("commas(%d) = %q, want %q", in, got, want)
		}
	}
}
