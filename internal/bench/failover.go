package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The failover sweep (DESIGN.md §12): write-heavy workloads run under
// replication off / sync / async, measuring what WAL shipping costs in
// throughput and extra messages — and what it buys when a server dies. For
// each replicated mode, two identical deployments run the identical
// workload; one recovers a crashed server by replaying its log (the
// pre-replication path), the other promotes the server's warm replica. The
// promotion's stall must beat the replay: that gap is the entire point of
// keeping followers.

// FailoverPoint is one replication mode's measurement.
type FailoverPoint struct {
	Mode string
	Ops  int
	// Seconds is the virtual time of the timed workload region; VsOff is
	// this mode's throughput relative to replication off.
	Seconds    float64
	Throughput float64
	VsOff      float64
	// ReplMsgs/ReplBytes are the replication plane's message economy during
	// the run; MaxLag is the widest acked-horizon gap any follower showed
	// after the run (0 under sync).
	ReplMsgs  uint64
	ReplBytes uint64
	MaxLag    uint64
	// ReplayMs is the virtual time a crashed server took to recover by WAL
	// replay (the control); ReplayRecords is its replay tail. PromoteMs is
	// the promotion stall on the identical twin deployment (0 for mode off,
	// which has no replica to promote), and LostRecords the acked records
	// the promotion lost (0 under sync, bounded by the window under async).
	ReplayMs      float64
	ReplayRecords int
	PromoteMs     float64
	LostRecords   uint64
}

// Speedup is the failover win: replay stall over promotion stall.
func (p FailoverPoint) Speedup() float64 {
	if p.PromoteMs == 0 {
		return 0
	}
	return p.ReplayMs / p.PromoteMs
}

// FailoverData holds the full sweep.
type FailoverData struct {
	Cores  int
	Scale  float64
	Points []FailoverPoint
}

// replHare builds a started Hare deployment with durability on and the given
// replication mode.
func replHare(cores int, mode repl.Mode, scale float64) (*core.System, *workload.Env, error) {
	cfg := core.Config{
		Cores:      cores,
		Servers:    cores,
		Timeshare:  true,
		Techniques: core.AllTechniques(),
		Placement:  sched.PolicyRoundRobin,
		Durability: core.Durability{Enabled: true},
	}
	if mode != repl.Off {
		cfg.Replication = repl.Config{Mode: mode}
	}
	sys, err := core.New(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: building replicated hare: %w", err)
	}
	sys.Start()
	env := &workload.Env{
		Procs:  sys.Procs(),
		Cores:  sys.AppCores(),
		Scale:  scale,
		Faults: sysFaults{sys},
	}
	return sys, env, nil
}

// FailoverFigure runs the sweep at the given scale on a machine with the
// given core count.
func FailoverFigure(scale float64, cores int) (*FailoverData, *Table, error) {
	if cores == 0 {
		cores = 8
	}
	data := &FailoverData{Cores: cores, Scale: scale}
	t := &Table{
		Title: fmt.Sprintf("Failover sweep: WAL-shipped replicas on %d cores", cores),
		Columns: []string{"mode", "ops/s", "vs off", "repl msgs", "repl KB", "lag",
			"replay (ms)", "promote (ms)", "speedup", "lost"},
		Note: "Write-heavy workloads (creates + writes), no checkpoints, so the crashed server's whole history sits in its log. replay = recovery by log replay; promote = sealing and installing the follower's replica on an identical twin deployment. lost = acked records the promotion dropped (must be 0 under sync; async may lose up to one window).",
	}
	var offThr float64
	for _, mode := range []repl.Mode{repl.Off, repl.Sync, repl.Async} {
		p, err := failoverPoint(scale, cores, mode)
		if err != nil {
			return nil, nil, err
		}
		if mode == repl.Off {
			offThr = p.Throughput
		}
		if offThr > 0 {
			p.VsOff = p.Throughput / offThr
		}
		data.Points = append(data.Points, p)
		promote, speedup := "-", "-"
		if mode != repl.Off {
			promote = fmt.Sprintf("%.3f", p.PromoteMs)
			speedup = f2(p.Speedup()) + "x"
		}
		t.AddRow(p.Mode, f1(p.Throughput), f2(p.VsOff),
			fmt.Sprintf("%d", p.ReplMsgs), f1(float64(p.ReplBytes)/1024), fmt.Sprintf("%d", p.MaxLag),
			fmt.Sprintf("%.3f", p.ReplayMs), promote, speedup, fmt.Sprintf("%d", p.LostRecords))
	}
	return data, t, nil
}

// failoverPoint measures one replication mode: the workload run and replay
// control on one deployment, the promotion stall on an identical twin.
func failoverPoint(scale float64, cores int, mode repl.Mode) (FailoverPoint, error) {
	ws := []workload.Workload{workload.Creates{}, workload.Writes{}}
	run := func() (*core.System, int, sim.Cycles, error) {
		sys, env, err := replHare(cores, mode, scale)
		if err != nil {
			return nil, 0, 0, err
		}
		var ops int
		var elapsed sim.Cycles
		for _, w := range ws {
			o, e, err := runOn(sys, env, w)
			if err != nil {
				sys.Stop()
				return nil, 0, 0, err
			}
			ops += o
			elapsed += e
		}
		return sys, ops, elapsed, nil
	}

	sys, ops, elapsed, err := run()
	if err != nil {
		return FailoverPoint{}, err
	}
	secs := sys.Seconds(elapsed)
	p := FailoverPoint{Mode: mode.String(), Ops: ops, Seconds: secs}
	if secs > 0 {
		p.Throughput = float64(ops) / secs
	}
	econ := sys.MessageEconomy()
	p.ReplMsgs = econ.ReplMsgs
	p.ReplBytes = econ.ReplBytes
	for _, rs := range sys.ReplicaStats() {
		if rs.Lag() > p.MaxLag {
			p.MaxLag = rs.Lag()
		}
	}

	// Replay control: crash a server and recover it from its log alone.
	const victim = 0
	if err := sys.Crash(victim); err != nil {
		sys.Stop()
		return p, err
	}
	st, err := sys.Recover(victim)
	sys.Stop()
	if err != nil {
		return p, err
	}
	p.ReplayMs = sys.Seconds(st.Cycles) * 1000
	p.ReplayRecords = st.Records
	if mode == repl.Off {
		return p, nil
	}

	// Promotion on the identical twin: same seed, same workload, same
	// victim — the only difference is how the server comes back.
	twin, _, _, err := run()
	if err != nil {
		return p, err
	}
	defer twin.Stop()
	if err := twin.Crash(victim); err != nil {
		return p, err
	}
	rep, err := twin.Failover(victim)
	if err != nil {
		return p, err
	}
	if rep.Fallback {
		return p, fmt.Errorf("bench: failover of server %d fell back to replay; the replica never caught up", victim)
	}
	p.PromoteMs = twin.Seconds(rep.StallCycles) * 1000
	p.LostRecords = rep.LostRecords
	return p, nil
}

// WriteBaseline serializes the sweep to path as indented JSON (committed as
// BENCH_failover.json so the failover stall has a trajectory to compare
// against).
func (d *FailoverData) WriteBaseline(path string) error {
	b := struct {
		Note   string          `json:"note"`
		Scale  float64         `json:"scale"`
		Cores  int             `json:"cores"`
		Points []FailoverPoint `json:"points"`
	}{
		Note:   "hare-bench -failover baseline; regenerate with: hare-bench -failover -scale <scale> -cores <cores> -baseline <path>",
		Scale:  d.Scale,
		Cores:  d.Cores,
		Points: d.Points,
	}
	buf, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
