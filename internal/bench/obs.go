package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The observability sweep (DESIGN.md §11): the reference workloads run with
// tracing off, sampled 1-in-64, and on every operation, and the table
// reports the virtual-time overhead of each mode alongside the tail-latency
// percentiles the traced modes unlock. The sampled mode is the always-on
// production setting, so its overhead column is the one that matters.

// ObsSampleInterval is the sampled mode's 1-in-N interval.
const ObsSampleInterval = 64

// ObsMode is one benchmark measured in one tracing mode.
type ObsMode struct {
	Mode    string // "off", "1/64", "full"
	Sample  int
	Seconds float64
	// Overhead is the virtual-time cost relative to the untraced run
	// (0.01 = 1% slower); 0 for the off mode itself.
	Overhead float64
	// Spans retained in the ring at the end of the timed region, plus how
	// many older ones the ring dropped.
	Spans   int
	Dropped uint64
	// Lat holds per-op latency quantiles in virtual cycles.
	Lat map[string]stats.Quantiles `json:",omitempty"`
}

// ObsPoint is one benchmark across the three tracing modes.
type ObsPoint struct {
	Benchmark string
	Ops       int
	Modes     []ObsMode
}

// SampledOverhead returns the 1-in-64 mode's overhead fraction.
func (p ObsPoint) SampledOverhead() float64 {
	for _, m := range p.Modes {
		if m.Mode == "1/64" {
			return m.Overhead
		}
	}
	return 0
}

// ObsData holds the full sweep.
type ObsData struct {
	Cores  int
	Scale  float64
	Points []ObsPoint
}

// ObsFigure runs the tracing-overhead sweep. The default workload set is the
// paper's two reference microbenchmarks, smallfile and bigfile.
func ObsFigure(scale float64, cores int, ws []workload.Workload) (*ObsData, *Table, error) {
	if cores == 0 {
		cores = 8
	}
	if ws == nil {
		ws = []workload.Workload{workload.SmallFile{}, workload.BigFile{}}
	}
	data := &ObsData{Cores: cores, Scale: scale}
	t := &Table{
		Title: fmt.Sprintf("Tracing overhead: off vs 1-in-%d sampled vs full (%d cores)", ObsSampleInterval, cores),
		Columns: []string{"benchmark", "mode", "time (ms)", "overhead", "spans", "hot op",
			"p50 (cyc)", "p99 (cyc)"},
		Note: "overhead = virtual-time cost vs the untraced run; spans = ring occupancy (+dropped); percentiles are root-span latencies of the most frequent op.",
	}
	for _, w := range ws {
		p, err := obsPoint(scale, cores, w)
		if err != nil {
			return nil, nil, err
		}
		data.Points = append(data.Points, p)
		for _, m := range p.Modes {
			op, q := hottestOp(m.Lat)
			spans := "-"
			lat50, lat99 := "-", "-"
			if m.Sample > 0 {
				spans = fmt.Sprintf("%d", m.Spans)
				if m.Dropped > 0 {
					spans += fmt.Sprintf("(+%d)", m.Dropped)
				}
			}
			if op != "" {
				lat50 = fmt.Sprintf("%d", q.P50)
				lat99 = fmt.Sprintf("%d", q.P99)
			} else {
				op = "-"
			}
			t.AddRow(p.Benchmark, m.Mode, f2(m.Seconds*1000), pct(m.Overhead), spans, op, lat50, lat99)
		}
	}
	return data, t, nil
}

// obsPoint measures one benchmark in the three tracing modes.
func obsPoint(scale float64, cores int, w workload.Workload) (ObsPoint, error) {
	modes := []struct {
		label  string
		sample int
	}{
		{"off", 0},
		{"1/64", ObsSampleInterval},
		{"full", 1},
	}
	p := ObsPoint{Benchmark: w.Name()}
	var offSeconds float64
	for _, mode := range modes {
		opts := DefaultHare(cores)
		opts.Trace = trace.Config{Sample: mode.sample}
		r, err := RunWorkload(HareFactory(opts), w, scale)
		if err != nil {
			return ObsPoint{}, err
		}
		m := ObsMode{Mode: mode.label, Sample: mode.sample, Seconds: r.Seconds, Lat: r.Lat, Spans: len(r.Spans)}
		if mode.sample == 0 {
			offSeconds = r.Seconds
			p.Ops = r.Ops
		} else if offSeconds > 0 {
			m.Overhead = r.Seconds/offSeconds - 1
		}
		p.Modes = append(p.Modes, m)
	}
	return p, nil
}

// hottestOp picks the op with the most recorded samples.
func hottestOp(lat map[string]stats.Quantiles) (string, stats.Quantiles) {
	var best string
	var bestQ stats.Quantiles
	for op, q := range lat {
		if q.N > bestQ.N || (q.N == bestQ.N && (best == "" || op < best)) {
			best, bestQ = op, q
		}
	}
	return best, bestQ
}

// WriteBaseline serializes the sweep to path as indented JSON (committed as
// BENCH_obs.json so tracing-overhead regressions are visible in review).
func (d *ObsData) WriteBaseline(path string) error {
	b := struct {
		Note   string     `json:"note"`
		Scale  float64    `json:"scale"`
		Cores  int        `json:"cores"`
		Points []ObsPoint `json:"points"`
	}{
		Note:   "hare-bench -obs baseline; regenerate with: hare-bench -obs -scale <scale> -cores <cores> -baseline <path>",
		Scale:  d.Scale,
		Cores:  d.Cores,
		Points: d.Points,
	}
	buf, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
