package bench

import (
	"testing"

	"repro/internal/place"
)

// TestElasticFigureSmoke runs one tiny elastic sweep point per policy and
// pins the acceptance properties: the namespace-backed workload completes,
// migration moves a non-zero but bounded entry set, and the post-scale-out
// phase stays within 50% of the equally-sized static fleet even at smoke
// scale (the committed BENCH_elastic.json holds the real ~15% numbers).
//
// Virtual-time audit: the PostRatio bound compares two runs of the same
// deployment shape, so schedule-dependent queueing noise largely cancels;
// the 1.5x margin is an order of magnitude above the observed run-to-run
// variance. MigEntries and Imbalance are schedule-independent counters.
func TestElasticFigureSmoke(t *testing.T) {
	data, table, err := ElasticFigure(0.1, 4, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if table.Render() == "" {
		t.Fatal("empty table")
	}
	if len(data.Points) != 2 {
		t.Fatalf("got %d points, want 2 (ring + modulo)", len(data.Points))
	}
	var ring, modulo ElasticPoint
	for _, p := range data.Points {
		switch p.Policy {
		case place.PolicyRing.String():
			ring = p
		case place.PolicyModulo.String():
			modulo = p
		}
	}
	for _, p := range []ElasticPoint{ring, modulo} {
		if p.MigEntries == 0 {
			t.Fatalf("%s: migration moved nothing; the scale-out was a no-op", p.Policy)
		}
		if p.PostSeconds <= 0 || p.StaticSeconds <= 0 {
			t.Fatalf("%s: missing phase timings: post=%v static=%v", p.Policy, p.PostSeconds, p.StaticSeconds)
		}
		if r := p.PostRatio(); r > 1.5 {
			t.Fatalf("%s: post-scale-out phase %.2fx the static fleet; elasticity is pathologically slow", p.Policy, r)
		}
		if p.Imbalance < 1.0 {
			t.Fatalf("%s: imbalance %.2f below 1.0 (max/mean cannot be)", p.Policy, p.Imbalance)
		}
	}
	// The bounded-movement contrast that motivates the ring policy.
	if ring.MigEntries >= modulo.MigEntries {
		t.Fatalf("ring moved %d entries, modulo %d; the ring should move strictly less",
			ring.MigEntries, modulo.MigEntries)
	}
}
