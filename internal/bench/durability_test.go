package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestDurabilityOverheadTable(t *testing.T) {
	tbl, err := DurabilityOverhead(testScale, 4, []sim.Cycles{0, 240_000})
	if err != nil {
		t.Fatal(err)
	}
	// Three workloads x (off + two intervals).
	if len(tbl.Rows) != 9 {
		t.Fatalf("got %d rows, want 9:\n%s", len(tbl.Rows), tbl.Render())
	}
	out := tbl.Render()
	if !strings.Contains(out, "wal off") || !strings.Contains(out, "wal sync") {
		t.Fatalf("sweep rows missing:\n%s", out)
	}
}

func TestRecoveryTimeTable(t *testing.T) {
	tbl, err := RecoveryTime(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("got %d rows, want 2:\n%s", len(tbl.Rows), tbl.Render())
	}
	out := tbl.Render()
	if !strings.Contains(out, "log replay only") || !strings.Contains(out, "checkpoint + tail") {
		t.Fatalf("modes missing:\n%s", out)
	}
}

func TestCrashWorkloadCheckTable(t *testing.T) {
	tbl, err := CrashWorkloadCheck(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || tbl.Rows[0][len(tbl.Rows[0])-1] != "ok" {
		t.Fatalf("crash workload did not verify:\n%s", tbl.Render())
	}
}

func TestHareFactoryExposesFaultsWithDurability(t *testing.T) {
	opts := DefaultHare(2)
	opts.Durability = core.Durability{Enabled: true}
	b, err := HareFactory(opts)(workload.CrashRecovery{}.Placement())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Faults == nil {
		t.Fatal("durable backend exposes no fault injector")
	}
	if !strings.Contains(b.Name, "+wal") {
		t.Fatalf("durable backend name %q not marked", b.Name)
	}
	r, err := RunWorkload(HareFactory(opts), workload.CrashRecovery{FilesPerRound: 3}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops <= 0 {
		t.Fatalf("degenerate crash workload result: %+v", r)
	}

	plain, err := HareFactory(DefaultHare(2))(workload.Creates{}.Placement())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Faults != nil {
		t.Fatal("non-durable backend should not expose fault injection")
	}
}
