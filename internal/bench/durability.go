package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Durability figures (not in the paper — the paper scopes durability out;
// DESIGN.md §6 describes the subsystem these measure).
//
// DurabilityOverhead sweeps the group-commit interval and reports, per
// write-heavy workload, the virtual-time throughput relative to running
// with durability off, together with the flush amortization the batching
// achieved (records per flush).
//
// RecoveryTime crashes every server of a populated deployment and reports
// how long recovery takes in virtual time, with and without a checkpoint.

// DefaultGroupCommitSweep is the interval sweep used by the overhead
// figure, in cycles (0 = synchronous; 2.4 GHz makes 24000 cycles = 10 µs).
var DefaultGroupCommitSweep = []sim.Cycles{0, 24_000, 240_000, 2_400_000}

// durableHare builds a started Hare deployment with the given durability
// settings, returning the system and an Env for running workloads on it.
func durableHare(cores int, d core.Durability, placement sched.Policy, scale float64) (*core.System, *workload.Env, error) {
	cfg := core.Config{
		Cores:      cores,
		Servers:    cores,
		Timeshare:  true,
		Techniques: core.AllTechniques(),
		Placement:  placement,
		Durability: d,
	}
	sys, err := core.New(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: building durable hare: %w", err)
	}
	sys.Start()
	env := &workload.Env{
		Procs:  sys.Procs(),
		Cores:  sys.AppCores(),
		Scale:  scale,
		Faults: sysFaults{sys},
	}
	return sys, env, nil
}

// runOn runs one workload (setup + timed region) on an existing system and
// returns ops and elapsed virtual time.
func runOn(sys *core.System, env *workload.Env, w workload.Workload) (int, sim.Cycles, error) {
	if err := w.Setup(env); err != nil {
		return 0, 0, fmt.Errorf("bench: %s setup: %w", w.Name(), err)
	}
	start := sys.Procs().MaxEndTime()
	ops, err := w.Run(env)
	if err != nil {
		return 0, 0, fmt.Errorf("bench: %s run: %w", w.Name(), err)
	}
	elapsed := sys.Procs().MaxEndTime() - start
	if elapsed == 0 {
		elapsed = 1
	}
	return ops, elapsed, nil
}

// DurabilityOverhead measures the cost of write-ahead logging on
// write-heavy workloads across a group-commit interval sweep. Throughput
// is normalized to the same workload with durability off.
func DurabilityOverhead(scale float64, cores int, intervals []sim.Cycles) (*Table, error) {
	if len(intervals) == 0 {
		intervals = DefaultGroupCommitSweep
	}
	ws := []workload.Workload{workload.Creates{}, workload.Writes{}, workload.Directories{}}

	t := &Table{
		Title: fmt.Sprintf("Durability overhead: group-commit sweep on %d cores", cores),
		Columns: []string{"configuration", "benchmark", "ops/s", "vs no-wal",
			"records", "flushes", "recs/flush"},
		Note: "Throughput is virtual-time ops/s; vs no-wal is relative to durability disabled. recs/flush shows the amortization the group-commit interval buys (synchronous commit flushes every mutation).",
	}

	for _, w := range ws {
		base := 0.0
		// First durability off, then the interval sweep.
		for pass := 0; pass <= len(intervals); pass++ {
			var d core.Durability
			name := "wal off"
			if pass > 0 {
				iv := intervals[pass-1]
				d = core.Durability{Enabled: true, GroupCommitInterval: iv}
				if iv == 0 {
					name = "wal sync"
				} else {
					name = fmt.Sprintf("wal %dus", iv/2400) // 2.4 GHz default clock
				}
			}
			sys, env, err := durableHare(cores, d, w.Placement(), scale)
			if err != nil {
				return nil, err
			}
			ops, elapsed, err := runOn(sys, env, w)
			if err != nil {
				sys.Stop()
				return nil, err
			}
			var lst wal.Stats
			for _, s := range sys.WalStats() {
				lst.Records += s.Records
				lst.Flushes += s.Flushes
				lst.Bytes += s.Bytes
			}
			sys.Stop()

			secs := sys.Seconds(elapsed)
			thr := float64(ops) / secs
			if pass == 0 {
				base = thr
			}
			rel := "1.00"
			if pass > 0 && base > 0 {
				rel = f2(thr / base)
			}
			recsPerFlush := "-"
			if lst.Flushes > 0 {
				recsPerFlush = f1(float64(lst.Records) / float64(lst.Flushes))
			}
			t.AddRow(name, w.Name(), f1(thr), rel,
				fmt.Sprintf("%d", lst.Records), fmt.Sprintf("%d", lst.Flushes), recsPerFlush)
		}
	}
	return t, nil
}

// RecoveryTime populates a durable deployment, crashes every server, and
// reports per-server recovery work and virtual recovery time — once
// recovering from the log alone and once from a checkpoint plus log tail.
func RecoveryTime(scale float64, cores int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Recovery time: crash all %d servers after a populate run", cores),
		Columns: []string{"mode", "records replayed", "log bytes", "ckpt bytes", "max recovery", "avg recovery"},
		Note:    "Recovery time is virtual (cycles converted to ms). A checkpoint trades snapshot bytes for a shorter replay tail.",
	}

	for _, withCkpt := range []bool{false, true} {
		sys, env, err := durableHare(cores, core.Durability{Enabled: true}, sched.PolicyRoundRobin, scale)
		if err != nil {
			return nil, err
		}
		// Both modes perform identical work: a metadata- and data-heavy
		// populate phase, then a directory churn phase. The checkpointed
		// mode folds the first phase into a snapshot, so its recovery
		// replays only the second phase's records.
		for _, w := range []workload.Workload{workload.Creates{}, workload.Writes{}} {
			if _, _, err := runOn(sys, env, w); err != nil {
				sys.Stop()
				return nil, err
			}
		}
		if withCkpt {
			if err := sys.CheckpointAll(); err != nil {
				sys.Stop()
				return nil, err
			}
		}
		if _, _, err := runOn(sys, env, workload.Directories{}); err != nil {
			sys.Stop()
			return nil, err
		}

		var totRecs, totLogBytes, totCkptBytes int
		var maxCycles, sumCycles sim.Cycles
		for i := 0; i < sys.NumServers(); i++ {
			if err := sys.Crash(i); err != nil {
				sys.Stop()
				return nil, err
			}
			st, err := sys.Recover(i)
			if err != nil {
				sys.Stop()
				return nil, err
			}
			totRecs += st.Records
			totLogBytes += int(st.Bytes)
			totCkptBytes += st.CheckpointBytes
			sumCycles += st.Cycles
			if st.Cycles > maxCycles {
				maxCycles = st.Cycles
			}
		}
		mode := "log replay only"
		if withCkpt {
			mode = "checkpoint + tail"
		}
		n := sys.NumServers()
		t.AddRow(mode,
			fmt.Sprintf("%d", totRecs),
			fmt.Sprintf("%d", totLogBytes),
			fmt.Sprintf("%d", totCkptBytes),
			fmt.Sprintf("%.3f ms", sys.Seconds(maxCycles)*1000),
			fmt.Sprintf("%.3f ms", sys.Seconds(sumCycles)*1000/float64(n)))
		sys.Stop()
	}
	return t, nil
}

// CrashWorkloadCheck runs the crash-injection workload on a durable Hare
// deployment and returns its table (a self-verifying pass/fail figure: the
// workload errors if any recovered state diverges from the crash-free
// shadow model).
func CrashWorkloadCheck(scale float64, cores int) (*Table, error) {
	sys, env, err := durableHare(cores, core.Durability{Enabled: true}, sched.PolicyRoundRobin, scale)
	if err != nil {
		return nil, err
	}
	defer sys.Stop()
	w := workload.CrashRecovery{}
	ops, elapsed, err := runOn(sys, env, w)
	if err != nil {
		return nil, err
	}
	var recs uint64
	for _, s := range sys.WalStats() {
		recs += s.Records
	}
	t := &Table{
		Title:   "Crash-injection workload: every server killed and recovered mid-run",
		Columns: []string{"benchmark", "ops", "wal records", "virtual time", "verdict"},
		Note:    "The workload verifies after every recovery that the namespace and file contents are byte-identical to a crash-free run (and that recovering twice is a no-op).",
	}
	t.AddRow(w.Name(), fmt.Sprintf("%d", ops), fmt.Sprintf("%d", recs),
		fmt.Sprintf("%.3f ms", sys.Seconds(elapsed)*1000), "ok")
	return t, nil
}
