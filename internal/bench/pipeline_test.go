package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestPipelineFigureMeetsAcceptance(t *testing.T) {
	// The acceptance criterion for the async RPC pipeline: on the
	// small-file create/unlink workload at >= 4 servers, pipelining must
	// cut client request messages by at least 20% and strictly lower the
	// virtual runtime.
	//
	// Virtual-time audit: these are relative assertions with wide margins.
	// Virtual time is not bit-stable across schedules — queueing delay
	// depends on which goroutine reaches a server's inbox first — but the
	// windowed capacity model (sim.CoreTime) keeps it within a few percent
	// run to run, far inside the 20% margin here, so the test is
	// shuffle- and load-stable.
	ws := []workload.Workload{workload.SmallFile{PerWorker: 25}}
	data, tbl, err := PipelineFigure(testScale, 8, []int{4, 8}, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Points) != 2 {
		t.Fatalf("sweep produced %d points", len(data.Points))
	}
	for _, p := range data.Points {
		if p.MsgReduction() < 0.20 {
			t.Errorf("%s@%d servers: message reduction %.0f%%, want >= 20%%",
				p.Benchmark, p.Servers, p.MsgReduction()*100)
		}
		if p.OnSeconds >= p.OffSeconds {
			t.Errorf("%s@%d servers: pipelining on (%.4fs) not faster than off (%.4fs)",
				p.Benchmark, p.Servers, p.OnSeconds, p.OffSeconds)
		}
		if p.BatchedOps == 0 {
			t.Errorf("%s@%d servers: no sub-ops traveled in batches", p.Benchmark, p.Servers)
		}
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("table has %d rows", len(tbl.Rows))
	}
}

func TestPipelineBaselineRoundTrip(t *testing.T) {
	data := &PipelineData{
		Cores: 8,
		Scale: 0.1,
		Points: []PipelinePoint{{
			Benchmark: "smallfile", Servers: 4, Ops: 100,
			OnSeconds: 0.5, OffSeconds: 0.7, OnMsgs: 75, OffMsgs: 100,
		}},
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := data.WriteBaseline(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Baseline
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cores != 8 || len(back.Points) != 1 || back.Points[0].OffMsgs != 100 {
		t.Fatalf("baseline round trip mismatch: %+v", back)
	}
	if got := back.Points[0].MsgReduction(); got != 0.25 {
		t.Fatalf("MsgReduction = %f, want 0.25", got)
	}
	if got := back.Points[0].Speedup(); got < 1.39 || got > 1.41 {
		t.Fatalf("Speedup = %f, want 1.4", got)
	}
}

func TestResultCarriesMessageEconomy(t *testing.T) {
	r, err := RunWorkload(HareFactory(DefaultHare(2)), workload.Creates{PerWorker: 10}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if r.Econ == nil {
		t.Fatal("hare backend result has no economy counters")
	}
	if r.Econ.Msgs == 0 || r.Econ.Bytes == 0 || r.Econ.ClientRPCs == 0 {
		t.Fatalf("degenerate economy counters: %+v", *r.Econ)
	}
	if r.Econ.ClientRPCs >= r.Econ.Msgs {
		t.Fatal("request messages should be a strict subset of all messages")
	}
	base, err := RunWorkload(RamfsFactory(2), workload.Creates{PerWorker: 10}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if base.Econ != nil {
		t.Fatal("ramfs baseline has no message layer; Econ must be nil")
	}
}
