package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/place"
	"repro/internal/workload"
)

// The elastic sweep (DESIGN.md §9): the scale-out-under-load workload runs
// on a deployment that grows by one file server between its two traffic
// phases, under both placement policies, next to an equally-sized static
// deployment running the identical operation stream. The table quantifies
// what elasticity costs (post-scale-out phase vs the static fleet that had
// the extra server all along), what it moves (migrated entries — the ring's
// bounded-movement promise vs modulo reshuffling the world), and what it
// buys (per-server load imbalance).

// DefaultElasticStartServers is the pre-growth fleet size swept by
// ElasticFigure (each grows by one mid-run).
var DefaultElasticStartServers = []int{2, 4}

// ElasticPoint is one (policy, fleet size) measurement.
type ElasticPoint struct {
	Policy  string
	Servers int // fleet size before the mid-run growth
	Ops     int

	// Virtual seconds of the traffic phases on the elastic deployment
	// (phase B runs concurrently with the shard migration) and of phase B
	// on the static deployment that had Servers+1 from boot.
	PreSeconds      float64
	PostSeconds     float64
	StaticSeconds   float64
	MigEntries      uint64  // directory entries the migration moved
	Imbalance       float64 // max/mean requests per server, elastic run
	StaticImbalance float64
}

// PostRatio compares the post-scale-out phase with the equally-sized static
// fleet (1.0 = elastic reached static speed; >1 means the migration and
// epoch refreshes cost that factor).
func (p ElasticPoint) PostRatio() float64 {
	if p.StaticSeconds == 0 {
		return 0
	}
	return p.PostSeconds / p.StaticSeconds
}

// ElasticData holds the full sweep.
type ElasticData struct {
	Cores  int
	Scale  float64
	Points []ElasticPoint
}

// ElasticFigure runs the sweep at the given scale on a machine with the
// given core count.
func ElasticFigure(scale float64, cores int, startServers []int) (*ElasticData, *Table, error) {
	if cores == 0 {
		cores = 8
	}
	if len(startServers) == 0 {
		startServers = DefaultElasticStartServers
	}
	data := &ElasticData{Cores: cores, Scale: scale}
	t := &Table{
		Title: fmt.Sprintf("Elastic sweep: scale-out under load, N -> N+1 servers mid-run (%d cores)", cores),
		Columns: []string{"policy", "servers", "phase A (ms)", "phase B (ms)", "static B (ms)",
			"B/static", "moved", "imbalance", "static imb"},
		Note: "phase B runs while the new server joins and shards migrate; static B is the same phase on a fleet that had N+1 servers from boot. moved = directory entries handed off (ring moves ~1/N, modulo reshuffles the bulk); imbalance = max/mean requests per server.",
	}
	for _, policy := range []place.Policy{place.PolicyRing, place.PolicyModulo} {
		for _, n := range startServers {
			if n+1 > cores {
				continue
			}
			p, err := elasticPoint(scale, cores, n, policy)
			if err != nil {
				return nil, nil, err
			}
			data.Points = append(data.Points, p)
			t.AddRow(p.Policy, fmt.Sprintf("%d->%d", p.Servers, p.Servers+1),
				f2(p.PreSeconds*1000), f2(p.PostSeconds*1000), f2(p.StaticSeconds*1000),
				f2(p.PostRatio()), fmt.Sprintf("%d", p.MigEntries),
				f2(p.Imbalance), f2(p.StaticImbalance))
		}
	}
	return data, t, nil
}

// elasticPoint measures one policy at one fleet size: the elastic run
// (grow mid-workload) and the equally-sized static control.
func elasticPoint(scale float64, cores, servers int, policy place.Policy) (ElasticPoint, error) {
	elOpts := DefaultHare(cores)
	elOpts.Servers = servers
	elOpts.MaxServers = servers + 1
	elOpts.PlacePolicy = policy

	elWork := &workload.Elastic{}
	el, err := RunWorkload(HareFactory(elOpts), elWork, scale)
	if err != nil {
		return ElasticPoint{}, err
	}

	stOpts := DefaultHare(cores)
	stOpts.Servers = servers + 1
	stOpts.PlacePolicy = policy

	stWork := &workload.Elastic{}
	st, err := RunWorkload(HareFactory(stOpts), stWork, scale)
	if err != nil {
		return ElasticPoint{}, err
	}

	secsPerCycle := func(r Result) float64 {
		if r.Elapsed == 0 {
			return 0
		}
		return r.Seconds / float64(r.Elapsed)
	}
	p := ElasticPoint{
		Policy:          policy.String(),
		Servers:         servers,
		Ops:             el.Ops,
		PreSeconds:      float64(elWork.PreCycles) * secsPerCycle(el),
		PostSeconds:     float64(elWork.PostCycles) * secsPerCycle(el),
		StaticSeconds:   float64(stWork.PostCycles) * secsPerCycle(st),
		Imbalance:       el.Imbalance,
		StaticImbalance: st.Imbalance,
	}
	if el.Econ != nil {
		p.MigEntries = el.Econ.MigEntries
	}
	return p, nil
}

// WriteBaseline serializes the sweep to path as indented JSON (committed as
// BENCH_elastic.json so future changes have an elasticity trajectory to
// compare against).
func (d *ElasticData) WriteBaseline(path string) error {
	b := struct {
		Note   string         `json:"note"`
		Scale  float64        `json:"scale"`
		Cores  int            `json:"cores"`
		Points []ElasticPoint `json:"points"`
	}{
		Note:   "hare-bench -elastic baseline; regenerate with: hare-bench -elastic -scale <scale> -cores <cores> -baseline <path>",
		Scale:  d.Scale,
		Cores:  d.Cores,
		Points: d.Points,
	}
	buf, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
