package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/proto"
)

// ErrTruncated is returned when a record or checkpoint body ends before a
// field could be decoded.
var ErrTruncated = errors.New("wal: truncated body")

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }

// enc appends fields to a byte slice in a compact little-endian format
// (same wire conventions as the proto package, kept private to each).
type enc struct {
	buf []byte
}

func newEnc(sizeHint int) *enc {
	return &enc{buf: make([]byte, 0, sizeHint)}
}

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }

func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) blob(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *enc) u64Slice(vs []uint64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u64(v)
	}
}

func (e *enc) inode(id proto.InodeID) {
	e.i32(id.Server)
	e.u64(id.Local)
}

// dec reads fields back in the order they were encoded.
type dec struct {
	buf []byte
	off int
	err error
}

func newDec(b []byte) *dec { return &dec{buf: b} }

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = ErrTruncated
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }
func (d *dec) i32() int32 { return int32(d.u32()) }

func (d *dec) boolean() bool { return d.u8() != 0 }

func (d *dec) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) blob() []byte {
	n := int(d.u32())
	if n == 0 || !d.need(n) {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

func (d *dec) u64Slice() []uint64 {
	n := int(d.u32())
	if d.err != nil || n <= 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.u64())
	}
	return out
}

func (d *dec) inode() proto.InodeID {
	s := d.i32()
	l := d.u64()
	return proto.InodeID{Server: s, Local: l}
}

func (d *dec) finish(what string) error {
	if d.err != nil {
		return fmt.Errorf("wal: decoding %s: %w", what, d.err)
	}
	return nil
}
