package wal

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/proto"
	"repro/internal/sim"
)

func testConfig(st Store) Config {
	return Config{
		Store:               st,
		SegmentBytes:        512,
		GroupCommitInterval: 0,
		FlushCycles:         100,
		AppendPerLine:       2,
		ReplayPerRecord:     50,
	}
}

func rec(t RecType, ino uint64) Record {
	return Record{Type: t, Ino: ino, Size: int64(ino) * 10}
}

func TestRecordRoundTrip(t *testing.T) {
	in := Record{
		LSN:    42,
		Type:   RecAddMap,
		Ino:    7,
		Dir:    proto.InodeID{Server: 3, Local: 9},
		Name:   "file.txt",
		Target: proto.InodeID{Server: 1, Local: 5},
		Ftype:  fsapi.TypeRegular,
		Mode:   fsapi.Mode644,
		Dist:   true,
		Size:   4096,
		Off:    128,
		Nlink:  2,
		Blocks: []uint64{10, 11, 12},
		Data:   []byte("hello"),
	}
	body := in.encode()
	out, err := decodeRecord(body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.LSN != in.LSN || out.Type != in.Type || out.Name != in.Name ||
		out.Dir != in.Dir || out.Target != in.Target || out.Off != in.Off ||
		len(out.Blocks) != 3 || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestFrameCRCDetectsCorruption(t *testing.T) {
	f := frame([]byte("payload"))
	if _, _, err := unframe(f); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
	f[frameHeader] ^= 0xff
	if _, _, err := unframe(f); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	if _, _, err := unframe(f[:frameHeader-2]); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestAppendAndRecover(t *testing.T) {
	st := NewMemStore()
	l, err := Open(testConfig(st))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var now sim.Cycles
	for i := uint64(1); i <= 20; i++ {
		now += 1000
		if _, _, err := l.Append([]Record{rec(RecInode, i)}, now); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	ckpt, _, recs, err := l.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if ckpt != nil {
		t.Fatalf("unexpected checkpoint")
	}
	if len(recs) != 20 {
		t.Fatalf("recovered %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
	// The tiny segment size must have forced rotation.
	segs, _ := st.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	st := NewMemStore()
	l, err := Open(testConfig(st))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(1); i <= 5; i++ {
		if _, _, err := l.Append([]Record{rec(RecInode, i)}, sim.Cycles(i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	c := &Checkpoint{
		NextIno: 6,
		Inodes: []InodeSnap{{
			Local: 2, Ftype: fsapi.TypeRegular, Mode: fsapi.Mode644,
			Size: 100, Nlink: 1, Blocks: []uint64{3},
			Data: [][]byte{[]byte("block-three")},
		}},
		Dirs: []DirSnap{{
			Dir:  proto.RootInode,
			Ents: []DirEntSnap{{Name: "a", Target: proto.InodeID{Server: 0, Local: 2}, Ftype: fsapi.TypeRegular}},
		}},
		DeadDirs: []proto.InodeID{{Server: 0, Local: 4}},
	}
	if err := l.WriteCheckpoint(c); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if segs, _ := st.Segments(); len(segs) != 0 {
		t.Fatalf("checkpoint left segments behind: %v", segs)
	}
	// Records after the checkpoint replay on top of it.
	if _, _, err := l.Append([]Record{rec(RecNlink, 9)}, 100); err != nil {
		t.Fatalf("append after checkpoint: %v", err)
	}
	ckpt, _, recs, err := l.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if ckpt == nil || ckpt.LSN != 5 || ckpt.NextIno != 6 {
		t.Fatalf("bad checkpoint: %+v", ckpt)
	}
	if len(ckpt.Inodes) != 1 || !bytes.Equal(ckpt.Inodes[0].Data[0], []byte("block-three")) {
		t.Fatalf("checkpoint inode snapshot mangled: %+v", ckpt.Inodes)
	}
	if len(recs) != 1 || recs[0].LSN != 6 {
		t.Fatalf("recovered tail %+v, want single LSN 6", recs)
	}
}

func TestCheckpointCRC(t *testing.T) {
	c := &Checkpoint{LSN: 3, NextIno: 4}
	b := c.Marshal()
	if _, err := UnmarshalCheckpoint(b); err != nil {
		t.Fatalf("clean checkpoint rejected: %v", err)
	}
	b[len(b)-1] ^= 0x01
	if _, err := UnmarshalCheckpoint(b); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestGroupCommitBatching(t *testing.T) {
	cfg := testConfig(NewMemStore())
	cfg.GroupCommitInterval = 10000
	cfg.GroupCommitBytes = 1 << 20 // never hit the byte threshold
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Three appends inside one interval share a batch: same commit time.
	ack1, _, _ := l.Append([]Record{rec(RecInode, 1)}, 100)
	ack2, _, _ := l.Append([]Record{rec(RecInode, 2)}, 200)
	ack3, _, _ := l.Append([]Record{rec(RecInode, 3)}, 9000)
	if ack1 != ack2 || ack2 != ack3 {
		t.Fatalf("batch members ack at different times: %d %d %d", ack1, ack2, ack3)
	}
	if want := sim.Cycles(100 + 10000 + 100); ack1 != want {
		t.Fatalf("ack = %d, want deadline+flush = %d", ack1, want)
	}
	// An append past the deadline opens a new batch.
	ack4, _, _ := l.Append([]Record{rec(RecInode, 4)}, 20000)
	if ack4 <= ack3 {
		t.Fatalf("new batch ack %d not after old batch %d", ack4, ack3)
	}
	st := l.Stats()
	if st.Records != 4 {
		t.Fatalf("records = %d, want 4", st.Records)
	}
	// One closed batch plus the open one.
	if st.Flushes != 2 {
		t.Fatalf("flushes = %d, want 2", st.Flushes)
	}
}

func TestGroupCommitByteThreshold(t *testing.T) {
	cfg := testConfig(NewMemStore())
	cfg.GroupCommitInterval = 1 << 30 // effectively never
	cfg.GroupCommitBytes = 64
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	big := Record{Type: RecWrite, Ino: 1, Data: make([]byte, 256)}
	ack, _, _ := l.Append([]Record{big}, 500)
	// The byte threshold forces an immediate flush: ack is now+flush, not
	// deadline+flush.
	if want := sim.Cycles(500 + 100); ack != want {
		t.Fatalf("ack = %d, want immediate flush at %d", ack, want)
	}
}

func TestSynchronousCommitSerializesFlushes(t *testing.T) {
	cfg := testConfig(NewMemStore())
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ack1, _, _ := l.Append([]Record{rec(RecInode, 1)}, 1000)
	// A second append at the same instant queues behind the first flush.
	ack2, _, _ := l.Append([]Record{rec(RecInode, 2)}, 1000)
	if ack1 != 1100 || ack2 != 1200 {
		t.Fatalf("acks = %d, %d; want 1100, 1200", ack1, ack2)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("new file store: %v", err)
	}
	cfg := testConfig(st)
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(1); i <= 10; i++ {
		if _, _, err := l.Append([]Record{rec(RecInode, i)}, sim.Cycles(i*10)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.WriteCheckpoint(&Checkpoint{NextIno: 11}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if _, _, err := l.Append([]Record{rec(RecSize, 3)}, 1000); err != nil {
		t.Fatalf("append after checkpoint: %v", err)
	}

	// A second Log opened over the same directory (a process restart) sees
	// the checkpoint and the tail, and keeps allocating fresh LSNs.
	st2, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	l2, err := Open(testConfig(st2))
	if err != nil {
		t.Fatalf("reopen log: %v", err)
	}
	ckpt, _, recs, err := l2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if ckpt == nil || ckpt.LSN != 10 || ckpt.NextIno != 11 {
		t.Fatalf("bad checkpoint after restart: %+v", ckpt)
	}
	if len(recs) != 1 || recs[0].LSN != 11 || recs[0].Type != RecSize {
		t.Fatalf("bad tail after restart: %+v", recs)
	}
	if _, _, err := l2.Append([]Record{rec(RecInode, 99)}, 2000); err != nil {
		t.Fatalf("append after restart: %v", err)
	}
	_, _, recs, _ = l2.Recover()
	if len(recs) != 2 || recs[1].LSN != 12 {
		t.Fatalf("restart log did not resume LSNs: %+v", recs)
	}
}

func TestRestartOverTornTailRotatesSegment(t *testing.T) {
	st := NewMemStore()
	l, err := Open(testConfig(st))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, _, err := l.Append([]Record{rec(RecInode, 1)}, 10); err != nil {
		t.Fatalf("append: %v", err)
	}
	segs, _ := st.Segments()
	st.Append(segs[len(segs)-1], []byte{0x09, 0x00, 0x00, 0x00, 0xde, 0xad}) // torn frame

	// A restart must not append after the corruption: records written
	// there would be unreachable (readers stop at the first bad frame).
	l2, err := Open(testConfig(st))
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if _, _, err := l2.Append([]Record{rec(RecNlink, 1)}, 20); err != nil {
		t.Fatalf("append after restart: %v", err)
	}
	_, _, recs, err := l2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want both (pre-crash and post-restart)", len(recs))
	}
	if recs[1].LSN <= recs[0].LSN {
		t.Fatalf("post-restart record reused an LSN: %d then %d", recs[0].LSN, recs[1].LSN)
	}
	if segs, _ := st.Segments(); len(segs) < 2 {
		t.Fatalf("restart did not rotate away from the torn segment: %v", segs)
	}
}

func TestRecoverDetectsLostPrefix(t *testing.T) {
	// A log whose surviving records do not start right after the
	// checkpoint (or at LSN 1) has lost durable mutations; recovery must
	// refuse rather than silently replay a partial history.
	st := NewMemStore()
	r := rec(RecInode, 7)
	r.LSN = 3 // records 1 and 2 are missing
	st.Append(0, frame(r.encode()))
	l, err := Open(testConfig(st))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, _, _, err := l.Recover(); err == nil {
		t.Fatal("recovery accepted a log missing its prefix")
	}
}

func TestRecoverDetectsMidLogGap(t *testing.T) {
	st := NewMemStore()
	for _, lsn := range []uint64{1, 2, 5, 6} { // 3 and 4 missing
		r := rec(RecInode, lsn)
		r.LSN = lsn
		st.Append(lsn/4, frame(r.encode())) // split across two segments
	}
	l, err := Open(testConfig(st))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, _, _, err := l.Recover(); err == nil {
		t.Fatal("recovery accepted a log with a mid-log gap")
	}
}

func TestFailingSyncFailsAppend(t *testing.T) {
	st := &failingSyncStore{MemStore: NewMemStore()}
	l, err := Open(testConfig(st))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, _, err := l.Append([]Record{rec(RecInode, 1)}, 10); err == nil {
		t.Fatal("append acknowledged despite a failing flush")
	}
}

// failingSyncStore wraps MemStore with a Sync that always fails.
type failingSyncStore struct{ *MemStore }

func (f *failingSyncStore) Sync() error { return errSyncBroken }

var errSyncBroken = fmt.Errorf("sync device broken")

func TestTornTailIsIgnored(t *testing.T) {
	st := NewMemStore()
	l, err := Open(testConfig(st))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, _, err := l.Append([]Record{rec(RecInode, 1)}, 10); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Simulate a torn write: garbage after the last intact frame.
	segs, _ := st.Segments()
	st.Append(segs[len(segs)-1], []byte{0x03, 0x00, 0x00})
	_, _, recs, err := l.Recover()
	if err != nil {
		t.Fatalf("recover over torn tail: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want the 1 intact one", len(recs))
	}
}
