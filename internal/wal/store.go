package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the durable medium behind one server's log: a set of numbered
// log segments plus at most one checkpoint. The simulator uses MemStore;
// real deployments (cmd/hare-bench with a log directory) use FileStore.
//
// Stores only move bytes; framing, CRCs, and record semantics live in the
// Log. Append and Sync on a segment must be crash-atomic at frame
// granularity in the file case, which the frame CRC enforces on the read
// side rather than the store on the write side.
type Store interface {
	// Segments lists existing segment indices in ascending order.
	Segments() ([]uint64, error)
	// Append appends bytes to the given segment, creating it if needed.
	Append(seg uint64, b []byte) error
	// Read returns the full contents of a segment.
	Read(seg uint64) ([]byte, error)
	// Remove deletes a segment.
	Remove(seg uint64) error
	// Sync makes previous Appends durable (a flush barrier).
	Sync() error
	// SaveCheckpoint atomically replaces the checkpoint.
	SaveCheckpoint(b []byte) error
	// LoadCheckpoint returns the checkpoint bytes, or nil when none exists.
	LoadCheckpoint() ([]byte, error)
}

// MemStore is an in-memory Store used by the simulator and by tests. It is
// "durable" with respect to simulated server crashes: the store object lives
// outside the server whose crash is being injected, the same way DRAM does.
type MemStore struct {
	mu    sync.Mutex
	segs  map[uint64]*bytes.Buffer
	ckpt  []byte
	syncs int
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{segs: make(map[uint64]*bytes.Buffer)}
}

// Segments implements Store.
func (m *MemStore) Segments() ([]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.segs))
	for i := range m.segs {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// Append implements Store.
func (m *MemStore) Append(seg uint64, b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.segs[seg]
	if !ok {
		buf = &bytes.Buffer{}
		m.segs[seg] = buf
	}
	buf.Write(b)
	return nil
}

// Read implements Store.
func (m *MemStore) Read(seg uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.segs[seg]
	if !ok {
		return nil, fmt.Errorf("wal: no segment %d", seg)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// Remove implements Store.
func (m *MemStore) Remove(seg uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.segs, seg)
	return nil
}

// Sync implements Store (a no-op beyond counting, for tests).
func (m *MemStore) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncs++
	return nil
}

// SaveCheckpoint implements Store.
func (m *MemStore) SaveCheckpoint(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ckpt = append([]byte(nil), b...)
	return nil
}

// LoadCheckpoint implements Store.
func (m *MemStore) LoadCheckpoint() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ckpt == nil {
		return nil, nil
	}
	out := make([]byte, len(m.ckpt))
	copy(out, m.ckpt)
	return out, nil
}

// FileStore keeps segments and the checkpoint as files in one directory
// (one directory per server). Segment files are append-only; the checkpoint
// is replaced atomically via rename.
type FileStore struct {
	dir string

	mu    sync.Mutex
	dirty map[string]bool // segment paths appended since the last Sync
}

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
	ckptName  = "checkpoint.bin"
)

// NewFileStore creates (if needed) and opens a file-backed store rooted at
// dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating store dir: %w", err)
	}
	return &FileStore{dir: dir, dirty: make(map[string]bool)}, nil
}

func (f *FileStore) segPath(seg uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("%s%08d%s", segPrefix, seg, segSuffix))
}

// Segments implements Store.
func (f *FileStore) Segments() ([]uint64, error) {
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var idx uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%d", &idx); err != nil {
			continue
		}
		out = append(out, idx)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// Append implements Store.
func (f *FileStore) Append(seg uint64, b []byte) error {
	path := f.segPath(seg)
	fh, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer fh.Close()
	if _, err := fh.Write(b); err != nil {
		return err
	}
	f.mu.Lock()
	f.dirty[path] = true
	f.mu.Unlock()
	return nil
}

// Read implements Store.
func (f *FileStore) Read(seg uint64) ([]byte, error) {
	return os.ReadFile(f.segPath(seg))
}

// Remove implements Store.
func (f *FileStore) Remove(seg uint64) error {
	err := os.Remove(f.segPath(seg))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Sync implements Store: fsync every segment file appended since the last
// barrier (the actual durability point for their records), then the
// directory so newly created segment files themselves persist.
func (f *FileStore) Sync() error {
	f.mu.Lock()
	paths := make([]string, 0, len(f.dirty))
	for p := range f.dirty {
		paths = append(paths, p)
	}
	f.dirty = make(map[string]bool)
	f.mu.Unlock()
	for _, p := range paths {
		fh, err := os.OpenFile(p, os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		if err := fh.Sync(); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
	}
	dh, err := os.Open(f.dir)
	if err != nil {
		return err
	}
	defer dh.Close()
	return dh.Sync()
}

// SaveCheckpoint implements Store: write to a temp file, fsync, rename.
func (f *FileStore) SaveCheckpoint(b []byte) error {
	tmp := filepath.Join(f.dir, ckptName+".tmp")
	fh, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := fh.Write(b); err != nil {
		fh.Close()
		return err
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		return err
	}
	if err := fh.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(f.dir, ckptName))
}

// LoadCheckpoint implements Store.
func (f *FileStore) LoadCheckpoint() ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(f.dir, ckptName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return b, err
}
