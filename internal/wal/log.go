package wal

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Config describes one server's log.
type Config struct {
	// Store is the durable medium (MemStore in the simulator, FileStore for
	// real log directories).
	Store Store

	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size. Default 1 MiB.
	SegmentBytes int

	// GroupCommitInterval is the flush cadence in virtual time: records are
	// acknowledged when their batch's interval expires. Zero means every
	// append flushes synchronously (the most conservative, slowest setting).
	GroupCommitInterval sim.Cycles
	// GroupCommitBytes flushes a batch early once it accumulates this many
	// bytes, bounding the data at risk per flush. Default 64 KiB.
	GroupCommitBytes int

	// CheckpointEvery takes an automatic checkpoint after this many records
	// have been appended since the last one. Zero disables automatic
	// checkpoints (explicit Checkpoint calls still work).
	CheckpointEvery int

	// FlushCycles is the virtual cost of one flush (the latency a batch
	// pays at its commit point).
	FlushCycles sim.Cycles
	// AppendPerLine is the virtual CPU cost per 64 bytes logged.
	AppendPerLine sim.Cycles
	// ReplayPerRecord is the virtual cost per record replayed at recovery.
	ReplayPerRecord sim.Cycles
}

func (c *Config) normalize() {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 1 << 20
	}
	if c.GroupCommitBytes <= 0 {
		c.GroupCommitBytes = 64 << 10
	}
}

// Stats counts one log's activity.
type Stats struct {
	Records     uint64
	Bytes       uint64
	Flushes     uint64
	Checkpoints uint64
	// CheckpointBytes is the size of the most recent checkpoint.
	CheckpointBytes uint64
	LastLSN         uint64
}

// RecoveryStats describes one server's recovery.
type RecoveryStats struct {
	Server           int
	UsedCheckpoint   bool
	CheckpointBytes  int
	CheckpointInodes int
	// Records and Bytes cover the log tail replayed after the checkpoint.
	Records int
	Bytes   int64
	// Cycles is the virtual time the recovery work was charged.
	Cycles sim.Cycles
}

// Log is one file server's write-ahead log. The server appends from its own
// goroutine; Stats may be read concurrently, so the log locks internally.
//
// The Log object itself models the durable device head: it survives a
// simulated server crash the same way the MemStore does. Nothing buffered
// in the Log is lost at a crash because Append writes through to the store;
// the group-commit machinery only decides *when in virtual time* a record
// counts as committed (and what the flush cadence costs).
type Log struct {
	mu  sync.Mutex
	cfg Config

	seg      uint64 // current segment index
	segBytes int
	nextLSN  uint64 // next LSN to assign; LSNs start at 1
	ckptLSN  uint64 // last LSN covered by a checkpoint

	sinceCkpt int // records appended since the last checkpoint

	// Group commit, in virtual time.
	batchOpen     bool
	batchDeadline sim.Cycles
	batchBytes    int
	lastFlushEnd  sim.Cycles

	// syncErr latches a failed store flush: once the durable medium has
	// failed, no further append may be acknowledged.
	syncErr error

	stats Stats
}

// Open builds a Log over a store, resuming after any existing segments (a
// restart over a FileStore continues where the previous process stopped).
func Open(cfg Config) (*Log, error) {
	cfg.normalize()
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	l := &Log{cfg: cfg, nextLSN: 1}
	if b, err := cfg.Store.LoadCheckpoint(); err == nil && b != nil {
		if c, cerr := UnmarshalCheckpoint(b); cerr == nil {
			l.ckptLSN = c.LSN
			if c.LSN >= l.nextLSN {
				l.nextLSN = c.LSN + 1
			}
		}
	}
	segs, err := cfg.Store.Segments()
	if err != nil {
		return nil, fmt.Errorf("wal: listing segments: %w", err)
	}
	tailTorn := false
	for _, s := range segs {
		if s >= l.seg {
			l.seg = s
		}
		// A frame error marks where a crash tore an append; parsing stops
		// there. Recover verifies LSN continuity across segments, which
		// is what actually detects lost records.
		recs, _, rerr := readSegment(cfg.Store, s)
		if rerr != nil && s == segs[len(segs)-1] {
			tailTorn = true
		}
		for _, r := range recs {
			if r.LSN >= l.nextLSN {
				l.nextLSN = r.LSN + 1
			}
		}
	}
	if len(segs) > 0 {
		if tailTorn {
			// The newest segment ends in a torn frame (a crash mid-append).
			// Appending after the corruption would strand every later
			// record — readers stop at the first bad frame — so resume in
			// a fresh segment and leave the torn tail behind.
			l.seg++
			l.segBytes = 0
		} else {
			b, rerr := cfg.Store.Read(l.seg)
			if rerr == nil {
				l.segBytes = len(b)
			}
		}
	}
	return l, nil
}

// GroupCommitInterval returns the configured flush cadence.
func (l *Log) GroupCommitInterval() sim.Cycles { return l.cfg.GroupCommitInterval }

// Append assigns LSNs to recs, writes them to the current segment, and
// returns the virtual time at which the batch they joined commits (the
// acknowledgement time for the mutation they describe) plus the CPU cycles
// the caller should charge for the append work.
func (l *Log) Append(recs []Record, now sim.Cycles) (ack sim.Cycles, cpu sim.Cycles, err error) {
	if len(recs) == 0 {
		return now, 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	var buf []byte
	for i := range recs {
		recs[i].LSN = l.nextLSN
		l.nextLSN++
		buf = append(buf, frame(recs[i].encode())...)
	}
	if l.segBytes > 0 && l.segBytes+len(buf) > l.cfg.SegmentBytes {
		l.seg++
		l.segBytes = 0
	}
	if err := l.cfg.Store.Append(l.seg, buf); err != nil {
		return now, 0, fmt.Errorf("wal: append: %w", err)
	}
	l.segBytes += len(buf)
	l.sinceCkpt += len(recs)
	l.stats.Records += uint64(len(recs))
	l.stats.Bytes += uint64(len(buf))
	l.stats.LastLSN = l.nextLSN - 1

	cpu = sim.LineCost(l.cfg.AppendPerLine, len(buf))
	ack = l.commitTime(now, len(buf))

	// Physical durability is write-through: every append reaches the
	// store's durable medium before it is acknowledged, regardless of the
	// group-commit interval (which models only the *virtual-time* flush
	// cadence). Without this, records acked at a batch deadline could sit
	// unsynced in a FileStore page cache until a later append — or
	// forever, for the final batch.
	if err := l.cfg.Store.Sync(); err != nil && l.syncErr == nil {
		l.syncErr = err
	}
	if l.syncErr != nil {
		// A flush failed: the records written since then are not durable
		// and must not be acknowledged.
		return now, cpu, fmt.Errorf("wal: flush: %w", l.syncErr)
	}
	return ack, cpu, nil
}

// commitTime runs the group-commit state machine and returns the virtual
// time at which bytes appended at `now` are durable. Callers hold l.mu.
func (l *Log) commitTime(now sim.Cycles, nbytes int) sim.Cycles {
	// flushAt accounts one flush in virtual time; the physical sync is
	// handled write-through by Append.
	flushAt := func(t sim.Cycles) sim.Cycles {
		if l.lastFlushEnd > t {
			t = l.lastFlushEnd
		}
		end := t + l.cfg.FlushCycles
		l.lastFlushEnd = end
		l.stats.Flushes++
		return end
	}

	if l.cfg.GroupCommitInterval == 0 {
		// Synchronous commit: every append is its own flush.
		return flushAt(now)
	}

	// Close a batch whose deadline has passed (it flushed, in virtual time,
	// when its interval expired).
	if l.batchOpen && now > l.batchDeadline {
		flushAt(l.batchDeadline)
		l.batchOpen = false
	}
	if !l.batchOpen {
		l.batchOpen = true
		l.batchDeadline = now + l.cfg.GroupCommitInterval
		l.batchBytes = 0
	}
	l.batchBytes += nbytes
	if l.batchBytes >= l.cfg.GroupCommitBytes {
		// The batch hit the byte threshold: flush immediately.
		l.batchOpen = false
		return flushAt(now)
	}
	// Commit happens when the batch's interval expires.
	end := l.batchDeadline
	if l.lastFlushEnd > end {
		end = l.lastFlushEnd
	}
	return end + l.cfg.FlushCycles
}

// CheckpointDue reports whether enough records have accumulated since the
// last checkpoint that the server should snapshot its state.
func (l *Log) CheckpointDue() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cfg.CheckpointEvery > 0 && l.sinceCkpt >= l.cfg.CheckpointEvery
}

// WriteCheckpoint durably replaces the checkpoint with c and truncates the
// log: every record is now reflected in the snapshot, so all segments are
// removed and appending resumes in a fresh segment.
func (l *Log) WriteCheckpoint(c *Checkpoint) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	c.LSN = l.nextLSN - 1
	b := c.Marshal()
	if err := l.cfg.Store.SaveCheckpoint(b); err != nil {
		return fmt.Errorf("wal: saving checkpoint: %w", err)
	}
	segs, err := l.cfg.Store.Segments()
	if err != nil {
		return fmt.Errorf("wal: listing segments: %w", err)
	}
	for _, s := range segs {
		if err := l.cfg.Store.Remove(s); err != nil {
			return fmt.Errorf("wal: truncating segment %d: %w", s, err)
		}
	}
	l.seg++
	l.segBytes = 0
	l.ckptLSN = c.LSN
	l.sinceCkpt = 0
	l.stats.Checkpoints++
	l.stats.CheckpointBytes = uint64(len(b))
	return nil
}

// Recover loads the latest checkpoint (nil when none has been taken) and
// the log records to replay after it, in LSN order. ckptBytes is the size
// of the checkpoint as stored (0 without one).
func (l *Log) Recover() (ckpt *Checkpoint, ckptBytes int, recs []Record, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	if b, lerr := l.cfg.Store.LoadCheckpoint(); lerr != nil {
		return nil, 0, nil, fmt.Errorf("wal: loading checkpoint: %w", lerr)
	} else if b != nil {
		c, cerr := UnmarshalCheckpoint(b)
		if cerr != nil {
			return nil, 0, nil, cerr
		}
		ckpt = c
		ckptBytes = len(b)
	}

	segs, serr := l.cfg.Store.Segments()
	if serr != nil {
		return nil, 0, nil, fmt.Errorf("wal: listing segments: %w", serr)
	}
	for _, s := range segs {
		// Each segment may end in a torn frame (the crash that ended its
		// tenure as the active tail); parsing stops at the first bad
		// frame and the LSN continuity check below distinguishes benign
		// torn tails from records actually lost mid-log.
		srecs, _, _ := readSegment(l.cfg.Store, s)
		for _, r := range srecs {
			if ckpt != nil && r.LSN <= ckpt.LSN {
				continue // already reflected in the snapshot
			}
			recs = append(recs, r)
		}
	}
	// Continuity: the replayed run must start right after the checkpoint
	// (or at LSN 1) and have no holes; anything else means durable records
	// were lost, not merely a torn tail.
	first := uint64(1)
	if ckpt != nil {
		first = ckpt.LSN + 1
	}
	if len(recs) > 0 && recs[0].LSN != first {
		return nil, 0, nil, fmt.Errorf("wal: log gap: first record is %d, want %d", recs[0].LSN, first)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN != recs[i-1].LSN+1 {
			return nil, 0, nil, fmt.Errorf("wal: log gap: record %d follows %d", recs[i].LSN, recs[i-1].LSN)
		}
	}
	return ckpt, ckptBytes, recs, nil
}

// readSegment parses every intact frame of a segment. It returns the
// records, the byte count consumed, and the framing error that terminated
// the scan (nil when the segment ends cleanly).
func readSegment(st Store, seg uint64) ([]Record, int, error) {
	b, err := st.Read(seg)
	if err != nil {
		return nil, 0, err
	}
	var recs []Record
	read := 0
	rest := b
	for len(rest) > 0 {
		body, next, ferr := unframe(rest)
		if ferr != nil {
			return recs, read, ferr
		}
		r, derr := decodeRecord(body)
		if derr != nil {
			return recs, read, derr
		}
		recs = append(recs, r)
		read = len(b) - len(next)
		rest = next
	}
	return recs, read, nil
}

// ReplayCost returns the virtual time to charge for replaying the given
// volume of recovery work (checkpoint load plus log replay).
func (l *Log) ReplayCost(records int, logBytes int64, ckptBytes int) sim.Cycles {
	c := l.cfg.ReplayPerRecord*sim.Cycles(records) +
		sim.LineCost(l.cfg.AppendPerLine, int(logBytes)) +
		sim.LineCost(l.cfg.AppendPerLine, ckptBytes)
	return c
}

// Stats returns a snapshot of the log's counters. An open group-commit
// batch counts as one pending flush so sweep figures reflect the final
// flush a real shutdown would perform.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.stats
	if l.batchOpen {
		out.Flushes++
	}
	return out
}
