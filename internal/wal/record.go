// Package wal is Hare's durability subsystem: a per-file-server write-ahead
// log with group commit, checkpoints, and crash recovery.
//
// The paper scopes durability out — the file system lives entirely in
// non-cache-coherent DRAM and a server crash loses its shard of the
// namespace. This package closes that gap. Every file server appends a
// CRC-framed record to its own segmented log for each namespace or file
// mutation it performs (creates, links, unlinks, directory-entry changes,
// block-list changes, server-path data writes). Periodically the server
// snapshots its entire state — inode table, directory shards, and the
// contents of the buffer-cache blocks its files own — into a checkpoint and
// truncates the log. Recovery rebuilds the server's state from the latest
// checkpoint plus an idempotent replay of the log's tail.
//
// Group commit: mutations are acknowledged only once their log batch is
// flushed. The flush interval and byte threshold are configuration knobs,
// and the flush work is charged to the simulator's cost model, so durability
// shows up as latency and throughput in virtual-time benchmarks exactly the
// way an fsync cadence would on real hardware.
//
// See DESIGN.md §6 for how this subsystem composes with the paper's design.
package wal

import (
	"fmt"
	"hash/crc32"

	"repro/internal/fsapi"
	"repro/internal/proto"
)

// RecType identifies the kind of mutation a log record describes.
type RecType uint8

// Record types. Each record is a *state assignment* (it carries the
// resulting value, not a delta) so that replaying a record twice, or
// replaying records already reflected in a checkpoint, is harmless.
const (
	recInvalid RecType = iota
	// RecInode creates an inode (mknod, the create half of the coalesced
	// create, mkdir's directory inode).
	RecInode
	// RecNlink assigns an inode's link count; replay reaps the inode when
	// the count reaches zero (link, unlink, rename's unlink phase, the
	// FINISH phase of the three-phase rmdir).
	RecNlink
	// RecSize assigns an inode's logical size (SET_SIZE, and the coalesced
	// size carried on CLOSE after direct-access writes).
	RecSize
	// RecBlocks assigns an inode's block list and size (extend, truncate,
	// O_TRUNC on open). The record stores the actual block ids so replay
	// re-reserves the same DRAM blocks that surviving client libraries and
	// buffer-cache contents still refer to.
	RecBlocks
	// RecWrite carries file data written through the server (WRITE_AT and
	// FD_WRITE when direct access is off, or any server-path write). The
	// offset is pre-resolved: append-mode writes record the offset actually
	// used.
	RecWrite
	// RecAddMap upserts one directory entry (create, mkdir, link, and the
	// ADD_MAP phase of rename — Replace semantics make replay idempotent).
	RecAddMap
	// RecRmMap removes one directory entry (unlink, rmdir's shard, and the
	// RM_MAP phase of rename).
	RecRmMap
	// RecDirKill tombstones a removed directory: the shard is dropped and
	// the directory id joins the dead set (the COMMIT and FINISH phases of
	// the three-phase rmdir).
	RecDirKill
	// RecEpoch records that the server adopted a new placement-map epoch
	// at the commit point of a shard migration. Epoch carries the epoch
	// number, Data the encoded map (DESIGN.md §9). It is logged in the
	// same batch as the migration's entry installs/removals, so recovery
	// lands on exactly one side of the epoch boundary — never both.
	RecEpoch
)

var recNames = map[RecType]string{
	RecInode:   "INODE",
	RecNlink:   "NLINK",
	RecSize:    "SIZE",
	RecBlocks:  "BLOCKS",
	RecWrite:   "WRITE",
	RecAddMap:  "ADD_MAP",
	RecRmMap:   "RM_MAP",
	RecDirKill: "DIR_KILL",
	RecEpoch:   "EPOCH",
}

// String names the record type.
func (t RecType) String() string {
	if s, ok := recNames[t]; ok {
		return s
	}
	return "REC_UNKNOWN"
}

// Record is one logged mutation. Only the fields relevant to the record's
// type are meaningful; like the RPC protocol's Request, a single fixed shape
// keeps the framing simple and uniform.
type Record struct {
	// LSN is the record's log sequence number, assigned by Log.Append.
	// LSNs are dense and strictly increasing within one server's log.
	LSN uint64
	// Type selects which of the remaining fields are meaningful.
	Type RecType

	// Ino is the local inode number the record applies to (inode records).
	Ino uint64
	// Dir and Name address one directory entry (entry records).
	Dir  proto.InodeID
	Name string
	// Target is the inode a directory entry points at.
	Target proto.InodeID

	Ftype fsapi.FileType
	Mode  fsapi.Mode
	Dist  bool

	Size   int64
	Off    int64
	Nlink  int32
	Blocks []uint64
	Data   []byte

	// Epoch is the placement-map epoch adopted by a RecEpoch record (the
	// encoded map itself travels in Data).
	Epoch uint64
}

// frame layout: u32 payload length, u32 CRC-32 (IEEE) of the payload,
// payload bytes. A torn or corrupted tail frame fails the CRC and replay
// stops there, which is exactly the write-ahead-log contract: everything
// acknowledged was flushed in a complete frame.
const frameHeader = 8

// castagnoli would also do; IEEE matches Go's crc32 default table.
var crcTable = crc32.MakeTable(crc32.IEEE)

// encode serializes the record body (everything inside the frame).
func (r *Record) encode() []byte {
	e := newEnc(64 + len(r.Name) + len(r.Data) + 8*len(r.Blocks))
	e.u64(r.LSN)
	e.u8(uint8(r.Type))
	e.u64(r.Ino)
	e.inode(r.Dir)
	e.str(r.Name)
	e.inode(r.Target)
	e.u8(uint8(r.Ftype))
	e.u16(uint16(r.Mode))
	e.boolean(r.Dist)
	e.i64(r.Size)
	e.i64(r.Off)
	e.i32(r.Nlink)
	e.u64Slice(r.Blocks)
	e.blob(r.Data)
	e.u64(r.Epoch)
	return e.buf
}

// decodeRecord parses one record body.
func decodeRecord(b []byte) (Record, error) {
	d := newDec(b)
	var r Record
	r.LSN = d.u64()
	r.Type = RecType(d.u8())
	r.Ino = d.u64()
	r.Dir = d.inode()
	r.Name = d.str()
	r.Target = d.inode()
	r.Ftype = fsapi.FileType(d.u8())
	r.Mode = fsapi.Mode(d.u16())
	r.Dist = d.boolean()
	r.Size = d.i64()
	r.Off = d.i64()
	r.Nlink = d.i32()
	r.Blocks = d.u64Slice()
	r.Data = d.blob()
	r.Epoch = d.u64()
	if err := d.finish("wal record"); err != nil {
		return Record{}, err
	}
	return r, nil
}

// EncodeRecords serializes a batch of records in the log's frame format
// (length + CRC per record). It is the wire encoding the replication shipper
// uses for REPL_APPEND payloads: a follower ingests exactly the frames the
// primary's log flushed, so the two cannot disagree about record contents.
func EncodeRecords(recs []Record) []byte {
	var out []byte
	for i := range recs {
		out = append(out, frame(recs[i].encode())...)
	}
	return out
}

// DecodeRecords parses a batch encoded by EncodeRecords. Unlike log-tail
// replay — where a torn final frame is the expected crash signature and
// marks the end of the durable prefix — a shipped batch travels in one
// message and must be complete: any framing or CRC error rejects the whole
// batch so a follower never applies a partial ship.
func DecodeRecords(b []byte) ([]Record, error) {
	var recs []Record
	for len(b) > 0 {
		body, rest, err := unframe(b)
		if err != nil {
			return nil, fmt.Errorf("wal: shipped batch record %d: %w", len(recs), err)
		}
		r, err := decodeRecord(body)
		if err != nil {
			return nil, fmt.Errorf("wal: shipped batch record %d: %w", len(recs), err)
		}
		recs = append(recs, r)
		b = rest
	}
	return recs, nil
}

// frame wraps an encoded record body with the length+CRC header.
func frame(body []byte) []byte {
	out := make([]byte, frameHeader+len(body))
	putU32(out[0:], uint32(len(body)))
	putU32(out[4:], crc32.Checksum(body, crcTable))
	copy(out[frameHeader:], body)
	return out
}

// unframe reads one frame from b, returning the body and remaining bytes.
// A short or corrupt frame returns an error; callers treat an error at the
// log tail as the end of the durable prefix.
func unframe(b []byte) (body, rest []byte, err error) {
	if len(b) < frameHeader {
		return nil, nil, fmt.Errorf("wal: truncated frame header (%d bytes)", len(b))
	}
	n := int(getU32(b[0:]))
	sum := getU32(b[4:])
	if len(b) < frameHeader+n {
		return nil, nil, fmt.Errorf("wal: truncated frame body (want %d, have %d)", n, len(b)-frameHeader)
	}
	body = b[frameHeader : frameHeader+n]
	if crc32.Checksum(body, crcTable) != sum {
		return nil, nil, fmt.Errorf("wal: frame CRC mismatch")
	}
	return body, b[frameHeader+n:], nil
}
