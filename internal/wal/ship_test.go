package wal

import (
	"bytes"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/proto"
)

// shipBatch builds a representative mixed batch with assigned LSNs.
func shipBatch() []Record {
	return []Record{
		{LSN: 5, Type: RecInode, Ino: 2, Ftype: fsapi.TypeRegular, Mode: fsapi.Mode644, Nlink: 1},
		{LSN: 6, Type: RecAddMap, Dir: proto.InodeID{Server: 0, Local: 1}, Name: "a",
			Target: proto.InodeID{Server: 1, Local: 2}, Ftype: fsapi.TypeRegular},
		{LSN: 7, Type: RecBlocks, Ino: 2, Blocks: []uint64{40, 41}, Size: 8192},
		{LSN: 8, Type: RecWrite, Ino: 2, Off: 100, Data: []byte("shipped bytes")},
	}
}

func TestEncodeDecodeRecordsRoundTrip(t *testing.T) {
	in := shipBatch()
	b := EncodeRecords(in)
	out, err := DecodeRecords(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].LSN != in[i].LSN || out[i].Type != in[i].Type || out[i].Ino != in[i].Ino ||
			out[i].Name != in[i].Name || !bytes.Equal(out[i].Data, in[i].Data) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
	if got, err := DecodeRecords(nil); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v records, err %v", got, err)
	}
}

// TestDecodeRecordsRejectsTruncation pins the all-or-nothing contract: a
// shipped batch travels in one message, so a cut-off tail must fail the
// whole decode rather than return a prefix the follower would ack.
func TestDecodeRecordsRejectsTruncation(t *testing.T) {
	b := EncodeRecords(shipBatch())
	for _, cut := range []int{1, frameHeader - 1, frameHeader + 3, len(b) - 1} {
		if _, err := DecodeRecords(b[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(b))
		}
	}
}

// TestDecodeRecordsRejectsCorruption flips one byte in the middle of the
// batch: the frame CRC must fail the whole decode, not just the touched
// record.
func TestDecodeRecordsRejectsCorruption(t *testing.T) {
	b := EncodeRecords(shipBatch())
	mut := append([]byte(nil), b...)
	mut[len(mut)/2] ^= 0xff
	if _, err := DecodeRecords(mut); err == nil {
		t.Fatal("corrupted batch decoded without error")
	}
}
