package wal

import (
	"fmt"
	"hash/crc32"

	"repro/internal/fsapi"
	"repro/internal/proto"
)

// InodeSnap is one inode in a checkpoint: metadata, block list, and — so a
// checkpoint doubles as a full backup of the server's buffer-cache
// partition — the contents of each block. Data[i] holds the bytes of
// Blocks[i]; a nil entry means the block was never written (reads as
// zeros).
//
// Volatile runtime state is deliberately absent: open-descriptor counts,
// shared descriptors, pipe buffers, rmdir marks, and invalidation tracking
// die with the server process, exactly like open file descriptors die with
// a real machine.
type InodeSnap struct {
	Local uint64
	Ftype fsapi.FileType
	Mode  fsapi.Mode
	Size  int64
	Nlink int32
	Dist  bool

	Blocks []uint64
	Data   [][]byte
}

// DirEntSnap is one directory entry in a checkpoint.
type DirEntSnap struct {
	Name   string
	Target proto.InodeID
	Ftype  fsapi.FileType
	Dist   bool
}

// DirSnap is this server's shard of one directory.
type DirSnap struct {
	Dir  proto.InodeID
	Ents []DirEntSnap
}

// Checkpoint is a complete snapshot of one file server's durable state at a
// log position. Recovery loads the checkpoint and replays only records with
// LSN > the checkpoint's LSN (in this implementation the log is truncated
// at checkpoint time, so every surviving record qualifies).
type Checkpoint struct {
	// LSN is the last log sequence number reflected in the snapshot.
	LSN uint64
	// NextIno preserves the server's inode-number allocator so recovered
	// servers never reissue a live inode number.
	NextIno uint64

	// Epoch and PlaceMap preserve the placement-map epoch the server had
	// adopted (the encoded map, place.Map.Encode). Zero/nil on servers
	// that never migrated past their boot map; recovery then falls back
	// to the deployment's initial map (DESIGN.md §9).
	Epoch    uint64
	PlaceMap []byte

	Inodes   []InodeSnap
	Dirs     []DirSnap
	DeadDirs []proto.InodeID
}

// Marshal encodes the checkpoint with a trailing CRC so a torn checkpoint
// write is detected at load time.
func (c *Checkpoint) Marshal() []byte {
	e := newEnc(1024)
	e.u64(c.LSN)
	e.u64(c.NextIno)
	e.u64(c.Epoch)
	e.blob(c.PlaceMap)
	e.u32(uint32(len(c.Inodes)))
	for i := range c.Inodes {
		in := &c.Inodes[i]
		e.u64(in.Local)
		e.u8(uint8(in.Ftype))
		e.u16(uint16(in.Mode))
		e.i64(in.Size)
		e.i32(in.Nlink)
		e.boolean(in.Dist)
		e.u64Slice(in.Blocks)
		e.u32(uint32(len(in.Data)))
		for _, d := range in.Data {
			e.blob(d)
		}
	}
	e.u32(uint32(len(c.Dirs)))
	for i := range c.Dirs {
		dir := &c.Dirs[i]
		e.inode(dir.Dir)
		e.u32(uint32(len(dir.Ents)))
		for _, ent := range dir.Ents {
			e.str(ent.Name)
			e.inode(ent.Target)
			e.u8(uint8(ent.Ftype))
			e.boolean(ent.Dist)
		}
	}
	e.u32(uint32(len(c.DeadDirs)))
	for _, id := range c.DeadDirs {
		e.inode(id)
	}
	body := e.buf
	out := make([]byte, 4+len(body))
	putU32(out, crc32.Checksum(body, crcTable))
	copy(out[4:], body)
	return out
}

// UnmarshalCheckpoint decodes and CRC-verifies a checkpoint.
func UnmarshalCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wal: checkpoint too short (%d bytes)", len(b))
	}
	body := b[4:]
	if crc32.Checksum(body, crcTable) != getU32(b) {
		return nil, fmt.Errorf("wal: checkpoint CRC mismatch")
	}
	d := newDec(body)
	c := &Checkpoint{}
	c.LSN = d.u64()
	c.NextIno = d.u64()
	c.Epoch = d.u64()
	c.PlaceMap = d.blob()
	nino := int(d.u32())
	for i := 0; i < nino && d.err == nil; i++ {
		var in InodeSnap
		in.Local = d.u64()
		in.Ftype = fsapi.FileType(d.u8())
		in.Mode = fsapi.Mode(d.u16())
		in.Size = d.i64()
		in.Nlink = d.i32()
		in.Dist = d.boolean()
		in.Blocks = d.u64Slice()
		ndata := int(d.u32())
		for j := 0; j < ndata && d.err == nil; j++ {
			in.Data = append(in.Data, d.blob())
		}
		c.Inodes = append(c.Inodes, in)
	}
	ndirs := int(d.u32())
	for i := 0; i < ndirs && d.err == nil; i++ {
		var dir DirSnap
		dir.Dir = d.inode()
		nents := int(d.u32())
		for j := 0; j < nents && d.err == nil; j++ {
			var ent DirEntSnap
			ent.Name = d.str()
			ent.Target = d.inode()
			ent.Ftype = fsapi.FileType(d.u8())
			ent.Dist = d.boolean()
			dir.Ents = append(dir.Ents, ent)
		}
		c.Dirs = append(c.Dirs, dir)
	}
	ndead := int(d.u32())
	for i := 0; i < ndead && d.err == nil; i++ {
		c.DeadDirs = append(c.DeadDirs, d.inode())
	}
	if err := d.finish("checkpoint"); err != nil {
		return nil, err
	}
	return c, nil
}
