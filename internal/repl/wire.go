package repl

import (
	"encoding/binary"
	"fmt"
)

// Wire shapes for the replication plane. REPL_APPEND carries a Msg in the
// request's Data; acks travel either as the RPC reply (sync mode) or as a
// one-way REPL_ACK request back to the primary's replication endpoint
// (async mode). REPL_SEAL carries a Msg with only Primary set and returns
// a SealReply.

// Msg is one shipped batch: either a framed record batch starting at Base,
// or — when the follower needs a rebase — a full snapshot covering the log
// through SnapLSN.
type Msg struct {
	// Primary is the shipping server's id (which replica to ingest into).
	Primary int32
	// AckTo is the endpoint id of the primary's replication plane, where
	// async acks are sent.
	AckTo int32
	// Base is the LSN of the first record in Recs (unused for snapshots).
	Base uint64
	// Recs is the framed record batch (wal.EncodeRecords). Nil when the
	// message carries a snapshot instead.
	Recs []byte
	// SnapLSN is the log horizon covered by Snap.
	SnapLSN uint64
	// Snap is a rebase snapshot (wal.Checkpoint.Marshal), shipped when the
	// follower reported a gap, a sealed replica, or has no replica yet.
	Snap []byte
}

// Ack reports a follower's ingest horizon back to the primary.
type Ack struct {
	// Server is the follower's server id.
	Server int32
	// Primary identifies which replica the ack is about.
	Primary int32
	// Durable is the highest LSN the follower has applied contiguously.
	Durable uint64
	// NeedSync asks the primary to ship a rebase snapshot: the follower
	// saw an LSN gap it could not buffer, holds a sealed replica, or has
	// no replica for this primary at all.
	NeedSync bool
}

// SealReply answers REPL_SEAL: the replica's horizon and its state as a
// checkpoint, ready to install into the promoted server.
type SealReply struct {
	// Durable is the sealed replica's applied horizon (0: no replica).
	Durable uint64
	// Snap is the replica snapshot (wal.Checkpoint.Marshal); nil when the
	// follower has no replica for the requested primary.
	Snap []byte
}

func appendBlob(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func takeBlob(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("repl: truncated blob length")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+n {
		return nil, nil, fmt.Errorf("repl: truncated blob (want %d, have %d)", n, len(b)-4)
	}
	if n == 0 {
		return nil, b[4:], nil
	}
	return b[4 : 4+n], b[4+n:], nil
}

// Marshal encodes the message.
func (m *Msg) Marshal() []byte {
	buf := make([]byte, 0, 32+len(m.Recs)+len(m.Snap))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Primary))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.AckTo))
	buf = binary.LittleEndian.AppendUint64(buf, m.Base)
	buf = appendBlob(buf, m.Recs)
	buf = binary.LittleEndian.AppendUint64(buf, m.SnapLSN)
	buf = appendBlob(buf, m.Snap)
	return buf
}

// UnmarshalMsg decodes a shipped batch.
func UnmarshalMsg(b []byte) (*Msg, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("repl: truncated msg (%d bytes)", len(b))
	}
	m := &Msg{
		Primary: int32(binary.LittleEndian.Uint32(b)),
		AckTo:   int32(binary.LittleEndian.Uint32(b[4:])),
		Base:    binary.LittleEndian.Uint64(b[8:]),
	}
	var err error
	rest := b[16:]
	if m.Recs, rest, err = takeBlob(rest); err != nil {
		return nil, err
	}
	if len(rest) < 8 {
		return nil, fmt.Errorf("repl: truncated msg snap horizon")
	}
	m.SnapLSN = binary.LittleEndian.Uint64(rest)
	if m.Snap, _, err = takeBlob(rest[8:]); err != nil {
		return nil, err
	}
	return m, nil
}

// Marshal encodes the ack.
func (a *Ack) Marshal() []byte {
	buf := make([]byte, 0, 17)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Server))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Primary))
	buf = binary.LittleEndian.AppendUint64(buf, a.Durable)
	if a.NeedSync {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// UnmarshalAck decodes an ack.
func UnmarshalAck(b []byte) (*Ack, error) {
	if len(b) < 17 {
		return nil, fmt.Errorf("repl: truncated ack (%d bytes)", len(b))
	}
	return &Ack{
		Server:   int32(binary.LittleEndian.Uint32(b)),
		Primary:  int32(binary.LittleEndian.Uint32(b[4:])),
		Durable:  binary.LittleEndian.Uint64(b[8:]),
		NeedSync: b[16] != 0,
	}, nil
}

// Marshal encodes the seal reply.
func (r *SealReply) Marshal() []byte {
	buf := make([]byte, 0, 12+len(r.Snap))
	buf = binary.LittleEndian.AppendUint64(buf, r.Durable)
	buf = appendBlob(buf, r.Snap)
	return buf
}

// UnmarshalSealReply decodes a seal reply.
func UnmarshalSealReply(b []byte) (*SealReply, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("repl: truncated seal reply (%d bytes)", len(b))
	}
	r := &SealReply{Durable: binary.LittleEndian.Uint64(b)}
	var err error
	if r.Snap, _, err = takeBlob(b[8:]); err != nil {
		return nil, err
	}
	return r, nil
}
