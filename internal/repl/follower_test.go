package repl

import (
	"bytes"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/proto"
	"repro/internal/wal"
)

const testBlockSize = 64

// batch assigns consecutive LSNs from base to the given records.
func batch(base uint64, recs ...wal.Record) []wal.Record {
	for i := range recs {
		recs[i].LSN = base + uint64(i)
	}
	return recs
}

func mkfile(ino uint64) wal.Record {
	return wal.Record{Type: wal.RecInode, Ino: ino, Ftype: fsapi.TypeRegular, Mode: fsapi.Mode644, Nlink: 1}
}

func addmap(dir proto.InodeID, name string, target proto.InodeID) wal.Record {
	return wal.Record{Type: wal.RecAddMap, Dir: dir, Name: name, Target: target, Ftype: fsapi.TypeRegular}
}

func TestFollowerIngestBuildsSnapshot(t *testing.T) {
	f := NewFollower(0, testBlockSize)
	dir := proto.InodeID{Server: 0, Local: 1}
	need := f.Ingest(1, batch(1,
		mkfile(2),
		addmap(dir, "hello", proto.InodeID{Server: 0, Local: 2}),
		wal.Record{Type: wal.RecBlocks, Ino: 2, Blocks: []uint64{9}, Size: 5},
		wal.Record{Type: wal.RecWrite, Ino: 2, Off: 0, Data: []byte("hello")},
	))
	if need {
		t.Fatal("in-order ingest asked for a resync")
	}
	if f.Durable() != 4 {
		t.Fatalf("durable = %d, want 4", f.Durable())
	}
	c := f.Snapshot()
	if c.LSN != 4 || len(c.Inodes) != 1 || len(c.Dirs) != 1 {
		t.Fatalf("snapshot: LSN %d, %d inodes, %d dirs", c.LSN, len(c.Inodes), len(c.Dirs))
	}
	if c.Inodes[0].Size != 5 || !bytes.Equal(c.Inodes[0].Data[0][:5], []byte("hello")) {
		t.Fatalf("snapshot inode: size %d data %q", c.Inodes[0].Size, c.Inodes[0].Data[0][:5])
	}
	if c.Dirs[0].Ents[0].Name != "hello" {
		t.Fatalf("snapshot dirent: %+v", c.Dirs[0].Ents[0])
	}
}

// TestFollowerReIngestIdempotent re-ships an already-applied batch (what a
// recovered primary does when it retries the window): the horizon must not
// move and the snapshot must be byte-identical.
func TestFollowerReIngestIdempotent(t *testing.T) {
	f := NewFollower(0, testBlockSize)
	dir := proto.InodeID{Server: 0, Local: 1}
	b1 := batch(1, mkfile(2), addmap(dir, "x", proto.InodeID{Server: 0, Local: 2}))
	f.Ingest(1, b1)
	before := f.Snapshot().Marshal()

	if need := f.Ingest(1, b1); need {
		t.Fatal("re-ingest asked for a resync")
	}
	if f.Durable() != 2 {
		t.Fatalf("durable moved to %d on re-ingest", f.Durable())
	}
	if after := f.Snapshot().Marshal(); !bytes.Equal(before, after) {
		t.Fatal("re-ingest changed the snapshot")
	}

	// A batch that overlaps the horizon applies only its new suffix.
	b2 := batch(2, addmap(dir, "x", proto.InodeID{Server: 0, Local: 2}), addmap(dir, "y", proto.InodeID{Server: 0, Local: 3}))
	if need := f.Ingest(2, b2); need {
		t.Fatal("overlapping ingest asked for a resync")
	}
	if f.Durable() != 3 {
		t.Fatalf("durable = %d, want 3", f.Durable())
	}
}

// TestFollowerReordersStashedBatches delivers batches out of order (async
// ships under jitter) and checks the stash drains once the gap fills.
func TestFollowerReordersStashedBatches(t *testing.T) {
	f := NewFollower(0, testBlockSize)
	dir := proto.InodeID{Server: 0, Local: 1}
	b1 := batch(1, mkfile(2))
	b2 := batch(2, addmap(dir, "a", proto.InodeID{Server: 0, Local: 2}))
	b3 := batch(3, addmap(dir, "b", proto.InodeID{Server: 0, Local: 2}))

	if need := f.Ingest(3, b3); need {
		t.Fatal("future batch forced a resync")
	}
	if need := f.Ingest(2, b2); need {
		t.Fatal("future batch forced a resync")
	}
	if f.Durable() != 0 {
		t.Fatalf("durable = %d before the gap filled", f.Durable())
	}
	if need := f.Ingest(1, b1); need {
		t.Fatal("gap fill forced a resync")
	}
	if f.Durable() != 3 {
		t.Fatalf("durable = %d after drain, want 3", f.Durable())
	}
	if ents := f.Snapshot().Dirs[0].Ents; len(ents) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(ents))
	}
}

// TestFollowerStashOverflowAsksForRebase floods the stash past its bound:
// the follower must give up on reordering and demand a snapshot.
func TestFollowerStashOverflowAsksForRebase(t *testing.T) {
	f := NewFollower(0, testBlockSize)
	base := uint64(10)
	for i := 0; i < maxStash; i++ {
		if need := f.Ingest(base+uint64(i), batch(base+uint64(i), mkfile(100+uint64(i)))); need {
			t.Fatalf("resync demanded after only %d stashed batches", i+1)
		}
	}
	if need := f.Ingest(base+maxStash, batch(base+maxStash, mkfile(999))); !need {
		t.Fatal("stash overflow did not ask for a rebase")
	}
	if f.Durable() != 0 {
		t.Fatalf("durable = %d, overflow should not have applied anything", f.Durable())
	}
}

// TestFollowerSealFreezesHorizon pins the promotion contract: a sealed
// replica ignores further batches and keeps answering with the same
// snapshot, so a retried failover is idempotent.
func TestFollowerSealFreezesHorizon(t *testing.T) {
	f := NewFollower(0, testBlockSize)
	f.Ingest(1, batch(1, mkfile(2)))
	f.Seal()
	if !f.Sealed() {
		t.Fatal("not sealed")
	}
	before := f.Snapshot().Marshal()
	if need := f.Ingest(2, batch(2, mkfile(3))); need {
		t.Fatal("sealed ingest asked for resync")
	}
	if f.Durable() != 1 {
		t.Fatalf("sealed replica advanced to %d", f.Durable())
	}
	f.Seal() // idempotent
	if after := f.Snapshot().Marshal(); !bytes.Equal(before, after) {
		t.Fatal("sealed snapshot changed")
	}
}

// TestFollowerRebaseReplacesState installs a snapshot mid-life and checks
// the horizon and contents come from the snapshot, with stale stash
// entries discarded.
func TestFollowerRebaseReplacesState(t *testing.T) {
	f := NewFollower(0, testBlockSize)
	f.Ingest(1, batch(1, mkfile(2))) // state that must vanish
	f.Ingest(5, batch(5, mkfile(9))) // stashed, below the rebase horizon

	donor := NewFollower(0, testBlockSize)
	dir := proto.InodeID{Server: 0, Local: 1}
	donor.Ingest(1, batch(1,
		mkfile(7),
		addmap(dir, "kept", proto.InodeID{Server: 0, Local: 7}),
		wal.Record{Type: wal.RecBlocks, Ino: 7, Blocks: []uint64{3}, Size: 4},
		wal.Record{Type: wal.RecWrite, Ino: 7, Off: 0, Data: []byte("data")},
		mkfile(8),
		wal.Record{Type: wal.RecNlink, Ino: 8, Nlink: 0}, // reaped
	))
	c := donor.Snapshot()

	f.Rebase(c, 6)
	if f.Durable() != 6 {
		t.Fatalf("durable = %d after rebase, want 6", f.Durable())
	}
	got := f.Snapshot()
	if len(got.Inodes) != 1 || got.Inodes[0].Local != 7 {
		t.Fatalf("rebased inodes: %+v", got.Inodes)
	}
	if !bytes.Equal(got.Inodes[0].Data[0][:4], []byte("data")) {
		t.Fatalf("rebased data: %q", got.Inodes[0].Data[0][:4])
	}
	if len(f.stash) != 0 {
		t.Fatalf("stale stash survived the rebase: %v", f.stash)
	}

	// Ingest continues from the rebased horizon.
	if need := f.Ingest(7, batch(7, mkfile(11))); need {
		t.Fatal("post-rebase ingest asked for resync")
	}
	if f.Durable() != 7 {
		t.Fatalf("durable = %d, want 7", f.Durable())
	}
}

// TestFollowerBlockHandoverZeroFill mirrors the replay rule: a block that
// leaves one inode and enters another must read as zeros on the new owner,
// not leak the old contents.
func TestFollowerBlockHandoverZeroFill(t *testing.T) {
	f := NewFollower(0, testBlockSize)
	f.Ingest(1, batch(1,
		mkfile(2),
		wal.Record{Type: wal.RecBlocks, Ino: 2, Blocks: []uint64{5}, Size: 6},
		wal.Record{Type: wal.RecWrite, Ino: 2, Off: 0, Data: []byte("secret")},
		wal.Record{Type: wal.RecBlocks, Ino: 2, Blocks: nil, Size: 0}, // truncate: block 5 freed
		mkfile(3),
		wal.Record{Type: wal.RecBlocks, Ino: 3, Blocks: []uint64{5}, Size: 3}, // reused
	))
	c := f.Snapshot()
	for _, snap := range c.Inodes {
		if snap.Local == 3 {
			if len(snap.Data) != 1 || snap.Data[0] != nil {
				t.Fatalf("reused block leaked old contents: %q", snap.Data[0])
			}
			return
		}
	}
	t.Fatal("inode 3 missing from snapshot")
}

func TestModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{Off, Sync, Async} {
		got, ok := ParseMode(m.String())
		if !ok || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, ok)
		}
	}
	if _, ok := ParseMode("bogus"); ok {
		t.Fatal("ParseMode accepted garbage")
	}
}
