package repl

import (
	"sort"

	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Monitor is the control plane's failure detector: it pings each server's
// replication endpoint on a virtual-time cadence and suspects a server dead
// after a silence threshold. Pings are one-way sends with a shared reply
// queue — the monitor never blocks on a dead server — and pongs carry the
// responder's replication horizons, so the same beat that proves liveness
// also reports follower lag.
//
// The false-positive bound is structural: a live server answers a ping
// within one round trip, so as long as SuspectAfter exceeds the ping
// interval plus the worst fault-plan round trip (2 × MaxDelay jitter on
// top of propagation and service), a slow server is never suspected — only
// a dead one, whose pongs stop entirely. The monitor test pins this bound.
//
// Monitor methods are not goroutine-safe; the deployment drives them from
// its control plane only.
type Monitor struct {
	network  *msg.Network
	ep       *msg.Endpoint
	interval sim.Cycles
	timeout  sim.Cycles
	replies  *msg.Queue
	peers    map[int]*peer
	byEP     map[msg.EndpointID]int
}

type peer struct {
	ep        msg.EndpointID
	tracked   sim.Cycles // when tracking started (grace period base)
	lastPing  sim.Cycles
	lastHeard sim.Cycles
	pinged    bool
	heard     bool
}

// NewMonitor builds a failure detector that pings from the given endpoint.
func NewMonitor(network *msg.Network, ep *msg.Endpoint, cfg Config) *Monitor {
	cfg = cfg.Normalized()
	return &Monitor{
		network:  network,
		ep:       ep,
		interval: cfg.HeartbeatEvery,
		timeout:  cfg.SuspectAfter,
		replies:  msg.NewQueue(),
		peers:    make(map[int]*peer),
		byEP:     make(map[msg.EndpointID]int),
	}
}

// Track adds a server's replication endpoint to the beat set.
func (m *Monitor) Track(server int, ep msg.EndpointID, now sim.Cycles) {
	m.peers[server] = &peer{ep: ep, tracked: now}
	m.byEP[ep] = server
}

// Tick advances the detector to virtual time now: due pings go out and
// arrived pongs are drained. It returns the number of pings sent.
func (m *Monitor) Tick(now sim.Cycles) int {
	sent := 0
	for _, p := range m.peers {
		if p.pinged && now-p.lastPing < m.interval {
			continue
		}
		payload := (&proto.Request{Op: proto.OpPing}).Marshal()
		if _, err := m.network.Send(m.ep, p.ep, proto.KindRequest, payload, now, m.replies); err == nil {
			p.lastPing = now
			p.pinged = true
			sent++
		}
	}
	if sent > 0 {
		// Park the detector's lane between beats: pings go to ungated
		// replication inboxes and pongs come back on a reply queue, so the
		// lane holds no ordering obligation — left pinned at the last ping's
		// send time it would wedge the parallel engine's gate.
		m.network.GateIdle(m.ep.ID)
	}
	m.drain()
	return sent
}

// drain consumes arrived pongs without blocking.
func (m *Monitor) drain() {
	for {
		env, ok := m.replies.TryPop()
		if !ok {
			return
		}
		id, ok := m.byEP[env.Src]
		if !ok {
			continue
		}
		p := m.peers[id]
		if env.ArriveAt > p.lastHeard {
			p.lastHeard = env.ArriveAt
		}
		p.heard = true
	}
}

// Suspected returns the servers (sorted) whose silence exceeds the
// threshold at virtual time now. A server is silent from its last pong —
// or, if it never answered, from when tracking started — and is only
// suspected once it has actually been pinged.
func (m *Monitor) Suspected(now sim.Cycles) []int {
	m.drain()
	var out []int
	for id, p := range m.peers {
		if !p.pinged {
			continue
		}
		base := p.tracked
		if p.heard {
			base = p.lastHeard
		}
		if now > base && now-base > m.timeout {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// LastHeard returns the virtual time of the last pong from server, and
// whether one was ever heard.
func (m *Monitor) LastHeard(server int) (sim.Cycles, bool) {
	m.drain()
	p, ok := m.peers[server]
	if !ok || !p.heard {
		return 0, false
	}
	return p.lastHeard, true
}
