// Package repl is Hare's shard-replication layer: primary → follower
// shipping of write-ahead-log records so a crashed server can be failed
// over by promoting a warm standby instead of replaying its log.
//
// The paper scopes availability out entirely; PR 1's WAL closed the
// durability gap but recovery still stalls every client routed to the
// crashed server for the full log replay. This package closes the
// availability gap with the smallest mechanism that composes with what
// already exists:
//
//   - The primary ships the exact CRC-framed record batches its log
//     flushes (wal.EncodeRecords) to one follower, piggybacked on group
//     commit. Records are state assignments, so the follower's ingest is
//     idempotent and a re-shipped batch is harmless.
//   - The Follower state machine mirrors the server's replay rules
//     (durability.go applyRecord) against its own shadow of the primary's
//     state — inodes, directory shards, dead-directory tombstones, and
//     per-block file contents — and tracks the durable horizon it has
//     applied, which it acks back to the primary.
//   - Sync mode holds each client reply until the follower acked the
//     request's records (no acknowledged write can be lost by promotion);
//     async mode ships without waiting and bounds the unacked window with
//     a blocking flush when the follower lags too far.
//   - Failover seals the follower, converts its shadow state into a
//     wal.Checkpoint, and installs that snapshot into the crashed
//     primary's server object under a bumped placement epoch — clients
//     reroute with the same EEPOCH refresh they already use for shard
//     migration (DESIGN.md §12).
//
// Servers never talk to each other on their request planes: replication
// traffic travels on a dedicated per-server replication endpoint served by
// its own goroutine, so a follower can ack while its request loop is busy
// and a sync-mode primary can never deadlock against its own follower ring.
package repl

import "repro/internal/sim"

// Mode selects the replication discipline.
type Mode uint8

// Replication modes.
const (
	// Off disables replication entirely: no follower endpoints, no
	// heartbeats, zero extra messages.
	Off Mode = iota
	// Sync holds every client reply until the follower has acked the
	// reply's log records. Promotion never loses an acknowledged write.
	Sync
	// Async ships record batches without waiting for acks. The unacked
	// window is bounded: when it exceeds Config.Window records the next
	// ship blocks until the follower catches up, so promotion loses at
	// most one window of acknowledged writes.
	Async
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Sync:
		return "sync"
	case Async:
		return "async"
	default:
		return "mode(?)"
	}
}

// ParseMode is the inverse of String; unknown names parse as Off=false.
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "off":
		return Off, true
	case "sync":
		return Sync, true
	case "async":
		return Async, true
	default:
		return Off, false
	}
}

// DefaultWindow is the async-mode unacked-record bound when the config
// leaves it zero.
const DefaultWindow = 64

// DefaultHeartbeatEvery is the virtual-time ping cadence of the failure
// detector (≈ 50µs at the simulator's cycle scale: frequent enough that a
// chaos round observes several beats, cheap enough to disappear in the
// message economy).
const DefaultHeartbeatEvery sim.Cycles = 120_000

// DefaultSuspectAfter is the silence threshold before a server is
// suspected dead. It must exceed one heartbeat interval plus the worst
// round trip a fault plan can inflict (2 × MaxDelay jitter + service);
// the monitor test pins that a merely-slow server under maximum jitter
// never crosses it.
const DefaultSuspectAfter sim.Cycles = 600_000

// Config is the deployment-level replication knob (core.Config.Replication).
type Config struct {
	// Mode selects off / sync / async shipping.
	Mode Mode
	// Window bounds async mode's unacked records (0 = DefaultWindow).
	Window int
	// HeartbeatEvery is the failure detector's ping cadence
	// (0 = DefaultHeartbeatEvery).
	HeartbeatEvery sim.Cycles
	// SuspectAfter is the silence threshold for suspecting a server dead
	// (0 = DefaultSuspectAfter).
	SuspectAfter sim.Cycles
}

// Enabled reports whether replication is on.
func (c Config) Enabled() bool { return c.Mode != Off }

// Normalized fills zero fields with defaults.
func (c Config) Normalized() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	return c
}
