package repl

import (
	"sort"

	"repro/internal/fsapi"
	"repro/internal/proto"
	"repro/internal/wal"
)

// maxStash bounds how many out-of-order batches a follower buffers while a
// delayed batch is still in flight. Overflow abandons reordering and asks
// the primary for a rebase snapshot instead — the same path that handles a
// genuinely lost message.
const maxStash = 32

// fnode is the follower's shadow of one primary inode. It mirrors exactly
// the fields the server's log replay reconstructs; volatile runtime state
// (descriptor counts, versions, rmdir marks) is absent by construction
// because it is never logged.
type fnode struct {
	local  uint64
	ftype  fsapi.FileType
	mode   fsapi.Mode
	size   int64
	nlink  int32
	dist   bool
	blocks []uint64
}

// fent is one shadow directory entry.
type fent struct {
	target proto.InodeID
	ftype  fsapi.FileType
	dist   bool
}

// Follower is the warm standby of one primary: a state machine that ingests
// the primary's shipped WAL batches and can convert itself into a
// wal.Checkpoint for promotion. Its apply rules deliberately mirror the
// server's own replay (durability.go applyRecord) — promotion must land on
// exactly the state a WAL replay of the acked prefix would have produced.
//
// A Follower is confined to its owning server's replication goroutine; it
// needs no locking.
type Follower struct {
	primary   int
	blockSize int

	sealed bool
	next   uint64 // next LSN expected; durable horizon is next-1

	nextIno uint64
	epoch   uint64
	pmap    []byte

	inodes map[uint64]*fnode
	dirs   map[proto.InodeID]map[string]fent
	dead   map[proto.InodeID]bool
	// chunks shadows the primary's DRAM partition: block id → contents.
	// Only blocks touched by server-path writes have entries; absent
	// blocks read as zeros, matching the allocator's zero-on-hand-over.
	chunks map[uint64][]byte

	// stash holds out-of-order batches (keyed by base LSN) until the gap
	// in front of them arrives.
	stash map[uint64][]wal.Record
}

// NewFollower builds an empty replica of the given primary, expecting the
// log from LSN 1 (a replica created mid-life is populated by a rebase
// snapshot instead).
func NewFollower(primary, blockSize int) *Follower {
	return &Follower{
		primary:   primary,
		blockSize: blockSize,
		next:      1,
		nextIno:   2,
		inodes:    make(map[uint64]*fnode),
		dirs:      make(map[proto.InodeID]map[string]fent),
		dead:      make(map[proto.InodeID]bool),
		chunks:    make(map[uint64][]byte),
		stash:     make(map[uint64][]wal.Record),
	}
}

// Primary returns the id of the server this replica shadows.
func (f *Follower) Primary() int { return f.primary }

// Durable returns the highest LSN applied contiguously.
func (f *Follower) Durable() uint64 { return f.next - 1 }

// Sealed reports whether the replica stopped ingesting for promotion.
func (f *Follower) Sealed() bool { return f.sealed }

// Seal stops ingestion. Idempotent: a retried failover seals again and gets
// the same horizon and snapshot.
func (f *Follower) Seal() { f.sealed = true }

// Ingest applies a shipped batch whose first record has LSN base. It
// returns needSync=true when the replica cannot make progress from batches
// alone — a gap it could not buffer — and the primary must ship a rebase
// snapshot. Re-ingesting an already-applied batch is a no-op (records are
// state assignments and the LSN window filters them before apply), so
// duplicate ships after a primary recovery are harmless.
func (f *Follower) Ingest(base uint64, recs []wal.Record) (needSync bool) {
	if f.sealed || len(recs) == 0 {
		return false
	}
	if base+uint64(len(recs)) <= f.next {
		return false // entirely below the horizon: already applied
	}
	if base > f.next {
		// A batch from the future: an earlier batch is still in flight
		// (message jitter reorders one-way ships). Buffer it unless the
		// stash says the gap is never going to fill.
		if len(f.stash) >= maxStash {
			f.stash = make(map[uint64][]wal.Record)
			return true
		}
		f.stash[base] = recs
		return false
	}
	f.applyFrom(base, recs)
	// The arrival may have filled the gap in front of stashed batches.
	for {
		sbase, ok := f.popStash()
		if !ok {
			return false
		}
		f.applyFrom(sbase, f.stashTake(sbase))
	}
}

// popStash finds a stashed batch that now overlaps the horizon.
func (f *Follower) popStash() (uint64, bool) {
	for base, recs := range f.stash {
		if base <= f.next && base+uint64(len(recs)) > f.next {
			return base, true
		}
		if base+uint64(len(recs)) <= f.next {
			delete(f.stash, base) // obsolete: fully below the horizon
		}
	}
	return 0, false
}

func (f *Follower) stashTake(base uint64) []wal.Record {
	recs := f.stash[base]
	delete(f.stash, base)
	return recs
}

// applyFrom applies the portion of recs above the current horizon.
func (f *Follower) applyFrom(base uint64, recs []wal.Record) {
	for i, r := range recs {
		lsn := base + uint64(i)
		if lsn < f.next {
			continue
		}
		f.apply(r)
		f.next = lsn + 1
	}
}

// Rebase replaces the replica's state with a snapshot covering the log
// through lsn. Stale stashed batches below the new horizon are dropped.
func (f *Follower) Rebase(c *wal.Checkpoint, lsn uint64) {
	if f.sealed {
		return
	}
	f.inodes = make(map[uint64]*fnode)
	f.dirs = make(map[proto.InodeID]map[string]fent)
	f.dead = make(map[proto.InodeID]bool)
	f.chunks = make(map[uint64][]byte)
	f.nextIno = 2
	if c.NextIno > f.nextIno {
		f.nextIno = c.NextIno
	}
	f.epoch = c.Epoch
	f.pmap = c.PlaceMap
	for i := range c.Inodes {
		snap := &c.Inodes[i]
		ino := &fnode{
			local:  snap.Local,
			ftype:  snap.Ftype,
			mode:   snap.Mode,
			size:   snap.Size,
			nlink:  snap.Nlink,
			dist:   snap.Dist,
			blocks: append([]uint64(nil), snap.Blocks...),
		}
		for j, b := range ino.blocks {
			if j < len(snap.Data) && snap.Data[j] != nil {
				f.chunks[b] = append([]byte(nil), snap.Data[j]...)
			}
		}
		f.inodes[ino.local] = ino
		if ino.local >= f.nextIno {
			f.nextIno = ino.local + 1
		}
	}
	for i := range c.Dirs {
		ds := &c.Dirs[i]
		sh := f.shard(ds.Dir)
		for _, ent := range ds.Ents {
			sh[ent.Name] = fent{target: ent.Target, ftype: ent.Ftype, dist: ent.Dist}
		}
	}
	for _, dir := range c.DeadDirs {
		f.dead[dir] = true
	}
	f.next = lsn + 1
	for base, recs := range f.stash {
		if base+uint64(len(recs)) <= f.next {
			delete(f.stash, base)
		}
	}
}

func (f *Follower) shard(dir proto.InodeID) map[string]fent {
	sh, ok := f.dirs[dir]
	if !ok {
		sh = make(map[string]fent)
		f.dirs[dir] = sh
	}
	return sh
}

// apply mirrors the server's applyRecord, assignment for assignment. The
// one structural difference: block contents land in the follower's shadow
// chunks instead of DRAM, because the primary's partition is not the
// follower's to write — promotion writes them back through the normal
// lost-memory checkpoint load.
func (f *Follower) apply(r wal.Record) {
	switch r.Type {
	case wal.RecInode:
		if r.Ino >= f.nextIno {
			f.nextIno = r.Ino + 1
		}
		if r.Ftype == fsapi.TypePipe {
			// Pipe state is volatile; the record only reserves the number.
			return
		}
		f.inodes[r.Ino] = &fnode{
			local: r.Ino,
			ftype: r.Ftype,
			mode:  r.Mode,
			nlink: r.Nlink,
			dist:  r.Dist,
		}
	case wal.RecNlink:
		ino, ok := f.inodes[r.Ino]
		if !ok {
			return
		}
		ino.nlink = r.Nlink
		if ino.nlink <= 0 {
			delete(f.inodes, r.Ino)
		}
	case wal.RecSize:
		if ino, ok := f.inodes[r.Ino]; ok && r.Size > ino.size {
			ino.size = r.Size
		}
	case wal.RecBlocks:
		ino, ok := f.inodes[r.Ino]
		if !ok {
			return
		}
		// Blocks newly entering this inode's list start zeroed (absent
		// from chunks = zeros), mirroring the replay-side zero-fill rule;
		// retained blocks keep their shipped contents.
		had := make(map[uint64]bool, len(ino.blocks))
		for _, b := range ino.blocks {
			had[b] = true
		}
		for _, b := range r.Blocks {
			if !had[b] {
				delete(f.chunks, b)
			}
		}
		ino.blocks = append(ino.blocks[:0], r.Blocks...)
		ino.size = r.Size
	case wal.RecWrite:
		ino, ok := f.inodes[r.Ino]
		if !ok {
			return
		}
		f.writeData(ino, r.Off, r.Data)
		if end := r.Off + int64(len(r.Data)); end > ino.size {
			ino.size = end
		}
	case wal.RecAddMap:
		f.shard(r.Dir)[r.Name] = fent{target: r.Target, ftype: r.Ftype, dist: r.Dist}
	case wal.RecRmMap:
		if sh, ok := f.dirs[r.Dir]; ok {
			delete(sh, r.Name)
		}
	case wal.RecDirKill:
		delete(f.dirs, r.Dir)
		f.dead[r.Dir] = true
	case wal.RecEpoch:
		f.epoch = r.Epoch
		f.pmap = r.Data
	}
}

// writeData lays file bytes into the shadow chunks, splitting across the
// inode's block list the way the server's writeData splits across DRAM.
func (f *Follower) writeData(ino *fnode, off int64, data []byte) {
	bs := int64(f.blockSize)
	for len(data) > 0 {
		idx := off / bs
		if idx >= int64(len(ino.blocks)) {
			return // write beyond the logged block list: nothing to hold it
		}
		b := ino.blocks[idx]
		boff := off % bs
		n := bs - boff
		if int64(len(data)) < n {
			n = int64(len(data))
		}
		chunk := f.chunks[b]
		if chunk == nil {
			chunk = make([]byte, f.blockSize)
			f.chunks[b] = chunk
		}
		copy(chunk[boff:boff+n], data[:n])
		off += n
		data = data[n:]
	}
}

// Snapshot converts the replica into a checkpoint of the primary's durable
// state at the replica's horizon, in the exact shape the server's own
// buildCheckpoint produces — loadCheckpoint installs it unmodified at
// promotion. Output is sorted for determinism.
func (f *Follower) Snapshot() *wal.Checkpoint {
	c := &wal.Checkpoint{
		LSN:      f.Durable(),
		NextIno:  f.nextIno,
		Epoch:    f.epoch,
		PlaceMap: f.pmap,
	}
	locals := make([]uint64, 0, len(f.inodes))
	for l := range f.inodes {
		locals = append(locals, l)
	}
	sort.Slice(locals, func(i, j int) bool { return locals[i] < locals[j] })
	for _, l := range locals {
		ino := f.inodes[l]
		if ino.nlink <= 0 {
			continue
		}
		snap := wal.InodeSnap{
			Local:  ino.local,
			Ftype:  ino.ftype,
			Mode:   ino.mode,
			Size:   ino.size,
			Nlink:  ino.nlink,
			Dist:   ino.dist,
			Blocks: append([]uint64(nil), ino.blocks...),
		}
		for _, b := range ino.blocks {
			if chunk, ok := f.chunks[b]; ok {
				snap.Data = append(snap.Data, append([]byte(nil), chunk...))
			} else {
				snap.Data = append(snap.Data, nil)
			}
		}
		c.Inodes = append(c.Inodes, snap)
	}
	dirIDs := make([]proto.InodeID, 0, len(f.dirs))
	for dir := range f.dirs {
		dirIDs = append(dirIDs, dir)
	}
	sort.Slice(dirIDs, func(i, j int) bool { return inodeLess(dirIDs[i], dirIDs[j]) })
	for _, dir := range dirIDs {
		sh := f.dirs[dir]
		ds := wal.DirSnap{Dir: dir}
		names := make([]string, 0, len(sh))
		for name := range sh {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ent := sh[name]
			ds.Ents = append(ds.Ents, wal.DirEntSnap{
				Name:   name,
				Target: ent.target,
				Ftype:  ent.ftype,
				Dist:   ent.dist,
			})
		}
		c.Dirs = append(c.Dirs, ds)
	}
	for dir := range f.dead {
		c.DeadDirs = append(c.DeadDirs, dir)
	}
	sort.Slice(c.DeadDirs, func(i, j int) bool { return inodeLess(c.DeadDirs[i], c.DeadDirs[j]) })
	return c
}

func inodeLess(a, b proto.InodeID) bool {
	if a.Server != b.Server {
		return a.Server < b.Server
	}
	return a.Local < b.Local
}
