package ramfs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/sim"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(sim.NewMachine(sim.TopologyForCores(4), sim.DefaultCostModel()))
}

func TestRamfsBasicFileLifecycle(t *testing.T) {
	fs := newFS(t)
	c := fs.NewClient(0)

	fd, err := c.Open("/f", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd, []byte("hello ramfs")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Seek(fd, 0, fsapi.SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := c.Read(fd, buf)
	if err != nil || string(buf[:n]) != "hello ramfs" {
		t.Fatalf("read back %q, %v", buf[:n], err)
	}
	st, err := c.Fstat(fd)
	if err != nil || st.Size != 11 || st.Type != fsapi.TypeRegular {
		t.Fatalf("fstat %+v %v", st, err)
	}
	if err := c.Ftruncate(fd, 5); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.Fstat(fd); st.Size != 5 {
		t.Fatalf("size after truncate = %d", st.Size)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/f"); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Fatalf("stat after unlink: %v", err)
	}
}

func TestRamfsDirectories(t *testing.T) {
	fs := newFS(t)
	c := fs.NewClient(0)
	if err := c.Mkdir("/d", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/d", fsapi.MkdirOpt{}); !fsapi.IsErrno(err, fsapi.EEXIST) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	for i := 0; i < 5; i++ {
		fd, err := c.Open(fmt.Sprintf("/d/f%d", i), fsapi.OCreate, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		c.Close(fd)
	}
	ents, err := c.ReadDir("/d")
	if err != nil || len(ents) != 5 {
		t.Fatalf("readdir: %d %v", len(ents), err)
	}
	if err := c.Rmdir("/d"); !fsapi.IsErrno(err, fsapi.ENOTEMPTY) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := c.Rename("/d/f0", "/d/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/d/renamed"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"renamed", "f1", "f2", "f3", "f4"} {
		if err := c.Unlink("/d/" + name); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
}

func TestRamfsSharedDescriptorsAcrossFork(t *testing.T) {
	fs := newFS(t)
	parent := fs.NewClient(0)
	fd, _ := parent.Open("/shared", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	parent.Write(fd, []byte("0123456789"))
	parent.Seek(fd, 0, fsapi.SeekSet)

	childFS, err := parent.CloneForFork(1)
	if err != nil {
		t.Fatal(err)
	}
	child := childFS.(*Client)
	buf := make([]byte, 4)
	parent.Read(fd, buf)
	n, _ := child.Read(fd, buf)
	if string(buf[:n]) != "4567" {
		t.Fatalf("child read %q; offset not shared", buf[:n])
	}
	child.CloseAll()
	if _, err := parent.Read(fd, buf); err != nil {
		t.Fatalf("parent read after child exit: %v", err)
	}
	parent.CloseAll()
}

func TestRamfsPipeBetweenForkedProcesses(t *testing.T) {
	fs := newFS(t)
	parent := fs.NewClient(0)
	r, w, err := parent.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	childFS, _ := parent.CloneForFork(2)
	child := childFS.(*Client)

	got := make(chan string, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := child.Read(r, buf)
		got <- string(buf[:n])
	}()
	if _, err := parent.Write(w, []byte("through the pipe")); err != nil {
		t.Fatal(err)
	}
	if s := <-got; s != "through the pipe" {
		t.Fatalf("child read %q", s)
	}
	// EOF once every write end (parent's and child's inherited copy) closes.
	parent.Close(w)
	child.Close(w)
	buf := make([]byte, 4)
	if n, err := child.Read(r, buf); err != nil || n != 0 {
		t.Fatalf("EOF read: %d %v", n, err)
	}
	// EPIPE once all readers are gone.
	r2, w2, _ := parent.Pipe()
	parent.Close(r2)
	if _, err := parent.Write(w2, []byte("x")); !fsapi.IsErrno(err, fsapi.EPIPE) {
		t.Fatalf("write to readerless pipe: %v", err)
	}
}

func TestRamfsPermissionAndErrorPaths(t *testing.T) {
	fs := newFS(t)
	c := fs.NewClient(0)
	if _, err := c.Open("/ro", fsapi.OCreate, fsapi.Mode(0o400)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("/ro", fsapi.OWrOnly, 0); !fsapi.IsErrno(err, fsapi.EACCES) {
		t.Fatalf("EACCES expected, got %v", err)
	}
	if _, err := c.Open("/missing", fsapi.ORdOnly, 0); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Fatalf("ENOENT expected, got %v", err)
	}
	if _, err := c.Read(fsapi.FD(55), nil); !fsapi.IsErrno(err, fsapi.EBADF) {
		t.Fatalf("EBADF expected, got %v", err)
	}
	if err := c.Unlink("/"); !fsapi.IsErrno(err, fsapi.EINVAL) {
		t.Fatalf("unlink root: %v", err)
	}
	if err := c.Chdir("/ro"); !fsapi.IsErrno(err, fsapi.ENOTDIR) {
		t.Fatalf("chdir to file: %v", err)
	}
}

func TestRamfsRelativePathsAndDup(t *testing.T) {
	fs := newFS(t)
	c := fs.NewClient(0)
	c.Mkdir("/w", fsapi.MkdirOpt{})
	if err := c.Chdir("/w"); err != nil {
		t.Fatal(err)
	}
	fd, err := c.Open("rel", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/w/rel"); err != nil {
		t.Fatal(err)
	}
	c.Write(fd, []byte("abcdef"))
	c.Seek(fd, 0, fsapi.SeekSet)
	dup, err := c.Dup(fd)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	c.Read(fd, buf)
	n, _ := c.Read(dup, buf)
	if string(buf[:n]) != "def" {
		t.Fatalf("dup offset not shared: %q", buf[:n])
	}
	if c.Getcwd() != "/w" {
		t.Fatalf("cwd = %q", c.Getcwd())
	}
}

func TestRamfsDirCriticalSerializesInVirtualTime(t *testing.T) {
	fs := newFS(t)
	a := fs.NewClient(0)
	b := fs.NewClient(1)
	// Two clients create files in the same directory: the per-directory
	// lock serializes them in virtual time even though they run
	// concurrently.
	a.Mkdir("/contend", fsapi.MkdirOpt{})
	for i := 0; i < 50; i++ {
		fd, err := a.Open(fmt.Sprintf("/contend/a%d", i), fsapi.OCreate, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		a.Close(fd)
		fd, err = b.Open(fmt.Sprintf("/contend/b%d", i), fsapi.OCreate, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		b.Close(fd)
	}
	lockCost := fs.machine.Cost.RamfsLockOp
	minSerial := sim.Cycles(100) * lockCost
	if a.Clock() < minSerial/2 && b.Clock() < minSerial/2 {
		t.Fatalf("directory lock contention not reflected in virtual time (a=%d b=%d)", a.Clock(), b.Clock())
	}
}

func TestRamfsWriteExtendsAndPreadPwrite(t *testing.T) {
	fs := newFS(t)
	c := fs.NewClient(0)
	fd, _ := c.Open("/data", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	if _, err := c.Pwrite(fd, []byte("tail"), 100); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Fstat(fd)
	if st.Size != 104 {
		t.Fatalf("sparse write size = %d", st.Size)
	}
	buf := make([]byte, 4)
	if n, err := c.Pread(fd, buf, 100); err != nil || !bytes.Equal(buf[:n], []byte("tail")) {
		t.Fatalf("pread %q %v", buf[:n], err)
	}
	// The hole reads as zeros.
	if n, _ := c.Pread(fd, buf, 50); n != 4 || !bytes.Equal(buf, []byte{0, 0, 0, 0}) {
		t.Fatalf("hole read %v", buf)
	}
}
