// Package ramfs implements the cache-coherent shared-memory baseline file
// system used for comparison in the paper's evaluation (Linux ramfs/tmpfs in
// Figures 8 and 15).
//
// It is a conventional in-memory file system: one shared tree of inodes
// protected by per-inode locks, shared open-file descriptions, and no
// message passing. Virtual time is charged per operation from the cost
// model's Ramfs* entries, and directory-modifying operations serialize on a
// per-directory lock resource — which is exactly the contention point that
// limits Linux's scalability on create-heavy shared directories (§5.5).
//
// This baseline requires cache-coherent shared memory and therefore could
// not run on Hare's target hardware; it exists to answer the paper's last
// evaluation question (what does Hare give up versus a traditional CC-SMP
// file system?).
package ramfs

import (
	"sync"
	"sync/atomic"

	"repro/internal/fsapi"
	"repro/internal/sim"
)

// FS is the shared file system state (the "kernel" side).
type FS struct {
	machine *sim.Machine
	root    *node
	nextIno atomic.Uint64

	// DataCosts disables per-byte data-copy charging when false (used when
	// the NFS baseline reuses this tree as its backing store and charges
	// its own transfer costs).
	DataCosts bool
}

// node is one inode in the shared tree.
type node struct {
	ino   uint64
	ftype fsapi.FileType
	mode  fsapi.Mode

	mu       sync.Mutex
	lockRes  lockResource
	children map[string]*node
	data     []byte
	nlink    int
	openRefs int

	pipe *pipeBuf
}

// lockResource models the virtual-time serialization of a kernel lock: a
// request that is ready at time r and holds the lock for h cycles completes
// at max(r, lastRelease) + h.
type lockResource struct {
	mu   sync.Mutex
	free sim.Cycles
}

// acquire reserves the lock for hold cycles starting no earlier than ready
// and returns the completion (release) time.
func (l *lockResource) acquire(ready, hold sim.Cycles) sim.Cycles {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := ready
	if l.free > start {
		start = l.free
	}
	end := start + hold
	l.free = end
	return end
}

// New creates an empty ramfs over the given machine model.
func New(machine *sim.Machine) *FS {
	fs := &FS{machine: machine, DataCosts: true}
	fs.nextIno.Store(2)
	fs.root = &node{
		ino:      1,
		ftype:    fsapi.TypeDir,
		mode:     fsapi.Mode755,
		children: make(map[string]*node),
		nlink:    1,
	}
	return fs
}

// Machine returns the machine model the file system charges time against.
func (fs *FS) Machine() *sim.Machine { return fs.machine }

func (fs *FS) allocIno() uint64 { return fs.nextIno.Add(1) - 1 }

// newNode creates a detached node of the given type.
func (fs *FS) newNode(ftype fsapi.FileType, mode fsapi.Mode) *node {
	n := &node{ino: fs.allocIno(), ftype: ftype, mode: mode, nlink: 1}
	if ftype == fsapi.TypeDir {
		n.children = make(map[string]*node)
	}
	if ftype == fsapi.TypePipe {
		n.pipe = newPipeBuf()
	}
	return n
}

// lookup walks an absolute path and returns the node, or ENOENT/ENOTDIR.
func (fs *FS) lookup(abs string) (*node, error) {
	cur := fs.root
	for _, comp := range fsapi.SplitPath(abs) {
		if cur.ftype != fsapi.TypeDir {
			return nil, fsapi.ENOTDIR
		}
		cur.mu.Lock()
		next, ok := cur.children[comp]
		cur.mu.Unlock()
		if !ok {
			return nil, fsapi.ENOENT
		}
		cur = next
	}
	return cur, nil
}

// lookupParent returns the parent directory node and final component name.
func (fs *FS) lookupParent(abs string) (*node, string, error) {
	dir, base := fsapi.SplitDirBase(abs)
	if base == "." || !fsapi.ValidName(base) {
		return nil, "", fsapi.EINVAL
	}
	parent, err := fs.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if parent.ftype != fsapi.TypeDir {
		return nil, "", fsapi.ENOTDIR
	}
	return parent, base, nil
}

// pipeBuf is a classic bounded pipe buffer with condition variables; virtual
// wake-up times are propagated through lastActivity.
type pipeBuf struct {
	mu           sync.Mutex
	cond         *sync.Cond
	buf          []byte
	readers      int
	writers      int
	lastActivity sim.Cycles
}

const pipeCapacity = 64 * 1024

func newPipeBuf() *pipeBuf {
	p := &pipeBuf{readers: 1, writers: 1}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// write appends data (blocking while full), returning bytes written and the
// virtual time at which the write completed.
func (p *pipeBuf) write(data []byte, now sim.Cycles) (int, sim.Cycles, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	written := 0
	for written < len(data) {
		if p.readers == 0 {
			p.cond.Broadcast()
			if written > 0 {
				return written, maxCycles(now, p.lastActivity), nil
			}
			return 0, maxCycles(now, p.lastActivity), fsapi.EPIPE
		}
		space := pipeCapacity - len(p.buf)
		if space == 0 {
			p.cond.Wait()
			continue
		}
		n := len(data) - written
		if n > space {
			n = space
		}
		p.buf = append(p.buf, data[written:written+n]...)
		written += n
		if p.lastActivity < now {
			p.lastActivity = now
		}
		p.cond.Broadcast()
	}
	return written, maxCycles(now, p.lastActivity), nil
}

// read removes up to len(dst) bytes (blocking while empty and writers
// remain), returning bytes read and the virtual completion time.
func (p *pipeBuf) read(dst []byte, now sim.Cycles) (int, sim.Cycles) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 {
		if p.writers == 0 {
			return 0, maxCycles(now, p.lastActivity)
		}
		p.cond.Wait()
	}
	n := copy(dst, p.buf)
	p.buf = p.buf[n:]
	if p.lastActivity < now {
		p.lastActivity = now
	}
	p.cond.Broadcast()
	return n, maxCycles(now, p.lastActivity)
}

func (p *pipeBuf) closeEnd(write bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if write {
		if p.writers > 0 {
			p.writers--
		}
	} else {
		if p.readers > 0 {
			p.readers--
		}
	}
	p.cond.Broadcast()
}

func maxCycles(a, b sim.Cycles) sim.Cycles {
	if a > b {
		return a
	}
	return b
}
