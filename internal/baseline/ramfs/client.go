package ramfs

import (
	"sort"
	"sync"

	"repro/internal/fsapi"
	"repro/internal/sim"
)

// Client is one process's view of the shared ramfs. It implements
// fsapi.Client plus the Clocked interface used by the process layer.
type Client struct {
	fs    *FS
	core  int
	clock sim.Clock
	cwd   string

	fds    map[fsapi.FD]*openFile
	nextFD fsapi.FD
}

// openFile is a shared open-file description (offsets are shared across
// fork, exactly as on a cache-coherent kernel).
type openFile struct {
	mu     sync.Mutex
	node   *node
	flags  int
	offset int64
	refs   int

	pipe      bool
	pipeWrite bool
}

// NewClient attaches a new process to the file system on the given core.
func (fs *FS) NewClient(core int) *Client {
	return &Client{
		fs:     fs,
		core:   core,
		cwd:    "/",
		fds:    make(map[fsapi.FD]*openFile),
		nextFD: 3,
	}
}

// Clock returns the client's virtual time.
func (c *Client) Clock() sim.Cycles { return c.clock.Now() }

// AdvanceClock moves the client's virtual clock forward.
func (c *Client) AdvanceClock(t sim.Cycles) { c.clock.AdvanceTo(t) }

// Compute charges CPU work on the client's core.
func (c *Client) Compute(d sim.Cycles) {
	end := c.fs.machine.Execute(c.core, c.clock.Now(), d)
	c.clock.AdvanceTo(end)
}

// Core returns the core this client runs on.
func (c *Client) Core() int { return c.core }

// charge accounts local CPU time.
func (c *Client) charge(d sim.Cycles) {
	end := c.fs.machine.Execute(c.core, c.clock.Now(), d)
	c.clock.AdvanceTo(end)
}

// op charges the fixed per-syscall cost of the shared-memory file system.
func (c *Client) op() { c.charge(c.fs.machine.Cost.RamfsOp) }

// dirCritical charges the serialized critical section of a directory
// operation on the given directory node.
func (c *Client) dirCritical(dir *node) {
	end := dir.lockRes.acquire(c.clock.Now(), c.fs.machine.Cost.RamfsLockOp)
	c.clock.AdvanceTo(end)
}

// dataCost charges the per-byte cost of copying file data.
func (c *Client) dataCost(n int) {
	if !c.fs.DataCosts {
		return
	}
	c.charge(sim.LineCost(c.fs.machine.Cost.RamfsPerLine, n))
}

func (c *Client) absPath(path string) string {
	if !fsapi.IsAbs(path) {
		path = fsapi.Join(c.cwd, path)
		if !fsapi.IsAbs(path) {
			path = "/" + path
		}
	}
	return fsapi.ResolveDots(path)
}

func (c *Client) allocFD(of *openFile) fsapi.FD {
	fd := c.nextFD
	for {
		if _, used := c.fds[fd]; !used {
			break
		}
		fd++
	}
	c.nextFD = fd + 1
	of.mu.Lock()
	of.refs++
	of.mu.Unlock()
	c.fds[fd] = of
	return fd
}

func (c *Client) getFD(fd fsapi.FD) (*openFile, error) {
	of, ok := c.fds[fd]
	if !ok {
		return nil, fsapi.EBADF
	}
	return of, nil
}

// Open implements fsapi.Client.
func (c *Client) Open(path string, flags int, mode fsapi.Mode) (fsapi.FD, error) {
	c.op()
	abs := c.absPath(path)
	var n *node
	if flags&fsapi.OCreate != 0 {
		parent, name, err := c.fs.lookupParent(abs)
		if err != nil {
			return -1, err
		}
		c.dirCritical(parent)
		parent.mu.Lock()
		existing, ok := parent.children[name]
		if ok {
			parent.mu.Unlock()
			if flags&fsapi.OExcl != 0 {
				return -1, fsapi.EEXIST
			}
			n = existing
		} else {
			n = c.fs.newNode(fsapi.TypeRegular, mode)
			parent.children[name] = n
			parent.mu.Unlock()
		}
	} else {
		var err error
		n, err = c.fs.lookup(abs)
		if err != nil {
			return -1, err
		}
	}
	if n.ftype == fsapi.TypeDir && flags&fsapi.OAccMode != fsapi.ORdOnly {
		return -1, fsapi.EISDIR
	}
	if err := checkPerm(n, flags); err != nil {
		return -1, err
	}
	n.mu.Lock()
	n.openRefs++
	if flags&fsapi.OTrunc != 0 && n.ftype == fsapi.TypeRegular {
		n.data = n.data[:0]
	}
	size := int64(len(n.data))
	n.mu.Unlock()
	of := &openFile{node: n, flags: flags}
	if flags&fsapi.OAppend != 0 {
		of.offset = size
	}
	return c.allocFD(of), nil
}

func checkPerm(n *node, flags int) error {
	owner := n.mode.OwnerBits()
	acc := flags & fsapi.OAccMode
	if (acc == fsapi.ORdOnly || acc == fsapi.ORdWr) && owner&fsapi.ModeRead == 0 {
		return fsapi.EACCES
	}
	if (acc == fsapi.OWrOnly || acc == fsapi.ORdWr) && owner&fsapi.ModeWrite == 0 {
		return fsapi.EACCES
	}
	return nil
}

// Close implements fsapi.Client.
func (c *Client) Close(fd fsapi.FD) error {
	c.op()
	of, err := c.getFD(fd)
	if err != nil {
		return err
	}
	delete(c.fds, fd)
	of.mu.Lock()
	of.refs--
	last := of.refs == 0
	of.mu.Unlock()
	if !last {
		return nil
	}
	if of.pipe {
		of.node.pipe.closeEnd(of.pipeWrite)
		return nil
	}
	of.node.mu.Lock()
	if of.node.openRefs > 0 {
		of.node.openRefs--
	}
	of.node.mu.Unlock()
	return nil
}

// Read implements fsapi.Client.
func (c *Client) Read(fd fsapi.FD, p []byte) (int, error) {
	c.op()
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe {
		if of.pipeWrite {
			return 0, fsapi.EBADF
		}
		n, at := of.node.pipe.read(p, c.clock.Now())
		c.clock.AdvanceTo(at)
		c.dataCost(n)
		return n, nil
	}
	if of.flags&fsapi.OAccMode == fsapi.OWrOnly {
		return 0, fsapi.EBADF
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	n := c.readNode(of.node, of.offset, p)
	of.offset += int64(n)
	return n, nil
}

// Pread implements fsapi.Client.
func (c *Client) Pread(fd fsapi.FD, p []byte, off int64) (int, error) {
	c.op()
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe {
		return 0, fsapi.ESPIPE
	}
	return c.readNode(of.node, off, p), nil
}

func (c *Client) readNode(n *node, off int64, p []byte) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if off >= int64(len(n.data)) {
		return 0
	}
	cnt := copy(p, n.data[off:])
	c.dataCost(cnt)
	return cnt
}

// Write implements fsapi.Client.
func (c *Client) Write(fd fsapi.FD, p []byte) (int, error) {
	c.op()
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe {
		if !of.pipeWrite {
			return 0, fsapi.EBADF
		}
		n, at, werr := of.node.pipe.write(p, c.clock.Now())
		c.clock.AdvanceTo(at)
		c.dataCost(n)
		return n, werr
	}
	if of.flags&fsapi.OAccMode == fsapi.ORdOnly {
		return 0, fsapi.EBADF
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	off := of.offset
	if of.flags&fsapi.OAppend != 0 {
		of.node.mu.Lock()
		off = int64(len(of.node.data))
		of.node.mu.Unlock()
	}
	n := c.writeNode(of.node, off, p)
	of.offset = off + int64(n)
	return n, nil
}

// Pwrite implements fsapi.Client.
func (c *Client) Pwrite(fd fsapi.FD, p []byte, off int64) (int, error) {
	c.op()
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe {
		return 0, fsapi.ESPIPE
	}
	return c.writeNode(of.node, off, p), nil
}

func (c *Client) writeNode(n *node, off int64, p []byte) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	end := off + int64(len(p))
	if int64(len(n.data)) < end {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
	}
	cnt := copy(n.data[off:], p)
	c.dataCost(cnt)
	return cnt
}

// Seek implements fsapi.Client.
func (c *Client) Seek(fd fsapi.FD, off int64, whence int) (int64, error) {
	c.op()
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe {
		return 0, fsapi.ESPIPE
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	var base int64
	switch whence {
	case fsapi.SeekSet:
		base = 0
	case fsapi.SeekCur:
		base = of.offset
	case fsapi.SeekEnd:
		of.node.mu.Lock()
		base = int64(len(of.node.data))
		of.node.mu.Unlock()
	default:
		return 0, fsapi.EINVAL
	}
	pos := base + off
	if pos < 0 {
		return 0, fsapi.EINVAL
	}
	of.offset = pos
	return pos, nil
}

// Fsync is a no-op for an in-memory coherent file system.
func (c *Client) Fsync(fd fsapi.FD) error {
	c.op()
	_, err := c.getFD(fd)
	return err
}

// Ftruncate implements fsapi.Client.
func (c *Client) Ftruncate(fd fsapi.FD, size int64) error {
	c.op()
	of, err := c.getFD(fd)
	if err != nil {
		return err
	}
	if of.pipe || of.node.ftype != fsapi.TypeRegular {
		return fsapi.EINVAL
	}
	of.node.mu.Lock()
	defer of.node.mu.Unlock()
	if size < int64(len(of.node.data)) {
		of.node.data = of.node.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, of.node.data)
		of.node.data = grown
	}
	return nil
}

// Unlink implements fsapi.Client.
func (c *Client) Unlink(path string) error {
	c.op()
	parent, name, err := c.fs.lookupParent(c.absPath(path))
	if err != nil {
		return err
	}
	c.dirCritical(parent)
	parent.mu.Lock()
	defer parent.mu.Unlock()
	n, ok := parent.children[name]
	if !ok {
		return fsapi.ENOENT
	}
	if n.ftype == fsapi.TypeDir {
		return fsapi.EISDIR
	}
	delete(parent.children, name)
	n.mu.Lock()
	n.nlink--
	n.mu.Unlock()
	return nil
}

// Mkdir implements fsapi.Client (the Distributed option is meaningless on a
// centralized shared-memory file system and is ignored).
func (c *Client) Mkdir(path string, opt fsapi.MkdirOpt) error {
	c.op()
	parent, name, err := c.fs.lookupParent(c.absPath(path))
	if err != nil {
		return err
	}
	mode := opt.Mode
	if mode == 0 {
		mode = fsapi.Mode755
	}
	c.dirCritical(parent)
	parent.mu.Lock()
	defer parent.mu.Unlock()
	if parent.ftype != fsapi.TypeDir {
		return fsapi.ENOTDIR
	}
	if _, ok := parent.children[name]; ok {
		return fsapi.EEXIST
	}
	parent.children[name] = c.fs.newNode(fsapi.TypeDir, mode)
	return nil
}

// Rmdir implements fsapi.Client.
func (c *Client) Rmdir(path string) error {
	c.op()
	parent, name, err := c.fs.lookupParent(c.absPath(path))
	if err != nil {
		return err
	}
	c.dirCritical(parent)
	parent.mu.Lock()
	defer parent.mu.Unlock()
	n, ok := parent.children[name]
	if !ok {
		return fsapi.ENOENT
	}
	if n.ftype != fsapi.TypeDir {
		return fsapi.ENOTDIR
	}
	n.mu.Lock()
	empty := len(n.children) == 0
	n.mu.Unlock()
	if !empty {
		return fsapi.ENOTEMPTY
	}
	delete(parent.children, name)
	return nil
}

// Rename implements fsapi.Client.
func (c *Client) Rename(oldPath, newPath string) error {
	c.op()
	oldAbs, newAbs := c.absPath(oldPath), c.absPath(newPath)
	if oldAbs == newAbs {
		return nil
	}
	oldParent, oldName, err := c.fs.lookupParent(oldAbs)
	if err != nil {
		return err
	}
	newParent, newName, err := c.fs.lookupParent(newAbs)
	if err != nil {
		return err
	}
	c.dirCritical(oldParent)
	if newParent != oldParent {
		c.dirCritical(newParent)
	}
	// Lock ordering by inode number avoids deadlock between concurrent
	// renames in opposite directions.
	first, second := oldParent, newParent
	if first != second && first.ino > second.ino {
		first, second = second, first
	}
	first.mu.Lock()
	if second != first {
		second.mu.Lock()
	}
	defer func() {
		if second != first {
			second.mu.Unlock()
		}
		first.mu.Unlock()
	}()
	n, ok := oldParent.children[oldName]
	if !ok {
		return fsapi.ENOENT
	}
	delete(oldParent.children, oldName)
	newParent.children[newName] = n
	return nil
}

// ReadDir implements fsapi.Client.
func (c *Client) ReadDir(path string) ([]fsapi.Dirent, error) {
	c.op()
	n, err := c.fs.lookup(c.absPath(path))
	if err != nil {
		return nil, err
	}
	if n.ftype != fsapi.TypeDir {
		return nil, fsapi.ENOTDIR
	}
	n.mu.Lock()
	out := make([]fsapi.Dirent, 0, len(n.children))
	for name, child := range n.children {
		out = append(out, fsapi.Dirent{Name: name, Ino: child.ino, Type: child.ftype})
	}
	n.mu.Unlock()
	c.charge(sim.Cycles(len(out)) * c.fs.machine.Cost.ServePerEnt)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Stat implements fsapi.Client.
func (c *Client) Stat(path string) (fsapi.Stat, error) {
	c.op()
	n, err := c.fs.lookup(c.absPath(path))
	if err != nil {
		return fsapi.Stat{}, err
	}
	return statOf(n), nil
}

// Fstat implements fsapi.Client.
func (c *Client) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	c.op()
	of, err := c.getFD(fd)
	if err != nil {
		return fsapi.Stat{}, err
	}
	return statOf(of.node), nil
}

func statOf(n *node) fsapi.Stat {
	n.mu.Lock()
	defer n.mu.Unlock()
	return fsapi.Stat{
		Ino:   n.ino,
		Type:  n.ftype,
		Size:  int64(len(n.data)),
		Nlink: n.nlink,
		Mode:  n.mode,
	}
}

// Pipe implements fsapi.Client.
func (c *Client) Pipe() (fsapi.FD, fsapi.FD, error) {
	c.op()
	n := c.fs.newNode(fsapi.TypePipe, 0o600)
	rfd := c.allocFD(&openFile{node: n, pipe: true, flags: fsapi.ORdOnly})
	wfd := c.allocFD(&openFile{node: n, pipe: true, pipeWrite: true, flags: fsapi.OWrOnly})
	return rfd, wfd, nil
}

// Dup implements fsapi.Client.
func (c *Client) Dup(fd fsapi.FD) (fsapi.FD, error) {
	c.op()
	of, err := c.getFD(fd)
	if err != nil {
		return -1, err
	}
	return c.allocFD(of), nil
}

// Chdir implements fsapi.Client.
func (c *Client) Chdir(path string) error {
	c.op()
	abs := c.absPath(path)
	n, err := c.fs.lookup(abs)
	if err != nil {
		return err
	}
	if n.ftype != fsapi.TypeDir {
		return fsapi.ENOTDIR
	}
	c.cwd = abs
	return nil
}

// Getcwd implements fsapi.Client.
func (c *Client) Getcwd() string { return c.cwd }

// CloneForFork implements fsapi.Forker: the child shares every open-file
// description (offsets included) through shared memory, exactly as a
// cache-coherent kernel would.
func (c *Client) CloneForFork(childCore int) (fsapi.Client, error) {
	child := c.fs.NewClient(childCore)
	child.cwd = c.cwd
	child.clock.AdvanceTo(c.clock.Now())
	for fd, of := range c.fds {
		// The child references the same open-file description; the
		// description (and, for pipes, the pipe end) closes only when the
		// last referencing descriptor in any process is closed.
		of.mu.Lock()
		of.refs++
		of.mu.Unlock()
		child.fds[fd] = of
		if fd >= child.nextFD {
			child.nextFD = fd + 1
		}
	}
	return child, nil
}

// CloseAll closes every open descriptor (process exit).
func (c *Client) CloseAll() {
	for fd := range c.fds {
		_ = c.Close(fd)
	}
}
