// Package unfs implements the user-space NFS baseline from the paper's
// evaluation (UNFS3 in Figure 8): a single user-space file server reached
// through the kernel's loopback interface.
//
// Functionally it is an ordinary in-memory file system (it reuses the ramfs
// tree as its backing store); what distinguishes it is the cost structure —
// every operation pays a loopback RPC and serializes at the single server —
// and the missing functionality: file descriptors cannot be shared between
// client processes, so applications that rely on shared descriptors are
// limited to one core (§1, §2.2).
package unfs

import (
	"sync"

	"repro/internal/baseline/ramfs"
	"repro/internal/fsapi"
	"repro/internal/sim"
)

// System is one user-space NFS server plus the machine model used for cost
// accounting.
type System struct {
	machine *sim.Machine
	backing *ramfs.FS

	srvMu   sync.Mutex
	srvFree sim.Cycles
}

// New creates the NFS baseline over the given machine model.
func New(machine *sim.Machine) *System {
	// The backing store is a private ramfs whose own costs are zeroed; all
	// time accounting happens in this package.
	zero := machine.Cost
	zero.RamfsOp = 0
	zero.RamfsLockOp = 0
	zero.RamfsPerLine = 0
	zero.ServePerEnt = 0
	backingMachine := sim.NewMachine(machine.Topo, zero)
	backing := ramfs.New(backingMachine)
	backing.DataCosts = false
	return &System{machine: machine, backing: backing}
}

// Machine returns the machine model used for cost accounting.
func (s *System) Machine() *sim.Machine { return s.machine }

// serve serializes a request at the single NFS server: the request is ready
// at `ready`, takes `hold` cycles of server CPU, and completes when the
// server gets to it.
func (s *System) serve(ready, hold sim.Cycles) sim.Cycles {
	s.srvMu.Lock()
	defer s.srvMu.Unlock()
	start := ready
	if s.srvFree > start {
		start = s.srvFree
	}
	end := start + hold
	s.srvFree = end
	return end
}

// Client is one process's NFS mount. It implements fsapi.Client and the
// process layer's Clocked interface. It does NOT implement fsapi.Forker:
// NFS clients cannot share descriptors.
type Client struct {
	sys   *System
	core  int
	clock sim.Clock
	inner fsapi.Client
	// pipes tracks which descriptors are local pipe ends: pipe traffic
	// stays in the local kernel and is not charged NFS loopback costs.
	pipes map[fsapi.FD]bool
}

// NewClient attaches a process on the given core.
func (s *System) NewClient(core int) *Client {
	return &Client{sys: s, core: core, inner: s.backing.NewClient(core), pipes: make(map[fsapi.FD]bool)}
}

// Clock returns the client's virtual time.
func (c *Client) Clock() sim.Cycles { return c.clock.Now() }

// AdvanceClock moves the client's virtual clock forward.
func (c *Client) AdvanceClock(t sim.Cycles) { c.clock.AdvanceTo(t) }

// Compute charges CPU work on the client's core.
func (c *Client) Compute(d sim.Cycles) {
	end := c.sys.machine.Execute(c.core, c.clock.Now(), d)
	c.clock.AdvanceTo(end)
}

// Core returns the client's core.
func (c *Client) Core() int { return c.core }

// rpc charges one NFS round trip: loopback transport on the client core,
// then serialized service at the single server, plus optional data bytes.
func (c *Client) rpc(dataBytes int) {
	cost := c.sys.machine.Cost
	end := c.sys.machine.Execute(c.core, c.clock.Now(), cost.LoopbackRPC)
	c.clock.AdvanceTo(end)
	hold := cost.UnfsServeOp + sim.LineCost(cost.UnfsPerLine, dataBytes)
	c.clock.AdvanceTo(c.sys.serve(c.clock.Now(), hold))
}

// local charges a purely client-side operation (pipes, dup, chdir), which do
// not involve the NFS server.
func (c *Client) local() {
	end := c.sys.machine.Execute(c.core, c.clock.Now(), c.sys.machine.Cost.RamfsOp)
	c.clock.AdvanceTo(end)
}

// Open implements fsapi.Client.
func (c *Client) Open(path string, flags int, mode fsapi.Mode) (fsapi.FD, error) {
	c.rpc(0)
	return c.inner.Open(path, flags, mode)
}

// Close implements fsapi.Client.
func (c *Client) Close(fd fsapi.FD) error {
	if c.pipes[fd] {
		delete(c.pipes, fd)
		c.local()
		return c.inner.Close(fd)
	}
	c.rpc(0)
	return c.inner.Close(fd)
}

// Read implements fsapi.Client; file data travels over the loopback RPC,
// pipe data stays in the local kernel.
func (c *Client) Read(fd fsapi.FD, p []byte) (int, error) {
	if c.pipes[fd] {
		n, err := c.inner.Read(fd, p)
		c.local()
		return n, err
	}
	n, err := c.inner.Read(fd, p)
	c.rpc(n)
	return n, err
}

// Write implements fsapi.Client.
func (c *Client) Write(fd fsapi.FD, p []byte) (int, error) {
	if c.pipes[fd] {
		c.local()
		return c.inner.Write(fd, p)
	}
	c.rpc(len(p))
	return c.inner.Write(fd, p)
}

// Pread implements fsapi.Client.
func (c *Client) Pread(fd fsapi.FD, p []byte, off int64) (int, error) {
	n, err := c.inner.Pread(fd, p, off)
	c.rpc(n)
	return n, err
}

// Pwrite implements fsapi.Client.
func (c *Client) Pwrite(fd fsapi.FD, p []byte, off int64) (int, error) {
	c.rpc(len(p))
	return c.inner.Pwrite(fd, p, off)
}

// Seek is a client-side operation in NFS.
func (c *Client) Seek(fd fsapi.FD, off int64, whence int) (int64, error) {
	c.local()
	return c.inner.Seek(fd, off, whence)
}

// Fsync implements fsapi.Client (a COMMIT RPC).
func (c *Client) Fsync(fd fsapi.FD) error {
	c.rpc(0)
	return c.inner.Fsync(fd)
}

// Ftruncate implements fsapi.Client (a SETATTR RPC).
func (c *Client) Ftruncate(fd fsapi.FD, size int64) error {
	c.rpc(0)
	return c.inner.Ftruncate(fd, size)
}

// Unlink implements fsapi.Client.
func (c *Client) Unlink(path string) error {
	c.rpc(0)
	return c.inner.Unlink(path)
}

// Mkdir implements fsapi.Client.
func (c *Client) Mkdir(path string, opt fsapi.MkdirOpt) error {
	c.rpc(0)
	return c.inner.Mkdir(path, opt)
}

// Rmdir implements fsapi.Client.
func (c *Client) Rmdir(path string) error {
	c.rpc(0)
	return c.inner.Rmdir(path)
}

// Rename implements fsapi.Client.
func (c *Client) Rename(oldPath, newPath string) error {
	c.rpc(0)
	return c.inner.Rename(oldPath, newPath)
}

// ReadDir implements fsapi.Client; directory entries travel over the RPC.
func (c *Client) ReadDir(path string) ([]fsapi.Dirent, error) {
	ents, err := c.inner.ReadDir(path)
	c.rpc(len(ents) * 32)
	return ents, err
}

// Stat implements fsapi.Client (a GETATTR/LOOKUP RPC).
func (c *Client) Stat(path string) (fsapi.Stat, error) {
	c.rpc(0)
	return c.inner.Stat(path)
}

// Fstat implements fsapi.Client.
func (c *Client) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	c.rpc(0)
	return c.inner.Fstat(fd)
}

// Pipe implements fsapi.Client. Pipes are provided by the local kernel, not
// by NFS, so they carry only local cost — but they cannot be shared with a
// process on another NFS client.
func (c *Client) Pipe() (fsapi.FD, fsapi.FD, error) {
	c.local()
	r, w, err := c.inner.Pipe()
	if err == nil {
		c.pipes[r] = true
		c.pipes[w] = true
	}
	return r, w, err
}

// Dup implements fsapi.Client.
func (c *Client) Dup(fd fsapi.FD) (fsapi.FD, error) {
	c.local()
	nfd, err := c.inner.Dup(fd)
	if err == nil && c.pipes[fd] {
		c.pipes[nfd] = true
	}
	return nfd, err
}

// Chdir implements fsapi.Client.
func (c *Client) Chdir(path string) error {
	c.rpc(0)
	return c.inner.Chdir(path)
}

// Getcwd implements fsapi.Client.
func (c *Client) Getcwd() string { return c.inner.Getcwd() }

// CloneForFork implements fsapi.Forker. Processes forked on the same
// machine share open-file descriptions through their common kernel (pipes
// included), even when the files live on NFS; what NFS cannot do — and what
// limits these applications to a single core in the paper's comparison — is
// share descriptors between *different* NFS client instances. The child
// therefore wraps a fork of the same local kernel state.
func (c *Client) CloneForFork(childCore int) (fsapi.Client, error) {
	forker, ok := c.inner.(fsapi.Forker)
	if !ok {
		return nil, fsapi.ENOSYS
	}
	innerChild, err := forker.CloneForFork(childCore)
	if err != nil {
		return nil, err
	}
	child := &Client{sys: c.sys, core: childCore, inner: innerChild, pipes: make(map[fsapi.FD]bool)}
	for fd := range c.pipes {
		child.pipes[fd] = true
	}
	child.clock.AdvanceTo(c.clock.Now())
	return child, nil
}

// CloseAll closes all open descriptors (process exit).
func (c *Client) CloseAll() {
	type closer interface{ CloseAll() }
	if cl, ok := c.inner.(closer); ok {
		cl.CloseAll()
	}
}
