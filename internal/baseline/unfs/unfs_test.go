package unfs

import (
	"testing"

	"repro/internal/fsapi"
	"repro/internal/sim"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	return New(sim.NewMachine(sim.TopologyForCores(2), sim.DefaultCostModel()))
}

func TestUnfsBasicOperations(t *testing.T) {
	sys := newSystem(t)
	c := sys.NewClient(0)

	if err := c.Mkdir("/d", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}
	fd, err := c.Open("/d/f", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd, []byte("over the loopback")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Seek(fd, 0, fsapi.SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := c.Read(fd, buf)
	if err != nil || string(buf[:n]) != "over the loopback" {
		t.Fatalf("read %q %v", buf[:n], err)
	}
	if err := c.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	if err := c.Ftruncate(fd, 4); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.Fstat(fd); st.Size != 4 {
		t.Fatalf("size %d", st.Size)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	ents, err := c.ReadDir("/d")
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir %v %v", ents, err)
	}
	if err := c.Rename("/d/f", "/d/g"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/d/g"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/d"); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Fatalf("stat removed dir: %v", err)
	}
}

func TestUnfsChargesLoopbackCosts(t *testing.T) {
	sys := newSystem(t)
	c := sys.NewClient(0)
	before := c.Clock()
	fd, err := c.Open("/x", fsapi.OCreate, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	c.Close(fd)
	elapsed := c.Clock() - before
	min := 2 * sys.machine.Cost.LoopbackRPC // open + close both cross the loopback
	if elapsed < min {
		t.Fatalf("two NFS RPCs cost %d cycles, expected at least %d", elapsed, min)
	}
}

func TestUnfsServerSerializesClients(t *testing.T) {
	sys := newSystem(t)
	a := sys.NewClient(0)
	b := sys.NewClient(1)
	const ops = 20
	for i := 0; i < ops; i++ {
		fd, err := a.Open("/a", fsapi.OCreate, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		a.Close(fd)
		fd, err = b.Open("/b", fsapi.OCreate, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		b.Close(fd)
	}
	// The single server's service time for all 4*ops RPCs must show up in
	// at least one client's clock (they cannot both finish as if they had
	// private servers).
	serial := sim.Cycles(4*ops) * sys.machine.Cost.UnfsServeOp
	if a.Clock()+b.Clock() < serial {
		t.Fatalf("server serialization missing: a=%d b=%d serial=%d", a.Clock(), b.Clock(), serial)
	}
}

func TestUnfsForkSharesLocalKernelState(t *testing.T) {
	sys := newSystem(t)
	parent := sys.NewClient(0)
	// Processes forked on one machine share descriptors through the local
	// kernel even when the file system is NFS; it is sharing between
	// different NFS clients that is impossible (§2.2). Pipes created by
	// the parent must therefore work in the forked child.
	r, w, err := parent.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	childFS, err := parent.CloneForFork(0)
	if err != nil {
		t.Fatal(err)
	}
	child := childFS.(*Client)
	if _, err := parent.Write(w, []byte("token")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := child.Read(r, buf)
	if err != nil || string(buf[:n]) != "token" {
		t.Fatalf("child pipe read %q %v", buf[:n], err)
	}
	child.CloseAll()
	parent.CloseAll()
}

func TestUnfsPipesAreLocal(t *testing.T) {
	sys := newSystem(t)
	c := sys.NewClient(0)
	r, w, err := c.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	before := c.Clock()
	if _, err := c.Write(w, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if n, _ := c.Read(r, buf); string(buf[:n]) != "ping" {
		t.Fatalf("pipe read %q", buf[:n])
	}
	// Pipe traffic stays in the local kernel: far cheaper than a loopback
	// RPC.
	if c.Clock()-before >= sys.machine.Cost.LoopbackRPC {
		t.Fatal("pipe I/O was charged NFS loopback costs")
	}
	c.CloseAll()
}

func TestUnfsClockHelpers(t *testing.T) {
	sys := newSystem(t)
	c := sys.NewClient(1)
	if c.Core() != 1 {
		t.Fatal("core accessor wrong")
	}
	c.AdvanceClock(1000)
	if c.Clock() != 1000 {
		t.Fatal("AdvanceClock failed")
	}
	c.Compute(500)
	if c.Clock() != 1500 {
		t.Fatalf("Compute: clock=%d", c.Clock())
	}
	if sys.Machine() == nil {
		t.Fatal("Machine accessor nil")
	}
}
