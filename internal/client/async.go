package client

import (
	"runtime"
	"sort"

	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Asynchronous RPC helpers (DESIGN.md §7).
//
// The paper's client performs every operation as a synchronous ping-pong;
// this file generalizes its two one-off message-saving tricks (directory
// broadcast, the coalesced-create opcode) into reusable machinery:
//
//   - sendAsync / awaitAll keep several requests in flight at once, to the
//     same server or to several. Virtual time follows the broadcast rules:
//     each send charges MsgSend and stamps the request at the clock it was
//     issued at; awaiting advances the clock to the latest reply arrival and
//     charges one MsgRecv per reply.
//   - rpcBatch packs same-server requests into OpBatch envelopes so they
//     share one round trip and one server-side message-arrival overhead.
//   - scatter combines both: per-server request lists travel as batches
//     whose round trips to distinct servers overlap.

// sendAsync issues one request without waiting for the reply.
func (c *Client) sendAsync(srv int, req *proto.Request) (*msg.Future, error) {
	rt := c.routing
	if srv < 0 || srv >= len(rt.Servers) {
		return nil, fsapi.EIO
	}
	req.ClientID = c.cfg.ID
	c.traceRequest(req)
	payload := c.marshalReq(req)
	c.charge(c.cfg.Machine.Cost.MsgSend)
	fut, err := c.cfg.Network.SendAsync(c.ep, rt.Servers[srv], proto.KindRequest, payload, c.clock.Now())
	if err != nil {
		return nil, fsapi.EIO
	}
	c.stats.rpcs.Add(1)
	return fut, nil
}

// awaitAll harvests the given futures: the clock advances to the latest
// reply arrival, one receive cost is charged per reply, and the decoded
// responses are returned in future order.
func (c *Client) awaitAll(futs []*msg.Future) ([]*proto.Response, error) {
	envs := make([]msg.Envelope, len(futs))
	var latest sim.Cycles
	for i, f := range futs {
		env, err := f.Await()
		if err != nil {
			return nil, fsapi.EIO
		}
		envs[i] = env
		if env.ArriveAt > latest {
			latest = env.ArriveAt
		}
	}
	c.clock.AdvanceTo(latest)
	c.charge(c.cfg.Machine.Cost.MsgRecv * sim.Cycles(len(futs)))
	out := make([]*proto.Response, len(envs))
	for i := range envs {
		resp := new(proto.Response)
		err := proto.UnmarshalResponseInto(resp, envs[i].Payload)
		c.ep.PutBuf(envs[i].Payload)
		if err != nil {
			return nil, fsapi.EIO
		}
		out[i] = resp
	}
	runtime.Gosched()
	return out, nil
}

// chunkRequests splits a request list at the batch size caps. The estimate
// leaves headroom for the fixed-shape fields so a chunk never exceeds
// MaxBatchBytes once marshaled.
func chunkRequests(reqs []*proto.Request) [][]*proto.Request {
	const perReqOverhead = 192
	budget := proto.MaxBatchBytes - 64
	var out [][]*proto.Request
	var cur []*proto.Request
	curBytes := 0
	for _, r := range reqs {
		est := perReqOverhead + len(r.Name) + len(r.Data) + len(r.Program) + len(r.Dirname)
		if len(cur) > 0 && (len(cur) >= proto.MaxBatchOps || curBytes+est > budget) {
			out = append(out, cur)
			cur, curBytes = nil, 0
		}
		cur = append(cur, r)
		curBytes += est
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// rpcBatch sends requests destined for one server. With pipelining enabled
// they travel in OpBatch envelopes (split at the protocol size caps);
// otherwise they are issued strictly one after another. stopOnErr makes the
// requests a dependent chain: after the first failure the remaining ones are
// skipped with ECANCELED responses (server-side within a batch, client-side
// across batch splits). Responses come back in request order; a protocol
// failure of a sub-operation is reported in its Response, not as an error.
func (c *Client) rpcBatch(srv int, stopOnErr bool, reqs []*proto.Request) ([]*proto.Response, error) {
	out := make([]*proto.Response, 0, len(reqs))
	failed := false
	if !c.cfg.Options.Pipelining || len(reqs) == 1 {
		for _, r := range reqs {
			if failed && stopOnErr {
				out = append(out, proto.ErrResponse(fsapi.ECANCELED))
				continue
			}
			resp, err := c.rpc(srv, r)
			if err != nil {
				return nil, err
			}
			if resp.Err != fsapi.OK {
				failed = true
			}
			out = append(out, resp)
		}
		return out, nil
	}
	for _, chunk := range chunkRequests(reqs) {
		if failed && stopOnErr {
			for range chunk {
				out = append(out, proto.ErrResponse(fsapi.ECANCELED))
			}
			continue
		}
		var subs []*proto.Response
		if len(chunk) == 1 {
			resp, err := c.rpc(srv, chunk[0])
			if err != nil {
				return nil, err
			}
			subs = []*proto.Response{resp}
		} else {
			for _, r := range chunk {
				r.ClientID = c.cfg.ID
			}
			env, err := c.rpc(srv, proto.BatchRequest(chunk, stopOnErr))
			if err != nil {
				return nil, err
			}
			if env.Err != fsapi.OK {
				return nil, env.Err
			}
			var derr error
			subs, derr = proto.UnmarshalBatchResponses(env.Data)
			if derr != nil || len(subs) != len(chunk) {
				return nil, fsapi.EIO
			}
			c.stats.batched.Add(uint64(len(chunk)))
		}
		for _, r := range subs {
			if r.Err != fsapi.OK {
				failed = true
			}
		}
		out = append(out, subs...)
	}
	return out, nil
}

// scatter delivers independent per-server request lists with overlapping
// round trips: each server's list is packed into batch envelopes, every
// envelope is issued back-to-back, and all replies are awaited together.
// With pipelining disabled the lists run server by server, request by
// request. Responses are returned per server in request order.
func (c *Client) scatter(perSrv map[int][]*proto.Request) (map[int][]*proto.Response, error) {
	srvs := make([]int, 0, len(perSrv))
	for srv := range perSrv {
		srvs = append(srvs, srv)
	}
	sort.Ints(srvs)

	out := make(map[int][]*proto.Response, len(perSrv))
	if !c.cfg.Options.Pipelining {
		for _, srv := range srvs {
			resps, err := c.rpcBatch(srv, false, perSrv[srv])
			if err != nil {
				return nil, err
			}
			out[srv] = resps
		}
		return out, nil
	}

	type chunkRef struct {
		srv  int
		n    int // sub-requests carried (1 means a bare request)
		bare bool
	}
	var futs []*msg.Future
	var refs []chunkRef
	for _, srv := range srvs {
		for _, chunk := range chunkRequests(perSrv[srv]) {
			var env *proto.Request
			bare := len(chunk) == 1
			if bare {
				env = chunk[0]
			} else {
				for _, r := range chunk {
					r.ClientID = c.cfg.ID
				}
				env = proto.BatchRequest(chunk, false)
				c.stats.batched.Add(uint64(len(chunk)))
			}
			fut, err := c.sendAsync(srv, env)
			if err != nil {
				return nil, err
			}
			futs = append(futs, fut)
			refs = append(refs, chunkRef{srv: srv, n: len(chunk), bare: bare})
		}
	}
	resps, err := c.awaitAll(futs)
	if err != nil {
		return nil, err
	}
	for i, ref := range refs {
		if ref.bare {
			out[ref.srv] = append(out[ref.srv], resps[i])
			continue
		}
		if resps[i].Err != fsapi.OK {
			return nil, resps[i].Err
		}
		subs, derr := proto.UnmarshalBatchResponses(resps[i].Data)
		if derr != nil || len(subs) != ref.n {
			return nil, fsapi.EIO
		}
		out[ref.srv] = append(out[ref.srv], subs...)
	}
	return out, nil
}
