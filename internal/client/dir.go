package client

import (
	"sort"

	"repro/internal/fsapi"
	"repro/internal/proto"
)

// Mkdir creates a directory. The MkdirOpt.Distributed flag selects whether
// the new directory's entries are sharded across all file servers (§3.3).
func (c *Client) Mkdir(path string, opt fsapi.MkdirOpt) (err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("mkdir"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	abs := c.absPath(path)
	parent, parentDist, name, err := c.resolveParent(abs)
	if err != nil {
		return err
	}
	mode := opt.Mode
	if mode == 0 {
		mode = fsapi.Mode755
	}
	// The application requests distribution per directory; the deployment
	// may globally disable the technique (Figure 10 ablation).
	opt.Distributed = opt.Distributed && c.cfg.Options.DirDistribution
	resp, sent, rerr := c.coalescedCreate(parent, parentDist, name, &proto.Request{
		Op:          proto.OpCreateCoalesced,
		Dir:         parent,
		Name:        name,
		Mode:        mode,
		Ftype:       fsapi.TypeDir,
		Distributed: opt.Distributed,
		Exclusive:   true,
	})
	if rerr != nil {
		return rerr
	}
	if sent {
		if resp.Err != fsapi.OK {
			return resp.Err
		}
		c.cacheEntry(parent, name, dcacheEnt{ino: resp.Ino, ftype: fsapi.TypeDir, dist: opt.Distributed})
		return nil
	}
	entrySrv, _ := c.routeEntry(parent, parentDist, name)
	inodeSrv := c.chooseInodeServer(entrySrv)

	mkResp, err := c.rpcOK(inodeSrv, &proto.Request{
		Op:          proto.OpMknod,
		Ftype:       fsapi.TypeDir,
		Mode:        mode,
		Distributed: opt.Distributed,
	})
	if err != nil {
		return err
	}
	addResp, aerr := c.routedEntryRPC(parent, parentDist, name, &proto.Request{
		Op:          proto.OpAddMap,
		Dir:         parent,
		Name:        name,
		Target:      mkResp.Ino,
		Ftype:       fsapi.TypeDir,
		Distributed: opt.Distributed,
	})
	if aerr != nil {
		return aerr
	}
	if addResp.Err != fsapi.OK {
		_, _ = c.rpc(inodeSrv, &proto.Request{Op: proto.OpUnlinkInode, Target: mkResp.Ino})
		return addResp.Err
	}
	c.cacheEntry(parent, name, dcacheEnt{ino: mkResp.Ino, ftype: fsapi.TypeDir, dist: opt.Distributed})
	return nil
}

// Unlink removes a file's directory entry and drops a link on its inode.
// The file data remains readable through already-open descriptors (§3.4).
//
// The plain path is two dependent RPCs: RM_MAP returns the entry's inode,
// then UNLINK_INODE drops the link. With pipelining, a cached lookup for the
// entry breaks the dependency: when the inode lives on the entry server (the
// common case — coalesced creation put it there), both operations travel as
// one guarded batch message. A stale cache fails the guard (ESTALE) and the
// operation falls back to the authoritative two-RPC path.
func (c *Client) Unlink(path string) (err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("unlink"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	abs := c.absPath(path)
	parent, parentDist, name, err := c.resolveParent(abs)
	if err != nil {
		return err
	}
	if c.cfg.Options.Pipelining && c.cfg.Options.DirCache {
		c.drainInvalidations()
		entrySrv, epoch := c.routeEntry(parent, parentDist, name)
		if ent, ok := c.dcache.Get(dcacheKey{parent, name}); ok &&
			ent.ftype != fsapi.TypeDir && !ent.ino.IsNil() && int(ent.ino.Server) == entrySrv {
			done, uerr := c.unlinkBatched(parent, name, entrySrv, epoch, ent)
			if done {
				return uerr
			}
		}
	}

	resp, rerr := c.routedEntryRPCOK(parent, parentDist, name, &proto.Request{
		Op:    proto.OpRmMap,
		Dir:   parent,
		Name:  name,
		Ftype: fsapi.TypeRegular,
	})
	c.uncacheEntry(parent, name)
	if rerr != nil {
		return rerr
	}
	if _, err := c.rpcOK(int(resp.Ino.Server), &proto.Request{Op: proto.OpUnlinkInode, Target: resp.Ino}); err != nil {
		return err
	}
	return nil
}

// unlinkBatched removes the directory entry and its inode in a single
// dependent batch message. It returns done=false when the cached entry
// turned out to be stale (guard mismatch, or the placement epoch moved) and
// the caller must retry on the authoritative path.
func (c *Client) unlinkBatched(parent proto.InodeID, name string, entrySrv int, epoch uint64, ent dcacheEnt) (bool, error) {
	resps, err := c.rpcBatch(entrySrv, true, []*proto.Request{
		{Op: proto.OpRmMap, Dir: parent, Name: name, Target: ent.ino, Ftype: fsapi.TypeRegular, Epoch: epoch},
		{Op: proto.OpUnlinkInode, Target: ent.ino},
	})
	c.uncacheEntry(parent, name)
	if err != nil {
		return true, err
	}
	rm, ul := resps[0], resps[1]
	if rm.Err == fsapi.EEPOCH {
		c.refreshRouting()
		return false, nil
	}
	if rm.Err == fsapi.ESTALE {
		return false, nil
	}
	if rm.Err != fsapi.OK {
		return true, rm.Err
	}
	if ul.Err != fsapi.OK {
		return true, ul.Err
	}
	return true, nil
}

// Rename atomically renames oldPath to newPath: it first creates (or
// replaces) the entry under the new name, then removes the old name
// (§3.3). A replaced target loses one link.
func (c *Client) Rename(oldPath, newPath string) (err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("rename"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	oldAbs := c.absPath(oldPath)
	newAbs := c.absPath(newPath)
	if oldAbs == newAbs {
		return nil
	}
	oldParent, oldDist, oldName, err := c.resolveParent(oldAbs)
	if err != nil {
		return err
	}
	newParent, newDist, newName, err := c.resolveParent(newAbs)
	if err != nil {
		return err
	}
	ent, err := c.lookupEntry(oldParent, oldDist, oldName)
	if err != nil {
		return err
	}

	addResp, aerr := c.routedEntryRPCOK(newParent, newDist, newName, &proto.Request{
		Op:          proto.OpAddMap,
		Dir:         newParent,
		Name:        newName,
		Target:      ent.ino,
		Ftype:       ent.ftype,
		Distributed: ent.dist,
		Replace:     true,
	})
	if aerr != nil {
		return aerr
	}

	rmResp, rerr := c.routedEntryRPCOK(oldParent, oldDist, oldName, &proto.Request{
		Op:   proto.OpRmMap,
		Dir:  oldParent,
		Name: oldName,
	})
	c.uncacheEntry(oldParent, oldName)
	c.cacheEntry(newParent, newName, ent)
	if rerr != nil {
		return rerr
	}
	_ = rmResp

	// If the rename replaced an existing file, that file lost its link.
	if addResp.N == 1 && !addResp.Ino.IsNil() && addResp.Ino != ent.ino {
		if _, err := c.rpcOK(int(addResp.Ino.Server), &proto.Request{Op: proto.OpUnlinkInode, Target: addResp.Ino}); err != nil {
			return err
		}
	}
	return nil
}

// ReadDir lists a directory. Distributed directories require contacting all
// servers; with the directory broadcast optimization those RPCs overlap
// (§3.6.2). Entries are merged and sorted by name.
func (c *Client) ReadDir(path string) (_ []fsapi.Dirent, err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("readdir"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	abs := c.absPath(path)
	ino, ftype, dist, err := c.resolvePath(abs)
	if err != nil {
		return nil, err
	}
	if ftype != fsapi.TypeDir {
		return nil, fsapi.ENOTDIR
	}
	resps, err := c.routedBroadcast(ino.Server, dist, &proto.Request{Op: proto.OpReadDirShard, Dir: ino})
	if err != nil {
		return nil, err
	}
	var out []fsapi.Dirent
	for _, resp := range resps {
		if resp.Err != fsapi.OK {
			if resp.Err == fsapi.ENOENT {
				return nil, fsapi.ENOENT
			}
			return nil, resp.Err
		}
		for _, ent := range resp.Ents {
			out = append(out, fsapi.Dirent{Name: ent.Name, Ino: ent.Ino.Local, Type: ent.Ftype})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Rmdir removes an empty directory using the three-phase protocol (§3.3):
// serialize at the home server, prepare on every server holding a shard of
// the directory, then commit (or abort), and finally remove the parent's
// entry and the directory inode.
func (c *Client) Rmdir(path string) (err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("rmdir"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	abs := c.absPath(path)
	parent, parentDist, name, err := c.resolveParent(abs)
	if err != nil {
		return err
	}
	ent, err := c.lookupEntry(parent, parentDist, name)
	if err != nil {
		return err
	}
	if ent.ftype != fsapi.TypeDir {
		return fsapi.ENOTDIR
	}
	dir := ent.ino
	home := int(dir.Server)

	// Phase 0: serialize concurrent rmdirs of this directory.
	lockResp, err := c.rpcOK(home, &proto.Request{Op: proto.OpRmdirLock, Target: dir})
	if err != nil {
		return err
	}
	dist := lockResp.Dist

	// Phase 1: prepare — every shard must be empty. Each phase's fan-out
	// re-routes through the placement map independently: a migration
	// between phases re-targets the next broadcast to the new member set
	// (re-preparing or re-committing a shard is idempotent).
	prepResps, err := c.routedBroadcast(dir.Server, dist, &proto.Request{Op: proto.OpRmdirPrepare, Dir: dir, Target: dir})
	if err != nil {
		_, _ = c.rpcOK(home, &proto.Request{Op: proto.OpRmdirUnlock, Target: dir})
		return err
	}
	var failure error
	for _, resp := range prepResps {
		if resp.Err != fsapi.OK {
			failure = resp.Err
			break
		}
	}

	if failure != nil {
		// Phase 2b: abort — clear deletion marks and release the lock.
		if _, err := c.routedBroadcast(dir.Server, dist, &proto.Request{Op: proto.OpRmdirAbort, Dir: dir, Target: dir}); err != nil {
			return err
		}
		if _, err := c.rpcOK(home, &proto.Request{Op: proto.OpRmdirUnlock, Target: dir}); err != nil {
			return err
		}
		return failure
	}

	// Phase 2a: commit — shards are deleted.
	if _, err := c.routedBroadcast(dir.Server, dist, &proto.Request{Op: proto.OpRmdirCommit, Dir: dir, Target: dir}); err != nil {
		return err
	}
	// Remove the parent's entry for the directory.
	if _, err := c.routedEntryRPCOK(parent, parentDist, name, &proto.Request{Op: proto.OpRmMap, Dir: parent, Name: name, Ftype: fsapi.TypeDir}); err != nil && err != fsapi.ENOENT {
		return err
	}
	// Remove the directory inode and release the serialization lock.
	if _, err := c.rpcOK(home, &proto.Request{Op: proto.OpRmdirFinish, Target: dir}); err != nil {
		return err
	}
	c.uncacheEntry(parent, name)
	c.uncacheDir(dir)
	return nil
}
