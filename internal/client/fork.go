package client

import (
	"sort"
	"sync/atomic"

	"repro/internal/fsapi"
	"repro/internal/proto"
)

// IDAllocator hands out unique client-library ids across the whole Hare
// deployment (forked and exec'd processes each get their own client library,
// and servers track directory-cache state per client id).
type IDAllocator struct {
	next atomic.Int32
}

// NewIDAllocator returns an allocator whose first id is start.
func NewIDAllocator(start int32) *IDAllocator {
	a := &IDAllocator{}
	a.next.Store(start)
	return a
}

// Next returns a fresh client id.
func (a *IDAllocator) Next() int32 { return a.next.Add(1) - 1 }

// shareFD migrates a descriptor's offset to the file server so that another
// process can share it (§3.4). Dirty data is written back first so reads
// and writes through the server observe the client's latest contents.
func (c *Client) shareFD(of *openFile) error {
	if of.pipe || of.srvFd != proto.NilFd {
		return nil
	}
	c.writebackFile(of)
	// A written-through descriptor coalesces its size update and version
	// bump into the FD_SHARE message (§3.6.3 style), saving the separate
	// SET_SIZE round trip.
	req := &proto.Request{
		Op:     proto.OpFdShare,
		Target: of.ino,
		Offset: of.offset,
		Flags:  int32(of.flags),
	}
	if of.wrote {
		req.Size = of.size
		req.Dirty = true
	}
	resp, err := c.rpcOK(int(of.ino.Server), req)
	if err != nil {
		return err
	}
	if of.wrote {
		of.expectVersion(resp.Version, true)
		c.settleVersion(of)
		of.wrote = false
	}
	of.srvFd = resp.Fd
	return nil
}

// incRef tells the server one more process now references the descriptor
// (or, for pipes, the given end).
func (c *Client) incRef(of *openFile) error {
	if of.pipe {
		op := proto.OpPipeIncReader
		if of.pipeWrite {
			op = proto.OpPipeIncWriter
		}
		_, err := c.rpcOK(int(of.ino.Server), &proto.Request{Op: op, Target: of.ino})
		return err
	}
	_, err := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpFdIncRef, Fd: of.srvFd, Target: of.ino})
	return err
}

// CloneForFork duplicates this client library for a child process created by
// fork(). Every open descriptor becomes shared: regular-file offsets migrate
// to their file servers, pipe end reference counts are incremented, and the
// child receives a descriptor table with the same numbering (including dup
// relationships). Fork in Hare always runs on the caller's core; exec is the
// point at which a process may move (§3.5).
func (c *Client) CloneForFork(childCore int) (fsapi.Client, error) {
	child := c.spawnPeer(childCore)
	child.cwd = c.cwd
	child.clock.AdvanceTo(c.clock.Now())

	// Preserve dup relationships: descriptors sharing one description in
	// the parent share one description in the child.
	copies := make(map[*openFile]*openFile)
	fds := c.OpenFDs()
	for _, fd := range fds {
		of := c.fds[fd]
		childOf, done := copies[of]
		if !done {
			if err := c.shareFD(of); err != nil {
				return nil, err
			}
			if err := c.incRef(of); err != nil {
				return nil, err
			}
			childOf = &openFile{
				ino:       of.ino,
				ftype:     of.ftype,
				flags:     of.flags,
				srvFd:     of.srvFd,
				pipe:      of.pipe,
				pipeWrite: of.pipeWrite,
			}
			copies[of] = childOf
		}
		childOf.localRefs++
		child.fds[fd] = childOf
		if fd >= child.nextFD {
			child.nextFD = fd + 1
		}
	}
	return child, nil
}

// spawnPeer creates a fresh client library on the given core with a new id,
// sharing the deployment-wide configuration.
func (c *Client) spawnPeer(core int) *Client {
	cfg := c.cfg
	if cfg.IDs != nil {
		cfg.ID = cfg.IDs.Next()
	} else {
		cfg.ID = c.cfg.ID + 1000
	}
	cfg.Core = core
	if cfg.CacheForCore != nil {
		cfg.Cache = cfg.CacheForCore(core)
	}
	return New(cfg)
}

// ExportFds prepares this process's descriptor table for transfer to a
// process exec'd on another core. Each descriptor is shared with its server
// and its reference count incremented on behalf of the new process; the
// caller (which turns into a proxy) later closes its own copies normally.
func (c *Client) ExportFds() ([]proto.FdSpec, error) {
	fds := c.OpenFDs()
	specs := make([]proto.FdSpec, 0, len(fds))
	for _, fd := range fds {
		of := c.fds[fd]
		if err := c.shareFD(of); err != nil {
			return nil, err
		}
		if err := c.incRef(of); err != nil {
			return nil, err
		}
		specs = append(specs, proto.FdSpec{
			Fd:    int32(fd),
			Ino:   of.ino,
			SrvFd: of.srvFd,
			Flags: int32(of.flags),
			Pipe:  of.pipe,
			Write: of.pipeWrite,
		})
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Fd < specs[j].Fd })
	return specs, nil
}

// ImportFds installs a descriptor table received in an exec request.
func (c *Client) ImportFds(specs []proto.FdSpec) {
	for _, spec := range specs {
		of := &openFile{
			ino:       spec.Ino,
			flags:     int(spec.Flags),
			srvFd:     spec.SrvFd,
			pipe:      spec.Pipe,
			pipeWrite: spec.Write,
			localRefs: 1,
		}
		if spec.Pipe {
			of.ftype = fsapi.TypePipe
		} else {
			of.ftype = fsapi.TypeRegular
		}
		c.fds[fsapi.FD(spec.Fd)] = of
		if fsapi.FD(spec.Fd) >= c.nextFD {
			c.nextFD = fsapi.FD(spec.Fd) + 1
		}
	}
}

// NewPeer creates a fresh client library (empty descriptor table) on the
// given core; the scheduling server uses it to build the client for a
// process exec'd onto that core.
func (c *Client) NewPeer(core int) *Client { return c.spawnPeer(core) }

// SetCwd sets the working directory without validation; used when
// reconstructing a process image from an exec request whose directory was
// already validated by the caller.
func (c *Client) SetCwd(cwd string) {
	if cwd == "" {
		cwd = "/"
	}
	c.cwd = cwd
}
