package client

import (
	"runtime"

	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/place"
	"repro/internal/proto"
)

// Epoch-cached routing (DESIGN.md §9).
//
// The client holds one consistent snapshot of the deployment's routing
// state: the placement map (which member server stores each
// distributed-directory entry) plus the endpoint and core of every server
// ever spun up, drained or not. Every request a snapshot routes is stamped
// with the snapshot's epoch; when a server answers EEPOCH the snapshot is
// refreshed from the provider and the operation retries. Requests that are
// not placement-routed — inode, descriptor and pipe operations, and entries
// of centralized directories, which live with their directory's inode —
// carry epoch 0 and never hit the gate: inodes do not migrate.

// Routing is one epoch's routing snapshot. Servers and Cores are indexed by
// server id and cover every server the deployment has ever started
// (drained servers keep serving the inodes they own); the map's members are
// the subset that owns directory-entry shards and receives new placements.
type Routing struct {
	Map     *place.Map
	Servers []msg.EndpointID
	Cores   []int
}

// RoutingProvider publishes the deployment's current routing snapshot; the
// core layer implements it and swaps the snapshot atomically when servers
// are added or removed.
type RoutingProvider interface {
	Routing() *Routing
}

// staticRouting builds the fixed snapshot used when no provider is wired in
// (clients constructed directly by unit tests): the paper's modulo placement
// over the configured server list.
func staticRouting(cfg Config) *Routing {
	return &Routing{
		Map:     place.Initial(place.PolicyModulo, len(cfg.Servers)),
		Servers: append([]msg.EndpointID(nil), cfg.Servers...),
		Cores:   append([]int(nil), cfg.ServerCores...),
	}
}

// refreshRouting reloads the routing snapshot (after an EEPOCH reply) and
// recomputes the designated nearby server used by creation affinity, which
// must stay a placement member.
func (c *Client) refreshRouting() {
	if c.cfg.Provider == nil {
		return
	}
	c.routing = c.cfg.Provider.Routing()
	c.localServer = c.pickLocalServer()
}

// routeEntry is the one place that consults the placement map: it returns
// the server storing the directory entry `name` of `dir`, plus the epoch
// that decision was made under. Entries of centralized directories live with
// the directory's inode and are not placement-routed (epoch 0).
func (c *Client) routeEntry(dir proto.InodeID, dirDist bool, name string) (int, uint64) {
	if dirDist {
		m := c.routing.Map
		return int(m.Route(proto.Hash(dir, name))), m.Epoch()
	}
	return int(dir.Server), 0
}

// maxEpochRetries bounds every EEPOCH refresh-retry loop. A healthy
// migration publishes its new routing before committing, so a client
// refreshes at most a couple of times per membership change; a snapshot
// provider that never catches up to the servers' epoch (a control-plane
// bug, or a test driving the client against a torn-down deployment) would
// otherwise spin forever. Exhaustion surfaces as EIO, the errno for "the
// deployment is wedged", not EEPOCH, which callers treat as retriable.
const maxEpochRetries = 32

// routedEntryRPC routes one directory-entry request, stamps it with the
// routing epoch, and transparently refreshes + retries when the server
// answers EEPOCH (the deployment migrated under us). Protocol errors other
// than EEPOCH are returned in the response, as with rpc. The retry loop is
// bounded by maxEpochRetries; exhaustion returns EIO.
func (c *Client) routedEntryRPC(dir proto.InodeID, dirDist bool, name string, req *proto.Request) (*proto.Response, error) {
	for tries := 0; ; tries++ {
		srv, epoch := c.routeEntry(dir, dirDist, name)
		req.Epoch = epoch
		resp, err := c.rpc(srv, req)
		if err != nil {
			return nil, err
		}
		if resp.Err == fsapi.EEPOCH {
			if tries >= maxEpochRetries {
				return nil, fsapi.EIO
			}
			c.refreshRouting()
			c.noteEpochRefresh(req.Op, tries)
			runtime.Gosched()
			continue
		}
		return resp, nil
	}
}

// routedEntryRPCOK is routedEntryRPC with rpcOK's error convention.
func (c *Client) routedEntryRPCOK(dir proto.InodeID, dirDist bool, name string, req *proto.Request) (*proto.Response, error) {
	resp, err := c.routedEntryRPC(dir, dirDist, name, req)
	if err != nil {
		return nil, err
	}
	if resp.Err != fsapi.OK {
		return resp, resp.Err
	}
	return resp, nil
}

// coalescedCreate routes a create for (parent, name) and, while creation
// affinity keeps the inode server equal to the entry server, sends the
// given coalesced-create request there — refreshing and re-routing on
// EEPOCH like every routed helper. sent=false means the placement (or a
// mid-retry migration) moved the entry server off this client's socket and
// no RPC was issued: the caller takes the split mknod+addmap path instead.
func (c *Client) coalescedCreate(parent proto.InodeID, parentDist bool, name string, req *proto.Request) (resp *proto.Response, sent bool, err error) {
	entrySrv, epoch := c.routeEntry(parent, parentDist, name)
	for tries := 0; c.chooseInodeServer(entrySrv) == entrySrv; tries++ {
		req.Epoch = epoch
		resp, err := c.rpc(entrySrv, req)
		if err != nil {
			return nil, true, err
		}
		if resp.Err == fsapi.EEPOCH {
			if tries >= maxEpochRetries {
				return nil, true, fsapi.EIO
			}
			c.refreshRouting()
			c.noteEpochRefresh(req.Op, tries)
			runtime.Gosched()
			entrySrv, epoch = c.routeEntry(parent, parentDist, name)
			continue
		}
		return resp, true, nil
	}
	return nil, false, nil
}

// routedBroadcast fans a shard request out to every placement member (for a
// distributed directory) or to the directory's home server (centralized),
// re-routing and retrying the whole fan-out when any member answers EEPOCH.
// The returned responses are free of EEPOCH but may carry other protocol
// errors for the caller to interpret. Like routedEntryRPC, the retry loop is
// bounded; exhaustion returns EIO.
func (c *Client) routedBroadcast(home int32, dist bool, req *proto.Request) ([]*proto.Response, error) {
	for tries := 0; ; tries++ {
		var servers []int
		if dist {
			servers = c.memberServers()
			req.Epoch = c.routing.Map.Epoch()
		} else {
			servers = []int{int(home)}
			req.Epoch = 0
		}
		resps, err := c.broadcast(servers, req)
		if err != nil {
			return nil, err
		}
		stale := false
		for _, r := range resps {
			if r.Err == fsapi.EEPOCH {
				stale = true
				break
			}
		}
		if stale {
			if tries >= maxEpochRetries {
				return nil, fsapi.EIO
			}
			c.refreshRouting()
			c.noteEpochRefresh(req.Op, tries)
			runtime.Gosched()
			continue
		}
		return resps, nil
	}
}
