// Package client implements the Hare client library.
//
// Every simulated process owns a client library instance. The library
// implements the POSIX-like fsapi.Client interface by combining direct
// access to the shared buffer cache (through the core's non-coherent private
// cache) with RPCs to the Hare file servers. It maintains the directory
// lookup cache, tracks local vs shared file-descriptor state, coordinates
// multi-server operations such as rename and the three-phase rmdir protocol,
// and applies the paper's optimizations (directory broadcast, message
// coalescing, creation affinity).
package client

import (
	"runtime"
	"sort"
	"sync/atomic"

	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/ncc"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/trace"
)

// Options toggles the individual techniques evaluated in §5.4, plus the
// async RPC pipeline added on top of the paper (DESIGN.md §7). All default
// to enabled in a standard Hare configuration.
type Options struct {
	DirDistribution  bool // honor the per-directory distribution flag (§3.3)
	DirCache         bool // directory lookup cache with invalidations (§3.6.1)
	DirBroadcast     bool // parallel fan-out for readdir/rmdir (§3.6.2)
	DirectAccess     bool // client reads/writes the buffer cache directly (§3.2)
	CreationAffinity bool // NUMA-aware inode placement (§3.6.4)
	Pipelining       bool // async/batched RPCs, extend-ahead, readahead (DESIGN.md §7)
	DataPath         bool // dirty-line writeback + version-skip invalidation (DESIGN.md §8)
}

// DefaultOptions enables every technique.
func DefaultOptions() Options {
	return Options{DirDistribution: true, DirCache: true, DirBroadcast: true, DirectAccess: true, CreationAffinity: true, Pipelining: true, DataPath: true}
}

// Config wires a client library into a Hare deployment.
type Config struct {
	ID   int32
	Core int

	Machine  *sim.Machine
	Network  *msg.Network
	DRAM     *ncc.DRAM
	Cache    *ncc.PrivateCache
	Registry *server.ClientRegistry

	// Servers maps server index to network endpoint; ServerCores gives the
	// core each server is pinned to (used by creation affinity). Both are
	// the static fallback used when no Provider is wired in.
	Servers     []msg.EndpointID
	ServerCores []int

	// Provider publishes the deployment's current routing snapshot
	// (placement map + server endpoints); the client caches it and
	// refreshes on EEPOCH, which is how it learns about servers added or
	// drained after it was created (DESIGN.md §9).
	Provider RoutingProvider

	Root     proto.InodeID
	RootDist bool

	Options Options

	// IDs allocates client ids for forked/exec'd processes; CacheForCore
	// returns the private cache of a given core (needed when a child lands
	// on a different core than its parent).
	IDs          *IDAllocator
	CacheForCore func(core int) *ncc.PrivateCache

	// Tracer, when non-nil, samples FS operations into root spans whose
	// trace context rides on every RPC the operation issues (DESIGN.md
	// §11). Nil keeps the hot path allocation- and cycle-free.
	Tracer *trace.Tracer

	// AutoPark marks a bare client — one driven directly by library
	// callers rather than by the process scheduler. Under the parallel
	// engine a bare client parks its lane after every completed
	// operation: between ops its next send is driven by real time, so a
	// stale pinned frontier would wedge gated servers behind it (an
	// out-of-band Checkpoint/Failover/AddServer would deadlock). The
	// next op's first send re-joins the lane, and a straggler reply
	// resumes it. Scheduler-managed clients leave this false: the
	// harness parks and resumes their lanes at round boundaries.
	AutoPark bool
}

// Stats counts client-side activity.
type Stats struct {
	RPCs           uint64 // request messages sent (a batch envelope counts once)
	DirCacheHits   uint64
	DirCacheMisses uint64
	Invalidations  uint64
	BatchedOps     uint64 // sub-operations carried inside batch envelopes
	Readaheads     uint64 // speculative READ_AT chunks issued ahead of the cursor
	VersionSkips   uint64 // opens whose invalidation a version match made unnecessary
}

// Client is one Hare client library instance. It is not safe for concurrent
// use: each simulated process drives its own Client from a single goroutine.
type Client struct {
	cfg   Config
	ep    *msg.Endpoint
	clock sim.Clock

	fds    map[fsapi.FD]*openFile
	nextFD fsapi.FD
	cwd    string

	dcache *table.Map[dcacheKey, dcacheEnt]

	// routing is the cached routing snapshot (placement map + server
	// endpoints); refreshed from cfg.Provider on EEPOCH replies.
	routing *Routing

	// memberSrvs caches routing.Map's member list as server indices, keyed
	// by the routing snapshot it was derived from (see memberServers).
	memberSrvs   []int
	memberSrvsOf *Routing

	// vcache records, per inode, the server-side data version as of the last
	// moment this client's private cache was known consistent with DRAM for
	// that file (after an open-time invalidation or a close/fsync
	// writeback). A re-open whose OPEN reply carries the same version skips
	// invalidation entirely (DESIGN.md §8).
	vcache *table.Map[proto.InodeID, uint64]

	// respFree recycles decoded response structs on the synchronous RPC
	// path (see getResp/putResp in tables.go).
	respFree []*proto.Response

	localServer int // designated nearby server for creation affinity

	// Tracing state (confined to the owning goroutine). cur is the
	// in-flight sampled root span; nested FS calls (CloseAll → Close,
	// EEPOCH retries) see cur non-nil and chain into the same root
	// instead of opening their own. opSeq counts root candidates for
	// 1-in-N sampling.
	tr    *trace.Tracer
	tem   *trace.Emitter
	cur   *trace.Span
	opSeq uint64

	stats struct {
		rpcs       atomic.Uint64
		dcHits     atomic.Uint64
		dcMisses   atomic.Uint64
		invals     atomic.Uint64
		syscalls   atomic.Uint64
		wbBlocks   atomic.Uint64
		invBlocks  atomic.Uint64
		batched    atomic.Uint64
		readaheads atomic.Uint64
		verSkips   atomic.Uint64
	}
}

// openFile is a process-local open file description. Several descriptors
// (via dup) may reference the same description.
type openFile struct {
	ino   proto.InodeID
	ftype fsapi.FileType
	flags int

	// Local state: used while the descriptor is not shared with another
	// process. The offset, size and block map live here and reads/writes
	// access the buffer cache directly. The block map and the dirty set are
	// extent-coded so they scale with fragmentation, not file size; dirty
	// extents may overlap until writebackFile normalizes them.
	offset int64
	size   int64
	blocks ncc.ExtentList
	dirty  []ncc.Extent
	// dirtyNorm is len(dirty) right after its last in-place normalization;
	// addDirty re-normalizes when the list doubles past it, keeping growth
	// amortized-constant for write patterns that ping-pong between runs.
	dirtyNorm int
	wrote     bool

	// verKnown is the inode data version at which this descriptor's view of
	// the private cache was last known consistent with DRAM; verLost is set
	// when a reply shows the version moved in a way this descriptor's own
	// operations cannot explain (another client mutated the file), which
	// disqualifies the descriptor's close from refreshing the version cache.
	verKnown uint64
	verLost  bool

	// Shared state: the offset has migrated to the file server and every
	// read/write/seek is an RPC (§3.4).
	srvFd proto.FdID

	// Pipe state.
	pipe      bool
	pipeWrite bool

	// Readahead state (server-mediated reads, DESIGN.md §7): a speculative
	// READ_AT for [raOff, raOff+raN) issued after a sequential read. The
	// future is dropped unharvested when the next access does not match.
	raFut *msg.Future
	raOff int64
	raN   int

	localRefs int // dup'd descriptors in this process
}

// New creates a client library instance, registering its callback endpoint
// with the servers' client registry.
func New(cfg Config) *Client {
	c := &Client{
		cfg:    cfg,
		ep:     cfg.Network.NewEndpoint(cfg.Core),
		fds:    make(map[fsapi.FD]*openFile),
		nextFD: 3, // 0-2 reserved for stdio by convention
		cwd:    "/",
		dcache: newDcacheTable(),
		vcache: newVcacheTable(),
		tr:     cfg.Tracer,
		tem:    trace.ClientEmitter(cfg.ID),
	}
	if cfg.Provider != nil {
		c.routing = cfg.Provider.Routing()
	} else {
		c.routing = staticRouting(cfg)
	}
	cfg.Registry.Register(cfg.ID, c.ep.ID)
	c.localServer = c.pickLocalServer()
	return c
}

// ID returns the client library id.
func (c *Client) ID() int32 { return c.cfg.ID }

// EndpointID returns the client's network endpoint (its lane id under the
// parallel virtual-time engine).
func (c *Client) EndpointID() msg.EndpointID { return c.ep.ID }

// GateActive reports whether the parallel virtual-time engine is installed.
func (c *Client) GateActive() bool { return c.cfg.Network.Gate() != nil }

// SetAutoPark marks this client as bare (library-driven): under the
// parallel engine its lane parks after every completed operation (see
// Config.AutoPark).
func (c *Client) SetAutoPark(on bool) { c.cfg.AutoPark = on }

// GatePark marks this client's lane quiescent while it waits on something
// whose timing other lanes control (a root process waiting on its children).
// No-op in serialized mode.
func (c *Client) GatePark() { c.cfg.Network.GateIdle(c.ep.ID) }

// GateResume re-joins this client's lane at its current clock after a
// GatePark. The caller must first advance the clock past every event that
// completed while parked (e.g. the latest child end time), so the lane does
// not promise sends in the system's past. No-op in serialized mode.
func (c *Client) GateResume() { c.cfg.Network.GateJoin(c.ep.ID, c.clock.Now()) }

// Core returns the core this client is pinned to.
func (c *Client) Core() int { return c.cfg.Core }

// Clock returns the client's current virtual time.
func (c *Client) Clock() sim.Cycles { return c.clock.Now() }

// AdvanceClock moves the client's virtual clock to at least t. The process
// and scheduling layers use it to model time spent outside the file system
// (CPU work, inherited start times).
func (c *Client) AdvanceClock(t sim.Cycles) { c.clock.AdvanceTo(t) }

// Compute charges d cycles of application CPU work on the client's core.
func (c *Client) Compute(d sim.Cycles) {
	end := c.cfg.Machine.Execute(c.cfg.Core, c.clock.Now(), d)
	c.clock.AdvanceTo(end)
}

// Stats returns a snapshot of client counters.
func (c *Client) Stats() Stats {
	return Stats{
		RPCs:           c.stats.rpcs.Load(),
		DirCacheHits:   c.stats.dcHits.Load(),
		DirCacheMisses: c.stats.dcMisses.Load(),
		Invalidations:  c.stats.invals.Load(),
		BatchedOps:     c.stats.batched.Load(),
		Readaheads:     c.stats.readaheads.Load(),
		VersionSkips:   c.stats.verSkips.Load(),
	}
}

// noteVersion records the inode's data version at a moment when this
// client's private cache is consistent with DRAM for the file (just
// invalidated, or just written back).
func (c *Client) noteVersion(ino proto.InodeID, v uint64) {
	if !c.cfg.Options.DataPath {
		return
	}
	c.vcache.Put(ino, v)
}

// expectVersion folds a version carried by one of this descriptor's own
// replies into its consistency window. bumped says the operation itself may
// have moved the version by exactly one; any other movement proves another
// client mutated the file, so the window is lost and the descriptor must not
// refresh the version cache at close.
func (of *openFile) expectVersion(v uint64, bumped bool) {
	if v == of.verKnown || (bumped && v == of.verKnown+1) {
		of.verKnown = v
		return
	}
	of.verLost = true
}

// settleVersion updates the version cache after a descriptor operation that
// re-established consistency (writeback + close/fsync/truncate): an intact
// window records the new version; a lost one evicts the entry so the next
// open invalidates.
func (c *Client) settleVersion(of *openFile) {
	if of.verLost {
		c.vcache.Delete(of.ino)
		return
	}
	c.noteVersion(of.ino, of.verKnown)
}

// Options returns the technique configuration this client runs with.
func (c *Client) Options() Options { return c.cfg.Options }

// pickLocalServer chooses the designated nearby server used by creation
// affinity. Clients on the same socket spread across that socket's servers
// so they do not all hammer one server. Only placement members qualify:
// drained servers must not receive new inodes.
func (c *Client) pickLocalServer() int {
	rt := c.routing
	members := rt.Map.MembersRef()
	if len(members) == 0 {
		return 0
	}
	topo := c.cfg.Machine.Topo
	mySocket := topo.Socket(c.cfg.Core)
	var near []int
	for _, id := range members {
		if int(id) < len(rt.Cores) && topo.Socket(rt.Cores[id]) == mySocket {
			near = append(near, int(id))
		}
	}
	if len(near) == 0 {
		return int(members[int(c.cfg.ID)%len(members)])
	}
	return near[int(c.cfg.ID)%len(near)]
}

// charge accounts for client-library CPU time on this core.
func (c *Client) charge(d sim.Cycles) {
	end := c.cfg.Machine.Execute(c.cfg.Core, c.clock.Now(), d)
	c.clock.AdvanceTo(end)
}

// syscall charges the fixed per-system-call client library overhead.
func (c *Client) syscall() {
	c.stats.syscalls.Add(1)
	c.charge(c.cfg.Machine.Cost.ClientSyscall)
}

// beginOp opens a root span for one FS operation when the tracer samples
// it. It returns nil — and does no work at all — when tracing is off, the
// op lost the 1-in-N sampling draw, or a root is already open (nested FS
// calls and EEPOCH retries chain into the enclosing root). Call sites keep
// the defer behind the nil check so an untraced op allocates nothing.
func (c *Client) beginOp(name string) *trace.Span {
	if c.tr == nil || c.cur != nil {
		return nil
	}
	c.opSeq++
	if n := uint64(c.tr.Sample()); n > 1 && (c.opSeq-1)%n != 0 {
		return nil
	}
	id := c.tem.Next()
	s := &trace.Span{
		Trace: id, ID: id, Kind: trace.KindRoot, Name: name,
		Where: c.cfg.ID, Start: c.clock.Now(),
	}
	c.cur = s
	c.charge(c.cfg.Machine.Cost.TraceSpan)
	return s
}

// endOp closes and records the root span opened by beginOp.
func (c *Client) endOp(s *trace.Span, err error) {
	s.End = c.clock.Now()
	s.Err = errnoOf(err)
	c.cur = nil
	c.tr.Record(*s)
}

// opDone parks a bare client's lane once a public operation completes
// (see Config.AutoPark). No-op in serialized mode and for
// scheduler-managed clients.
func (c *Client) opDone() {
	if c.cfg.AutoPark {
		c.cfg.Network.GateIdle(c.ep.ID)
	}
}

// errnoOf maps an operation error to the errno recorded on its span.
func errnoOf(err error) int32 {
	if err == nil {
		return 0
	}
	if e, ok := err.(fsapi.Errno); ok {
		return int32(e)
	}
	return -1
}

// noteEpochRefresh records one EEPOCH refresh-and-retry round under the
// current root span, so retry storms show up inside the op that suffered
// them rather than as detached noise. No-op when the op is untraced.
func (c *Client) noteEpochRefresh(op proto.Op, tries int) {
	if c.cur == nil {
		return
	}
	start := c.clock.Now()
	c.charge(c.cfg.Machine.Cost.TraceSpan)
	c.tr.Record(trace.Span{
		Trace: c.cur.Trace, ID: c.tem.Next(), Parent: c.cur.ID,
		Kind: trace.KindEpochRefresh, Name: op.String(), Where: c.cfg.ID,
		Start: start, End: c.clock.Now(), Idx: int32(tries),
	})
}

// traceRequest stamps req with the current root's trace context and
// returns the span ID the server's child spans will parent to. Async sends
// and broadcasts parent server spans directly under the root; synchronous
// rpc allocates a dedicated RPC span in between.
func (c *Client) traceRequest(req *proto.Request) {
	if c.cur != nil {
		req.Trace = c.cur.Trace
		req.Span = c.cur.ID
	}
}

// rpc performs one synchronous RPC to the given server index and returns the
// decoded response. Virtual time: marshal+send cost before, propagation
// handled by the network, receive cost after.
//
// After each exchange the goroutine yields to the Go scheduler. The accuracy
// of the virtual-time queueing model depends on the simulated processes
// staying roughly in (virtual) lockstep; without the yield, the runtime
// tends to run one client/server ping-pong chain far ahead of the others,
// which shows up as artificial queueing delay (see DESIGN.md §4).
func (c *Client) rpc(srv int, req *proto.Request) (*proto.Response, error) {
	rt := c.routing
	if srv < 0 || srv >= len(rt.Servers) {
		return nil, fsapi.EIO
	}
	req.ClientID = c.cfg.ID
	var rpcID uint64
	if c.cur != nil {
		rpcID = c.tem.Next()
		req.Trace, req.Span = c.cur.Trace, rpcID
		c.charge(c.cfg.Machine.Cost.TraceSpan)
	}
	payload := c.marshalReq(req)
	cost := c.cfg.Machine.Cost
	sentAt := c.clock.Now()
	c.charge(cost.MsgSend)
	env, err := c.cfg.Network.RPC(c.ep, rt.Servers[srv], proto.KindRequest, payload, c.clock.Now())
	if err != nil {
		return nil, fsapi.EIO
	}
	c.stats.rpcs.Add(1)
	c.clock.AdvanceTo(env.ArriveAt)
	c.charge(cost.MsgRecv)
	resp := c.getResp()
	derr := proto.UnmarshalResponseInto(resp, env.Payload)
	c.ep.PutBuf(env.Payload) // decoded fields never alias the wire bytes
	if derr != nil {
		return nil, fsapi.EIO
	}
	if rpcID != 0 {
		c.tr.Record(trace.Span{
			Trace: c.cur.Trace, ID: rpcID, Parent: c.cur.ID,
			Kind: trace.KindRPC, Name: req.Op.String(), Where: c.cfg.ID,
			Start: sentAt, End: c.clock.Now(), Err: int32(resp.Err),
		})
	}
	runtime.Gosched()
	return resp, nil
}

// RPCTo performs a synchronous RPC to an arbitrary endpoint (used for
// scheduling-server requests such as exec), with the same virtual-time
// accounting as file-server RPCs.
//
// The await is a gate handoff (AwaitHandoff): the only caller is the exec
// proxy, whose reply arrives after the scheduling server has handed this
// lane's work to a child client lane. Bumping the proxy's lane frontier past
// the send time here would let gated servers run ahead of the child before
// it joins; the proxy lane instead stays floored at the send until the
// scheduler idles it (DESIGN.md §13).
func (c *Client) RPCTo(dst msg.EndpointID, req *proto.Request) (*proto.Response, error) {
	req.ClientID = c.cfg.ID
	c.traceRequest(req)
	payload := c.marshalReq(req)
	cost := c.cfg.Machine.Cost
	c.charge(cost.MsgSend)
	fut, err := c.cfg.Network.SendAsync(c.ep, dst, proto.KindRequest, payload, c.clock.Now())
	if err != nil {
		return nil, fsapi.EIO
	}
	env, err := fut.AwaitHandoff()
	if err != nil {
		return nil, fsapi.EIO
	}
	c.stats.rpcs.Add(1)
	c.clock.AdvanceTo(env.ArriveAt)
	c.charge(cost.MsgRecv)
	resp := new(proto.Response)
	derr := proto.UnmarshalResponseInto(resp, env.Payload)
	c.ep.PutBuf(env.Payload)
	if derr != nil {
		return nil, fsapi.EIO
	}
	if resp.Err != fsapi.OK {
		return resp, resp.Err
	}
	return resp, nil
}

// rpcOK performs an RPC and converts a non-OK errno into a Go error.
func (c *Client) rpcOK(srv int, req *proto.Request) (*proto.Response, error) {
	resp, err := c.rpc(srv, req)
	if err != nil {
		return nil, err
	}
	if resp.Err != fsapi.OK {
		return resp, resp.Err
	}
	return resp, nil
}

// broadcast sends the same request to the given servers. With the directory
// broadcast optimization the RPCs overlap; otherwise they run one at a time.
func (c *Client) broadcast(servers []int, req *proto.Request) ([]*proto.Response, error) {
	req.ClientID = c.cfg.ID
	c.traceRequest(req)
	payload := c.marshalReq(req)
	cost := c.cfg.Machine.Cost
	rt := c.routing
	dsts := make([]msg.EndpointID, len(servers))
	for i, s := range servers {
		if s < 0 || s >= len(rt.Servers) {
			return nil, fsapi.EIO
		}
		dsts[i] = rt.Servers[s]
	}
	parallel := c.cfg.Options.DirBroadcast
	// Charge one send per destination (marshaling/enqueueing is per
	// message even when the latencies overlap).
	c.charge(cost.MsgSend * sim.Cycles(len(dsts)))
	results := c.cfg.Network.Broadcast(c.ep, dsts, proto.KindRequest, payload, c.clock.Now(), parallel)
	out := make([]*proto.Response, len(results))
	var latest sim.Cycles
	for i, r := range results {
		if r.Err != nil {
			return nil, fsapi.EIO
		}
		c.stats.rpcs.Add(1)
		if r.Env.ArriveAt > latest {
			latest = r.Env.ArriveAt
		}
		// All replies are alive at once, so each gets a fresh struct rather
		// than the shared free list.
		resp := new(proto.Response)
		derr := proto.UnmarshalResponseInto(resp, r.Env.Payload)
		c.ep.PutBuf(r.Env.Payload)
		if derr != nil {
			return nil, fsapi.EIO
		}
		out[i] = resp
	}
	c.clock.AdvanceTo(latest)
	c.charge(cost.MsgRecv * sim.Cycles(len(dsts)))
	return out, nil
}

// chooseInodeServer applies creation affinity: if the entry server is on the
// client's socket, coalesce by using it; otherwise use the designated nearby
// server (§3.6.4). With affinity disabled the inode always goes to the entry
// server, which maximizes message coalescing.
func (c *Client) chooseInodeServer(entrySrv int) int {
	if !c.cfg.Options.CreationAffinity {
		return entrySrv
	}
	rt := c.routing
	topo := c.cfg.Machine.Topo
	if entrySrv < len(rt.Cores) &&
		topo.Socket(rt.Cores[entrySrv]) == topo.Socket(c.cfg.Core) {
		return entrySrv
	}
	return c.localServer
}

// allocFD assigns the next free descriptor number to the open file.
func (c *Client) allocFD(of *openFile) fsapi.FD {
	fd := c.nextFD
	for {
		if _, used := c.fds[fd]; !used {
			break
		}
		fd++
	}
	c.nextFD = fd + 1
	of.localRefs++
	c.fds[fd] = of
	return fd
}

// getFD looks up an open descriptor.
func (c *Client) getFD(fd fsapi.FD) (*openFile, error) {
	of, ok := c.fds[fd]
	if !ok {
		return nil, fsapi.EBADF
	}
	return of, nil
}

// Getcwd returns the process working directory.
func (c *Client) Getcwd() string { return c.cwd }

// Chdir changes the working directory after verifying it is a directory.
func (c *Client) Chdir(path string) (err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("chdir"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	abs := c.absPath(path)
	_, ftype, _, err := c.resolvePath(abs)
	if err != nil {
		return err
	}
	if ftype != fsapi.TypeDir {
		return fsapi.ENOTDIR
	}
	c.cwd = abs
	return nil
}

// Dup duplicates a descriptor; both numbers share the same description (and
// therefore the same offset).
func (c *Client) Dup(fd fsapi.FD) (fsapi.FD, error) {
	c.syscall()
	defer c.opDone()
	of, err := c.getFD(fd)
	if err != nil {
		return -1, err
	}
	return c.allocFD(of), nil
}

// OpenFDs returns the currently open descriptor numbers (sorted); used by
// the process layer when building exec fd tables and by tests.
func (c *Client) OpenFDs() []fsapi.FD {
	out := make([]fsapi.FD, 0, len(c.fds))
	for fd := range c.fds {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CloseAll closes every open descriptor (process exit). With pipelining on,
// the per-file close/size-update RPCs to all touched servers are flushed as
// one scatter — same-server closes share a batch message and the round
// trips to distinct servers overlap — instead of one synchronous ping-pong
// per descriptor. Close errors are discarded either way: the process is
// exiting and has nobody to report them to.
func (c *Client) CloseAll() {
	if s := c.beginOp("closeall"); s != nil {
		defer func() { c.endOp(s, nil) }()
	}
	if !c.cfg.Options.Pipelining {
		for fd := range c.fds {
			_ = c.Close(fd)
		}
		return
	}
	// Collapse dup'd descriptors onto their open file descriptions.
	refs := make(map[*openFile]int)
	for fd, of := range c.fds {
		refs[of]++
		delete(c.fds, fd)
	}
	perSrv := make(map[int][]*proto.Request)
	for of, n := range refs {
		of.localRefs -= n
		if of.localRefs > 0 {
			continue
		}
		req := c.closeRequest(of)
		if of.pipe {
			// Pipe closes can wake parked peers; they keep the plain path.
			_, _ = c.rpcOK(int(of.ino.Server), req)
			continue
		}
		perSrv[int(of.ino.Server)] = append(perSrv[int(of.ino.Server)], req)
	}
	if len(perSrv) > 0 {
		_, _ = c.scatter(perSrv)
	}
}

// Sync flushes every dirty open regular file: dirty private-cache blocks are
// written back to the shared DRAM and the size updates for all touched
// servers travel as one overlapping scatter (batched per server). It is the
// multi-file counterpart of Fsync.
func (c *Client) Sync() (err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("sync"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	perSrv := make(map[int][]*proto.Request)
	perSrvFiles := make(map[int][]*openFile)
	flushed := make(map[*openFile]bool)
	for _, of := range c.fds {
		if flushed[of] || of.pipe || of.srvFd != proto.NilFd {
			continue
		}
		flushed[of] = true
		c.writebackFile(of)
		if !of.wrote {
			continue
		}
		srv := int(of.ino.Server)
		perSrv[srv] = append(perSrv[srv],
			&proto.Request{Op: proto.OpSetSize, Target: of.ino, Size: of.size})
		perSrvFiles[srv] = append(perSrvFiles[srv], of)
	}
	if len(perSrv) == 0 {
		return nil
	}
	resps, err := c.scatter(perSrv)
	if err != nil {
		return err
	}
	for srv, srvResps := range resps {
		for i, r := range srvResps {
			if r.Err != fsapi.OK {
				return r.Err
			}
			// SET_SIZE bumped the version; settle each descriptor's window
			// so a reopen after Sync can still skip invalidation (responses
			// come back in request order, mirroring perSrvFiles).
			of := perSrvFiles[srv][i]
			of.expectVersion(r.Version, true)
			c.settleVersion(of)
		}
	}
	return nil
}
