package client_test

// POSIX ftruncate semantics pinned by the chaos harness's findings
// (DESIGN.md §10): a growing truncate exposes a readable zero-filled tail,
// a shrink re-exposes zeros on a later grow, and a grow the partition
// cannot back fails cleanly without moving the size.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/sched"
)

func TestTruncateGrowShrinkExposesZeros(t *testing.T) {
	for _, direct := range []bool{true, false} {
		tech := core.AllTechniques()
		tech.DirectAccess = direct
		sys := newSystem(t, tech)
		cli := sys.NewClient(0)

		payload := bytes.Repeat([]byte{0xAB}, 3000)
		writeFile(t, cli, "/t.bin", payload)

		fd, err := cli.Open("/t.bin", fsapi.ORdWr, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Grow across a block boundary: tail must read as zeros.
		if err := cli.Ftruncate(fd, 6000); err != nil {
			t.Fatal(err)
		}
		// Shrink into the first block, then grow again: the shrunk-away
		// 0xAB bytes must not resurface.
		if err := cli.Ftruncate(fd, 1000); err != nil {
			t.Fatal(err)
		}
		if err := cli.Ftruncate(fd, 5000); err != nil {
			t.Fatal(err)
		}
		if err := cli.Close(fd); err != nil {
			t.Fatal(err)
		}

		want := append(append([]byte{}, payload[:1000]...), make([]byte, 4000)...)
		got := readAllPath(t, cli, "/t.bin")
		if !bytes.Equal(got, want) {
			t.Fatalf("direct=%v: read %d bytes, first diff at %d", direct, len(got), firstDiff(got, want))
		}
		// And from another core (no warm private cache).
		got = readAllPath(t, sys.NewClient(2), "/t.bin")
		if !bytes.Equal(got, want) {
			t.Fatalf("direct=%v cross-core: read %d bytes, first diff at %d", direct, len(got), firstDiff(got, want))
		}
	}
}

func TestTruncateGrowENOSPCLeavesSizeUntouched(t *testing.T) {
	// A one-block-per-server cache: the grow cannot be backed and must
	// fail without moving the file size (a failed grow that half-applied
	// would stat at the new size with an unreadable, unlogged tail).
	sys, err := core.New(core.Config{
		Cores:            2,
		Servers:          2,
		Timeshare:        true,
		Techniques:       core.AllTechniques(),
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 2 * 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	cli := sys.NewClient(0)

	writeFile(t, cli, "/small", []byte("fits in one block"))
	fd, err := cli.Open("/small", fsapi.OWrOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Ftruncate(fd, 64*4096); !fsapi.IsErrno(err, fsapi.ENOSPC) {
		t.Fatalf("grow past the partition: %v, want ENOSPC", err)
	}
	cli.Close(fd)
	st, err := cli.Stat("/small")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len("fits in one block")) {
		t.Fatalf("failed grow moved the size to %d", st.Size)
	}
	if got := readAllPath(t, cli, "/small"); string(got) != "fits in one block" {
		t.Fatalf("contents after failed grow: %q", got)
	}
}

// readAllPath reads a whole file, looping on partial reads.
func readAllPath(t *testing.T, fs fsapi.Client, path string) []byte {
	t.Helper()
	st, err := fs.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	fd, err := fs.Open(path, fsapi.ORdOnly, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer fs.Close(fd)
	buf := make([]byte, st.Size+1)
	total := 0
	for total < len(buf) {
		n, err := fs.Read(fd, buf[total:])
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	return buf[:total]
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
