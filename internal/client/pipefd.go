package client

import (
	"repro/internal/fsapi"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Pipe creates a pipe on a nearby file server and returns the read and write
// descriptors. Both ends perform RPCs to the pipe's server, so a pipe shared
// between processes on different cores behaves like the paper's shared pipe
// (used, for example, by make's jobserver).
func (c *Client) Pipe() (_, _ fsapi.FD, err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("pipe"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	srv := c.localServer
	if !c.cfg.Options.CreationAffinity {
		srv = int(c.cfg.Root.Server)
	}
	resp, err := c.rpcOK(srv, &proto.Request{Op: proto.OpPipeCreate})
	if err != nil {
		return -1, -1, err
	}
	rof := &openFile{ino: resp.Ino, ftype: fsapi.TypePipe, pipe: true, pipeWrite: false, flags: fsapi.ORdOnly}
	wof := &openFile{ino: resp.Ino, ftype: fsapi.TypePipe, pipe: true, pipeWrite: true, flags: fsapi.OWrOnly}
	rfd := c.allocFD(rof)
	wfd := c.allocFD(wof)
	return rfd, wfd, nil
}

// pipeRead reads from a pipe end; it blocks (the RPC parks at the server)
// until data or EOF is available.
func (c *Client) pipeRead(of *openFile, p []byte) (int, error) {
	if of.pipeWrite {
		return 0, fsapi.EBADF
	}
	resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{
		Op:     proto.OpPipeRead,
		Target: of.ino,
		Count:  int32(len(p)),
	})
	if err != nil {
		return 0, err
	}
	return copy(p, resp.Data), nil
}

// pipeWriteAll writes the whole buffer to a pipe, looping on partial writes
// (the server accepts at most the free buffer space per RPC).
func (c *Client) pipeWriteAll(of *openFile, p []byte) (int, error) {
	if !of.pipeWrite {
		return 0, fsapi.EBADF
	}
	written := 0
	for written < len(p) {
		resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{
			Op:     proto.OpPipeWrite,
			Target: of.ino,
			Data:   p[written:],
		})
		if err != nil {
			if written > 0 && err == fsapi.EPIPE {
				return written, err
			}
			return written, err
		}
		if resp.N <= 0 {
			break
		}
		written += int(resp.N)
	}
	return written, nil
}

// sharedRead reads through the file server at the shared offset (§3.4). If
// the reply shows this client is the last holder, the descriptor reverts to
// local state.
func (c *Client) sharedRead(of *openFile, p []byte) (int, error) {
	resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{
		Op:     proto.OpFdRead,
		Fd:     of.srvFd,
		Target: of.ino,
		Count:  int32(len(p)),
	})
	if err != nil {
		return 0, err
	}
	n := copy(p, resp.Data)
	c.maybeUnshare(of, resp)
	return n, nil
}

// sharedWrite writes through the file server at the shared offset.
func (c *Client) sharedWrite(of *openFile, p []byte) (int, error) {
	c.dropReadaheadsFor(of.ino)
	resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{
		Op:     proto.OpFdWrite,
		Fd:     of.srvFd,
		Target: of.ino,
		Data:   p,
	})
	if err != nil {
		return 0, err
	}
	c.maybeUnshare(of, resp)
	return int(resp.N), nil
}

// maybeUnshare reverts a shared descriptor to local state when the server
// reports that this client holds the only remaining reference (§3.4).
func (c *Client) maybeUnshare(of *openFile, last *proto.Response) {
	if last.Refs != 1 || of.srvFd == proto.NilFd {
		return
	}
	resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpFdUnshare, Fd: of.srvFd, Target: of.ino})
	if err != nil {
		return // still shared; harmless
	}
	blocksResp, err := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpGetBlocks, Target: of.ino})
	if err != nil {
		return
	}
	of.srvFd = proto.NilFd
	of.offset = resp.Offset
	of.size = blocksResp.Size
	refreshBlocks(of, blocksResp.Extents)
	// While the descriptor was shared, all writes went through the server
	// straight to DRAM, so any private-cache copies of the file's blocks are
	// suspect: drop them before resuming direct access, and restart the
	// version window at the freshly consistent point.
	if c.cfg.Options.DirectAccess && of.blocks.Len() > 0 {
		dropped := c.cfg.Cache.InvalidateExtents(of.blocks.Runs())
		c.stats.invBlocks.Add(uint64(dropped))
		c.charge(sim.Cycles(dropped) * c.cfg.Machine.Cost.CachePerLine)
	}
	of.verKnown = blocksResp.Version
	of.verLost = false
	c.noteVersion(of.ino, blocksResp.Version)
}
