package client

import (
	"repro/internal/fsapi"
	"repro/internal/proto"
)

// dcacheKey identifies a cached directory lookup.
type dcacheKey struct {
	dir  proto.InodeID
	name string
}

// dcacheEnt is the cached result of a lookup RPC.
type dcacheEnt struct {
	ino   proto.InodeID
	ftype fsapi.FileType
	dist  bool
}

// absPath converts a possibly relative path into an absolute, dot-resolved
// path using the process working directory.
func (c *Client) absPath(path string) string {
	if !fsapi.IsAbs(path) {
		path = fsapi.Join(c.cwd, path)
		if !fsapi.IsAbs(path) {
			path = "/" + path
		}
	}
	return fsapi.ResolveDots(path)
}

// drainInvalidations processes all pending directory-cache invalidation
// callbacks. Hare performs this before every use of the directory cache:
// because message delivery is atomic, any invalidation sent before this
// lookup began is guaranteed to be in the queue already (§3.6.1).
func (c *Client) drainInvalidations() {
	for {
		env, ok := c.ep.Callbacks.TryPop()
		if !ok {
			return
		}
		c.clock.AdvanceTo(env.ArriveAt)
		c.charge(c.cfg.Machine.Cost.MsgRecv)
		iv, err := proto.UnmarshalInvalidation(env.Payload)
		if err != nil {
			continue
		}
		c.stats.invals.Add(1)
		if iv.Name == "" {
			// Wildcard from a recovered server: its invalidation-tracking
			// sets died with it, so every cached entry is suspect.
			c.dcache.Clear()
			continue
		}
		c.dcache.Delete(dcacheKey{iv.Dir, iv.Name})
	}
}

// lookupEntry resolves one path component: the entry `name` in directory
// `dir`. It consults the directory cache first (when enabled) and falls back
// to a LOOKUP RPC to the entry's server.
func (c *Client) lookupEntry(dir proto.InodeID, dirDist bool, name string) (dcacheEnt, error) {
	if c.cfg.Options.DirCache {
		c.drainInvalidations()
		if ent, ok := c.dcache.Get(dcacheKey{dir, name}); ok {
			c.stats.dcHits.Add(1)
			return ent, nil
		}
		c.stats.dcMisses.Add(1)
	}
	resp, err := c.routedEntryRPCOK(dir, dirDist, name, &proto.Request{Op: proto.OpLookup, Dir: dir, Name: name})
	if err != nil {
		return dcacheEnt{}, err
	}
	ent := dcacheEnt{ino: resp.Ino, ftype: resp.Ftype, dist: resp.Dist}
	c.putResp(resp) // sole owner: nothing above retains the response
	if c.cfg.Options.DirCache {
		c.dcache.Put(dcacheKey{dir, name}, ent)
	}
	return ent, nil
}

// cacheEntry records a lookup result in the directory cache (after creating
// an entry, for example); the server tracks this client for invalidations.
func (c *Client) cacheEntry(dir proto.InodeID, name string, ent dcacheEnt) {
	if !c.cfg.Options.DirCache {
		return
	}
	c.dcache.Put(dcacheKey{dir, name}, ent)
}

// uncacheEntry drops a cached lookup (after unlink/rename/rmdir by this
// client).
func (c *Client) uncacheEntry(dir proto.InodeID, name string) {
	c.dcache.Delete(dcacheKey{dir, name})
}

// uncacheDir drops every cached entry that belongs to the given directory.
// Deleting during Range would disturb the walk (backward-shift compaction
// moves entries), so the keys are collected first.
func (c *Client) uncacheDir(dir proto.InodeID) {
	var doomed []dcacheKey
	c.dcache.Range(func(k dcacheKey, _ dcacheEnt) bool {
		if k.dir == dir {
			doomed = append(doomed, k)
		}
		return true
	})
	for _, k := range doomed {
		c.dcache.Delete(k)
	}
}

// rootEnt describes the root directory from the client's configuration.
func (c *Client) rootEnt() dcacheEnt {
	return dcacheEnt{ino: c.cfg.Root, ftype: fsapi.TypeDir, dist: c.cfg.RootDist}
}

// resolvePath walks an absolute path and returns the final component's
// inode, type, and (for directories) distribution flag.
func (c *Client) resolvePath(abs string) (proto.InodeID, fsapi.FileType, bool, error) {
	cur := c.rootEnt()
	comps := fsapi.SplitPath(abs)
	for _, comp := range comps {
		if cur.ftype != fsapi.TypeDir {
			return proto.NilInode, 0, false, fsapi.ENOTDIR
		}
		next, err := c.lookupEntry(cur.ino, cur.dist, comp)
		if err != nil {
			return proto.NilInode, 0, false, err
		}
		cur = next
	}
	return cur.ino, cur.ftype, cur.dist, nil
}

// resolveParent walks an absolute path up to (but not including) its final
// component and returns the parent directory plus the final name.
func (c *Client) resolveParent(abs string) (parent proto.InodeID, parentDist bool, name string, err error) {
	dir, base := fsapi.SplitDirBase(abs)
	if base == "." || base == "" {
		return proto.NilInode, false, "", fsapi.EINVAL
	}
	if !fsapi.ValidName(base) {
		return proto.NilInode, false, "", fsapi.EINVAL
	}
	ino, ftype, dist, rerr := c.resolvePath(dir)
	if rerr != nil {
		return proto.NilInode, false, "", rerr
	}
	if ftype != fsapi.TypeDir {
		return proto.NilInode, false, "", fsapi.ENOTDIR
	}
	return ino, dist, base, nil
}
