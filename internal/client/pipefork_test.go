package client_test

// Coverage for pipefd.go and fork.go: pipe read/write/close semantics and
// descriptor inheritance across fork. (The chaos harness additionally drives
// the same paths under message faults via its pipe+fork op.)

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fsapi"
)

func writeFile(t *testing.T, fs fsapi.Client, path string, data []byte) {
	t.Helper()
	fd, err := fs.Open(path, fsapi.OCreate|fsapi.OWrOnly|fsapi.OTrunc, fsapi.Mode644)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := fs.Write(fd, data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func TestPipeReadWriteCloseSemantics(t *testing.T) {
	sys := newSystem(t, core.AllTechniques())
	cli := sys.NewClient(0)

	rd, wr, err := cli.Pipe()
	if err != nil {
		t.Fatal(err)
	}

	// Wrong-direction accesses fail with EBADF.
	if _, err := cli.Write(rd, []byte("x")); !fsapi.IsErrno(err, fsapi.EBADF) {
		t.Fatalf("write to read end: %v, want EBADF", err)
	}
	if _, err := cli.Read(wr, make([]byte, 1)); !fsapi.IsErrno(err, fsapi.EBADF) {
		t.Fatalf("read from write end: %v, want EBADF", err)
	}
	// Pipes have no offset.
	if _, err := cli.Seek(rd, 0, fsapi.SeekSet); !fsapi.IsErrno(err, fsapi.ESPIPE) {
		t.Fatalf("seek on pipe: %v, want ESPIPE", err)
	}

	// Bytes flow in order across multiple writes and partial reads.
	if _, err := cli.Write(wr, []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(wr, []byte("world")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	n, err := cli.Read(rd, buf)
	if err != nil || string(buf[:n]) != "hell" {
		t.Fatalf("first read: %q, %v", buf[:n], err)
	}
	rest := make([]byte, 16)
	n, err = cli.Read(rd, rest)
	if err != nil || string(rest[:n]) != "o world" {
		t.Fatalf("second read: %q, %v", rest[:n], err)
	}

	// Closing the write end delivers EOF once the buffer drains.
	if _, err := cli.Write(wr, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(wr); err != nil {
		t.Fatal(err)
	}
	n, err = cli.Read(rd, rest)
	if err != nil || string(rest[:n]) != "tail" {
		t.Fatalf("drain after writer close: %q, %v", rest[:n], err)
	}
	n, err = cli.Read(rd, rest)
	if err != nil || n != 0 {
		t.Fatalf("read past EOF: n=%d err=%v, want 0, nil", n, err)
	}
	if err := cli.Close(rd); err != nil {
		t.Fatal(err)
	}
	// Double close is EBADF, not a crash.
	if err := cli.Close(rd); !fsapi.IsErrno(err, fsapi.EBADF) {
		t.Fatalf("double close: %v, want EBADF", err)
	}
}

func TestPipeWriteAfterReaderCloseIsEPIPE(t *testing.T) {
	sys := newSystem(t, core.AllTechniques())
	cli := sys.NewClient(0)
	rd, wr, err := cli.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(rd); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(wr, []byte("nobody listens")); !fsapi.IsErrno(err, fsapi.EPIPE) {
		t.Fatalf("write after reader close: %v, want EPIPE", err)
	}
	if err := cli.Close(wr); err != nil {
		t.Fatal(err)
	}
}

func TestPipeBlocksReaderUntilWrite(t *testing.T) {
	// A pipe read with an open write end and no data parks at the server
	// until bytes arrive — it must not return early.
	sys := newSystem(t, core.AllTechniques())
	parent := sys.NewClient(0)
	rd, wr, err := parent.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	childFS, err := parent.CloneForFork(1)
	if err != nil {
		t.Fatal(err)
	}
	child := childFS.(fsapi.Client)

	got := make(chan string, 1)
	go func() {
		buf := make([]byte, 16)
		n, err := child.Read(rd, buf)
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		got <- string(buf[:n])
	}()
	select {
	case v := <-got:
		t.Fatalf("read returned %q before any write", v)
	case <-time.After(10 * time.Millisecond):
	}
	if _, err := parent.Write(wr, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "wake" {
			t.Fatalf("parked read woke with %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked read never woke")
	}
	parent.Close(rd)
	parent.Close(wr)
	child.Close(rd)
	child.Close(wr)
}

func TestForkInheritsRegularFileOffset(t *testing.T) {
	// Fork shares open descriptions: the child inherits the parent's
	// offset, and movement on either side is visible to the other (§3.4).
	sys := newSystem(t, core.AllTechniques())
	parent := sys.NewClient(0)

	writeFile(t, parent, "/shared.txt", []byte("0123456789"))
	fd, err := parent.Open("/shared.txt", fsapi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := parent.Read(fd, buf); err != nil || string(buf) != "012" {
		t.Fatalf("parent pre-fork read: %q, %v", buf, err)
	}

	childFS, err := parent.CloneForFork(2)
	if err != nil {
		t.Fatal(err)
	}
	child := childFS.(fsapi.Client)

	// The child picks up where the parent stopped…
	if _, err := child.Read(fd, buf); err != nil || string(buf) != "345" {
		t.Fatalf("child read after fork: %q, %v", buf, err)
	}
	// …and the parent continues after the child.
	if _, err := parent.Read(fd, buf); err != nil || string(buf) != "678" {
		t.Fatalf("parent read after child: %q, %v", buf, err)
	}
	if err := child.Close(fd); err != nil {
		t.Fatal(err)
	}
	// With the child gone the parent still owns a working descriptor.
	if _, err := parent.Read(fd, buf[:1]); err != nil || buf[0] != '9' {
		t.Fatalf("parent read after child close: %q, %v", buf[:1], err)
	}
	if err := parent.Close(fd); err != nil {
		t.Fatal(err)
	}
}

func TestForkPreservesDupRelationships(t *testing.T) {
	// Two descriptors duped onto one description in the parent must stay
	// one description in the child: reads through either child fd advance
	// the same offset.
	sys := newSystem(t, core.AllTechniques())
	parent := sys.NewClient(0)
	writeFile(t, parent, "/dup.txt", []byte("abcdef"))
	fd, err := parent.Open("/dup.txt", fsapi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := parent.Dup(fd)
	if err != nil {
		t.Fatal(err)
	}
	childFS, err := parent.CloneForFork(1)
	if err != nil {
		t.Fatal(err)
	}
	child := childFS.(fsapi.Client)

	buf := make([]byte, 2)
	if _, err := child.Read(fd, buf); err != nil || string(buf) != "ab" {
		t.Fatalf("child read via fd: %q, %v", buf, err)
	}
	if _, err := child.Read(dup, buf); err != nil || string(buf) != "cd" {
		t.Fatalf("child read via dup: %q, %v (dup lost the shared offset)", buf, err)
	}
	// And the parent's view is the same description too.
	if _, err := parent.Read(fd, buf); err != nil || string(buf) != "ef" {
		t.Fatalf("parent read after child: %q, %v", buf, err)
	}
	for _, c := range []fsapi.Client{child, parent} {
		if err := c.Close(fd); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(dup); err != nil {
			t.Fatal(err)
		}
	}
}

func TestForkPipeFanInFanOut(t *testing.T) {
	// The jobserver pattern: both ends inherited across two forks; children
	// write, the parent reads everything back after closing its own write
	// end and the children close theirs.
	sys := newSystem(t, core.AllTechniques())
	parent := sys.NewClient(0)
	rd, wr, err := parent.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	var kids []fsapi.Client
	for i := 0; i < 2; i++ {
		c, err := parent.CloneForFork(1 + i)
		if err != nil {
			t.Fatal(err)
		}
		kids = append(kids, c.(fsapi.Client))
	}
	for i, kid := range kids {
		payload := bytes.Repeat([]byte{byte('A' + i)}, 100)
		if _, err := kid.Write(wr, payload); err != nil {
			t.Fatalf("child %d write: %v", i, err)
		}
		if err := kid.Close(wr); err != nil {
			t.Fatalf("child %d close wr: %v", i, err)
		}
		if err := kid.Close(rd); err != nil {
			t.Fatalf("child %d close rd: %v", i, err)
		}
	}
	if err := parent.Close(wr); err != nil {
		t.Fatal(err)
	}
	var got []byte
	buf := make([]byte, 64)
	for {
		n, err := parent.Read(rd, buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if err := parent.Close(rd); err != nil {
		t.Fatal(err)
	}
	want := append(bytes.Repeat([]byte{'A'}, 100), bytes.Repeat([]byte{'B'}, 100)...)
	if !bytes.Equal(got, want) {
		t.Fatalf("pipe fan-in carried %d bytes, want %d", len(got), len(want))
	}
}
