package client

// Error-path tests for the epoch-cached routing layer (route.go), driven
// against scripted fake servers rather than a full deployment so the
// pathological cases — a snapshot provider that never catches up, a refresh
// racing a concurrent epoch publish, a broadcast spanning a drain — are
// reachable deterministically.

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/msg"
	"repro/internal/ncc"
	"repro/internal/place"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/sim"
)

// fakeProvider serves a swappable routing snapshot.
type fakeProvider struct {
	mu sync.Mutex
	rt *Routing
}

func (p *fakeProvider) Routing() *Routing {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rt
}

func (p *fakeProvider) publish(rt *Routing) {
	p.mu.Lock()
	p.rt = rt
	p.mu.Unlock()
}

// routeHarness is a client wired to scripted fake servers.
type routeHarness struct {
	net      *msg.Network
	provider *fakeProvider
	cli      *Client
	eps      []msg.EndpointID
}

// newRouteHarness builds n fake servers whose behaviour is given by handler
// (invoked with the server index and the decoded request) and a client
// routing to them through a fakeProvider snapshot at epoch 1.
func newRouteHarness(t *testing.T, n int, handler func(srv int, req *proto.Request) *proto.Response) *routeHarness {
	t.Helper()
	machine := sim.NewMachine(sim.TopologyForCores(4), sim.DefaultCostModel())
	net := msg.NewNetwork(msg.WrapMachine(machine))
	dram := ncc.NewDRAM(64, 4096)

	h := &routeHarness{net: net, provider: &fakeProvider{}}
	cores := make([]int, n)
	for i := 0; i < n; i++ {
		srv := i
		ep := net.NewEndpoint(i % 4)
		cores[i] = i % 4
		h.eps = append(h.eps, ep.ID)
		t.Cleanup(ep.Inbox.Close)
		go func() {
			for {
				env, ok := ep.Inbox.PopWait()
				if !ok {
					return
				}
				req, err := proto.UnmarshalRequest(env.Payload)
				resp := proto.ErrResponse(fsapi.EINVAL)
				if err == nil {
					resp = handler(srv, req)
				}
				net.Reply(ep, env, proto.KindResponse, resp.Marshal(), env.ArriveAt)
			}
		}()
	}
	members := make([]int32, n)
	for i := range members {
		members[i] = int32(i)
	}
	h.provider.publish(&Routing{
		Map:     place.New(place.PolicyModulo, members, 1),
		Servers: h.eps,
		Cores:   cores,
	})

	h.cli = New(Config{
		ID:       1,
		Core:     0,
		Machine:  machine,
		Network:  net,
		DRAM:     dram,
		Cache:    ncc.NewPrivateCache(dram),
		Registry: server.NewClientRegistry(),
		Provider: h.provider,
		Root:     proto.RootInode,
		Options:  DefaultOptions(),
	})
	return h
}

var testDir = proto.InodeID{Server: 0, Local: 7}

func TestRoutedRPCEpochRetryExhaustionReturnsEIO(t *testing.T) {
	// The servers are forever ahead of the snapshot the provider serves:
	// every request bounces with EEPOCH and every refresh hands back the
	// same stale epoch. The retry loop must give up with EIO, not spin.
	var calls atomic.Int64
	h := newRouteHarness(t, 2, func(srv int, req *proto.Request) *proto.Response {
		calls.Add(1)
		return proto.ErrResponse(fsapi.EEPOCH)
	})
	_, err := h.cli.routedEntryRPC(testDir, true, "name", &proto.Request{Op: proto.OpLookup})
	if !fsapi.IsErrno(err, fsapi.EIO) {
		t.Fatalf("exhausted retry returned %v, want EIO", err)
	}
	if n := calls.Load(); n < maxEpochRetries {
		t.Fatalf("gave up after %d attempts, want at least %d", n, maxEpochRetries)
	}

	// The broadcast loop obeys the same bound.
	calls.Store(0)
	if _, err := h.cli.routedBroadcast(0, true, &proto.Request{Op: proto.OpReadDirShard}); !fsapi.IsErrno(err, fsapi.EIO) {
		t.Fatalf("exhausted broadcast returned %v, want EIO", err)
	}
}

func TestRoutedRPCRefreshRacesConcurrentPublish(t *testing.T) {
	// The deployment migrates to epoch 2 while the first request is in
	// flight: the server answers EEPOCH, and — as during a real migration,
	// where the routing is published before the servers commit — the
	// provider's snapshot has already moved on by the time the client
	// refreshes. Exactly one retry must succeed.
	const newEpoch = 2
	var attempts atomic.Int64
	var h *routeHarness
	published := false
	h = newRouteHarness(t, 2, func(srv int, req *proto.Request) *proto.Response {
		attempts.Add(1)
		if req.Epoch != newEpoch {
			if !published {
				published = true
				// The concurrent publish: visible to the next refresh.
				h.provider.publish(&Routing{
					Map:     place.New(place.PolicyModulo, []int32{0, 1}, newEpoch),
					Servers: h.eps,
					Cores:   []int{0, 1},
				})
			}
			return proto.ErrResponse(fsapi.EEPOCH)
		}
		return &proto.Response{Ino: testDir}
	})
	resp, err := h.cli.routedEntryRPC(testDir, true, "name", &proto.Request{Op: proto.OpLookup})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != fsapi.OK {
		t.Fatalf("response errno %v", resp.Err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("took %d attempts, want 2 (one bounce, one retry at the published epoch)", got)
	}
}

func TestRoutedBroadcastSkipsDrainedMember(t *testing.T) {
	// Server 1 has been drained: it is still running (it owns inodes) but
	// no longer a placement member. A distributed-directory broadcast must
	// fan out to the members only.
	var mu sync.Mutex
	hit := make(map[int]int)
	h := newRouteHarness(t, 3, func(srv int, req *proto.Request) *proto.Response {
		mu.Lock()
		hit[srv]++
		mu.Unlock()
		return &proto.Response{}
	})
	h.provider.publish(&Routing{
		Map:     place.New(place.PolicyModulo, []int32{0, 2}, 2),
		Servers: h.eps,
		Cores:   []int{0, 1, 2},
	})
	h.cli.refreshRouting()

	resps, err := h.cli.routedBroadcast(0, true, &proto.Request{Op: proto.OpReadDirShard})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 {
		t.Fatalf("broadcast returned %d responses, want 2 (the members)", len(resps))
	}
	mu.Lock()
	defer mu.Unlock()
	if hit[1] != 0 {
		t.Fatalf("drained server 1 received %d broadcast requests", hit[1])
	}
	if hit[0] != 1 || hit[2] != 1 {
		t.Fatalf("member fan-out uneven: %v", hit)
	}
}

func TestRoutedBroadcastRetriesWholeFanOutOnEEPOCH(t *testing.T) {
	// One member answers EEPOCH (it adopted the next epoch first); the
	// whole fan-out must refresh and retry, and the caller must never see
	// the EEPOCH response.
	const newEpoch = 2
	var mu sync.Mutex
	rounds := 0
	var h *routeHarness
	h = newRouteHarness(t, 2, func(srv int, req *proto.Request) *proto.Response {
		mu.Lock()
		defer mu.Unlock()
		if srv == 1 && req.Epoch < newEpoch {
			h.provider.publish(&Routing{
				Map:     place.New(place.PolicyModulo, []int32{0, 1}, newEpoch),
				Servers: h.eps,
				Cores:   []int{0, 1},
			})
			return proto.ErrResponse(fsapi.EEPOCH)
		}
		if srv == 0 {
			rounds++
		}
		return &proto.Response{}
	})
	resps, err := h.cli.routedBroadcast(0, true, &proto.Request{Op: proto.OpReadDirShard})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resps {
		if r.Err == fsapi.EEPOCH {
			t.Fatal("caller saw an EEPOCH response")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if rounds != 2 {
		t.Fatalf("member 0 served %d fan-outs, want 2 (the whole broadcast retries)", rounds)
	}
}
