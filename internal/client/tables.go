package client

import (
	"repro/internal/proto"
	"repro/internal/table"
)

// Hot-path data structures (DESIGN.md §13).
//
// The directory-lookup cache and the per-inode version cache use the
// open-addressing tables from internal/table: flat storage for the
// million-entry namespaces the scale sweeps resolve through, and
// deterministic iteration for the one full scan the client performs
// (uncacheDir).

func hashClientIno(id proto.InodeID) uint64 {
	return table.HashU64(id.Local ^ uint64(uint32(id.Server))<<40)
}

func hashDcacheKey(k dcacheKey) uint64 {
	return table.HashU64(hashClientIno(k.dir) ^ table.HashString(k.name))
}

func newDcacheTable() *table.Map[dcacheKey, dcacheEnt] {
	return table.New[dcacheKey, dcacheEnt](hashDcacheKey, 256)
}

func newVcacheTable() *table.Map[proto.InodeID, uint64] {
	return table.New[proto.InodeID, uint64](hashClientIno, 64)
}

// respFreeCap bounds the response free list. The synchronous RPC path keeps
// at most one response alive per call, so a handful covers nesting (retry
// loops, scatter harvests that recycle eagerly).
const respFreeCap = 8

// getResp returns a response struct from the client's free list. Decoding
// into it resets every field.
func (c *Client) getResp() *proto.Response {
	if n := len(c.respFree); n > 0 {
		r := c.respFree[n-1]
		c.respFree[n-1] = nil
		c.respFree = c.respFree[:n-1]
		return r
	}
	return new(proto.Response)
}

// putResp recycles a response the caller has fully consumed. Only the single
// owner of a response may release it — a double put would hand the same
// struct to two callers. Slices are dropped so a recycled response does not
// pin a read payload; callers that retained resp.Data keep it (the decoder
// allocated it fresh and never reuses it).
func (c *Client) putResp(r *proto.Response) {
	if r == nil || len(c.respFree) >= respFreeCap {
		return
	}
	r.Data, r.Extents, r.Ents = nil, nil, nil
	c.respFree = append(c.respFree, r)
}

// marshalReq encodes a request into a buffer drawn from the endpoint's
// free-list cache. Ownership of the buffer passes to the receiver with the
// send (msg/pool.go).
func (c *Client) marshalReq(req *proto.Request) []byte {
	return req.AppendTo(c.ep.GetBuf(req.SizeHint()))
}

// memberServers returns the current placement members as server indices (the
// fan-out set for distributed-directory broadcasts). The conversion is
// cached per routing snapshot, so steady-state broadcasts do not re-walk or
// re-allocate the member list.
func (c *Client) memberServers() []int {
	rt := c.routing
	if c.memberSrvsOf == rt {
		return c.memberSrvs
	}
	members := rt.Map.MembersRef()
	out := make([]int, len(members))
	for i, id := range members {
		out[i] = int(id)
	}
	c.memberSrvs, c.memberSrvsOf = out, rt
	return out
}
